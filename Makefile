# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test test-list check chaos bench bench-checker \
        bench-quick bench-canon bench-shard bench-disk disk-smoke tables \
        resume-smoke resilience-smoke chaos-soak-smoke fuzz-smoke \
        serve-smoke fuzz clean-snapshots clean

# Every smoke-script timeout below is overridable (SMOKE=...): slow or
# heavily shared machines can widen the walls without editing the gate.
RESUME_SMOKE_TIMEOUT ?= 120
RESILIENCE_SMOKE_TIMEOUT ?= 60
CHAOS_SOAK_TIMEOUT ?= 60
FUZZ_SMOKE_TIMEOUT ?= 60
SERVE_SMOKE_TIMEOUT ?= 60
DISK_SMOKE_TIMEOUT ?= 120

all: build

build:
	dune build @all

test:
	dune runtest

# The gate the repo must pass before a change lands. Wrapped in a hard
# timeout so a wedged test (the very thing the fault layer exists to
# catch) fails the gate instead of hanging it.
CHECK_TIMEOUT ?= 600
check:
	$(MAKE) test-list
	timeout $(CHECK_TIMEOUT) sh -c 'dune build @all && dune runtest'
	$(MAKE) bench-canon
	$(MAKE) bench-shard
	$(MAKE) resume-smoke
	$(MAKE) resilience-smoke
	$(MAKE) chaos-soak-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) serve-smoke
	$(MAKE) disk-smoke

# Fails if any test/test_*.ml suite is not registered in test/main.ml —
# a new suite cannot silently ride along unexecuted.
test-list:
	scripts/test_list.sh

# End-to-end snapshot/resume smoke: truncate + resume vs oracle,
# SIGTERM mid-exploration, and the `check` exit-code contract
# (0 clean / 1 violation / 3 truncated / 4 rejected snapshot).
resume-smoke: build
	timeout $(RESUME_SMOKE_TIMEOUT) scripts/resume_smoke.sh _build/default/bin/coordctl.exe

# Seeded infrastructure-fault campaign: worker kills, stalls, torn and
# bit-flipped snapshot writes, allocation failure, deadline stop — the
# faulted sweeps must reach the fault-free oracle's verdict and state
# counts and exit by the documented contract (0/1/3/4/6). The campaign
# prints its fault-plan seed; replay with RESILIENCE_SEED=N.
resilience-smoke: build
	timeout $(RESILIENCE_SMOKE_TIMEOUT) scripts/resilience_smoke.sh _build/default/bin/coordctl.exe

# Chaos soak: sweep the (engine x supervision x disk-visited x fault
# plan) matrix through coordctl, requiring each cell to be bit-identical
# to its fault-free oracle or an honestly reported degradation (disk
# quota -> stop reason disk_full, checkpoint intact, resume exact).
# Every cell runs under its own timeout; the campaign prints its seed
# and replays with CHAOS_SEED=N.
chaos-soak-smoke: build
	timeout $(CHAOS_SOAK_TIMEOUT) scripts/chaos_soak.sh _build/default/bin/coordctl.exe

# Sub-30s fuzzing smoke: replay the committed regression corpus, run a
# 1000-instance differential sweep (seq/par explorers, property checkers,
# runtime probes, baseline twins must all agree), and require the broken
# even-m mutex to be caught, shrunk and replayable end to end.
fuzz-smoke: build
	timeout $(FUZZ_SMOKE_TIMEOUT) scripts/fuzz_smoke.sh _build/default/bin/coordctl.exe

# Job-queue service smoke, part of `make check`: start `coordctl serve`
# on a fresh spool, run a job mix including one preempted-and-resumed
# check (small quantum), require verdicts to agree with direct CLI
# invocations, require an identical re-submission to be answered from
# the verdict cache with zero fresh states, shut down cleanly, then run
# the gated example sweep.
serve-smoke: build
	timeout $(SERVE_SMOKE_TIMEOUT) scripts/serve_smoke.sh _build/default/bin/coordctl.exe

# Long-running fuzz campaign: every protocol family, generous budgets,
# shrunk witnesses dropped in _fuzz/ for triage. Deterministic by SEED.
FUZZ_SECONDS ?= 60
SEED ?= 1
fuzz: build
	mkdir -p _fuzz
	-dune exec -- coordctl fuzz mutex --seconds $(FUZZ_SECONDS) \
	  --attempts 100000 --seed $(SEED) --shrink --corpus _fuzz
	-dune exec -- coordctl fuzz cmp-mutex --seconds $(FUZZ_SECONDS) \
	  --attempts 100000 --seed $(SEED) --shrink --corpus _fuzz
	-dune exec -- coordctl fuzz consensus --seconds $(FUZZ_SECONDS) \
	  --attempts 100000 --seed $(SEED) --shrink --corpus _fuzz
	-dune exec -- coordctl fuzz election --seconds $(FUZZ_SECONDS) \
	  --attempts 100000 --seed $(SEED) --shrink --corpus _fuzz
	-dune exec -- coordctl fuzz renaming --seconds $(FUZZ_SECONDS) \
	  --attempts 100000 --seed $(SEED) --shrink --corpus _fuzz
	-dune exec -- coordctl fuzz ccp --seconds $(FUZZ_SECONDS) \
	  --attempts 100000 --seed $(SEED) --shrink --corpus _fuzz

# Remove checkpoint files left behind by interrupted explorations.
clean-snapshots:
	find . -path ./_build -prune -o -name '*.snap' -print -exec rm -f {} +
	rm -rf _snapshots

# Fixed-seed chaos sweep: random crash injection over every protocol
# family plus the E19 crash-tolerance tables. Deterministic by seed.
chaos: build
	dune exec -- coordctl chaos consensus -n 3 --seed 42 --attempts 10
	dune exec -- coordctl chaos election -n 3 --seed 42 --attempts 10
	dune exec -- coordctl chaos renaming -n 3 --seed 42 --attempts 10
	dune exec -- coordctl chaos ccp -n 2 --seed 42 --attempts 10
	dune exec -- coordctl chaos mutex --seed 42 --crash-cs 1 --attempts 3
	dune exec -- coordctl tables -e E19

# Full benchmark run (experiment tables + bechamel micro-benchmarks).
bench:
	dune exec bench/main.exe

# Checker throughput sweep: reduced-vs-full and par-vs-seq workloads,
# appended as a timestamped run to BENCH_checker.json. Defaults to the
# host's recommended domain count; DOMAINS=N overrides, and the harness
# refuses N above the recommendation unless FORCE=1 (oversubscribed
# numbers would record meaningless slowdowns).
bench-checker:
	dune exec bench/check_throughput.exe -- $(DOMAINS) $(if $(FORCE),--force)

# Sub-30s smoke benchmark (1 rep, small workloads). Appends to
# BENCH_checker.json like the full sweep.
bench-quick:
	timeout 60 dune exec bench/check_throughput.exe -- --quick $(if $(FORCE),--force)

# The canon wall-clock gate, part of `make check`: the quick workloads at
# 3 reps (min-of-reps tames ms-scale noise on the small graphs), failing
# if any complete quotient run is slower than 0.9x its full exploration.
# Quotient-soundness and dedup-accounting cross-checks ride along, and
# the run is appended to BENCH_checker.json like any other.
bench-canon:
	timeout 60 dune exec bench/check_throughput.exe -- --quick --reps 3 \
	  --gate-canon 0.9 $(if $(FORCE),--force)

# The sharded-engine wall-clock gate, part of `make check`: on hosts with
# 2+ domains the sharded work-stealing explorer must be at least as fast
# as the sequential reference on the >10^5-state scaling workload; on a
# single-domain host the comparison is recorded as skipped and the gate
# passes vacuously.
bench-shard:
	timeout 300 dune exec bench/check_throughput.exe -- --quick --reps 3 \
	  --gate-shard 1.0 $(if $(FORCE),--force)

# External-memory run of the full unreduced Figure 1 mutex (amutex m=5,
# three lock-step processes, 8.4M states): the disk-backed visited set
# must complete it and land exactly on the state count predicted by the
# symmetry quotient's orbit mass. MEM_MB sets the spill watermark.
MEM_MB ?= 512
bench-disk:
	dune exec bench/check_throughput.exe -- --disk --mem-mb $(MEM_MB)

# Sub-60s external-memory smoke, part of `make check`: a graph explored
# under an address-space ulimit that the in-RAM explorer could not even
# start in comfortably; spill-and-probe stats must match the unlimited
# in-RAM run exactly, and snapshot/resume must compose with spilling.
disk-smoke: build
	timeout $(DISK_SMOKE_TIMEOUT) scripts/disk_smoke.sh _build/default/bin/coordctl.exe

tables:
	dune exec -- coordctl tables

clean:
	dune clean
