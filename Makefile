# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test check bench bench-checker tables clean

all: build

build:
	dune build @all

test:
	dune runtest

# The gate the repo must pass before a change lands.
check:
	dune build @all && dune runtest

# Full benchmark run (experiment tables + bechamel micro-benchmarks).
bench:
	dune exec bench/main.exe

# Checker throughput sweep; writes BENCH_checker.json.
# Override the worker count with DOMAINS=N.
bench-checker:
	dune exec bench/check_throughput.exe -- $(or $(DOMAINS),2)

tables:
	dune exec -- coordctl tables

clean:
	dune clean
