examples/adversary_demo.ml: Anonmem Coord Empty Format List Lowerbound String Trace
