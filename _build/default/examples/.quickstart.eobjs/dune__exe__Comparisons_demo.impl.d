examples/comparisons_demo.ml: Anonmem Coord Format List Lowerbound Naming Runtime Schedule
