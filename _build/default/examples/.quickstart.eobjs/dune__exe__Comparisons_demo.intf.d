examples/comparisons_demo.mli:
