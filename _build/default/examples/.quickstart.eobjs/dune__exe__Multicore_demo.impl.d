examples/multicore_demo.ml: Anonmem Array Coord Format Naming Parallel Printf Rng
