examples/name_the_threads.ml: Anonmem Array Coord Format Fun List Naming Protocol Rng Runtime Schedule
