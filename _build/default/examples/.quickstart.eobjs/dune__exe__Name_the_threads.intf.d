examples/name_the_threads.mli:
