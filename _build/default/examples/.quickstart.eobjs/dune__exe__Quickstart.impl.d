examples/quickstart.ml: Anonmem Array Coord Empty Format List Naming Rng Runtime Schedule Trace
