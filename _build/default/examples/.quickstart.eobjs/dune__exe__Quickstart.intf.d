examples/quickstart.mli:
