examples/sensor_election.ml: Anonmem Array Coord Format Fun List Naming Rng Runtime Schedule String
