examples/sensor_election.mli:
