examples/verify_fig1.ml: Anonmem Array Check Coord Format List Naming
