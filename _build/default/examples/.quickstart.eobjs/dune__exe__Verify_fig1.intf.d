examples/verify_fig1.mli:
