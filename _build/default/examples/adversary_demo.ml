(* Watch Theorem 6.2's covering adversary at work: Figure 1's mutex (which
   is perfectly correct for the two processes it was designed for) meets an
   adversary that controls how many processes exist and how each of them
   numbers the anonymous registers. The adversary builds, step by step, a
   single legal run at whose end TWO processes sit in the critical section.

   Run with: dune exec examples/adversary_demo.exe *)

open Anonmem
module Cov = Lowerbound.Covering.Make (Coord.Amutex.P)

let () =
  let m = 3 in
  Format.printf
    "Subject: Figure 1's memory-anonymous mutex with m = %d registers.@." m;
  Format.printf
    "Adversary: knows the code, picks the number of processes and every \
     process's register numbering (Theorem 6.2 construction).@.@.";
  match Cov.construct ~m ~q_input:() ~recruit_input:(fun _ -> ()) () with
  | Error e -> Format.printf "construction failed: %s@." e
  | Ok o ->
    Format.printf "1. Probe: victim q ran alone and entered its CS after \
                   writing registers {%s}.@."
      (String.concat ", " (List.map string_of_int o.write_set));
    Format.printf
      "2. Covering: %d recruits were steered (by choosing their namings) so \
       that each one's first write lands on a different register of that \
       set; each was frozen one step before writing (%s steps each).@."
      (List.length o.covering_prefix_steps)
      (String.concat ", " (List.map string_of_int o.covering_prefix_steps));
    Format.printf "3. Splice: memory is untouched, so q's solo run replays \
                   and q %a.@." Cov.pp_success o.q_success;
    Format.printf "4. Block write: the recruits fire their pending writes, \
                   erasing every trace of q.@.";
    Format.printf "5. Extension: %s lets recruit %d make progress — and it \
                   %a while q is still inside.@.@."
      o.z_schedule_note (o.p_proc - 1) Cov.pp_success o.p_success;
    Format.printf "The full run (%d steps):@." (List.length o.trace);
    Format.printf "%a@."
      (Trace.pp ~pp_value:Format.pp_print_int ~pp_output:Empty.pp)
      o.trace;
    let both =
      List.filter Trace.enters_critical o.trace
      |> List.map (fun e -> e.Trace.proc)
    in
    Format.printf
      "@.Mutual exclusion is violated: processes %s are in the critical \
       section simultaneously.@."
      (String.concat " and " (List.map string_of_int both))
