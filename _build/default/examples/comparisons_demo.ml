(* The two symmetry variants of the paper's §2, side by side on the SAME
   even register count. Under equality-only symmetry, two anonymous
   registers admit no deadlock-free mutex (Theorem 3.1): the lock-step
   adversary keeps Figure 1 spinning forever. Allow one comparison and the
   deadlock evaporates.

   Run with: dune exec examples/comparisons_demo.exe *)

open Anonmem
module SymFig1 = Lowerbound.Symmetry.Make (Coord.Amutex.P)
module SymCmp = Lowerbound.Symmetry.Make (Coord.Cmp_mutex.P)
module R = Runtime.Make (Coord.Cmp_mutex.P)

let () =
  let m = 2 in
  Format.printf "Arena: %d anonymous registers, two processes with ids 7 and \
                 13, antipodal namings, strict lock-step schedule.@.@."
    m;
  (* equality-only: Figure 1 *)
  let verdict, trace =
    SymFig1.run ~ids:[ 7; 13 ] ~inputs:[ (); () ] ~m ~d:2 ()
  in
  Format.printf "Figure 1 (equality-only comparisons):@.  %a@."
    Lowerbound.Symmetry.pp_verdict verdict;
  Format.printf "  (the %d-step trace never enters a critical section — the \
                 processes mirror each other exactly)@.@."
    (List.length trace);
  (* with comparisons *)
  let verdict, _ =
    SymCmp.run ~max_steps:5_000 ~ids:[ 7; 13 ] ~inputs:[ (); () ] ~m ~d:2 ()
  in
  Format.printf "Comparison variant (smaller id defers):@.  %a@."
    Lowerbound.Symmetry.pp_verdict verdict;
  (* show who actually got in *)
  let cfg : R.config =
    {
      ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.rotation m 0; Naming.rotation m 1 |];
      rng = None;
      record_trace = true;
    }
  in
  let rt = R.create cfg in
  let _ =
    R.run rt
      ~until:(fun t -> R.kind t 0 = Schedule.Crit || R.kind t 1 = Schedule.Crit)
      (Schedule.lock_step [ 0; 1 ])
      ~max_steps:1_000
  in
  let winner = if R.kind rt 0 = Schedule.Crit then 0 else 1 in
  Format.printf
    "  under the same lock-step schedule, process %d (id %d — the larger) \
     reaches its critical section after %d steps.@.@."
    winner (R.id_of rt winner) (R.clock rt);
  Format.printf
    "Conclusion: Theorem 3.1's odd-m law is a theorem about equality-only \
     symmetry; a single id comparison per conflict breaks the spell.@."
