(* The same memory-anonymous algorithms on REAL shared memory: one OCaml 5
   domain per process, registers as sequentially consistent atomics, the
   operating system as the (weak, but genuine) adversary.

   Run with: dune exec examples/multicore_demo.exe *)

open Anonmem
module PCons = Parallel.Prun.Make (Coord.Consensus.P)
module PMutex = Parallel.Prun.Make (Coord.Amutex.P)

let () =
  let n = 3 in
  let m = (2 * n) - 1 in
  let rng = Rng.create 2026 in
  Format.printf "Consensus, %d domains, %d anonymous atomic registers:@." n m;
  let inputs = [| 111; 222; 333 |] in
  let cfg : PCons.config =
    {
      ids = [| 9; 27; 81 |];
      inputs;
      namings = Array.init n (fun _ -> Naming.random rng m);
      seed = 2026;
    }
  in
  let o = PCons.run_decide cfg in
  Array.iteri
    (fun i (r : PCons.proc_result) ->
      Format.printf "  domain %d (id %d): %s after %d steps@." i
        cfg.ids.(i)
        (match r.output with
        | Some v -> Printf.sprintf "decided %d" v
        | None -> "undecided (obstruction-free, contention persisted)")
        r.steps)
    o.results;
  Format.printf "@.Mutex (Figure 1), 2 domains, 50 critical sections each:@.";
  let cfg : PMutex.config =
    {
      ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 3; Naming.rotation 3 1 |];
      seed = 7;
    }
  in
  let o = PMutex.run_sessions ~sessions:50 cfg in
  Array.iteri
    (fun i (r : PMutex.proc_result) ->
      Format.printf "  domain %d: %d critical sections in %d steps@." i
        r.cs_entries r.steps)
    o.results;
  Format.printf "  mutual exclusion violated: %b@." o.mutex_violation;
  assert (not o.mutex_violation)
