(* Adaptive perfect renaming as slot assignment: a pool is provisioned for
   up to n workers, but only the k that actually show up should occupy
   slots — and exactly slots 1..k (Theorem 5.3's adaptivity), so a dense
   array can be indexed by the new names with no holes.

   The workers' original identifiers come from a huge sparse space (think
   64-bit thread ids); Figure 3 shrinks them to 1..k without any agreement
   on register names.

   Run with: dune exec examples/name_the_threads.exe *)

open Anonmem
module R = Runtime.Make (Coord.Renaming.P)

let run_with ~k ~n ~seed =
  let rng = Rng.create seed in
  let m = (2 * n) - 1 in
  let ids = Array.init n (fun _ -> 1 + Rng.int rng 1_000_000_000) in
  let cfg : R.config =
    {
      ids;
      inputs = Array.make n ();
      namings = Array.init n (fun _ -> Naming.random rng m);
      rng = None;
      record_trace = false;
    }
  in
  let rt = R.create cfg in
  (* only the first k workers arrive *)
  let arrivals = List.init k Fun.id in
  let sched (v : Schedule.view) =
    match
      List.filter (fun i -> v.kind i <> Schedule.Finished) arrivals
    with
    | [] -> None
    | cands -> Some (List.nth cands (Rng.int rng (List.length cands)))
  in
  let _ = R.run rt sched ~max_steps:(500 * n) in
  (* renaming is obstruction-free: solo windows finish the stragglers *)
  let budget = ref (20 * n) in
  while
    List.exists
      (fun i -> not (Protocol.is_decided (R.status rt i)))
      arrivals
    && !budget > 0
  do
    decr budget;
    List.iter
      (fun i -> ignore (R.run rt (Schedule.solo i) ~max_steps:(50 * m * m)))
      arrivals
  done;
  List.map
    (fun i ->
      match R.status rt i with
      | Protocol.Decided name -> (ids.(i), name)
      | _ -> failwith "worker failed to acquire a name")
    arrivals

let () =
  let n = 6 in
  List.iter
    (fun k ->
      let assignment = run_with ~k ~n ~seed:(100 + k) in
      Format.printf "pool of %d, %d workers arrive:@." n k;
      List.iter
        (fun (id, name) -> Format.printf "  worker #%-10d -> slot %d@." id name)
        assignment;
      let names = List.map snd assignment |> List.sort compare in
      assert (names = List.init k (fun i -> i + 1));
      Format.printf "  slots used: exactly 1..%d (adaptive, perfect)@.@." k)
    [ 1; 3; 6 ]
