(* Quickstart: two processes share a critical section through three
   anonymous registers (Figure 1 of the paper), under an adversarial random
   schedule, each seeing the registers through its own private numbering.

   Run with: dune exec examples/quickstart.exe *)

open Anonmem
module R = Runtime.Make (Coord.Amutex.P)

let () =
  let rng = Rng.create 2024 in
  let m = 3 in
  (* The two processes don't agree on register names: process A uses the
     identity numbering, process B scans the same registers rotated. *)
  let cfg : R.config =
    {
      ids = [| 17; 42 |];
      inputs = [| (); () |];
      namings = [| Naming.identity m; Naming.rotation m 1 |];
      rng = None;
      record_trace = true;
    }
  in
  let rt = R.create cfg in
  let entries = Array.make 2 0 in
  let sched = Schedule.random rng in
  Format.printf "Two processes, %d anonymous registers, random schedule.@." m;
  for _step = 1 to 2_000 do
    match
      sched { n = 2; clock = R.clock rt; kind = (fun i -> R.kind rt i) }
    with
    | Some i ->
      let e = R.step rt i in
      if Trace.enters_critical e then begin
        entries.(i) <- entries.(i) + 1;
        assert (R.critical_pair rt = None)
      end
    | None -> ()
  done;
  Format.printf "After 2000 steps: process A entered its CS %d times, B %d \
                 times, and never together.@."
    entries.(0) entries.(1);
  Format.printf "@.Last 12 steps of the run:@.";
  let trace = R.trace rt in
  let tail =
    let len = List.length trace in
    List.filteri (fun i _ -> i >= len - 12) trace
  in
  Format.printf "%a@."
    (Trace.pp ~pp_value:Format.pp_print_int ~pp_output:Empty.pp)
    tail
