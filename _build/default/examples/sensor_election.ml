(* Scenario from the paper's motivation: processes that share memory but
   have no lower-level agreement — here, a batch of sensors flashed with
   random serial numbers and handed an unlabeled bank of registers — must
   elect a coordinator. The memory-anonymous election of §4 (consensus on
   one's own identifier) does it: every sensor that terminates announces
   the same leader, and the leader is one of the participants.

   Run with: dune exec examples/sensor_election.exe *)

open Anonmem
module R = Runtime.Make (Coord.Election.P)

let () =
  let rng = Rng.create 7 in
  let n = 5 in
  let m = (2 * n) - 1 in
  (* random distinct serial numbers *)
  let serials =
    let rec draw acc =
      if List.length acc = n then acc
      else
        let s = 1 + Rng.int rng 100_000 in
        if List.mem s acc then draw acc else draw (s :: acc)
    in
    Array.of_list (draw [])
  in
  let cfg : R.config =
    {
      ids = serials;
      inputs = Array.make n ();
      namings = Array.init n (fun _ -> Naming.random rng m);
      rng = None;
      record_trace = false;
    }
  in
  let rt = R.create cfg in
  Format.printf "%d sensors with serials %s race over %d anonymous registers.@."
    n
    (String.concat ", " (Array.to_list (Array.map string_of_int serials)))
    m;
  (* contention phase: fully random interleaving *)
  let _ = R.run rt (Schedule.random rng) ~max_steps:(400 * n) in
  (* the consensus is obstruction-free: give each laggard a solo window *)
  for i = 0 to n - 1 do
    ignore (R.run rt (Schedule.solo i) ~max_steps:(40 * m * m))
  done;
  Array.iteri
    (fun i d ->
      match d with
      | Some leader ->
        Format.printf "  sensor %6d says: leader is %d%s@." serials.(i) leader
          (if leader = serials.(i) then "  <- that's me" else "")
      | None -> Format.printf "  sensor %6d: undecided@." serials.(i))
    (R.decisions rt);
  let leaders =
    Array.to_list (R.decisions rt) |> List.filter_map Fun.id
    |> List.sort_uniq compare
  in
  match leaders with
  | [ l ] -> Format.printf "Unanimous: sensor %d coordinates.@." l
  | _ -> failwith "election disagreed (impossible)"
