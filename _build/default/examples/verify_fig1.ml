(* Using the model checker as a library: verify Figure 1 for a chosen m
   yourself, watch the state counts, and dump the m = 3 state graph to
   Graphviz. This is the programmatic face of `coordctl check mutex`.

   Run with: dune exec examples/verify_fig1.exe *)

open Anonmem
module E = Check.Explore.Make (Coord.Amutex.P)

let verdict = function None -> "holds" | Some _ -> "VIOLATED"

let () =
  List.iter
    (fun m ->
      Format.printf "m = %d:@." m;
      List.iter
        (fun nam ->
          let cfg : E.config =
            {
              ids = [| 7; 13 |];
              inputs = [| (); () |];
              namings = [| Naming.identity m; nam |];
            }
          in
          let g = E.explore cfg in
          let f = E.to_flat g in
          Format.printf
            "  relative naming %a: %5d states — mutual exclusion %s, \
             deadlock-freedom %s@."
            Naming.pp nam (Array.length g.states)
            (verdict (Check.Mutex_props.mutual_exclusion f))
            (verdict (Check.Mutex_props.deadlock_freedom f)))
        (Naming.all m))
    [ 2; 3 ];
  Format.printf
    "@.(m = 2 loses deadlock-freedom under every naming; m = 3 is clean — \
     Theorem 3.1 in fast-forward.)@.";
  (* dump the m = 3 identity/rotation graph for graphviz *)
  let cfg : E.config =
    {
      ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 3; Naming.rotation 3 1 |];
    }
  in
  let flat = E.to_flat (E.explore cfg) in
  let file = "fig1_states.dot" in
  let oc = open_out file in
  let ppf = Format.formatter_of_out_channel oc in
  Check.Dot.of_flat ~max_nodes:400 flat ppf ();
  Format.pp_print_flush ppf ();
  close_out oc;
  Format.printf
    "@.Wrote %s — render with: dot -Tsvg %s -o fig1_states.svg@." file file
