lib/anonmem/empty.ml:
