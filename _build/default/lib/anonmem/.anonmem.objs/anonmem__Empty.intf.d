lib/anonmem/empty.mli: Format
