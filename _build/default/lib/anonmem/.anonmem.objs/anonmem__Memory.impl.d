lib/anonmem/memory.ml: Array Format Naming Protocol
