lib/anonmem/memory.mli: Format Naming Protocol
