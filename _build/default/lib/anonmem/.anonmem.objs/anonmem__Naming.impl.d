lib/anonmem/naming.ml: Array Format List Rng
