lib/anonmem/naming.mli: Format Rng
