lib/anonmem/protocol.ml: Format
