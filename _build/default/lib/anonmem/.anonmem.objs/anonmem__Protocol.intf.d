lib/anonmem/protocol.mli: Format
