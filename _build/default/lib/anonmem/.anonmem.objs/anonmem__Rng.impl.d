lib/anonmem/rng.ml: Array Int64
