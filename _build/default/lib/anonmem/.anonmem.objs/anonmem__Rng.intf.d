lib/anonmem/rng.mli:
