lib/anonmem/runtime.ml: Array Format List Memory Naming Option Protocol Rng Schedule Trace
