lib/anonmem/runtime.mli: Format Memory Naming Protocol Rng Schedule Trace
