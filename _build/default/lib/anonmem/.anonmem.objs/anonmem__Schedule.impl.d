lib/anonmem/schedule.ml: Array Fun List Rng
