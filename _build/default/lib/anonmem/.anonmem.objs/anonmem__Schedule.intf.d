lib/anonmem/schedule.mli: Rng
