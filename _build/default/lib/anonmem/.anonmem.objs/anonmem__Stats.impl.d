lib/anonmem/stats.ml: Format Hashtbl List Option String
