lib/anonmem/stats.mli: Format
