lib/anonmem/trace.ml: Format Hashtbl List Protocol
