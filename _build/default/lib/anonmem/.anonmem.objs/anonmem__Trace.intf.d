lib/anonmem/trace.mli: Format Protocol
