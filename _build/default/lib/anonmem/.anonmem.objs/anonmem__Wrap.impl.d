lib/anonmem/wrap.ml: Printf Protocol
