lib/anonmem/wrap.mli: Protocol
