type t = |

let absurd : t -> 'a = function _ -> .

let pp _ppf (x : t) = absurd x

let compare (x : t) _ = absurd x
