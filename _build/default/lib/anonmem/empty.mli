(** The uninhabited type, used as the [output] of protocols that never
    terminate (mutual exclusion loops forever). *)

type t = |

val absurd : t -> 'a
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
