(** Physical shared memory: an array of [m] atomic registers.

    All accesses go through a {!Naming.t}, so a process can only address
    memory through its private numbering — the code path enforces the
    anonymity of the model. The simulator executes one access at a time,
    which gives atomicity by construction. *)

module Make (V : Protocol.VALUE) : sig
  type t

  val create : m:int -> t
  (** [m] registers, all holding [V.init]. *)

  val size : t -> int

  val read : t -> Naming.t -> int -> V.t
  (** [read mem naming j] reads the process's local register [j]. *)

  val write : t -> Naming.t -> int -> V.t -> unit

  val rmw : t -> Naming.t -> int -> (V.t -> V.t) -> V.t * V.t
  (** [rmw mem naming j f] atomically replaces [v] with [f v]; returns
      [(old, new)]. Only used by read-modify-write protocols (paper §7). *)

  val get_physical : t -> int -> V.t
  (** Direct physical access, for checkers and reports only. *)

  val set_physical : t -> int -> V.t -> unit

  val snapshot : t -> V.t array
  (** A copy of the physical register contents. *)

  val restore : t -> V.t array -> unit
  (** Overwrite contents from a snapshot. *)

  val reset : t -> unit
  (** All registers back to [V.init]. *)

  val write_count : t -> int
  (** Total number of writes (and rmws) performed since creation, for
      instrumentation. *)

  val pp : Format.formatter -> t -> unit
end
