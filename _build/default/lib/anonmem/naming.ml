type t = int array
(* t.(local_index) = physical_index; always a permutation of 0..m-1. *)

let size = Array.length

let apply t j =
  assert (0 <= j && j < Array.length t);
  t.(j)

let is_permutation a =
  let m = Array.length a in
  let seen = Array.make m false in
  Array.for_all
    (fun x ->
      if x < 0 || x >= m || seen.(x) then false
      else begin
        seen.(x) <- true;
        true
      end)
    a

let of_array a =
  if not (is_permutation a) then
    invalid_arg "Naming.of_array: not a permutation";
  Array.copy a

let to_array t = Array.copy t

let invert t =
  let inv = Array.make (Array.length t) 0 in
  Array.iteri (fun j phys -> inv.(phys) <- j) t;
  inv

let identity m = Array.init m (fun j -> j)

let rotation m d =
  let d = ((d mod m) + m) mod m in
  Array.init m (fun j -> (j + d) mod m)

let random rng m = Rng.permutation rng m

let compose f g = Array.init (Array.length g) (fun j -> f.(g.(j)))

let all m =
  if m > 8 then invalid_arg "Naming.all: m too large";
  (* Heap-style recursive enumeration of permutations. *)
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: rest as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insert x rest)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insert x) (perms rest)
  in
  perms (List.init m (fun j -> j)) |> List.map Array.of_list

let equal = ( = )

let pp ppf t =
  Format.fprintf ppf "⟨%a⟩"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
       Format.pp_print_int)
    (Array.to_list t)
