(** Register namings: the per-process view of anonymous memory.

    In the memory-anonymous model of Taubenfeld (PODC'17) the [m] shared
    registers have no global names. Process [i] refers to registers through
    its own numbering [p.i[1..m]]; semantically this is a private bijection
    from local indices to physical register locations. A {e naming} is that
    bijection, and choosing the namings is the adversary's first move.

    Local and physical indices both range over [0..m-1] (we use 0-based
    indices throughout the library; the paper's [p.i[j]] is our
    [apply t (j-1)]). *)

type t
(** A bijection from local register indices to physical register indices. *)

val size : t -> int
(** Number of registers [m]. *)

val apply : t -> int -> int
(** [apply t j] is the physical location of local register [j].
    Requires [0 <= j < size t]. *)

val invert : t -> t
(** The inverse bijection (physical to local). *)

val identity : int -> t
(** [identity m]: local index [j] is physical register [j]. *)

val rotation : int -> int -> t
(** [rotation m d]: local index [j] maps to physical [(j + d) mod m].
    This is the "same ring ordering, shifted initial register" naming used
    in the Theorem 3.4 lower-bound construction. *)

val of_array : int array -> t
(** [of_array a] uses [a.(j)] as the physical index of local [j].
    Raises [Invalid_argument] if [a] is not a permutation of [0..m-1]. *)

val to_array : t -> int array
(** The underlying permutation (a fresh copy). *)

val random : Rng.t -> int -> t
(** A uniformly random naming of [m] registers. *)

val compose : t -> t -> t
(** [compose f g] maps [j] to [apply f (apply g j)]. *)

val all : int -> t list
(** All [m!] namings of [m] registers, for exhaustive checking. Requires
    [m <= 8] to keep the enumeration sane. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints e.g. [⟨2 0 1⟩]: local 0 is physical 2, etc. *)
