(* SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, and splittable, which is
   what we need for reproducible independent streams per component. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let assign dst src = dst.state <- src.state

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = next_int64 g in
  { state = mix seed }

let int g bound =
  assert (bound > 0);
  let r = Int64.to_int (next_int64 g) land max_int in
  r mod bound

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g =
  let r = Int64.to_int (next_int64 g) land max_int in
  float_of_int r /. float_of_int max_int

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place g a;
  a
