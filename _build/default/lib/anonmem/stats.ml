type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
    let count = List.length xs in
    let fcount = float_of_int count in
    let sum = List.fold_left ( +. ) 0. xs in
    let mean = sum /. fcount in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. fcount
    in
    {
      count;
      mean;
      stddev = sqrt var;
      min = List.fold_left min infinity xs;
      max = List.fold_left max neg_infinity xs;
    }

let summarize_ints xs = summarize (List.map float_of_int xs)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%g max=%g" s.count s.mean
    s.stddev s.min s.max

module Tally = struct
  type t = (string, int) Hashtbl.t

  let create () = Hashtbl.create 16

  let add t key k =
    let cur = Option.value ~default:0 (Hashtbl.find_opt t key) in
    Hashtbl.replace t key (cur + k)

  let incr t key = add t key 1

  let get t key = Option.value ~default:0 (Hashtbl.find_opt t key)

  let total t = Hashtbl.fold (fun _ v acc -> acc + v) t 0

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pp ppf t =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v)
      ppf (to_list t)
end
