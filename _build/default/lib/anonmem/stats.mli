(** Small numeric aggregators for experiment reports and benches. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val summarize_ints : int list -> summary

val pp_summary : Format.formatter -> summary -> unit
(** e.g. [n=100 mean=12.4 sd=2.1 min=8 max=19]. *)

(** Incremental counter keyed by string, for tallying outcomes. *)
module Tally : sig
  type t

  val create : unit -> t
  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  val total : t -> int
  val to_list : t -> (string * int) list
  (** Sorted by key. *)

  val pp : Format.formatter -> t -> unit
end
