module Fix_n (P : Protocol.PROTOCOL) (D : sig
  val n : int
end) =
struct
  include P

  let name = Printf.sprintf "%s[n:=%d]" P.name D.n
  let default_registers ~n:_ = P.default_registers ~n:D.n
  let start ~n:_ ~m ~id input = P.start ~n:D.n ~m ~id input
  let step ~n:_ ~m ~id local = P.step ~n:D.n ~m ~id local
end

module Fix_m (P : Protocol.PROTOCOL) (D : sig
  val m : int
end) =
struct
  include P

  let name = Printf.sprintf "%s[m:=%d]" P.name D.m

  let check_m m =
    if m < D.m then
      invalid_arg "Wrap.Fix_m: fewer physical registers than the pinned m"

  let start ~n ~m ~id input =
    check_m m;
    P.start ~n ~m:D.m ~id input

  let step ~n ~m ~id local =
    check_m m;
    P.step ~n ~m:D.m ~id local
end
