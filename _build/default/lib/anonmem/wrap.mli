(** Protocol wrappers. *)

(** [Fix_n (P) (D)] behaves exactly like [P] designed for [D.n] processes,
    regardless of how many processes actually run it. This models the
    paper's §6 setting: an algorithm is written against an assumed bound on
    the number of processes, and the adversary then confronts it with more
    participants than it was designed for ("the number of processes is not
    a priori known"). *)
module Fix_n (P : Protocol.PROTOCOL) (D : sig
  val n : int
end) :
  Protocol.PROTOCOL
    with type input = P.input
     and type output = P.output
     and type local = P.local
     and module Value = P.Value

(** [Fix_m (P) (D)] runs [P] believing there are [D.m] registers while the
    actual memory may be larger: the protocol only ever touches its local
    indices [0 .. D.m - 1], and its naming decides which physical registers
    those are. This is §3.2's "property 1" (solve with [l] registers inside
    [m >= l] by ignoring the rest) made executable: with named registers
    every process ignores the {e same} excess registers and correctness is
    preserved; anonymously each process ignores a set chosen by its naming,
    and the E15 experiment shows correctness collapse. *)
module Fix_m (P : Protocol.PROTOCOL) (D : sig
  val m : int
end) :
  Protocol.PROTOCOL
    with type input = P.input
     and type output = P.output
     and type local = P.local
     and module Value = P.Value
