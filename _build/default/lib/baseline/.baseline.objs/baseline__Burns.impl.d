lib/baseline/burns.ml: Anonmem Empty Format Int Protocol Stdlib
