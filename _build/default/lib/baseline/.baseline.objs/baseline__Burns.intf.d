lib/baseline/burns.mli: Anonmem Empty Protocol
