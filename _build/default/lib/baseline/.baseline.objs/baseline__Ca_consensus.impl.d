lib/baseline/ca_consensus.ml: Anonmem Format Int Protocol Stdlib
