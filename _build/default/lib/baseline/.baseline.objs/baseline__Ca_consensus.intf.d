lib/baseline/ca_consensus.mli: Anonmem Protocol
