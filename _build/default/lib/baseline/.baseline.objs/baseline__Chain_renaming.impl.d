lib/baseline/chain_renaming.ml: Anonmem Coord Format Int Protocol Stdlib
