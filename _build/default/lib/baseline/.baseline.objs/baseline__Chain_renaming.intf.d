lib/baseline/chain_renaming.mli: Anonmem Coord Protocol
