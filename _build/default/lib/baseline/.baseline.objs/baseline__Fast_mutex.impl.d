lib/baseline/fast_mutex.ml: Anonmem Empty Format Int Printf Protocol Stdlib
