lib/baseline/fast_mutex.mli: Anonmem Empty Protocol
