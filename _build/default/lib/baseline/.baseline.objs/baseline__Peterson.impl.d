lib/baseline/peterson.ml: Anonmem Empty Format Int Protocol Stdlib
