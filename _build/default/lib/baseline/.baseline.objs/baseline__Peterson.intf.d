lib/baseline/peterson.mli: Anonmem Empty Protocol
