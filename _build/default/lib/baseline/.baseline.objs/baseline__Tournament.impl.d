lib/baseline/tournament.ml: Anonmem Empty Format Int List Protocol Stdlib
