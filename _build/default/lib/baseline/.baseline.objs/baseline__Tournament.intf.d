lib/baseline/tournament.mli: Anonmem Empty Protocol
