(** Burns' one-bit deadlock-free mutual exclusion for [n] processes over [n]
    named single-bit registers — the named-register comparator for the
    paper's §3.2 discussion.

    With a priori agreement on register names (register [i - 1] is process
    [i]'s flag) and on the order of process indices, [n] registers suffice
    for deadlock-free mutex for any [n] — whereas anonymously even two
    processes need an odd number of registers (Theorem 3.1) and unknown [n]
    is impossible (Theorem 6.2).

    Instantiate with identifiers [1..n], identity namings, [m = n]. *)

open Anonmem

module P :
  Protocol.PROTOCOL
    with type input = unit
     and type output = Empty.t
     and type Value.t = int
