(** Obstruction-free consensus from {e named} registers via repeated
    commit-adopt rounds (the standard register-based construction; cf. the
    paper's §4 pointer to obstruction-free consensus with named registers).

    Round [r] owns two arrays [A_r[1..n]] and [B_r[1..n]] of single-writer
    slots — a layout that requires global agreement both on register names
    and on the process indexing, neither of which exists in the anonymous
    model. A process proposes its preference to round [r]'s commit-adopt:
    if it commits, it decides; if it merely adopts, it carries the adopted
    value to round [r + 1]. A process that runs alone commits in its
    current round, so the protocol is obstruction-free.

    The number of rounds is bounded by the register budget:
    [m = 2 * n * rounds]. A process that exhausts all rounds (possible only
    under unbounded contention) spins in place, which is consistent with
    obstruction freedom. Instantiate with identifiers [1..n] and identity
    namings; inputs are non-zero. *)

open Anonmem

module P : sig
  include
    Protocol.PROTOCOL
      with type input = int
       and type output = int
       and type Value.t = int

  val registers_for : n:int -> rounds:int -> int
  (** [2 * n * rounds]. [default_registers ~n] allows 8 rounds. *)

  val round_of : local -> int
  (** Current commit-adopt round (0-based). *)
end
