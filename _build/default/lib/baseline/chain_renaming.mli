(** The paper's "trivial" perfect renaming from ordered election objects
    (§5) — a {e named-register} baseline.

    With agreement on register names, lay out [n - 1] election objects in
    consecutive register blocks and walk them in order: a process applies
    the election at object 1, 2, … until it wins (taking the object's index
    as its new name) or has lost all [n - 1] objects (taking the name [n]).
    Each election object is an instance of the obstruction-free consensus
    of Figure 2 run on identifiers — correct a fortiori when names are
    agreed — occupying its own block of [2n - 1] registers, so
    [m = (n - 1) * (2n - 1)].

    This is exactly the construction that fails without prior agreement:
    anonymity destroys the block layout, which is why Figure 3 must play
    every round in the same shared space. Instantiate with identity
    namings; any distinct positive identifiers work. *)

open Anonmem

module P : sig
  include
    Protocol.PROTOCOL
      with type input = unit
       and type output = int
       and module Value = Coord.Consensus.Value

  val object_of : local -> int
  (** Which election object (0-based) the process is currently playing. *)
end
