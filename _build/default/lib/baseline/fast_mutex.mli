(** Lamport's fast mutual exclusion (1987) — the named-register algorithm
    whose {e uncontended} entry touches a constant number of registers.

    Layout ([m = n + 2]): register 0 is [x], register 1 is [y], register
    [1 + i] is process [i]'s flag. A solo entry costs exactly five shared
    accesses (write [b_i], write [x], read [y], write [y], read [x]) and
    the exit two — independent of [n]. Under the anonymous model such an
    algorithm cannot exist even for two processes without scanning: a
    memory-anonymous process has no way to find [x] and [y] without prior
    agreement, and Figure 1 pays 3m + 1 accesses for its solo entry. The
    contrast is measured in bench B2.

    Guarantees mutual exclusion and deadlock freedom (not starvation
    freedom). Instantiate with identifiers [1..n], identity namings,
    [m = n + 2]. *)

open Anonmem

module P :
  Protocol.PROTOCOL
    with type input = unit
     and type output = Empty.t
     and type Value.t = int
