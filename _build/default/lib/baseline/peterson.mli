(** Peterson's classic two-process mutual exclusion algorithm — a
    {e named-register} baseline.

    Uses three registers with globally agreed roles: physical register 0 is
    process 1's flag, register 1 is process 2's flag, register 2 is the
    victim. The contrast with Figure 1 is the point: the algorithm is
    neither memory-anonymous (each register's role is fixed a priori) nor
    symmetric (a process must know whether it is process 1 or 2), and in
    exchange it achieves starvation freedom, which Figure 1 does not claim.

    Instantiate with identifiers 1 and 2 and identity namings only. *)

open Anonmem

module P :
  Protocol.PROTOCOL
    with type input = unit
     and type output = Empty.t
     and type Value.t = int
