(** Tournament mutual exclusion: a binary tree of Peterson instances —
    the classic {e named-register} construction for [n] processes
    ([n] a power of two, [m = 3(n-1)] registers).

    Each internal tree node runs a two-party Peterson match between
    whatever arrives from its left and right subtrees; a process entering
    the critical section has won every match from its leaf to the root, and
    releases them in reverse order on exit. The construction inherits
    Peterson's starvation freedom, giving a named-model property that the
    paper's anonymous Figure 1 provably lacks (see the E12 experiment).

    Everything about it depends on prior agreement: the tree layout in
    register space, the process-to-leaf assignment, and the role (left or
    right) at every node are all derived from globally known indices.
    Instantiate with identifiers [1..n] and identity namings. *)

open Anonmem

module P : sig
  include
    Protocol.PROTOCOL
      with type input = unit
       and type output = Empty.t
       and type Value.t = int

  val levels : n:int -> int
  (** Tree height, [log2 n]. *)
end
