lib/check/dot.ml: Array Flatgraph Format Hashtbl List String
