lib/check/dot.mli: Flatgraph Format
