lib/check/explore.ml: Anonmem Array Flatgraph Hashtbl List Naming Option Protocol Queue
