lib/check/explore.mli: Anonmem Flatgraph Naming Protocol
