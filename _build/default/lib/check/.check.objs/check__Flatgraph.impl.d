lib/check/flatgraph.ml: Anonmem Array Format Protocol
