lib/check/flatgraph.mli: Anonmem Format Protocol
