lib/check/hunt.ml: Anonmem Array Fun List Naming Protocol Rng Runtime Schedule Stdlib
