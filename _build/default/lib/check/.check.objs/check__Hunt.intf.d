lib/check/hunt.mli: Anonmem Protocol Runtime Trace
