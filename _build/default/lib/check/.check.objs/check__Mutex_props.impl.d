lib/check/mutex_props.ml: Array Flatgraph Fun List Option Scc
