lib/check/mutex_props.mli: Flatgraph
