lib/check/props.ml: Anonmem Array List Protocol Stdlib
