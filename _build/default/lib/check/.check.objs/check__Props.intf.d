lib/check/props.mli: Anonmem Protocol
