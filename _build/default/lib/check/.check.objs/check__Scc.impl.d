lib/check/scc.ml: Array Stack
