lib/check/scc.mli:
