let status_letter = function
  | Flatgraph.Rem -> 'R'
  | Try -> 'T'
  | Crit -> 'C'
  | Exit -> 'E'
  | Done -> 'D'

let of_flat ?(max_nodes = 500) ?(highlight = []) (g : Flatgraph.t) ppf () =
  let n = min (Flatgraph.n_states g) max_nodes in
  let highlighted = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace highlighted v ()) highlight;
  Format.fprintf ppf "digraph states {@.";
  Format.fprintf ppf "  rankdir=LR; node [shape=box, fontname=monospace];@.";
  for v = 0 to n - 1 do
    let sts = g.statuses.(v) in
    let label =
      String.init (Array.length sts) (fun p -> status_letter sts.(p))
    in
    let crit =
      Array.fold_left
        (fun acc s -> if s = Flatgraph.Crit then acc + 1 else acc)
        0 sts
    in
    let color =
      if crit >= 2 then " style=filled fillcolor=red"
      else if Hashtbl.mem highlighted v then " style=filled fillcolor=orange"
      else if crit = 1 then " style=filled fillcolor=lightblue"
      else ""
    in
    Format.fprintf ppf "  s%d [label=\"%d:%s\"%s];@." v v label color
  done;
  for v = 0 to n - 1 do
    List.iter
      (fun (t : Flatgraph.trans) ->
        if t.dst < n then
          Format.fprintf ppf "  s%d -> s%d [label=\"p%d\"%s];@." v t.dst
            t.proc
            (if t.enters_cs then " penwidth=2 color=blue" else ""))
      g.succs.(v)
  done;
  if Flatgraph.n_states g > n then
    Format.fprintf ppf
      "  elided [shape=plaintext, label=\"(%d more states elided)\"];@."
      (Flatgraph.n_states g - n);
  Format.fprintf ppf "}@."
