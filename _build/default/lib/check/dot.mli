(** Graphviz export of explored state graphs, for eyeballing small
    instances (the m = 3 mutex fits on a page at [~max_nodes:300]). *)

val of_flat :
  ?max_nodes:int ->
  ?highlight:int list ->
  Flatgraph.t ->
  Format.formatter ->
  unit ->
  unit
(** [of_flat g ppf ()] writes a digraph: one node per state labelled with
    its processes' statuses (R/T/C/E/D), red when two processes are
    critical, orange for [highlight] (e.g. a violation cycle), and one edge
    per transition labelled with the stepping process (bold when it enters
    the critical section). States beyond [max_nodes] (default 500) are
    elided with a note. *)
