open Anonmem

module Make (P : Protocol.PROTOCOL) = struct
  type config = {
    ids : int array;
    inputs : P.input array;
    namings : Naming.t array;
  }

  let config ?m ~ids ~inputs () =
    let ids = Array.of_list ids in
    let n = Array.length ids in
    let m = match m with Some m -> m | None -> P.default_registers ~n in
    {
      ids;
      inputs = Array.of_list inputs;
      namings = Array.init n (fun _ -> Naming.identity m);
    }

  type state = { mem : P.Value.t array; locals : P.local array }

  type label = { proc : int; enters_cs : bool }

  type transition = { dst : int; label : label }

  type graph = {
    cfg : config;
    states : state array;
    succs : transition list array;
    complete : bool;
  }

  let initial cfg =
    let n = Array.length cfg.ids in
    let m = Naming.size cfg.namings.(0) in
    {
      mem = Array.make m P.Value.init;
      locals =
        Array.init n (fun i -> P.start ~n ~m ~id:cfg.ids.(i) cfg.inputs.(i));
    }

  let statuses st = Array.map P.status st.locals

  let with_local st proc local =
    let locals = Array.copy st.locals in
    locals.(proc) <- local;
    { st with locals }

  let with_write st proc local phys v =
    let mem = Array.copy st.mem in
    mem.(phys) <- v;
    let locals = Array.copy st.locals in
    locals.(proc) <- local;
    { mem; locals }

  (* All states one step of [proc] can lead to (two for a coin flip). *)
  let step_states cfg st proc =
    let n = Array.length st.locals in
    let m = Array.length st.mem in
    let naming = cfg.namings.(proc) in
    match P.step ~n ~m ~id:cfg.ids.(proc) st.locals.(proc) with
    | Protocol.Read (j, k) ->
      let v = st.mem.(Naming.apply naming j) in
      [ with_local st proc (k v) ]
    | Protocol.Write (j, v, l) ->
      [ with_write st proc l (Naming.apply naming j) v ]
    | Protocol.Rmw (j, f) ->
      let phys = Naming.apply naming j in
      let v, l = f st.mem.(phys) in
      [ with_write st proc l phys v ]
    | Protocol.Internal l -> [ with_local st proc l ]
    | Protocol.Coin k -> [ with_local st proc (k true); with_local st proc (k false) ]

  let successors cfg st =
    let acc = ref [] in
    Array.iteri
      (fun proc local ->
        if not (Protocol.is_decided (P.status local)) then begin
          let before_crit = P.status local = Protocol.Critical in
          List.iter
            (fun st' ->
              let enters_cs =
                (not before_crit)
                && P.status st'.locals.(proc) = Protocol.Critical
              in
              acc := ({ proc; enters_cs }, st') :: !acc)
            (step_states cfg st proc)
        end)
      st.locals;
    List.rev !acc

  let explore ?(max_states = 2_000_000) cfg =
    let table : (state, int) Hashtbl.t = Hashtbl.create 4096 in
    let states_rev = ref [] in
    let n_states = ref 0 in
    (* queue of state ids whose successors are not yet computed *)
    let pending = Queue.create () in
    let complete = ref true in
    let intern st =
      match Hashtbl.find_opt table st with
      | Some id -> Some id
      | None ->
        if !n_states >= max_states then begin
          complete := false;
          None
        end
        else begin
          let id = !n_states in
          Hashtbl.add table st id;
          states_rev := st :: !states_rev;
          incr n_states;
          Queue.add (id, st) pending;
          Some id
        end
    in
    ignore (intern (initial cfg));
    let out = Hashtbl.create 4096 in
    while not (Queue.is_empty pending) do
      let id, st = Queue.pop pending in
      let trans =
        List.filter_map
          (fun (label, st') ->
            match intern st' with
            | Some dst -> Some { dst; label }
            | None -> None)
          (successors cfg st)
      in
      Hashtbl.replace out id trans
    done;
    let states = Array.of_list (List.rev !states_rev) in
    let succs =
      Array.init (Array.length states) (fun id ->
          Option.value ~default:[] (Hashtbl.find_opt out id))
    in
    { cfg; states; succs; complete = !complete }

  let solo_run cfg st ~proc ~max_steps =
    let rec go st steps =
      match P.status st.locals.(proc) with
      | Protocol.Decided v -> `Decided v
      | _ ->
        if steps >= max_steps then `Out_of_steps
        else
          let n = Array.length st.locals in
          let m = Array.length st.mem in
          match P.step ~n ~m ~id:cfg.ids.(proc) st.locals.(proc) with
          | Protocol.Coin _ -> `Coin
          | _ ->
            (match step_states cfg st proc with
            | [ st' ] -> go st' (steps + 1)
            | _ -> assert false)
    in
    go st 0

  let check_obstruction_freedom ?bound g =
    let n = Array.length g.cfg.ids in
    let m = Naming.size g.cfg.namings.(0) in
    let bound =
      match bound with Some b -> b | None -> 4 * m * (n + 2) * (n + 2)
    in
    let exception Found of int * int in
    try
      Array.iteri
        (fun sid st ->
          Array.iteri
            (fun proc local ->
              if not (Protocol.is_decided (P.status local)) then
                match solo_run g.cfg st ~proc ~max_steps:bound with
                | `Decided _ -> ()
                | `Out_of_steps | `Coin -> raise (Found (sid, proc)))
            st.locals)
        g.states;
      None
    with Found (sid, proc) -> Some (sid, proc)

  let to_flat g =
    {
      Flatgraph.n_procs = Array.length g.cfg.ids;
      statuses =
        Array.map
          (fun st -> Array.map (fun l -> Flatgraph.of_status (P.status l)) st.locals)
          g.states;
      succs =
        Array.map
          (fun ts ->
            List.map
              (fun { dst; label } ->
                {
                  Flatgraph.dst;
                  proc = label.proc;
                  enters_cs = label.enters_cs;
                })
              ts)
          g.succs;
      complete = g.complete;
    }
end
