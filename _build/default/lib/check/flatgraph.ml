open Anonmem

type proc_status = Rem | Try | Crit | Exit | Done

type trans = { dst : int; proc : int; enters_cs : bool }

type t = {
  n_procs : int;
  statuses : proc_status array array;
  succs : trans list array;
  complete : bool;
}

let n_states t = Array.length t.statuses

let of_status : 'o Protocol.status -> proc_status = function
  | Protocol.Remainder -> Rem
  | Trying -> Try
  | Critical -> Crit
  | Exiting -> Exit
  | Decided _ -> Done

let pp_status ppf s =
  Format.pp_print_string ppf
    (match s with
    | Rem -> "remainder"
    | Try -> "trying"
    | Crit -> "critical"
    | Exit -> "exiting"
    | Done -> "decided")
