(** Protocol-agnostic view of a reachable-state graph: just statuses and
    labeled edges. The generic property checkers (mutual exclusion,
    deadlock freedom, agreement shapes) work on this, so they are shared by
    every protocol without functor plumbing. *)

open Anonmem

(** Status of one process in one state, without the output payload. *)
type proc_status = Rem | Try | Crit | Exit | Done

type trans = { dst : int; proc : int; enters_cs : bool }

type t = {
  n_procs : int;
  statuses : proc_status array array;  (** [statuses.(state).(proc)] *)
  succs : trans list array;
  complete : bool;
}

val n_states : t -> int

val of_status : 'o Protocol.status -> proc_status

val pp_status : Format.formatter -> proc_status -> unit
