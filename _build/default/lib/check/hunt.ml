open Anonmem

type strategy = Uniform | Bursts

type outcome = {
  attempts_made : int;
  steps_taken : int;
  witness_seed : int option;
}

module Make (P : Protocol.PROTOCOL) = struct
  module R = Runtime.Make (P)

  let burst_schedule rng n : Schedule.t =
    let current = ref 0 in
    let left = ref 0 in
    fun view ->
      if !left <= 0 then begin
        current := Rng.int rng n;
        (* mostly short bursts, occasionally long sleeps of the others *)
        left := 1 + Rng.int rng (if Rng.bool rng then 4 else 60)
      end;
      decr left;
      if view.Schedule.kind !current = Schedule.Finished then begin
        left := 0;
        Schedule.random rng view
      end
      else Some !current

  let schedule_of strategy rng n =
    match strategy with
    | Uniform -> Schedule.random rng
    | Bursts -> burst_schedule rng n

  let mutex_violation rt = R.critical_pair rt <> None

  let disagreement ~equal rt =
    let decided =
      Array.to_list (R.decisions rt) |> List.filter_map Fun.id
    in
    match decided with
    | [] -> false
    | v :: rest -> List.exists (fun w -> not (equal v w)) rest

  (* One seeded attempt; deterministic given (seed, record_trace). *)
  let attempt ~strategy ~steps_per_attempt ~violation ~ids ~inputs ~m
      ~record_trace seed =
    let n = List.length ids in
    let rng = Rng.create (seed * 2654435761) in
    let cfg : R.config =
      {
        ids = Array.of_list ids;
        inputs = Array.of_list inputs;
        namings = Array.init n (fun _ -> Naming.random rng m);
        rng = Some (Rng.split rng);
        record_trace;
      }
    in
    let rt = R.create cfg in
    let sched = schedule_of strategy rng n in
    let hit = ref false in
    let steps = ref 0 in
    (try
       for _ = 1 to steps_per_attempt do
         (match
            sched { n; clock = R.clock rt; kind = (fun i -> R.kind rt i) }
          with
         | Some i ->
           ignore (R.step rt i);
           incr steps
         | None -> raise Stdlib.Exit);
         if violation rt then begin
           hit := true;
           raise Stdlib.Exit
         end
       done
     with Stdlib.Exit -> ());
    (!hit, !steps, rt)

  let hunt ?(strategy = Bursts) ?(attempts = 1_000)
      ?(steps_per_attempt = 2_000) ?(seed = 1) ~violation ~ids ~inputs ~m () =
    let total_steps = ref 0 in
    let result = ref None in
    let a = ref 0 in
    while !result = None && !a < attempts do
      incr a;
      let attempt_seed = seed + !a in
      let hit, steps, _ =
        attempt ~strategy ~steps_per_attempt ~violation ~ids ~inputs ~m
          ~record_trace:false attempt_seed
      in
      total_steps := !total_steps + steps;
      if hit then result := Some attempt_seed
    done;
    match !result with
    | None ->
      ( { attempts_made = !a; steps_taken = !total_steps; witness_seed = None },
        None )
    | Some s ->
      (* replay with tracing for the witness *)
      let _, _, rt =
        attempt ~strategy ~steps_per_attempt ~violation ~ids ~inputs ~m
          ~record_trace:true s
      in
      ( {
          attempts_made = !a;
          steps_taken = !total_steps;
          witness_seed = Some s;
        },
        Some (R.trace rt) )
end
