type me_violation = { state : int; procs : int * int }

type df_violation = { states : int list; trying : int list }

let mutual_exclusion (g : Flatgraph.t) =
  let exception Found of me_violation in
  try
    Array.iteri
      (fun sid statuses ->
        let crit = ref [] in
        Array.iteri
          (fun p s -> if s = Flatgraph.Crit then crit := p :: !crit)
          statuses;
        match !crit with
        | p :: q :: _ -> raise (Found { state = sid; procs = (q, p) })
        | _ -> ())
      g.statuses;
    None
  with Found v -> Some v

let is_active = function
  | Flatgraph.Try | Crit | Exit -> true
  | Rem | Done -> false

(* Core fair-cycle search by strong-fairness refinement.

   We look for an SCC, in the subgraph induced by [state_ok] states and
   [edge_ok] edges, around which a run can cycle forever legally: every
   process that is active in some member state takes a step inside the SCC
   (processes never fail, and critical/exiting processes are obliged to
   move). An SCC containing a state where some obliged process can never
   step is shrunk by removing those states, and the search repeats until
   stable. [interesting] decides which stable fair SCCs constitute a
   violation; the first one found is returned (its member states). *)
let find_fair_cycle (g : Flatgraph.t) ~state_ok ~edge_ok ~interesting =
  let n_states = Flatgraph.n_states g in
  let n_procs = g.n_procs in
  let alive = Array.init n_states state_ok in
  let internal_succs v =
    if not alive.(v) then []
    else
      List.filter_map
        (fun (t : Flatgraph.trans) ->
          if edge_ok t && alive.(t.dst) then Some t.dst else None)
        g.succs.(v)
  in
  let rec iterate () =
    let scc = Scc.compute ~n:n_states ~succs:internal_succs in
    let comps = Scc.components scc in
    let changed = ref false in
    let found = ref None in
    let examine members =
      match List.filter (fun v -> alive.(v)) members with
      | [] -> ()
      | first :: _ as members ->
        let comp_id = scc.component.(first) in
        let stepping = Array.make n_procs false in
        let has_edge = ref false in
        List.iter
          (fun v ->
            List.iter
              (fun (t : Flatgraph.trans) ->
                if
                  edge_ok t && alive.(t.dst)
                  && scc.component.(t.dst) = comp_id
                then begin
                  has_edge := true;
                  stepping.(t.proc) <- true
                end)
              g.succs.(v))
          members;
        if !has_edge then begin
          let missing p =
            (not stepping.(p))
            && List.exists (fun v -> is_active g.statuses.(v).(p)) members
          in
          let missing_procs = List.filter missing (List.init n_procs Fun.id) in
          match missing_procs with
          | [] ->
            if !found = None && interesting members then found := Some members
          | _ ->
            List.iter
              (fun v ->
                if
                  List.exists
                    (fun p -> is_active g.statuses.(v).(p))
                    missing_procs
                then begin
                  alive.(v) <- false;
                  changed := true
                end)
              members
        end
    in
    Array.iter examine comps;
    match !found with
    | Some members -> Some members
    | None -> if !changed then iterate () else None
  in
  iterate ()

let trying_in (g : Flatgraph.t) members =
  List.filter
    (fun p ->
      List.exists (fun v -> g.statuses.(v).(p) = Flatgraph.Try) members)
    (List.init g.n_procs Fun.id)

(* Deadlock-freedom: no fair cycle avoiding every CS entry while someone is
   trying. *)
let deadlock_freedom (g : Flatgraph.t) =
  find_fair_cycle g
    ~state_ok:(fun _ -> true)
    ~edge_ok:(fun t -> not t.enters_cs)
    ~interesting:(fun members -> trying_in g members <> [])
  |> Option.map (fun members -> { states = members; trying = trying_in g members })

(* Starvation-freedom for process [p]: no fair cycle in which p is trying
   throughout and only p's own CS entries are forbidden — other processes
   may enter and leave their critical sections along the cycle. *)
let starves (g : Flatgraph.t) p =
  find_fair_cycle g
    ~state_ok:(fun v -> g.statuses.(v).(p) = Flatgraph.Try)
    ~edge_ok:(fun t -> not (t.proc = p && t.enters_cs))
    ~interesting:(fun _ -> true)
  |> Option.map (fun members -> { states = members; trying = [ p ] })

let starvation_freedom (g : Flatgraph.t) =
  let rec go p =
    if p >= g.n_procs then None
    else
      match starves g p with
      | Some v -> Some (p, v)
      | None -> go (p + 1)
  in
  go 0
