(** Verdicts for the two mutual-exclusion requirements (paper §3.1) over a
    fully explored state graph. *)

type me_violation = { state : int; procs : int * int }
(** A reachable state with two processes in their critical sections. *)

type df_violation = {
  states : int list;  (** a fair non-progress cycle's states *)
  trying : int list;  (** processes trying forever along it *)
}

val mutual_exclusion : Flatgraph.t -> me_violation option
(** [None] = no reachable state has two processes in the critical section.
    Meaningful only when the graph is complete. *)

val deadlock_freedom : Flatgraph.t -> df_violation option
(** Searches for a reachable fair cycle in which: no step enters a critical
    section, at least one process is trying throughout, every process that
    is active (trying / critical / exiting) somewhere on the cycle takes
    steps on it (processes never fail and always leave the critical
    section, so a run that stalls such a process is not a legal
    counterexample), and remainder processes may stall (participation is
    not required). Found by strong-fairness refinement over SCCs of the
    enter-free subgraph. [None] = deadlock-free. *)

val starves : Flatgraph.t -> int -> df_violation option
(** [starves g p]: a fair cycle along which [p] is trying throughout and
    never enters its critical section, while other processes may come and
    go through theirs — a starvation scenario for [p]. *)

val starvation_freedom : Flatgraph.t -> (int * df_violation) option
(** First process that can starve, if any. [None] = starvation-free.
    (Strictly stronger than deadlock-freedom; the paper's Figure 1 is
    deadlock-free but not starvation-free, Peterson is both.) *)
