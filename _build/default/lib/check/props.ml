open Anonmem

type 'o decided = { state : int; proc : int; output : 'o }

type 'o disagreement = { state : int; a : 'o decided; b : 'o decided }

let decided_in_state sid statuses =
  let acc = ref [] in
  Array.iteri
    (fun proc s ->
      match s with
      | Protocol.Decided output -> acc := { state = sid; proc; output } :: !acc
      | _ -> ())
    statuses;
  List.rev !acc

let decided_outputs statuses_of states =
  let acc = ref [] in
  Array.iteri
    (fun sid st ->
      acc := List.rev_append (decided_in_state sid (statuses_of st)) !acc)
    states;
  List.rev !acc

(* First state containing a decided pair satisfying [test]. *)
let find_pair ~test statuses_of states =
  let result = ref None in
  (try
     Array.iteri
       (fun sid st ->
         let decided = decided_in_state sid (statuses_of st) in
         let rec pairs = function
           | [] -> ()
           | a :: rest ->
             List.iter
               (fun b ->
                 if test a b then begin
                   result := Some { state = sid; a; b };
                   raise Stdlib.Exit
                 end)
               rest;
             pairs rest
         in
         pairs decided)
       states
   with Stdlib.Exit -> ());
  !result

let agreement ~equal ~statuses states =
  find_pair ~test:(fun a b -> not (equal a.output b.output)) statuses states

let distinct_outputs ~equal ~statuses states =
  find_pair ~test:(fun a b -> equal a.output b.output) statuses states

(* First decided output failing [check], scanning all states. *)
let find_decided ~check statuses_of states =
  let result = ref None in
  (try
     Array.iteri
       (fun sid st ->
         let sts = statuses_of st in
         List.iter
           (fun d ->
             if not (check sts d) then begin
               result := Some d;
               raise Stdlib.Exit
             end)
           (decided_in_state sid sts))
       states
   with Stdlib.Exit -> ());
  !result

let validity ~allowed ~statuses states =
  find_decided ~check:(fun _ d -> allowed d.output) statuses states

let adaptive_range ~name_of ~statuses states =
  let participants sts =
    Array.fold_left
      (fun acc s -> match s with Protocol.Remainder -> acc | _ -> acc + 1)
      0 sts
  in
  find_decided
    ~check:(fun sts d ->
      name_of d.output >= 1 && name_of d.output <= participants sts)
    statuses states
