(** Generic safety properties of decision tasks over explored graphs.

    These work on the per-state status arrays produced by an
    [Explore.Make(P).graph] (via [statuses]); they are polymorphic in the
    protocol so consensus, election and renaming share them. *)

open Anonmem

type 'o decided = { state : int; proc : int; output : 'o }

type 'o disagreement = { state : int; a : 'o decided; b : 'o decided }

val decided_outputs :
  ('s -> 'o Protocol.status array) -> 's array -> 'o decided list
(** Every (state, proc, output) where the process has decided. *)

val agreement :
  equal:('o -> 'o -> bool) ->
  statuses:('s -> 'o Protocol.status array) ->
  's array ->
  'o disagreement option
(** Two processes decided on non-equal values in the same reachable state —
    a consensus agreement violation. [None] = agreement holds in all runs
    (decisions are stable, so any disagreement across a run also shows up
    inside a single later state). *)

val validity :
  allowed:('o -> bool) ->
  statuses:('s -> 'o Protocol.status array) ->
  's array ->
  'o decided option
(** A decision outside the allowed set (e.g. not any process's input). *)

val distinct_outputs :
  equal:('o -> 'o -> bool) ->
  statuses:('s -> 'o Protocol.status array) ->
  's array ->
  'o disagreement option
(** Renaming uniqueness: two processes decided on {e equal} values. Returns
    the duplicated pair if found. *)

val adaptive_range :
  name_of:('o -> int) ->
  statuses:('s -> 'o Protocol.status array) ->
  's array ->
  'o decided option
(** Adaptivity of perfect renaming: in every state, every decided name must
    be at most the number of processes that have left their remainder
    section (= the participants so far, since participation is
    irrevocable). Returns an offending decision. *)
