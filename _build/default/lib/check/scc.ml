type t = { count : int; component : int array }

(* Iterative Tarjan. The explicit stack holds (vertex, remaining successor
   list) frames; [index] doubles as the visited marker (-1 = unvisited). *)
let compute ~n ~succs =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let component = Array.make n (-1) in
  let comp_count = ref 0 in
  let rec_stack = Stack.create () in
  let open_vertex v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Stack.push (v, succs v) rec_stack
  in
  let close_vertex v =
    if lowlink.(v) = index.(v) then begin
      let c = !comp_count in
      incr comp_count;
      let rec pop () =
        match !stack with
        | [] -> assert false
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          component.(w) <- c;
          if w <> v then pop ()
      in
      pop ()
    end
  in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      open_vertex root;
      while not (Stack.is_empty rec_stack) do
        let v, pending = Stack.pop rec_stack in
        match pending with
        | [] ->
          close_vertex v;
          (* propagate lowlink to the parent frame *)
          (match Stack.top_opt rec_stack with
          | Some (p, _) -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
          | None -> ())
        | w :: rest ->
          Stack.push (v, rest) rec_stack;
          if index.(w) = -1 then open_vertex w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
      done
    end
  done;
  (* Tarjan numbers components in reverse topological order already. *)
  { count = !comp_count; component }

let components t =
  let buckets = Array.make t.count [] in
  Array.iteri
    (fun v c -> buckets.(c) <- v :: buckets.(c))
    t.component;
  buckets
