(** Strongly connected components (iterative Tarjan), for the fair-cycle
    analysis behind the deadlock-freedom verdicts. *)

type t = {
  count : int;  (** number of components *)
  component : int array;  (** [component.(v)] is the component id of [v] *)
}

val compute : n:int -> succs:(int -> int list) -> t
(** [compute ~n ~succs] runs over vertices [0..n-1]. Iterative, so graphs
    with millions of states do not blow the OCaml stack. Components are numbered as Tarjan
    completes them, i.e. sinks first: an edge [u -> v] across components has
    [component.(u) > component.(v)]. *)

val components : t -> int list array
(** Member vertices of each component. *)
