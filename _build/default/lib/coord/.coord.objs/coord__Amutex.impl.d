lib/coord/amutex.ml: Anonmem Empty Format Int Protocol Stdlib
