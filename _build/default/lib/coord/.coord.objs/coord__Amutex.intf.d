lib/coord/amutex.mli: Anonmem Empty Protocol
