lib/coord/ccp.ml: Anonmem Format Int Printf Protocol Stdlib
