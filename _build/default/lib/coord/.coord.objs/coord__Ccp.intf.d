lib/coord/ccp.mli: Anonmem Protocol
