lib/coord/ccp_k.ml: Anonmem Format Int Printf Protocol Stdlib
