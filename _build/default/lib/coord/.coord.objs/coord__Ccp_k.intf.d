lib/coord/ccp_k.mli: Anonmem Protocol
