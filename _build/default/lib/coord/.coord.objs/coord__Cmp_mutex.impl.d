lib/coord/cmp_mutex.ml: Anonmem Empty Format Int Protocol Stdlib
