lib/coord/cmp_mutex.mli: Anonmem Empty Protocol
