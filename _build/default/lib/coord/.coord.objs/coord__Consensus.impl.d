lib/coord/consensus.ml: Anonmem Format List Protocol Stdlib
