lib/coord/consensus.mli: Anonmem Protocol
