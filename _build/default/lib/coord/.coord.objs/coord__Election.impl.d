lib/coord/election.ml: Consensus Format
