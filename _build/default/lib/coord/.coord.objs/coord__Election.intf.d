lib/coord/election.mli: Anonmem Consensus Protocol
