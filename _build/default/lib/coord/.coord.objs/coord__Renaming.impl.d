lib/coord/renaming.ml: Anonmem Format List Protocol Stdlib
