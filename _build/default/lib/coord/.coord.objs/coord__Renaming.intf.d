lib/coord/renaming.mli: Anonmem Protocol
