(** Figure 1: the memory-anonymous symmetric deadlock-free mutual exclusion
    algorithm (Taubenfeld, PODC'17 §3.3).

    The paper proves it correct for {e two} processes and any odd number of
    registers [m >= 3] (Theorems 3.1–3.3). The code itself never refers to
    [n], so the protocol can be instantiated with any number of processes —
    which is exactly what the Theorem 3.4 and Theorem 6.2 demonstrations
    need (running it with [n > 2] or with [m] sharing a divisor with some
    [l <= n] lets the executable adversaries exhibit the violations the
    proofs construct).

    Register values are [0] (free) or a process identifier. One atomic step
    per register access; the paper's conditional writes
    ([if p.i[j] = 0 then p.i[j] := i]) are a read step followed by a write
    step, as the read/write model requires.

    The local state keeps counters derived from [myview] (how many entries
    held my id / zero) rather than the full array: the algorithm only ever
    uses the view through those two aggregates, and the smaller state helps
    the model checker. *)

open Anonmem

module P : sig
  include
    Protocol.PROTOCOL
      with type input = unit
       and type output = Empty.t
       and type Value.t = int

  val threshold : m:int -> int
  (** The give-up threshold [ceil (m/2)] from line 4. *)
end
