(** Choice coordination over anonymous {e read-modify-write} registers —
    the §7 contrast (Rabin 1982).

    In the choice-coordination problem, processes must all choose the same
    one of [k = 2] alternatives, where each alternative is a shared
    register but processes disagree on which is "first" (our namings model
    exactly that). Rabin solved it with atomic read-modify-write registers;
    the paper's point in citing it is that RMW anonymity and read/write
    anonymity are very different beasts — none of Rabin's ideas transfer.

    This module implements a Rabin-style level-racing scheme:

    A process carries a level [r] (initially 0) and visits the two
    registers alternately, each visit one atomic RMW. If the register is
    marked chosen, choose it. If the register's level is below [r], the
    process is ahead of everybody who passed through here — mark it chosen.
    If above, catch up and cross over. If equal, flip a coin; heads raises
    the register's level (and its own) before crossing, tails just crosses.
    Coins break the symmetry that dooms deterministic processes in lock
    step; levels are capped at [cap] (Rabin's bounded symbol alphabet), so
    runs that exhaust the cap keep crossing at the cap level forever —
    termination holds with probability about [1 - 2^{-cap}] per contention
    burst rather than deterministically.

    Safety (all deciders choose the same physical register) is exhaustively
    model-checked in the test suite for [n <= 3] over all namings and both
    coin outcomes; termination statistics are measured in the benches.

    The [output] is the {e local} index of the chosen register; translate
    through the process's naming to compare across processes. *)

open Anonmem

(** [Make (C)] fixes the level cap and determinism. [deterministic = true]
    replaces every coin by "heads" — used to demonstrate why Rabin needed
    randomization (lock-step symmetry then livelocks at the cap). *)
module Make (C : sig
  val cap : int
  val deterministic : bool
end) : sig
  include
    Protocol.PROTOCOL
      with type input = unit
       and type output = int
       and type Value.t = int

  val level_of : local -> int
  (** The process's current level. *)
end

module P : module type of Make (struct
  let cap = 8
  let deterministic = false
end)
(** The default randomized instance with cap 8. *)

module Det : module type of Make (struct
  let cap = 8
  let deterministic = true
end)
(** The deterministic strawman. *)
