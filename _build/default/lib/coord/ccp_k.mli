(** Choice coordination with [k] alternatives — a {e strawman}
    generalization, kept as a demonstration subject.

    The obvious way to extend the two-register scheme of {!Ccp} to [k]
    anonymous RMW registers is to walk them cyclically, carrying a level,
    claiming any register whose level falls strictly below one's own. This
    module implements exactly that — and the test suite {e refutes} it:
    with [k = 3] and two processes whose private numberings traverse the
    ring with opposite orientations, the model checker finds reachable
    states where the processes have chosen different registers. With equal
    orientations (all rotations of each other) the same checker proves the
    scheme safe.

    That dichotomy is the point: for [k = 2] every pair of numberings is
    orientation-compatible, which is why {!Ccp} is safe for all namings,
    and multi-alternative choice coordination genuinely needs the heavier
    machinery of Greenberg–Taubenfeld–Wang (the paper's [13]) — one more
    way the lack of prior agreement bites. *)

open Anonmem

module Make (C : sig
  val k : int
  val cap : int
end) : sig
  include
    Protocol.PROTOCOL
      with type input = unit
       and type output = int
       and type Value.t = int
end

module P3 : module type of Make (struct
  let k = 3
  let cap = 4
end)
(** The three-alternative instance used by the tests and tables. *)
