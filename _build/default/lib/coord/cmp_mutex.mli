(** Two-process memory-anonymous mutex under {e symmetry with arbitrary
    comparisons} — the second symmetry variant of the paper's §2.

    Theorem 3.1's "odd m only" characterization is proved for comparisons
    restricted to equality. This module shows the restriction is essential:
    once a process may order identifiers, a small change to Figure 1 gives
    a deadlock-free two-process mutex for {e every} m >= 2, even m
    included. The change: a process that sees a competitor keeps insisting
    when its own identifier is larger, and defers (cleans up and waits)
    when it is smaller — the comparison supplies the symmetry breaking that
    an odd register count supplied in Figure 1.

    Like Figure 1 it claims only zero registers, so the mutual-exclusion
    argument is unchanged; deadlock-freedom holds because the larger
    process never defers and the smaller one frees its registers. The
    claims are verified exhaustively in the test suite for m = 2, 3, 4
    over all relative namings.

    This is a reproduction-side extension (the paper defines the model
    variant but presents no algorithm for it). *)

open Anonmem

module P :
  Protocol.PROTOCOL
    with type input = unit
     and type output = Empty.t
     and type Value.t = int
