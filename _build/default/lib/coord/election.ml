
module P = struct
  module Value = Consensus.Value

  type input = unit
  type output = int
  type local = Consensus.P.local

  let name = "anonymous-election"

  let default_registers = Consensus.P.default_registers

  (* "Each process simply uses its own identifier as its initial input." *)
  let start ~n ~m ~id () = Consensus.P.start ~n ~m ~id id

  let step = Consensus.P.step
  let status = Consensus.P.status
  let compare_local = Consensus.P.compare_local
  let pp_local = Consensus.P.pp_local
  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end
