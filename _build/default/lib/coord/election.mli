(** Obstruction-free memory-anonymous election (paper §4, closing note).

    Each participant runs the Figure 2 consensus with its own identifier as
    input; the decision identifies the elected leader. All terminating
    participants output the same identifier, and it is the identifier of a
    participant. *)

open Anonmem

module P :
  Protocol.PROTOCOL
    with type input = unit
     and type output = int
     and module Value = Consensus.Value
(** [output] is the elected leader's identifier. *)
