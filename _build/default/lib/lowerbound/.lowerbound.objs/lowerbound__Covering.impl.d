lib/lowerbound/covering.ml: Anonmem Array Format Fun List Naming Printf Protocol Result Rng Runtime Schedule String Trace
