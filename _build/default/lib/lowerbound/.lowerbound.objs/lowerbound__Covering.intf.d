lib/lowerbound/covering.mli: Anonmem Format Protocol Runtime Trace
