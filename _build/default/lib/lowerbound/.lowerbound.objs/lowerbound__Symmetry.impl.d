lib/lowerbound/symmetry.ml: Anonmem Array Format Hashtbl List Naming Protocol Runtime Trace
