lib/lowerbound/symmetry.mli: Anonmem Format Protocol Runtime Trace
