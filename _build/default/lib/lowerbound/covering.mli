(** The §6 covering-argument adversary, executable (Theorems 6.2, 6.3, 6.5).

    Given a protocol and a register count [m], the adversary mechanically
    builds the run [rho = w; (z - x')] from the impossibility proofs:

    + {b probe}: run a designated process [q] alone until it "succeeds"
      (enters its critical section / decides); record the set [W] of
      physical registers it wrote ([write(y, q)] in the paper).
    + {b covering}: recruit [|W|] fresh processes. Because registers are
      anonymous and a process's steps before its first write read only
      initial values, the adversary may choose each recruit's naming
      {e after} watching it, so that recruit [k]'s first write lands on the
      [k]-th register of [W]. Run each recruit up to (not including) that
      first write; together they now cover [W]. This prefix is [x].
    + {b splice}: from [x] (in which nothing was written), let [q] run its
      solo run [y] again — legal, since [x] left memory in its initial
      state. [q] succeeds. Then release the {b block write}: every recruit
      performs its pending write, obliterating every trace of [q].
    + {b z-search}: the memory is now indistinguishable from [x'] (covering
      prefix + block write, no [q] at all), so the recruits, running alone,
      must again succeed — which the adversary realizes by searching
      schedules (solo runs per recruit, then seeded random schedules).

    The result is a single legal run in which both [q] and a recruit
    succeed: two processes in the critical section at once, two different
    consensus decisions, or the name 1 handed out twice.

    The subject protocol must not flip coins, and its view of [n] must not
    depend on the actual number of runtime processes (use
    {!Anonmem.Wrap.Fix_n} for protocols parameterized by [n]). *)

open Anonmem

module Make (P : Protocol.PROTOCOL) : sig
  module R : module type of Runtime.Make (P)

  type success = Entered_cs | Decided of P.output

  type outcome = {
    write_set : int list;
        (** physical registers [q] wrote during its solo run, in first-write
            order *)
    covering_prefix_steps : int list;
        (** steps each recruit took to reach its pending first write *)
    q_success : success;
    p_proc : int;  (** runtime index of the recruit that succeeded in [z] *)
    p_success : success;
    z_schedule_note : string;  (** how the z-extension was found *)
    trace : (P.Value.t, P.output) Trace.t;  (** the entire run [rho] *)
  }

  val pp_success : Format.formatter -> success -> unit

  val construct :
    ?q_id:int ->
    ?recruit_budget:int ->
    ?z_solo_budget:int ->
    ?z_random_budget:int ->
    ?z_seeds:int ->
    ?respect_names:bool ->
    m:int ->
    q_input:P.input ->
    recruit_input:(int -> P.input) ->
    unit ->
    (outcome, string) result
  (** [construct ~m ~q_input ~recruit_input ()] runs the whole
      construction. [recruit_input k] is the input of the [k]-th recruit
      (0-based). Fails with a diagnostic when an assumption of the proof
      does not hold for the subject (e.g. [q] never writes, or no
      z-extension is found within the search budgets — the latter indicates
      the subject lacks the progress property the theorem assumes).

      [respect_names] (default [false]) handicaps the adversary to the
      {e named} model: every recruit keeps the identity naming instead of
      one chosen after watching it. Against algorithms whose first write
      goes to a fixed own register (every named baseline), the covering
      step then fails with a diagnostic — demonstrating concretely why the
      §6 impossibility proofs need anonymous registers and do not
      contradict the named-model algorithms they are contrasted with. *)
end
