(** The Theorem 3.4 adversary, executable.

    If [m] and some [1 < l <= n] are not relatively prime, pick a divisor
    [d > 1] of [m] with [d <= n], give [d] processes the same ring ordering
    of the registers with initial registers spaced [m / d] apart (namings
    [rotation m (k * m / d)]), and run them in lock step. A symmetric
    algorithm that only compares identifiers for equality can never break
    the symmetry: either everyone enters the critical section together
    (mutual exclusion violated) or the global state eventually repeats with
    nobody having entered (deadlock-freedom violated).

    The driver observes which of the two actually happens for the protocol
    under test and returns the constructed run. *)

open Anonmem

type verdict =
  | Mutex_violation of { step : int; procs : int * int }
      (** two processes simultaneously critical after [step] steps *)
  | Livelock of { detected_at : int; period : int }
      (** the global state at step [detected_at - period] recurred at
          [detected_at] with no critical-section entry in between — the
          lock-step run loops forever without progress *)
  | Symmetry_broken of { step : int; proc : int }
      (** a process decided: the protocol escaped the lock-step symmetry
          (impossible for symmetric equality-only protocols; indicates the
          subject uses more than id equality) *)
  | No_violation of { steps : int }
      (** survived the step budget: the (m, d) pair does not exhibit the
          symmetry argument (expect this only when gcd-freedom holds) *)

val pp_verdict : Format.formatter -> verdict -> unit

val divisor_witness : n:int -> m:int -> int option
(** The smallest [d > 1] dividing [m] with [d <= n], i.e. the witness that
    [m] is not relatively prime to every [2 <= l <= n]. [None] means the
    Theorem 3.4 condition is satisfied (no symmetry attack exists). *)

module Make (P : Protocol.PROTOCOL) : sig
  module R : module type of Runtime.Make (P)

  val run :
    ?max_steps:int ->
    ids:int list ->
    inputs:P.input list ->
    m:int ->
    d:int ->
    unit ->
    verdict * (P.Value.t, P.output) Trace.t
  (** Runs [d] of the given processes (the first [d] ids/inputs) in lock
      step with rotated namings over [m] registers. Requires [d] divides
      [m]. Default budget 1,000,000 steps. *)

  val attack :
    ?max_steps:int ->
    ids:int list ->
    inputs:P.input list ->
    m:int ->
    unit ->
    (int * verdict * (P.Value.t, P.output) Trace.t) option
  (** Picks the divisor witness for [n = List.length ids] and runs it;
      [None] when [m] is relatively prime to all [l <= n]. Returns
      [(d, verdict, trace)]. *)
end
