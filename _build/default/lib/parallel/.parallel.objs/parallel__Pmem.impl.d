lib/parallel/pmem.ml: Anonmem Array Atomic Naming Protocol
