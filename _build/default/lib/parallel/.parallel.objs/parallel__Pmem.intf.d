lib/parallel/pmem.mli: Anonmem Naming Protocol
