lib/parallel/prun.ml: Anonmem Array Atomic Domain Naming Pmem Protocol Rng
