lib/parallel/prun.mli: Anonmem Naming Protocol
