(** Multicore execution: one OCaml domain per process over atomic shared
    memory.

    Where {!Anonmem.Runtime} interleaves steps under a scheduler the test
    chooses (the model's all-powerful adversary), this backend lets the
    operating system preempt real threads — the interleavings are genuine
    but not chosen, so it is the {e weaker} adversary and is used to check
    that the algorithms survive reality, not to replace the checker.

    Mutual exclusion is monitored with an atomic occupancy counter
    (incremented on every transition into the critical section): any
    overlap is latched in {!outcome.mutex_violation}. Runs are bounded by
    per-process step budgets, so obstruction-free protocols that livelock
    under contention simply report [None] decisions rather than hanging. *)

open Anonmem

module Make (P : Protocol.PROTOCOL) : sig
  type config = {
    ids : int array;
    inputs : P.input array;
    namings : Naming.t array;
    seed : int;  (** coin streams are split per process from this seed *)
  }

  type proc_result = {
    output : P.output option;
    steps : int;
    cs_entries : int;
  }

  type outcome = {
    results : proc_result array;
    mutex_violation : bool;
    memory : P.Value.t array;  (** snapshot after every domain joined *)
  }

  val run_decide : ?step_budget:int -> config -> outcome
  (** Each domain steps its process until it decides or exhausts the budget
      (default 2,000,000 steps). *)

  val run_sessions : ?step_budget:int -> sessions:int -> config -> outcome
  (** Mutex workload: each domain keeps entering and leaving its critical
      section until it has completed [sessions] of them (counted at exit
      back to the remainder) or runs out of budget. *)
end
