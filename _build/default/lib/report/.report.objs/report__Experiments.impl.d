lib/report/experiments.ml: Anonmem Array Baseline Check Coord Format Fun Int List Lowerbound Naming Option Parallel Printf Protocol Result Rng Runtime Schedule Stats String Table Trace Wrap
