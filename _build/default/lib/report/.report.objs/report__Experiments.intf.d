lib/report/experiments.mli: Table
