lib/report/table.ml: Array Char Format List String
