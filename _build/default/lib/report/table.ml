type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ?(notes = []) rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Table.make: row width mismatch")
    rows;
  { id; title; header; rows; notes }

(* Display width in characters; the few non-ASCII glyphs we emit (naming
   brackets, arrows) are single-width, so count Unicode scalars, not
   bytes. *)
let display_width s =
  let n = ref 0 in
  String.iter
    (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n)
    s;
  !n

let render ppf t =
  let cols = List.length t.header in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (display_width cell))
      row
  in
  measure t.header;
  List.iter measure t.rows;
  let pad cell w =
    cell ^ String.make (max 0 (w - display_width cell)) ' '
  in
  let line sep =
    String.concat sep
      (List.mapi (fun i _ -> String.make widths.(i) '-') t.header)
  in
  let print_row row =
    Format.fprintf ppf "| %s |@."
      (String.concat " | " (List.mapi (fun i c -> pad c widths.(i)) row))
  in
  Format.fprintf ppf "== %s: %s ==@." t.id t.title;
  Format.fprintf ppf "+-%s-+@." (line "-+-");
  print_row t.header;
  Format.fprintf ppf "+-%s-+@." (line "-+-");
  List.iter print_row t.rows;
  Format.fprintf ppf "+-%s-+@." (line "-+-");
  List.iter (fun n -> Format.fprintf ppf "  %s@." n) t.notes;
  Format.fprintf ppf "@."

let render_all ppf ts = List.iter (render ppf) ts
