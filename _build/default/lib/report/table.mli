(** Plain-text tables for the experiment reports. *)

type t = {
  id : string;  (** experiment identifier, e.g. "E1" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** free-form lines printed under the table *)
}

val make :
  id:string ->
  title:string ->
  header:string list ->
  ?notes:string list ->
  string list list ->
  t

val render : Format.formatter -> t -> unit
(** Monospace rendering with column widths fitted to the data. *)

val render_all : Format.formatter -> t list -> unit
