test/main.mli:
