test/test_amutex.ml: Alcotest Anonmem Array Check Coord Hashtbl List Naming Protocol QCheck QCheck_alcotest Rng Runtime Schedule Trace
