test/test_baseline.ml: Alcotest Anonmem Array Baseline Check Fun Int List Protocol Rng Runtime Schedule Trace
