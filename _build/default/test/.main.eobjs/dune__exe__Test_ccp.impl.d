test/test_ccp.ml: Alcotest Anonmem Array Check Coord Fun List Lowerbound Naming Printf Protocol Rng Runtime Schedule
