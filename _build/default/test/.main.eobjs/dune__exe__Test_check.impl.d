test/test_check.ml: Alcotest Anonmem Array Check Coord Dot Flatgraph Format Int List Protocol String Test_runtime Test_wrap Trace
