test/test_cmp_mutex.ml: Alcotest Anonmem Array Check Coord List Lowerbound Naming Protocol QCheck QCheck_alcotest Rng Runtime Schedule Trace
