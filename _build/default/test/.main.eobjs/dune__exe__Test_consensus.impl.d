test/test_consensus.ml: Alcotest Anonmem Array Check Coord Fun Int List Naming Option Protocol QCheck QCheck_alcotest Rng Runtime Schedule
