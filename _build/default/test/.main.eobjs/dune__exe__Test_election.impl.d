test/test_election.ml: Alcotest Anonmem Array Check Coord Fun Int List Naming Protocol QCheck QCheck_alcotest Rng Runtime Schedule
