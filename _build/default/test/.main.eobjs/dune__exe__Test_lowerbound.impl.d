test/test_lowerbound.ml: Alcotest Anonmem Coord List Lowerbound Naming String Trace Wrap
