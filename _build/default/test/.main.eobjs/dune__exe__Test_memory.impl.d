test/test_memory.ml: Alcotest Anonmem Array Format Int Memory Naming
