test/test_naming.ml: Alcotest Anonmem Array Format Fun List Naming QCheck QCheck_alcotest Rng
