test/test_parallel.ml: Alcotest Anonmem Array Coord Fun List Naming Option Parallel Rng
