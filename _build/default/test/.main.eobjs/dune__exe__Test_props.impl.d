test/test_props.ml: Alcotest Anonmem Check Fun Int List Protocol
