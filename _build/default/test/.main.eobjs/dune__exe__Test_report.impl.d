test/test_report.ml: Alcotest Format List Printf Report String
