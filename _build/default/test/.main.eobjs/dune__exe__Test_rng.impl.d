test/test_rng.ml: Alcotest Anonmem Array Fun Rng
