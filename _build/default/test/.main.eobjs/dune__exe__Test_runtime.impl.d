test/test_runtime.ml: Alcotest Anonmem Array Coord Format Int List Naming Option Protocol Rng Runtime Schedule Stdlib Trace
