test/test_schedule.ml: Alcotest Anonmem Array List Option Rng Schedule
