test/test_stats.ml: Alcotest Anonmem Format Stats
