test/test_trace.ml: Alcotest Anonmem Format List Printf Protocol String Trace
