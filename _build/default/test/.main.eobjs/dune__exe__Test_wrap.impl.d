test/test_wrap.ml: Alcotest Anonmem Check Coord List Naming Protocol Runtime Schedule Wrap
