open Anonmem

(* --- Peterson --- *)
module EP = Check.Explore.Make (Baseline.Peterson.P)
module RP = Runtime.Make (Baseline.Peterson.P)

let test_peterson_me_df () =
  let cfg = EP.config ~ids:[ 1; 2 ] ~inputs:[ (); () ] () in
  let g = EP.explore cfg in
  let f = EP.to_flat g in
  Alcotest.(check bool) "mutual exclusion" true
    (Check.Mutex_props.mutual_exclusion f = None);
  Alcotest.(check bool) "deadlock freedom" true
    (Check.Mutex_props.deadlock_freedom f = None)

let test_peterson_starvation_free () =
  let cfg = EP.config ~ids:[ 1; 2 ] ~inputs:[ (); () ] () in
  let f = EP.to_flat (EP.explore cfg) in
  Alcotest.(check bool) "peterson is starvation-free" true
    (Check.Mutex_props.starvation_freedom f = None)

let test_peterson_rejects_bad_ids () =
  Alcotest.check_raises "ids must be 1 and 2"
    (Invalid_argument "Peterson: identifiers must be 1 and 2") (fun () ->
      ignore (RP.create (RP.simple_config ~ids:[ 1; 3 ] ~inputs:[ (); () ] ())))

(* --- Burns --- *)
module EB = Check.Explore.Make (Baseline.Burns.P)
module RB = Runtime.Make (Baseline.Burns.P)

let test_burns_me_df () =
  List.iter
    (fun n ->
      let ids = List.init n (fun i -> i + 1) in
      let cfg = EB.config ~ids ~inputs:(List.map (fun _ -> ()) ids) () in
      let g = EB.explore cfg in
      Alcotest.(check bool) "complete" true g.complete;
      let f = EB.to_flat g in
      Alcotest.(check bool) "mutual exclusion" true
        (Check.Mutex_props.mutual_exclusion f = None);
      Alcotest.(check bool) "deadlock freedom" true
        (Check.Mutex_props.deadlock_freedom f = None))
    [ 2; 3 ]

(* Burns' one-bit algorithm is the classic example of deadlock-freedom
   without starvation-freedom: low-indexed processes can starve the rest. *)
let test_burns_not_starvation_free () =
  let cfg = EB.config ~ids:[ 1; 2; 3 ] ~inputs:[ (); (); () ] () in
  let f = EB.to_flat (EB.explore cfg) in
  Alcotest.(check bool) "burns can starve someone" true
    (Check.Mutex_props.starvation_freedom f <> None)

let test_burns_solo () =
  let rt = RB.create (RB.simple_config ~ids:[ 1; 2; 3 ] ~inputs:[ (); (); () ] ()) in
  let reason =
    RB.run rt
      ~until:(fun t -> RB.status t 1 = Protocol.Critical)
      (Schedule.solo 1) ~max_steps:100
  in
  Alcotest.(check bool) "middle process enters solo" true
    (reason = RB.Condition_met)

(* --- Tournament --- *)
module ET = Check.Explore.Make (Baseline.Tournament.P)
module RT = Runtime.Make (Baseline.Tournament.P)

let test_tournament_model_check () =
  List.iter
    (fun n ->
      let ids = List.init n (fun i -> i + 1) in
      let cfg = ET.config ~ids ~inputs:(List.map (fun _ -> ()) ids) () in
      let g = ET.explore cfg in
      Alcotest.(check bool) "complete" true g.complete;
      let f = ET.to_flat g in
      Alcotest.(check bool) "mutual exclusion" true
        (Check.Mutex_props.mutual_exclusion f = None);
      Alcotest.(check bool) "deadlock freedom" true
        (Check.Mutex_props.deadlock_freedom f = None);
      (* the whole point of paying 3(n-1) registers: nobody starves *)
      Alcotest.(check bool) "starvation freedom" true
        (Check.Mutex_props.starvation_freedom f = None))
    [ 2; 4 ]

let test_tournament_validation () =
  Alcotest.check_raises "n must be a power of two"
    (Invalid_argument "Tournament: n must be a power of two") (fun () ->
      ignore
        (RT.create
           (RT.simple_config ~m:6 ~ids:[ 1; 2; 3 ] ~inputs:[ (); (); () ] ())))

let test_tournament_simulation_n8 () =
  (* beyond exhaustive reach: 8 processes under random schedules *)
  let n = 8 in
  let ids = List.init n (fun i -> i + 1) in
  let rt =
    RT.create (RT.simple_config ~ids ~inputs:(List.map (fun _ -> ()) ids) ())
  in
  let rng = Rng.create 5 in
  let sched = Schedule.random rng in
  let entries = ref 0 in
  for _ = 1 to 30_000 do
    match
      sched { n; clock = RT.clock rt; kind = (fun i -> RT.kind rt i) }
    with
    | Some i ->
      let e = RT.step rt i in
      if Trace.enters_critical e then incr entries;
      Alcotest.(check bool) "exclusive" true (RT.critical_pair rt = None)
    | None -> ()
  done;
  Alcotest.(check bool) "plenty of CS entries" true (!entries > 50)

let test_tournament_levels () =
  Alcotest.(check int) "log2 8" 3 (Baseline.Tournament.P.levels ~n:8);
  Alcotest.(check int) "log2 2" 1 (Baseline.Tournament.P.levels ~n:2)

(* --- Lamport fast mutex --- *)
module EF = Check.Explore.Make (Baseline.Fast_mutex.P)
module RF = Runtime.Make (Baseline.Fast_mutex.P)

let test_fast_mutex_model_check () =
  List.iter
    (fun n ->
      let ids = List.init n (fun i -> i + 1) in
      let cfg = EF.config ~ids ~inputs:(List.map (fun _ -> ()) ids) () in
      let g = EF.explore cfg in
      Alcotest.(check bool) "complete" true g.complete;
      let f = EF.to_flat g in
      Alcotest.(check bool) "mutual exclusion" true
        (Check.Mutex_props.mutual_exclusion f = None);
      Alcotest.(check bool) "deadlock freedom" true
        (Check.Mutex_props.deadlock_freedom f = None);
      (* famously not starvation-free: contended losers can wait forever *)
      Alcotest.(check bool) "not starvation-free" true
        (Check.Mutex_props.starvation_freedom f <> None))
    [ 2; 3 ]

(* The headline feature: the uncontended entry touches exactly five shared
   registers (plus one internal step), independent of n. *)
let test_fast_mutex_fast_path () =
  List.iter
    (fun n ->
      let ids = List.init n (fun i -> i + 1) in
      let rt =
        RF.create
          (RF.simple_config ~m:(n + 2) ~ids
             ~inputs:(List.map (fun _ -> ()) ids)
             ())
      in
      let reason =
        RF.run rt
          ~until:(fun t -> RF.status t 0 = Protocol.Critical)
          (Schedule.solo 0) ~max_steps:100
      in
      Alcotest.(check bool) "entered" true (reason = RF.Condition_met);
      Alcotest.(check int) "constant-cost fast path" 6 (RF.steps_of rt 0))
    [ 2; 4; 8; 16 ]

let test_fast_mutex_validation () =
  Alcotest.check_raises "register count enforced"
    (Invalid_argument "Fast_mutex: needs n + 2 registers") (fun () ->
      ignore
        (RF.create (RF.simple_config ~m:3 ~ids:[ 1; 2 ] ~inputs:[ (); () ] ())))

let test_fast_mutex_random_safe () =
  for seed = 1 to 25 do
    let n = 2 + (seed mod 3) in
    let ids = List.init n (fun i -> i + 1) in
    let rt =
      RF.create
        (RF.simple_config ~ids ~inputs:(List.map (fun _ -> ()) ids) ())
    in
    let rng = Rng.create (seed * 7) in
    let sched = Schedule.random rng in
    let entries = ref 0 in
    for _ = 1 to 4000 do
      match
        sched { n; clock = RF.clock rt; kind = (fun i -> RF.kind rt i) }
      with
      | Some i ->
        let e = RF.step rt i in
        if Trace.enters_critical e then incr entries;
        Alcotest.(check bool) "exclusive" true (RF.critical_pair rt = None)
      | None -> ()
    done;
    Alcotest.(check bool) "made progress" true (!entries > 0)
  done

(* --- CA consensus --- *)
module ECA = Check.Explore.Make (Baseline.Ca_consensus.P)
module RCA = Runtime.Make (Baseline.Ca_consensus.P)

let test_ca_model_check () =
  let m = Baseline.Ca_consensus.P.registers_for ~n:2 ~rounds:2 in
  let cfg = ECA.config ~m ~ids:[ 1; 2 ] ~inputs:[ 100; 200 ] () in
  let g = ECA.explore cfg in
  Alcotest.(check bool) "complete" true g.complete;
  Alcotest.(check bool) "agreement" true
    (Check.Props.agreement ~equal:Int.equal ~statuses:ECA.statuses g.states
    = None);
  Alcotest.(check bool) "validity" true
    (Check.Props.validity
       ~allowed:(fun v -> v = 100 || v = 200)
       ~statuses:ECA.statuses g.states
    = None)

(* Obstruction freedom holds wherever round headroom remains. A solo run
   from round r commits by round max_round + 1, where max_round is the
   highest round any process has already polluted with a conflicting
   A-entry — so the bounded register file guarantees solo termination
   exactly from states with max_round <= rounds - 2. *)
let test_ca_of_with_headroom () =
  let rounds = 3 in
  let m = Baseline.Ca_consensus.P.registers_for ~n:2 ~rounds in
  let cfg = ECA.config ~m ~ids:[ 1; 2 ] ~inputs:[ 100; 200 ] () in
  let g = ECA.explore cfg in
  let bound = 4 * m in
  let failures = ref 0 in
  let checked = ref 0 in
  Array.iter
    (fun st ->
      (* highest round whose registers anyone has touched: a solo run from
         such a state commits by the following round *)
      let max_polluted =
        let top = ref 0 in
        Array.iteri
          (fun j v -> if v <> 0 then top := max !top (j / 4))
          st.ECA.mem;
        Array.fold_left
          (fun acc l -> max acc (Baseline.Ca_consensus.P.round_of l))
          !top st.ECA.locals
      in
      if max_polluted <= rounds - 2 then
        Array.iteri
          (fun proc l ->
            if not (Protocol.is_decided (Baseline.Ca_consensus.P.status l))
            then begin
              incr checked;
              match ECA.solo_run cfg st ~proc ~max_steps:bound with
              | `Decided _ -> ()
              | `Out_of_steps | `Coin -> incr failures
            end)
          st.ECA.locals)
    g.states;
  Alcotest.(check bool) "checked a substantial set" true (!checked > 100);
  Alcotest.(check int) "all headroom states decide solo" 0 !failures

let test_ca_solo_decides () =
  let n = 3 in
  let m = Baseline.Ca_consensus.P.default_registers ~n in
  let rt =
    RCA.create (RCA.simple_config ~m ~ids:[ 1; 2; 3 ] ~inputs:[ 7; 8; 9 ] ())
  in
  let _ = RCA.run rt (Schedule.solo 2) ~max_steps:1000 in
  match RCA.status rt 2 with
  | Protocol.Decided v -> Alcotest.(check int) "decides own input" 9 v
  | _ -> Alcotest.fail "solo must decide"

let test_ca_random_agreement () =
  for seed = 1 to 40 do
    let n = 2 + (seed mod 3) in
    let m = Baseline.Ca_consensus.P.default_registers ~n in
    let rng = Rng.create (seed * 31) in
    let ids = List.init n (fun i -> i + 1) in
    let inputs = List.init n (fun i -> (i + 1) * 11) in
    let rt = RCA.create (RCA.simple_config ~m ~ids ~inputs ()) in
    let _ = RCA.run rt (Schedule.random rng) ~max_steps:(100 * n) in
    for i = 0 to n - 1 do
      ignore (RCA.run rt (Schedule.solo i) ~max_steps:(50 * m))
    done;
    let ds = Array.to_list (RCA.decisions rt) |> List.filter_map Fun.id in
    Alcotest.(check int) "all decided" n (List.length ds);
    (match ds with
    | v :: rest ->
      List.iter (fun w -> Alcotest.(check int) "agreement" v w) rest;
      Alcotest.(check bool) "validity" true (List.mem v inputs)
    | [] -> Alcotest.fail "no decisions")
  done

(* --- Chain renaming --- *)
module ECH = Check.Explore.Make (Baseline.Chain_renaming.P)
module RCH = Runtime.Make (Baseline.Chain_renaming.P)

let test_chain_model_check () =
  let cfg = ECH.config ~ids:[ 7; 13 ] ~inputs:[ (); () ] () in
  let g = ECH.explore cfg in
  Alcotest.(check bool) "complete" true g.complete;
  Alcotest.(check bool) "unique names" true
    (Check.Props.distinct_outputs ~equal:Int.equal ~statuses:ECH.statuses
       g.states
    = None);
  Alcotest.(check bool) "adaptive range" true
    (Check.Props.adaptive_range ~name_of:Fun.id ~statuses:ECH.statuses
       g.states
    = None);
  Alcotest.(check bool) "obstruction-free termination" true
    (ECH.check_obstruction_freedom g = None)

let test_chain_solo_name_1 () =
  let n = 4 in
  let m = Baseline.Chain_renaming.P.default_registers ~n in
  let ids = [ 9; 2; 5; 7 ] in
  let rt =
    RCH.create
      (RCH.simple_config ~m ~ids ~inputs:(List.map (fun _ -> ()) ids) ())
  in
  let _ = RCH.run rt (Schedule.solo 0) ~max_steps:(100 * m) in
  match RCH.status rt 0 with
  | Protocol.Decided v -> Alcotest.(check int) "solo gets name 1" 1 v
  | _ -> Alcotest.fail "solo must decide"

let test_chain_random_unique () =
  for seed = 1 to 30 do
    let n = 2 + (seed mod 3) in
    let m = Baseline.Chain_renaming.P.default_registers ~n in
    let rng = Rng.create (seed * 17) in
    let ids = List.init n (fun i -> (i + 1) * 5) in
    let rt =
      RCH.create
        (RCH.simple_config ~m ~ids ~inputs:(List.map (fun _ -> ()) ids) ())
    in
    let _ = RCH.run rt (Schedule.random rng) ~max_steps:(300 * n) in
    let budget = ref (10 * n) in
    while (not (RCH.all_decided rt)) && !budget > 0 do
      decr budget;
      for i = 0 to n - 1 do
        ignore (RCH.run rt (Schedule.solo i) ~max_steps:(100 * m))
      done
    done;
    let names =
      Array.to_list (RCH.decisions rt) |> List.filter_map Fun.id
    in
    Alcotest.(check int) "all named" n (List.length names);
    Alcotest.(check (list int)) "perfect names"
      (List.init n (fun i -> i + 1))
      (List.sort compare names)
  done

let test_chain_wrong_m_rejected () =
  Alcotest.check_raises "register count enforced"
    (Invalid_argument "Chain_renaming: wrong register count") (fun () ->
      ignore
        (RCH.create (RCH.simple_config ~m:4 ~ids:[ 1; 2 ] ~inputs:[ (); () ] ())))

let suite =
  [
    Alcotest.test_case "peterson: model check ME+DF" `Quick test_peterson_me_df;
    Alcotest.test_case "peterson: starvation-free" `Quick
      test_peterson_starvation_free;
    Alcotest.test_case "peterson: id validation" `Quick
      test_peterson_rejects_bad_ids;
    Alcotest.test_case "burns: model check ME+DF (n=2,3)" `Slow
      test_burns_me_df;
    Alcotest.test_case "burns: not starvation-free" `Slow
      test_burns_not_starvation_free;
    Alcotest.test_case "burns: solo entry" `Quick test_burns_solo;
    Alcotest.test_case "tournament: model check incl. starvation (n=2,4)"
      `Slow test_tournament_model_check;
    Alcotest.test_case "tournament: validation" `Quick
      test_tournament_validation;
    Alcotest.test_case "tournament: simulation n=8" `Quick
      test_tournament_simulation_n8;
    Alcotest.test_case "tournament: levels" `Quick test_tournament_levels;
    Alcotest.test_case "fast mutex: model check (n=2,3)" `Slow
      test_fast_mutex_model_check;
    Alcotest.test_case "fast mutex: constant fast path" `Quick
      test_fast_mutex_fast_path;
    Alcotest.test_case "fast mutex: validation" `Quick
      test_fast_mutex_validation;
    Alcotest.test_case "fast mutex: random schedules safe" `Quick
      test_fast_mutex_random_safe;
    Alcotest.test_case "ca-consensus: model check" `Slow test_ca_model_check;
    Alcotest.test_case "ca-consensus: OF with round headroom" `Slow
      test_ca_of_with_headroom;
    Alcotest.test_case "ca-consensus: solo decides" `Quick test_ca_solo_decides;
    Alcotest.test_case "ca-consensus: random agreement" `Quick
      test_ca_random_agreement;
    Alcotest.test_case "chain renaming: model check" `Slow
      test_chain_model_check;
    Alcotest.test_case "chain renaming: solo name 1" `Quick
      test_chain_solo_name_1;
    Alcotest.test_case "chain renaming: random runs are perfect" `Quick
      test_chain_random_unique;
    Alcotest.test_case "chain renaming: wrong m rejected" `Quick
      test_chain_wrong_m_rejected;
  ]
