open Anonmem
module P = Coord.Ccp.P
module Det = Coord.Ccp.Det
module R = Runtime.Make (P)
module E = Check.Explore.Make (P)

(* Agreement must hold on the *physical* register chosen: a process reports
   its local index, which its naming translates. *)
let physical_choices (cfg : E.config) st =
  Array.to_list
    (Array.mapi
       (fun p l ->
         match P.status l with
         | Protocol.Decided loc -> Some (Naming.apply cfg.namings.(p) loc)
         | _ -> None)
       st.E.locals)
  |> List.filter_map Fun.id

(* Exhaustive safety for n = 2 over both relative namings and both coin
   outcomes at every flip. *)
let test_safety_n2 () =
  List.iter
    (fun nam ->
      let cfg : E.config =
        {
          ids = [| 7; 13 |];
          inputs = [| (); () |];
          namings = [| Naming.identity 2; nam |];
        }
      in
      let g = E.explore cfg in
      Alcotest.(check bool) "complete" true g.complete;
      Array.iter
        (fun st ->
          match physical_choices cfg st with
          | a :: rest ->
            List.iter
              (fun b ->
                Alcotest.(check int) "all choose the same register" a b)
              rest
          | [] -> ())
        g.states)
    (Naming.all 2)

(* Same, three processes; a lower level cap keeps the coin-branching state
   space exhaustive-friendly without changing the claiming logic. *)
module P3 = Coord.Ccp.Make (struct
  let cap = 3
  let deterministic = false
end)

module E3 = Check.Explore.Make (P3)

let test_safety_n3 () =
  let namings =
    [
      [| Naming.identity 2; Naming.identity 2; Naming.rotation 2 1 |];
      [| Naming.identity 2; Naming.rotation 2 1; Naming.rotation 2 1 |];
    ]
  in
  List.iter
    (fun nams ->
      let cfg : E3.config =
        { ids = [| 3; 5; 9 |]; inputs = [| (); (); () |]; namings = nams }
      in
      let g = E3.explore cfg in
      Alcotest.(check bool) "complete" true g.complete;
      Array.iter
        (fun st ->
          let choices =
            Array.to_list
              (Array.mapi
                 (fun p l ->
                   match P3.status l with
                   | Protocol.Decided loc ->
                     Some (Naming.apply cfg.namings.(p) loc)
                   | _ -> None)
                 st.E3.locals)
            |> List.filter_map Fun.id
          in
          match choices with
          | a :: rest ->
            List.iter
              (fun b -> Alcotest.(check int) "same register (n=3)" a b)
              rest
          | [] -> ())
        g.states)
    namings

let test_solo_chooses () =
  let rt = R.create (R.simple_config ~ids:[ 5 ] ~inputs:[ () ]
                       ~rng:(Rng.create 3) ()) in
  let _ = R.run rt (Schedule.solo 0) ~max_steps:100 in
  match R.status rt 0 with
  | Protocol.Decided v -> Alcotest.(check bool) "chose a register" true (v = 0 || v = 1)
  | _ -> Alcotest.fail "solo process must choose"

(* Rabin's point: determinism dies under symmetry. Two deterministic
   processes in lock step with opposite namings never choose. *)
let test_deterministic_livelocks () =
  let module Sym = Lowerbound.Symmetry.Make (Det) in
  let verdict, _ = Sym.run ~ids:[ 7; 13 ] ~inputs:[ (); () ] ~m:2 ~d:2 () in
  match verdict with
  | Lowerbound.Symmetry.Livelock _ -> ()
  | v ->
    Alcotest.failf "expected livelock, got %a" Lowerbound.Symmetry.pp_verdict v

(* ... and the randomized version terminates with overwhelming probability
   (Rabin: 1 - 2^{-Theta(cap)} per contention burst). Cap-locked runs are
   possible in principle, so this measures a failure *rate* over fixed
   seeds rather than demanding every run terminate — safety is still
   asserted unconditionally. *)
let test_randomized_termination_rate () =
  let samples = 300 in
  let failures = ref 0 in
  for seed = 1 to samples do
    let n = 2 + (seed mod 3) in
    let rng = Rng.create (seed * 101) in
    let ids = List.init n (fun i -> (i + 1) * 3) in
    let cfg : R.config =
      {
        ids = Array.of_list ids;
        inputs = Array.make n ();
        namings = Array.init n (fun _ -> Naming.random rng 2);
        rng = Some (Rng.split rng);
        record_trace = false;
      }
    in
    let rt = R.create cfg in
    let reason = R.run rt (Schedule.random rng) ~max_steps:5_000 in
    if reason <> R.All_decided then incr failures
    else begin
      let phys =
        List.init n (fun i ->
            match R.status rt i with
            | Protocol.Decided loc -> Naming.apply (R.naming_of rt i) loc
            | _ -> -1)
      in
      match phys with
      | a :: rest ->
        Alcotest.(check bool) "safe choice" true
          (a >= 0 && List.for_all (( = ) a) rest)
      | [] -> Alcotest.fail "no processes"
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "failure rate below 2%% (saw %d/%d)" !failures samples)
    true
    (!failures * 50 < samples)

let test_level_monotone () =
  (* levels never exceed the cap *)
  let rng = Rng.create 11 in
  let cfg : R.config =
    {
      ids = [| 3; 5 |];
      inputs = [| (); () |];
      namings = [| Naming.identity 2; Naming.rotation 2 1 |];
      rng = Some (Rng.split rng);
      record_trace = false;
    }
  in
  let rt = R.create cfg in
  for _ = 1 to 2000 do
    (match Schedule.random rng { n = 2; clock = 0; kind = (fun i -> R.kind rt i) } with
    | Some i ->
      ignore (R.step rt i);
      Alcotest.(check bool) "level within cap" true
        (P.level_of (R.local rt i) <= 8)
    | None -> ())
  done

(* --- the k = 3 strawman (Ccp_k) --- *)

module EK = Check.Explore.Make (Coord.Ccp_k.P3)

let kccp_violations namings =
  let cfg : EK.config =
    { ids = [| 7; 13 |]; inputs = [| (); () |]; namings }
  in
  let g = EK.explore cfg in
  Alcotest.(check bool) "complete" true g.complete;
  let viol = ref 0 in
  Array.iter
    (fun st ->
      let choices =
        Array.to_list
          (Array.mapi
             (fun p l ->
               match Coord.Ccp_k.P3.status l with
               | Protocol.Decided loc ->
                 Some (Naming.apply cfg.namings.(p) loc)
               | _ -> None)
             st.EK.locals)
        |> List.filter_map Fun.id
      in
      match choices with
      | a :: rest -> if List.exists (( <> ) a) rest then incr viol
      | [] -> ())
    g.states;
  !viol

(* Same ring orientation: the walk-and-race scheme stays safe... *)
let test_kccp_same_orientation_safe () =
  List.iter
    (fun d ->
      Alcotest.(check int) "no disagreement" 0
        (kccp_violations [| Naming.identity 3; Naming.rotation 3 d |]))
    [ 0; 1; 2 ]

(* ...but opposite orientations defeat it: the checker exhibits reachable
   states where the two processes chose different registers. This is why
   k-alternative choice coordination needed its own machinery ([13]). *)
let test_kccp_opposite_orientation_unsafe () =
  let reversed = Naming.of_array [| 0; 2; 1 |] in
  Alcotest.(check bool) "disagreement reachable" true
    (kccp_violations [| Naming.identity 3; reversed |] > 0)

let suite =
  [
    Alcotest.test_case "exhaustive safety n=2 (all namings, all coins)" `Slow
      test_safety_n2;
    Alcotest.test_case "exhaustive safety n=3" `Slow test_safety_n3;
    Alcotest.test_case "solo chooses" `Quick test_solo_chooses;
    Alcotest.test_case "deterministic variant livelocks (Rabin's point)"
      `Quick test_deterministic_livelocks;
    Alcotest.test_case "randomized termination rate" `Quick
      test_randomized_termination_rate;
    Alcotest.test_case "levels capped" `Quick test_level_monotone;
    Alcotest.test_case "k=3 strawman: same orientation safe" `Slow
      test_kccp_same_orientation_safe;
    Alcotest.test_case "k=3 strawman: opposite orientation unsafe" `Slow
      test_kccp_opposite_orientation_unsafe;
  ]
