open Anonmem
module P = Coord.Cmp_mutex.P
module R = Runtime.Make (P)
module E = Check.Explore.Make (P)

let me_df ~m ~naming_b =
  let cfg : E.config =
    {
      ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.identity m; naming_b |];
    }
  in
  let g = E.explore cfg in
  Alcotest.(check bool) "complete" true g.complete;
  let f = E.to_flat g in
  (Check.Mutex_props.mutual_exclusion f, Check.Mutex_props.deadlock_freedom f)

(* The headline claim of the extension: with arbitrary comparisons, every
   m >= 2 works — including the even values that Theorem 3.1 forbids in the
   equality-only model. Exhaustive over all relative namings. *)
let test_every_m_works () =
  List.iter
    (fun m ->
      List.iter
        (fun nam ->
          let me, df = me_df ~m ~naming_b:nam in
          Alcotest.(check bool) "mutual exclusion" true (me = None);
          Alcotest.(check bool) "deadlock freedom" true (df = None))
        (Naming.all m))
    [ 2; 3; 4 ]

(* The comparison tie-break resolves even the lock-step symmetric runs
   that kill Figure 1 on even m. *)
let test_survives_lock_step () =
  let module Sym = Lowerbound.Symmetry.Make (P) in
  List.iter
    (fun m ->
      let verdict, _ =
        Sym.run ~max_steps:5_000 ~ids:[ 7; 13 ] ~inputs:[ (); () ] ~m ~d:2 ()
      in
      match verdict with
      | Lowerbound.Symmetry.No_violation _ -> ()
      | v ->
        Alcotest.failf "comparisons should break symmetry on m=%d, got %a" m
          Lowerbound.Symmetry.pp_verdict v)
    [ 2; 4; 8 ]

let test_solo_entry () =
  List.iter
    (fun m ->
      let rt = R.create (R.simple_config ~m ~ids:[ 5 ] ~inputs:[ () ] ()) in
      let reason =
        R.run rt
          ~until:(fun t -> R.status t 0 = Protocol.Critical)
          (Schedule.solo 0) ~max_steps:(4 * m)
      in
      Alcotest.(check bool) "entered" true (reason = R.Condition_met))
    [ 2; 3; 4; 6 ]

(* Under contention the larger identifier wins the first conflict. *)
let test_larger_id_insists () =
  let rt =
    R.create (R.simple_config ~m:2 ~ids:[ 5; 900 ] ~inputs:[ (); () ] ())
  in
  (* strict alternation from the start *)
  let first_in = ref None in
  let _ =
    R.run rt
      ~until:(fun t ->
        (match (!first_in, R.critical_pair t) with
        | None, _ ->
          Array.iteri
            (fun i s ->
              if s = Schedule.Crit && !first_in = None then first_in := Some i)
            (Array.init 2 (fun i -> R.kind t i))
        | Some _, _ -> ());
        !first_in <> None)
      (Schedule.lock_step [ 0; 1 ]) ~max_steps:2_000
  in
  Alcotest.(check (option int)) "process with id 900 entered first" (Some 1)
    !first_in

let qcheck_random_safe =
  QCheck.Test.make ~name:"random schedules: safe and live (any m >= 2)"
    ~count:60
    QCheck.(pair (int_bound 10_000) (int_range 2 6))
    (fun (seed, m) ->
      let rng = Rng.create ((seed * 31) + m) in
      let cfg : R.config =
        {
          ids = [| 3; 11 |];
          inputs = [| (); () |];
          namings = [| Naming.random rng m; Naming.random rng m |];
          rng = None;
          record_trace = false;
        }
      in
      let rt = R.create cfg in
      let sched = Schedule.random rng in
      let entries = ref 0 in
      let ok = ref true in
      for _ = 1 to 3000 do
        match
          sched { n = 2; clock = R.clock rt; kind = (fun i -> R.kind rt i) }
        with
        | Some i ->
          let e = R.step rt i in
          if Trace.enters_critical e then incr entries;
          if R.critical_pair rt <> None then ok := false
        | None -> ()
      done;
      !ok && !entries > 0)

let suite =
  [
    Alcotest.test_case "every m >= 2 works (exhaustive, m=2..4)" `Slow
      test_every_m_works;
    Alcotest.test_case "survives the lock-step symmetry attack" `Quick
      test_survives_lock_step;
    Alcotest.test_case "solo entry" `Quick test_solo_entry;
    Alcotest.test_case "larger id wins first conflict" `Quick
      test_larger_id_insists;
    QCheck_alcotest.to_alcotest qcheck_random_safe;
  ]
