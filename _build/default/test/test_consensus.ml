open Anonmem
module P = Coord.Consensus.P
module R = Runtime.Make (P)
module E = Check.Explore.Make (P)

(* Theorem 4.1/4.2, n = 2 (m = 3): exhaustive over all relative namings:
   agreement, validity, and obstruction-free termination from every
   reachable state. *)
let test_model_check_n2 () =
  List.iter
    (fun nam ->
      let cfg : E.config =
        {
          ids = [| 7; 13 |];
          inputs = [| 100; 200 |];
          namings = [| Naming.identity 3; nam |];
        }
      in
      let g = E.explore cfg in
      Alcotest.(check bool) "complete" true g.complete;
      Alcotest.(check bool) "agreement" true
        (Check.Props.agreement ~equal:Int.equal ~statuses:E.statuses g.states
        = None);
      Alcotest.(check bool) "validity" true
        (Check.Props.validity
           ~allowed:(fun v -> v = 100 || v = 200)
           ~statuses:E.statuses g.states
        = None);
      Alcotest.(check bool) "obstruction-free termination" true
        (E.check_obstruction_freedom g = None))
    (Naming.all 3)

(* Equal inputs must decide that input, in every run (n = 2, exhaustive). *)
let test_model_check_equal_inputs () =
  let cfg : E.config =
    {
      ids = [| 7; 13 |];
      inputs = [| 42; 42 |];
      namings = [| Naming.identity 3; Naming.rotation 3 1 |];
    }
  in
  let g = E.explore cfg in
  Alcotest.(check bool) "decides the common input" true
    (Check.Props.validity ~allowed:(( = ) 42) ~statuses:E.statuses g.states
    = None)

let test_solo_decides_own_input () =
  List.iter
    (fun n ->
      let m = (2 * n) - 1 in
      let ids = List.init n (fun i -> (i * 17) + 3) in
      let inputs = List.init n (fun i -> (i + 1) * 100) in
      let rt = R.create (R.simple_config ~m ~ids ~inputs ()) in
      let reason = R.run rt (Schedule.solo 0) ~max_steps:(20 * m) in
      Alcotest.(check bool) "decided" true (reason = R.All_decided || reason = R.Schedule_exhausted);
      match R.status rt 0 with
      | Protocol.Decided v ->
        Alcotest.(check int) "solo decides its input" 100 v
      | _ -> Alcotest.fail "solo run must decide")
    [ 1; 2; 3; 5 ]

(* Solo decision costs one pass of writes interleaved with scans:
   (2n-1) * (scan + write) + final scan, plus the initial internal step. *)
let test_solo_step_complexity () =
  List.iter
    (fun n ->
      let m = (2 * n) - 1 in
      let ids = List.init n (fun i -> i + 1) in
      let inputs = List.init n (fun i -> (i + 1) * 10) in
      let rt = R.create (R.simple_config ~m ~ids ~inputs ()) in
      let _ = R.run rt (Schedule.solo 0) ~max_steps:(10 * m * m) in
      Alcotest.(check int) "steps = 1 + m*(m+1) + m"
        (1 + (m * (m + 1)) + m)
        (R.steps_of rt 0))
    [ 2; 3; 4 ]

let random_run ~seed ~n =
  let m = (2 * n) - 1 in
  let rng = Rng.create seed in
  let ids = List.init n (fun i -> (i + 1) * 7) in
  let inputs = List.init n (fun i -> (i + 1) * 100) in
  let cfg : R.config =
    {
      ids = Array.of_list ids;
      inputs = Array.of_list inputs;
      namings = Array.init n (fun _ -> Naming.random rng m);
      rng = None;
      record_trace = false;
    }
  in
  let rt = R.create cfg in
  (* random schedule, then help stragglers finish solo (OF termination) *)
  let _ = R.run rt (Schedule.random rng) ~max_steps:(200 * n * n) in
  for i = 0 to n - 1 do
    let _ = R.run rt (Schedule.solo i) ~max_steps:(20 * m * m) in
    ()
  done;
  (rt, inputs)

let qcheck_agreement_validity =
  QCheck.Test.make
    ~name:"random schedules + solo finish: agreement & validity (n<=6)"
    ~count:80
    QCheck.(pair (int_bound 100_000) (int_range 2 6))
    (fun (seed, n) ->
      let rt, inputs = random_run ~seed:(seed + 1) ~n in
      let decisions = R.decisions rt in
      Array.for_all Option.is_some decisions
      &&
      let vs = Array.to_list decisions |> List.filter_map Fun.id in
      match vs with
      | [] -> false
      | v :: rest -> List.for_all (( = ) v) rest && List.mem v inputs)

(* The decided value must moreover be the input of a process that actually
   took at least one step (validity is about participants). *)
let qcheck_validity_participants =
  QCheck.Test.make ~name:"decision comes from a participant" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let n = 4 in
      let m = (2 * n) - 1 in
      let rng = Rng.create (seed + 13) in
      let ids = [| 3; 5; 7; 11 |] in
      let inputs = [| 100; 200; 300; 400 |] in
      let cfg : R.config =
        {
          ids;
          inputs;
          namings = Array.init n (fun _ -> Naming.random rng m);
          rng = None;
          record_trace = false;
        }
      in
      let rt = R.create cfg in
      (* only processes 0 and 1 participate *)
      let sched (v : Schedule.view) =
        if v.clock > 400 then None
        else
          match
            List.filter (fun i -> v.kind i <> Schedule.Finished) [ 0; 1 ]
          with
          | [] -> None
          | cands -> Some (List.nth cands (Rng.int rng (List.length cands)))
      in
      let _ = R.run rt sched ~max_steps:500 in
      let _ = R.run rt (Schedule.solo 0) ~max_steps:(20 * m * m) in
      match R.status rt 0 with
      | Protocol.Decided v -> v = 100 || v = 200
      | _ -> false)

let test_preference_tracking () =
  let rt = R.create (R.simple_config ~m:3 ~ids:[ 5; 9 ] ~inputs:[ 1; 2 ] ()) in
  ignore (R.step rt 0);
  Alcotest.(check int) "initial preference is the input" 1
    (P.preference (R.local rt 0))

(* Symmetric contract: consistently relabeling the identifiers (preserving
   distinctness) produces runs with identical memory access patterns. *)
let qcheck_id_equivariance =
  QCheck.Test.make ~name:"id relabeling equivariance" ~count:60
    QCheck.(pair (int_bound 10_000) (small_list (int_bound 1)))
    (fun (seed, script_bits) ->
      let script = List.map (fun b -> b land 1) script_bits in
      let run ids =
        let rt =
          R.create (R.simple_config ~m:3 ~ids ~inputs:[ 100; 200 ] ())
        in
        let _ = R.run rt (Schedule.script script) ~max_steps:100 in
        ( List.init 2 (fun i -> Protocol.status_kind (R.status rt i)),
          List.init 2 (fun i -> R.steps_of rt i) )
      in
      let a = run [ 7; 13 ] in
      let b = run [ 5000 + (seed mod 100); 1 ] in
      a = b)

let test_rejects_zero_input () =
  Alcotest.check_raises "input 0 rejected"
    (Invalid_argument "Consensus: inputs must be non-zero") (fun () ->
      ignore (R.create (R.simple_config ~m:3 ~ids:[ 5; 9 ] ~inputs:[ 0; 2 ] ())))

let suite =
  [
    Alcotest.test_case "model check n=2, all namings (Thm 4.1/4.2)" `Slow
      test_model_check_n2;
    Alcotest.test_case "model check: equal inputs" `Slow
      test_model_check_equal_inputs;
    Alcotest.test_case "solo decides own input" `Quick
      test_solo_decides_own_input;
    Alcotest.test_case "solo step complexity" `Quick test_solo_step_complexity;
    QCheck_alcotest.to_alcotest qcheck_agreement_validity;
    QCheck_alcotest.to_alcotest qcheck_validity_participants;
    QCheck_alcotest.to_alcotest qcheck_id_equivariance;
    Alcotest.test_case "preference tracking" `Quick test_preference_tracking;
    Alcotest.test_case "rejects zero input" `Quick test_rejects_zero_input;
  ]
