open Anonmem
module P = Coord.Election.P
module R = Runtime.Make (P)
module E = Check.Explore.Make (P)

(* §4's closing note, n = 2: all participants that terminate output the
   same identifier, and it is a participant's identifier — exhaustively. *)
let test_model_check_n2 () =
  List.iter
    (fun nam ->
      let cfg : E.config =
        {
          ids = [| 7; 13 |];
          inputs = [| (); () |];
          namings = [| Naming.identity 3; nam |];
        }
      in
      let g = E.explore cfg in
      Alcotest.(check bool) "agreement on the leader" true
        (Check.Props.agreement ~equal:Int.equal ~statuses:E.statuses g.states
        = None);
      Alcotest.(check bool) "leader is a participant" true
        (Check.Props.validity
           ~allowed:(fun v -> v = 7 || v = 13)
           ~statuses:E.statuses g.states
        = None);
      Alcotest.(check bool) "obstruction-free termination" true
        (E.check_obstruction_freedom g = None))
    (Naming.all 3)

let test_solo_elects_self () =
  let rt =
    R.create (R.simple_config ~m:5 ~ids:[ 42; 1; 2 ] ~inputs:[ (); (); () ] ())
  in
  let _ = R.run rt (Schedule.solo 0) ~max_steps:1000 in
  match R.status rt 0 with
  | Protocol.Decided v -> Alcotest.(check int) "elected itself" 42 v
  | _ -> Alcotest.fail "solo participant must elect itself"

let qcheck_election_agreement =
  QCheck.Test.make ~name:"random schedules: one leader, a participant"
    ~count:60
    QCheck.(pair (int_bound 100_000) (int_range 2 5))
    (fun (seed, n) ->
      let m = (2 * n) - 1 in
      let rng = Rng.create (seed + 3) in
      let ids = List.init n (fun i -> ((i + 1) * 31) + Rng.int rng 7) in
      let distinct = List.sort_uniq compare ids in
      List.length distinct = n
      &&
      let cfg : R.config =
        {
          ids = Array.of_list ids;
          inputs = Array.make n ();
          namings = Array.init n (fun _ -> Naming.random rng m);
          rng = None;
          record_trace = false;
        }
      in
      let rt = R.create cfg in
      let _ = R.run rt (Schedule.random rng) ~max_steps:(300 * n) in
      for i = 0 to n - 1 do
        ignore (R.run rt (Schedule.solo i) ~max_steps:(20 * m * m))
      done;
      let ds = Array.to_list (R.decisions rt) |> List.filter_map Fun.id in
      List.length ds = n
      && (match ds with
         | v :: rest -> List.for_all (( = ) v) rest && List.mem v ids
         | [] -> false))

let suite =
  [
    Alcotest.test_case "model check n=2, all namings" `Slow
      test_model_check_n2;
    Alcotest.test_case "solo elects itself" `Quick test_solo_elects_self;
    QCheck_alcotest.to_alcotest qcheck_election_agreement;
  ]
