open Anonmem

(* --- divisor witness (the arithmetic side of Theorem 3.4) --- *)

let test_divisor_witness () =
  Alcotest.(check (option int)) "m=4,n=2" (Some 2)
    (Lowerbound.Symmetry.divisor_witness ~n:2 ~m:4);
  Alcotest.(check (option int)) "m=9,n=3" (Some 3)
    (Lowerbound.Symmetry.divisor_witness ~n:3 ~m:9);
  Alcotest.(check (option int)) "m=9,n=2: coprime" None
    (Lowerbound.Symmetry.divisor_witness ~n:2 ~m:9);
  Alcotest.(check (option int)) "m=5,n=4: coprime" None
    (Lowerbound.Symmetry.divisor_witness ~n:4 ~m:5);
  Alcotest.(check (option int)) "m=6,n=4" (Some 2)
    (Lowerbound.Symmetry.divisor_witness ~n:4 ~m:6);
  Alcotest.(check (option int)) "m=15,n=5" (Some 3)
    (Lowerbound.Symmetry.divisor_witness ~n:5 ~m:15)

(* --- symmetry attack against Figure 1 --- *)

module Sym = Lowerbound.Symmetry.Make (Coord.Amutex.P)

let attack ~n ~m =
  let ids = List.init n (fun i -> (i + 1) * 7) in
  Sym.attack ~ids ~inputs:(List.map (fun _ -> ()) ids) ~m ()

let test_symmetry_beats_even_m () =
  List.iter
    (fun m ->
      match attack ~n:2 ~m with
      | Some (2, Lowerbound.Symmetry.Livelock _, trace) ->
        Alcotest.(check bool) "trace non-empty" true (trace <> [])
      | Some (_, v, _) ->
        Alcotest.failf "expected livelock, got %a"
          Lowerbound.Symmetry.pp_verdict v
      | None -> Alcotest.fail "witness expected for even m")
    [ 2; 4; 6; 8 ]

let test_symmetry_beats_divisible_m () =
  List.iter
    (fun (n, m) ->
      match attack ~n ~m with
      | Some (_, Lowerbound.Symmetry.Livelock _, _)
      | Some (_, Lowerbound.Symmetry.Mutex_violation _, _) ->
        ()
      | Some (_, v, _) ->
        Alcotest.failf "expected a violation, got %a"
          Lowerbound.Symmetry.pp_verdict v
      | None -> Alcotest.fail "witness expected")
    [ (3, 3); (3, 9); (4, 6); (5, 15) ]

let test_symmetry_no_witness_when_coprime () =
  List.iter
    (fun (n, m) ->
      Alcotest.(check bool) "no attack possible" true (attack ~n ~m = None))
    [ (2, 3); (2, 5); (2, 9); (4, 5); (6, 7) ]

let test_livelock_trace_has_no_cs_entry () =
  match attack ~n:2 ~m:4 with
  | Some (_, Lowerbound.Symmetry.Livelock _, trace) ->
    Alcotest.(check bool) "no process ever entered its CS" true
      (List.for_all (fun e -> not (Trace.enters_critical e)) trace)
  | _ -> Alcotest.fail "expected livelock"

(* The lock-step rotated configuration keeps symmetric processes in
   identical local states: after each full round all locals coincide. *)
let test_lock_step_preserves_symmetry () =
  let module R = Sym.R in
  let m = 4 and d = 2 in
  let cfg : R.config =
    {
      ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = [| Naming.rotation m 0; Naming.rotation m (m / d) |];
      rng = None;
      record_trace = false;
    }
  in
  let rt = R.create cfg in
  for _round = 1 to 40 do
    ignore (R.step rt 0);
    ignore (R.step rt 1);
    Alcotest.(check int) "locals equal after each full round" 0
      (Coord.Amutex.P.compare_local (R.local rt 0) (R.local rt 1))
  done

(* --- covering adversary (Theorems 6.2 / 6.3 / 6.5) --- *)

module CovMutex = Lowerbound.Covering.Make (Coord.Amutex.P)

let test_covering_mutex () =
  match CovMutex.construct ~m:3 ~q_input:() ~recruit_input:(fun _ -> ()) () with
  | Error e -> Alcotest.failf "construction failed: %s" e
  | Ok o ->
    Alcotest.(check (list int)) "q covered all 3 registers" [ 0; 1; 2 ]
      (List.sort compare o.write_set);
    Alcotest.(check bool) "q in critical section" true
      (o.q_success = CovMutex.Entered_cs);
    Alcotest.(check bool) "a recruit also entered" true
      (o.p_success = CovMutex.Entered_cs);
    (* the trace really is a single legal run with two CS entries and no
       intervening exit *)
    let entries =
      List.filter Trace.enters_critical o.trace |> List.map (fun e -> e.Trace.proc)
    in
    let exits = List.filter Trace.exits_critical o.trace in
    Alcotest.(check int) "two CS entries" 2 (List.length entries);
    Alcotest.(check int) "no exits" 0 (List.length exits);
    Alcotest.(check bool) "q is one of them" true (List.mem 0 entries)

module Cons2 = Wrap.Fix_n (Coord.Consensus.P) (struct let n = 2 end)
module CovCons2 = Lowerbound.Covering.Make (Cons2)

let test_covering_consensus_unknown_n () =
  (* Figure 2 sized for two processes meets 1 + 3 of them. *)
  match CovCons2.construct ~m:3 ~q_input:100 ~recruit_input:(fun _ -> 200) () with
  | Error e -> Alcotest.failf "construction failed: %s" e
  | Ok o ->
    Alcotest.(check bool) "q decided its own input" true
      (o.q_success = CovCons2.Decided 100);
    Alcotest.(check bool) "a recruit decided differently" true
      (o.p_success = CovCons2.Decided 200)

module Cons4 = Wrap.Fix_n (Coord.Consensus.P) (struct let n = 4 end)
module CovCons4 = Lowerbound.Covering.Make (Cons4)

let test_covering_consensus_space_bound () =
  (* n = 4 processes, m = n - 1 = 3 registers: the Theorem 6.3(2) setting. *)
  match CovCons4.construct ~m:3 ~q_input:100 ~recruit_input:(fun _ -> 200) () with
  | Error e -> Alcotest.failf "construction failed: %s" e
  | Ok o ->
    Alcotest.(check int) "exactly n-1 recruits" 3 (List.length o.write_set);
    Alcotest.(check bool) "agreement violated" true
      (o.q_success = CovCons4.Decided 100
      && o.p_success = CovCons4.Decided 200)

module Ren4 = Wrap.Fix_n (Coord.Renaming.P) (struct let n = 4 end)
module CovRen4 = Lowerbound.Covering.Make (Ren4)

let test_covering_renaming_space_bound () =
  match CovRen4.construct ~m:3 ~q_input:() ~recruit_input:(fun _ -> ()) () with
  | Error e -> Alcotest.failf "construction failed: %s" e
  | Ok o ->
    Alcotest.(check bool) "name 1 handed out twice" true
      (o.q_success = CovRen4.Decided 1 && o.p_success = CovRen4.Decided 1)

module Ren2 = Wrap.Fix_n (Coord.Renaming.P) (struct let n = 2 end)
module CovRen2 = Lowerbound.Covering.Make (Ren2)

let test_covering_renaming_unknown_n () =
  match CovRen2.construct ~m:3 ~q_input:() ~recruit_input:(fun _ -> ()) () with
  | Error e -> Alcotest.failf "construction failed: %s" e
  | Ok o ->
    Alcotest.(check bool) "duplicate name 1" true
      (o.q_success = CovRen2.Decided 1 && o.p_success = CovRen2.Decided 1)

(* The covering prefixes must be invisible: every recruit stops right
   before its first write. *)
let test_covering_prefixes_silent () =
  match CovMutex.construct ~m:5 ~q_input:() ~recruit_input:(fun _ -> ()) () with
  | Error e -> Alcotest.failf "construction failed: %s" e
  | Ok o ->
    Alcotest.(check int) "five covering recruits" 5
      (List.length o.covering_prefix_steps);
    (* Figure 1's first write comes after one internal step and one read *)
    List.iter
      (fun s -> Alcotest.(check int) "prefix = internal + read" 2 s)
      o.covering_prefix_steps

(* Without the freedom to pick namings after watching the recruits — i.e.
   in the named model — the covering step itself fails: all recruits' first
   writes are pinned to the same fixed register. This is why Theorem 6.2
   does not contradict named-register mutex algorithms. *)
let test_covering_needs_anonymity () =
  match
    CovMutex.construct ~respect_names:true ~m:3 ~q_input:()
      ~recruit_input:(fun _ -> ())
      ()
  with
  | Ok _ -> Alcotest.fail "covering should fail with fixed names"
  | Error e ->
    Alcotest.(check bool) "diagnostic mentions covering" true
      (String.length e > 0
      && String.sub e 0 13 = "cannot cover ")

let suite =
  [
    Alcotest.test_case "divisor witness" `Quick test_divisor_witness;
    Alcotest.test_case "covering needs anonymity (named model resists)"
      `Quick test_covering_needs_anonymity;
    Alcotest.test_case "symmetry beats even m (Thm 3.1)" `Quick
      test_symmetry_beats_even_m;
    Alcotest.test_case "symmetry beats divisible m (Thm 3.4)" `Quick
      test_symmetry_beats_divisible_m;
    Alcotest.test_case "coprime m admits no witness" `Quick
      test_symmetry_no_witness_when_coprime;
    Alcotest.test_case "livelock trace has no CS entry" `Quick
      test_livelock_trace_has_no_cs_entry;
    Alcotest.test_case "lock step preserves symmetry" `Quick
      test_lock_step_preserves_symmetry;
    Alcotest.test_case "covering beats mutex (Thm 6.2)" `Quick
      test_covering_mutex;
    Alcotest.test_case "covering beats consensus, unknown n (Thm 6.3.1)"
      `Quick test_covering_consensus_unknown_n;
    Alcotest.test_case "covering beats consensus, n-1 registers (Thm 6.3.2)"
      `Quick test_covering_consensus_space_bound;
    Alcotest.test_case "covering beats renaming, n-1 registers (Thm 6.5.2)"
      `Quick test_covering_renaming_space_bound;
    Alcotest.test_case "covering beats renaming, unknown n (Thm 6.5.1)"
      `Quick test_covering_renaming_unknown_n;
    Alcotest.test_case "covering prefixes are silent" `Quick
      test_covering_prefixes_silent;
  ]
