open Anonmem

let naming = Alcotest.testable Naming.pp Naming.equal

let test_identity () =
  let t = Naming.identity 5 in
  for j = 0 to 4 do
    Alcotest.(check int) "identity maps j to j" j (Naming.apply t j)
  done;
  Alcotest.(check int) "size" 5 (Naming.size t)

let test_rotation () =
  let t = Naming.rotation 5 2 in
  Alcotest.(check int) "0 -> 2" 2 (Naming.apply t 0);
  Alcotest.(check int) "4 -> 1" 1 (Naming.apply t 4);
  Alcotest.check naming "rotation by m is identity" (Naming.identity 5)
    (Naming.rotation 5 5);
  Alcotest.check naming "negative rotation wraps" (Naming.rotation 5 3)
    (Naming.rotation 5 (-2))

let test_of_array_valid () =
  let t = Naming.of_array [| 2; 0; 1 |] in
  Alcotest.(check int) "0 -> 2" 2 (Naming.apply t 0);
  Alcotest.(check (array int)) "to_array round-trips" [| 2; 0; 1 |]
    (Naming.to_array t)

let test_of_array_rejects () =
  Alcotest.check_raises "duplicate entries rejected"
    (Invalid_argument "Naming.of_array: not a permutation") (fun () ->
      ignore (Naming.of_array [| 0; 0; 1 |]));
  Alcotest.check_raises "out-of-range rejected"
    (Invalid_argument "Naming.of_array: not a permutation") (fun () ->
      ignore (Naming.of_array [| 0; 3; 1 |]))

let test_of_array_copies () =
  let a = [| 1; 0 |] in
  let t = Naming.of_array a in
  a.(0) <- 0;
  Alcotest.(check int) "mutating the source does not affect t" 1
    (Naming.apply t 0)

let test_invert () =
  let t = Naming.of_array [| 2; 0; 1 |] in
  let inv = Naming.invert t in
  for j = 0 to 2 do
    Alcotest.(check int) "inv(t(j)) = j" j (Naming.apply inv (Naming.apply t j))
  done

let test_compose () =
  let f = Naming.rotation 4 1 and g = Naming.rotation 4 2 in
  Alcotest.check naming "rotations compose additively" (Naming.rotation 4 3)
    (Naming.compose f g);
  let t = Naming.of_array [| 3; 1; 0; 2 |] in
  Alcotest.check naming "compose with inverse is identity" (Naming.identity 4)
    (Naming.compose t (Naming.invert t))

let test_all_count () =
  Alcotest.(check int) "3! namings" 6 (List.length (Naming.all 3));
  Alcotest.(check int) "4! namings" 24 (List.length (Naming.all 4));
  Alcotest.(check int) "1! namings" 1 (List.length (Naming.all 1))

let test_all_distinct () =
  let all = Naming.all 4 in
  let distinct = List.sort_uniq compare (List.map Naming.to_array all) in
  Alcotest.(check int) "all distinct" 24 (List.length distinct)

let test_all_rejects_large () =
  Alcotest.check_raises "m > 8 rejected"
    (Invalid_argument "Naming.all: m too large") (fun () ->
      ignore (Naming.all 9))

let test_pp () =
  Alcotest.(check string) "pp format" "⟨2 0 1⟩"
    (Format.asprintf "%a" Naming.pp (Naming.of_array [| 2; 0; 1 |]))

let test_random_valid () =
  let g = Rng.create 31 in
  for _ = 1 to 20 do
    let t = Naming.random g 6 in
    let sorted = Array.copy (Naming.to_array t) in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "random naming is a permutation"
      (Array.init 6 Fun.id) sorted
  done

let qcheck_invert_involution =
  QCheck.Test.make ~name:"invert is an involution" ~count:200
    QCheck.(pair small_nat (int_bound 1000))
    (fun (size, seed) ->
      let m = 1 + (size mod 8) in
      let t = Naming.random (Rng.create seed) m in
      Naming.equal t (Naming.invert (Naming.invert t)))

let suite =
  [
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "rotation" `Quick test_rotation;
    Alcotest.test_case "of_array accepts permutations" `Quick
      test_of_array_valid;
    Alcotest.test_case "of_array rejects non-permutations" `Quick
      test_of_array_rejects;
    Alcotest.test_case "of_array copies its input" `Quick test_of_array_copies;
    Alcotest.test_case "invert" `Quick test_invert;
    Alcotest.test_case "compose" `Quick test_compose;
    Alcotest.test_case "all: count" `Quick test_all_count;
    Alcotest.test_case "all: distinct" `Quick test_all_distinct;
    Alcotest.test_case "all: rejects m > 8" `Quick test_all_rejects_large;
    Alcotest.test_case "pretty printer" `Quick test_pp;
    Alcotest.test_case "random namings are valid" `Quick test_random_valid;
    QCheck_alcotest.to_alcotest qcheck_invert_involution;
  ]
