open Anonmem

(* The multicore backend: real domains over real atomics. These tests
   assert safety only (the OS scheduler is a weaker adversary than the
   simulator's, and obstruction-free progress is not guaranteed under
   contention) — every run that does decide must be correct. *)

module PCons = Parallel.Prun.Make (Coord.Consensus.P)
module PRen = Parallel.Prun.Make (Coord.Renaming.P)
module PMutex = Parallel.Prun.Make (Coord.Amutex.P)
module PCcp = Parallel.Prun.Make (Coord.Ccp.P)

let namings_of rng n m = Array.init n (fun _ -> Naming.random rng m)

let test_consensus_domains () =
  for round = 1 to 8 do
    let n = 2 + (round mod 2) in
    let m = (2 * n) - 1 in
    let rng = Rng.create (round * 13) in
    let inputs = Array.init n (fun i -> (i + 1) * 100) in
    let cfg : PCons.config =
      {
        ids = Array.init n (fun i -> (i + 1) * 7);
        inputs;
        namings = namings_of rng n m;
        seed = round;
      }
    in
    let o = PCons.run_decide cfg in
    let decided =
      Array.to_list o.results |> List.filter_map (fun r -> r.PCons.output)
    in
    (* agreement + validity on whatever did decide *)
    (match decided with
    | [] -> ()
    | v :: rest ->
      List.iter (fun w -> Alcotest.(check int) "agreement" v w) rest;
      Alcotest.(check bool) "validity" true (Array.exists (( = ) v) inputs));
    (* domains uncontended at the end usually all decide; don't require it *)
    Alcotest.(check bool) "someone decided" true (decided <> [])
  done

let test_renaming_domains () =
  for round = 1 to 6 do
    let n = 2 + (round mod 2) in
    let m = (2 * n) - 1 in
    let rng = Rng.create (round * 29) in
    let cfg : PRen.config =
      {
        ids = Array.init n (fun i -> (i + 1) * 13);
        inputs = Array.make n ();
        namings = namings_of rng n m;
        seed = round;
      }
    in
    let o = PRen.run_decide cfg in
    let names =
      Array.to_list o.results |> List.filter_map (fun r -> r.PRen.output)
    in
    Alcotest.(check bool) "names within {1..n}" true
      (List.for_all (fun v -> 1 <= v && v <= n) names);
    Alcotest.(check bool) "names distinct" true
      (List.length (List.sort_uniq compare names) = List.length names)
  done

let test_mutex_domains () =
  for round = 1 to 4 do
    let m = 3 + (2 * (round mod 2)) in
    let cfg : PMutex.config =
      {
        ids = [| 7; 13 |];
        inputs = [| (); () |];
        namings =
          (let rng = Rng.create (round * 41) in
           namings_of rng 2 m);
        seed = round;
      }
    in
    let o = PMutex.run_sessions ~step_budget:400_000 ~sessions:50 cfg in
    Alcotest.(check bool) "no mutual-exclusion violation" true
      (not o.mutex_violation);
    let total =
      Array.fold_left (fun acc r -> acc + r.PMutex.cs_entries) 0 o.results
    in
    Alcotest.(check bool) "critical sections were used" true (total > 0)
  done

let test_ccp_domains () =
  for round = 1 to 8 do
    let n = 2 + (round mod 3) in
    let rng = Rng.create (round * 53) in
    let cfg : PCcp.config =
      {
        ids = Array.init n (fun i -> (i + 1) * 3);
        inputs = Array.make n ();
        namings = namings_of rng n 2;
        seed = round;
      }
    in
    let o = PCcp.run_decide ~step_budget:200_000 cfg in
    (* whoever chose must have chosen the same physical register *)
    let phys =
      Array.to_list
        (Array.mapi
           (fun i (r : PCcp.proc_result) ->
             Option.map (fun loc -> Naming.apply cfg.namings.(i) loc) r.output)
           o.results)
      |> List.filter_map Fun.id
    in
    match phys with
    | [] -> ()
    | a :: rest ->
      List.iter (fun b -> Alcotest.(check int) "same register" a b) rest
  done

let test_memory_snapshot_consistent () =
  (* after a solo (n=1) consensus run the memory holds the decided pair in
     every register *)
  let cfg : PCons.config =
    {
      ids = [| 5 |];
      inputs = [| 42 |];
      namings = [| Naming.identity 1 |];
      seed = 1;
    }
  in
  let o = PCons.run_decide cfg in
  Alcotest.(check (option int)) "decided own input" (Some 42)
    o.results.(0).PCons.output;
  Array.iter
    (fun (v : Coord.Consensus.Value.t) ->
      Alcotest.(check int) "register holds the decision" 42 v.pref)
    o.memory

let suite =
  [
    Alcotest.test_case "consensus across domains" `Slow test_consensus_domains;
    Alcotest.test_case "renaming across domains" `Slow test_renaming_domains;
    Alcotest.test_case "mutex sessions across domains" `Slow
      test_mutex_domains;
    Alcotest.test_case "choice coordination across domains" `Slow
      test_ccp_domains;
    Alcotest.test_case "final memory snapshot" `Quick
      test_memory_snapshot_consistent;
  ]
