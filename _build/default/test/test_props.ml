open Anonmem

(* Synthetic "states": arrays of statuses, with the identity statuses
   extraction. Exercises the generic property verdicts directly. *)

let statuses (s : int Protocol.status array) = s

let rem : int Protocol.status = Protocol.Remainder
let trying : int Protocol.status = Protocol.Trying
let dec v : int Protocol.status = Protocol.Decided v

let test_decided_outputs () =
  let states = [| [| rem; dec 5 |]; [| dec 3; dec 5 |] |] in
  let ds = Check.Props.decided_outputs statuses states in
  Alcotest.(check int) "three decisions" 3 (List.length ds);
  let d = List.hd ds in
  Alcotest.(check int) "first is state 0" 0 d.Check.Props.state;
  Alcotest.(check int) "by proc 1" 1 d.Check.Props.proc;
  Alcotest.(check int) "value" 5 d.Check.Props.output

let test_agreement_ok () =
  let states = [| [| dec 5; rem |]; [| dec 5; dec 5 |] |] in
  Alcotest.(check bool) "agreement holds" true
    (Check.Props.agreement ~equal:Int.equal ~statuses states = None)

let test_agreement_violation () =
  let states = [| [| dec 5; rem |]; [| dec 5; dec 7 |] |] in
  match Check.Props.agreement ~equal:Int.equal ~statuses states with
  | Some d ->
    Alcotest.(check int) "in state 1" 1 d.Check.Props.state;
    Alcotest.(check bool) "different outputs" true
      (d.Check.Props.a.output <> d.Check.Props.b.output)
  | None -> Alcotest.fail "should find the disagreement"

let test_agreement_needs_same_state () =
  (* decisions are stable, so the checker only compares within one state;
     a disagreement that never coexists in a state is unreachable anyway *)
  let states = [| [| dec 5; rem |]; [| rem; dec 7 |] |] in
  Alcotest.(check bool) "no same-state disagreement" true
    (Check.Props.agreement ~equal:Int.equal ~statuses states = None)

let test_validity () =
  let states = [| [| dec 5; trying |] |] in
  Alcotest.(check bool) "valid" true
    (Check.Props.validity ~allowed:(( = ) 5) ~statuses states = None);
  match Check.Props.validity ~allowed:(( = ) 9) ~statuses states with
  | Some d -> Alcotest.(check int) "invalid output" 5 d.Check.Props.output
  | None -> Alcotest.fail "should flag 5 as invalid"

let test_distinct_outputs () =
  let ok = [| [| dec 1; dec 2 |] |] in
  Alcotest.(check bool) "distinct names fine" true
    (Check.Props.distinct_outputs ~equal:Int.equal ~statuses ok = None);
  let bad = [| [| dec 1; dec 1 |] |] in
  Alcotest.(check bool) "duplicate names flagged" true
    (Check.Props.distinct_outputs ~equal:Int.equal ~statuses bad <> None)

let test_adaptive_range () =
  (* two participants, names 1 and 2: fine *)
  let ok = [| [| dec 1; dec 2; rem |] |] in
  Alcotest.(check bool) "within participants" true
    (Check.Props.adaptive_range ~name_of:Fun.id ~statuses ok = None);
  (* name 2 while only one process ever participated: violation *)
  let bad = [| [| dec 2; rem; rem |] |] in
  (match Check.Props.adaptive_range ~name_of:Fun.id ~statuses bad with
  | Some d -> Alcotest.(check int) "offending name" 2 d.Check.Props.output
  | None -> Alcotest.fail "should flag name 2 with 1 participant");
  (* names below 1 are never valid *)
  let zero = [| [| dec 0; trying |] |] in
  Alcotest.(check bool) "name 0 flagged" true
    (Check.Props.adaptive_range ~name_of:Fun.id ~statuses zero <> None)

let test_trying_participates () =
  (* a Trying (undecided) process still counts as a participant *)
  let states = [| [| dec 2; trying |] |] in
  Alcotest.(check bool) "trying counts toward adaptivity" true
    (Check.Props.adaptive_range ~name_of:Fun.id ~statuses states = None)

let suite =
  [
    Alcotest.test_case "decided_outputs" `Quick test_decided_outputs;
    Alcotest.test_case "agreement: ok" `Quick test_agreement_ok;
    Alcotest.test_case "agreement: violation" `Quick test_agreement_violation;
    Alcotest.test_case "agreement: same-state only" `Quick
      test_agreement_needs_same_state;
    Alcotest.test_case "validity" `Quick test_validity;
    Alcotest.test_case "distinct outputs" `Quick test_distinct_outputs;
    Alcotest.test_case "adaptive range" `Quick test_adaptive_range;
    Alcotest.test_case "trying counts as participant" `Quick
      test_trying_participates;
  ]
