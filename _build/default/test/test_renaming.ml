open Anonmem
module P = Coord.Renaming.P
module R = Runtime.Make (P)
module E = Check.Explore.Make (P)

(* Theorems 5.1-5.3, n = 2 (m = 3), exhaustive over namings: unique names,
   perfect range, adaptivity, and obstruction-free termination. *)
let test_model_check_n2 () =
  List.iter
    (fun nam ->
      let cfg : E.config =
        {
          ids = [| 7; 13 |];
          inputs = [| (); () |];
          namings = [| Naming.identity 3; nam |];
        }
      in
      let g = E.explore cfg in
      Alcotest.(check bool) "complete" true g.complete;
      Alcotest.(check bool) "names are distinct" true
        (Check.Props.distinct_outputs ~equal:Int.equal ~statuses:E.statuses
           g.states
        = None);
      Alcotest.(check bool) "names adaptive in the participants" true
        (Check.Props.adaptive_range ~name_of:Fun.id ~statuses:E.statuses
           g.states
        = None);
      Alcotest.(check bool) "obstruction-free termination" true
        (E.check_obstruction_freedom g = None))
    (Naming.all 3)

let test_solo_takes_name_one () =
  List.iter
    (fun n ->
      let m = (2 * n) - 1 in
      let ids = List.init n (fun i -> (i * 3) + 2) in
      let rt =
        R.create
          (R.simple_config ~m ~ids ~inputs:(List.map (fun _ -> ()) ids) ())
      in
      let _ = R.run rt (Schedule.solo 0) ~max_steps:(30 * m * m) in
      match R.status rt 0 with
      | Protocol.Decided v -> Alcotest.(check int) "solo gets name 1" 1 v
      | _ -> Alcotest.fail "solo participant must terminate")
    [ 2; 3; 4 ]

let finish_run ~n ~m rt rng participants =
  (* keep scheduling only the participants: waking an idle process here
     would change k and void the adaptivity bound under test *)
  let participants_only (v : Schedule.view) =
    match
      List.filter (fun i -> v.kind i <> Schedule.Finished) participants
    with
    | [] -> None
    | cands -> Some (List.nth cands (Rng.int rng (List.length cands)))
  in
  let _ = R.run rt participants_only ~max_steps:(400 * n * n) in
  (* obstruction-free finish: let stragglers run alone, round by round,
     until every participant has a name *)
  let budget = ref (100 * n) in
  let rec settle () =
    let undecided =
      List.filter
        (fun i -> not (Protocol.is_decided (R.status rt i)))
        participants
    in
    if undecided <> [] && !budget > 0 then begin
      decr budget;
      List.iter
        (fun i -> ignore (R.run rt (Schedule.solo i) ~max_steps:(40 * m * m)))
        undecided;
      settle ()
    end
  in
  settle ()

let random_renaming ~seed ~n ~k =
  (* k of the n processes participate *)
  let m = (2 * n) - 1 in
  let rng = Rng.create seed in
  let ids = List.init n (fun i -> (i + 1) * 13) in
  let cfg : R.config =
    {
      ids = Array.of_list ids;
      inputs = Array.make n ();
      namings = Array.init n (fun _ -> Naming.random rng m);
      rng = None;
      record_trace = false;
    }
  in
  let rt = R.create cfg in
  let participants = List.init k Fun.id in
  let sched (v : Schedule.view) =
    match
      List.filter (fun i -> v.kind i <> Schedule.Finished) participants
    with
    | [] -> None
    | cands -> Some (List.nth cands (Rng.int rng (List.length cands)))
  in
  let _ = R.run rt sched ~max_steps:(300 * n * n) in
  finish_run ~n ~m rt rng participants;
  (rt, participants)

let qcheck_unique_and_adaptive =
  QCheck.Test.make
    ~name:"random schedules: unique names within {1..k} (n<=5, k<=n)"
    ~count:60
    QCheck.(triple (int_bound 100_000) (int_range 2 5) (int_range 1 5))
    (fun (seed, n, kr) ->
      let k = 1 + (kr mod n) in
      let rt, participants = random_renaming ~seed:(seed + 1) ~n ~k in
      let names =
        List.filter_map
          (fun i ->
            match R.status rt i with
            | Protocol.Decided v -> Some v
            | _ -> None)
          participants
      in
      List.length names = k
      && List.sort_uniq compare names = List.sort compare names
      && List.for_all (fun v -> 1 <= v && v <= k) names)

let test_contended_pair_gets_1_2 () =
  (* two participants under a fixed interleaved schedule end with {1, 2} *)
  let rt =
    R.create (R.simple_config ~m:3 ~ids:[ 5; 9 ] ~inputs:[ (); () ] ())
  in
  let rng = Rng.create 99 in
  let _ = R.run rt (Schedule.random rng) ~max_steps:500 in
  finish_run ~n:2 ~m:3 rt rng [ 0; 1 ];
  let names =
    Array.to_list (R.decisions rt) |> List.filter_map Fun.id |> List.sort compare
  in
  Alcotest.(check (list int)) "names {1,2}" [ 1; 2 ] names

let test_round_tracking () =
  let rt =
    R.create (R.simple_config ~m:3 ~ids:[ 5; 9 ] ~inputs:[ (); () ] ())
  in
  Alcotest.(check int) "initial round" 1 (P.round_of (R.local rt 0));
  ignore (R.step rt 0);
  Alcotest.(check int) "round 1 while playing" 1 (P.round_of (R.local rt 0))

let test_history_union_canonical () =
  let h = Coord.Renaming.Value.union_history [ (3, 1) ] (1, 2) in
  Alcotest.(check bool) "sorted" true (h = [ (1, 2); (3, 1) ]);
  let h' = Coord.Renaming.Value.union_history h (3, 1) in
  Alcotest.(check bool) "idempotent" true (h' = h)

let suite =
  [
    Alcotest.test_case "model check n=2, all namings (Thm 5.1-5.3)" `Slow
      test_model_check_n2;
    Alcotest.test_case "solo takes name 1" `Quick test_solo_takes_name_one;
    QCheck_alcotest.to_alcotest qcheck_unique_and_adaptive;
    Alcotest.test_case "contended pair gets {1,2}" `Quick
      test_contended_pair_gets_1_2;
    Alcotest.test_case "round tracking" `Quick test_round_tracking;
    Alcotest.test_case "history union is canonical" `Quick
      test_history_union_canonical;
  ]
