(* The experiment tables are the deliverable that regenerates EXPERIMENTS.md;
   these tests pin their shape (ids, non-emptiness, row widths) and spot-check
   a few verdict cells so a regression in any harness shows up here. *)

let render t = Format.asprintf "%a" Report.Table.render t

let test_table_render () =
  let t =
    Report.Table.make ~id:"T0" ~title:"demo" ~header:[ "a"; "bb" ]
      ~notes:[ "a note" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let s = render t in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "mentions %S" n) true (contains n))
    [ "== T0: demo =="; "| a "; "| bb |"; "| 333 |"; "a note" ]

let test_table_rejects_ragged_rows () =
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.make: row width mismatch") (fun () ->
      ignore
        (Report.Table.make ~id:"T" ~title:"t" ~header:[ "a"; "b" ]
           [ [ "only one" ] ]))

let test_by_id () =
  Alcotest.(check bool) "E1 found" true (Report.Experiments.by_id "E1" <> None);
  Alcotest.(check bool) "e13 found (case-insensitive)" true
    (Report.Experiments.by_id "e13" <> None);
  Alcotest.(check bool) "E99 unknown" true
    (Report.Experiments.by_id "E99" = None)

(* Running every quick experiment is the broadest integration test in the
   suite: it exercises the checker, the simulator, both adversaries and all
   protocols. Verdict cells must contain no VIOLATED/FAILED outside the
   rows that are *supposed* to exhibit violations. *)
let test_all_quick_experiments () =
  let tables = Report.Experiments.all Report.Experiments.Quick in
  Alcotest.(check bool) "all experiments produced tables" true
    (List.length tables >= 13);
  List.iter
    (fun (t : Report.Table.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s has rows" t.id)
        true (t.rows <> []);
      List.iter
        (fun row ->
          Alcotest.(check int)
            (Printf.sprintf "%s row width" t.id)
            (List.length t.header) (List.length row))
        t.rows)
    tables;
  (* spot-check verdicts: E1 must be clean, E3's (2,4) cell must attack *)
  let find id =
    List.find (fun (t : Report.Table.t) -> t.id = id) tables
  in
  let e1 = find "E1" in
  List.iter
    (fun row ->
      Alcotest.(check string) "E1 ME ok" "ok" (List.nth row 3);
      Alcotest.(check string) "E1 DF ok" "ok" (List.nth row 4))
    e1.rows;
  let e3 = find "E3" in
  let row_n2 = List.hd e3.rows in
  Alcotest.(check string) "E3 n=2 m=2 attacked" "d=2 livelock"
    (List.nth row_n2 1);
  Alcotest.(check string) "E3 n=2 m=3 coprime" "coprime" (List.nth row_n2 2)

let suite =
  [
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "table rejects ragged rows" `Quick
      test_table_rejects_ragged_rows;
    Alcotest.test_case "experiment lookup" `Quick test_by_id;
    Alcotest.test_case "all quick experiments run clean" `Slow
      test_all_quick_experiments;
  ]
