open Anonmem

let test_summarize () =
  let s = Stats.summarize [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "count" 4 s.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1. s.min;
  Alcotest.(check (float 1e-9)) "max" 4. s.max;
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 1.25) s.stddev

let test_summarize_singleton () =
  let s = Stats.summarize [ 7. ] in
  Alcotest.(check (float 1e-9)) "mean" 7. s.mean;
  Alcotest.(check (float 1e-9)) "stddev" 0. s.stddev

let test_summarize_empty () =
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (Stats.summarize []))

let test_summarize_ints () =
  let s = Stats.summarize_ints [ 2; 4 ] in
  Alcotest.(check (float 1e-9)) "mean" 3. s.mean

let test_pp_summary () =
  let s = Stats.summarize [ 1.; 3. ] in
  Alcotest.(check string) "rendering" "n=2 mean=2.00 sd=1.00 min=1 max=3"
    (Format.asprintf "%a" Stats.pp_summary s)

let test_tally () =
  let t = Stats.Tally.create () in
  Stats.Tally.incr t "ok";
  Stats.Tally.incr t "ok";
  Stats.Tally.add t "fail" 3;
  Alcotest.(check int) "ok" 2 (Stats.Tally.get t "ok");
  Alcotest.(check int) "fail" 3 (Stats.Tally.get t "fail");
  Alcotest.(check int) "missing" 0 (Stats.Tally.get t "nope");
  Alcotest.(check int) "total" 5 (Stats.Tally.total t);
  Alcotest.(check (list (pair string int)))
    "sorted list"
    [ ("fail", 3); ("ok", 2) ]
    (Stats.Tally.to_list t)

let suite =
  [
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "summarize singleton" `Quick test_summarize_singleton;
    Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
    Alcotest.test_case "summarize ints" `Quick test_summarize_ints;
    Alcotest.test_case "pp summary" `Quick test_pp_summary;
    Alcotest.test_case "tally" `Quick test_tally;
  ]
