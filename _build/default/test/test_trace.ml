open Anonmem

let entry ?(time = 0) ?(proc = 0) ?(id = 1) ?(action = Trace.Internal)
    ?(before = Protocol.Trying) ?(after = Protocol.Trying) () :
    (int, int) Trace.entry =
  {
    time;
    proc;
    id;
    action;
    status_before = before;
    status_after = after;
  }

let test_enters_exits_critical () =
  let enter = entry ~before:Protocol.Trying ~after:Protocol.Critical () in
  let stay = entry ~before:Protocol.Critical ~after:Protocol.Critical () in
  let leave = entry ~before:Protocol.Critical ~after:Protocol.Exiting () in
  Alcotest.(check bool) "enter" true (Trace.enters_critical enter);
  Alcotest.(check bool) "stay is not enter" false (Trace.enters_critical stay);
  Alcotest.(check bool) "stay is not exit" false (Trace.exits_critical stay);
  Alcotest.(check bool) "leave" true (Trace.exits_critical leave);
  Alcotest.(check bool) "leave is not enter" false (Trace.enters_critical leave)

let test_decision () =
  let decide = entry ~before:Protocol.Trying ~after:(Protocol.Decided 9) () in
  let already = entry ~before:(Protocol.Decided 9) ~after:(Protocol.Decided 9) () in
  Alcotest.(check (option int)) "decision captured" (Some 9)
    (Trace.decision decide);
  Alcotest.(check (option int)) "no re-decision" None (Trace.decision already)

let write ~proc ~phys =
  entry ~proc ~action:(Trace.Write { loc = phys; phys; value = 1 }) ()

let test_writes_by_order_and_dedup () =
  let trace =
    [
      write ~proc:0 ~phys:2;
      write ~proc:1 ~phys:0;
      write ~proc:0 ~phys:2;
      (* duplicate *)
      write ~proc:0 ~phys:1;
      entry ~proc:0 ~action:(Trace.Read { loc = 0; phys = 0; value = 0 }) ();
    ]
  in
  Alcotest.(check (list int)) "first-write order, deduped" [ 2; 1 ]
    (Trace.writes_by trace 0);
  Alcotest.(check (list int)) "other process separate" [ 0 ]
    (Trace.writes_by trace 1);
  Alcotest.(check (list int)) "absent process empty" []
    (Trace.writes_by trace 7)

let test_rmw_counts_as_write () =
  let trace =
    [
      entry ~proc:0
        ~action:(Trace.Rmw { loc = 1; phys = 1; old_value = 0; new_value = 3 })
        ();
    ]
  in
  Alcotest.(check (list int)) "rmw registers in write set" [ 1 ]
    (Trace.writes_by trace 0)

let test_pp_runs () =
  (* the printers must not raise and must include the essentials *)
  let trace =
    [
      write ~proc:0 ~phys:2;
      entry ~proc:1 ~action:(Trace.Coin true) ();
      entry ~proc:1 ~before:Protocol.Trying ~after:(Protocol.Decided 4) ();
    ]
  in
  let s =
    Format.asprintf "%a"
      (Trace.pp ~pp_value:Format.pp_print_int ~pp_output:Format.pp_print_int)
      trace
  in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "output mentions %S" needle)
        true (contains needle))
    [ "write"; "coin"; "decided(4)" ]

let suite =
  [
    Alcotest.test_case "enters/exits critical" `Quick
      test_enters_exits_critical;
    Alcotest.test_case "decision extraction" `Quick test_decision;
    Alcotest.test_case "writes_by: order and dedup" `Quick
      test_writes_by_order_and_dedup;
    Alcotest.test_case "writes_by: rmw counts" `Quick test_rmw_counts_as_write;
    Alcotest.test_case "pretty printer" `Quick test_pp_runs;
  ]
