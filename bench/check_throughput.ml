(* Checker throughput sweep, recorded to BENCH_checker.json.

   Two kinds of workload:

   - par-vs-seq: the frontier-parallel explorer against the sequential
     reference, on each in-tree protocol family. Every parallel run is
     first cross-validated against the sequential one (bit-identical
     states, transitions, completeness) before its timing is reported,
     so a number in the JSON always describes a correct run. Timings are
     min-of-[reps] wall clock.

   - reduced-vs-full: symmetry-quotient exploration ([~reduction:Canon])
     against the full graph on symmetric configurations (identical
     namings, equal inputs), recording both state counts and the
     reduction factor (orbit mass per stored state). The quotient run is
     additionally cross-validated par-vs-seq.

     The centerpiece is Figure 1's mutex on m = 5 registers with three
     lock-step processes: its full graph blows the 2M-state budget while
     the quotient (S_3, order 6) completes — the quotient's [orbit_sum]
     still reports the exact full-graph size. Skipped under --quick.

   Every timed run is also audited for the dedup-accounting invariant
   (complete runs: candidates = states + dedup_hits) — a broken counter
   fails the bench rather than recording silently-wrong rows.

   Runs APPEND to BENCH_checker.json (a JSON array of timestamped run
   objects), so the file accumulates a history across hosts and commits.

   Two further kinds of workload ride on the same harness:

   - shard-vs-seq / barrier-vs-seq: a multi-domain scaling curve of both
     parallel engines (the sharded work-stealing default and the barrier
     reference) against the sequential explorer, one row per (engine,
     domain count). --gate-shard RATIO turns the sharded rows into a CI
     gate on graphs above 10^5 states (`make bench-shard` wires it in at
     1.0); on a single-domain host every parallel comparison is recorded
     as {"skipped": "single-domain host"} instead of a noise ratio.

   - disk-vs-quotient (--disk): the external-memory explorer runs the
     full UNREDUCED Figure 1 mutex (amutex on m = 5, three lock-step
     processes, 8.4M states — the workload that blows the in-RAM 2M
     budget) with the visited set spilling to disk, and must land
     exactly on the state count predicted by the symmetry quotient's
     orbit mass. --mem-mb N sets the spill watermark (default 512).
     --disk runs only this workload.

     dune exec bench/check_throughput.exe \
       [-- [DOMAINS] [--quick] [--force] [--reps N] [--gate-canon RATIO] \
           [--gate-shard RATIO] [--disk] [--mem-mb N]]

   --reps N overrides the mandatory repetition count (default 3; --quick
   defaults to 1); ms-scale workloads additionally repeat until 0.25 s of
   cumulative measurement (capped at 50 reps) so noise cannot set the
   min. --gate-canon RATIO turns the run into a CI gate: after the
   rows are appended, exit non-zero if any reduced-vs-full workload
   whose full exploration completed has wall-clock speedup below RATIO
   (`make bench-canon` wires this into `make check` at 0.9).

   DOMAINS defaults to Domain.recommended_domain_count (), and asking for
   MORE than that count is refused (oversubscribed domains on this runtime
   measure scheduler churn, not the explorer) unless --force is given.
   Speedups are honest wall-clock ratios on the machine at hand: on a
   single-core host the parallel path never engages (the adaptive
   explorer stays sequential; "cutover": null records why). *)

open Anonmem

let str = Printf.sprintf

type entry = {
  label : string;
  kind : string;
      (* "par-vs-seq" | "reduced-vs-full" | "shard-vs-seq" |
         "barrier-vs-seq" | "disk-vs-quotient" *)
  a_name : string;
  a_json : string;
  b_name : string;
  b_json : string;
  speedup : float;  (* elapsed(a) / elapsed(b) *)
  reduction_factor : float;
  peak_table : int;  (* largest interning-table population of the entry *)
  full_complete : bool;
      (* the baseline ("a") run completed — only such reduced-vs-full
         entries are eligible for the --gate-canon wall-clock gate (a
         truncated full run makes the ratio meaningless) *)
  note : string option;
  skipped : string option;
      (* the workload was not measured at all (e.g. a parallel comparison
         on a single-domain host); such rows carry no stats objects *)
}

let skipped_entry ~label ~kind reason =
  {
    label;
    kind;
    a_name = "";
    a_json = "";
    b_name = "";
    b_json = "";
    speedup = 1.0;
    reduction_factor = 1.0;
    peak_table = 0;
    full_complete = false;
    note = None;
    skipped = Some reason;
  }

let reps = ref 3

(* Min-of-reps wall clock, with a measurement-time floor: after the
   mandatory [reps] repetitions, ms-scale workloads keep repeating (up
   to [time_rep_cap] total) until the cumulative measured time reaches
   [time_floor_s]. A single scheduler hiccup on a 2 ms graph can no
   longer set the min; workloads already past the floor stop at [reps]
   as before. *)
let time_floor_s = 0.25
let time_rep_cap = 50

let time_best f =
  let best = ref None in
  let total = ref 0. in
  let n = ref 0 in
  let mandatory = max 1 !reps in
  while !n < mandatory || (!total < time_floor_s && !n < time_rep_cap) do
    let r, s = f () in
    incr n;
    total := !total +. s.Check.Checker_stats.elapsed_s;
    match !best with
    | Some (_, s0) when s0.Check.Checker_stats.elapsed_s <= s.Check.Checker_stats.elapsed_s
      -> ()
    | _ -> best := Some (r, s)
  done;
  Option.get !best

module Sweep (P : Protocol.PROTOCOL) = struct
  module E = Check.Explore.Make (P)

  let same (a : E.graph) (b : E.graph) =
    a.states = b.states && a.succs = b.succs && a.complete = b.complete

  (* Complete runs must balance their books exactly; truncated runs drop
     over-budget candidates on the floor, so only the inequality holds. *)
  let check_accounting ~label ~which (s : Check.Checker_stats.t) =
    let cand = s.Check.Checker_stats.candidates in
    let resolved =
      s.Check.Checker_stats.n_states + s.Check.Checker_stats.dedup_hits
    in
    let broken =
      if s.Check.Checker_stats.complete then cand <> resolved
      else cand < resolved
    in
    if broken then
      failwith
        (str
           "%s (%s): dedup accounting broken: %d candidates vs %d states + \
            %d dedup hits"
           label which cand s.Check.Checker_stats.n_states
           s.Check.Checker_stats.dedup_hits)

  let par_vs_seq ~label ~domains ?max_states (cfg : E.config) =
    if domains < 2 then begin
      (* a 1-domain "parallel" run measures nothing but the wrapper; the
         row records why there is no number instead of a noise ratio *)
      Format.printf "--- %s ---@.skipped: single-domain host@.@." label;
      skipped_entry ~label ~kind:"par-vs-seq" "single-domain host"
    end
    else begin
    let gs, ss = time_best (fun () -> E.explore_with_stats ?max_states cfg) in
    let gp, sp = time_best (fun () -> E.explore_par ~domains ?max_states cfg) in
    if not (same gs gp) then
      failwith (str "%s: parallel explorer diverged from sequential" label);
    check_accounting ~label ~which:"seq" ss;
    check_accounting ~label ~which:"par" sp;
    let speedup =
      ss.Check.Checker_stats.elapsed_s /. sp.Check.Checker_stats.elapsed_s
    in
    Format.printf "--- %s ---@.seq: %a@.par: %a@.speedup: %.2fx@.@." label
      Check.Checker_stats.pp ss Check.Checker_stats.pp sp speedup;
    let note =
      if speedup >= 1.0 then None
      else
        Some
          (match sp.Check.Checker_stats.cutover with
          | None ->
            "parallel path never engaged (single domain or frontier below \
             threshold); difference is timing noise"
          | Some dep ->
            str "barrier-parallel from depth %d: overhead exceeded the \
                 per-generation work on this host" dep)
    in
    {
      label;
      kind = "par-vs-seq";
      a_name = "seq";
      a_json = Check.Checker_stats.to_json ss;
      b_name = "par";
      b_json = Check.Checker_stats.to_json sp;
      speedup;
      reduction_factor = 1.0;
      peak_table = max ss.Check.Checker_stats.n_states sp.Check.Checker_stats.n_states;
      full_complete = ss.Check.Checker_stats.complete;
      note;
      skipped = None;
    }
    end

  (* Multi-domain scaling curve: the sequential reference against both
     parallel engines at each domain count up to [domains], recorded as
     one row per (engine, d). The sharded rows are the ones the
     --gate-shard CI gate reads. *)
  let engine_curve ~label ~domains ?max_states (cfg : E.config) =
    if domains < 2 then begin
      Format.printf "--- %s scaling ---@.skipped: single-domain host@.@."
        label;
      [ skipped_entry ~label:(label ^ "-scaling") ~kind:"shard-vs-seq"
          "single-domain host" ]
    end
    else begin
      let gs, ss = time_best (fun () -> E.explore_with_stats ?max_states cfg) in
      check_accounting ~label ~which:"seq" ss;
      let curve =
        List.sort_uniq compare
          (domains :: List.filter (fun d -> d <= domains) [ 2; 4; 8; 16 ])
      in
      List.concat_map
        (fun d ->
          List.map
            (fun engine ->
              let tagname = Check.Explore.engine_tag engine in
              let row_label = str "%s [%s d=%d]" label tagname d in
              let gp, sp =
                time_best (fun () ->
                    E.explore_par ~domains:d ~engine ?max_states cfg)
              in
              if not (same gs gp) then
                failwith
                  (str "%s: %s engine diverged from sequential" row_label
                     tagname);
              check_accounting ~label:row_label ~which:tagname sp;
              let speedup =
                ss.Check.Checker_stats.elapsed_s
                /. sp.Check.Checker_stats.elapsed_s
              in
              Format.printf "--- %s ---@.seq: %a@.%s: %a@.speedup: %.2fx@.@."
                row_label Check.Checker_stats.pp ss tagname
                Check.Checker_stats.pp sp speedup;
              {
                label = row_label;
                kind =
                  (match engine with
                  | Check.Explore.Sharded -> "shard-vs-seq"
                  | Check.Explore.Barrier -> "barrier-vs-seq");
                a_name = "seq";
                a_json = Check.Checker_stats.to_json ss;
                b_name = tagname;
                b_json = Check.Checker_stats.to_json sp;
                speedup;
                reduction_factor = 1.0;
                peak_table = ss.Check.Checker_stats.n_states;
                full_complete = ss.Check.Checker_stats.complete;
                note = None;
                skipped = None;
              })
            [ Check.Explore.Barrier; Check.Explore.Sharded ])
        curve
    end

  (* External-memory run of a full (unreduced) graph too big for the
     in-RAM budget, cross-checked against the symmetry quotient: the
     quotient's orbit mass is the exact full-graph size, so the
     disk-backed explorer must land on that number precisely. *)
  let disk_vs_quotient ~label ~mem_mb ?(max_states = 20_000_000)
      (cfg : E.config) =
    let dir = Filename.temp_file "coord-disk" ".d" in
    Sys.remove dir;
    let _, sr = E.explore_with_stats ~reduction:Canon cfg in
    check_accounting ~label ~which:"quotient" sr;
    if not sr.Check.Checker_stats.complete then
      failwith (str "%s: quotient reference did not complete" label);
    let sx =
      E.explore_external ~max_states ~mem_soft_limit_mb:mem_mb ~dir cfg
    in
    (* best-effort cleanup of the spilled runs *)
    (try
       Array.iter
         (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
         (Sys.readdir dir);
       Sys.rmdir dir
     with Sys_error _ -> ());
    check_accounting ~label ~which:"external" sx;
    if not sx.Check.Checker_stats.complete then
      failwith (str "%s: external exploration did not complete" label);
    if sx.Check.Checker_stats.n_states <> sr.Check.Checker_stats.orbit_sum then
      failwith
        (str
           "%s: external explorer found %d states but the quotient's orbit \
            mass says the full graph has %d"
           label sx.Check.Checker_stats.n_states
           sr.Check.Checker_stats.orbit_sum);
    Format.printf
      "--- %s ---@.quotient: %a@.external: %a@.full graph %d states \
       confirmed; %d runs spilled, %d batched probes@.@."
      label Check.Checker_stats.pp sr Check.Checker_stats.pp sx
      sx.Check.Checker_stats.n_states sx.Check.Checker_stats.spilled_runs
      sx.Check.Checker_stats.disk_probes;
    {
      label;
      kind = "disk-vs-quotient";
      a_name = "quotient";
      a_json = Check.Checker_stats.to_json sr;
      b_name = "external";
      b_json = Check.Checker_stats.to_json sx;
      speedup =
        sr.Check.Checker_stats.elapsed_s /. sx.Check.Checker_stats.elapsed_s;
      reduction_factor = Check.Checker_stats.reduction_factor sr;
      peak_table = sx.Check.Checker_stats.n_states;
      full_complete = sx.Check.Checker_stats.complete;
      note =
        Some
          "external (disk-backed) full exploration; speedup column is \
           quotient-time/external-time, expected well below 1";
      skipped = None;
    }

  let reduced_vs_full ~label ~domains ?max_states (cfg : E.config) =
    let gf, sf = time_best (fun () -> E.explore_with_stats ?max_states cfg) in
    let gr, sr =
      time_best (fun () -> E.explore_with_stats ~reduction:Canon ?max_states cfg)
    in
    (* quotient parity across the parallel explorer before reporting *)
    let gp, _ = E.explore_par ~domains ~reduction:Check.Explore.Canon ?max_states cfg in
    if not (same gr gp && gr.orbits = gp.orbits) then
      failwith (str "%s: parallel quotient diverged from sequential" label);
    check_accounting ~label ~which:"full" sf;
    check_accounting ~label ~which:"reduced" sr;
    if
      Array.length gr.states >= Array.length gf.states
      && sr.Check.Checker_stats.group_order > 1
      && gf.complete
    then failwith (str "%s: quotient failed to shrink the state space" label);
    let speedup =
      sf.Check.Checker_stats.elapsed_s /. sr.Check.Checker_stats.elapsed_s
    in
    Format.printf "--- %s ---@.full:    %a@.reduced: %a@.reduction %.2fx, \
                   states %d -> %d, full-time/reduced-time %.2fx@.@."
      label Check.Checker_stats.pp sf Check.Checker_stats.pp sr
      (Check.Checker_stats.reduction_factor sr)
      sf.Check.Checker_stats.n_states sr.Check.Checker_stats.n_states speedup;
    let note =
      if speedup >= 1.0 then None
      else if not gf.complete then
        Some
          "full exploration truncated at the state budget, so the wall-clock \
           ratio understates the quotient (which completed); the reduction \
           factor is the meaningful column"
      else
        Some
          "canonicalization overhead exceeded the state savings at this \
           graph size; the reduction factor still holds"
    in
    {
      label;
      kind = "reduced-vs-full";
      a_name = "full";
      a_json = Check.Checker_stats.to_json sf;
      b_name = "reduced";
      b_json = Check.Checker_stats.to_json sr;
      speedup;
      reduction_factor = Check.Checker_stats.reduction_factor sr;
      peak_table = max sf.Check.Checker_stats.n_states sr.Check.Checker_stats.n_states;
      full_complete = gf.complete;
      note;
      skipped = None;
    }
end

module SMutex = Sweep (Coord.Amutex.P)
module SCons = Sweep (Coord.Consensus.P)
module SRen = Sweep (Coord.Renaming.P)
module SCcp = Sweep (Coord.Ccp.P)
module SBurns = Sweep (Baseline.Burns.P)

let indent s =
  String.split_on_char '\n' s
  |> List.map (fun l -> "      " ^ l)
  |> String.concat "\n"

let entry_json e =
  let b = Buffer.create 1024 in
  Buffer.add_string b "    {\n";
  Buffer.add_string b (str "      \"workload\": %S,\n" e.label);
  (* every entry names the host it was measured on: comparisons read in
     isolation (dashboards slice entries out of runs) must show whether
     a parallel ratio comes from a single-domain host, where the
     adaptive explorer never engages and speedups are vacuously 1.0 *)
  let host_cores = Domain.recommended_domain_count () in
  Buffer.add_string b (str "      \"host_cores\": %d,\n" host_cores);
  Buffer.add_string b
    (str "      \"single_domain\": %b,\n" (host_cores < 2));
  (match e.skipped with
  | Some reason ->
    Buffer.add_string b (str "      \"kind\": %S,\n" e.kind);
    Buffer.add_string b (str "      \"skipped\": %S\n    }" reason)
  | None ->
    Buffer.add_string b (str "      \"kind\": %S,\n" e.kind);
    Buffer.add_string b (str "      \"speedup\": %.3f,\n" e.speedup);
    Buffer.add_string b
      (str "      \"reduction_factor\": %.3f,\n" e.reduction_factor);
    Buffer.add_string b (str "      \"peak_table\": %d,\n" e.peak_table);
    (match e.note with
    | Some n -> Buffer.add_string b (str "      \"note\": %S,\n" n)
    | None -> ());
    Buffer.add_string b (str "      \"%s\":\n%s,\n" e.a_name (indent e.a_json));
    Buffer.add_string b
      (str "      \"%s\":\n%s\n    }" e.b_name (indent e.b_json)));
  Buffer.contents b

let utc_timestamp () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  str "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

(* BENCH_checker.json is a JSON array of run objects; append in place. *)
let append_run ~file run_json =
  let previous =
    if Sys.file_exists file then begin
      let ic = open_in_bin file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (* strip the closing "]" (and trailing whitespace) of the array *)
      let rec last_bracket i = if i < 0 || s.[i] = ']' then i else last_bracket (i - 1) in
      let i = last_bracket (String.length s - 1) in
      if i <= 0 then None else Some (String.sub s 0 i)
    end
    else None
  in
  let oc = open_out file in
  (match previous with
  | Some prefix ->
    output_string oc prefix;
    (* the prefix ends just before the old closing bracket; the previous
       run object is the last non-blank thing in it *)
    output_string oc ",\n";
    output_string oc run_json
  | None ->
    output_string oc "[\n";
    output_string oc run_json);
  output_string oc "\n]\n";
  close_out oc

let () =
  let quick = ref false and force = ref false and domains_arg = ref None in
  let reps_arg = ref None and gate = ref None in
  let gate_shard = ref None and disk = ref false and mem_mb = ref 512 in
  let usage () =
    prerr_endline
      "usage: check_throughput [DOMAINS] [--quick] [--force] [--reps N] \
       [--gate-canon RATIO] [--gate-shard RATIO] [--disk] [--mem-mb N]";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--force" :: rest ->
      force := true;
      parse rest
    | "--disk" :: rest ->
      disk := true;
      parse rest
    | "--mem-mb" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 16 ->
        mem_mb := n;
        parse rest
      | _ -> usage ())
    | "--reps" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        reps_arg := Some n;
        parse rest
      | _ -> usage ())
    | "--gate-canon" :: r :: rest -> (
      match float_of_string_opt r with
      | Some r when r > 0. ->
        gate := Some r;
        parse rest
      | _ -> usage ())
    | "--gate-shard" :: r :: rest -> (
      match float_of_string_opt r with
      | Some r when r > 0. ->
        gate_shard := Some r;
        parse rest
      | _ -> usage ())
    | a :: rest -> (
      match int_of_string_opt a with
      | Some d when d >= 1 ->
        domains_arg := Some d;
        parse rest
      | _ -> usage ())
  in
  parse (List.tl (Array.to_list Sys.argv));
  let recommended = Domain.recommended_domain_count () in
  let domains = match !domains_arg with Some d -> d | None -> recommended in
  if domains > recommended && not !force then begin
    Printf.eprintf
      "check_throughput: refusing to run %d domains on a host whose \
       recommended count is %d.\n\
       Oversubscribed domains measure scheduler churn, not the explorer \
       (the last recorded run did exactly that). Pass --force to \
       oversubscribe anyway.\n"
      domains recommended;
    exit 1
  end;
  reps :=
    (match !reps_arg with Some n -> n | None -> if !quick then 1 else 3);
  Format.printf
    "host cores (recommended domains): %d; using %d domain(s), %d rep(s)%s@.@."
    recommended domains !reps
    (if !quick then " [quick]" else "");
  let rot2 m = [| Naming.identity m; Naming.rotation m 1 |] in
  let sym n m = Array.init n (fun _ -> Naming.identity m) in
  let ids n = Array.init n (fun i -> 7 + i) in
  let units n = Array.make n () in
  let entries = ref [] in
  let add e = entries := e :: !entries in
  let add_all es = List.iter add es in
  if !disk then
    (* --disk runs only the external-memory workload: the full unreduced
       Figure 1 mutex (8.4M states), disk-bounded instead of
       budget-truncated, cross-checked against the quotient's orbit mass *)
    add
      (SMutex.disk_vs_quotient ~label:"amutex-m5-n3-disk" ~mem_mb:!mem_mb
         { ids = ids 3; inputs = units 3; namings = sym 3 5 })
  else begin
  (* --- reduced-vs-full: symmetric configurations --- *)
  if not !quick then
    (* Figure 1 on five registers, three lock-step processes: the full
       graph blows the 2M budget, the S_3 quotient completes *)
    add
      (SMutex.reduced_vs_full ~label:"amutex-m5-n3-sym" ~domains
         { ids = ids 3; inputs = units 3; namings = sym 3 5 });
  add
    (SMutex.reduced_vs_full ~label:"amutex-m3-n3-sym" ~domains
       { ids = ids 3; inputs = units 3; namings = sym 3 3 });
  add
    (SMutex.reduced_vs_full ~label:"amutex-m5-n2-sym" ~domains
       { ids = ids 2; inputs = units 2; namings = sym 2 5 });
  add
    (SCons.reduced_vs_full ~label:"consensus-m3-sym" ~domains
       { ids = ids 2; inputs = [| 42; 42 |]; namings = sym 2 3 });
  add
    (SRen.reduced_vs_full ~label:"renaming-m3-sym" ~domains
       { ids = ids 2; inputs = units 2; namings = sym 2 3 });
  add
    (SCcp.reduced_vs_full ~label:"ccp-m2-sym" ~domains
       { ids = ids 2; inputs = units 2; namings = sym 2 2 });
  (* --- par-vs-seq: the historical sweep (full graphs, generic namings) --- *)
  add
    (SMutex.par_vs_seq ~label:"amutex-m5" ~domains
       { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 5 });
  (* --- engine scaling: barrier vs sharded at 2..domains, on a full
     graph big enough for the gate (227k states > the 10^5 floor) --- *)
  add_all
    (SMutex.engine_curve ~label:"amutex-m3-n3" ~domains
       { ids = ids 3; inputs = units 3; namings = sym 3 3 });
  if not !quick then begin
    add
      (SMutex.par_vs_seq ~label:"amutex-m3" ~domains
         { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 3 });
    add
      (SCons.par_vs_seq ~label:"consensus-m3" ~domains
         { ids = [| 7; 13 |]; inputs = [| 100; 200 |]; namings = rot2 3 });
    add
      (SRen.par_vs_seq ~label:"renaming-m3" ~domains
         { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 3 });
    add
      (SCcp.par_vs_seq ~label:"ccp-m2" ~domains
         { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 2 });
    add
      (SBurns.par_vs_seq ~label:"burns-n3" ~domains
         (SBurns.E.config ~ids:[ 1; 2; 3 ] ~inputs:[ (); (); () ] ()))
  end;
  end;
  let entries = List.rev !entries in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "  {\n";
  Buffer.add_string buf (str "    \"timestamp\": %S,\n" (utc_timestamp ()));
  Buffer.add_string buf
    (str "    \"host_recommended_domains\": %d,\n" recommended);
  Buffer.add_string buf (str "    \"domains\": %d,\n" domains);
  Buffer.add_string buf (str "    \"quick\": %b,\n" !quick);
  Buffer.add_string buf (str "    \"reps\": %d,\n" !reps);
  Buffer.add_string buf "    \"entries\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf (entry_json e);
      Buffer.add_string buf
        (if i = List.length entries - 1 then "\n" else ",\n"))
    entries;
  Buffer.add_string buf "    ]\n  }";
  append_run ~file:"BENCH_checker.json" (Buffer.contents buf);
  Format.printf "appended run to BENCH_checker.json@.";
  (* the gates run AFTER the append: a failing run still leaves its
     evidence in the history *)
  (match !gate with
  | None -> ()
  | Some ratio ->
    let eligible =
      List.filter
        (fun e -> e.kind = "reduced-vs-full" && e.full_complete)
        entries
    in
    let failures = List.filter (fun e -> e.speedup < ratio) eligible in
    if failures <> [] then begin
      List.iter
        (fun e ->
          Printf.eprintf
            "gate: %s: canon wall-clock %.3fx the full exploration, below \
             the %.2fx gate\n"
            e.label e.speedup ratio)
        failures;
      exit 1
    end
    else
      Format.printf
        "gate: all %d quotient workloads at or above %.2fx full wall-clock@."
        (List.length eligible) ratio);
  match !gate_shard with
  | None -> ()
  | Some ratio ->
    (* the sharded engine must beat sequential on graphs big enough to
       amortize domain startup (> 10^5 states); single-domain hosts have
       only skipped rows and pass vacuously *)
    let eligible =
      List.filter
        (fun e ->
          e.kind = "shard-vs-seq" && e.skipped = None && e.peak_table > 100_000)
        entries
    in
    if eligible = [] then
      Format.printf
        "gate: no sharded workloads eligible on this host (single domain \
         or all graphs under 10^5 states); vacuous pass@."
    else begin
      let failures = List.filter (fun e -> e.speedup < ratio) eligible in
      if failures <> [] then begin
        List.iter
          (fun e ->
            Printf.eprintf
              "gate: %s: sharded wall-clock %.3fx sequential, below the \
               %.2fx gate\n"
              e.label e.speedup ratio)
          failures;
        exit 1
      end
      else
        Format.printf
          "gate: all %d sharded workloads at or above %.2fx sequential \
           wall-clock@."
          (List.length eligible) ratio
    end
