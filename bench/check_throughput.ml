(* Checker throughput sweep: sequential reference explorer vs the
   frontier-parallel explorer, on each in-tree protocol family, recorded
   to BENCH_checker.json.

   Every parallel run is first cross-validated against the sequential one
   (bit-identical states, transitions, completeness) before its timing is
   reported, so a number in the JSON always describes a correct run.

     dune exec bench/check_throughput.exe [-- DOMAINS]

   DOMAINS defaults to Domain.recommended_domain_count (). Speedups are
   honest wall-clock ratios on the machine at hand: on a single-core host
   the parallel explorer pays barrier overhead and reports < 1x. *)

open Anonmem

let str = Printf.sprintf

type entry = { label : string; seq_json : string; par_json : string; speedup : float }

module Sweep (P : Protocol.PROTOCOL) = struct
  module E = Check.Explore.Make (P)

  let run ~label ~domains (cfg : E.config) =
    let gs, ss = E.explore_with_stats cfg in
    let gp, sp = E.explore_par ~domains cfg in
    if
      not
        (gs.states = gp.states && gs.succs = gp.succs
       && gs.complete = gp.complete)
    then failwith (str "%s: parallel explorer diverged from sequential" label);
    let speedup = ss.Check.Checker_stats.elapsed_s /. sp.Check.Checker_stats.elapsed_s in
    Format.printf "--- %s ---@.seq: %a@.par: %a@.speedup: %.2fx@.@."
      label Check.Checker_stats.pp ss Check.Checker_stats.pp sp speedup;
    {
      label;
      seq_json = Check.Checker_stats.to_json ss;
      par_json = Check.Checker_stats.to_json sp;
      speedup;
    }
end

module SMutex = Sweep (Coord.Amutex.P)
module SCons = Sweep (Coord.Consensus.P)
module SRen = Sweep (Coord.Renaming.P)
module SCcp = Sweep (Coord.Ccp.P)
module SBurns = Sweep (Baseline.Burns.P)

let indent s =
  String.split_on_char '\n' s
  |> List.map (fun l -> "    " ^ l)
  |> String.concat "\n"

let () =
  let domains =
    if Array.length Sys.argv > 1 then
      match int_of_string_opt Sys.argv.(1) with
      | Some d when d >= 1 -> d
      | _ ->
        prerr_endline "usage: check_throughput [DOMAINS]  (DOMAINS >= 1)";
        exit 2
    else Domain.recommended_domain_count ()
  in
  Format.printf "host cores (recommended domains): %d; using %d domain(s)@.@."
    (Domain.recommended_domain_count ())
    domains;
  let rot2 m = [| Naming.identity m; Naming.rotation m 1 |] in
  (* the largest config first: the m=5 mutex state space is the benchmark's
     centerpiece; m=3 gives a small-comparison point *)
  let e1 =
    SMutex.run ~label:"amutex-m5" ~domains
      { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 5 }
  in
  let e2 =
    SMutex.run ~label:"amutex-m3" ~domains
      { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 3 }
  in
  let e3 =
    SCons.run ~label:"consensus-m3" ~domains
      { ids = [| 7; 13 |]; inputs = [| 100; 200 |]; namings = rot2 3 }
  in
  let e4 =
    SRen.run ~label:"renaming-m3" ~domains
      { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 3 }
  in
  let e5 =
    SCcp.run ~label:"ccp-m2" ~domains
      { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 2 }
  in
  let e6 =
    SBurns.run ~label:"burns-n3" ~domains
      (SBurns.E.config ~ids:[ 1; 2; 3 ] ~inputs:[ (); (); () ] ())
  in
  let entries = [ e1; e2; e3; e4; e5; e6 ] in
  let oc = open_out "BENCH_checker.json" in
  Printf.fprintf oc "{\n  \"host_recommended_domains\": %d,\n"
    (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"domains\": %d,\n  \"entries\": [\n" domains;
  List.iteri
    (fun i e ->
      Printf.fprintf oc "  {\n    \"workload\": %S,\n" e.label;
      Printf.fprintf oc "    \"speedup\": %.3f,\n" e.speedup;
      Printf.fprintf oc "    \"seq\":\n%s,\n" (indent e.seq_json);
      Printf.fprintf oc "    \"par\":\n%s\n  }%s\n" (indent e.par_json)
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.printf "wrote BENCH_checker.json@."
