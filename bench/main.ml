(* Benchmark harness.

   Part 1 regenerates the experiment tables E1-E11 (the paper has no
   measurement tables of its own - every theorem is an experiment here; see
   EXPERIMENTS.md). Part 2 runs the bechamel micro-benchmarks B1-B5 that
   quantify the cost of coordinating *without* prior agreement against the
   named-register baselines:

     B1  solo consensus decision           anonymous Fig 2  vs named commit-adopt
     B2  uncontended mutex session         anonymous Fig 1  vs Peterson / Burns
     B3  renaming: all n acquire names     anonymous Fig 3  vs named chain
     B4  model-checker exploration rate    (states visited per second)
     B5  choice coordination, full run     randomized CCP vs contention

   Expected shape: the anonymous algorithms pay Theta(m) scans per write
   with m = 2n-1, so named baselines win by a factor that grows with n and
   there is no crossover - which is exactly the paper's point about what
   prior agreement buys. *)

open Anonmem
open Bechamel
open Toolkit

let str = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* benchmark bodies                                                    *)
(* ------------------------------------------------------------------ *)

module RCons = Runtime.Make (Coord.Consensus.P)
module RCa = Runtime.Make (Baseline.Ca_consensus.P)
module RMutex = Runtime.Make (Coord.Amutex.P)
module RPet = Runtime.Make (Baseline.Peterson.P)
module RBurns = Runtime.Make (Baseline.Burns.P)
module RFast = Runtime.Make (Baseline.Fast_mutex.P)
module RRen = Runtime.Make (Coord.Renaming.P)
module RChain = Runtime.Make (Baseline.Chain_renaming.P)
module RCcp = Runtime.Make (Coord.Ccp.P)
module EMutex = Check.Explore.Make (Coord.Amutex.P)

let consensus_solo n () =
  let m = (2 * n) - 1 in
  let rt =
    RCons.create
      (RCons.simple_config ~m
         ~ids:(List.init n (fun i -> i + 1))
         ~inputs:(List.init n (fun i -> (i + 1) * 10))
         ())
  in
  let reason = RCons.run rt (Schedule.solo 0) ~max_steps:(4 * m * m) in
  assert (reason <> RCons.Step_limit)

let ca_solo n () =
  let m = Baseline.Ca_consensus.P.registers_for ~n ~rounds:4 in
  let rt =
    RCa.create
      (RCa.simple_config ~m
         ~ids:(List.init n (fun i -> i + 1))
         ~inputs:(List.init n (fun i -> (i + 1) * 10))
         ())
  in
  let reason = RCa.run rt (Schedule.solo 0) ~max_steps:(20 * m) in
  assert (reason <> RCa.Step_limit)

(* One uncontended mutex session: enter and leave the critical section.
   The runtime is pre-built and checkpoint-restored per iteration, so the
   measurement is the protocol's shared accesses, not allocation. *)
let amutex_session m =
  let rt =
    RMutex.create (RMutex.simple_config ~m ~ids:[ 1 ] ~inputs:[ () ] ())
  in
  let cp = RMutex.checkpoint rt in
  fun () ->
    RMutex.restore rt cp;
    let entered = ref false in
    let reason =
      RMutex.run rt
        ~until:(fun t ->
          if RMutex.status t 0 = Protocol.Critical then entered := true;
          !entered && RMutex.status t 0 = Protocol.Remainder)
        (Schedule.solo 0) ~max_steps:(10 * m)
    in
    assert (reason = RMutex.Condition_met)

let peterson_session =
  let rt =
    RPet.create (RPet.simple_config ~ids:[ 1; 2 ] ~inputs:[ (); () ] ())
  in
  let cp = RPet.checkpoint rt in
  fun () ->
    RPet.restore rt cp;
    let entered = ref false in
    let reason =
      RPet.run rt
        ~until:(fun t ->
          if RPet.status t 0 = Protocol.Critical then entered := true;
          !entered && RPet.status t 0 = Protocol.Remainder)
        (Schedule.solo 0) ~max_steps:100
    in
    assert (reason = RPet.Condition_met)

let burns_session n =
  let ids = List.init n (fun i -> i + 1) in
  let rt =
    RBurns.create
      (RBurns.simple_config ~ids ~inputs:(List.map (fun _ -> ()) ids) ())
  in
  let cp = RBurns.checkpoint rt in
  fun () ->
    RBurns.restore rt cp;
    let entered = ref false in
    let reason =
      RBurns.run rt
        ~until:(fun t ->
          if RBurns.status t 0 = Protocol.Critical then entered := true;
          !entered && RBurns.status t 0 = Protocol.Remainder)
        (Schedule.solo 0) ~max_steps:(20 * n)
    in
    assert (reason = RBurns.Condition_met)

let fast_mutex_session n =
  let ids = List.init n (fun i -> i + 1) in
  let rt =
    RFast.create
      (RFast.simple_config ~ids ~inputs:(List.map (fun _ -> ()) ids) ())
  in
  let cp = RFast.checkpoint rt in
  fun () ->
    RFast.restore rt cp;
    let entered = ref false in
    let reason =
      RFast.run rt
        ~until:(fun t ->
          if RFast.status t 0 = Protocol.Critical then entered := true;
          !entered && RFast.status t 0 = Protocol.Remainder)
        (Schedule.solo 0) ~max_steps:100
    in
    assert (reason = RFast.Condition_met)

let renaming_all n seed0 =
  let counter = ref 0 in
  fun () ->
  let m = (2 * n) - 1 in
  let seed = seed0 + (incr counter; !counter mod 64) in
  let rng = Rng.create seed in
  let cfg : RRen.config =
    {
      ids = Array.init n (fun i -> (i + 1) * 13);
      inputs = Array.make n ();
      namings = Array.init n (fun _ -> Naming.random rng m);
      rng = None;
      record_trace = false;
    }
  in
  let rt = RRen.create cfg in
  let _ = RRen.run rt (Schedule.random rng) ~max_steps:(100 * n) in
  let budget = ref (20 * n) in
  while (not (RRen.all_decided rt)) && !budget > 0 do
    decr budget;
    for i = 0 to n - 1 do
      ignore (RRen.run rt (Schedule.solo i) ~max_steps:(50 * m * m))
    done
  done;
  assert (RRen.all_decided rt)

let chain_all n seed0 =
  let counter = ref 0 in
  fun () ->
  let m = Baseline.Chain_renaming.P.default_registers ~n in
  let seed = seed0 + (incr counter; !counter mod 64) in
  let rng = Rng.create seed in
  let ids = List.init n (fun i -> (i + 1) * 13) in
  let rt =
    RChain.create
      (RChain.simple_config ~m ~ids ~inputs:(List.map (fun _ -> ()) ids) ())
  in
  let _ = RChain.run rt (Schedule.random rng) ~max_steps:(100 * n) in
  let budget = ref (20 * n) in
  while (not (RChain.all_decided rt)) && !budget > 0 do
    decr budget;
    for i = 0 to n - 1 do
      ignore (RChain.run rt (Schedule.solo i) ~max_steps:(100 * m))
    done
  done;
  assert (RChain.all_decided rt)

let explore_m3_cfg =
  {
    EMutex.ids = [| 7; 13 |];
    inputs = [| (); () |];
    namings = [| Naming.identity 3; Naming.rotation 3 1 |];
  }

let explore_m3 () =
  let g = EMutex.explore explore_m3_cfg in
  assert (Array.length g.states > 2000)

let explore_m3_par domains () =
  let g, _ = EMutex.explore_par ~domains explore_m3_cfg in
  assert (Array.length g.states > 2000)

let ccp_full n seed0 =
  let counter = ref 0 in
  fun () ->
  let seed = seed0 + (incr counter; !counter mod 64) in
  let rng = Rng.create seed in
  let cfg : RCcp.config =
    {
      ids = Array.init n (fun i -> (i + 1) * 3);
      inputs = Array.make n ();
      namings = Array.init n (fun _ -> Naming.random rng 2);
      rng = Some (Rng.split rng);
      record_trace = false;
    }
  in
  let rt = RCcp.create cfg in
  ignore (RCcp.run rt (Schedule.random rng) ~max_steps:10_000)

(* ------------------------------------------------------------------ *)
(* bechamel plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let tests =
  [
    Test.make_grouped ~name:"B1-consensus-solo"
      (List.concat_map
         (fun n ->
           [
             Test.make
               ~name:(str "fig2-anonymous/n=%d" n)
               (Staged.stage (consensus_solo n));
             Test.make
               ~name:(str "commit-adopt-named/n=%d" n)
               (Staged.stage (ca_solo n));
           ])
         [ 2; 4; 8; 16 ]);
    Test.make_grouped ~name:"B2-mutex-session"
      (List.map
         (fun m ->
           Test.make
             ~name:(str "fig1-anonymous/m=%d" m)
             (Staged.stage (amutex_session m)))
         [ 3; 5; 9 ]
      @ [
          Test.make ~name:"peterson-named/m=3" (Staged.stage peterson_session);
          Test.make ~name:"burns-named/n=2" (Staged.stage (burns_session 2));
          Test.make ~name:"burns-named/n=8" (Staged.stage (burns_session 8));
          Test.make ~name:"fast-named/n=2" (Staged.stage (fast_mutex_session 2));
          Test.make ~name:"fast-named/n=16"
            (Staged.stage (fast_mutex_session 16));
        ]);
    Test.make_grouped ~name:"B3-renaming-all"
      (List.concat_map
         (fun n ->
           [
             Test.make
               ~name:(str "fig3-anonymous/n=%d" n)
               (Staged.stage (renaming_all n (41 * n)));
             Test.make
               ~name:(str "chain-named/n=%d" n)
               (Staged.stage (chain_all n (41 * n)));
           ])
         [ 2; 4; 8 ]);
    Test.make_grouped ~name:"B4-model-check-fig1-m3"
      [
        Test.make ~name:"sequential" (Staged.stage explore_m3);
        Test.make ~name:"parallel/d=2" (Staged.stage (explore_m3_par 2));
      ];
    Test.make_grouped ~name:"B5-ccp-full"
      (List.map
         (fun n ->
           Test.make ~name:(str "randomized/n=%d" n)
             (Staged.stage (ccp_full n (7 * n))))
         [ 2; 4; 8 ]);
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw =
    List.map (fun t -> Benchmark.all cfg instances t) tests
  in
  let results =
    List.map
      (fun raw -> Analyze.merge ols instances [ Analyze.all ols Instance.monotonic_clock raw ])
      raw
  in
  results

let print_results results =
  Format.printf "%-40s %14s@." "benchmark" "ns/op";
  List.iter
    (fun tbl ->
      match Hashtbl.find_opt tbl (Measure.label Instance.monotonic_clock) with
      | None -> ()
      | Some inner ->
        let rows =
          Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) inner []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        List.iter
          (fun (name, ols) ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some [ e ] -> str "%14.0f" e
              | _ -> "?"
            in
            Format.printf "%-40s %14s@." name est)
          rows)
    results

(* Checker throughput at a glance; `check_throughput.exe` runs the full
   sweep and records BENCH_checker.json. *)
let checker_stats () =
  Format.printf
    "=== Model-checker throughput (fig1 mutex, m=3; see BENCH_checker.json) \
     ===@.@.";
  let _, seq = EMutex.explore_with_stats explore_m3_cfg in
  Format.printf "%a@.@." Check.Checker_stats.pp seq;
  let _, par = EMutex.explore_par explore_m3_cfg in
  Format.printf "%a@.@." Check.Checker_stats.pp par

let () =
  Format.printf "=== Experiment tables (quick mode; see EXPERIMENTS.md) ===@.@.";
  Report.Table.render_all Format.std_formatter
    (Report.Experiments.all Report.Experiments.Quick);
  checker_stats ();
  Format.printf "=== Micro-benchmarks (bechamel) ===@.@.";
  print_results (benchmark ())
