(* coordctl: command-line driver for the reproduction.

     coordctl tables [-e E4] [--full]       regenerate experiment tables
     coordctl simulate PROTO [-n N] ...     run a protocol under a schedule
     coordctl check PROTO [-n N] [-m M]     exhaustively model-check
     coordctl chaos PROTO [--crash P@K] ... crash-inject and check survivors
     coordctl symmetry [-n N] [-m M]        run the Thm 3.4 lock-step attack
     coordctl covering PROTO [-m M] ...     run the §6 covering adversary
     coordctl fuzz PROTO [--shrink] ...     differential fuzzing sweep
     coordctl shrink BUNDLE [--replay]      minimize / re-run a witness *)

open Anonmem

let str = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

type proto = Mutex | Cmp_mutex | Consensus | Election | Renaming | Ccp

let proto_conv =
  let parse = function
    | "mutex" -> Ok Mutex
    | "cmp-mutex" -> Ok Cmp_mutex
    | "consensus" -> Ok Consensus
    | "election" -> Ok Election
    | "renaming" -> Ok Renaming
    | "ccp" -> Ok Ccp
    | s -> Error (`Msg (str "unknown protocol %S" s))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with
      | Mutex -> "mutex"
      | Cmp_mutex -> "cmp-mutex"
      | Consensus -> "consensus"
      | Election -> "election"
      | Renaming -> "renaming"
      | Ccp -> "ccp")
  in
  Cmdliner.Arg.conv (parse, print)

module Sim (P : Protocol.PROTOCOL) = struct
  module R = Runtime.Make (P)

  let run ~n ~m ~seed ~steps ~show_trace ~inputs =
    let rng = Rng.create seed in
    let cfg : R.config =
      {
        ids = Array.init n (fun i -> ((i + 1) * 17) + 1);
        inputs;
        namings = Array.init n (fun _ -> Naming.random rng m);
        rng = Some (Rng.split rng);
        record_trace = show_trace;
      }
    in
    let rt = R.create cfg in
    Format.printf "protocol %s: n=%d m=%d seed=%d@." P.name n m seed;
    Array.iteri
      (fun i nm ->
        Format.printf "  p%d id=%d naming=%a@." i (R.id_of rt i) Naming.pp nm)
      cfg.namings;
    let reason = R.run rt (Schedule.random rng) ~max_steps:steps in
    Format.printf "stopped: %s after %d steps@."
      (match reason with
      | R.Schedule_exhausted -> "schedule exhausted"
      | All_decided -> "all decided"
      | Step_limit -> "step limit"
      | Condition_met -> "condition met")
      (R.clock rt);
    if show_trace then
      Format.printf "%a@."
        (Trace.pp ~pp_value:P.Value.pp ~pp_output:P.pp_output)
        (R.trace rt);
    Format.printf "final state:@.%a@." R.pp_state rt
end

let simulate proto n m seed steps show_trace =
  let m =
    match (m, proto) with
    | Some m, _ -> m
    | None, Mutex -> 3
    | None, Cmp_mutex -> 2
    | None, (Consensus | Election | Renaming) -> (2 * n) - 1
    | None, Ccp -> 2
  in
  (match proto with
  | Mutex ->
    let module S = Sim (Coord.Amutex.P) in
    S.run ~n ~m ~seed ~steps ~show_trace ~inputs:(Array.make n ())
  | Cmp_mutex ->
    let module S = Sim (Coord.Cmp_mutex.P) in
    S.run ~n ~m ~seed ~steps ~show_trace ~inputs:(Array.make n ())
  | Consensus ->
    let module S = Sim (Coord.Consensus.P) in
    S.run ~n ~m ~seed ~steps ~show_trace
      ~inputs:(Array.init n (fun i -> (i + 1) * 100))
  | Election ->
    let module S = Sim (Coord.Election.P) in
    S.run ~n ~m ~seed ~steps ~show_trace ~inputs:(Array.make n ())
  | Renaming ->
    let module S = Sim (Coord.Renaming.P) in
    S.run ~n ~m ~seed ~steps ~show_trace ~inputs:(Array.make n ())
  | Ccp ->
    let module S = Sim (Coord.Ccp.P) in
    S.run ~n ~m ~seed ~steps ~show_trace ~inputs:(Array.make n ()));
  Ok 0

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

(* How the `check` command explores: sequential oracle by default; the
   frontier-parallel explorer with [--par]; checker statistics (states/sec,
   dedup hit-rate, shard load) with [--stats]; the symmetry quotient with
   [--canon] (sound for every protocol: verdicts coincide with the full
   graph's, see DESIGN.md §9). [--max-states] truncates; [--snapshot-dir]
   checkpoints each naming's exploration so a truncated or interrupted
   sweep can be resumed with [--resume] (see DESIGN.md §10). [--deadline]
   bounds wall clock; [--salvage]/[--supervise]/[--inject-faults] are the
   self-healing surface (see DESIGN.md §12). *)
type chk_opts = {
  par : bool;
  domains : int option;
  stats : bool;
  reduction : Check.Explore.reduction;
  max_states : int option;
  snapshot_dir : string option;
  snapshot_every : int option;
  resume : string option;
  deadline_s : float option;
  salvage : bool;
  supervise : bool option;
  recover : bool;  (** wrap explorations in [with_recovery] (fault campaigns) *)
  saw_deadline : bool ref;
      (** set when any exploration in the sweep stopped on the deadline,
          so the driver can exit 6 rather than the generic truncated 3 *)
}

let default_chk_opts =
  {
    par = false;
    domains = None;
    stats = false;
    reduction = Check.Explore.Full;
    max_states = None;
    snapshot_dir = None;
    snapshot_every = None;
    resume = None;
    deadline_s = None;
    salvage = false;
    supervise = None;
    recover = false;
    saw_deadline = ref false;
  }

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

module Chk (P : Protocol.PROTOCOL) = struct
  module E = Check.Explore.Make (P)

  (* All relative namings for 2 processes; rotations for more. *)
  let namings_under_test ~n ~m =
    if n = 2 && m <= 5 then
      List.map (fun nm -> Array.of_list [ Naming.identity m; nm ]) (Naming.all m)
    else
      [ Array.init n (fun k -> Naming.rotation m k) ]

  let explore_one ?snapshot_to ?resume_from opts cfg =
    let run ~resume_from ~snapshot_to =
      if opts.par then
        E.explore_par ?max_states:opts.max_states ?domains:opts.domains
          ?snapshot_every:opts.snapshot_every ?snapshot_to ?resume_from
          ?deadline_s:opts.deadline_s ~salvage:opts.salvage
          ?supervise:opts.supervise ~reduction:opts.reduction cfg
      else
        E.explore_with_stats ?max_states:opts.max_states
          ?snapshot_every:opts.snapshot_every ?snapshot_to ?resume_from
          ?deadline_s:opts.deadline_s ~salvage:opts.salvage
          ~reduction:opts.reduction cfg
    in
    let g, st =
      match (opts.recover, snapshot_to) with
      | true, Some snap ->
        (* fault campaign: transient infrastructure failures (killed
           supervisor, allocation failure, corrupt checkpoint) retry from
           the newest salvageable snapshot instead of failing the sweep *)
        E.with_recovery ?resume_from ~snapshot_to:snap
          (fun ~resume_from ~snapshot_to ->
            run ~resume_from ~snapshot_to:(Some snapshot_to))
      | _ -> run ~resume_from ~snapshot_to
    in
    if st.Check.Checker_stats.stop = Check.Checker_stats.Deadline then
      opts.saw_deadline := true;
    if opts.stats then Format.printf "%a@." Check.Checker_stats.pp st;
    g

  (* Returns [true] if any exploration in the sweep was truncated. A
     [--resume] snapshot is matched to its naming assignment by config
     fingerprint; if no assignment in the sweep matches, the snapshot
     belongs to some other configuration and we refuse
     (Snapshot.Config_mismatch, exit 4). *)
  let explore_all ?(opts = default_chk_opts) ~n ~m ~inputs ~report () =
    if opts.reduction = Check.Explore.Canon && E.canon_degraded ~n then
      Format.printf
        "note: --canon degraded to the identity group (%s): exploring the \
         full graph, reduction factor 1.0.@."
        (if not P.symmetric then P.name ^ " is not a symmetric protocol"
         else str "n = %d exceeds the group-enumeration bound 7" n);
    let resume_meta =
      Option.map
        (fun path -> (path, Check.Snapshot.read_meta ~path))
        opts.resume
    in
    let resume_used = ref false in
    Option.iter ensure_dir opts.snapshot_dir;
    let count = ref 0 in
    let truncated = ref false in
    List.iter
      (fun namings ->
        incr count;
        let cfg : E.config =
          { ids = Array.init n (fun i -> ((i + 1) * 17) + 1); inputs; namings }
        in
        let fp, _descr = E.fingerprint ~reduction:opts.reduction cfg in
        let snapshot_to =
          Option.map
            (fun dir ->
              Filename.concat dir
                (str "%s-n%d-m%d-%d.snap" P.name n m !count))
            opts.snapshot_dir
        in
        let resume_from =
          match resume_meta with
          | Some (path, meta) when meta.Check.Snapshot.fingerprint = fp ->
            resume_used := true;
            Some path
          | _ -> None
        in
        let g = explore_one ?snapshot_to ?resume_from opts cfg in
        if not g.E.complete then truncated := true;
        report namings g)
      (namings_under_test ~n ~m);
    (match resume_meta with
    | Some (path, meta) when not !resume_used ->
      (* none of the swept configurations matches the snapshot *)
      let _, descr =
        E.fingerprint ~reduction:opts.reduction
          {
            ids = Array.init n (fun i -> ((i + 1) * 17) + 1);
            inputs;
            namings = List.hd (namings_under_test ~n ~m);
          }
      in
      raise
        (Check.Snapshot.Error
           (Check.Snapshot.Config_mismatch
              { path; snapshot = meta.Check.Snapshot.descr; current = descr }))
    | _ -> ());
    Format.printf "%d naming assignment(s) checked.@." !count;
    !truncated
end

module Mutex_check (P : Protocol.PROTOCOL with type input = unit) = struct
  module C = Chk (P)

  (* Starvation is reported for information; only ME/DF count as
     violations, matching the paper's two requirements. *)
  let run ~opts ~n ~m =
    let bad = ref false in
    let truncated =
      C.explore_all ~opts ~n ~m ~inputs:(Array.make n ()) ()
        ~report:(fun namings g ->
        let f = C.E.to_flat g in
        let me = Check.Mutex_props.mutual_exclusion f in
        let df = Check.Mutex_props.deadlock_freedom f in
        let sf = Check.Mutex_props.starvation_freedom f in
        if me <> None || df <> None then bad := true;
        Format.printf "namings %s: %d states, mutual-exclusion %s, \
                       deadlock-freedom %s, starvation-freedom %s@."
          (String.concat " "
             (List.map (Format.asprintf "%a" Naming.pp) (Array.to_list namings)))
          (Array.length g.states)
          (match me with None -> "ok" | Some _ -> "VIOLATED")
          (match df with None -> "ok" | Some _ -> "VIOLATED")
            (match sf with
            | None -> "ok"
            | Some (p, _) -> str "p%d can starve" p))
    in
    (!bad, truncated)
end

let check_mutex ~opts ~n ~m =
  let module M = Mutex_check (Coord.Amutex.P) in
  M.run ~opts ~n ~m

let check_cmp_mutex ~opts ~n ~m =
  let module M = Mutex_check (Coord.Cmp_mutex.P) in
  M.run ~opts ~n ~m

let check_decision (type g) ~n ~m ~inputs
    ~(explore_all :
       inputs:'i array ->
       report:(Naming.t array -> g -> unit) ->
       bool) ~(verdicts : g -> (string * bool) list) =
  ignore n;
  ignore m;
  let bad = ref false in
  let truncated =
    explore_all ~inputs ~report:(fun namings g ->
        let vs = verdicts g in
        if List.exists (fun (_, ok) -> not ok) vs then bad := true;
        Format.printf "namings %s: %s@."
          (String.concat " "
             (List.map (Format.asprintf "%a" Naming.pp) (Array.to_list namings)))
          (String.concat ", "
             (List.map
                (fun (name, ok) ->
                  str "%s %s" name (if ok then "ok" else "VIOLATED"))
                vs)))
  in
  (!bad, truncated)

let reduction_of_flags ~canon ~no_canon =
  if canon && no_canon then
    failwith "--canon and --no-canon are mutually exclusive"
  else if canon then Check.Explore.Canon
  else Check.Explore.Full

(* Exit codes (also rendered in `coordctl check --help`): 0 all properties
   hold on a complete exploration; 1 a violation was found; 3 no violation
   but some exploration was truncated (the verdict covers only the explored
   prefix); 4 a --resume snapshot was rejected (corrupt, wrong version, or
   fingerprint mismatch with every swept configuration); 6 the --deadline
   expired (graceful stop at a generation boundary, snapshot flushed). *)
let check proto n m par domains stats canon no_canon max_states snapshot_dir
    snapshot_every resume deadline salvage supervise inject =
  let reduction = reduction_of_flags ~canon ~no_canon in
  (* --inject-faults SEED arms a deterministic infrastructure-fault plan
     and implies the rest of the self-healing stack: snapshot salvage,
     supervised workers (auto-enabled by the armed domain faults),
     with_recovery retries, and somewhere to recover from — a private
     snapshot dir is synthesized when none was given. The plan seed is
     printed so the whole campaign can be replayed. *)
  let snapshot_dir =
    match (inject, snapshot_dir) with
    | Some _, None ->
      Some
        (Filename.concat
           (Filename.get_temp_dir_name ())
           (str "coordctl-inject-%d" (Unix.getpid ())))
    | _ -> snapshot_dir
  in
  let snapshot_every =
    (* tight checkpoint cadence so recovery has boundaries to resume from *)
    if inject <> None && snapshot_every = None then Some 1 else snapshot_every
  in
  (match inject with
  | Some seed ->
    let plan = Resilience.plan_of_seed ?domains seed in
    Resilience.arm plan;
    Format.printf "fault plan: %a@." Resilience.pp_plan plan
  | None -> ());
  let opts =
    {
      par;
      domains;
      stats;
      reduction;
      max_states;
      snapshot_dir;
      snapshot_every;
      resume;
      deadline_s = deadline;
      salvage = salvage || inject <> None;
      supervise = (if supervise then Some true else None);
      recover = inject <> None;
      saw_deadline = ref false;
    }
  in
  let m =
    match (m, proto) with
    | Some m, _ -> m
    | None, Mutex -> 3
    | None, Cmp_mutex -> 2
    | None, (Consensus | Election | Renaming) -> (2 * n) - 1
    | None, Ccp -> 2
  in
  let body () =
    match
      match proto with
    | Mutex -> check_mutex ~opts ~n ~m
    | Cmp_mutex -> check_cmp_mutex ~opts ~n ~m
    | Consensus ->
      let module C = Chk (Coord.Consensus.P) in
      let inputs = Array.init n (fun i -> (i + 1) * 100) in
      check_decision ~n ~m ~inputs
        ~explore_all:(fun ~inputs ~report ->
          C.explore_all ~opts ~n ~m ~inputs ~report ())
        ~verdicts:(fun g ->
          [
            ( "agreement",
              Check.Props.agreement ~equal:Int.equal ~statuses:C.E.statuses
                g.C.E.states
              = None );
            ( "validity",
              Check.Props.validity
                ~allowed:(fun v -> Array.exists (( = ) v) inputs)
                ~statuses:C.E.statuses g.C.E.states
              = None );
            ("of-termination", C.E.check_obstruction_freedom g = None);
          ])
    | Election ->
      let module C = Chk (Coord.Election.P) in
      let ids = Array.init n (fun i -> ((i + 1) * 17) + 1) in
      check_decision ~n ~m ~inputs:(Array.make n ())
        ~explore_all:(fun ~inputs ~report ->
          C.explore_all ~opts ~n ~m ~inputs ~report ())
        ~verdicts:(fun g ->
          [
            ( "one-leader",
              Check.Props.agreement ~equal:Int.equal ~statuses:C.E.statuses
                g.C.E.states
              = None );
            ( "leader-participates",
              Check.Props.validity
                ~allowed:(fun v -> Array.exists (( = ) v) ids)
                ~statuses:C.E.statuses g.C.E.states
              = None );
            ("of-termination", C.E.check_obstruction_freedom g = None);
          ])
    | Renaming ->
      let module C = Chk (Coord.Renaming.P) in
      check_decision ~n ~m ~inputs:(Array.make n ())
        ~explore_all:(fun ~inputs ~report ->
          C.explore_all ~opts ~n ~m ~inputs ~report ())
        ~verdicts:(fun g ->
          [
            ( "uniqueness",
              Check.Props.distinct_outputs ~equal:Int.equal
                ~statuses:C.E.statuses g.C.E.states
              = None );
            ( "adaptivity",
              Check.Props.adaptive_range ~name_of:Fun.id
                ~statuses:C.E.statuses g.C.E.states
              = None );
            ("of-termination", C.E.check_obstruction_freedom g = None);
          ])
    | Ccp ->
      let module C = Chk (Coord.Ccp.P) in
      check_decision ~n ~m ~inputs:(Array.make n ())
        ~explore_all:(fun ~inputs ~report ->
          C.explore_all ~opts ~n ~m ~inputs ~report ())
        ~verdicts:(fun g ->
          (* agreement is on the physical register chosen *)
          let safe = ref true in
          Array.iter
            (fun st ->
              let phys =
                Array.to_list
                  (Array.mapi
                     (fun p l ->
                       match Coord.Ccp.P.status l with
                       | Protocol.Decided loc ->
                         Some (Naming.apply g.C.E.cfg.namings.(p) loc)
                       | _ -> None)
                     st.C.E.locals)
                |> List.filter_map Fun.id
              in
              match phys with
              | a :: rest -> if List.exists (( <> ) a) rest then safe := false
              | [] -> ())
            g.C.E.states;
          [ ("same-register", !safe) ])
  with
  | exception Check.Snapshot.Error e ->
    Format.eprintf "coordctl: snapshot rejected: %s@."
      (Check.Snapshot.error_message e);
    Ok 4
  | bad, truncated ->
    if truncated then
      Format.eprintf
        "WARNING: exploration truncated (state budget, interrupt or \
         deadline); verdicts cover only the explored prefix.@.";
    if bad then begin
      Format.printf "RESULT: violations found.@.";
      Ok 1
    end
    else if !(opts.saw_deadline) then begin
      Format.printf "RESULT: no violation before the deadline \
                     (incomplete; snapshot flushed for --resume).@.";
      Ok 6
    end
    else if truncated then begin
      Format.printf "RESULT: no violation in the explored prefix \
                     (incomplete).@.";
      Ok 3
    end
    else begin
      Format.printf "RESULT: all properties hold.@.";
      Ok 0
    end
  in
  Fun.protect ~finally:Resilience.disarm (fun () ->
      if opts.snapshot_dir <> None then
        (* scoped, not leaked: previous SIGINT/SIGTERM dispositions are
           restored when the check returns (or raises) *)
        Check.Snapshot.with_signal_handlers body
      else body ())

(* ------------------------------------------------------------------ *)
(* adversaries                                                         *)
(* ------------------------------------------------------------------ *)

let symmetry n m show_trace =
  let module S = Lowerbound.Symmetry.Make (Coord.Amutex.P) in
  let ids = List.init n (fun i -> (i + 1) * 7) in
  let inputs = List.map (fun _ -> ()) ids in
  (match S.attack ~ids ~inputs ~m () with
  | None ->
    Format.printf
      "m=%d is relatively prime to every l <= %d: Theorem 3.4 permits an \
       algorithm; no lock-step attack exists.@."
      m n
  | Some (d, verdict, trace) ->
    Format.printf "divisor witness d=%d; rotated namings spaced m/d=%d \
                   apart; lock-step run says:@."
      d (m / d);
    Format.printf "  %a@." Lowerbound.Symmetry.pp_verdict verdict;
    if show_trace then
      Format.printf "%a@."
        (Trace.pp ~pp_value:Format.pp_print_int ~pp_output:Empty.pp)
        trace);
  Ok 0

let covering proto m show_trace =
  (match proto with
  | Mutex ->
    let module Cov = Lowerbound.Covering.Make (Coord.Amutex.P) in
    (match Cov.construct ~m ~q_input:() ~recruit_input:(fun _ -> ()) () with
    | Error e -> Format.printf "construction failed: %s@." e
    | Ok o ->
      Format.printf "write set {%s}; q %a; recruit %d %a via %s@."
        (String.concat "," (List.map string_of_int o.write_set))
        Cov.pp_success o.q_success (o.p_proc - 1) Cov.pp_success o.p_success
        o.z_schedule_note;
      if show_trace then
        Format.printf "%a@."
          (Trace.pp ~pp_value:Format.pp_print_int ~pp_output:Empty.pp)
          o.trace)
  | Cmp_mutex ->
    let module Cov = Lowerbound.Covering.Make (Coord.Cmp_mutex.P) in
    (match Cov.construct ~m ~q_input:() ~recruit_input:(fun _ -> ()) () with
    | Error e -> Format.printf "construction failed: %s@." e
    | Ok o ->
      Format.printf "write set {%s}; q %a; recruit %d %a via %s@."
        (String.concat "," (List.map string_of_int o.write_set))
        Cov.pp_success o.q_success (o.p_proc - 1) Cov.pp_success o.p_success
        o.z_schedule_note;
      if show_trace then
        Format.printf "%a@."
          (Trace.pp ~pp_value:Format.pp_print_int ~pp_output:Empty.pp)
          o.trace)
  | Consensus | Election ->
    let module C2 = Wrap.Fix_n (Coord.Consensus.P) (struct let n = 2 end) in
    let module Cov = Lowerbound.Covering.Make (C2) in
    (match Cov.construct ~m ~q_input:100 ~recruit_input:(fun _ -> 200) () with
    | Error e -> Format.printf "construction failed: %s@." e
    | Ok o ->
      Format.printf "write set {%s}; q %a; recruit %d %a via %s@."
        (String.concat "," (List.map string_of_int o.write_set))
        Cov.pp_success o.q_success (o.p_proc - 1) Cov.pp_success o.p_success
        o.z_schedule_note;
      if show_trace then
        Format.printf "%a@."
          (Trace.pp ~pp_value:Coord.Consensus.Value.pp
             ~pp_output:Format.pp_print_int)
          o.trace)
  | Renaming ->
    let module R2 = Wrap.Fix_n (Coord.Renaming.P) (struct let n = 2 end) in
    let module Cov = Lowerbound.Covering.Make (R2) in
    (match Cov.construct ~m ~q_input:() ~recruit_input:(fun _ -> ()) () with
    | Error e -> Format.printf "construction failed: %s@." e
    | Ok o ->
      Format.printf "write set {%s}; q %a; recruit %d %a via %s@."
        (String.concat "," (List.map string_of_int o.write_set))
        Cov.pp_success o.q_success (o.p_proc - 1) Cov.pp_success o.p_success
        o.z_schedule_note;
      if show_trace then
        Format.printf "%a@."
          (Trace.pp ~pp_value:Coord.Renaming.Value.pp
             ~pp_output:Format.pp_print_int)
          o.trace)
  | Ccp -> Format.printf "covering targets read/write protocols only@.");
  Ok 0

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

(* Crash plans from the command line: repeatable --crash P@K,
   --crash-cs P and --rejoin P@K+D flags; with no flags, each attempt
   draws a fresh single crash (random process, random step). *)

let crash_spec_conv =
  let parse s =
    match String.split_on_char '@' s with
    | [ p; k ] -> (
      match (int_of_string_opt p, int_of_string_opt k) with
      | Some p, Some k -> Ok (p, k)
      | _ -> Error (`Msg (str "bad crash spec %S (want P@K)" s)))
    | _ -> Error (`Msg (str "bad crash spec %S (want P@K)" s))
  in
  let print ppf (p, k) = Format.fprintf ppf "%d@%d" p k in
  Cmdliner.Arg.conv (parse, print)

let rejoin_spec_conv =
  let parse s =
    let err = Error (`Msg (str "bad rejoin spec %S (want P@K+D)" s)) in
    match String.split_on_char '@' s with
    | [ p; rest ] -> (
      match String.split_on_char '+' rest with
      | [ k; d ] -> (
        match
          (int_of_string_opt p, int_of_string_opt k, int_of_string_opt d)
        with
        | Some p, Some k, Some d -> Ok (p, k, d)
        | _ -> err)
      | _ -> err)
    | _ -> err
  in
  let print ppf (p, k, d) = Format.fprintf ppf "%d@%d+%d" p k d in
  Cmdliner.Arg.conv (parse, print)

let chaos_ids n = List.init n (fun i -> ((i + 1) * 17) + 1)

(* With no explicit plan, each attempt draws one fresh random crash. *)
let plan_for_attempt master n prefix_steps = function
  | [] ->
    let proc = Rng.int master n in
    let after = Rng.int master (max 1 prefix_steps) in
    [ Fault.Crash_at_step { proc; after } ]
  | p -> p

let crashed_by_plan plan =
  List.filter_map
    (function
      | Fault.Crash_at_step { proc; _ } | Fault.Crash_in_critical { proc } ->
        Some proc
      | Fault.Crash_and_rejoin _ -> None)
    plan

module ChaosMutex (P : Protocol.PROTOCOL with type input = unit) = struct
  module CP = Check.Crash_props.Make (P)

  let run ~n ~m ~seed ~attempts ~prefix_steps ~plan =
    let ids = chaos_ids n in
    let inputs = List.init n (fun _ -> ()) in
    let master = Rng.create ((seed * 31) + 17) in
    for a = 1 to attempts do
      let aseed = seed + a in
      let plan = plan_for_attempt master n prefix_steps plan in
      Format.printf "attempt %d (seed %d): plan [%a]@." a aseed Fault.pp_plan
        plan;
      match
        List.find_opt
          (fun p -> not (List.mem p (crashed_by_plan plan)))
          (List.init n Fun.id)
      with
      | None -> Format.printf "  no survivor to probe@."
      | Some proc ->
        let wedged =
          CP.wedges_solo ~seed:aseed ~prefix_steps ~ids ~inputs ~m ~proc plan
        in
        Format.printf "  survivor p%d %s@." proc
          (if wedged then "WEDGED (expected for mutex: Theorem 6.2)"
           else "made progress")
    done;
    Format.printf "done (%d attempts).@." attempts;
    false
end

module ChaosDecide (P : Protocol.PROTOCOL with type output = int) = struct
  module CP = Check.Crash_props.Make (P)

  (* renaming-style tasks promise pairwise-distinct outputs rather than a
     common one *)
  let distinct_violation (r : CP.run_result) =
    let rec pairs = function
      | [] -> None
      | a :: rest -> (
        match List.find_opt (fun b -> snd a = snd b) rest with
        | Some b -> Some (a, b)
        | None -> pairs rest)
    in
    pairs r.CP.decided

  let run ?(distinct = false) ~n ~m ~seed ~attempts ~prefix_steps ~plan
      ~inputs () =
    let ids = chaos_ids n in
    let master = Rng.create ((seed * 31) + 17) in
    let bad = ref 0 in
    for a = 1 to attempts do
      let aseed = seed + a in
      let plan = plan_for_attempt master n prefix_steps plan in
      Format.printf "attempt %d (seed %d): plan [%a]@." a aseed Fault.pp_plan
        plan;
      let r = CP.run_plan ~seed:aseed ~prefix_steps ~ids ~inputs ~m plan in
      List.iter
        (fun ap -> Format.printf "  fired: %a@." Fault.pp_applied ap)
        r.CP.applied;
      List.iter
        (fun (i, v) -> Format.printf "  p%d decided %d@." i v)
        r.CP.decided;
      let of_ok = CP.crash_obstruction_free r in
      let safety =
        if distinct then distinct_violation r
        else CP.agreement_under_crashes ~equal:Int.equal r
      in
      if not of_ok then begin
        incr bad;
        Format.printf "  STUCK survivors: %s@."
          (String.concat ", " (List.map (fun i -> str "p%d" i) r.CP.stuck))
      end;
      (match safety with
      | Some ((i, u), (j, v)) ->
        incr bad;
        Format.printf "  %s: p%d=%d vs p%d=%d@."
          (if distinct then "NAME CLASH" else "DISAGREEMENT")
          i u j v
      | None -> ());
      if of_ok && safety = None then
        Format.printf "  crash-obstruction-freedom ok, %s ok@."
          (if distinct then "uniqueness" else "agreement")
    done;
    if !bad = 0 then
      Format.printf "all %d attempts clean under crashes.@." attempts
    else Format.printf "%d/%d attempts VIOLATED.@." !bad attempts;
    !bad > 0
end

let chaos proto n m seed attempts prefix_steps crashes crash_cs rejoins =
  let m =
    match (m, proto) with
    | Some m, _ -> m
    | None, Mutex -> 3
    | None, Cmp_mutex -> 2
    | None, (Consensus | Election | Renaming) -> (2 * n) - 1
    | None, Ccp -> 2
  in
  let plan =
    List.map (fun (proc, after) -> Fault.Crash_at_step { proc; after }) crashes
    @ List.map (fun proc -> Fault.Crash_in_critical { proc }) crash_cs
    @ List.map
        (fun (proc, after, rejoin_delay) ->
          Fault.Crash_and_rejoin { proc; after; rejoin_delay })
        rejoins
  in
  List.iter
    (fun e ->
      let p =
        match e with
        | Fault.Crash_at_step { proc; _ }
        | Fault.Crash_in_critical { proc }
        | Fault.Crash_and_rejoin { proc; _ } ->
          proc
      in
      if p < 0 || p >= n then failwith (str "crash spec names p%d but n=%d" p n))
    plan;
  let bad =
    match proto with
    | Mutex ->
      let module C = ChaosMutex (Coord.Amutex.P) in
      C.run ~n ~m ~seed ~attempts ~prefix_steps ~plan
    | Cmp_mutex ->
      let module C = ChaosMutex (Coord.Cmp_mutex.P) in
      C.run ~n ~m ~seed ~attempts ~prefix_steps ~plan
    | Consensus ->
      let module C = ChaosDecide (Coord.Consensus.P) in
      C.run ~n ~m ~seed ~attempts ~prefix_steps ~plan
        ~inputs:(List.init n (fun i -> (i + 1) * 100))
        ()
    | Election ->
      let module C = ChaosDecide (Coord.Election.P) in
      C.run ~n ~m ~seed ~attempts ~prefix_steps ~plan
        ~inputs:(List.init n (fun _ -> ()))
        ()
    | Renaming ->
      let module C = ChaosDecide (Coord.Renaming.P) in
      C.run ~distinct:true ~n ~m ~seed ~attempts ~prefix_steps ~plan
        ~inputs:(List.init n (fun _ -> ()))
        ()
    | Ccp ->
      let module C = ChaosDecide (Coord.Ccp.P) in
      C.run ~n ~m ~seed ~attempts ~prefix_steps ~plan
        ~inputs:(List.init n (fun _ -> ()))
        ()
  in
  if bad then begin
    Format.printf "RESULT: violations found.@.";
    Ok 1
  end
  else begin
    Format.printf "RESULT: survivors coped with every crash.@.";
    Ok 0
  end

(* ------------------------------------------------------------------ *)
(* fuzz / shrink                                                       *)
(* ------------------------------------------------------------------ *)

(* Exit codes: 0 no violation, 1 violation found (witness optionally
   shrunk and written to the corpus), 5 engine disagreement — the
   explorers, the property checkers, the runtime and the baseline twin
   cross-validate each other, so 5 means a checker bug, not a protocol
   bug. *)
module Fz (P : Protocol.PROTOCOL) = struct
  module F = Check.Fuzz.Make (P)

  (* The shrinker's property for a named fuzz property: safety predicates
     are replayed directly; liveness witnesses are lassos. *)
  let sprop ~properties ~inputs name =
    match
      List.find_opt (fun (p : F.property) -> p.F.name = name) properties
    with
    | Some { F.rt_check = Some pred; _ } -> Some (F.S.Safety (pred inputs))
    | Some { F.rt_check = None; _ } -> Some F.S.Lasso
    | None -> None

  let write_bundle ~proto_name ~pname ~input_to_string ~path b =
    Check.Shrink.write_raw path
      (F.S.to_raw ~protocol:proto_name ~property_name:pname ~input_to_string b);
    Format.printf "wrote %s@." path

  let fuzz ~proto_name ~properties ~gen_inputs ~input_to_string ~deterministic
      ?twin ~n ~m ~attempts ~seconds ~seed ~max_states ~probes ~do_shrink
      ~corpus () =
    let report =
      F.run ~seed ~attempts ?time_budget:seconds ~max_states ~probes
        ~fixed:(n, m) ~deterministic ?twin ~properties ~gen_inputs ()
    in
    Format.printf "%a@." F.pp_report report;
    match report.F.disagreement with
    | Some _ ->
      Format.printf "RESULT: engines disagree (checker bug).@.";
      Ok 5
    | None ->
      if report.F.violations = 0 then begin
        Format.printf "RESULT: no violation in %d generated instance(s).@."
          report.F.attempts;
        Ok 0
      end
      else begin
        (match report.F.first_witness with
        | None -> ()
        | Some (pname, b0) ->
          let b =
            if do_shrink then begin
              match sprop ~properties ~inputs:b0.F.S.inputs pname with
              | Some sp -> (
                match F.S.shrink sp b0 with
                | b, stats ->
                  Format.printf "shrunk %s witness: %a@." pname F.S.pp_stats
                    stats;
                  b
                | exception Invalid_argument msg ->
                  Format.eprintf "cannot shrink: %s@." msg;
                  b0)
              | None -> b0
            end
            else b0
          in
          match corpus with
          | None -> ()
          | Some dir ->
            ensure_dir dir;
            let path =
              Filename.concat dir
                (str "%s-%s-seed%d.fuzz" proto_name pname seed)
            in
            write_bundle ~proto_name ~pname ~input_to_string ~path b);
        Format.printf "RESULT: violations found.@.";
        Ok 1
      end

  let shrink_file ~proto_name ~properties ~input_of_string ~input_to_string
      ~(raw : Check.Shrink.raw) ~replay_only ~out ~show_trace ~max_rounds path
      =
    let b = F.S.of_raw ~input_of_string raw in
    match sprop ~properties ~inputs:b.F.S.inputs raw.Check.Shrink.property with
    | None ->
      Format.eprintf "coordctl: unknown property %S for protocol %s@."
        raw.Check.Shrink.property proto_name;
      Ok 2
    | Some sp ->
      let hit, trace = F.S.replay sp b in
      if show_trace then
        Format.printf "%a@."
          (Trace.pp ~pp_value:P.Value.pp ~pp_output:P.pp_output)
          trace;
      if replay_only then begin
        Format.printf "replayed %d step(s): violation %s@."
          (Trace.length trace)
          (if hit then "reproduced" else "NOT reproduced");
        Ok (if hit then 0 else 1)
      end
      else if not hit then begin
        Format.eprintf
          "coordctl: bundle does not reproduce its violation; refusing to \
           shrink@.";
        Ok 1
      end
      else begin
        let b', stats = F.S.shrink ?max_rounds sp b in
        Format.printf "%a@." F.S.pp_stats stats;
        let out = Option.value out ~default:(path ^ ".min") in
        write_bundle ~proto_name ~pname:raw.Check.Shrink.property
          ~input_to_string ~path:out b';
        Ok 0
      end
end

(* Known-good baseline twins: the same property code must call them clean;
   a complaint is a checker bug (reported as a disagreement). *)

let peterson_twin : Check.Gen.params -> unit array -> string option =
  let verdict =
    lazy
      (let module FB = Check.Fuzz.Make (Baseline.Peterson.P) in
       let cfg : FB.E.config =
         {
           ids = [| 1; 2 |];
           inputs = [| (); () |];
           namings = Array.init 2 (fun _ -> Naming.identity 3);
         }
       in
       let g = FB.E.explore cfg in
       let flat = FB.E.to_flat g in
       if not g.FB.E.complete then None
       else if FB.mutex_me.FB.check g flat <> None then
         Some "checker claims Peterson violates mutual exclusion"
       else if FB.mutex_df.FB.check g flat <> None then
         Some "checker claims Peterson violates deadlock freedom"
       else None)
  in
  fun _ _ -> Lazy.force verdict

let ca_consensus_twin : Check.Gen.params -> int array -> string option =
  let memo = Hashtbl.create 8 in
  fun pars inputs ->
    let n = pars.Check.Gen.n in
    let key = (n, Array.to_list inputs) in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
      let r =
        let module FB = Check.Fuzz.Make (Baseline.Ca_consensus.P) in
        let m = Baseline.Ca_consensus.P.registers_for ~n ~rounds:2 in
        let cfg : FB.E.config =
          {
            ids = Array.init n (fun i -> i + 1);
            inputs;
            namings = Array.init n (fun _ -> Naming.identity m);
          }
        in
        let g = FB.E.explore ~max_states:50_000 cfg in
        let flat = FB.E.to_flat g in
        let agree = FB.agreement ~equal:Int.equal in
        let valid =
          FB.validity ~allowed:(fun ins v -> Array.exists (( = ) v) ins)
        in
        if not g.FB.E.complete then None (* budget: inconclusive, not a bug *)
        else if agree.FB.check g flat <> None then
          Some "checker claims CA consensus violates agreement"
        else if valid.FB.check g flat <> None then
          Some "checker claims CA consensus violates validity"
        else None
      in
      Hashtbl.add memo key r;
      r

let chain_renaming_twin : Check.Gen.params -> unit array -> string option =
  let memo = Hashtbl.create 4 in
  fun pars _inputs ->
    let n = pars.Check.Gen.n in
    match Hashtbl.find_opt memo n with
    | Some r -> r
    | None ->
      let r =
        let module FB = Check.Fuzz.Make (Baseline.Chain_renaming.P) in
        let m = (n - 1) * ((2 * n) - 1) in
        let cfg : FB.E.config =
          {
            ids = Array.init n (fun i -> ((i + 1) * 17) + 1);
            inputs = Array.make n ();
            namings = Array.init n (fun _ -> Naming.identity m);
          }
        in
        let g = FB.E.explore ~max_states:50_000 cfg in
        let flat = FB.E.to_flat g in
        let uniq = FB.distinct_outputs ~equal:Int.equal in
        if not g.FB.E.complete then None
        else if uniq.FB.check g flat <> None then
          Some "checker claims chain renaming violates uniqueness"
        else None
      in
      Hashtbl.add memo n r;
      r

(* Per-protocol fuzz property suites. Election's leader-participates and
   ccp's same-register need instance data (the ids, the namings) on both
   the graph and the runtime side, so they are built here rather than in
   Check.Fuzz. *)

module Fuzz_mutex = Fz (Coord.Amutex.P)
module Fuzz_cmp_mutex = Fz (Coord.Cmp_mutex.P)
module Fuzz_consensus = Fz (Coord.Consensus.P)
module Fuzz_election = Fz (Coord.Election.P)
module Fuzz_renaming = Fz (Coord.Renaming.P)
module Fuzz_ccp = Fz (Coord.Ccp.P)

let mutex_properties = [ Fuzz_mutex.F.mutex_me; Fuzz_mutex.F.mutex_df ]

let cmp_mutex_properties =
  [ Fuzz_cmp_mutex.F.mutex_me; Fuzz_cmp_mutex.F.mutex_df ]

let consensus_properties =
  [
    Fuzz_consensus.F.agreement ~equal:Int.equal;
    Fuzz_consensus.F.validity ~allowed:(fun inputs v ->
        Array.exists (( = ) v) inputs);
  ]

let election_properties =
  let module D = Fuzz_election in
  [
    { (D.F.agreement ~equal:Int.equal) with D.F.name = "one-leader" };
    {
      D.F.name = "leader-participates";
      check =
        (fun g _ ->
          Option.map
            (fun (d : int Check.Props.decided) ->
              D.F.State d.Check.Props.state)
            (Check.Props.validity
               ~allowed:(fun v -> Array.exists (( = ) v) g.D.F.E.cfg.ids)
               ~statuses:D.F.E.statuses g.D.F.E.states));
      rt_check =
        Some
          (fun _ rt ->
            let ds = D.F.S.R.decisions rt in
            let ids =
              Array.init (Array.length ds) (fun i -> D.F.S.R.id_of rt i)
            in
            Array.exists
              (function
                | Some v -> not (Array.exists (( = ) v) ids)
                | None -> false)
              ds);
    };
  ]

let renaming_properties =
  let module D = Fuzz_renaming in
  [
    {
      (D.F.distinct_outputs ~equal:Int.equal) with
      D.F.name = "uniqueness";
    };
  ]

(* ccp decides a local register index; correctness is that all decisions
   resolve to the same physical register through each process's naming. *)
let ccp_properties =
  let module D = Fuzz_ccp in
  [
    {
      D.F.name = "same-register";
      check =
        (fun g _ ->
          let bad = ref None in
          Array.iteri
            (fun si st ->
              if !bad = None then begin
                let phys =
                  List.filter_map Fun.id
                    (Array.to_list
                       (Array.mapi
                          (fun p status ->
                            match status with
                            | Protocol.Decided loc ->
                              Some (Naming.apply g.D.F.E.cfg.namings.(p) loc)
                            | _ -> None)
                          (D.F.E.statuses st)))
                in
                match phys with
                | a :: rest when List.exists (( <> ) a) rest ->
                  bad := Some (D.F.State si)
                | _ -> ()
              end)
            g.D.F.E.states;
          !bad);
      rt_check =
        Some
          (fun _ rt ->
            let n = D.F.S.R.n rt in
            let phys =
              List.filter_map
                (fun i ->
                  match D.F.S.R.status rt i with
                  | Protocol.Decided loc ->
                    Some (Naming.apply (D.F.S.R.naming_of rt i) loc)
                  | _ -> None)
                (List.init n Fun.id)
            in
            match phys with
            | a :: rest -> List.exists (( <> ) a) rest
            | [] -> false);
    };
  ]

let consensus_gen_inputs rng ~n =
  Array.init n (fun _ -> 100 * (1 + Rng.int rng n))

let unit_inputs _rng ~n = Array.make n ()

let fuzz proto n m attempts seconds seed max_states probes do_shrink corpus
    deadline =
  (* --deadline is the cross-command wall-clock bound; for fuzz it maps
     onto the existing per-campaign seconds budget (tighter of the two) *)
  let seconds =
    match (seconds, deadline) with
    | Some s, Some d -> Some (Float.min s d)
    | None, d -> d
    | s, None -> s
  in
  let common d = (d ~n ~m ~attempts ~seconds ~seed ~max_states ~probes
                    ~do_shrink ~corpus) () in
  match proto with
  | Mutex ->
    common
      (Fuzz_mutex.fuzz ~proto_name:"mutex" ~properties:mutex_properties
         ~gen_inputs:unit_inputs
         ~input_to_string:(fun () -> "-")
         ~deterministic:true ~twin:peterson_twin)
  | Cmp_mutex ->
    common
      (Fuzz_cmp_mutex.fuzz ~proto_name:"cmp-mutex"
         ~properties:cmp_mutex_properties ~gen_inputs:unit_inputs
         ~input_to_string:(fun () -> "-")
         ~deterministic:true ?twin:None)
  | Consensus ->
    common
      (Fuzz_consensus.fuzz ~proto_name:"consensus"
         ~properties:consensus_properties ~gen_inputs:consensus_gen_inputs
         ~input_to_string:string_of_int ~deterministic:true
         ~twin:ca_consensus_twin)
  | Election ->
    common
      (Fuzz_election.fuzz ~proto_name:"election"
         ~properties:election_properties ~gen_inputs:unit_inputs
         ~input_to_string:(fun () -> "-")
         ~deterministic:true ?twin:None)
  | Renaming ->
    common
      (Fuzz_renaming.fuzz ~proto_name:"renaming"
         ~properties:renaming_properties ~gen_inputs:unit_inputs
         ~input_to_string:(fun () -> "-")
         ~deterministic:true ~twin:chain_renaming_twin)
  | Ccp ->
    common
      (Fuzz_ccp.fuzz ~proto_name:"ccp" ~properties:ccp_properties
         ~gen_inputs:unit_inputs
         ~input_to_string:(fun () -> "-")
         ~deterministic:false ?twin:None)

let unit_of_string = function
  | "-" -> ()
  | s -> failwith (str "expected unit input \"-\", got %S" s)

let shrink path replay_only out show_trace max_rounds =
  match Check.Shrink.read_raw path with
  | Error msg ->
    Format.eprintf "coordctl: %s@." msg;
    Ok 2
  | Ok raw -> (
    let common d =
      d ~raw ~replay_only ~out ~show_trace ~max_rounds path
    in
    match raw.Check.Shrink.protocol with
    | "mutex" ->
      common
        (Fuzz_mutex.shrink_file ~proto_name:"mutex"
           ~properties:mutex_properties ~input_of_string:unit_of_string
           ~input_to_string:(fun () -> "-"))
    | "cmp-mutex" ->
      common
        (Fuzz_cmp_mutex.shrink_file ~proto_name:"cmp-mutex"
           ~properties:cmp_mutex_properties ~input_of_string:unit_of_string
           ~input_to_string:(fun () -> "-"))
    | "consensus" ->
      common
        (Fuzz_consensus.shrink_file ~proto_name:"consensus"
           ~properties:consensus_properties ~input_of_string:int_of_string
           ~input_to_string:string_of_int)
    | "election" ->
      common
        (Fuzz_election.shrink_file ~proto_name:"election"
           ~properties:election_properties ~input_of_string:unit_of_string
           ~input_to_string:(fun () -> "-"))
    | "renaming" ->
      common
        (Fuzz_renaming.shrink_file ~proto_name:"renaming"
           ~properties:renaming_properties ~input_of_string:unit_of_string
           ~input_to_string:(fun () -> "-"))
    | "ccp" ->
      common
        (Fuzz_ccp.shrink_file ~proto_name:"ccp" ~properties:ccp_properties
           ~input_of_string:unit_of_string
           ~input_to_string:(fun () -> "-"))
    | p ->
      Format.eprintf "coordctl: unknown protocol %S in %s@." p path;
      Ok 2)

(* ------------------------------------------------------------------ *)
(* graph export                                                        *)
(* ------------------------------------------------------------------ *)

let graph proto n m output =
  let m =
    match (m, proto) with
    | Some m, _ -> m
    | None, Mutex -> 3
    | None, Cmp_mutex -> 2
    | None, (Consensus | Election | Renaming) -> (2 * n) - 1
    | None, Ccp -> 2
  in
  let write_dot flat =
    let oc = open_out output in
    let ppf = Format.formatter_of_out_channel oc in
    Check.Dot.of_flat flat ppf ();
    Format.pp_print_flush ppf ();
    close_out oc;
    Format.printf "wrote %s@." output
  in
  let flat_of (type g) ~(explore : unit -> g) ~(to_flat : g -> Check.Flatgraph.t) =
    to_flat (explore ())
  in
  (match proto with
  | Mutex ->
    let module C = Chk (Coord.Amutex.P) in
    write_dot
      (flat_of
         ~explore:(fun () ->
           C.E.explore
             {
               ids = Array.init n (fun i -> ((i + 1) * 17) + 1);
               inputs = Array.make n ();
               namings = Array.init n (fun k -> Naming.rotation m k);
             })
         ~to_flat:C.E.to_flat)
  | Cmp_mutex ->
    let module C = Chk (Coord.Cmp_mutex.P) in
    write_dot
      (flat_of
         ~explore:(fun () ->
           C.E.explore
             {
               ids = Array.init n (fun i -> ((i + 1) * 17) + 1);
               inputs = Array.make n ();
               namings = Array.init n (fun k -> Naming.rotation m k);
             })
         ~to_flat:C.E.to_flat)
  | Consensus ->
    let module C = Chk (Coord.Consensus.P) in
    write_dot
      (flat_of
         ~explore:(fun () ->
           C.E.explore
             {
               ids = Array.init n (fun i -> ((i + 1) * 17) + 1);
               inputs = Array.init n (fun i -> (i + 1) * 100);
               namings = Array.init n (fun k -> Naming.rotation m k);
             })
         ~to_flat:C.E.to_flat)
  | Election ->
    let module C = Chk (Coord.Election.P) in
    write_dot
      (flat_of
         ~explore:(fun () ->
           C.E.explore
             {
               ids = Array.init n (fun i -> ((i + 1) * 17) + 1);
               inputs = Array.make n ();
               namings = Array.init n (fun k -> Naming.rotation m k);
             })
         ~to_flat:C.E.to_flat)
  | Renaming ->
    let module C = Chk (Coord.Renaming.P) in
    write_dot
      (flat_of
         ~explore:(fun () ->
           C.E.explore
             {
               ids = Array.init n (fun i -> ((i + 1) * 17) + 1);
               inputs = Array.make n ();
               namings = Array.init n (fun k -> Naming.rotation m k);
             })
         ~to_flat:C.E.to_flat)
  | Ccp ->
    let module C = Chk (Coord.Ccp.P) in
    write_dot
      (flat_of
         ~explore:(fun () ->
           C.E.explore
             {
               ids = Array.init n (fun i -> ((i + 1) * 17) + 1);
               inputs = Array.make n ();
               namings = Array.init n (fun k -> Naming.rotation m k);
             })
         ~to_flat:C.E.to_flat));
  Ok 0

(* ------------------------------------------------------------------ *)
(* tables                                                              *)
(* ------------------------------------------------------------------ *)

let tables ids full =
  let speed = if full then Report.Experiments.Full else Quick in
  let selected =
    match ids with
    | [] -> Report.Experiments.all speed
    | ids ->
      List.concat_map
        (fun id ->
          match Report.Experiments.by_id id with
          | Some f -> f speed
          | None -> failwith (str "unknown experiment %S" id))
        ids
  in
  Report.Table.render_all Format.std_formatter selected;
  Ok 0

(* ------------------------------------------------------------------ *)
(* explore / bench                                                     *)
(* ------------------------------------------------------------------ *)

(* Single-configuration exploration with the statistics always on — the
   direct CLI surface for the symmetry quotient ([--canon]) and the
   frontier-parallel explorer ([--par]). Identity namings by default so
   process symmetry is visible; [--rot] switches to the rotation tuple. *)
module Xpl (P : Protocol.PROTOCOL) = struct
  module E = Check.Explore.Make (P)

  let config ~n ~m ~rot ~(inputs : P.input array) : E.config =
    {
      ids = Array.init n (fun i -> ((i + 1) * 17) + 1);
      inputs;
      namings =
        Array.init n (fun k ->
            if rot then Naming.rotation m k else Naming.identity m);
    }

  let explore ~n ~m ~rot ~inputs ~reduction ~par ~domains ~max_states ~depths
      ~snapshot_to ~snapshot_every ~resume_from ~deadline_s ~salvage
      ~supervise ~engine ~disk_visited ~disk_hot_cap ~disk_quota ~recover =
    if reduction = Check.Explore.Canon && E.canon_degraded ~n then
      Format.printf
        "note: --canon degraded to the identity group (%s): exploring the \
         full graph, reduction factor 1.0.@."
        (if not P.symmetric then P.name ^ " is not a symmetric protocol"
         else str "n = %d exceeds the group-enumeration bound 7" n);
    let cfg = config ~n ~m ~rot ~inputs in
    let st =
      match disk_visited with
      | Some dir ->
        (* external-memory mode: the visited set spills to sorted runs
           under [dir]; statistics-only (the graph never fits in RAM,
           which is the point), sequential by construction *)
        if par then
          failwith "--disk-visited is a sequential external-memory mode; \
                    drop --par";
        let run resume_from =
          E.explore_external ?max_states ?snapshot_every ?snapshot_to
            ?resume_from ?deadline_s ?hot_cap:disk_hot_cap
            ?disk_quota_bytes:disk_quota ~salvage ~reduction ~dir cfg
        in
        if recover then
          (* fault campaign: injected faults fire at most once, so a
             retry from the newest checkpoint converges (DESIGN.md §14);
             the retry count is stamped into the stats as [recoveries].
             Budget one retry per armed fault (a whole plan can gang up
             on this single run) on top of the usual three. *)
          let retries = 3 + List.length (Resilience.pending ()) in
          let rec go attempt resume =
            match run resume with
            (* an internally absorbed fault degrades to a truncated
               RESULT, not an exception; that also earns a retry *)
            | st
              when (not st.Check.Checker_stats.complete)
                   && (st.Check.Checker_stats.stop = Check.Checker_stats.Oom
                      || st.Check.Checker_stats.stop
                         = Check.Checker_stats.Fault)
                   && attempt < retries ->
              go (attempt + 1)
                (match snapshot_to with
                | Some p when Sys.file_exists p -> Some p
                | _ -> None)
            | st -> { st with Check.Checker_stats.recoveries = attempt }
            | exception Check.Snapshot.Error (Check.Snapshot.Corrupt _)
              when attempt < retries ->
              (* either a run file was damaged in flight (spill's
                 read-back) or the checkpoint itself is beyond salvage.
                 Resume from the checkpoint when it still has an intact
                 chunk — restore sweeps the damaged run as a stray —
                 and start over otherwise; the fresh run rewrites the
                 file. *)
              let resume =
                match snapshot_to with
                | Some p when Sys.file_exists p -> (
                  match Check.Snapshot.read_chunks ~path:p with
                  | _ -> Some p
                  | exception Check.Snapshot.Error _ -> None)
                | _ -> None
              in
              go (attempt + 1) resume
            | exception
                ( Out_of_memory | Resilience.Killed _ | Resilience.Stalled _
                | Resilience.Io_fault _ )
              when attempt < retries ->
              go (attempt + 1)
                (match snapshot_to with
                | Some p when Sys.file_exists p -> Some p
                | _ -> None)
          in
          go 0 resume_from
        else run resume_from
      | None ->
        let run ~resume_from ~snapshot_to =
          if par then
            E.explore_par ?max_states ?domains ?engine ?snapshot_every
              ?snapshot_to ?resume_from ?deadline_s ~salvage
              ?supervise:(if supervise then Some true else None)
              ~reduction cfg
          else
            E.explore_with_stats ?max_states ?snapshot_every ?snapshot_to
              ?resume_from ?deadline_s ~salvage ~reduction cfg
        in
        let g, st =
          match (recover, snapshot_to) with
          | true, Some snap ->
            E.with_recovery
              ~max_retries:(3 + List.length (Resilience.pending ()))
              ?resume_from ~snapshot_to:snap
              (fun ~resume_from ~snapshot_to ->
                run ~resume_from ~snapshot_to:(Some snapshot_to))
          | _ -> run ~resume_from ~snapshot_to
        in
        ignore g;
        st
    in
    Format.printf "%a@." Check.Checker_stats.pp st;
    if depths then Format.printf "%a@." Check.Checker_stats.pp_depths st;
    st

  (* One benchmark line: the full graph, then (unless [--no-canon]) the
     symmetry quotient of the same configuration, with the quotient's
     verdict-preserving reduction factor. *)
  let bench_line ~label ~n ~m ~rot ~inputs ~reduction ~max_states =
    let cfg = config ~n ~m ~rot ~inputs in
    let _, full = E.explore_with_stats ?max_states cfg in
    let tput = Check.Checker_stats.states_per_sec in
    match reduction with
    | Check.Explore.Full ->
      Format.printf "%-18s full %8d states %9.0f st/s%s@." label
        full.Check.Checker_stats.n_states (tput full)
        (if full.Check.Checker_stats.complete then "" else " (truncated)")
    | Check.Explore.Canon ->
      let _, quot = E.explore_with_stats ?max_states ~reduction cfg in
      Format.printf
        "%-18s full %8d states %9.0f st/s | quotient %8d states %9.0f st/s \
         (group %d, reduction %.2fx)%s@."
        label full.Check.Checker_stats.n_states (tput full)
        quot.Check.Checker_stats.n_states (tput quot)
        quot.Check.Checker_stats.group_order
        (Check.Checker_stats.reduction_factor quot)
        (if full.Check.Checker_stats.complete then "" else " (full truncated)")
end

let explore proto n m rot par domains canon no_canon max_states depths
    snapshot_to snapshot_every resume_from deadline_s salvage supervise
    engine inject disk_faults disk_quota disk_visited disk_hot_cap =
  let reduction = reduction_of_flags ~canon ~no_canon in
  (* --inject-faults on explore mirrors `check`: the plan is printed for
     replay, a private checkpoint file is synthesized when none was given
     (recovery needs somewhere to resume from), and the run is wrapped in
     with_recovery. --disk-faults widens the plan pool with storage
     faults (DESIGN.md §14). *)
  let snapshot_to =
    match (inject, snapshot_to) with
    | Some _, None ->
      Some
        (Filename.concat
           (Filename.get_temp_dir_name ())
           (str "coordctl-inject-%d.snap" (Unix.getpid ())))
    | _ -> snapshot_to
  in
  let snapshot_every =
    if inject <> None && snapshot_every = None then Some 1 else snapshot_every
  in
  (match inject with
  | Some seed ->
    let plan = Resilience.plan_of_seed ?domains ~disk:disk_faults seed in
    Resilience.arm plan;
    Format.printf "fault plan: %a@." Resilience.pp_plan plan
  | None -> ());
  let salvage = salvage || inject <> None in
  let recover = inject <> None in
  let m =
    match (m, proto) with
    | Some m, _ -> m
    | None, Mutex -> 3
    | None, Cmp_mutex -> 2
    | None, (Consensus | Election | Renaming) -> (2 * n) - 1
    | None, Ccp -> 2
  in
  let body () =
    match
      match proto with
    | Mutex ->
      let module X = Xpl (Coord.Amutex.P) in
      X.explore ~n ~m ~rot ~inputs:(Array.make n ()) ~reduction ~par ~domains
        ~max_states ~depths ~snapshot_to ~snapshot_every ~resume_from
        ~deadline_s ~salvage ~supervise ~engine ~disk_visited ~disk_hot_cap
        ~disk_quota ~recover
    | Cmp_mutex ->
      let module X = Xpl (Coord.Cmp_mutex.P) in
      X.explore ~n ~m ~rot ~inputs:(Array.make n ()) ~reduction ~par ~domains
        ~max_states ~depths ~snapshot_to ~snapshot_every ~resume_from
        ~deadline_s ~salvage ~supervise ~engine ~disk_visited ~disk_hot_cap
        ~disk_quota ~recover
    | Consensus ->
      let module X = Xpl (Coord.Consensus.P) in
      (* equal inputs keep the configuration symmetric; `check` still sweeps
         distinct inputs *)
      X.explore ~n ~m ~rot ~inputs:(Array.make n 42) ~reduction ~par ~domains
        ~max_states ~depths ~snapshot_to ~snapshot_every ~resume_from
        ~deadline_s ~salvage ~supervise ~engine ~disk_visited ~disk_hot_cap
        ~disk_quota ~recover
    | Election ->
      let module X = Xpl (Coord.Election.P) in
      X.explore ~n ~m ~rot ~inputs:(Array.make n ()) ~reduction ~par ~domains
        ~max_states ~depths ~snapshot_to ~snapshot_every ~resume_from
        ~deadline_s ~salvage ~supervise ~engine ~disk_visited ~disk_hot_cap
        ~disk_quota ~recover
    | Renaming ->
      let module X = Xpl (Coord.Renaming.P) in
      X.explore ~n ~m ~rot ~inputs:(Array.make n ()) ~reduction ~par ~domains
        ~max_states ~depths ~snapshot_to ~snapshot_every ~resume_from
        ~deadline_s ~salvage ~supervise ~engine ~disk_visited ~disk_hot_cap
        ~disk_quota ~recover
    | Ccp ->
      let module X = Xpl (Coord.Ccp.P) in
      X.explore ~n ~m ~rot ~inputs:(Array.make n ()) ~reduction ~par ~domains
        ~max_states ~depths ~snapshot_to ~snapshot_every ~resume_from
        ~deadline_s ~salvage ~supervise ~engine ~disk_visited ~disk_hot_cap
        ~disk_quota ~recover
  with
  | exception Check.Snapshot.Error e ->
    Format.eprintf "coordctl: snapshot rejected: %s@."
      (Check.Snapshot.error_message e);
    Ok 4
  | st ->
    if st.Check.Checker_stats.stop = Check.Checker_stats.Deadline then Ok 6
    else Ok 0
  in
  if snapshot_to <> None then Check.Snapshot.with_signal_handlers body
  else body ()

let bench n canon no_canon max_states =
  let reduction =
    (* bench defaults to showing the quotient; --no-canon drops it *)
    if no_canon then Check.Explore.Full
    else (ignore canon; Check.Explore.Canon)
  in
  let max_states = Some (Option.value max_states ~default:500_000) in
  (let module X = Xpl (Coord.Amutex.P) in
   X.bench_line ~label:"amutex m=3" ~n ~m:3 ~rot:false
     ~inputs:(Array.make n ()) ~reduction ~max_states;
   X.bench_line ~label:"amutex m=5" ~n ~m:5 ~rot:false
     ~inputs:(Array.make n ()) ~reduction ~max_states);
  (let module X = Xpl (Coord.Consensus.P) in
   X.bench_line ~label:"consensus m=3" ~n ~m:3 ~rot:false
     ~inputs:(Array.make n 42) ~reduction ~max_states);
  (let module X = Xpl (Coord.Renaming.P) in
   X.bench_line ~label:"renaming m=3" ~n ~m:3 ~rot:false
     ~inputs:(Array.make n ()) ~reduction ~max_states);
  (let module X = Xpl (Coord.Ccp.P) in
   X.bench_line ~label:"ccp m=2" ~n ~m:2 ~rot:false ~inputs:(Array.make n ())
     ~reduction ~max_states);
  Format.printf
    "(quick in-process sweep; `make bench-checker` records the full \
     reduced-vs-full and par-vs-seq matrix into BENCH_checker.json)@.";
  Ok 0

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let proto_arg =
  Arg.(
    required
    & pos 0 (some proto_conv) None
    & info [] ~docv:"PROTOCOL"
        ~doc:"One of mutex, cmp-mutex, consensus, election, renaming, ccp.")

let n_arg =
  Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let m_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "m" ] ~docv:"M" ~doc:"Number of registers (protocol default).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let steps_arg =
  Arg.(
    value & opt int 2000
    & info [ "steps" ] ~docv:"K" ~doc:"Maximum scheduler steps.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the full run trace.")

let simulate_cmd =
  let doc = "run a protocol under a random adversarial schedule" in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      term_result
        (const simulate $ proto_arg $ n_arg $ m_arg $ seed_arg $ steps_arg
       $ trace_arg))

let par_arg =
  Arg.(
    value & flag
    & info [ "par" ] ~doc:"Use the frontier-parallel explorer.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"D"
        ~doc:"Worker domains for --par (default: recommended count).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print checker statistics (throughput, dedup, shard load).")

let canon_arg =
  Arg.(
    value & flag
    & info [ "canon" ]
        ~doc:
          "Explore the symmetry quotient: canonicalize every state under \
           the admissible register/process permutations. Sound — verdicts \
           match the full graph (DESIGN.md §9).")

let no_canon_arg =
  Arg.(
    value & flag
    & info [ "no-canon" ]
        ~doc:"Explicitly explore the full (unreduced) state graph.")

let max_states_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-states" ] ~docv:"B"
        ~doc:
          "Truncate each exploration after $(i,B) states. The verdict then \
           covers only the explored prefix and the exit status is 3 \
           instead of 0.")

let snapshot_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-dir" ] ~docv:"DIR"
        ~doc:
          "Checkpoint each exploration into \
           $(i,DIR)/<proto>-nN-mM-IDX.snap (created if missing). A \
           snapshot is also flushed on SIGINT/SIGTERM and when the state \
           budget truncates the search, so the run can be continued with \
           $(b,--resume).")

let snapshot_every_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "With $(b,--snapshot-dir), write a checkpoint roughly every \
           $(i,N) newly interned states (default 500000).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from a snapshot written by an earlier run. The snapshot \
           is matched to the naming assignment it was taken from by config \
           fingerprint; the resumed exploration produces results \
           bit-identical to an uninterrupted run. A corrupt snapshot or \
           one matching none of the checked configurations is rejected \
           with exit status 4.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"S"
        ~doc:
          "Wall-clock budget: after $(i,S) seconds the explorer stops \
           gracefully at the next generation boundary, flushes a snapshot \
           (when snapshotting is on) and the command exits with status 6, \
           so a scheduled run never overruns its slot. Continue with \
           $(b,--resume).")

let salvage_arg =
  Arg.(
    value & flag
    & info [ "salvage" ]
        ~doc:
          "When a $(b,--resume) snapshot has a damaged tail (torn append, \
           flipped byte, truncation), roll back to its newest intact \
           checkpoint chunk instead of rejecting the file with exit 4; \
           what was dropped is reported on stderr.")

let supervise_arg =
  Arg.(
    value & flag
    & info [ "supervise" ]
        ~doc:
          "With $(b,--par), run worker domains under a supervisor that \
           detects dead workers, requeues their work units onto survivors \
           and respawns them (bounded restarts with backoff) instead of \
           hanging. Results stay bit-identical to the unsupervised \
           explorer. Enabled automatically by $(b,--inject-faults).")

let engine_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("sharded", Check.Explore.Sharded);
                ("barrier", Check.Explore.Barrier);
              ]))
        None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "With $(b,--par), choreography of the wide generations: \
           $(b,sharded) (the default — continuous shard owners over SPSC \
           mailboxes with work stealing) or $(b,barrier) (five lock-step \
           phases per generation). Both produce bit-identical results; \
           the knob exists for benchmarks and fault campaigns that must \
           pin one down (DESIGN.md §13).")

let inject_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "inject-faults" ] ~docv:"SEED"
        ~doc:
          "Arm the deterministic infrastructure-fault plan derived from \
           $(i,SEED): worker-domain kills and stalls, torn or bit-flipped \
           snapshot writes, an allocation failure (DESIGN.md §12). \
           Implies $(b,--salvage), supervision and crash-recovery — \
           explorations retry from the newest salvageable snapshot, and a \
           private snapshot dir is synthesized when $(b,--snapshot-dir) \
           is absent. The plan is printed so the whole campaign replays \
           from the seed.")

let check_exits =
  Cmd.Exit.info 0 ~doc:"all checked properties hold (complete exploration)."
  :: Cmd.Exit.info 1 ~doc:"a property violation was found."
  :: Cmd.Exit.info 3
       ~doc:
         "no violation, but at least one exploration was truncated by \
          $(b,--max-states) or an interrupt: the verdict covers only the \
          explored prefix."
  :: Cmd.Exit.info 4
       ~doc:
         "a $(b,--resume) snapshot was rejected: corrupt, wrong format \
          version, or its fingerprint matches none of the checked \
          configurations (with $(b,--salvage), only snapshots with no \
          intact chunk at all are still rejected)."
  :: Cmd.Exit.info 6
       ~doc:
         "the $(b,--deadline) expired: the exploration stopped gracefully \
          at a generation boundary with no violation found so far, and \
          (when snapshotting is on) flushed a checkpoint to continue \
          from with $(b,--resume)."
  :: List.filter (fun i -> Cmd.Exit.info_code i <> 0) Cmd.Exit.defaults

let check_cmd =
  let doc = "exhaustively model-check a protocol instance" in
  Cmd.v
    (Cmd.info "check" ~doc ~exits:check_exits)
    Term.(
      term_result
        (const check $ proto_arg $ n_arg $ m_arg $ par_arg $ domains_arg
       $ stats_arg $ canon_arg $ no_canon_arg $ max_states_arg
       $ snapshot_dir_arg $ snapshot_every_arg $ resume_arg $ deadline_arg
       $ salvage_arg $ supervise_arg $ inject_arg))

let explore_cmd =
  let doc = "explore one configuration and print checker statistics" in
  let rot =
    Arg.(
      value & flag
      & info [ "rot" ]
          ~doc:
            "Give process $(i,k) the rotation-by-$(i,k) naming instead of \
             the identity.")
  in
  let max_states =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"B" ~doc:"Truncate after $(i,B) states.")
  in
  let depths =
    Arg.(
      value & flag
      & info [ "depths" ] ~doc:"Also print the per-depth frontier table.")
  in
  let snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Checkpoint the exploration into $(i,FILE) (periodically, on \
             truncation, and on SIGINT/SIGTERM) so it can be continued \
             with $(b,--resume).")
  in
  let disk_visited =
    Arg.(
      value
      & opt (some string) None
      & info [ "disk-visited" ] ~docv:"DIR"
          ~doc:
            "External-memory mode: keep only a bounded hot table in RAM \
             and spill the visited set to sorted run files under \
             $(i,DIR) (created if missing; stale runs are cleared), so \
             graphs far beyond RAM explore disk-bounded instead of dying \
             on the state budget. Statistics-only — the graph itself is \
             never materialized — and bit-identical to the in-RAM \
             explorer's accounting. Composes with $(b,--snapshot) / \
             $(b,--resume) / $(b,--salvage); incompatible with \
             $(b,--par).")
  in
  let disk_hot_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "disk-hot-cap" ] ~docv:"N"
          ~doc:
            "With $(b,--disk-visited), spill the hot table once it holds \
             $(i,N) keys (default ~1M) in addition to the memory \
             watermark — a tuning and testing knob that forces spilling \
             on graphs of any size. Never changes results, only where \
             the visited set lives.")
  in
  let disk_faults =
    Arg.(
      value & flag
      & info [ "disk-faults" ]
          ~doc:
            "With $(b,--inject-faults), widen the fault pool with storage \
             faults: short writes, transient I/O errors, a cumulative \
             disk-full and fsync failures (DESIGN.md §14). Off by \
             default so older seeds replay the exact plans they were \
             recorded with.")
  in
  let disk_quota =
    Arg.(
      value
      & opt (some int) None
      & info [ "disk-quota" ] ~docv:"BYTES"
          ~doc:
            "With $(b,--disk-visited), cap the sorted-run bytes on disk. \
             The exploration stops gracefully $(i,before) the spill that \
             would breach the cap — stop reason $(b,disk_full), \
             checkpoint flushed — and a $(b,--resume) with a larger (or \
             no) quota completes bit-identically.")
  in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      term_result
        (const explore $ proto_arg $ n_arg $ m_arg $ rot $ par_arg
       $ domains_arg $ canon_arg $ no_canon_arg $ max_states $ depths
       $ snapshot $ snapshot_every_arg $ resume_arg $ deadline_arg
       $ salvage_arg $ supervise_arg $ engine_arg $ inject_arg $ disk_faults
       $ disk_quota $ disk_visited $ disk_hot_cap))

let bench_cmd =
  let doc = "quick in-process checker benchmark (full vs quotient)" in
  let max_states =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"B"
          ~doc:"State budget per exploration (default 500000).")
  in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      term_result (const bench $ n_arg $ canon_arg $ no_canon_arg $ max_states))

let symmetry_cmd =
  let doc = "run the Theorem 3.4 lock-step symmetry adversary on Figure 1" in
  let m_pos =
    Arg.(value & opt int 4 & info [ "m" ] ~docv:"M" ~doc:"Register count.")
  in
  Cmd.v
    (Cmd.info "symmetry" ~doc)
    Term.(term_result (const symmetry $ n_arg $ m_pos $ trace_arg))

let covering_cmd =
  let doc = "run the §6 covering adversary against a protocol" in
  let m_pos =
    Arg.(value & opt int 3 & info [ "m" ] ~docv:"M" ~doc:"Register count.")
  in
  Cmd.v
    (Cmd.info "covering" ~doc)
    Term.(term_result (const covering $ proto_arg $ m_pos $ trace_arg))

let chaos_cmd =
  let doc = "crash-inject a protocol and check the survivors" in
  let attempts =
    Arg.(
      value & opt int 20
      & info [ "attempts" ] ~docv:"A" ~doc:"Seeded attempts to run.")
  in
  let prefix_steps =
    Arg.(
      value & opt int 64
      & info [ "prefix-steps" ] ~docv:"K"
          ~doc:"Adversarial prefix length before the solo periods.")
  in
  let crashes =
    Arg.(
      value
      & opt_all crash_spec_conv []
      & info [ "crash" ] ~docv:"P@K"
          ~doc:"Crash process $(i,P) after $(i,K) of its steps (repeatable).")
  in
  let crash_cs =
    Arg.(
      value & opt_all int []
      & info [ "crash-cs" ] ~docv:"P"
          ~doc:
            "Crash process $(i,P) on entry to its critical section \
             (repeatable).")
  in
  let rejoins =
    Arg.(
      value
      & opt_all rejoin_spec_conv []
      & info [ "rejoin" ] ~docv:"P@K+D"
          ~doc:
            "Crash process $(i,P) after $(i,K) steps and rejoin it with \
             fresh state $(i,D) ticks later (repeatable).")
  in
  Cmd.v
    (Cmd.info "chaos" ~doc)
    Term.(
      term_result
        (const chaos $ proto_arg $ n_arg $ m_arg $ seed_arg $ attempts
       $ prefix_steps $ crashes $ crash_cs $ rejoins))

let fuzz_exits =
  Cmd.Exit.info 0 ~doc:"no violation in the generated instances."
  :: Cmd.Exit.info 1
       ~doc:
         "a property violation was found (the first witness is shrunk with \
          $(b,--shrink) and written with $(b,--corpus))."
  :: Cmd.Exit.info 5
       ~doc:
         "engine disagreement: the sequential and parallel explorers, the \
          graph-level property checkers, the runtime replay/probes or the \
          baseline twin contradicted each other — a checker bug."
  :: List.filter (fun i -> Cmd.Exit.info_code i <> 0) Cmd.Exit.defaults

let fuzz_cmd =
  let doc =
    "property-based differential fuzzing over generated instances"
  in
  let n =
    Arg.(
      value
      & opt (some int) None
      & info [ "n" ] ~docv:"N"
          ~doc:"Pin the process count (default: drawn from 2..3).")
  in
  let attempts =
    Arg.(
      value & opt int 200
      & info [ "attempts" ] ~docv:"A" ~doc:"Generated instances to run.")
  in
  let seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "seconds" ] ~docv:"S"
          ~doc:"Stop after roughly $(i,S) seconds even if attempts remain.")
  in
  let max_states =
    Arg.(
      value & opt int 20_000
      & info [ "max-states" ] ~docv:"B"
          ~doc:
            "State budget per exploration; truncated instances count as \
             undecided unless a probe finds a violation.")
  in
  let probes =
    Arg.(
      value & opt int 4
      & info [ "probes" ] ~docv:"K"
          ~doc:"Randomized runtime schedules per instance.")
  in
  let do_shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Minimize the first witness before reporting/writing it.")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Write the first witness bundle into $(i,DIR) (created if \
             missing) for `coordctl shrink` and the regression corpus.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc ~exits:fuzz_exits)
    Term.(
      term_result
        (const fuzz $ proto_arg $ n $ m_arg $ attempts $ seconds $ seed_arg
       $ max_states $ probes $ do_shrink $ corpus $ deadline_arg))

let shrink_cmd =
  let doc = "replay or minimize a fuzz witness bundle" in
  let bundle =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BUNDLE" ~doc:"Witness bundle file (COORDFUZZ format).")
  in
  let replay_only =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Only replay: exit 0 if the violation reproduces, 1 if not. \
             This is what `make fuzz-smoke` runs over test/corpus/.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the shrunk bundle (default BUNDLE.min).")
  in
  let show_trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the replayed trace.")
  in
  let max_rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rounds" ] ~docv:"R"
          ~doc:"Cap the shrinker's fixpoint rounds (default 8).")
  in
  let shrink_exits =
    Cmd.Exit.info 0 ~doc:"replay reproduced the violation / shrink succeeded."
    :: Cmd.Exit.info 1 ~doc:"the bundle does not reproduce its violation."
    :: Cmd.Exit.info 2 ~doc:"the bundle file is malformed."
    :: List.filter (fun i -> Cmd.Exit.info_code i <> 0) Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "shrink" ~doc ~exits:shrink_exits)
    Term.(
      term_result
        (const shrink $ bundle $ replay_only $ out $ show_trace $ max_rounds))

let graph_cmd =
  let doc = "export the reachable state graph as Graphviz DOT" in
  let output =
    Cmdliner.Arg.(
      value & opt string "states.dot"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "graph" ~doc)
    Term.(term_result (const graph $ proto_arg $ n_arg $ m_arg $ output))

let tables_cmd =
  let doc = "regenerate the experiment tables (EXPERIMENTS.md)" in
  let ids =
    Arg.(
      value & opt_all string []
      & info [ "e" ] ~docv:"ID" ~doc:"Experiment id (repeatable), e.g. E4.")
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Wider sweeps (slower).")
  in
  Cmd.v (Cmd.info "tables" ~doc) Term.(term_result (const tables $ ids $ full))

(* ------------------------------------------------------------------ *)
(* serve / sweep: the job-queue verification service                   *)
(* ------------------------------------------------------------------ *)

let serve spool workers quantum poll once =
  Ok
    (Serve.Daemon.run
       { Serve.Daemon.spool; workers; quantum; poll_s = poll; once })

let serve_cmd =
  let doc = "run the verification job-queue daemon over a spool directory" in
  let spool =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPOOL"
          ~doc:
            "Spool directory (created if missing). Drop job specs as \
             $(i,SPOOL)/NAME.job (key=value lines: kind, proto, n, m, \
             reduction, engine, max_states, deadline, priority, attempts, \
             seed, steps, strategy); results appear atomically as \
             $(i,SPOOL)/done/NAME.result. Create $(i,SPOOL)/shutdown for a \
             clean stop.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"K"
          ~doc:"Concurrent job slices per scheduling round.")
  in
  let quantum =
    Arg.(
      value & opt int 50_000
      & info [ "quantum" ] ~docv:"Q"
          ~doc:
            "Fresh states a check job may explore per slice before it is \
             preempted at a snapshot boundary and re-queued.")
  in
  let poll =
    Arg.(
      value & opt float 0.05
      & info [ "poll" ] ~docv:"S" ~doc:"Idle sleep between spool scans.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Exit as soon as the spool is drained and every accepted job \
             has a result (batch mode).")
  in
  let serve_exits =
    Cmd.Exit.info 0
      ~doc:
        "clean shutdown (shutdown file, SIGTERM/SIGINT, or $(b,--once) \
         drain). Per-job verdicts live in the result files, not the exit \
         code."
    :: List.filter (fun i -> Cmd.Exit.info_code i <> 0) Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~exits:serve_exits)
    Term.(
      term_result (const serve $ spool $ workers $ quantum $ poll $ once))

let utc_timestamp () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  str "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let sweep_run file quantum record =
  match Serve.Sweep.load ~path:file with
  | Error msg ->
    Format.eprintf "coordctl: %s: %s@." file msg;
    Ok 2
  | Ok s ->
    let report =
      Serve.Sweep.run ~quantum
        ~progress:(fun line -> Format.printf "%s@." line)
        s
    in
    let table =
      Report.Table.make ~id:"SWEEP"
        ~title:(str "sweep %s" s.Serve.Sweep.name)
        ~header:Serve.Sweep.kpi_header
        ~notes:(Serve.Sweep.aggregate_lines report)
        (Serve.Sweep.kpi_rows report)
    in
    Report.Table.render Format.std_formatter table;
    Option.iter
      (fun f ->
        Serve.Sweep.append_bench ~file:f ~ts:(utc_timestamp ()) report;
        Format.printf "KPI table recorded to %s@." f)
      record;
    Ok (Serve.Sweep.exit_code report)

let sweep_cmd =
  let doc = "expand a declarative matrix spec into jobs and gate the KPIs" in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Sweep spec: key = value lines (protocols, n, m, reductions, \
             engines, faults, seeds, max_states, expect, \
             expect.$(i,PREFIX), ...), list values comma-separated. See \
             examples/tiny.sweep.")
  in
  let quantum =
    Arg.(
      value & opt int 50_000
      & info [ "quantum" ] ~docv:"Q"
          ~doc:"Preemption quantum for the underlying worker pool.")
  in
  let record =
    Arg.(
      value
      & opt (some string) None ~vopt:(Some "BENCH_checker.json")
      & info [ "record" ] ~docv:"FILE"
          ~doc:
            "Append the KPI table to the JSON bench log (default \
             BENCH_checker.json when given without a value).")
  in
  let sweep_exits =
    Cmd.Exit.info 0
      ~doc:
        "every regression gate held (or, with no gates configured, no cell \
         found a violation)."
    :: Cmd.Exit.info 1
         ~doc:
           "a regression gate failed — or, with no gates configured, some \
            cell found a violation/disagreement or crashed."
    :: Cmd.Exit.info 2 ~doc:"the sweep spec is malformed."
    :: List.filter (fun i -> Cmd.Exit.info_code i <> 0) Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "sweep" ~doc ~exits:sweep_exits)
    Term.(term_result (const sweep_run $ file $ quantum $ record))

let () =
  let doc = "memory-anonymous coordination (Taubenfeld, PODC'17) reproduction" in
  let info = Cmd.info "coordctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            simulate_cmd;
            check_cmd;
            explore_cmd;
            bench_cmd;
            chaos_cmd;
            fuzz_cmd;
            shrink_cmd;
            symmetry_cmd;
            covering_cmd;
            graph_cmd;
            tables_cmd;
            serve_cmd;
            sweep_cmd;
          ]))
