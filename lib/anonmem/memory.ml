module Make (V : Protocol.VALUE) = struct
  type t = { regs : V.t array; mutable writes : int }

  type snapshot = { snap_regs : V.t array; snap_writes : int }

  let create ~m =
    assert (m >= 1);
    { regs = Array.make m V.init; writes = 0 }

  let size t = Array.length t.regs

  let physical t naming j =
    let phys = Naming.apply naming j in
    assert (phys >= 0 && phys < size t);
    phys

  let read t naming j = t.regs.(physical t naming j)

  let write t naming j v =
    t.regs.(physical t naming j) <- v;
    t.writes <- t.writes + 1

  (* [f] is evaluated exactly once: the caller's payload (typically the
     protocol's next local state) rides along with the new register value,
     so effectful or expensive closures behave as a single atomic step. *)
  let rmw t naming j f =
    let phys = physical t naming j in
    let old_value = t.regs.(phys) in
    let new_value, payload = f old_value in
    t.regs.(phys) <- new_value;
    t.writes <- t.writes + 1;
    (old_value, new_value, payload)

  let get_physical t j = t.regs.(j)

  let set_physical t j v = t.regs.(j) <- v

  let contents t = Array.copy t.regs

  let snapshot t = { snap_regs = Array.copy t.regs; snap_writes = t.writes }

  let restore t snap =
    assert (Array.length snap.snap_regs = size t);
    Array.blit snap.snap_regs 0 t.regs 0 (Array.length snap.snap_regs);
    t.writes <- snap.snap_writes

  let reset t =
    Array.fill t.regs 0 (size t) V.init;
    t.writes <- 0

  let write_count t = t.writes

  let pp ppf t =
    Format.fprintf ppf "[|%a|]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         V.pp)
      (Array.to_list t.regs)
end
