(** Physical shared memory: an array of [m] atomic registers.

    All accesses go through a {!Naming.t}, so a process can only address
    memory through its private numbering — the code path enforces the
    anonymity of the model. The simulator executes one access at a time,
    which gives atomicity by construction. *)

module Make (V : Protocol.VALUE) : sig
  type t

  type snapshot = { snap_regs : V.t array; snap_writes : int }
  (** A full checkpoint of the memory: register contents {e and} the write
      counter, so instrumentation stays truthful across restore. *)

  val create : m:int -> t
  (** [m] registers, all holding [V.init]. *)

  val size : t -> int

  val read : t -> Naming.t -> int -> V.t
  (** [read mem naming j] reads the process's local register [j]. *)

  val write : t -> Naming.t -> int -> V.t -> unit

  val rmw : t -> Naming.t -> int -> (V.t -> V.t * 'a) -> V.t * V.t * 'a
  (** [rmw mem naming j f] atomically replaces [v] with [fst (f v)];
      returns [(old, new, payload)] where [payload] is [snd (f v)]. [f] is
      evaluated exactly once, so callers can thread their continuation
      state (e.g. the protocol's next local state) through it safely. Only
      used by read-modify-write protocols (paper §7). *)

  val get_physical : t -> int -> V.t
  (** Direct physical access, for checkers and reports only. *)

  val set_physical : t -> int -> V.t -> unit

  val contents : t -> V.t array
  (** A copy of the physical register contents, for inspection. *)

  val snapshot : t -> snapshot
  (** A checkpoint of contents plus the write counter. *)

  val restore : t -> snapshot -> unit
  (** Overwrite contents {e and} write counter from a snapshot. *)

  val reset : t -> unit
  (** All registers back to [V.init]; the write counter back to 0. *)

  val write_count : t -> int
  (** Total number of writes (and rmws) performed since creation (or the
      last {!reset}/{!restore}), for instrumentation. *)

  val pp : Format.formatter -> t -> unit
end
