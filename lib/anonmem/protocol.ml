type 'output status =
  | Remainder
  | Trying
  | Critical
  | Exiting
  | Decided of 'output

type ('local, 'value) step =
  | Read of int * ('value -> 'local)
  | Write of int * 'value * 'local
  | Rmw of int * ('value -> 'value * 'local)
  | Internal of 'local
  | Coin of (bool -> 'local)

module type VALUE = sig
  type t

  val init : t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module type PROTOCOL = sig
  module Value : VALUE

  type input
  type output
  type local

  val name : string
  val symmetric : bool
  val default_registers : n:int -> int
  val start : n:int -> m:int -> id:int -> input -> local
  val step : n:int -> m:int -> id:int -> local -> (local, Value.t) step
  val status : local -> output status
  val compare_local : local -> local -> int
  val map_value_ids : (int -> int) -> Value.t -> Value.t
  val map_local_ids : (int -> int) -> local -> local
  val pp_local : Format.formatter -> local -> unit
  val pp_input : Format.formatter -> input -> unit
  val pp_output : Format.formatter -> output -> unit
end

let status_kind = function
  | Remainder -> "remainder"
  | Trying -> "trying"
  | Critical -> "critical"
  | Exiting -> "exiting"
  | Decided _ -> "decided"

let is_decided = function Decided _ -> true | _ -> false

let is_active = function
  | Trying | Critical | Exiting -> true
  | Remainder | Decided _ -> false
