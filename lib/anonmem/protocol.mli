(** Protocol interface: algorithms as explicit state machines.

    A protocol describes the code of one process. Every shared-memory access
    is one atomic step, matching the granularity at which the adversary of
    Taubenfeld's model interleaves processes. The runtime (or the model
    checker, or a lower-bound adversary) drives a protocol by repeatedly
    calling {!PROTOCOL.step} on the process's local state and performing the
    returned action against the shared memory.

    Local states must be {e plain immutable data} (no closures, no mutable
    fields, canonical representation for sets) — the model checker hashes and
    compares them structurally. *)

(** Externally visible situation of a process, derived from its local state.

    One-shot tasks (consensus, election, renaming) move
    [Remainder -> Trying -> Decided]. Cyclic tasks (mutual exclusion) move
    [Remainder -> Trying -> Critical -> Exiting -> Remainder] forever; their
    ['output] is never produced. A process whose status is [Remainder] only
    takes a step when the scheduler decides it should participate —
    participation is not required in this model. *)
type 'output status =
  | Remainder  (** not currently competing; stepping it starts the protocol *)
  | Trying  (** executing the entry code / the task body *)
  | Critical  (** inside the critical section (mutex protocols only) *)
  | Exiting  (** executing the exit code (mutex protocols only) *)
  | Decided of 'output  (** terminated with a result; takes no more steps *)

(** One atomic action. Continuations are applied immediately by whoever
    executes the step, so they never escape into stored state. *)
type ('local, 'value) step =
  | Read of int * ('value -> 'local)
      (** [Read (j, k)]: atomically read local register [j]; the new local
          state is [k v] where [v] is the value read. *)
  | Write of int * 'value * 'local
      (** [Write (j, v, l)]: atomically write [v] to local register [j];
          the new local state is [l]. *)
  | Rmw of int * ('value -> 'value * 'local)
      (** [Rmw (j, f)]: atomic read-modify-write of local register [j].
          Not available to read/write protocols; provided only for the
          Rabin choice-coordination contrast (paper §7). *)
  | Internal of 'local
      (** A step that touches no shared register (e.g. leaving the remainder
          section, or entering the critical section). *)
  | Coin of (bool -> 'local)
      (** A fair coin flip (randomized protocols only). The model checker
          branches on both outcomes; the runtime draws from its RNG. *)

(** Values stored in the shared registers. *)
module type VALUE = sig
  type t

  val init : t
  (** The registers' known initial state (the paper's "initially 0"). *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

(** A symmetric memory-anonymous protocol, parameterized by the number of
    processes [n] and registers [m] where relevant. Identifiers are arbitrary
    positive integers; symmetric protocols may compare them only for
    equality (this is a contract, exercised by the test suite's
    id-relabeling property, not something the types can enforce). *)
module type PROTOCOL = sig
  module Value : VALUE

  type input
  type output
  type local

  val name : string
  (** Short human-readable protocol name for traces and reports. *)

  val symmetric : bool
  (** [true] asserts the paper's §2 symmetry contract: the code treats
      process identifiers as {e black boxes compared only for equality} —
      relabeling the identifiers by any bijection [f] commutes with
      {!step}, provided register contents and local states are relabeled
      with {!map_value_ids}[ f] / {!map_local_ids}[ f]. The symmetry
      quotient ({!section-canon} in the checker) only permutes processes
      of protocols that declare [true]; protocols that order-compare ids
      (the §2 arbitrary-comparisons variant) or read them as array
      indices (the named baselines) must say [false], which soundly
      degrades the quotient to the identity group. *)

  val default_registers : n:int -> int
  (** The register count the protocol is designed for (e.g. [2n - 1] for the
      paper's consensus and renaming; any odd [m >= 3] for the 2-process
      mutex, for which this returns 3). Harnesses may deliberately deviate
      when demonstrating lower bounds. *)

  val start : n:int -> m:int -> id:int -> input -> local
  (** Initial local state of process [id]. *)

  val step : n:int -> m:int -> id:int -> local -> (local, Value.t) step
  (** The next atomic action. Never called on a [Decided] state. *)

  val status : local -> output status

  val compare_local : local -> local -> int

  val map_value_ids : (int -> int) -> Value.t -> Value.t
  (** Apply a relabeling to every {e process-identifier} field of a
      register value, leaving everything else (levels, rounds, register
      indices, preference values that are not ids) untouched. Callers
      pass bijections of the live identifier space that fix every
      non-identifier integer (in particular 0, the "free" marker).
      Protocols whose values carry no identifiers return the value
      unchanged. *)

  val map_local_ids : (int -> int) -> local -> local
  (** Same relabeling applied to identifier fields buried in the local
      state (cached views, adopted preferences that are identifiers,
      decided leader names) — {e never} to register indices or loop
      counters, which are naming-relative, not identity-relative. *)

  val pp_local : Format.formatter -> local -> unit
  val pp_input : Format.formatter -> input -> unit
  val pp_output : Format.formatter -> output -> unit
end

val status_kind : 'o status -> string
(** One-word label, for traces. *)

val is_decided : 'o status -> bool
val is_active : 'o status -> bool
(** [is_active s] is true for [Trying], [Critical] and [Exiting]. *)
