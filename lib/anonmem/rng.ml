(* SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, and splittable, which is
   what we need for reproducible independent streams per component. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let assign dst src = dst.state <- src.state

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = next_int64 g in
  { state = mix seed }

(* Rejection sampling: [r mod bound] alone over-represents the low residues
   whenever [bound] does not divide 2^62, which would bias every random
   schedule drawn from this generator. Draws above the largest multiple of
   [bound] representable in 62 bits are redrawn; acceptance probability is
   always > 1/2, so the loop terminates quickly. *)
let int g bound =
  assert (bound > 0);
  (* [max_int + 1 = 2^62] is not representable, so compute
     [2^62 mod bound] as [((max_int mod bound) + 1) mod bound]. *)
  let overhang = ((max_int mod bound) + 1) mod bound in
  let accept_max = max_int - overhang in
  let rec draw () =
    let r = Int64.to_int (next_int64 g) land max_int in
    if r > accept_max then draw () else r mod bound
  in
  draw ()

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g =
  let r = Int64.to_int (next_int64 g) land max_int in
  float_of_int r /. float_of_int max_int

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place g a;
  a
