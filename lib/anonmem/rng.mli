(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every randomized component of the library (schedulers, workload
    generators, randomized protocols) draws from an explicit [Rng.t] so that
    runs are reproducible from a single integer seed and independent
    components can be given independent streams via {!split}. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** [copy g] is an independent generator that will replay [g]'s future. *)

val assign : t -> t -> unit
(** [assign dst src] makes [dst] continue from [src]'s current state
    (checkpoint restore). *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Requires [bound > 0].
    Exactly uniform for every bound (rejection sampling, not a biased
    [mod]); may consume more than one raw draw for bounds close to
    [max_int]. *)

val bool : t -> bool
(** Fair coin flip. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val pick : t -> 'a array -> 'a
(** [pick g a] is a uniformly random element of [a]. Requires [a] non-empty. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniformly random permutation of [0..n-1]. *)
