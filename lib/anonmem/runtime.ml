module Make (P : Protocol.PROTOCOL) = struct
  module Mem = Memory.Make (P.Value)

  type proc = {
    id : int;
    input : P.input;
    naming : Naming.t;
    mutable local : P.local;
    mutable steps : int;
    mutable crashed : bool;
  }

  type t = {
    mem : Mem.t;
    procs : proc array;
    rng : Rng.t option;
    record_trace : bool;
    mutable clock : int;
    mutable trace_rev : (P.Value.t, P.output) Trace.entry list;
  }

  type config = {
    ids : int array;
    inputs : P.input array;
    namings : Naming.t array;
    rng : Rng.t option;
    record_trace : bool;
  }

  let validate (c : config) =
    let n = Array.length c.ids in
    if n = 0 then invalid_arg "Runtime.create: no processes";
    if Array.length c.inputs <> n || Array.length c.namings <> n then
      invalid_arg "Runtime.create: ids/inputs/namings length mismatch";
    Array.iter
      (fun id ->
        if id <= 0 then invalid_arg "Runtime.create: ids must be positive")
      c.ids;
    let sorted = Array.copy c.ids in
    Array.sort compare sorted;
    for i = 0 to n - 2 do
      if sorted.(i) = sorted.(i + 1) then
        invalid_arg "Runtime.create: duplicate ids"
    done;
    let m = Naming.size c.namings.(0) in
    Array.iter
      (fun nm ->
        if Naming.size nm <> m then
          invalid_arg "Runtime.create: inconsistent naming sizes")
      c.namings;
    m

  let create (c : config) =
    let m = validate c in
    let n = Array.length c.ids in
    let mem = Mem.create ~m in
    let procs =
      Array.init n (fun i ->
          {
            id = c.ids.(i);
            input = c.inputs.(i);
            naming = c.namings.(i);
            local = P.start ~n ~m ~id:c.ids.(i) c.inputs.(i);
            steps = 0;
            crashed = false;
          })
    in
    { mem; procs; rng = c.rng; record_trace = c.record_trace; clock = 0;
      trace_rev = [] }

  let simple_config ?rng ?(record_trace = false) ?m ~ids ~inputs () =
    let ids = Array.of_list ids in
    let n = Array.length ids in
    let m = match m with Some m -> m | None -> P.default_registers ~n in
    {
      ids;
      inputs = Array.of_list inputs;
      namings = Array.init n (fun _ -> Naming.identity m);
      rng;
      record_trace;
    }

  let n t = Array.length t.procs
  let m t = Mem.size t.mem
  let clock t = t.clock
  let memory t = t.mem
  let id_of t i = t.procs.(i).id
  let naming_of t i = t.procs.(i).naming
  let local t i = t.procs.(i).local
  let status t i = P.status t.procs.(i).local

  let kind t i : Schedule.proc_kind =
    if t.procs.(i).crashed then Crashed
    else
      match status t i with
      | Protocol.Remainder -> Idle
      | Trying -> Working
      | Critical -> Crit
      | Exiting -> Exitg
      | Decided _ -> Finished

  let steps_of t i = t.procs.(i).steps
  let crashed t i = t.procs.(i).crashed

  let crash t i =
    let p = t.procs.(i) in
    if Protocol.is_decided (P.status p.local) then
      invalid_arg "Runtime.crash: process already decided";
    p.crashed <- true

  let rejoin t i =
    let p = t.procs.(i) in
    if not p.crashed then invalid_arg "Runtime.rejoin: process not crashed";
    p.crashed <- false;
    (* fresh local state; shared registers keep whatever the crash left *)
    p.local <- P.start ~n:(Array.length t.procs) ~m:(Mem.size t.mem) ~id:p.id
                 p.input

  let survivors t =
    let acc = ref [] in
    Array.iteri (fun i p -> if not p.crashed then acc := i :: !acc) t.procs;
    List.rev !acc

  let decisions t =
    Array.map
      (fun p ->
        match P.status p.local with
        | Protocol.Decided v -> Some v
        | _ -> None)
      t.procs

  let all_decided t =
    Array.for_all (fun p -> Protocol.is_decided (P.status p.local)) t.procs

  let all_survivors_decided t =
    Array.for_all
      (fun p -> p.crashed || Protocol.is_decided (P.status p.local))
      t.procs

  let critical_pair t =
    let crit = ref [] in
    Array.iteri
      (fun i p ->
        match P.status p.local with
        | Protocol.Critical -> crit := i :: !crit
        | _ -> ())
      t.procs;
    (* the accumulator is built backwards; reverse so callers always get
       the two lowest indices, in ascending order *)
    match List.rev !crit with a :: b :: _ -> Some (a, b) | _ -> None

  let peek t i =
    let p = t.procs.(i) in
    P.step ~n:(n t) ~m:(m t) ~id:p.id p.local

  let step t i =
    let p = t.procs.(i) in
    if p.crashed then invalid_arg "Runtime.step: process crashed";
    let status_before = P.status p.local in
    if Protocol.is_decided status_before then
      invalid_arg "Runtime.step: process already decided";
    let action : P.Value.t Trace.action =
      match P.step ~n:(n t) ~m:(m t) ~id:p.id p.local with
      | Protocol.Read (j, k) ->
        let v = Mem.read t.mem p.naming j in
        p.local <- k v;
        Read { loc = j; phys = Naming.apply p.naming j; value = v }
      | Protocol.Write (j, v, l) ->
        Mem.write t.mem p.naming j v;
        p.local <- l;
        Write { loc = j; phys = Naming.apply p.naming j; value = v }
      | Protocol.Rmw (j, f) ->
        let old_value, new_value, l = Mem.rmw t.mem p.naming j f in
        p.local <- l;
        Rmw { loc = j; phys = Naming.apply p.naming j; old_value; new_value }
      | Protocol.Internal l ->
        p.local <- l;
        Internal
      | Protocol.Coin k ->
        let rng =
          match t.rng with
          | Some rng -> rng
          | None -> invalid_arg "Runtime.step: Coin step but no rng in config"
        in
        let b = Rng.bool rng in
        p.local <- k b;
        Coin b
    in
    p.steps <- p.steps + 1;
    let entry : (P.Value.t, P.output) Trace.entry =
      {
        time = t.clock;
        proc = i;
        id = p.id;
        action;
        status_before;
        status_after = P.status p.local;
      }
    in
    t.clock <- t.clock + 1;
    if t.record_trace then t.trace_rev <- entry :: t.trace_rev;
    entry

  type stop_reason =
    | Schedule_exhausted
    | All_decided
    | Step_limit
    | Condition_met

  let run ?(until = fun _ -> false) t sched ~max_steps =
    let view : Schedule.view =
      { n = n t; clock = 0; kind = (fun i -> kind t i) }
    in
    let rec go remaining =
      if remaining <= 0 then Step_limit
      else if all_survivors_decided t then All_decided
      else
        match sched { view with clock = t.clock } with
        | None -> Schedule_exhausted
        | Some i ->
          let _ = step t i in
          if until t then Condition_met else go (remaining - 1)
    in
    if until t then Condition_met else go max_steps

  let trace t = List.rev t.trace_rev

  type checkpoint = {
    cp_mem : Mem.snapshot;
    cp_locals : P.local array;
    cp_steps : int array;
    cp_crashed : bool array;
    cp_clock : int;
    cp_trace_rev : (P.Value.t, P.output) Trace.entry list;
    cp_rng : Rng.t option;
  }

  let checkpoint t =
    {
      cp_mem = Mem.snapshot t.mem;
      cp_locals = Array.map (fun p -> p.local) t.procs;
      cp_steps = Array.map (fun p -> p.steps) t.procs;
      cp_crashed = Array.map (fun p -> p.crashed) t.procs;
      cp_clock = t.clock;
      cp_trace_rev = t.trace_rev;
      cp_rng = Option.map Rng.copy t.rng;
    }

  let restore t cp =
    Mem.restore t.mem cp.cp_mem;
    Array.iteri
      (fun i p ->
        p.local <- cp.cp_locals.(i);
        p.steps <- cp.cp_steps.(i);
        p.crashed <- cp.cp_crashed.(i))
      t.procs;
    t.clock <- cp.cp_clock;
    t.trace_rev <- cp.cp_trace_rev;
    match (t.rng, cp.cp_rng) with
    | Some rng, Some saved -> Rng.assign rng saved
    | _ -> ()

  let pp_state ppf t =
    Format.fprintf ppf "@[<v>mem: %a" Mem.pp t.mem;
    Array.iteri
      (fun i p ->
        Format.fprintf ppf "@,p%d id=%d steps=%d %s%s %a" i p.id p.steps
          (Protocol.status_kind (P.status p.local))
          (if p.crashed then " CRASHED" else "")
          P.pp_local p.local)
      t.procs;
    Format.fprintf ppf "@]"
end
