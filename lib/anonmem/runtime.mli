(** The simulator: executes a protocol instance under a scheduler.

    A runtime instance holds [n] processes (each with its identifier, input
    and private register naming) over one physical memory. The runtime is
    mutable and single-threaded: atomicity and the adversary's power over
    interleaving come from executing exactly one protocol step per
    {!Make.step} call. Checkpoint/restore supports the lower-bound
    adversaries, which extend runs, back up, and splice suffixes. *)

module Make (P : Protocol.PROTOCOL) : sig
  module Mem : module type of Memory.Make (P.Value)

  type t

  type config = {
    ids : int array;  (** distinct positive process identifiers *)
    inputs : P.input array;
    namings : Naming.t array;  (** one per process, all of the same size *)
    rng : Rng.t option;  (** required iff the protocol flips coins *)
    record_trace : bool;
  }

  val create : config -> t
  (** Raises [Invalid_argument] on malformed configs (duplicate ids,
      non-positive ids, mismatched lengths, inconsistent naming sizes). *)

  val simple_config :
    ?rng:Rng.t ->
    ?record_trace:bool ->
    ?m:int ->
    ids:int list ->
    inputs:P.input list ->
    unit ->
    config
  (** Convenience: identity namings of [m] registers (default
      [P.default_registers ~n]). *)

  val n : t -> int
  val m : t -> int
  val clock : t -> int
  val memory : t -> Mem.t
  val id_of : t -> int -> int
  val naming_of : t -> int -> Naming.t
  val local : t -> int -> P.local
  val status : t -> int -> P.output Protocol.status
  val kind : t -> int -> Schedule.proc_kind
  val steps_of : t -> int -> int
  (** Steps taken by one process (cumulative across {!rejoin}). *)

  val crash : t -> int -> unit
  (** Crash-stop process [i]: it becomes permanently unschedulable, {!kind}
      reports it as [Crashed], and {!step} rejects it. Shared registers
      keep whatever the process last wrote — the crash model of the
      obstruction-freedom results. Idempotent on an already-crashed
      process; raises [Invalid_argument] on a decided one. *)

  val rejoin : t -> int -> unit
  (** Un-crash process [i] with a {e fresh} local state ([P.start]), as a
      process re-entering a long-lived protocol (e.g. a mutex entry
      section) after a crash. Its step counter is kept (cumulative) and
      memory is untouched. Raises [Invalid_argument] if [i] is not
      crashed. *)

  val crashed : t -> int -> bool
  val survivors : t -> int list
  (** Indices of non-crashed processes, ascending. *)

  val decisions : t -> P.output option array
  val all_decided : t -> bool
  (** Every process (crashed or not) decided; unchanged from the
      crash-free model. *)

  val all_survivors_decided : t -> bool
  (** Every non-crashed process decided — vacuously true if everyone
      crashed. This is {!run}'s [All_decided] condition. *)

  val critical_pair : t -> (int * int) option
  (** Two distinct processes currently both in their critical sections, if
      any — a mutual-exclusion violation. Returns the two lowest such
      indices, in ascending order. *)

  val peek : t -> int -> (P.local, P.Value.t) Protocol.step
  (** The next atomic action process [proc] would take, without taking it.
      Used by adversaries to detect covering (pending writes). *)

  val step : t -> int -> (P.Value.t, P.output) Trace.entry
  (** Execute one atomic step of process [proc]. Raises [Invalid_argument]
      if the process has already decided or crashed. The entry is also
      appended to the trace when trace recording is on. *)

  (** Why a {!run} ended. *)
  type stop_reason =
    | Schedule_exhausted  (** the scheduler returned [None] *)
    | All_decided  (** every surviving process decided *)
    | Step_limit
    | Condition_met  (** the [until] predicate fired *)

  val run :
    ?until:(t -> bool) -> t -> Schedule.t -> max_steps:int -> stop_reason
  (** Drive the runtime with the scheduler. [until] is evaluated after every
      step. *)

  val trace : t -> (P.Value.t, P.output) Trace.t
  (** Oldest first; empty if recording is off. *)

  type checkpoint

  val checkpoint : t -> checkpoint
  val restore : t -> checkpoint -> unit

  val pp_state : Format.formatter -> t -> unit
  (** Registers plus one line per process: id, status, steps. *)
end
