type proc_kind = Idle | Working | Crit | Exitg | Finished | Crashed

type view = { n : int; clock : int; kind : int -> proc_kind }

type t = view -> int option

let runnable = function
  | Idle | Working | Crit | Exitg -> true
  | Finished | Crashed -> false

let find_from view start pred =
  (* First process index >= start (cyclically) satisfying [pred], if any. *)
  let rec go count i =
    if count = view.n then None
    else if pred (view.kind i) then Some i
    else go (count + 1) ((i + 1) mod view.n)
  in
  go 0 (start mod view.n)

let round_robin () =
  let cursor = ref 0 in
  fun view ->
    match find_from view !cursor runnable with
    | Some i ->
      cursor := (i + 1) mod view.n;
      Some i
    | None -> None

let solo p view = if runnable (view.kind p) then Some p else None

let lock_step procs =
  let arr = Array.of_list procs in
  assert (Array.length arr > 0);
  let cursor = ref 0 in
  fun view ->
    let p = arr.(!cursor mod Array.length arr) in
    if not (runnable (view.kind p)) then None
    else begin
      incr cursor;
      Some p
    end

let script steps =
  let remaining = ref steps in
  fun view ->
    let rec go () =
      match !remaining with
      | [] -> None
      | p :: rest ->
        remaining := rest;
        if runnable (view.kind p) then Some p else go ()
    in
    go ()

let choose_uniform rng view pred =
  let candidates =
    List.filter (fun i -> pred (view.kind i)) (List.init view.n Fun.id)
  in
  match candidates with
  | [] -> None
  | _ -> Some (Rng.pick rng (Array.of_list candidates))

let random rng view = choose_uniform rng view runnable

let random_active rng view =
  choose_uniform rng view (fun k -> runnable k && k <> Idle)

let then_ a b =
  let first_done = ref false in
  fun view ->
    if !first_done then b view
    else
      match a view with
      | Some _ as r -> r
      | None ->
        first_done := true;
        b view

let take k sched =
  let left = ref k in
  fun view ->
    if !left <= 0 then None
    else
      match sched view with
      | Some _ as r ->
        decr left;
        r
      | None -> None

let pick_active view =
  find_from view 0 (function
    | Working | Crit | Exitg -> true
    | Idle | Finished | Crashed -> false)
