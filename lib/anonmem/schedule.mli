(** Schedulers: the adversary that decides who steps next.

    Asynchrony in the model means the adversary fully controls interleaving;
    here schedulers are first-class values so that the proofs' adversaries
    (solo runs, lock-step rings, covering constructions) and ordinary
    workloads (round-robin, random) share one representation. *)

(** What a scheduler may observe about each process. *)
type proc_kind =
  | Idle  (** in its remainder section; stepping it makes it participate *)
  | Working  (** in the entry code / task body *)
  | Crit  (** in its critical section *)
  | Exitg  (** in its exit code *)
  | Finished  (** decided; can take no more steps *)
  | Crashed  (** crash-stopped by a fault plan; permanently unschedulable *)

type view = {
  n : int;  (** number of processes *)
  clock : int;  (** global steps taken so far *)
  kind : int -> proc_kind;
}

type t = view -> int option
(** [schedule view] names the next process to step, or [None] to stop the
    run. Returning a [Finished] or [Crashed] process is an error the
    runtime rejects. *)

val runnable : proc_kind -> bool
(** Whether a process of this kind may still be scheduled: everything but
    [Finished] and [Crashed]. All built-in schedulers restrict themselves
    to runnable processes, so they honor any crashed set for free. *)

val round_robin : unit -> t
(** Cycle 0,1,…,n-1 repeatedly, skipping finished and crashed processes;
    stops when none is runnable. Schedulers carry internal position state,
    so each run needs a fresh one. *)

val solo : int -> t
(** Only process [p] ever steps; stops when [p] finishes or crashes. *)

val lock_step : int list -> t
(** Cycle through the given processes in order, one step each — the paper's
    Theorem 3.4 adversary that keeps symmetric processes in identical
    states. Stops when any of them finishes or crashes. *)

val script : int list -> t
(** Exactly these steps, in order, then stop. Steps naming a finished or
    crashed process are skipped. *)

val random : Rng.t -> t
(** Uniform over runnable processes (idle processes may be started at
    any time). *)

val random_active : Rng.t -> t
(** Uniform over runnable, non-idle processes: no new arrivals. Stops if
    no process is active. *)

val then_ : t -> t -> t
(** [then_ a b] runs [a] until it returns [None], then [b]. *)

val take : int -> t -> t
(** At most [k] steps of the underlying scheduler. *)

val pick_active : view -> int option
(** Lowest-index active (runnable and non-idle) process, if any — a handy
    building block for custom adversaries. *)
