type 'value action =
  | Read of { loc : int; phys : int; value : 'value }
  | Write of { loc : int; phys : int; value : 'value }
  | Rmw of { loc : int; phys : int; old_value : 'value; new_value : 'value }
  | Internal
  | Coin of bool

type ('value, 'output) entry = {
  time : int;
  proc : int;
  id : int;
  action : 'value action;
  status_before : 'output Protocol.status;
  status_after : 'output Protocol.status;
}

type ('value, 'output) t = ('value, 'output) entry list

let length = List.length

let procs t = List.map (fun e -> e.proc) t

let slice ~lo ~hi t =
  List.filteri (fun i _ -> i >= lo && i < hi) t

let first_index p t =
  let rec go i = function
    | [] -> None
    | e :: rest -> if p e then Some i else go (i + 1) rest
  in
  go 0 t

let enters_critical e =
  match (e.status_before, e.status_after) with
  | (Protocol.Remainder | Trying | Exiting), Protocol.Critical -> true
  | _ -> false

let exits_critical e =
  match (e.status_before, e.status_after) with
  | Protocol.Critical, (Protocol.Remainder | Trying | Exiting | Decided _) ->
    true
  | _ -> false

let decision e =
  match (e.status_before, e.status_after) with
  | Protocol.Decided _, _ -> None
  | _, Protocol.Decided v -> Some v
  | _ -> None

let writes_by trace proc =
  let seen = Hashtbl.create 8 in
  let add acc phys =
    if Hashtbl.mem seen phys then acc
    else begin
      Hashtbl.add seen phys ();
      phys :: acc
    end
  in
  List.fold_left
    (fun acc e ->
      if e.proc <> proc then acc
      else
        match e.action with
        | Write { phys; _ } | Rmw { phys; _ } -> add acc phys
        | Read _ | Internal | Coin _ -> acc)
    [] trace
  |> List.rev

let pp_action pp_value ppf = function
  | Read { loc; phys; value } ->
    Format.fprintf ppf "read  r%d(=phys %d) -> %a" loc phys pp_value value
  | Write { loc; phys; value } ->
    Format.fprintf ppf "write r%d(=phys %d) <- %a" loc phys pp_value value
  | Rmw { loc; phys; old_value; new_value } ->
    Format.fprintf ppf "rmw   r%d(=phys %d): %a => %a" loc phys pp_value
      old_value pp_value new_value
  | Internal -> Format.fprintf ppf "internal"
  | Coin b -> Format.fprintf ppf "coin %b" b

let pp_status pp_output ppf = function
  | Protocol.Decided v -> Format.fprintf ppf "decided(%a)" pp_output v
  | s -> Format.pp_print_string ppf (Protocol.status_kind s)

let pp_entry ~pp_value ~pp_output ppf e =
  let action = Format.asprintf "%a" (pp_action pp_value) e.action in
  Format.fprintf ppf "%4d  p%d(id=%d)  %-40s %a -> %a" e.time e.proc e.id
    action
    (pp_status pp_output)
    e.status_before
    (pp_status pp_output)
    e.status_after

let pp ~pp_value ~pp_output ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline
    (pp_entry ~pp_value ~pp_output)
    ppf t
