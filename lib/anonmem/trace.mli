(** Run traces: what happened, step by step.

    A trace entry records one atomic step of one process: the shared-memory
    action (if any), and the externally visible status transition it caused.
    Traces are what the lower-bound adversaries output as their constructed
    counterexample runs, so they must be readable. *)

(** The shared-memory effect of one step. [loc] is the process's local
    register index, [phys] the physical register it resolved to. *)
type 'value action =
  | Read of { loc : int; phys : int; value : 'value }
  | Write of { loc : int; phys : int; value : 'value }
  | Rmw of { loc : int; phys : int; old_value : 'value; new_value : 'value }
  | Internal
  | Coin of bool

type ('value, 'output) entry = {
  time : int;  (** global step counter at which this step executed *)
  proc : int;  (** process index (position in the runtime, not the id) *)
  id : int;  (** process identifier *)
  action : 'value action;
  status_before : 'output Protocol.status;
  status_after : 'output Protocol.status;
}

type ('value, 'output) t = ('value, 'output) entry list
(** Oldest entry first. *)

val length : ('v, 'o) t -> int

val procs : ('v, 'o) t -> int list
(** The process index of each step, oldest first — exactly the schedule
    script ({!Schedule.script}) that reproduces the trace on a runtime
    whose non-schedule nondeterminism (coins) is replayed identically.
    The fuzzing shrinker starts from this slice of a witness trace. *)

val slice : lo:int -> hi:int -> ('v, 'o) t -> ('v, 'o) t
(** Entries at positions [lo <= i < hi] (positions, not [time] fields). *)

val first_index : (('v, 'o) entry -> bool) -> ('v, 'o) t -> int option
(** Position of the first entry satisfying the predicate. *)

val enters_critical : ('v, 'o) entry -> bool
(** Did this step move the process into its critical section? *)

val exits_critical : ('v, 'o) entry -> bool

val decision : ('v, 'o) entry -> 'o option
(** The output, if this step made the process decide. *)

val writes_by : ('v, 'o) t -> int -> int list
(** [writes_by trace proc] is the list of distinct {e physical} registers
    written by process [proc], in first-write order. This is the proofs'
    [write(y, q)] set. *)

val pp_entry :
  pp_value:(Format.formatter -> 'v -> unit) ->
  pp_output:(Format.formatter -> 'o -> unit) ->
  Format.formatter ->
  ('v, 'o) entry ->
  unit

val pp :
  pp_value:(Format.formatter -> 'v -> unit) ->
  pp_output:(Format.formatter -> 'o -> unit) ->
  Format.formatter ->
  ('v, 'o) t ->
  unit
