open Anonmem

(* Burns' algorithm, one flag bit per process:

     1: flag[i] := 0
     2: for j < i: if flag[j] = 1 then goto 1
     3: flag[i] := 1
     4: for j < i: if flag[j] = 1 then goto 1
     5: for j > i: await flag[j] = 0
     6: critical section
     7: flag[i] := 0

   Deadlock freedom hinges on the asymmetric index order — exactly the kind
   of prior agreement memory-anonymous algorithms must do without. *)

module P = struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp = Format.pp_print_int
  end

  type input = unit
  type output = Empty.t

  type local =
    | Rem
    | Lower_flag  (** line 1 *)
    | First_scan of int  (** line 2, next index to read *)
    | Raise_flag  (** line 3 *)
    | Second_scan of int  (** line 4 *)
    | Await_higher of int  (** line 5 *)
    | Crit
    | Exit_clear

  let name = "burns-one-bit-named"

  (* Named baseline: identifiers are used as indices or order-compared,
     so no nontrivial relabeling commutes with the code; the symmetry
     quotient degrades to the identity group. *)
  let symmetric = false

  let default_registers ~n = n

  let start ~n ~m ~id () =
    if id < 1 || id > n then
      invalid_arg "Burns: identifiers must be 1..n";
    if m <> n then invalid_arg "Burns: needs exactly n registers";
    Rem

  let flag i = i - 1

  let step ~n ~m:_ ~id local : (local, Value.t) Protocol.step =
    let first_scan_from j =
      if j < id then First_scan j else Raise_flag
    in
    let await_from j = if j <= n then Await_higher j else Crit in
    let second_scan_from j =
      if j < id then Second_scan j else await_from (id + 1)
    in
    match local with
    | Rem -> Internal Lower_flag
    | Lower_flag -> Write (flag id, 0, first_scan_from 1)
    | First_scan j ->
      Read (flag j, fun v -> if v = 1 then Lower_flag else first_scan_from (j + 1))
    | Raise_flag -> Write (flag id, 1, second_scan_from 1)
    | Second_scan j ->
      Read (flag j, fun v -> if v = 1 then Lower_flag else second_scan_from (j + 1))
    | Await_higher j ->
      Read (flag j, fun v -> if v = 1 then Await_higher j else await_from (j + 1))
    | Crit -> Internal Exit_clear
    | Exit_clear -> Write (flag id, 0, Rem)

  let status = function
    | Rem -> Protocol.Remainder
    | Crit -> Protocol.Critical
    | Exit_clear -> Protocol.Exiting
    | Lower_flag | First_scan _ | Raise_flag | Second_scan _ | Await_higher _
      ->
      Protocol.Trying

  let compare_local = Stdlib.compare

  let map_value_ids _ v = v
  let map_local_ids _ l = l

  let pp_local ppf = function
    | Rem -> Format.pp_print_string ppf "rem"
    | Lower_flag -> Format.pp_print_string ppf "lower-flag"
    | First_scan j -> Format.fprintf ppf "scan1[%d]" j
    | Raise_flag -> Format.pp_print_string ppf "raise-flag"
    | Second_scan j -> Format.fprintf ppf "scan2[%d]" j
    | Await_higher j -> Format.fprintf ppf "await[%d]" j
    | Crit -> Format.pp_print_string ppf "crit"
    | Exit_clear -> Format.pp_print_string ppf "exit"

  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Empty.pp
end
