open Anonmem

(* Register layout (named!): round r occupies the 2n registers
   [r*2n .. r*2n + 2n - 1]; the first n are the A array, the next n the B
   array, slot i-1 belonging to process i. B entries encode the pair
   (commit-bit b, value v) as 2*v + b; 0 is the empty slot. *)

module P = struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp = Format.pp_print_int
  end

  type input = int
  type output = int

  type local =
    | Rem of { input : int }
    | Write_a of { round : int; pref : int }
    | Scan_a of { round : int; pref : int; j : int; all_mine : bool }
    | Write_b of { round : int; pref : int; mine : bool }
    | Scan_b of {
        round : int;
        pref : int;
        j : int;
        all_commit : bool;
        seen_commit : int option;  (** a committed value observed in B *)
        seen_any : bool;
      }
    | Decided_st of int
    | Spin of { round : int; pref : int }
        (** rounds exhausted; stay trying (never happens solo) *)

  let name = "ca-consensus-named"

  (* Named baseline: identifiers are used as indices or order-compared,
     so no nontrivial relabeling commutes with the code; the symmetry
     quotient degrades to the identity group. *)
  let symmetric = false

  let registers_for ~n ~rounds = 2 * n * rounds

  let default_registers ~n = registers_for ~n ~rounds:8

  let start ~n ~m:_ ~id input =
    if input = 0 then invalid_arg "Ca_consensus: inputs must be non-zero";
    if id < 1 || id > n then
      invalid_arg "Ca_consensus: identifiers must be 1..n";
    Rem { input }

  let a_slot ~n ~round i = (round * 2 * n) + (i - 1)
  let b_slot ~n ~round i = (round * 2 * n) + n + (i - 1)

  let encode_b ~commit v = (2 * v) + if commit then 1 else 0
  let decode_b e = if e = 0 then None else Some (e land 1 = 1, e asr 1)

  let step ~n ~m ~id local : (local, Value.t) Protocol.step =
    let rounds = m / (2 * n) in
    match local with
    | Rem { input } -> Internal (Write_a { round = 0; pref = input })
    | Write_a { round; pref } ->
      Write
        ( a_slot ~n ~round id,
          pref,
          Scan_a { round; pref; j = 1; all_mine = true } )
    | Scan_a { round; pref; j; all_mine } ->
      Read
        ( a_slot ~n ~round j,
          fun v ->
            let all_mine = all_mine && (v = 0 || v = pref) in
            if j < n then Scan_a { round; pref; j = j + 1; all_mine }
            else Write_b { round; pref; mine = all_mine } )
    | Write_b { round; pref; mine } ->
      Write
        ( b_slot ~n ~round id,
          encode_b ~commit:mine pref,
          Scan_b
            {
              round;
              pref;
              j = 1;
              all_commit = true;
              seen_commit = None;
              seen_any = false;
            } )
    | Scan_b { round; pref; j; all_commit; seen_commit; seen_any } ->
      Read
        ( b_slot ~n ~round j,
          fun v ->
            let all_commit, seen_commit, seen_any =
              match decode_b v with
              | None -> (all_commit, seen_commit, seen_any)
              | Some (true, w) -> (all_commit, Some w, true)
              | Some (false, _) -> (false, seen_commit, true)
            in
            if j < n then
              Scan_b { round; pref; j = j + 1; all_commit; seen_commit; seen_any }
            else begin
              assert seen_any;
              (* my own entry is there *)
              match (all_commit, seen_commit) with
              | true, Some w -> Decided_st w (* commit *)
              | _, Some w ->
                (* adopt the committed value and try the next round *)
                if round + 1 < rounds then
                  Write_a { round = round + 1; pref = w }
                else Spin { round; pref = w }
              | _, None ->
                if round + 1 < rounds then
                  Write_a { round = round + 1; pref }
                else Spin { round; pref }
            end )
    | Decided_st _ -> invalid_arg "Ca_consensus.step: already decided"
    | Spin { round; pref } -> Internal (Spin { round; pref })

  let status = function
    | Rem _ -> Protocol.Remainder
    | Decided_st v -> Protocol.Decided v
    | Write_a _ | Scan_a _ | Write_b _ | Scan_b _ | Spin _ -> Protocol.Trying

  let round_of = function
    | Rem _ -> 0
    | Write_a { round; _ }
    | Scan_a { round; _ }
    | Write_b { round; _ }
    | Scan_b { round; _ }
    | Spin { round; _ } ->
      round
    | Decided_st _ -> 0

  let compare_local = Stdlib.compare

  let map_value_ids _ v = v
  let map_local_ids _ l = l

  let pp_local ppf = function
    | Rem _ -> Format.pp_print_string ppf "rem"
    | Write_a { round; pref } -> Format.fprintf ppf "writeA[r%d,%d]" round pref
    | Scan_a { round; j; _ } -> Format.fprintf ppf "scanA[r%d,j%d]" round j
    | Write_b { round; mine; _ } ->
      Format.fprintf ppf "writeB[r%d,commit=%b]" round mine
    | Scan_b { round; j; _ } -> Format.fprintf ppf "scanB[r%d,j%d]" round j
    | Decided_st v -> Format.fprintf ppf "decided(%d)" v
    | Spin { round; _ } -> Format.fprintf ppf "spin[r%d]" round

  let pp_input = Format.pp_print_int
  let pp_output = Format.pp_print_int
end
