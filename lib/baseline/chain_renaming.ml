open Anonmem
module Consensus = Coord.Consensus

module P = struct
  module Value = Consensus.Value

  type input = unit
  type output = int

  type local =
    | Rem
    | Play of { obj : int; inner : Consensus.P.local }
    | Named of int

  let name = "chain-renaming-named"

  (* Named baseline: identifiers are used as indices or order-compared,
     so no nontrivial relabeling commutes with the code; the symmetry
     quotient degrades to the identity group. *)
  let symmetric = false

  let block ~n = (2 * n) - 1

  let default_registers ~n =
    if n < 2 then invalid_arg "Chain_renaming: needs n >= 2";
    (n - 1) * block ~n

  let start ~n ~m ~id:_ () =
    if n < 2 then invalid_arg "Chain_renaming: needs n >= 2";
    if m <> default_registers ~n then
      invalid_arg "Chain_renaming: wrong register count";
    Rem

  let enter_object ~n ~id obj =
    Play { obj; inner = Consensus.P.start ~n ~m:(block ~n) ~id id }

  let step ~n ~m:_ ~id local : (local, Value.t) Protocol.step =
    match local with
    | Rem -> Internal (enter_object ~n ~id 0)
    | Play { obj; inner } -> (
      let base = obj * block ~n in
      match Consensus.P.status inner with
      | Protocol.Decided winner ->
        if winner = id then Internal (Named (obj + 1))
        else if obj + 1 >= n - 1 then Internal (Named n)
        else Internal (enter_object ~n ~id (obj + 1))
      | _ -> (
        match Consensus.P.step ~n ~m:(block ~n) ~id inner with
        | Protocol.Read (j, k) ->
          Read (base + j, fun v -> Play { obj; inner = k v })
        | Protocol.Write (j, v, l) ->
          Write (base + j, v, Play { obj; inner = l })
        | Protocol.Internal l -> Internal (Play { obj; inner = l })
        | Protocol.Rmw _ | Protocol.Coin _ ->
          invalid_arg "Chain_renaming: unexpected inner step"))
    | Named _ -> invalid_arg "Chain_renaming.step: already decided"

  let status = function
    | Rem -> Protocol.Remainder
    | Play _ -> Protocol.Trying
    | Named r -> Protocol.Decided r

  let object_of = function
    | Rem -> 0
    | Play { obj; _ } -> obj
    | Named _ -> 0

  let compare_local a b =
    match (a, b) with
    | Play { obj = oa; inner = ia }, Play { obj = ob; inner = ib } ->
      let c = Int.compare oa ob in
      if c <> 0 then c else Consensus.P.compare_local ia ib
    | _ -> Stdlib.compare a b

  let map_value_ids _ v = v
  let map_local_ids _ l = l

  let pp_local ppf = function
    | Rem -> Format.pp_print_string ppf "rem"
    | Play { obj; inner } ->
      Format.fprintf ppf "object[%d]:%a" obj Consensus.P.pp_local inner
    | Named r -> Format.fprintf ppf "named(%d)" r

  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end
