open Anonmem

(* Lamport's algorithm, one shared access per step:

     start: b[i] := 1; x := i
            if y <> 0 then { b[i] := 0; await y = 0; goto start }
            y := i
            if x <> i then
              b[i] := 0
              for all j: await b[j] = 0
              if y <> i then { await y = 0; goto start }
     CS
     exit:  y := 0; b[i] := 0
*)

module P = struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp = Format.pp_print_int
  end

  type input = unit
  type output = Empty.t

  type local =
    | Rem
    | Set_b
    | Set_x
    | Read_y  (** the fast-path gate *)
    | Drop_b_then_wait  (** y was taken: back off *)
    | Await_y_zero
    | Set_y
    | Read_x  (** fast-path confirmation *)
    | Drop_b  (** slow path: lower the flag *)
    | Scan_b of int  (** slow path: wait for every flag to drop *)
    | Read_y_final  (** slow path: did I win after all? *)
    | Await_y_zero_then_restart
    | Crit
    | Exit_y
    | Exit_b

  let name = "lamport-fast-mutex-named"

  (* Named baseline: identifiers are used as indices or order-compared,
     so no nontrivial relabeling commutes with the code; the symmetry
     quotient degrades to the identity group. *)
  let symmetric = false

  let default_registers ~n = n + 2

  let x_reg = 0
  let y_reg = 1
  let b_reg i = 1 + i

  let start ~n ~m ~id () =
    if id < 1 || id > n then
      invalid_arg "Fast_mutex: identifiers must be 1..n";
    if m <> n + 2 then invalid_arg "Fast_mutex: needs n + 2 registers";
    Rem

  let step ~n ~m:_ ~id local : (local, Value.t) Protocol.step =
    match local with
    | Rem -> Internal Set_b
    | Set_b -> Write (b_reg id, 1, Set_x)
    | Set_x -> Write (x_reg, id, Read_y)
    | Read_y -> Read (y_reg, fun y -> if y <> 0 then Drop_b_then_wait else Set_y)
    | Drop_b_then_wait -> Write (b_reg id, 0, Await_y_zero)
    | Await_y_zero ->
      Read (y_reg, fun y -> if y = 0 then Set_b else Await_y_zero)
    | Set_y -> Write (y_reg, id, Read_x)
    | Read_x -> Read (x_reg, fun x -> if x = id then Crit else Drop_b)
    | Drop_b -> Write (b_reg id, 0, Scan_b 1)
    | Scan_b j ->
      Read
        ( b_reg j,
          fun b ->
            if b <> 0 then Scan_b j
            else if j < n then Scan_b (j + 1)
            else Read_y_final )
    | Read_y_final ->
      Read (y_reg, fun y -> if y = id then Crit else Await_y_zero_then_restart)
    | Await_y_zero_then_restart ->
      Read (y_reg, fun y -> if y = 0 then Set_b else Await_y_zero_then_restart)
    | Crit -> Internal Exit_y
    | Exit_y -> Write (y_reg, 0, Exit_b)
    | Exit_b -> Write (b_reg id, 0, Rem)

  let status = function
    | Rem -> Protocol.Remainder
    | Crit -> Protocol.Critical
    | Exit_y | Exit_b -> Protocol.Exiting
    | Set_b | Set_x | Read_y | Drop_b_then_wait | Await_y_zero | Set_y
    | Read_x | Drop_b | Scan_b _ | Read_y_final | Await_y_zero_then_restart ->
      Protocol.Trying

  let compare_local = Stdlib.compare

  let map_value_ids _ v = v
  let map_local_ids _ l = l

  let pp_local ppf l =
    Format.pp_print_string ppf
      (match l with
      | Rem -> "rem"
      | Set_b -> "set-b"
      | Set_x -> "set-x"
      | Read_y -> "read-y"
      | Drop_b_then_wait -> "drop-b-wait"
      | Await_y_zero -> "await-y"
      | Set_y -> "set-y"
      | Read_x -> "read-x"
      | Drop_b -> "drop-b"
      | Scan_b j -> Printf.sprintf "scan-b[%d]" j
      | Read_y_final -> "read-y-final"
      | Await_y_zero_then_restart -> "await-y-restart"
      | Crit -> "crit"
      | Exit_y -> "exit-y"
      | Exit_b -> "exit-b")

  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Empty.pp
end
