open Anonmem

module P = struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp = Format.pp_print_int
  end

  type input = unit
  type output = Empty.t

  (* Register layout: 0 = flag of process 1, 1 = flag of process 2,
     2 = victim (holds the id of the process that must yield). *)
  type local =
    | Rem
    | Set_flag
    | Set_victim
    | Check_flag
    | Check_victim
    | Crit
    | Clear_flag

  let name = "peterson-named"

  (* Named baseline: identifiers are used as indices or order-compared,
     so no nontrivial relabeling commutes with the code; the symmetry
     quotient degrades to the identity group. *)
  let symmetric = false

  let default_registers ~n:_ = 3

  let start ~n:_ ~m:_ ~id () =
    if id <> 1 && id <> 2 then
      invalid_arg "Peterson: identifiers must be 1 and 2";
    Rem

  let my_flag id = id - 1
  let other_flag id = 2 - id
  let victim = 2

  let step ~n:_ ~m:_ ~id local : (local, Value.t) Protocol.step =
    match local with
    | Rem -> Internal Set_flag
    | Set_flag -> Write (my_flag id, 1, Set_victim)
    | Set_victim -> Write (victim, id, Check_flag)
    | Check_flag ->
      Read (other_flag id, fun v -> if v = 0 then Crit else Check_victim)
    | Check_victim -> Read (victim, fun v -> if v <> id then Crit else Check_flag)
    | Crit -> Internal Clear_flag
    | Clear_flag -> Write (my_flag id, 0, Rem)

  let status = function
    | Rem -> Protocol.Remainder
    | Crit -> Protocol.Critical
    | Clear_flag -> Protocol.Exiting
    | Set_flag | Set_victim | Check_flag | Check_victim -> Protocol.Trying

  let compare_local = Stdlib.compare

  let map_value_ids _ v = v
  let map_local_ids _ l = l

  let pp_local ppf l =
    Format.pp_print_string ppf
      (match l with
      | Rem -> "rem"
      | Set_flag -> "set-flag"
      | Set_victim -> "set-victim"
      | Check_flag -> "check-flag"
      | Check_victim -> "check-victim"
      | Crit -> "crit"
      | Clear_flag -> "clear-flag")

  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Empty.pp
end
