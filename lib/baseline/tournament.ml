open Anonmem

(* Heap-numbered internal nodes 1..n-1 (1 is the root). Process p starts at
   the leaf slot n + p - 1 and climbs: at each internal node its role is
   the parity of the child it arrived from. Node v owns three registers:

     flag[v][0]  at (v-1)*3       flag[v][1]  at (v-1)*3 + 1
     turn[v]     at (v-1)*3 + 2   (stores the victim role + 1; 0 = unset)

   Peterson entry at (v, r): flag[v][r] := 1; turn[v] := r+1; spin while
   flag[v][1-r] = 1 and turn[v] = r+1. Exit releases flag[v][r] := 0 from
   the root back down. *)

module P = struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp = Format.pp_print_int
  end

  type input = unit
  type output = Empty.t

  (* One Peterson match per path entry: (node, role). *)
  type phase = Set_flag | Set_turn | Check_flag | Check_turn

  type local =
    | Rem
    | Entry of {
        pending : (int * int) list;  (** matches still to win, leaf first *)
        won : (int * int) list;  (** matches won, most recent first *)
        phase : phase;
      }
    | Crit of { won : (int * int) list }
    | Exit of { to_release : (int * int) list }

  let name = "tournament-peterson-named"

  (* Named baseline: identifiers are used as indices or order-compared,
     so no nontrivial relabeling commutes with the code; the symmetry
     quotient degrades to the identity group. *)
  let symmetric = false

  let levels ~n =
    let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
    go 0 n

  let is_power_of_two n = n > 0 && n land (n - 1) = 0

  let default_registers ~n = 3 * (n - 1)

  let path ~n ~id =
    let rec climb acc slot =
      if slot <= 1 then acc
      else climb ((slot / 2, slot land 1) :: acc) (slot / 2)
    in
    (* leaf-first order *)
    List.rev (climb [] (n + id - 1))

  let start ~n ~m ~id () =
    if not (is_power_of_two n) then
      invalid_arg "Tournament: n must be a power of two";
    if id < 1 || id > n then invalid_arg "Tournament: identifiers must be 1..n";
    if m <> default_registers ~n then
      invalid_arg "Tournament: needs 3(n-1) registers";
    Rem

  let flag_reg v r = ((v - 1) * 3) + r
  let turn_reg v = ((v - 1) * 3) + 2

  let step ~n ~m:_ ~id local : (local, Value.t) Protocol.step =
    match local with
    | Rem -> Internal (Entry { pending = path ~n ~id; won = []; phase = Set_flag })
    | Entry { pending = []; won; _ } -> Internal (Crit { won })
    | Entry ({ pending = (v, r) :: rest; won; phase } as e) -> (
      match phase with
      | Set_flag -> Write (flag_reg v r, 1, Entry { e with phase = Set_turn })
      | Set_turn ->
        Write (turn_reg v, r + 1, Entry { e with phase = Check_flag })
      | Check_flag ->
        Read
          ( flag_reg v (1 - r),
            fun f ->
              if f = 0 then
                Entry
                  { pending = rest; won = (v, r) :: won; phase = Set_flag }
              else Entry { e with phase = Check_turn } )
      | Check_turn ->
        Read
          ( turn_reg v,
            fun t ->
              if t <> r + 1 then
                Entry
                  { pending = rest; won = (v, r) :: won; phase = Set_flag }
              else Entry { e with phase = Check_flag } ))
    | Crit { won } -> Internal (Exit { to_release = won })
    | Exit { to_release = [] } -> Internal Rem
    | Exit { to_release = (v, r) :: rest } ->
      Write (flag_reg v r, 0, Exit { to_release = rest })

  let status = function
    | Rem -> Protocol.Remainder
    | Entry _ -> Protocol.Trying
    | Crit _ -> Protocol.Critical
    | Exit _ -> Protocol.Exiting

  let compare_local = Stdlib.compare

  let pp_phase = function
    | Set_flag -> "set-flag"
    | Set_turn -> "set-turn"
    | Check_flag -> "check-flag"
    | Check_turn -> "check-turn"

  let map_value_ids _ v = v
  let map_local_ids _ l = l

  let pp_local ppf = function
    | Rem -> Format.pp_print_string ppf "rem"
    | Entry { pending = []; _ } -> Format.pp_print_string ppf "entry[done]"
    | Entry { pending = (v, r) :: _; phase; _ } ->
      Format.fprintf ppf "entry[node=%d,role=%d,%s]" v r (pp_phase phase)
    | Crit _ -> Format.pp_print_string ppf "crit"
    | Exit { to_release } ->
      Format.fprintf ppf "exit[%d left]" (List.length to_release)

  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Empty.pp
end
