open Anonmem

module Make (P : Protocol.PROTOCOL) = struct
  type sym = {
    sigma : int array;  (** process permutation: [q] plays the role of [sigma.(q)] *)
    sigma_inv : int array;  (** inverse of [sigma] *)
    pi : int array;  (** induced physical-register permutation *)
    pi_inv : int array;  (** inverse of [pi] *)
    rho : (int * int) array;  (** identifier relabeling, as (old, new) pairs *)
    rho_map : int -> int;
        (** [rho] as a precomputed O(1) map (direct-indexed table for the
            small ids every real configuration uses) *)
  }

  let invert_perm p =
    let inv = Array.make (Array.length p) 0 in
    Array.iteri (fun i j -> inv.(j) <- i) p;
    inv

  (* Identifier relabeling as a constant-time function. Ids are small in
     every real configuration, so a direct-indexed table covers them; the
     pair-scan fallback (with early exit) only exists for pathological
     ids. *)
  let rho_fun rho =
    if Array.length rho = 0 then Fun.id
    else begin
      let max_id =
        Array.fold_left (fun acc (a, b) -> max acc (max a b)) 0 rho
      in
      if max_id <= 65_535 then begin
        let tbl = Array.init (max_id + 1) Fun.id in
        Array.iter (fun (a, b) -> tbl.(a) <- b) rho;
        fun i -> if i >= 0 && i <= max_id then Array.unsafe_get tbl i else i
      end
      else
        let len = Array.length rho in
        fun i ->
          let rec go k =
            if k >= len then i
            else
              let a, b = rho.(k) in
              if a = i then b else go (k + 1)
          in
          go 0
    end

  let identity ~n ~m =
    {
      sigma = Array.init n Fun.id;
      sigma_inv = Array.init n Fun.id;
      pi = Array.init m Fun.id;
      pi_inv = Array.init m Fun.id;
      rho = [||];
      rho_map = Fun.id;
    }

  let is_identity s =
    let n = Array.length s.sigma in
    let rec go q = q >= n || (s.sigma.(q) = q && go (q + 1)) in
    go 0

  (* A triple (sigma, pi, rho) is an automorphism of the configuration iff
     - sigma fixes the input vector ([Stdlib.compare] equality, matching
       the explorer's structural state equality);
     - pi, defined as nu_{sigma(0)} o nu_0^{-1}, satisfies
       pi o nu_q = nu_{sigma(q)} for every q, i.e. relabeled processes
       address physical registers exactly as their images do;
     - rho sends ids.(q) to ids.(sigma q) and fixes everything else, in
       particular the reserved empty value 0 (we reject any sigma that
       would relabel an id 0 across the zero/non-zero boundary).
     Under those conditions relabeling commutes with [P.step] for
     symmetric protocols, so the orbit of a reachable state is reachable
     and property verdicts transfer (DESIGN.md §9).

     Rejection is the hot path when the group is enumerated, so every
     scan below stops at the first mismatch. *)
  let admissible ~ids ~inputs ~namings sigma =
    let n = Array.length sigma in
    let rec inputs_ok q =
      q >= n
      || (Stdlib.compare inputs.(sigma.(q)) inputs.(q) = 0
         && (ids.(q) = 0) = (ids.(sigma.(q)) = 0)
         && inputs_ok (q + 1))
    in
    if not (inputs_ok 0) then None
    else begin
      let pi = Naming.compose namings.(sigma.(0)) (Naming.invert namings.(0)) in
      let rec namings_ok q =
        q >= n
        || (Naming.equal (Naming.compose pi namings.(q)) namings.(sigma.(q))
           && namings_ok (q + 1))
      in
      if not (namings_ok 0) then None
      else begin
        let rho = ref [] in
        for q = n - 1 downto 0 do
          if ids.(q) <> ids.(sigma.(q)) then
            rho := (ids.(q), ids.(sigma.(q))) :: !rho
        done;
        let rho = Array.of_list !rho in
        let pi = Naming.to_array pi in
        Some
          {
            sigma;
            sigma_inv = invert_perm sigma;
            pi;
            pi_inv = invert_perm pi;
            rho;
            rho_map = rho_fun rho;
          }
      end
    end

  let max_procs = 7

  (* The reduction silently explores the full graph in exactly these two
     cases; callers surface the flag instead of hiding the degradation
     (Checker_stats.degraded, `coordctl … --canon` notice). *)
  let degraded ~n = (not P.symmetric) || n > max_procs

  let group ~ids ~inputs ~namings =
    let n = Array.length ids in
    let m = Naming.size namings.(0) in
    if degraded ~n then [ identity ~n ~m ]
    else
      Naming.all n
      |> List.filter_map (fun perm ->
             admissible ~ids ~inputs ~namings (Naming.to_array perm))

  let apply sym mem locals =
    let f = sym.rho_map in
    let mem' = Array.copy mem in
    Array.iteri (fun k v -> mem'.(sym.pi.(k)) <- P.map_value_ids f v) mem;
    let locals' = Array.copy locals in
    Array.iteri (fun q l -> locals'.(sym.sigma.(q)) <- P.map_local_ids f l) locals;
    (mem', locals')

  (* Structural order on (mem, locals) pairs. The representative must be
     chosen structurally, not by encoded key: interning codes depend on
     discovery order, which differs across runs and domain counts. *)
  let compare_image (m1, l1) (m2, l2) =
    let c = ref 0 in
    let k = ref 0 in
    let lm = Array.length m1 in
    while !c = 0 && !k < lm do
      c := P.Value.compare m1.(!k) m2.(!k);
      incr k
    done;
    let q = ref 0 in
    let ln = Array.length l1 in
    while !c = 0 && !q < ln do
      c := P.compare_local l1.(!q) l2.(!q);
      incr q
    done;
    !c

  (* Reference canonizer: materialize every orbit image and sort. Kept as
     the oracle the incremental path below is cross-checked against (and
     as the spec of what "canonical" means); the explorers use the
     incremental path exclusively. *)
  let canonize syms mem locals =
    match syms with
    | [] | [ _ ] -> (mem, locals, 1)
    | syms ->
      let images =
        List.map
          (fun s -> if is_identity s then (mem, locals) else apply s mem locals)
          syms
      in
      let sorted = List.sort_uniq compare_image images in
      let best = List.hd sorted in
      (fst best, snd best, List.length sorted)

  (* ------------------------------------------------------------------ *)
  (* incremental canonicalization                                        *)
  (* ------------------------------------------------------------------ *)

  (* The incremental path rewrites the lex-min search in the interned
     code space of the exploration's codec. Per state it computes the
     code vector once, then walks the group comparing each image to the
     current best slot by slot IN CODES (codes witness structural
     equality exactly: the codec interns by [Value.compare] /
     [compare_local]); only the single first-differing slot is compared
     structurally to decide direction, because code order is
     discovery-order noise. Most triples die at their first differing
     slot without an image ever being materialized — those rejections
     are the [pruned] counter. The per-sym image of each interned code
     ([vtab]/[ltab]) is memoized, so [map_value_ids]/[map_local_ids]
     runs once per (sym, value) pair for the whole exploration: the
     orbit data a successor needs is a cache hit away from what its
     parent already paid for.

     A ctx is single-threaded by construction (one per worker domain);
     only the codec behind [value_code]/[local_code] is shared, and that
     is CAS-safe. *)
  type ctx = {
    syms : sym array;
    id_index : int;  (* position of the identity in [syms] *)
    order : int;
    value_code : P.Value.t -> int;
    local_code : P.local -> int;
    pack : int array -> int array -> string;
    vtab : (int * P.Value.t) option array array;
        (* vtab.(s).(c): (code, value) of the rho_s-image of the value
           interned at code [c] *)
    ltab : (int * P.local) option array array;
    (* scratch, sized (m, n) once per exploration *)
    vc : int array;  (* code vector of the state being canonized *)
    lc : int array;
    best_mem : P.Value.t array;
    best_loc : P.local array;
    best_vc : int array;
    best_lc : int array;
    mutable best_fresh : bool;
        (* the best buffers hold a non-identity image (false: the state
           itself is still the best) *)
    mutable hint : int;
        (* sym that minimized the previous state; tried first, because
           BFS expands siblings back to back and siblings overwhelmingly
           share their minimizer — starting low makes every later
           rejection a first-slot code mismatch *)
    mutable pruned : int;
  }

  let make_ctx ~syms ~value_code ~local_code ~pack ~init:(mem0, locals0) =
    let syms = Array.of_list syms in
    let id_index =
      let rec go i =
        if i >= Array.length syms then 0
        else if is_identity syms.(i) then i
        else go (i + 1)
      in
      go 0
    in
    let m = Array.length mem0 and n = Array.length locals0 in
    {
      syms;
      id_index;
      order = Array.length syms;
      value_code;
      local_code;
      pack;
      vtab = Array.map (fun _ -> [||]) syms;
      ltab = Array.map (fun _ -> [||]) syms;
      vc = Array.make m 0;
      lc = Array.make n 0;
      best_mem = Array.make m P.Value.init;
      best_loc = Array.make n locals0.(0);
      best_vc = Array.make m 0;
      best_lc = Array.make n 0;
      best_fresh = false;
      hint = id_index;
      pruned = 0;
    }

  let pruned ctx = ctx.pruned

  let grow row c =
    let len = Array.length row in
    if c < len then row
    else begin
      let row' = Array.make (max 64 (max (2 * len) (c + 1))) None in
      Array.blit row 0 row' 0 len;
      row'
    end

  (* (code, value) of the rho_s-image of the value whose code is [c] and
     whose content is [v]; memoized on (s, c). *)
  let mapped_v ctx s c v =
    let row = grow ctx.vtab.(s) c in
    if row != ctx.vtab.(s) then ctx.vtab.(s) <- row;
    match row.(c) with
    | Some cv -> cv
    | None ->
      let v' = P.map_value_ids ctx.syms.(s).rho_map v in
      let cv = (ctx.value_code v', v') in
      row.(c) <- Some cv;
      cv

  let mapped_l ctx s c l =
    let row = grow ctx.ltab.(s) c in
    if row != ctx.ltab.(s) then ctx.ltab.(s) <- row;
    match row.(c) with
    | Some cl -> cl
    | None ->
      let l' = P.map_local_ids ctx.syms.(s).rho_map l in
      let cl = (ctx.local_code l', l') in
      row.(c) <- Some cl;
      cl

  (* Intern the state's codes into the ctx scratch and return its packed
     key (the key of the state AS IS, before canonicalization — what the
     explorers' raw-successor cache is indexed by). Must be followed by
     [canonize_keyed] on the same state before the ctx is reused. *)
  let state_key ctx mem locals =
    let m = Array.length mem and n = Array.length locals in
    for k = 0 to m - 1 do
      ctx.vc.(k) <- ctx.value_code mem.(k)
    done;
    for q = 0 to n - 1 do
      ctx.lc.(q) <- ctx.local_code locals.(q)
    done;
    ctx.pack ctx.vc ctx.lc

  (* Lex-least orbit element of the state whose codes [state_key] just
     loaded, its packed key, and the orbit size. [raw] is the key
     [state_key] returned; it is handed back unchanged when the state is
     already canonical so the common case packs exactly once. The
     returned arrays are the inputs themselves when the state is already
     canonical, fresh copies otherwise — never the scratch buffers. *)
  let canonize_keyed ctx ~raw mem locals =
    let m = Array.length mem and n = Array.length locals in
    ctx.best_fresh <- false;
    Array.blit ctx.vc 0 ctx.best_vc 0 m;
    Array.blit ctx.lc 0 ctx.best_lc 0 n;
    (* count = number of syms seen so far whose image equals the current
       best. Whenever a strictly smaller image appears it resets to 1, so
       at the end it is exactly the stabilizer order of the minimum (any
       sym mapping the state to the final best either set it or tied
       it), and orbit = |G| / |stabilizer|. *)
    let count = ref 1 in
    let consider s =
      if s <> ctx.id_index then begin
        let sym = ctx.syms.(s) in
        (* first slot where the image differs from best, in code space *)
        let diff_mem = ref (-1) in
        let j = ref 0 in
        while !diff_mem < 0 && !j < m do
          let src = sym.pi_inv.(!j) in
          let c, _ = mapped_v ctx s ctx.vc.(src) mem.(src) in
          if c <> ctx.best_vc.(!j) then diff_mem := !j;
          incr j
        done;
        let diff_loc = ref (-1) in
        if !diff_mem < 0 then begin
          let q = ref 0 in
          while !diff_loc < 0 && !q < n do
            let src = sym.sigma_inv.(!q) in
            let c, _ = mapped_l ctx s ctx.lc.(src) locals.(src) in
            if c <> ctx.best_lc.(!q) then diff_loc := !q;
            incr q
          done
        end;
        if !diff_mem < 0 && !diff_loc < 0 then incr count
        else begin
          (* one structural comparison at the first differing slot
             decides the direction; codes only witness (in)equality *)
          let c =
            if !diff_mem >= 0 then begin
              let j = !diff_mem in
              let src = sym.pi_inv.(j) in
              let _, v = mapped_v ctx s ctx.vc.(src) mem.(src) in
              let bv = if ctx.best_fresh then ctx.best_mem.(j) else mem.(j) in
              P.Value.compare v bv
            end
            else begin
              let q = !diff_loc in
              let src = sym.sigma_inv.(q) in
              let _, l = mapped_l ctx s ctx.lc.(src) locals.(src) in
              let bl = if ctx.best_fresh then ctx.best_loc.(q) else locals.(q) in
              P.compare_local l bl
            end
          in
          if c > 0 then ctx.pruned <- ctx.pruned + 1
          else begin
            (* new minimum: materialize its image (memoized slot lookups,
               no fresh value allocation) into the best buffers *)
            for k = 0 to m - 1 do
              let src = sym.pi_inv.(k) in
              let cc, v = mapped_v ctx s ctx.vc.(src) mem.(src) in
              ctx.best_vc.(k) <- cc;
              ctx.best_mem.(k) <- v
            done;
            for q = 0 to n - 1 do
              let src = sym.sigma_inv.(q) in
              let cc, l = mapped_l ctx s ctx.lc.(src) locals.(src) in
              ctx.best_lc.(q) <- cc;
              ctx.best_loc.(q) <- l
            done;
            ctx.best_fresh <- true;
            ctx.hint <- s;
            count := 1
          end
        end
      end
    in
    let hint = ctx.hint in
    consider hint;
    for s = 0 to ctx.order - 1 do
      if s <> hint then consider s
    done;
    assert (ctx.order mod !count = 0) (* orbit-stabilizer *);
    let orbit = ctx.order / !count in
    if ctx.best_fresh then
      ( Array.sub ctx.best_mem 0 m,
        Array.sub ctx.best_loc 0 n,
        ctx.pack ctx.best_vc ctx.best_lc,
        orbit )
    else (mem, locals, raw, orbit)
end
