open Anonmem

module Make (P : Protocol.PROTOCOL) = struct
  type sym = {
    sigma : int array;  (** process permutation: [q] plays the role of [sigma.(q)] *)
    pi : int array;  (** induced physical-register permutation *)
    rho : (int * int) array;  (** identifier relabeling, as (old, new) pairs *)
  }

  let identity ~n ~m =
    { sigma = Array.init n Fun.id; pi = Array.init m Fun.id; rho = [||] }

  let is_identity s =
    let id = ref true in
    Array.iteri (fun q q' -> if q <> q' then id := false) s.sigma;
    !id

  let rho_fun rho =
    if Array.length rho = 0 then Fun.id
    else fun i ->
      let r = ref i in
      Array.iter (fun (a, b) -> if a = i then r := b) rho;
      !r

  (* A triple (sigma, pi, rho) is an automorphism of the configuration iff
     - sigma fixes the input vector ([Stdlib.compare] equality, matching
       the explorer's structural state equality);
     - pi, defined as nu_{sigma(0)} o nu_0^{-1}, satisfies
       pi o nu_q = nu_{sigma(q)} for every q, i.e. relabeled processes
       address physical registers exactly as their images do;
     - rho sends ids.(q) to ids.(sigma q) and fixes everything else, in
       particular the reserved empty value 0 (we reject any sigma that
       would relabel an id 0 across the zero/non-zero boundary).
     Under those conditions relabeling commutes with [P.step] for
     symmetric protocols, so the orbit of a reachable state is reachable
     and property verdicts transfer (DESIGN.md §9). *)
  let admissible ~ids ~inputs ~namings sigma =
    let n = Array.length sigma in
    let ok = ref true in
    for q = 0 to n - 1 do
      if Stdlib.compare inputs.(sigma.(q)) inputs.(q) <> 0 then ok := false;
      if ids.(q) = 0 <> (ids.(sigma.(q)) = 0) then ok := false
    done;
    if not !ok then None
    else begin
      let pi = Naming.compose namings.(sigma.(0)) (Naming.invert namings.(0)) in
      for q = 0 to n - 1 do
        if not (Naming.equal (Naming.compose pi namings.(q)) namings.(sigma.(q)))
        then ok := false
      done;
      if not !ok then None
      else begin
        let rho = ref [] in
        for q = n - 1 downto 0 do
          if ids.(q) <> ids.(sigma.(q)) then
            rho := (ids.(q), ids.(sigma.(q))) :: !rho
        done;
        Some { sigma; pi = Naming.to_array pi; rho = Array.of_list !rho }
      end
    end

  let max_procs = 7

  let group ~ids ~inputs ~namings =
    let n = Array.length ids in
    let m = Naming.size namings.(0) in
    if (not P.symmetric) || n > max_procs then [ identity ~n ~m ]
    else
      Naming.all n
      |> List.filter_map (fun perm ->
             admissible ~ids ~inputs ~namings (Naming.to_array perm))

  let apply sym mem locals =
    let f = rho_fun sym.rho in
    let mem' = Array.copy mem in
    Array.iteri (fun k v -> mem'.(sym.pi.(k)) <- P.map_value_ids f v) mem;
    let locals' = Array.copy locals in
    Array.iteri (fun q l -> locals'.(sym.sigma.(q)) <- P.map_local_ids f l) locals;
    (mem', locals')

  (* Structural order on (mem, locals) pairs. The representative must be
     chosen structurally, not by encoded key: interning codes depend on
     discovery order, which differs across runs and domain counts. *)
  let compare_image (m1, l1) (m2, l2) =
    let c = ref 0 in
    let k = ref 0 in
    let lm = Array.length m1 in
    while !c = 0 && !k < lm do
      c := P.Value.compare m1.(!k) m2.(!k);
      incr k
    done;
    let q = ref 0 in
    let ln = Array.length l1 in
    while !c = 0 && !q < ln do
      c := P.compare_local l1.(!q) l2.(!q);
      incr q
    done;
    !c

  (* Lex-least element of the orbit of (mem, locals), plus the orbit
     size (number of distinct images). *)
  let canonize syms mem locals =
    match syms with
    | [] | [ _ ] -> (mem, locals, 1)
    | syms ->
      let images =
        List.map
          (fun s -> if is_identity s then (mem, locals) else apply s mem locals)
          syms
      in
      let sorted = List.sort_uniq compare_image images in
      let best = List.hd sorted in
      (fst best, snd best, List.length sorted)
end
