(** Symmetry reduction: canonical representatives of states under the
    automorphisms of a configuration.

    In the memory-anonymous model a configuration is (ids, inputs,
    namings). A triple (sigma, pi, rho) — a process permutation, the
    induced physical-register permutation and the induced identifier
    relabeling — is an {e automorphism} when relabeling a global state by
    it commutes with every step of the protocol; exploring only the
    lex-least element of each orbit then yields a quotient graph that is
    bisimilar to the full one (soundness argument in DESIGN.md §9).

    The group is computed exactly by filtering all [n!] process
    permutations (guarded to [n <= 7]) against the configuration:
    all-identical namings with identical inputs yield the full symmetric
    group (n! reduction); the rotation tuple of Theorem 3.4 with [n = m]
    yields the cyclic group of order [m]; generic namings yield only the
    identity. Protocols that compare identifiers for more than equality
    declare [symmetric = false] and always get the identity group — the
    reduction soundly degrades to no reduction. *)

module Make (P : Anonmem.Protocol.PROTOCOL) : sig
  type sym = {
    sigma : int array;
        (** process permutation: [q] plays the role of [sigma.(q)] *)
    pi : int array;  (** induced physical-register permutation *)
    rho : (int * int) array;
        (** identifier relabeling as (old, new) pairs; ids not listed are
            fixed, in particular the reserved empty value [0] *)
  }

  val identity : n:int -> m:int -> sym

  val is_identity : sym -> bool

  val group :
    ids:int array ->
    inputs:P.input array ->
    namings:Anonmem.Naming.t array ->
    sym list
  (** All automorphisms of the configuration. Always contains the
      identity; is exactly [[identity]] when [P.symmetric] is [false] or
      [n > 7]. *)

  val apply : sym -> P.Value.t array -> P.local array -> P.Value.t array * P.local array
  (** The image of a global state: fresh arrays with
      [mem'.(pi.(k)) = map_value_ids rho mem.(k)] and
      [locals'.(sigma.(q)) = map_local_ids rho locals.(q)]. *)

  val canonize :
    sym list -> P.Value.t array -> P.local array ->
    P.Value.t array * P.local array * int
  (** [canonize syms mem locals] is the lex-least element of the orbit
      under [syms] (by [Value.compare] on memory, then [compare_local] on
      locals) together with the orbit size (number of distinct images).
      With a trivial group the state is returned unchanged with orbit
      size 1. *)
end
