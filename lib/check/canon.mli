(** Symmetry reduction: canonical representatives of states under the
    automorphisms of a configuration.

    In the memory-anonymous model a configuration is (ids, inputs,
    namings). A triple (sigma, pi, rho) — a process permutation, the
    induced physical-register permutation and the induced identifier
    relabeling — is an {e automorphism} when relabeling a global state by
    it commutes with every step of the protocol; exploring only the
    lex-least element of each orbit then yields a quotient graph that is
    bisimilar to the full one (soundness argument in DESIGN.md §9).

    The group is computed exactly by filtering all [n!] process
    permutations (guarded to [n <= 7]) against the configuration:
    all-identical namings with identical inputs yield the full symmetric
    group (n! reduction); the rotation tuple of Theorem 3.4 with [n = m]
    yields the cyclic group of order [m]; generic namings yield only the
    identity. Protocols that compare identifiers for more than equality
    declare [symmetric = false] and always get the identity group — the
    reduction soundly degrades to no reduction (see {!Make.degraded}).

    Two canonizers are provided. {!Make.canonize} is the reference
    implementation: it materializes every orbit image and sorts. The
    {!Make.ctx} family is the incremental path the explorers use: the
    lex-min search runs in the interned code space of the exploration's
    {!Codec}, memoizes per-automorphism images of every interned value,
    and rejects most automorphisms at their first differing slot without
    allocating an image. Both choose the same representative — the
    structural lex-min — and report the same orbit size; the test suite
    cross-checks them state by state. *)

module Make (P : Anonmem.Protocol.PROTOCOL) : sig
  type sym = {
    sigma : int array;
        (** process permutation: [q] plays the role of [sigma.(q)] *)
    sigma_inv : int array;  (** inverse of [sigma] *)
    pi : int array;  (** induced physical-register permutation *)
    pi_inv : int array;  (** inverse of [pi] *)
    rho : (int * int) array;
        (** identifier relabeling as (old, new) pairs; ids not listed are
            fixed, in particular the reserved empty value [0] *)
    rho_map : int -> int;
        (** [rho] as a precomputed constant-time function *)
  }

  val identity : n:int -> m:int -> sym

  val is_identity : sym -> bool
  (** Early-exits at the first displaced process. *)

  val max_procs : int
  (** Group enumeration guard: configurations with more processes get the
      identity group (the [n!] filter would be prohibitive). *)

  val degraded : n:int -> bool
  (** [true] iff [group] falls back to the identity group for an
      [n]-process configuration — because [P.symmetric] is [false] or
      [n > max_procs] — i.e. [~reduction:Canon] would silently explore
      the full graph. Callers are expected to surface this
      ({!Checker_stats.t.degraded}, the [coordctl] [--canon] notice)
      rather than let the degradation pass unannounced. *)

  val group :
    ids:int array ->
    inputs:P.input array ->
    namings:Anonmem.Naming.t array ->
    sym list
  (** All automorphisms of the configuration. Always contains the
      identity; is exactly [[identity]] when {!degraded}. *)

  val apply : sym -> P.Value.t array -> P.local array -> P.Value.t array * P.local array
  (** The image of a global state: fresh arrays with
      [mem'.(pi.(k)) = map_value_ids rho mem.(k)] and
      [locals'.(sigma.(q)) = map_local_ids rho locals.(q)]. *)

  val canonize :
    sym list -> P.Value.t array -> P.local array ->
    P.Value.t array * P.local array * int
  (** [canonize syms mem locals] is the lex-least element of the orbit
      under [syms] (by [Value.compare] on memory, then [compare_local] on
      locals) together with the orbit size (number of distinct images).
      With a trivial group the state is returned unchanged with orbit
      size 1. Reference implementation — materializes the whole orbit;
      the explorers use the incremental path below. *)

  (** {2 Incremental canonicalization} *)

  type ctx
  (** Reusable canonicalization context: the group as an array, scratch
      buffers sized to the configuration, and per-automorphism memo
      tables of value/local images indexed by interned code. One ctx per
      worker domain; a ctx must not be shared across domains (the codec
      behind the code closures may be — it is CAS-safe). Reconstructible
      from the configuration at any time and never serialized. *)

  val make_ctx :
    syms:sym list ->
    value_code:(P.Value.t -> int) ->
    local_code:(P.local -> int) ->
    pack:(int array -> int array -> string) ->
    init:(P.Value.t array * P.local array) ->
    ctx
  (** [make_ctx ~syms ~value_code ~local_code ~pack ~init] builds a ctx
      for the group [syms]. [value_code]/[local_code] intern values into
      dense codes that are equality-faithful for [P.Value.compare] /
      [P.compare_local] (codes need not be order-faithful — the search
      only ever compares codes for equality, and decides direction with
      one structural comparison at the first differing slot). [pack]
      turns a (value-code vector, local-code vector) pair into the
      explorer's table key ({!Codec.key_of_codes}). [init] is any state
      of the configuration, used for buffer sizes and witnesses. *)

  val state_key : ctx -> P.Value.t array -> P.local array -> string
  (** Intern the state's codes into the ctx scratch and return the packed
      key of the state {e as is} (pre-canonicalization) — the key the
      explorers' raw-successor cache is indexed by. Must be followed by
      {!canonize_keyed} on the same state before the ctx is reused. *)

  val canonize_keyed :
    ctx -> raw:string -> P.Value.t array -> P.local array ->
    P.Value.t array * P.local array * string * int
  (** [canonize_keyed ctx ~raw mem locals] is the lex-least orbit element
      of the state whose codes the preceding {!state_key} call loaded,
      together with its packed key and the orbit size. [raw] is the key
      that {!state_key} call returned; it is handed back as the key when
      the state is already canonical, so the common case packs exactly
      once. Agrees with {!canonize} on representative and orbit. Returns
      the input arrays themselves when the state is already canonical,
      fresh copies otherwise. *)

  val pruned : ctx -> int
  (** Automorphisms rejected at their first differing slot without an
      image being materialized, cumulative over the ctx's lifetime (the
      "signature-pruned triples" statistic). *)
end
