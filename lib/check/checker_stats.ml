type depth_sample = {
  depth : int;
  frontier : int;
  candidates : int;
  discovered : int;
  duplicates : int;
}

type stop_reason =
  | Completed
  | Budget
  | Interrupted
  | Deadline
  | Oom
  | Fault
  | Disk_full

let stop_reason_tag = function
  | Completed -> "completed"
  | Budget -> "budget"
  | Interrupted -> "interrupted"
  | Deadline -> "deadline"
  | Oom -> "oom"
  | Fault -> "fault"
  | Disk_full -> "disk_full"

type t = {
  protocol : string;
  n_procs : int;
  n_registers : int;
  domains : int;
  n_states : int;
  n_transitions : int;
  max_depth : int;
  max_frontier : int;
  candidates : int;
  dedup_hits : int;
  shard_load : int array;
  elapsed_s : float;
  complete : bool;
  stop : stop_reason;
  restarts : int;
  recoveries : int;
  canon : bool;
  degraded : bool;
  group_order : int;
  orbit_sum : int;
  sig_pruned : int;
  canon_hits : int;
  cutover : int option;
  steals : int;
  handoffs : int;
  spilled_runs : int;
  disk_probes : int;
  depths : depth_sample list;
}

let now = Unix.gettimeofday

let states_per_sec t =
  if t.elapsed_s <= 0. then 0. else float_of_int t.n_states /. t.elapsed_s

let dedup_rate t =
  if t.candidates = 0 then 0.
  else float_of_int t.dedup_hits /. float_of_int t.candidates

let reduction_factor t =
  if t.n_states = 0 then 1.
  else float_of_int t.orbit_sum /. float_of_int t.n_states

let equal_ignoring_time a b =
  (* [sig_pruned]/[canon_hits] are cache-effectiveness counters, not graph
     facts: they vary with domain count and with where a resume restarted
     its (cold) caches, so the bit-identity relation must ignore them.
     [restarts] likewise counts infrastructure weather (how many worker
     domains died and were respawned), not anything about the graph —
     as do [recoveries] (whole attempts [with_recovery] retried),
     [steals]/[handoffs] (scheduling luck in the sharded engine)
     and [spilled_runs]/[disk_probes] (where the memory watermark
     happened to trip, and how much of a resumed run's probing the
     interrupted run had already paid for). *)
  let scrub t =
    {
      t with
      elapsed_s = 0.;
      sig_pruned = 0;
      canon_hits = 0;
      restarts = 0;
      recoveries = 0;
      steals = 0;
      handoffs = 0;
      spilled_runs = 0;
      disk_probes = 0;
    }
  in
  scrub a = scrub b

let shard_imbalance t =
  (* max over mean shard population: 1.0 is a perfect split *)
  let n = Array.length t.shard_load in
  if n = 0 || t.n_states = 0 then 1.
  else
    let mx = Array.fold_left max 0 t.shard_load in
    float_of_int (mx * n) /. float_of_int t.n_states

let pp ppf t =
  Format.fprintf ppf
    "@[<v>checker: %s n=%d m=%d (%d domain%s)@,\
     states %d (%s), transitions %d, depth %d, peak frontier %d@,\
     throughput %.0f states/s (%.3f s)@,\
     dedup: %d/%d candidate successors were duplicates (%.1f%% hit-rate)@,\
     shard load: [%s] (imbalance %.2fx)"
    t.protocol t.n_procs t.n_registers t.domains
    (if t.domains = 1 then "" else "s")
    t.n_states
    (if t.complete then "complete"
     else "TRUNCATED: " ^ stop_reason_tag t.stop)
    t.n_transitions t.max_depth t.max_frontier (states_per_sec t) t.elapsed_s
    t.dedup_hits t.candidates
    (100. *. dedup_rate t)
    (String.concat "; " (Array.to_list (Array.map string_of_int t.shard_load)))
    (shard_imbalance t);
  if t.canon then begin
    Format.fprintf ppf
      "@,symmetry: group order %d, orbit sum %d (%.2fx reduction), %d \
       automorphisms pruned, %d cache hits"
      t.group_order t.orbit_sum (reduction_factor t) t.sig_pruned
      t.canon_hits;
    if t.degraded then
      Format.fprintf ppf
        "@,symmetry: DEGRADED — identity group only (protocol not \
         symmetric, or n > 7); the full graph was explored"
  end;
  (match t.cutover with
  | Some dep -> Format.fprintf ppf "@,parallel cutover at depth %d" dep
  | None -> ());
  if t.restarts > 0 then
    Format.fprintf ppf "@,supervision: %d worker domain restart%s" t.restarts
      (if t.restarts = 1 then "" else "s");
  if t.recoveries > 0 then
    Format.fprintf ppf
      "@,recovery: %d attempt%s retried from the newest salvageable state"
      t.recoveries
      (if t.recoveries = 1 then "" else "s");
  if t.steals > 0 || t.handoffs > 0 then
    Format.fprintf ppf
      "@,sharding: %d cross-shard handoff batches, %d frontier batches stolen"
      t.handoffs t.steals;
  if t.spilled_runs > 0 || t.disk_probes > 0 then
    Format.fprintf ppf
      "@,disk visited: %d sorted runs spilled, %d batched probes" t.spilled_runs
      t.disk_probes;
  Format.fprintf ppf "@]"

let pp_depths ppf t =
  Format.fprintf ppf "@[<v>%-6s %10s %12s %12s %12s@," "depth" "frontier"
    "candidates" "discovered" "duplicates";
  List.iter
    (fun d ->
      Format.fprintf ppf "%-6d %10d %12d %12d %12d@," d.depth d.frontier
        d.candidates d.discovered d.duplicates)
    t.depths;
  Format.fprintf ppf "@]"

(* Hand-rolled JSON so BENCH_*.json entries need no extra dependency. *)
let to_json t =
  let buf = Buffer.create 512 in
  let field ?(last = false) name value =
    Buffer.add_string buf (Printf.sprintf "  %S: %s%s\n" name value
                             (if last then "" else ","))
  in
  Buffer.add_string buf "{\n";
  field "protocol" (Printf.sprintf "%S" t.protocol);
  field "n_procs" (string_of_int t.n_procs);
  field "n_registers" (string_of_int t.n_registers);
  field "domains" (string_of_int t.domains);
  field "states" (string_of_int t.n_states);
  field "transitions" (string_of_int t.n_transitions);
  field "max_depth" (string_of_int t.max_depth);
  field "max_frontier" (string_of_int t.max_frontier);
  field "candidates" (string_of_int t.candidates);
  field "dedup_hits" (string_of_int t.dedup_hits);
  field "dedup_rate" (Printf.sprintf "%.4f" (dedup_rate t));
  field "shard_load"
    (Printf.sprintf "[%s]"
       (String.concat ", "
          (Array.to_list (Array.map string_of_int t.shard_load))));
  field "elapsed_s" (Printf.sprintf "%.6f" t.elapsed_s);
  field "states_per_sec" (Printf.sprintf "%.1f" (states_per_sec t));
  field "canon" (string_of_bool t.canon);
  field "degraded" (string_of_bool t.degraded);
  field "group_order" (string_of_int t.group_order);
  field "orbit_sum" (string_of_int t.orbit_sum);
  field "sig_pruned" (string_of_int t.sig_pruned);
  field "canon_cache_hits" (string_of_int t.canon_hits);
  field "reduction_factor" (Printf.sprintf "%.4f" (reduction_factor t));
  (match t.cutover with
  | Some dep -> field "cutover" (string_of_int dep)
  | None -> field "cutover" "null");
  field "stop" (Printf.sprintf "%S" (stop_reason_tag t.stop));
  field "restarts" (string_of_int t.restarts);
  field "recoveries" (string_of_int t.recoveries);
  field "steals" (string_of_int t.steals);
  field "handoffs" (string_of_int t.handoffs);
  field "spilled_runs" (string_of_int t.spilled_runs);
  field "disk_probes" (string_of_int t.disk_probes);
  field ~last:true "complete" (string_of_bool t.complete);
  Buffer.add_string buf "}";
  Buffer.contents buf
