(** Observability for the model checker.

    Every exploration (sequential or frontier-parallel) can report what it
    did: states per second, the frontier profile per BFS depth, how often
    candidate successors deduplicated against already-known states, and how
    evenly the state space spread over the hash-partitioned shards. The
    record is plain data so benchmark harnesses can serialize it
    (see {!to_json}) into BENCH_*.json entries. *)

type depth_sample = {
  depth : int;  (** BFS generation *)
  frontier : int;  (** states expanded at this depth *)
  candidates : int;  (** successor states generated *)
  discovered : int;  (** genuinely new states interned *)
  duplicates : int;  (** candidates that deduplicated away *)
}

(** Why an exploration stopped. [Completed] iff [complete = true]; every
    other reason describes what truncated the run. Deterministic for
    identical settings (unlike wall-clock), so it participates in
    {!equal_ignoring_time}. *)
type stop_reason =
  | Completed  (** the reachable graph was exhausted *)
  | Budget  (** [max_states] truncated the search *)
  | Interrupted  (** SIGINT/SIGTERM or {!Snapshot.request_stop} *)
  | Deadline  (** the [~deadline_s] wall-clock budget elapsed *)
  | Oom
      (** [Out_of_memory] was degraded into a flushed boundary instead of
          a crash *)
  | Fault
      (** the supervised parallel engine gave up (a stalled domain
          outlived its patience budget) and salvaged the last boundary *)
  | Disk_full
      (** the disk-backed visited set hit its byte quota: spilling
          stopped and the run was cut at an exact boundary instead of
          corrupting the run set *)

val stop_reason_tag : stop_reason -> string
(** Lower-case tag, as rendered in {!to_json}. *)

type t = {
  protocol : string;
  n_procs : int;
  n_registers : int;
  domains : int;  (** 1 for the sequential reference explorer *)
  n_states : int;
  n_transitions : int;
  max_depth : int;
  max_frontier : int;
  candidates : int;
      (** states examined for interning: the initial state plus every
          generated successor. On a complete run
          [candidates = n_states + dedup_hits]. *)
  dedup_hits : int;  (** total candidates that were already known *)
  shard_load : int array;  (** states owned per shard; [|n_states|] when
                               sequential *)
  elapsed_s : float;
  complete : bool;
  stop : stop_reason;  (** {!Completed} iff [complete] *)
  restarts : int;
      (** worker domains the supervised parallel engine detected dead and
          respawned; 0 outside supervised mode *)
  recoveries : int;
      (** whole exploration attempts {!Explore.Make.with_recovery}
          retried after a transient infrastructure failure (killed
          supervisor, stall abandonment, allocation failure, corrupt
          snapshot, injected I/O fault); 0 outside the recovery driver.
          Infrastructure weather, scrubbed by {!equal_ignoring_time}. *)
  canon : bool;  (** explored the symmetry quotient, not the full graph *)
  degraded : bool;
      (** [canon] was requested but the group silently fell back to the
          identity ([symmetric = false] protocol, or [n > 7]): the full
          graph was explored despite the Canon reduction being on *)
  group_order : int;  (** automorphism group order (1 = no reduction) *)
  orbit_sum : int;
      (** sum of orbit sizes over stored states = size of the full graph
          the quotient stands for; equals [n_states] when not [canon] *)
  sig_pruned : int;
      (** automorphisms rejected at their first differing slot by the
          incremental canonizer, without an image being materialized *)
  canon_hits : int;
      (** raw successors whose canonical form was served from the
          per-domain memo instead of a group walk *)
  cutover : int option;
      (** BFS depth at which the explorer switched from its sequential
          warm-up to parallel generations; [None] when the whole run
          stayed sequential (small frontier or [domains = 1]) *)
  steals : int;
      (** frontier batches an idle domain took from another shard's
          worklist (sharded engine); scheduling weather, scrubbed by
          {!equal_ignoring_time} *)
  handoffs : int;
      (** cross-shard candidate batches pushed over the SPSC mailboxes
          (sharded engine); depends on batch size and timing, scrubbed by
          {!equal_ignoring_time} *)
  spilled_runs : int;
      (** sorted immutable runs the disk-backed visited set wrote; 0 for
          in-RAM explorations *)
  disk_probes : int;
      (** batched sorted-merge membership probes against the on-disk
          runs; 0 for in-RAM explorations *)
  depths : depth_sample list;  (** oldest (depth 0) first *)
}

val now : unit -> float
(** Wall-clock seconds (the clock explorations are timed with). *)

val states_per_sec : t -> float

val dedup_rate : t -> float
(** Fraction of candidates (initial state included) that were already
    interned. *)

val reduction_factor : t -> float
(** [orbit_sum / n_states]: how many full-graph states each stored
    quotient state stands for. 1.0 when no symmetry reduction applied. *)

val shard_imbalance : t -> float
(** Largest shard over the ideal even split; 1.0 is perfectly balanced. *)

val equal_ignoring_time : t -> t -> bool
(** Structural equality of every field except [elapsed_s] (wall-clock can
    never reproduce), the cache-effectiveness counters [sig_pruned] and
    [canon_hits] (which depend on domain count and on where a resume
    restarted its cold caches), and the infrastructure-weather counters
    [restarts], [recoveries], [steals], [handoffs], [spilled_runs] and
    [disk_probes]
    (scheduling luck and watermark timing, not graph facts). This is the
    "bit-identical statistics"
    relation the checkpoint/resume tests assert: a truncated-then-resumed
    exploration must match an uninterrupted one on everything the clock
    and the caches don't touch — counts, depth profile, shard loads,
    orbit sums, cutover. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human summary. *)

val pp_depths : Format.formatter -> t -> unit
(** The per-depth frontier table. *)

val to_json : t -> string
(** A self-contained JSON object for BENCH_*.json tracking. *)
