open Anonmem

module Make (P : Protocol.PROTOCOL) = struct
  module VMap = Map.Make (struct
    type t = P.Value.t

    let compare = P.Value.compare
  end)

  module LMap = Map.Make (struct
    type t = P.local

    let compare = P.compare_local
  end)

  (* Interning table: a persistent map behind an [Atomic], extended by
     compare-and-set. Lookups are wait-free; a miss retries its CAS until
     it wins or someone else interned the same key. [next] rides in the
     same atomic cell so code assignment and map extension are one
     linearization point (Map.cardinal is O(n), far too slow to recompute
     per miss). *)
  type 'm slot = { map : 'm; next : int }

  type t = {
    vcodes : int VMap.t slot Atomic.t;
    locals : int LMap.t slot Atomic.t;
  }

  (* Two concrete copies of the interning loop: first-class functors over
     two different Map instantiations buy nothing here. *)
  let rec value_code t v =
    let s = Atomic.get t.vcodes in
    match VMap.find_opt v s.map with
    | Some c -> c
    | None ->
      if
        Atomic.compare_and_set t.vcodes s
          { map = VMap.add v s.next s.map; next = s.next + 1 }
      then s.next
      else value_code t v

  let rec local_code t l =
    let s = Atomic.get t.locals in
    match LMap.find_opt l s.map with
    | Some c -> c
    | None ->
      if
        Atomic.compare_and_set t.locals s
          { map = LMap.add l s.next s.map; next = s.next + 1 }
      then s.next
      else local_code t l

  let create () =
    {
      vcodes = Atomic.make { map = VMap.empty; next = 0 };
      locals = Atomic.make { map = LMap.empty; next = 0 };
    }

  let n_values t = (Atomic.get t.vcodes).next
  let n_locals t = (Atomic.get t.locals).next

  (* Plain-data image of the interning tables, for durable snapshots. The
     persistent maps hold only protocol values/locals and ints, so the
     dump marshals cleanly; [of_dump] rebuilds a live context whose
     encodings are byte-identical to the dumped one's. *)
  type dump = {
    d_values : int VMap.t;
    d_nvalues : int;
    d_locals : int LMap.t;
    d_nlocals : int;
  }

  let dump t =
    let v = Atomic.get t.vcodes and l = Atomic.get t.locals in
    { d_values = v.map; d_nvalues = v.next; d_locals = l.map;
      d_nlocals = l.next }

  let of_dump d =
    {
      vcodes = Atomic.make { map = d.d_values; next = d.d_nvalues };
      locals = Atomic.make { map = d.d_locals; next = d.d_nlocals };
    }

  (* Three bytes per slot: 16.7M distinct codes dwarfs any state budget
     the explorer accepts, and fixed width keeps every encoding of one
     state identical regardless of when its codes were interned. *)
  let width = 3

  let put b i c =
    if c > 0xFF_FFFF then failwith "Codec: more than 2^24 distinct codes";
    let o = width * i in
    Bytes.unsafe_set b o (Char.unsafe_chr (c land 0xff));
    Bytes.unsafe_set b (o + 1) (Char.unsafe_chr ((c lsr 8) land 0xff));
    Bytes.unsafe_set b (o + 2) (Char.unsafe_chr ((c lsr 16) land 0xff))

  let encode t mem locals =
    let m = Array.length mem and n = Array.length locals in
    let b = Bytes.create (width * (m + n)) in
    for k = 0 to m - 1 do
      put b k (value_code t mem.(k))
    done;
    for q = 0 to n - 1 do
      put b (m + q) (local_code t locals.(q))
    done;
    Bytes.unsafe_to_string b

  (* Same layout as [encode], from code vectors someone already interned —
     the incremental canonizer holds codes, not values, and must produce
     keys byte-identical to [encode]'s for the same state. *)
  let key_of_codes vcodes lcodes =
    let m = Array.length vcodes and n = Array.length lcodes in
    let b = Bytes.create (width * (m + n)) in
    for k = 0 to m - 1 do
      put b k vcodes.(k)
    done;
    for q = 0 to n - 1 do
      put b (m + q) lcodes.(q)
    done;
    Bytes.unsafe_to_string b

  let encode_solo t ~proc local mem =
    let m = Array.length mem in
    let b = Bytes.create (width * (m + 2)) in
    put b 0 proc;
    put b 1 (local_code t local);
    for k = 0 to m - 1 do
      put b (k + 2) (value_code t mem.(k))
    done;
    Bytes.unsafe_to_string b
end
