open Anonmem

(* Typed intern-table overflow. Raised instead of packing a code the key
   width cannot hold — a truncated id would silently alias two distinct
   states, which for a model checker is the worst possible failure mode
   (a missed violation). [kind] names the overflowing table. *)
exception Overflow of { kind : string; code : int; width : int }

let () =
  Printexc.register_printer (function
    | Overflow { kind; code; width } ->
      Some
        (Printf.sprintf
           "Codec.Overflow: %s code %d does not fit %d-byte keys (max %d); \
            re-run with wide keys"
           kind code width
           ((1 lsl (8 * width)) - 1))
    | _ -> None)

module Make (P : Protocol.PROTOCOL) = struct
  module VMap = Map.Make (struct
    type t = P.Value.t

    let compare = P.Value.compare
  end)

  module LMap = Map.Make (struct
    type t = P.local

    let compare = P.compare_local
  end)

  (* Interning table: a persistent map behind an [Atomic], extended by
     compare-and-set. Lookups are wait-free; a miss retries its CAS until
     it wins or someone else interned the same key. [next] rides in the
     same atomic cell so code assignment and map extension are one
     linearization point (Map.cardinal is O(n), far too slow to recompute
     per miss). *)
  type 'm slot = { map : 'm; next : int }

  type t = {
    vcodes : int VMap.t slot Atomic.t;
    locals : int LMap.t slot Atomic.t;
    width : int;  (* bytes per packed slot: 3 (default) or 4 (wide) *)
  }

  (* Two concrete copies of the interning loop: first-class functors over
     two different Map instantiations buy nothing here. *)
  let rec value_code t v =
    let s = Atomic.get t.vcodes in
    match VMap.find_opt v s.map with
    | Some c -> c
    | None ->
      if
        Atomic.compare_and_set t.vcodes s
          { map = VMap.add v s.next s.map; next = s.next + 1 }
      then s.next
      else value_code t v

  let rec local_code t l =
    let s = Atomic.get t.locals in
    match LMap.find_opt l s.map with
    | Some c -> c
    | None ->
      if
        Atomic.compare_and_set t.locals s
          { map = LMap.add l s.next s.map; next = s.next + 1 }
      then s.next
      else local_code t l

  (* Three bytes per slot by default: 16.7M distinct codes dwarfs any
     state budget the in-RAM explorer accepts, and fixed width keeps
     every encoding of one state identical regardless of when its codes
     were interned. [~wide] widens to four bytes per slot for runs whose
     intern tables may pass 2^24 entries (disk-bounded explorations);
     the two widths produce incomparable keys, so the width is part of
     the snapshot payload (format v4) and a resumed run always re-packs
     at the width of the interrupted one. *)
  let create ?(wide = false) () =
    {
      vcodes = Atomic.make { map = VMap.empty; next = 0 };
      locals = Atomic.make { map = LMap.empty; next = 0 };
      width = (if wide then 4 else 3);
    }

  let width t = t.width
  let n_values t = (Atomic.get t.vcodes).next
  let n_locals t = (Atomic.get t.locals).next

  (* Plain-data image of the interning tables, for durable snapshots. The
     persistent maps hold only protocol values/locals and ints, so the
     dump marshals cleanly; [of_dump] rebuilds a live context whose
     encodings are byte-identical to the dumped one's. *)
  type dump = {
    d_values : int VMap.t;
    d_nvalues : int;
    d_locals : int LMap.t;
    d_nlocals : int;
    d_width : int;
  }

  let dump t =
    let v = Atomic.get t.vcodes and l = Atomic.get t.locals in
    { d_values = v.map; d_nvalues = v.next; d_locals = l.map;
      d_nlocals = l.next; d_width = t.width }

  let of_dump d =
    {
      vcodes = Atomic.make { map = d.d_values; next = d.d_nvalues };
      locals = Atomic.make { map = d.d_locals; next = d.d_nlocals };
      width = d.d_width;
    }

  let put ~kind ~width b i c =
    if c lsr (8 * width) <> 0 || c < 0 then
      raise (Overflow { kind; code = c; width });
    let o = width * i in
    Bytes.unsafe_set b o (Char.unsafe_chr (c land 0xff));
    Bytes.unsafe_set b (o + 1) (Char.unsafe_chr ((c lsr 8) land 0xff));
    Bytes.unsafe_set b (o + 2) (Char.unsafe_chr ((c lsr 16) land 0xff));
    if width = 4 then
      Bytes.unsafe_set b (o + 3) (Char.unsafe_chr ((c lsr 24) land 0xff))

  let encode t mem locals =
    let width = t.width in
    let m = Array.length mem and n = Array.length locals in
    let b = Bytes.create (width * (m + n)) in
    for k = 0 to m - 1 do
      put ~kind:"value" ~width b k (value_code t mem.(k))
    done;
    for q = 0 to n - 1 do
      put ~kind:"local" ~width b (m + q) (local_code t locals.(q))
    done;
    Bytes.unsafe_to_string b

  (* Same layout as [encode], from code vectors someone already interned —
     the incremental canonizer holds codes, not values, and must produce
     keys byte-identical to [encode]'s for the same state. *)
  let key_of_codes t vcodes lcodes =
    let width = t.width in
    let m = Array.length vcodes and n = Array.length lcodes in
    let b = Bytes.create (width * (m + n)) in
    for k = 0 to m - 1 do
      put ~kind:"value" ~width b k vcodes.(k)
    done;
    for q = 0 to n - 1 do
      put ~kind:"local" ~width b (m + q) lcodes.(q)
    done;
    Bytes.unsafe_to_string b

  let encode_solo t ~proc local mem =
    let width = t.width in
    let m = Array.length mem in
    let b = Bytes.create (width * (m + 2)) in
    put ~kind:"proc" ~width b 0 proc;
    put ~kind:"local" ~width b 1 (local_code t local);
    for k = 0 to m - 1 do
      put ~kind:"value" ~width b (k + 2) (value_code t mem.(k))
    done;
    Bytes.unsafe_to_string b
end
