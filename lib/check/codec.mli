(** Compact state encoding for the explorers.

    Register values and local states are interned on the fly into dense
    integer codes, and a global state is packed into a short [string] key
    (3 bytes per slot, little-endian): first the [m] register codes, then
    the [n] local-state codes. Keys replace structural states in the
    explorers' hash tables — hashing and equality on a short flat string
    instead of a deep OCaml value.

    Interning is keyed by the protocol's own structural orders
    ([Value.compare], [compare_local]), so two states receive equal keys
    iff they are structurally equal. Codes are discovery-order dependent:
    keys from different [t] values (or different runs) are not
    comparable, and nothing outside one exploration may rely on a
    particular code assignment.

    The tables are lock-free (persistent maps behind [Atomic.t] with
    CAS-extension) and safe to share across domains. *)

module Make (P : Anonmem.Protocol.PROTOCOL) : sig
  type t
  (** Mutable interning context for one exploration. *)

  val create : unit -> t

  val encode : t -> P.Value.t array -> P.local array -> string
  (** [encode t mem locals] is the packed key of a global state. Length
      is [3 * (m + n)] bytes. *)

  val key_of_codes : int array -> int array -> string
  (** [key_of_codes vcodes lcodes] packs already-interned code vectors
      into a key, byte-identical to what [encode] produces for the state
      they were interned from. Used by the incremental canonizer, which
      works on codes and never re-touches the values. *)

  val encode_solo : t -> proc:int -> P.local -> P.Value.t array -> string
  (** Key for a (process, local state, memory) triple — the full input of
      a deterministic solo run, used to memoize obstruction-freedom
      checks. *)

  val value_code : t -> P.Value.t -> int
  (** Dense code of one register value (interning it if new). *)

  val local_code : t -> P.local -> int
  (** Dense code of one local state (interning it if new). *)

  val n_values : t -> int
  (** Number of distinct register values interned so far. *)

  val n_locals : t -> int
  (** Number of distinct local states interned so far. *)

  type dump
  (** Immutable plain-data image of the interning tables (protocol values,
      locals and ints only — safe to [Marshal]). Snapshots carry a dump so
      a resumed exploration re-encodes every state to the {e same} packed
      key bytes as the interrupted run, keeping shard assignment and
      statistics bit-identical across the resume. *)

  val dump : t -> dump

  val of_dump : dump -> t
  (** A fresh context that continues the dumped one: already-interned
      values keep their codes; new values extend from where it left off. *)
end
