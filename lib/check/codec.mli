(** Compact state encoding for the explorers.

    Register values and local states are interned on the fly into dense
    integer codes, and a global state is packed into a short [string] key
    (3 bytes per slot by default, little-endian): first the [m] register
    codes, then the [n] local-state codes. Keys replace structural states
    in the explorers' hash tables — hashing and equality on a short flat
    string instead of a deep OCaml value.

    Interning is keyed by the protocol's own structural orders
    ([Value.compare], [compare_local]), so two states receive equal keys
    iff they are structurally equal. Codes are discovery-order dependent:
    keys from different [t] values (or different runs) are not
    comparable, and nothing outside one exploration may rely on a
    particular code assignment.

    The tables are lock-free (persistent maps behind [Atomic.t] with
    CAS-extension) and safe to share across domains. *)

exception Overflow of { kind : string; code : int; width : int }
(** Raised when an interned code does not fit the context's key width
    (code ≥ 2²⁴ at the default 3-byte width). Packing would otherwise
    silently truncate the id and alias two distinct states — a missed
    violation. Recover by re-running with [create ~wide:true] (4-byte
    slots, max 2³² − 1 codes). [kind] names the overflowing table
    ("value", "local" or "proc"). *)

module Make (P : Anonmem.Protocol.PROTOCOL) : sig
  type t
  (** Mutable interning context for one exploration. *)

  val create : ?wide:bool -> unit -> t
  (** [create ()] packs 3 bytes per slot; [create ~wide:true ()] packs 4,
      for explorations whose intern tables may exceed 2²⁴ entries. Keys
      from contexts of different widths are never comparable. *)

  val width : t -> int
  (** Bytes per packed slot: 3, or 4 under [~wide]. *)

  val encode : t -> P.Value.t array -> P.local array -> string
  (** [encode t mem locals] is the packed key of a global state. Length
      is [width t * (m + n)] bytes.
      @raise Overflow if an interned code exceeds the key width. *)

  val key_of_codes : t -> int array -> int array -> string
  (** [key_of_codes t vcodes lcodes] packs already-interned code vectors
      into a key, byte-identical to what [encode] produces for the state
      they were interned from. Used by the incremental canonizer, which
      works on codes and never re-touches the values.
      @raise Overflow as for [encode]. *)

  val encode_solo : t -> proc:int -> P.local -> P.Value.t array -> string
  (** Key for a (process, local state, memory) triple — the full input of
      a deterministic solo run, used to memoize obstruction-freedom
      checks.
      @raise Overflow as for [encode]. *)

  val value_code : t -> P.Value.t -> int
  (** Dense code of one register value (interning it if new). *)

  val local_code : t -> P.local -> int
  (** Dense code of one local state (interning it if new). *)

  val n_values : t -> int
  (** Number of distinct register values interned so far. *)

  val n_locals : t -> int
  (** Number of distinct local states interned so far. *)

  type dump
  (** Immutable plain-data image of the interning tables (protocol values,
      locals and ints only — safe to [Marshal]). Snapshots carry a dump so
      a resumed exploration re-encodes every state to the {e same} packed
      key bytes as the interrupted run, keeping shard assignment and
      statistics bit-identical across the resume. The dump records the key
      width, so a resume continues at the width of the interrupted run. *)

  val dump : t -> dump

  val of_dump : dump -> t
  (** A fresh context that continues the dumped one: already-interned
      values keep their codes; new values extend from where it left off. *)
end
