open Anonmem

module Make (P : Protocol.PROTOCOL) = struct
  module F = Fault.Make (P)
  module R = F.R

  type run_result = {
    plan : Fault.plan;
    applied : Fault.applied list;
    decided : (int * P.output) list;
    stuck : int list;
    rt : R.t;
  }

  let prepare ?(seed = 1) ?namings ~ids ~inputs ~m () =
    let rng = Rng.create (seed * 2654435761) in
    let n = List.length ids in
    let namings =
      match namings with
      | Some ns -> ns
      | None -> Array.init n (fun _ -> Naming.identity m)
    in
    let cfg : R.config =
      {
        ids = Array.of_list ids;
        inputs = Array.of_list inputs;
        namings;
        rng = Some (Rng.split rng);
        record_trace = false;
      }
    in
    (R.create cfg, rng)

  let run_plan ?seed ?namings ?(prefix_steps = 64) ?(solo_bound = 4000) ~ids
      ~inputs ~m plan =
    let rt, rng = prepare ?seed ?namings ~ids ~inputs ~m () in
    let wrap, log = F.injector rt plan in
    ignore (R.run rt (wrap (Schedule.random rng)) ~max_steps:prefix_steps);
    (* solo periods: obstruction-freedom's promise to each survivor. The
       injector stays armed, so late crash points and pending rejoins
       still fire as the clock advances; survivors are re-scanned after
       every window because a rejoin can add one. *)
    let rec solo_phase seen =
      match
        List.find_opt
          (fun i ->
            (not (List.mem i seen))
            && not (Protocol.is_decided (R.status rt i)))
          (R.survivors rt)
      with
      | None -> ()
      | Some i ->
        ignore (R.run rt (wrap (Schedule.solo i)) ~max_steps:solo_bound);
        solo_phase (i :: seen)
    in
    solo_phase [];
    let applied = log () in
    let decided, stuck =
      List.fold_left
        (fun (dec, stk) i ->
          match R.status rt i with
          | Protocol.Decided v -> ((i, v) :: dec, stk)
          | _ -> (dec, i :: stk))
        ([], []) (R.survivors rt)
    in
    { plan; applied; decided = List.rev decided; stuck = List.rev stuck; rt }

  let crash_obstruction_free r = r.stuck = []

  let agreement_under_crashes ~equal r =
    let rec pairs = function
      | [] -> None
      | a :: rest -> (
        match List.find_opt (fun b -> not (equal (snd a) (snd b))) rest with
        | Some b -> Some (a, b)
        | None -> pairs rest)
    in
    pairs r.decided

  let validity_under_crashes ~allowed r =
    List.find_opt (fun (_, v) -> not (allowed v)) r.decided

  let wedges_solo ?seed ?namings ?(prefix_steps = 64) ?(solo_bound = 20_000)
      ~ids ~inputs ~m ~proc plan =
    let rt, rng = prepare ?seed ?namings ~ids ~inputs ~m () in
    let _, _ =
      F.run_with_plan rt plan (Schedule.random rng) ~max_steps:prefix_steps
    in
    if R.crashed rt proc then
      invalid_arg "Crash_props.wedges_solo: proc crashed under the plan";
    if R.status rt proc = Protocol.Critical then false
    else
      let reason =
        R.run rt
          ~until:(fun t -> R.status t proc = Protocol.Critical)
          (Schedule.solo proc) ~max_steps:solo_bound
      in
      match reason with
      | R.Condition_met -> false (* reached its critical section *)
      | R.All_decided | R.Schedule_exhausted -> false (* decided: progress *)
      | R.Step_limit -> not (Protocol.is_decided (R.status rt proc))
end
