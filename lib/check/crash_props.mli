(** Crash-aware correctness properties.

    The graph checkers in {!Explore} quantify over schedules but not over
    crashes; these checks quantify over {e crash prefixes}: run an
    instance under a seeded adversarial schedule with a {!Fault.plan}
    injected, then give every surviving process a solo period — the
    obstruction-freedom promise is exactly that each survivor then
    decides, no matter how many peers crash-stopped (Figs 2–3 of the
    paper). The same driver exposes the other side of the dividing line:
    deadlock-free mutex {e must} wedge when a register-covering peer
    crashes (the Theorem 6.2 covering argument), which {!Make.wedges_solo}
    asserts as an {e expected} deadlock. *)

open Anonmem

module Make (P : Protocol.PROTOCOL) : sig
  module F : module type of Fault.Make (P)

  module R = F.R

  (** Outcome of one crash-prefixed run. Process indices are runtime
      positions. *)
  type run_result = {
    plan : Fault.plan;
    applied : Fault.applied list;  (** faults that actually fired *)
    decided : (int * P.output) list;
        (** surviving processes that decided, with their outputs *)
    stuck : int list;
        (** surviving processes still undecided after their solo period —
            a crash-obstruction-freedom violation for decision tasks *)
    rt : R.t;  (** the final runtime, for further inspection *)
  }

  val run_plan :
    ?seed:int ->
    ?namings:Naming.t array ->
    ?prefix_steps:int ->
    ?solo_bound:int ->
    ids:int list ->
    inputs:P.input list ->
    m:int ->
    Fault.plan ->
    run_result
  (** Run a seeded random schedule for [prefix_steps] (default 64) with
      the plan injected, then run each surviving undecided process solo
      for up to [solo_bound] steps (default 4000). The injector stays
      armed through the solo windows, so crash points past the prefix and
      pending rejoins still fire; a process rejoined late gets a solo
      window of its own. Namings default to the identity; [seed] (default
      1) drives the schedule, the namings' consumers and the protocol's
      coins, so results are reproducible. *)

  val crash_obstruction_free : run_result -> bool
  (** No surviving process is stuck: after the crash prefix, every
      survivor decided once run solo. *)

  val agreement_under_crashes :
    equal:(P.output -> P.output -> bool) ->
    run_result ->
    ((int * P.output) * (int * P.output)) option
  (** First pair of surviving decided processes with non-equal outputs. *)

  val validity_under_crashes :
    allowed:(P.output -> bool) -> run_result -> (int * P.output) option
  (** First surviving decided process whose output is not allowed. *)

  val wedges_solo :
    ?seed:int ->
    ?namings:Naming.t array ->
    ?prefix_steps:int ->
    ?solo_bound:int ->
    ids:int list ->
    inputs:P.input list ->
    m:int ->
    proc:int ->
    Fault.plan ->
    bool
  (** After the crash prefix, does survivor [proc] fail to make progress —
      running solo for [solo_bound] steps (default 20000) without ever
      entering its critical section or deciding? [true] on Figure 1's
      mutex with a peer crashed inside (or covering) the critical section
      is the executable counterpart of Theorem 6.2; [false] must hold for
      the empty plan. Raises [Invalid_argument] if [proc] itself crashed
      under the plan. *)
end
