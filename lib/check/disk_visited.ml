type run = { r_file : string; r_count : int }

type t = {
  dir : string;
  key_len : int;
  quota_bytes : int option;
  mutable bytes : int;  (* payload bytes across all runs *)
  mutable runs : run list;  (* oldest first *)
  mutable next_run : int;
  mutable probes : int;
}

type manifest = {
  m_key_len : int;
  m_runs : (string * int) list;
  m_next_run : int;
}

let run_file n = Printf.sprintf "run-%04d.run" n

let is_run_file f =
  String.length f > 8
  && String.sub f 0 4 = "run-"
  && Filename.check_suffix f ".run"

(* A spill that died between opening its tmp file and the rename leaves
   "run-NNNN.run.tmp" behind. No manifest ever references a tmp file, so
   they are garbage by construction — but garbage that accumulates under
   a fault campaign, so open and restore sweep them with the strays. *)
let is_run_tmp f =
  String.length f > 4
  && String.sub f 0 4 = "run-"
  && Filename.check_suffix f ".tmp"

let remove_stray_runs ~dir ~keep =
  Array.iter
    (fun f ->
      if (is_run_file f && not (List.mem f keep)) || is_run_tmp f then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||])

let create ?quota_bytes ~dir ~key_len () =
  (try
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
     else if not (Sys.is_directory dir) then
       raise (Snapshot.Error (Snapshot.Io (dir ^ " is not a directory")))
   with Unix.Unix_error (e, _, _) ->
     raise
       (Snapshot.Error
          (Snapshot.Io
             (Printf.sprintf "cannot create %s: %s" dir
                (Unix.error_message e)))));
  remove_stray_runs ~dir ~keep:[];
  { dir; key_len; quota_bytes; bytes = 0; runs = []; next_run = 0; probes = 0 }

let would_exceed_quota t ~adding =
  match t.quota_bytes with
  | None -> false
  | Some q -> t.bytes + adding > q

let spill t ~fingerprint ~descr keys =
  let file = run_file t.next_run in
  let payload_bytes = Array.length keys * t.key_len in
  (* defensive: the explorer checks [would_exceed_quota] BEFORE sorting
     and spilling, and degrades gracefully; reaching this raise means a
     caller ignored the quota, and refusing is better than exceeding it *)
  if would_exceed_quota t ~adding:payload_bytes then
    raise
      (Snapshot.Error
         (Snapshot.Io
            (Printf.sprintf
               "disk-visited byte quota exceeded: %d + %d > %d" t.bytes
               payload_bytes
               (Option.get t.quota_bytes))));
  let buf = Buffer.create payload_bytes in
  Array.iter (Buffer.add_string buf) keys;
  let path = Filename.concat t.dir file in
  Snapshot.write ~path ~fingerprint ~descr (Buffer.contents buf);
  (* Verify after write. Probes trust run payloads without re-hashing
     (see [run_payload]), so a write damaged in flight — torn, truncated
     or bit-flipped on its way to the platter — would silently falsify
     membership answers for the rest of the exploration: the one failure
     mode an exhaustive checker can never accept. One read-back at spill
     time pins the CRC (computed over the clean payload, before the
     write could damage it) and surfaces damage as [Corrupt] while the
     spill is still retryable. *)
  (match Snapshot.read ~path with
  | _, payload when String.length payload = payload_bytes -> ()
  | _ ->
    raise
      (Snapshot.Error
         (Snapshot.Corrupt { path; detail = "run damaged during write" })));
  t.next_run <- t.next_run + 1;
  t.bytes <- t.bytes + payload_bytes;
  t.runs <- t.runs @ [ { r_file = file; r_count = Array.length keys } ]

(* Raw payload of a run, skipping the CRC: runs are immutable and were
   CRC-validated by the read-back in [spill] or by [restore], so a
   per-generation re-hash would only burn throughput. The framing is
   still parsed defensively — a truncated file surfaces as [Corrupt], not
   as garbage keys. *)
let run_payload ~path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Snapshot.Error (Snapshot.Io msg))
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        (* magic + version + fingerprint *)
        seek_in ic (9 + 1 + 16);
        let b2 = Bytes.create 2 in
        really_input ic b2 0 2;
        (* description, chunk marker *)
        seek_in ic (pos_in ic + Bytes.get_uint16_be b2 0 + 1);
        let b8 = Bytes.create 8 in
        really_input ic b8 0 8;
        let len = Int64.to_int (Bytes.get_int64_be b8 0) in
        seek_in ic (pos_in ic + 4) (* CRC *);
        if len < 0 || len > in_channel_length ic - pos_in ic then
          raise
            (Snapshot.Error
               (Snapshot.Corrupt { path; detail = "truncated run payload" }));
        let p = Bytes.create len in
        really_input ic p 0 len;
        Bytes.unsafe_to_string p
      with End_of_file ->
        raise
          (Snapshot.Error
             (Snapshot.Corrupt { path; detail = "truncated run file" })))

(* [key] vs the fixed-width record at [off] in payload [p]. Keys only need
   a consistent total order on both sides, so raw byte order suffices. *)
let compare_at key p off len =
  let rec go i =
    if i = len then 0
    else
      let c = Char.compare key.[i] p.[off + i] in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let probe t keys =
  let nk = Array.length keys in
  let found = Array.make nk false in
  if nk > 0 && t.runs <> [] then begin
    List.iter
      (fun r ->
        let p = run_payload ~path:(Filename.concat t.dir r.r_file) in
        let kl = t.key_len in
        let i = ref 0 and j = ref 0 in
        while !i < nk && !j < r.r_count do
          if found.(!i) then incr i
          else begin
            let c = compare_at keys.(!i) p (!j * kl) kl in
            if c = 0 then begin
              found.(!i) <- true;
              incr i;
              incr j
            end
            else if c < 0 then incr i
            else incr j
          end
        done)
      t.runs;
    t.probes <- t.probes + 1
  end;
  found

let manifest t =
  {
    m_key_len = t.key_len;
    m_runs = List.map (fun r -> (r.r_file, r.r_count)) t.runs;
    m_next_run = t.next_run;
  }

let restore ?quota_bytes ~dir ~fingerprint ~descr m =
  List.iter
    (fun (file, count) ->
      let path = Filename.concat dir file in
      let meta, payload = Snapshot.read ~path in
      Snapshot.check_fingerprint ~path meta ~fingerprint ~descr;
      if String.length payload <> count * m.m_key_len then
        raise
          (Snapshot.Error
             (Snapshot.Corrupt
                {
                  path;
                  detail =
                    Printf.sprintf
                      "run holds %d bytes; the manifest promised %d keys of \
                       %d bytes"
                      (String.length payload) count m.m_key_len;
                })))
    m.m_runs;
  remove_stray_runs ~dir ~keep:(List.map fst m.m_runs);
  {
    dir;
    key_len = m.m_key_len;
    quota_bytes;
    bytes =
      List.fold_left (fun acc (_, c) -> acc + (c * m.m_key_len)) 0 m.m_runs;
    runs = List.map (fun (f, c) -> { r_file = f; r_count = c }) m.m_runs;
    next_run = m.m_next_run;
    probes = 0;
  }

let n_runs t = List.length t.runs
let n_keys t = List.fold_left (fun acc r -> acc + r.r_count) 0 t.runs
let n_probes t = t.probes
let n_bytes t = t.bytes
