(** File-backed visited set for external-memory exploration.

    Classic external BFS with delayed duplicate detection: an in-RAM hot
    table absorbs newly interned keys; at a watermark the explorer spills
    it as one {e sorted immutable run} on disk and starts the hot table
    empty. Membership of a generation's candidates is then resolved in
    one batch — sort the unknown keys once, stream every run once, and
    advance two cursors — so the cost per generation is O(sorted probes +
    run bytes), never a random disk access per candidate.

    The invariant the explorer maintains (and the tests assert): a key
    lives in {e at most one} place — the hot table or exactly one run —
    because a key is only interned after probing proved it absent from
    both, and spilling {e moves} the hot table to a run. Probes may
    therefore stop at the first hit, and spilled sizes sum to the states
    on disk.

    Each run is a single-chunk {!Snapshot} envelope (the payload is the
    raw concatenation of fixed-width {!Codec} keys in ascending order),
    reusing its magic/version/fingerprint/CRC machinery. {!restore}
    re-validates every run in full — CRC, fingerprint, length — so a
    resumed exploration never trusts damaged bytes; per-generation
    {!probe}s skip the CRC (the file was validated when written or
    restored, and re-hashing tens of megabytes per BFS generation would
    dominate the run). *)

type t

type manifest
(** Plain marshalable image of the run set (file names, key counts,
    next run number) — embedded in the explorer's snapshot payload so a
    checkpoint names exactly the runs that existed when it was taken. *)

val create : ?quota_bytes:int -> dir:string -> key_len:int -> unit -> t
(** Fresh store in [dir] (created if missing) for keys of exactly
    [key_len] bytes. Stale run files — and [run-*.tmp] debris a torn
    spill left behind — from an abandoned exploration in the same
    directory are deleted. [quota_bytes] bounds the total payload bytes
    the store may hold across all runs; the explorer consults
    {!would_exceed_quota} before each spill and degrades gracefully
    (stop spilling, flush an exact boundary, report
    [stop_reason = disk_full]) instead of breaching it. Raises
    {!Snapshot.Error} ([Io _]) when the directory cannot be created. *)

val would_exceed_quota : t -> adding:int -> bool
(** Whether spilling [adding] more payload bytes would push the store
    past its byte quota. Always [false] without a quota. *)

val spill :
  t -> fingerprint:Digest.t -> descr:string -> string array -> unit
(** [spill t ~fingerprint ~descr keys] durably writes [keys] — sorted
    ascending, each [key_len] bytes, disjoint from every existing run —
    as the next immutable run. Raises {!Snapshot.Error} on I/O failure,
    or ([Io _]) if the spill would breach the byte quota (callers are
    expected to check {!would_exceed_quota} first — the raise is a
    last-ditch refusal, never silent breach). *)

val probe : t -> string array -> bool array
(** [probe t keys] resolves membership of [keys] (sorted ascending)
    against every run by streaming sorted merges; [result.(i)] is true
    iff [keys.(i)] is on disk. One call counts as one batched probe in
    {!n_probes}. Raises {!Snapshot.Error} ([Corrupt _]) if a run file
    has been damaged since it was validated. *)

val manifest : t -> manifest

val restore :
  ?quota_bytes:int ->
  dir:string ->
  fingerprint:Digest.t ->
  descr:string ->
  manifest ->
  t
(** Reopen the run set a [manifest] describes, fully re-validating every
    listed run (envelope CRC, fingerprint, byte length against the
    manifest's key count) — raises {!Snapshot.Error} if any check fails,
    so a salvaging caller can fall back to an older checkpoint. Run
    files in [dir] that the manifest does {e not} list are deleted
    (along with any [run-*.tmp] debris): they belong to a future this
    rollback abandons, and probing them would wrongly suppress states
    the restored frontier still has to reach. The byte count behind
    {!would_exceed_quota} is rebuilt from the manifest. *)

val n_runs : t -> int
(** Immutable runs currently on disk. *)

val n_keys : t -> int
(** Total keys across all runs (states resident on disk). *)

val n_probes : t -> int
(** Batched probes served since [create]/[restore]. *)

val n_bytes : t -> int
(** Total payload bytes across all runs (what the quota bounds). *)
