open Anonmem

type reduction = Full | Canon

let reduction_tag = function Full -> "full" | Canon -> "canon"

type engine = Barrier | Sharded

let engine_tag = function Barrier -> "barrier" | Sharded -> "sharded"

module Make (P : Protocol.PROTOCOL) = struct
  module Cd = Codec.Make (P)
  module Cn = Canon.Make (P)

  type config = {
    ids : int array;
    inputs : P.input array;
    namings : Naming.t array;
  }

  let config ?m ~ids ~inputs () =
    let ids = Array.of_list ids in
    let n = Array.length ids in
    let m = match m with Some m -> m | None -> P.default_registers ~n in
    {
      ids;
      inputs = Array.of_list inputs;
      namings = Array.init n (fun _ -> Naming.identity m);
    }

  type state = { mem : P.Value.t array; locals : P.local array }

  type label = { proc : int; enters_cs : bool }

  type transition = { dst : int; label : label }

  type graph = {
    cfg : config;
    states : state array;
    orbits : int array;
    succs : transition list array;
    complete : bool;
  }

  let initial cfg =
    let n = Array.length cfg.ids in
    let m = Naming.size cfg.namings.(0) in
    {
      mem = Array.make m P.Value.init;
      locals =
        Array.init n (fun i -> P.start ~n ~m ~id:cfg.ids.(i) cfg.inputs.(i));
    }

  let statuses st = Array.map P.status st.locals

  let with_local st proc local =
    let locals = Array.copy st.locals in
    locals.(proc) <- local;
    { st with locals }

  let with_write st proc local phys v =
    let mem = Array.copy st.mem in
    mem.(phys) <- v;
    let locals = Array.copy st.locals in
    locals.(proc) <- local;
    { mem; locals }

  (* All states one step of [proc] can lead to (two for a coin flip). *)
  let step_states cfg st proc =
    let n = Array.length st.locals in
    let m = Array.length st.mem in
    let naming = cfg.namings.(proc) in
    match P.step ~n ~m ~id:cfg.ids.(proc) st.locals.(proc) with
    | Protocol.Read (j, k) ->
      let v = st.mem.(Naming.apply naming j) in
      [ with_local st proc (k v) ]
    | Protocol.Write (j, v, l) ->
      [ with_write st proc l (Naming.apply naming j) v ]
    | Protocol.Rmw (j, f) ->
      let phys = Naming.apply naming j in
      let v, l = f st.mem.(phys) in
      [ with_write st proc l phys v ]
    | Protocol.Internal l -> [ with_local st proc l ]
    | Protocol.Coin k -> [ with_local st proc (k true); with_local st proc (k false) ]

  let successors cfg st =
    let acc = ref [] in
    Array.iteri
      (fun proc local ->
        if not (Protocol.is_decided (P.status local)) then begin
          let before_crit = P.status local = Protocol.Critical in
          List.iter
            (fun st' ->
              let enters_cs =
                (not before_crit)
                && P.status st'.locals.(proc) = Protocol.Critical
              in
              acc := ({ proc; enters_cs }, st') :: !acc)
            (step_states cfg st proc)
        end)
      st.locals;
    List.rev !acc

  (* The automorphism group of [cfg], or [] when the reduction is off so
     the hot path can skip orbit enumeration entirely. *)
  let syms_of ~reduction cfg =
    match reduction with
    | Full -> []
    | Canon -> Cn.group ~ids:cfg.ids ~inputs:cfg.inputs ~namings:cfg.namings

  let canon_degraded ~n = Cn.degraded ~n

  (* Per-domain reduction context: the incremental canonizer plus a memo
     of raw successors already canonized. Reconstructible from the
     configuration alone — never serialized into snapshots; a resumed run
     starts with cold caches and produces the same graph bit for bit. *)
  type canon_cache = {
    inc : Cn.ctx option;  (* [Some] iff the group is non-trivial *)
    memo : (string, state * string * int) Hashtbl.t;
    mutable hits : int;
  }

  (* Drop the raw-successor memo rather than grow it without bound; the
     cap is far above every in-tree workload's distinct-raw-state count. *)
  let canon_memo_cap = 1 lsl 20

  let make_canon_cache codec syms st0 =
    let inc =
      match syms with
      | [] | [ _ ] -> None
      | syms ->
        Some
          (Cn.make_ctx ~syms
             ~value_code:(Cd.value_code codec)
             ~local_code:(Cd.local_code codec)
             ~pack:(Cd.key_of_codes codec)
             ~init:(st0.mem, st0.locals))
    in
    {
      inc;
      memo = Hashtbl.create (match inc with None -> 1 | Some _ -> 4096);
      hits = 0;
    }

  (* Canonical representative, its packed key and orbit size — the
     Canon-path replacement for [Cn.canonize] + [Cd.encode]. Memoized on
     the raw successor's own key: in a quotiented BFS each raw state
     recurs through graph diamonds, and those recurrences skip the group
     walk entirely. *)
  let canonize_cached cc codec st =
    match cc.inc with
    | None -> (st, Cd.encode codec st.mem st.locals, 1)
    | Some inc -> (
      let raw = Cn.state_key inc st.mem st.locals in
      match Hashtbl.find_opt cc.memo raw with
      | Some hit ->
        cc.hits <- cc.hits + 1;
        hit
      | None ->
        let mem, locals, key, orbit =
          Cn.canonize_keyed inc ~raw st.mem st.locals
        in
        let rep = if mem == st.mem then st else { mem; locals } in
        if Hashtbl.length cc.memo >= canon_memo_cap then Hashtbl.reset cc.memo;
        Hashtbl.add cc.memo raw (rep, key, orbit);
        (rep, key, orbit))

  (* ---------------------------------------------------------------- *)
  (* durable checkpoints                                               *)
  (* ---------------------------------------------------------------- *)

  (* Periodic-snapshot cadence (newly interned states between writes)
     when [~snapshot_to] is given without an explicit [~snapshot_every]. *)
  let default_snapshot_every = 500_000

  let fingerprint ~reduction cfg =
    let descr =
      Printf.sprintf "protocol=%s n=%d m=%d reduction=%s" P.name
        (Array.length cfg.ids)
        (Naming.size cfg.namings.(0))
        (reduction_tag reduction)
    in
    let digest =
      Digest.string
        (Marshal.to_string
           (P.name, cfg.ids, cfg.inputs, cfg.namings, reduction_tag reduction)
           [])
    in
    (digest, descr)

  let describe ~reduction cfg =
    let buf = Buffer.create 128 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf "protocol=%s ids=[" P.name;
    Array.iteri
      (fun i id -> Format.fprintf ppf "%s%d" (if i > 0 then ";" else "") id)
      cfg.ids;
    Format.fprintf ppf "] inputs=[";
    Array.iteri
      (fun i inp ->
        if i > 0 then Format.fprintf ppf ";";
        P.pp_input ppf inp)
      cfg.inputs;
    Format.fprintf ppf "] namings=[";
    Array.iteri
      (fun i nm ->
        if i > 0 then Format.fprintf ppf ";";
        Naming.pp ppf nm)
      cfg.namings;
    Format.fprintf ppf "] reduction=%s" (reduction_tag reduction);
    Format.pp_print_flush ppf ();
    Buffer.contents buf

  (* A resume point, captured only at expansion boundaries where the run
     was still exact (no budget drop, no worker failure): states [0, n)
     are interned, states [0, k) are expanded with their transition lists
     recorded, and the pending frontier is exactly states [k, n) in id
     order — which is precisely the FIFO order the sequential reference
     explorer would expand them in, so continuing from a snapshot is
     indistinguishable from never having stopped. The codec dump keeps
     packed keys byte-identical across the resume, which keeps shard
     assignment (and therefore [shard_load]) bit-identical too. *)
  type snapshot_payload = {
    sp_states : state array;
    sp_orbits : int array;
    sp_succs : transition list array;  (** the expanded prefix *)
    sp_depth : int;  (** BFS depth of the pending generation *)
    sp_depths_rev : Checker_stats.depth_sample list;
    sp_candidates : int;
    sp_dedup : int;
    sp_max_frontier : int;
    sp_orbit_sum : int;
    sp_cutover : int option;
    sp_elapsed : float;
    sp_codec : Cd.dump;
    sp_rng : int64 option;
        (* explorations are deterministic — always [None] today; the slot
           lets randomized drivers checkpoint without a format bump *)
  }

  (* In-memory image of the same boundary. O(1) to capture: the chunk
     lists are persistent, so consing later generations never mutates a
     stashed tail. *)
  type boundary = {
    b_states : state array list;  (* reversed chunks *)
    b_orbits : int array list;
    b_trans : transition list array list;
    b_n_states : int;
    b_n_expanded : int;
    b_depth : int;
    b_depths_rev : Checker_stats.depth_sample list;
    b_cand : int;
    b_dups : int;
    b_max_frontier : int;
    b_orbit_sum : int;
    b_cutover : int option;
  }

  (* The plain FIFO-queue reference explorer (no checkpoint machinery);
     [explore] below dispatches here when no snapshot option is given. *)
  let explore_basic ~max_states ~reduction cfg =
    let codec = Cd.create () in
    let syms = syms_of ~reduction cfg in
    let cc = make_canon_cache codec syms (initial cfg) in
    let table : (string, int) Hashtbl.t = Hashtbl.create 4096 in
    let states_rev = ref [] in
    let orbits_rev = ref [] in
    let n_states = ref 0 in
    let pending = Queue.create () in
    let complete = ref true in
    let intern st =
      let rep, key, orbit = canonize_cached cc codec st in
      match Hashtbl.find_opt table key with
      | Some id -> Some id
      | None ->
        if !n_states >= max_states then begin
          complete := false;
          None
        end
        else begin
          let id = !n_states in
          Hashtbl.add table key id;
          states_rev := rep :: !states_rev;
          orbits_rev := orbit :: !orbits_rev;
          incr n_states;
          Queue.add rep pending;
          Some id
        end
    in
    ignore (intern (initial cfg));
    (* [pending] is FIFO and ids are handed out in discovery order, so the
       queue pops states in id order: consing each expansion's transition
       list and reversing at the end rebuilds the id-indexed array without
       any intermediate id-keyed table. *)
    let succs_rev = ref [] in
    while not (Queue.is_empty pending) do
      let st = Queue.pop pending in
      let trans =
        List.filter_map
          (fun (label, st') ->
            match intern st' with
            | Some dst -> Some { dst; label }
            | None -> None)
          (successors cfg st)
      in
      succs_rev := trans :: !succs_rev
    done;
    {
      cfg;
      states = Array.of_list (List.rev !states_rev);
      orbits = Array.of_list (List.rev !orbits_rev);
      succs = Array.of_list (List.rev !succs_rev);
      complete = !complete;
    }

  (* Frontier-parallel BFS.

     The sequential explorer above pops a FIFO queue, so states are
     discovered generation by generation: every state at depth d gets an id
     below every state at depth d+1, and within one generation ids follow
     (expanded-state id ascending, successor position ascending). The
     parallel explorer reproduces exactly that order.

     Generations start sequential: while the frontier is narrower than
     [par_threshold] the barrier choreography costs more than the
     expansion work, so worker 0 expands the whole generation alone
     (before any domain is spawned at all, if the warm-up is still
     running). Once the frontier first reaches the threshold, the worker
     domains spawn — that depth is recorded as the [cutover] stat — and
     each wide generation runs in barrier-separated phases:

       A  workers expand a slice of the frontier (successor computation
          plus canonicalization — the work that dominates the run),
          packing every successor into its string key;
       -  worker 0 flattens the successor lists into one candidate array,
          in the sequential discovery order;
       B  the interning table is sharded by key hash; each worker
          resolves the candidates its shard owns against its own table
          (no locks — ownership is a partition), marking each candidate
          as an existing state, a duplicate of an earlier candidate of
          this generation, or fresh;
       -  worker 0 scans the candidate array once, in order, handing out
          consecutive ids to fresh candidates — exactly the ids the
          sequential explorer would have assigned, including where the
          [max_states] budget cuts off;
       C  workers insert their shards' newly-identified states and build
          the transition lists for their frontier slice;
       -  worker 0 appends the generation's states and transitions, forms
          the next frontier and decides the next generation's mode.

     Narrow generations after the cutover (a draining frontier) drop back
     to sequential expansion by worker 0 — one barrier per generation
     instead of six. The result is bit-identical to [explore] on every
     input and every mode schedule, which the test suite cross-checks for
     every in-tree protocol. *)

  (* Supervised-engine work epoch. Published as ONE atomic record so a
     worker can never pair one epoch's unit table with another epoch's
     work function. Unit cells: 0 unclaimed, [slot + 1] claimed by that
     crew slot, -1 done. *)
  type epoch = {
    ep_id : int;
    ep_units : int Atomic.t array;
    ep_fn : int -> int -> unit;  (** slot -> unit index *)
  }

  (* One cross-shard candidate in flight between two domains of the
     sharded engine: the candidate key [h_ckey] fixes its place in the
     sequential discovery order; the rest is what the owning shard needs
     to resolve it without re-canonizing. *)
  type handoff = { h_ckey : int; h_key : string; h_rep : state; h_orbit : int }

  let explore_impl ~max_states ~domains ~par_threshold ~reduction ~engine
      ~handoff_batch ~steal_batch ~snapshot_every ~snapshot_to ~resume_from
      ~mem_soft_limit_mb ~deadline_s ~salvage ~supervise cfg =
    let d = max 1 domains in
    let handoff_batch = max 1 handoff_batch in
    let steal_batch = max 1 steal_batch in
    let n_procs = Array.length cfg.ids in
    let n_registers = Naming.size cfg.namings.(0) in
    let fp = lazy (fingerprint ~reduction cfg) in
    let resumed : snapshot_payload option =
      match resume_from with
      | None -> None
      | Some path ->
        let meta, payload =
          if salvage then begin
            let meta, payload, salv = Snapshot.read_salvaged ~path in
            (match salv with
            | Some s ->
              (* the resume is exact from an OLDER boundary; worth a
                 visible note since work after that boundary is redone *)
              Format.eprintf
                "snapshot salvage: %s: %s; rolled back to chunk %d@." path
                s.Snapshot.detail s.Snapshot.kept_chunks
            | None -> ());
            (meta, payload)
          end
          else Snapshot.read ~path
        in
        let digest, descr = Lazy.force fp in
        Snapshot.check_fingerprint ~path meta ~fingerprint:digest ~descr;
        Some (Marshal.from_string payload 0)
    in
    (* The wall-clock deadline is invocation-local: a resumed run gets a
       fresh [deadline_s] from now, while [t0] below is back-dated for the
       cumulative [elapsed_s] stat. *)
    let deadline_at =
      Option.map (fun s -> Checker_stats.now () +. s) deadline_s
    in
    (* Why the run stopped; first truncation cause wins. *)
    let stopped = ref Checker_stats.Completed in
    let set_stop r =
      if !stopped = Checker_stats.Completed then stopped := r
    in
    let restarts_total = ref 0 in
    (* Elapsed time accumulates across resumes: back-date [t0] by the
       snapshot's recorded wall-clock. *)
    let t0 =
      Checker_stats.now ()
      -. (match resumed with Some sp -> sp.sp_elapsed | None -> 0.)
    in
    let codec =
      match resumed with
      | Some sp -> Cd.of_dump sp.sp_codec
      | None -> Cd.create ()
    in
    let syms = syms_of ~reduction cfg in
    let group_order = max 1 (List.length syms) in
    let canon = reduction = Canon in
    let degraded = canon && Cn.degraded ~n:n_procs in
    (* one reduction context per worker domain: ctxs are single-threaded,
       the codec behind them is shared (and CAS-safe) *)
    let ccs =
      Array.init d (fun _ -> make_canon_cache codec syms (initial cfg))
    in
    let sig_pruned () =
      Array.fold_left
        (fun acc cc ->
          acc + match cc.inc with Some i -> Cn.pruned i | None -> 0)
        0 ccs
    in
    let canon_hits () = Array.fold_left (fun acc cc -> acc + cc.hits) 0 ccs in
    let cutover =
      ref (match resumed with Some sp -> sp.sp_cutover | None -> None)
    in
    let orbit_sum = ref 0 in
    (* Sharded-engine weather counters, one slot per domain (disjoint
       writes; read after the joins). Never part of bit-identity. *)
    let steals_ctr = Array.make d 0 in
    let handoffs_ctr = Array.make d 0 in
    let stats_base ~n_states ~n_transitions ~max_depth ~max_frontier
        ~candidates ~dedup_hits ~shard_load ~complete ~depths =
      {
        Checker_stats.protocol = P.name;
        n_procs;
        n_registers;
        domains = d;
        n_states;
        n_transitions;
        max_depth;
        max_frontier;
        candidates;
        dedup_hits;
        shard_load;
        elapsed_s = Checker_stats.now () -. t0;
        complete;
        stop = (if complete then Checker_stats.Completed else !stopped);
        restarts = !restarts_total;
        recoveries = 0;
        canon;
        degraded;
        group_order;
        orbit_sum = !orbit_sum;
        sig_pruned = sig_pruned ();
        canon_hits = canon_hits ();
        cutover = !cutover;
        steals = Array.fold_left ( + ) 0 steals_ctr;
        handoffs = Array.fold_left ( + ) 0 handoffs_ctr;
        spilled_runs = 0;
        disk_probes = 0;
        depths;
      }
    in
    if max_states < 1 then begin
      set_stop Checker_stats.Budget;
      ( { cfg; states = [||]; orbits = [||]; succs = [||]; complete = false },
        stats_base ~n_states:0 ~n_transitions:0 ~max_depth:0 ~max_frontier:0
          ~candidates:0 ~dedup_hits:0 ~shard_load:(Array.make d 0)
          ~complete:false ~depths:[] )
    end
    else begin
      let rep0, _, orbit0 = canonize_cached ccs.(0) codec (initial cfg) in
      (* Shard s owns every state whose structural hash is s mod d. The
         hash is over the canonical state, NOT the packed codec key:
         codec codes are assigned in racy first-encode order during the
         parallel phases, so key bytes differ run to run, while the
         structural hash is a pure function of the state — shard
         assignment (and the [shard_load] statistic) stays deterministic
         and therefore reproducible across checkpoint/resume. *)
      let state_owner (st : state) = Hashtbl.hash st mod d in
      let shard_tbl : (string, int) Hashtbl.t array =
        Array.init d (fun _ -> Hashtbl.create 1024)
      in
      (* Per-shard scratch: first candidate index of each fresh state seen
         this generation, so later duplicates resolve to it. *)
      let scratch : (string, int) Hashtbl.t array =
        Array.init d (fun _ -> Hashtbl.create 256)
      in
      let b = Parallel.Barrier.create d in
      (* ---- sharded-engine plumbing (allocated only when it can run) --
         One SPSC ring per ordered domain pair carries batched cross-shard
         candidates; per-domain fixed buffers amortize the ring traffic.
         Each owner keeps a private resolution log of
         (candidate key, target) pairs — single-writer, merged by worker 0
         at generation end in candidate-key order, which replays the
         sequential id assignment exactly. *)
      let sharded = engine = Sharded && d > 1 in
      let sd = if sharded then d else 0 in
      (* [kmax] bounds successors per state (each of the n processes
         contributes at most two, via a coin), so
         [ckey = frontier index * kmax + successor position] is globally
         unique and sorts by (frontier index, position) — the sequential
         discovery order. *)
      let kmax = max 1 (2 * n_procs) in
      let ring_cap = 64 in
      let rings =
        Array.init sd (fun _ ->
            Array.init sd (fun _ -> Parallel.Spsc.create ~dummy:[||] ring_cap))
      in
      let dummy_handoff =
        { h_ckey = 0; h_key = ""; h_rep = rep0; h_orbit = 0 }
      in
      let out_buf =
        Array.init sd (fun _ ->
            Array.init sd (fun _ -> Array.make handoff_batch dummy_handoff))
      in
      let out_len = Array.init sd (fun _ -> Array.make sd 0) in
      (* owner-side, single-writer per slot: resolution log, fresh-slot
         vectors (reversed; slot s = index s after the sort-phase rev) *)
      let logs : (int * int) list ref array =
        Array.init sd (fun _ -> ref [])
      in
      let sorted_logs : (int * int) array array = Array.make sd [||] in
      let slot_cnt = Array.make sd 0 in
      let slot_keys_rev : string list ref array =
        Array.init sd (fun _ -> ref [])
      in
      let slot_reps_rev : state list ref array =
        Array.init sd (fun _ -> ref [])
      in
      let slot_orbs_rev : int list ref array =
        Array.init sd (fun _ -> ref [])
      in
      let slot_keys_arr : string array array = Array.make sd [||] in
      let slot_reps_arr : state array array = Array.make sd [||] in
      let slot_orbs_arr : int array array = Array.make sd [||] in
      (* per-generation: successor labels in position order (disjoint slot
         writes), per-shard frontier worklists + steal cursors, and the
         termination counter (unexpanded states + in-flight candidates) *)
      let gen_labels : label array array ref = ref [||] in
      let wl : int array array ref = ref [||] in
      let wl_cursor = Array.init sd (fun _ -> Atomic.make 0) in
      let pending = Atomic.make 0 in
      (* Exploration state: fresh, or rebuilt from the snapshot. In a
         snapshot all expanded states form the prefix [0, n_expanded) of
         the id order and the pending frontier is the rest. *)
      let init_states, init_orbits, init_succs =
        match resumed with
        | None -> ([| rep0 |], [| orbit0 |], [||])
        | Some sp -> (sp.sp_states, sp.sp_orbits, sp.sp_succs)
      in
      (* Shared per-generation structures. Plain refs: every write is
         published to the readers of the next phase by the barrier. *)
      let stop = ref false in
      let n_expanded = ref (Array.length init_succs) in
      let frontier =
        ref
          (Array.sub init_states !n_expanded
             (Array.length init_states - !n_expanded))
      in
      let succ_lists : (label * state * string * int) list array ref =
        ref [||]
      in
      let offsets = ref [||] in
      let cand_state = ref [||] in
      let cand_key = ref [||] in
      let cand_orbit = ref [||] in
      let cand_owner = ref [||] in
      (* resolved.(k): id >= 0 existing state; -1 fresh (first occurrence
         in this generation); -2 - k0 duplicate of candidate k0. *)
      let resolved = ref [||] in
      (* cand_id.(k): final state id, or -1 when the budget dropped it. *)
      let cand_id = ref [||] in
      let trans : transition list array ref = ref [||] in
      let n_states = ref (Array.length init_states) in
      let complete = ref true in
      let states_chunks = ref [ init_states ] in
      let orbits_chunks = ref [ init_orbits ] in
      let trans_chunks =
        ref (if Array.length init_succs = 0 then [] else [ init_succs ])
      in
      (* stats accumulators (worker 0 only) *)
      let depth = ref (match resumed with Some sp -> sp.sp_depth | None -> 0) in
      let depths_rev =
        ref (match resumed with Some sp -> sp.sp_depths_rev | None -> [])
      in
      (* The initial state is a candidate too — it is interned exactly like
         any successor — so fresh runs start at 1, keeping the invariant
         [candidates = n_states + dedup_hits] on complete runs. (Snapshots
         carry the running total; the format version gates out pre-fix
         snapshots whose totals were one short.) *)
      let total_cand =
        ref (match resumed with Some sp -> sp.sp_candidates | None -> 1)
      in
      let total_dups =
        ref (match resumed with Some sp -> sp.sp_dedup | None -> 0)
      in
      let max_frontier =
        ref (match resumed with Some sp -> sp.sp_max_frontier | None -> 1)
      in
      let failure = ref None in
      let fail_mutex = Mutex.create () in
      let guard f =
        try f ()
        with e ->
          Mutex.lock fail_mutex;
          (match !failure with None -> failure := Some e | Some _ -> ());
          Mutex.unlock fail_mutex
      in
      orbit_sum :=
        (match resumed with Some sp -> sp.sp_orbit_sum | None -> orbit0);
      (* (Re)build the interning tables. The codec dump keeps re-encoded
         keys consistent with the interrupted run's; shard ownership is
         structural, so each state lands back in the shard it owned.
         States in a snapshot are already canonical — no
         re-canonicalization here. *)
      Array.iteri
        (fun id st ->
          let key = Cd.encode codec st.mem st.locals in
          Hashtbl.add shard_tbl.(state_owner st) key id)
        init_states;
      (* Per-engine setup of a wide (parallel-mode) generation, run by
         the single worker that just closed the previous one — and again
         by the supervisor when a failed sharded attempt is replayed (the
         reset below is exactly what makes a retry start from a clean
         slate). *)
      let prep_parallel_gen head =
        let nf = Array.length head in
        match engine with
        | Barrier ->
          succ_lists := Array.make nf [];
          trans := Array.make nf []
        | Sharded ->
          gen_labels := Array.make nf [||];
          let counts = Array.make d 0 in
          Array.iter
            (fun st ->
              let s = state_owner st in
              counts.(s) <- counts.(s) + 1)
            head;
          let wls = Array.init d (fun s -> Array.make counts.(s) 0) in
          let fill = Array.make d 0 in
          Array.iteri
            (fun i st ->
              let s = state_owner st in
              wls.(s).(fill.(s)) <- i;
              fill.(s) <- fill.(s) + 1)
            head;
          wl := wls;
          for s = 0 to d - 1 do
            Atomic.set wl_cursor.(s) 0;
            logs.(s) := [];
            slot_cnt.(s) <- 0;
            slot_keys_rev.(s) := [];
            slot_reps_rev.(s) := [];
            slot_orbs_rev.(s) := [];
            Hashtbl.reset scratch.(s)
          done;
          (* defensive: a previous generation that aborted on a failure
             may have left batches in flight *)
          Array.iter
            (Array.iter (fun r ->
                 while Parallel.Spsc.try_pop r <> None do () done))
            rings;
          Atomic.set pending nf
      in
      (* Mode of the generation about to run; worker 0 decides the next
         one at every generation end. *)
      let seq_gen = ref (d = 1 || Array.length !frontier < par_threshold) in
      if not !seq_gen then prep_parallel_gen !frontier;
      (* Batch-carry: under memory pressure a generation's frontier is
         split into prefix batches of at most [batch_cap] states. Graph
         and id order stay bit-identical (expansion still proceeds in id
         order); only the per-depth sample granularity degrades. *)
      let pending_carry = ref [||] in
      let batch_cap = ref max_int in
      let min_batch = 16 in
      let soft_limit_bytes =
        match mem_soft_limit_mb with
        | Some mb -> Some (mb * 1024 * 1024)
        | None -> None
      in
      let heap_bytes () =
        let s = Gc.quick_stat () in
        s.Gc.heap_words * (Sys.word_size / 8)
      in
      let capture_boundary () =
        {
          b_states = !states_chunks;
          b_orbits = !orbits_chunks;
          b_trans = !trans_chunks;
          b_n_states = !n_states;
          b_n_expanded = !n_expanded;
          b_depth = !depth;
          b_depths_rev = !depths_rev;
          b_cand = !total_cand;
          b_dups = !total_dups;
          b_max_frontier = !max_frontier;
          b_orbit_sum = !orbit_sum;
          b_cutover = !cutover;
        }
      in
      (* The newest boundary at which the run was still exact; when the
         budget truncates or a signal stops us, this is what gets flushed
         to disk so a resumed run can replay the suffix bit-identically. *)
      let last_boundary = ref (capture_boundary ()) in
      let last_snapshot_states = ref !n_states in
      let snapshot_gap =
        match snapshot_every with
        | Some e -> max 1 e
        | None -> default_snapshot_every
      in
      let write_boundary path bd =
        let payload =
          {
            sp_states = Array.concat (List.rev bd.b_states);
            sp_orbits = Array.concat (List.rev bd.b_orbits);
            sp_succs = Array.concat (List.rev bd.b_trans);
            sp_depth = bd.b_depth;
            sp_depths_rev = bd.b_depths_rev;
            sp_candidates = bd.b_cand;
            sp_dedup = bd.b_dups;
            sp_max_frontier = bd.b_max_frontier;
            sp_orbit_sum = bd.b_orbit_sum;
            sp_cutover = bd.b_cutover;
            sp_elapsed = Checker_stats.now () -. t0;
            sp_codec = Cd.dump codec;
            sp_rng = None;
          }
        in
        let digest, descr = Lazy.force fp in
        (* durable O(new data) append; the snapshot layer compacts the
           file back to one chunk every [Snapshot.max_chunks] boundaries *)
        Snapshot.append ~path ~fingerprint:digest ~descr
          (Marshal.to_string payload [])
      in
      (* Close out a generation: record its transitions and stats, append
         the fresh states (already in id order), stash the resume boundary
         and pick the next mode. *)
      let finish_gen ~tr ~fresh ~orbs ~ncand ~dups ~discovered =
        (* fault seam: a matured Alloc_fail raises [Out_of_memory] here,
           before this generation is committed, exercising the same
           degradation path a real allocation failure would *)
        Resilience.boundary_tick ();
        trans_chunks := tr :: !trans_chunks;
        n_expanded := !n_expanded + Array.length tr;
        depths_rev :=
          {
            Checker_stats.depth = !depth;
            frontier = Array.length !frontier;
            candidates = ncand;
            discovered;
            duplicates = dups;
          }
          :: !depths_rev;
        total_cand := !total_cand + ncand;
        total_dups := !total_dups + dups;
        let nf = Array.length fresh in
        if nf > 0 then begin
          states_chunks := fresh :: !states_chunks;
          orbits_chunks := orbs :: !orbits_chunks
        end;
        let next =
          if Array.length !pending_carry = 0 then fresh
          else Array.append !pending_carry fresh
        in
        let nn = Array.length next in
        if nn = 0 || !failure <> None then stop := true
        else begin
          if nn > !max_frontier then max_frontier := nn;
          (* graceful degradation: past the soft memory watermark, halve
             the expansion batch (floor [min_batch]) and checkpoint now
             rather than running into [Out_of_memory] with nothing saved *)
          let pressured =
            match soft_limit_bytes with
            | Some limit -> heap_bytes () > limit
            | None -> false
          in
          if pressured then
            batch_cap :=
              if !batch_cap = max_int then max min_batch (nn / 2)
              else max min_batch (!batch_cap / 2);
          let head, carry =
            if nn > !batch_cap then
              ( Array.sub next 0 !batch_cap,
                Array.sub next !batch_cap (nn - !batch_cap) )
            else (next, [||])
          in
          pending_carry := carry;
          frontier := head;
          incr depth;
          seq_gen := d = 1 || Array.length head < par_threshold;
          if not !seq_gen then prep_parallel_gen head;
          (* the run is exact up to this boundary: stash it (O(1)) and
             service periodic durable snapshots *)
          if !complete then begin
            last_boundary := capture_boundary ();
            match snapshot_to with
            | Some path
              when pressured
                   || !n_states - !last_snapshot_states >= snapshot_gap ->
              write_boundary path !last_boundary;
              last_snapshot_states := !n_states
            | _ -> ()
          end;
          if pressured then Gc.compact ();
          (* SIGINT/SIGTERM (or a programmatic stop request): stop at this
             boundary; the final snapshot is flushed on the way out *)
          if Snapshot.stop_requested () then begin
            complete := false;
            set_stop Checker_stats.Interrupted;
            stop := true
          end;
          (* wall-clock deadline: same graceful stop, distinct reason so
             the CLI can map it to its own exit code *)
          (match deadline_at with
          | Some td when Checker_stats.now () >= td ->
            complete := false;
            set_stop Checker_stats.Deadline;
            stop := true
          | _ -> ())
        end
      in
      (* One whole generation, sequentially (worker 0 / warm-up). Interns
         straight into the shard tables so later parallel generations
         find the states in the right shard. *)
      let expand_seq () =
        let fr = !frontier in
        let nf = Array.length fr in
        let tr = Array.make nf [] in
        let fresh_rev = ref [] in
        let orb_rev = ref [] in
        let ncand = ref 0 and dups = ref 0 and discovered = ref 0 in
        for i = 0 to nf - 1 do
          (* fault seam: a matured kill/stall for domain 0 fires here *)
          Resilience.worker_tick ~domain:0;
          tr.(i) <-
            List.filter_map
              (fun (label, st') ->
                incr ncand;
                let rep, key, orbit = canonize_cached ccs.(0) codec st' in
                let tbl = shard_tbl.(state_owner rep) in
                match Hashtbl.find_opt tbl key with
                | Some dst ->
                  incr dups;
                  Some { dst; label }
                | None ->
                  if !n_states >= max_states then begin
                    complete := false;
                    set_stop Checker_stats.Budget;
                    None
                  end
                  else begin
                    let id = !n_states in
                    incr n_states;
                    incr discovered;
                    Hashtbl.add tbl key id;
                    orbit_sum := !orbit_sum + orbit;
                    fresh_rev := rep :: !fresh_rev;
                    orb_rev := orbit :: !orb_rev;
                    Some { dst = id; label }
                  end)
              (successors cfg fr.(i))
        done;
        finish_gen ~tr
          ~fresh:(Array.of_list (List.rev !fresh_rev))
          ~orbs:(Array.of_list (List.rev !orb_rev))
          ~ncand:!ncand ~dups:!dups ~discovered:!discovered
      in
      let expand_seq_guarded () =
        guard expand_seq;
        if !failure <> None then stop := true
      in
      (* ---------------- sharded engine: one wide generation ----------
         No per-phase barriers: every domain continuously expands frontier
         states (its own shards' worklists first, stealing from the
         heaviest shard when dry), resolves candidates its shards own the
         moment they arrive, and hands the rest over the mailboxes. The
         only synchronization is the termination counter [pending] plus
         two barriers at generation end (logs complete; logs sorted),
         after which worker 0 merges the per-owner logs in candidate-key
         order — replaying exactly the sequential id scan, so the result
         is bit-identical to the barrier engine's and to [explore]'s.

         SLOTS and SHARDS are distinct notions throughout: a slot is a
         crew member (a domain), a shard a partition of the state space.
         The unsupervised crew pins slot [s] to shard [s] for the whole
         run ([leased = ref [s]]); the supervised crew hands shards out
         as LEASES a slot holds until the generation attempt ends, so a
         crew smaller than [d] — a worker that exhausted its restart
         budget — still serves every shard, and a dead owner's shard is
         reassigned to a survivor by the same CAS claim that hands out
         phase work. *)
      let log_add o ckey target = logs.(o) := (ckey, target) :: !(logs.(o)) in
      (* Owner-side resolution for [shard]; only its current lease holder
         may call this. Targets: [id >= 0] an already-interned state;
         [-1 - slot] the [slot]-th distinct fresh key this shard saw this
         generation. Which arrival creates the slot is a race, but rep
         and orbit are functions of the key, and the id is assigned at
         merge time to the occurrence that is first in candidate-key
         order — so arrival order never shows. *)
      let resolve_local shard ~ckey ~key ~rep ~orbit =
        match Hashtbl.find_opt shard_tbl.(shard) key with
        | Some id -> log_add shard ckey id
        | None -> (
          match Hashtbl.find_opt scratch.(shard) key with
          | Some slot -> log_add shard ckey (-1 - slot)
          | None ->
            let slot = slot_cnt.(shard) in
            slot_cnt.(shard) <- slot + 1;
            Hashtbl.add scratch.(shard) key slot;
            slot_keys_rev.(shard) := key :: !(slot_keys_rev.(shard));
            slot_reps_rev.(shard) := rep :: !(slot_reps_rev.(shard));
            slot_orbs_rev.(shard) := orbit :: !(slot_orbs_rev.(shard));
            log_add shard ckey (-1 - slot))
      in
      (* Pop every producer's ring into [shard]'s resolution structures.
         Single-consumer discipline: only the shard's current lease
         holder calls this. A slot's own ring for a shard it leases can
         only hold batches it pushed before acquiring the lease
         mid-attempt, so popping it is same-thread and safe. *)
      let drain_shard shard =
        let got = ref false in
        for p = 0 to d - 1 do
          let continue_ = ref true in
          while !continue_ do
            match Parallel.Spsc.try_pop rings.(p).(shard) with
            | Some batch ->
              got := true;
              Array.iter
                (fun h ->
                  resolve_local shard ~ckey:h.h_ckey ~key:h.h_key ~rep:h.h_rep
                    ~orbit:h.h_orbit)
                batch;
              ignore (Atomic.fetch_and_add pending (-Array.length batch))
            | None -> continue_ := false
          done
        done;
        !got
      in
      let drain_leased leased =
        List.fold_left
          (fun acc s ->
            let got = drain_shard s in
            got || acc)
          false !leased
      in
      let rec flush_ring ~abort slot ~leased o =
        let len = out_len.(slot).(o) in
        if len > 0 then
          if
            Parallel.Spsc.try_push rings.(slot).(o)
              (Array.sub out_buf.(slot).(o) 0 len)
          then begin
            out_len.(slot).(o) <- 0;
            handoffs_ctr.(slot) <- handoffs_ctr.(slot) + 1
          end
          else if abort () then
            (* the consumer may be dead; the generation is aborting *)
            out_len.(slot).(o) <- 0
          else begin
            (* full ring: draining our own inboxes is the one productive,
               deadlock-free thing to do while the owner catches up *)
            ignore (drain_leased leased);
            Domain.cpu_relax ();
            flush_ring ~abort slot ~leased o
          end
      in
      (* Every buffered batch, including batches for shards we lease
         ourselves (buffered before a mid-attempt lease claim): those go
         through our own ring and come back out in [drain_shard]. *)
      let flush_all ~abort slot ~leased =
        for o = 0 to d - 1 do
          flush_ring ~abort slot ~leased o
        done
      in
      let hand_off ~abort slot ~leased o h =
        if out_len.(slot).(o) = handoff_batch then flush_ring ~abort slot ~leased o;
        out_buf.(slot).(o).(out_len.(slot).(o)) <- h;
        out_len.(slot).(o) <- out_len.(slot).(o) + 1
      in
      let expand_one ~abort slot ~leased i =
        Resilience.worker_tick ~domain:slot;
        let succ = successors cfg !frontier.(i) in
        !gen_labels.(i) <- Array.of_list (List.map fst succ);
        let cross = ref 0 in
        List.iteri
          (fun pos (_, st') ->
            let rep, key, orbit = canonize_cached ccs.(slot) codec st' in
            let o = state_owner rep in
            let ckey = (i * kmax) + pos in
            if List.mem o !leased then resolve_local o ~ckey ~key ~rep ~orbit
            else begin
              incr cross;
              hand_off ~abort slot ~leased o
                { h_ckey = ckey; h_key = key; h_rep = rep; h_orbit = orbit }
            end)
          succ;
        (* retire the state token and charge the handed-off candidates in
           one atomic step, so [pending] can never dip to 0 with work
           still in flight *)
        ignore (Atomic.fetch_and_add pending (!cross - 1))
      in
      (* Claim a batch of shard [s]'s frontier worklist for [slot]. *)
      let expand_from ~abort slot ~leased s =
        let ws = !wl.(s) in
        let len = Array.length ws in
        if Atomic.get wl_cursor.(s) >= len then 0
        else begin
          let c = Atomic.fetch_and_add wl_cursor.(s) steal_batch in
          if c >= len then 0
          else begin
            let hi = min len (c + steal_batch) in
            for x = c to hi - 1 do
              expand_one ~abort slot ~leased ws.(x)
            done;
            hi - c
          end
        end
      in
      let try_steal ~abort slot ~leased =
        let best = ref (-1) and best_rem = ref 0 in
        for s = 0 to d - 1 do
          if not (List.mem s !leased) then begin
            let rem = Array.length !wl.(s) - Atomic.get wl_cursor.(s) in
            if rem > !best_rem then begin
              best := s;
              best_rem := rem
            end
          end
        done;
        !best >= 0
        &&
        let got = expand_from ~abort slot ~leased !best in
        if got > 0 then steals_ctr.(slot) <- steals_ctr.(slot) + 1;
        got > 0
      in
      (* Serve the generation as [slot] until its work is drained or
         [abort] fires: resolve candidates arriving for leased shards,
         expand leased worklists (stealing from the heaviest other shard
         when dry), and poll [claim] for orphaned shard leases while
         there is nothing else to do. [beat] is the supervised crew's
         heartbeat hook; the unsupervised crew passes no-ops for both. *)
      let serve_loop ~abort ~claim ~beat slot leased =
        let idle = ref 0 in
        let running = ref true in
        while !running do
          beat ();
          if abort () then running := false
          else begin
            let did = drain_leased leased in
            let did =
              List.fold_left
                (fun acc s -> expand_from ~abort slot ~leased s > 0 || acc)
                did !leased
            in
            let did =
              did
              ||
              (* leased shards are dry: publish whatever we buffered,
                 then go help the heaviest shard *)
              (flush_all ~abort slot ~leased;
               try_steal ~abort slot ~leased)
            in
            let did = claim () || did in
            if did then idle := 0
            else if Atomic.get pending = 0 then running := false
            else begin
              incr idle;
              (* oversubscribed hosts need a real yield, not just a
                 pause, or a descheduled peer can starve behind us *)
              if !idle land 63 = 0 then Unix.sleepf 0.0001
              else Domain.cpu_relax ()
            end
          end
        done
      in
      let sort_phase me =
        let arr = Array.of_list !(logs.(me)) in
        Array.sort (fun (a, _) (c, _) -> compare (a : int) c) arr;
        sorted_logs.(me) <- arr;
        slot_keys_arr.(me) <- Array.of_list (List.rev !(slot_keys_rev.(me)));
        slot_reps_arr.(me) <- Array.of_list (List.rev !(slot_reps_rev.(me)));
        slot_orbs_arr.(me) <- Array.of_list (List.rev !(slot_orbs_rev.(me)))
      in
      (* Worker 0, alone: d-way merge of the sorted logs in candidate-key
         order — the same scan [assign_ids] does, with identical budget
         semantics — building transitions and fresh states as it goes. *)
      let merge_and_collect () =
        let nf = Array.length !frontier in
        let gl = !gen_labels in
        let slot_ids = Array.init d (fun o -> Array.make slot_cnt.(o) (-2)) in
        let idx = Array.make d 0 in
        let tr = Array.make nf [] in
        let fresh_rev = ref [] and orb_rev = ref [] in
        let ncand = ref 0 and dups = ref 0 and discovered = ref 0 in
        let cur_i = ref (-1) and buf = ref [] in
        let commit () = if !cur_i >= 0 then tr.(!cur_i) <- List.rev !buf in
        let more = ref true in
        while !more do
          let pick = ref (-1) and pick_ck = ref max_int in
          for o = 0 to d - 1 do
            if idx.(o) < Array.length sorted_logs.(o) then begin
              let ck, _ = sorted_logs.(o).(idx.(o)) in
              if ck < !pick_ck then begin
                pick := o;
                pick_ck := ck
              end
            end
          done;
          if !pick < 0 then more := false
          else begin
            let o = !pick in
            let ckey, target = sorted_logs.(o).(idx.(o)) in
            idx.(o) <- idx.(o) + 1;
            incr ncand;
            let i = ckey / kmax and pos = ckey mod kmax in
            if i <> !cur_i then begin
              commit ();
              cur_i := i;
              buf := []
            end;
            let dst =
              if target >= 0 then begin
                incr dups;
                target
              end
              else begin
                let s = -1 - target in
                let sid = slot_ids.(o).(s) in
                if sid = -2 then
                  if !n_states < max_states then begin
                    let id = !n_states in
                    incr n_states;
                    incr discovered;
                    slot_ids.(o).(s) <- id;
                    Hashtbl.add shard_tbl.(o) slot_keys_arr.(o).(s) id;
                    orbit_sum := !orbit_sum + slot_orbs_arr.(o).(s);
                    fresh_rev := slot_reps_arr.(o).(s) :: !fresh_rev;
                    orb_rev := slot_orbs_arr.(o).(s) :: !orb_rev;
                    id
                  end
                  else begin
                    complete := false;
                    set_stop Checker_stats.Budget;
                    slot_ids.(o).(s) <- -1;
                    -1
                  end
                else if sid >= 0 then begin
                  incr dups;
                  sid
                end
                else begin
                  (* duplicate of a budget-dropped candidate *)
                  complete := false;
                  set_stop Checker_stats.Budget;
                  -1
                end
              end
            in
            if dst >= 0 then buf := { dst; label = gl.(i).(pos) } :: !buf
          end
        done;
        commit ();
        finish_gen ~tr
          ~fresh:(Array.of_list (List.rev !fresh_rev))
          ~orbs:(Array.of_list (List.rev !orb_rev))
          ~ncand:!ncand ~dups:!dups ~discovered:!discovered
      in
      let phase_a me =
        let fr = !frontier and sl = !succ_lists in
        let nf = Array.length fr in
        let i = ref me in
        while !i < nf do
          Resilience.worker_tick ~domain:me;
          sl.(!i) <-
            List.map
              (fun (label, st') ->
                let rep, key, orbit = canonize_cached ccs.(me) codec st' in
                (label, rep, key, orbit))
              (successors cfg fr.(!i));
          i := !i + d
        done
      in
      let flatten () =
        let fr = !frontier and sl = !succ_lists in
        let nf = Array.length fr in
        let offs = Array.make nf 0 in
        let ncand = ref 0 in
        for i = 0 to nf - 1 do
          offs.(i) <- !ncand;
          ncand := !ncand + List.length sl.(i)
        done;
        let ncand = !ncand in
        let cs = Array.make ncand rep0 in
        let ck = Array.make ncand "" in
        let co = Array.make ncand 0 in
        let ow = Array.make ncand 0 in
        for i = 0 to nf - 1 do
          List.iteri
            (fun j (_, st', key, orbit) ->
              cs.(offs.(i) + j) <- st';
              ck.(offs.(i) + j) <- key;
              co.(offs.(i) + j) <- orbit;
              ow.(offs.(i) + j) <- state_owner st')
            sl.(i)
        done;
        offsets := offs;
        cand_state := cs;
        cand_key := ck;
        cand_orbit := co;
        cand_owner := ow;
        resolved := Array.make ncand (-1);
        cand_id := Array.make ncand (-1)
      in
      let phase_b me =
        let ck = !cand_key and ow = !cand_owner and rs = !resolved in
        let tbl = shard_tbl.(me) and scr = scratch.(me) in
        Array.iteri
          (fun k o ->
            if o = me then
              let key = ck.(k) in
              match Hashtbl.find_opt tbl key with
              | Some id -> rs.(k) <- id
              | None -> (
                match Hashtbl.find_opt scr key with
                | Some k0 -> rs.(k) <- -2 - k0
                | None ->
                  Hashtbl.add scr key k;
                  rs.(k) <- -1))
          ow
      in
      (* The one inherently sequential step: replay the candidate scan the
         sequential explorer would have done, in the same order, so fresh
         states receive identical ids and the budget truncates at the
         identical point. *)
      (* per-generation counters stashed for [collect] *)
      let gen_cand = ref 0 and gen_dups = ref 0 and gen_disc = ref 0 in
      let assign_ids () =
        let rs = !resolved and ci = !cand_id and co = !cand_orbit in
        let ncand = Array.length rs in
        let discovered = ref 0 and dups = ref 0 in
        for k = 0 to ncand - 1 do
          match rs.(k) with
          | -1 ->
            if !n_states < max_states then begin
              ci.(k) <- !n_states;
              incr n_states;
              incr discovered;
              orbit_sum := !orbit_sum + co.(k)
            end
            else begin
              complete := false;
              set_stop Checker_stats.Budget;
              ci.(k) <- -1
            end
          | r when r >= 0 ->
            ci.(k) <- r;
            incr dups
          | r ->
            (* duplicate of candidate [-2 - r], already resolved above *)
            let k0 = -2 - r in
            ci.(k) <- ci.(k0);
            if ci.(k0) >= 0 then incr dups
            else begin
              complete := false;
              set_stop Checker_stats.Budget
            end
        done;
        gen_cand := ncand;
        gen_dups := !dups;
        gen_disc := !discovered
      in
      let phase_c me =
        let ck = !cand_key and ow = !cand_owner and rs = !resolved
        and ci = !cand_id in
        let tbl = shard_tbl.(me) in
        Array.iteri
          (fun k o ->
            if o = me && rs.(k) = -1 && ci.(k) >= 0 then
              Hashtbl.add tbl ck.(k) ci.(k))
          ow;
        Hashtbl.reset scratch.(me);
        let fr = !frontier
        and sl = !succ_lists
        and offs = !offsets
        and tr = !trans in
        let nf = Array.length fr in
        let i = ref me in
        while !i < nf do
          let base = offs.(!i) in
          let j = ref (-1) in
          tr.(!i) <-
            List.filter_map
              (fun (label, _, _, _) ->
                incr j;
                let dst = ci.(base + !j) in
                if dst >= 0 then Some { dst; label } else None)
              sl.(!i);
          i := !i + d
        done
      in
      let collect () =
        let rs = !resolved and ci = !cand_id and cs = !cand_state
        and co = !cand_orbit in
        let fresh_rev = ref [] and orb_rev = ref [] in
        for k = Array.length rs - 1 downto 0 do
          if rs.(k) = -1 && ci.(k) >= 0 then begin
            fresh_rev := cs.(k) :: !fresh_rev;
            orb_rev := co.(k) :: !orb_rev
          end
        done;
        finish_gen ~tr:!trans
          ~fresh:(Array.of_list !fresh_rev)
          ~orbs:(Array.of_list !orb_rev)
          ~ncand:!gen_cand ~dups:!gen_dups ~discovered:!gen_disc
      in
      let body me =
        let running = ref true in
        while !running do
          Parallel.Barrier.wait b;
          (* generation inputs published; snapshot the mode into locals
             NOW, then hold a decision barrier. Without it, worker 0 of a
             sequential-mode generation would run the whole generation —
             rewriting [stop]/[seq_gen] at its end — racing the other
             workers' branch reads, so two workers could pick different
             branches (different barrier counts) and wedge the crew. The
             second barrier guarantees every worker has read the decision
             before worker 0 may mutate it again. *)
          let stop_now = !stop and seq_now = !seq_gen in
          Parallel.Barrier.wait b;
          (* decision taken by all workers *)
          if stop_now then running := false
          else if seq_now then begin
            if me = 0 then expand_seq_guarded ()
            (* other workers loop straight to the next start barrier *)
          end
          else begin
            match engine with
            | Barrier ->
              guard (fun () -> phase_a me);
              Parallel.Barrier.wait b;
              if me = 0 then guard flatten;
              Parallel.Barrier.wait b;
              guard (fun () -> phase_b me);
              Parallel.Barrier.wait b;
              if me = 0 then guard assign_ids;
              Parallel.Barrier.wait b;
              guard (fun () -> phase_c me);
              Parallel.Barrier.wait b;
              if me = 0 then guard collect
            | Sharded ->
              guard (fun () ->
                  serve_loop
                    ~abort:(fun () -> !failure <> None)
                    ~claim:(fun () -> false)
                    ~beat:(fun () -> ())
                    me (ref [ me ]));
              Parallel.Barrier.wait b;
              (* all logs complete (or the generation is aborting) *)
              guard (fun () -> sort_phase me);
              Parallel.Barrier.wait b;
              if me = 0 then begin
                (* never merge a partial generation: a dead worker's
                   claimed states are missing from the logs *)
                if !failure = None then guard merge_and_collect;
                if !failure <> None then stop := true
              end
          end
        done
      in
      (* -------- supervised crew (self-healing choreography) -----------
         Supervision wraps whichever engine was requested — it no longer
         swaps the sharded engine for the barrier one. Coordination runs
         through {e epochs}: work units claimed by compare-and-set from a
         shared table published as one atomic record.

         Barrier engine under supervision: each parallel phase is an
         epoch of idempotent units — phase B resets its scratch before
         resolving, phase C1 inserts with [replace], phases A/C2 write
         disjoint array slots — so when a worker domain dies the units it
         had claimed are simply requeued for the survivors and the domain
         is respawned with bounded, jittered backoff.

         Sharded engine under supervision: the epoch's unit table is the
         shard LEASE table — claiming unit [u] leases shard [u]'s
         resolution structures until the generation attempt ends, and
         idle slots keep claiming orphaned leases, so a shrunken crew
         still serves every shard. A death mid-attempt is different from
         the barrier case: the dead slot's worklist claims and buffered
         handoffs are unrecoverable, so the whole attempt aborts —
         survivors park, the supervisor drains the rings, re-preps the
         generation and replays it from its (unmutated) inputs, and the
         dead domain respawns under the same bounded backoff. Durable
         state — shard tables, ids, chunk lists — is only touched by
         [merge_and_collect] after a clean attempt, which is what makes
         the replay safe and the merged result bit-identical.

         Either way, a domain that is still alive but stops heartbeating
         while holding work can NOT be requeued safely (it may yet mutate
         its shard), so after an escalating patience budget the whole
         attempt is abandoned with {!Resilience.Stalled};
         {!with_recovery} then resumes from the last durable snapshot. *)
      let supervised_drive () =
        let chunk = 32 in
        let cur =
          Atomic.make { ep_id = 0; ep_units = [||]; ep_fn = (fun _ _ -> ()) }
        in
        let quit = Atomic.make false in
        let alive = Array.init d (fun _ -> Atomic.make false) in
        let hb = Array.init d (fun _ -> Atomic.make 0) in
        let abandoned = Array.make d false in
        let doms : unit Domain.t option array = Array.make d None in
        let restart_count = Array.make d 0 in
        let respawn_at = Array.make d infinity in
        let epoch_no = ref 0 in
        (* jitter desynchronizes respawns; the values never influence the
           explored graph, so a fixed seed keeps campaigns replayable *)
        let jrng = Rng.create 0x7E57 in
        let max_domain_restarts = 3 in
        let patience_base = 0.1 in
        let max_patience_levels = 3 in
        let work ep slot =
          let us = ep.ep_units in
          for u = 0 to Array.length us - 1 do
            if
              Atomic.get us.(u) = 0
              && Atomic.compare_and_set us.(u) 0 (slot + 1)
            then begin
              Atomic.incr hb.(slot);
              Resilience.worker_tick ~domain:slot;
              ep.ep_fn slot u;
              Atomic.set us.(u) (-1)
            end
          done
        in
        let worker slot () =
          (try
             let idle = ref 0 in
             while not (Atomic.get quit) do
               let ep = Atomic.get cur in
               if Array.length ep.ep_units > 0 then work ep slot;
               incr idle;
               (* heartbeat + fault poll while idle, so a kill aimed at a
                  domain between epochs still fires *)
               if !idle land 1023 = 0 then begin
                 Atomic.incr hb.(slot);
                 Resilience.worker_tick ~domain:slot
               end;
               Domain.cpu_relax ()
             done
           with _ -> ());
          Atomic.set alive.(slot) false
        in
        let spawn slot =
          (match doms.(slot) with
          | Some dh -> Domain.join dh (* already exited: reap promptly *)
          | None -> ());
          Atomic.set alive.(slot) true;
          doms.(slot) <- Some (Domain.spawn (worker slot))
        in
        let shutdown () =
          Atomic.set quit true;
          Array.iteri
            (fun w dh ->
              match dh with
              | Some dh when not abandoned.(w) ->
                Domain.join dh;
                doms.(w) <- None
              | _ ->
                (* an abandoned (wedged) domain is leaked on purpose:
                   joining it would wedge the supervisor too; if it ever
                   wakes it sees [quit] and exits on its own *)
                ())
            doms
        in
        (* One supervision pass over the crew, shared by every kind of
           epoch. [us] is the unit (or lease) table — a cell at [w + 1]
           means slot [w] holds work. Death is reported through
           [on_death] (the barrier phases requeue the dead slot's units;
           the sharded engine aborts the attempt) and the domain respawns
           under bounded, jittered backoff; a live-but-silent holder gets
           the escalating patience treatment and finally abandonment. *)
        let monitor ~us ~last_hb ~t_mark ~level ~on_death =
          let t = Checker_stats.now () in
          for w = 1 to d - 1 do
            if doms.(w) <> None && not abandoned.(w) then
              if not (Atomic.get alive.(w)) then begin
                on_death w;
                if respawn_at.(w) = infinity then begin
                  if restart_count.(w) < max_domain_restarts then begin
                    let backoff =
                      0.001
                      *. float_of_int (1 lsl restart_count.(w))
                      *. (1. +. Rng.float jrng)
                    in
                    restart_count.(w) <- restart_count.(w) + 1;
                    incr restarts_total;
                    respawn_at.(w) <- t +. backoff
                  end
                  else begin
                    (* restart budget exhausted: reap the corpse and
                       carry on with a smaller crew *)
                    (match doms.(w) with
                    | Some dh -> Domain.join dh
                    | None -> ());
                    doms.(w) <- None
                  end
                end
                else if t >= respawn_at.(w) then begin
                  respawn_at.(w) <- infinity;
                  spawn w;
                  (* a fresh worker starts with a fresh stall clock *)
                  last_hb.(w) <- Atomic.get hb.(w);
                  t_mark.(w) <- t;
                  level.(w) <- 0
                end
              end
              else begin
                let beat = Atomic.get hb.(w) in
                if beat <> last_hb.(w) then begin
                  last_hb.(w) <- beat;
                  t_mark.(w) <- t;
                  level.(w) <- 0
                end
                else if Array.exists (fun u -> Atomic.get u = w + 1) us
                then begin
                  let threshold =
                    patience_base *. float_of_int (1 lsl level.(w))
                  in
                  if t -. t_mark.(w) > threshold then
                    if level.(w) < max_patience_levels then begin
                      level.(w) <- level.(w) + 1;
                      t_mark.(w) <- t
                    end
                    else begin
                      abandoned.(w) <- true;
                      raise
                        (Resilience.Stalled
                           {
                             domain = w;
                             waited_s =
                               patience_base
                               *. float_of_int
                                    ((1 lsl (max_patience_levels + 1)) - 1);
                           })
                    end
                end
              end
          done
        in
        let run_epoch ~n_units fn =
          incr epoch_no;
          let ep =
            {
              ep_id = !epoch_no;
              ep_units = Array.init n_units (fun _ -> Atomic.make 0);
              ep_fn = fn;
            }
          in
          Atomic.set cur ep;
          let us = ep.ep_units in
          let all_done () = Array.for_all (fun u -> Atomic.get u = -1) us in
          let last_hb = Array.map Atomic.get hb in
          let t_mark = Array.make d (Checker_stats.now ()) in
          let level = Array.make d 0 in
          let spins = ref 0 in
          (* the supervisor is also slot 0 of the crew *)
          work ep 0;
          while not (all_done ()) do
            (* requeued units are claimable again: take what is left *)
            work ep 0;
            if not (all_done ()) then begin
              incr spins;
              if !spins land 255 = 0 then Unix.sleepf 0.0002
              else Domain.cpu_relax ();
              monitor ~us ~last_hb ~t_mark ~level ~on_death:(fun w ->
                  (* dead: its claimed units go back to the pool *)
                  Array.iter
                    (fun u -> ignore (Atomic.compare_and_set u (w + 1) 0))
                    us)
            end
          done
        in
        let run_parallel_gen () =
          let nf = Array.length !frontier in
          let nc = (nf + chunk - 1) / chunk in
          (* A: expand + canonize, in frontier chunks *)
          run_epoch ~n_units:nc (fun slot u ->
              let fr = !frontier and sl = !succ_lists in
              let lo = u * chunk in
              let hi = min nf (lo + chunk) in
              for i = lo to hi - 1 do
                sl.(i) <-
                  List.map
                    (fun (label, st') ->
                      let rep, key, orbit =
                        canonize_cached ccs.(slot) codec st'
                      in
                      (label, rep, key, orbit))
                    (successors cfg fr.(i))
              done);
          flatten ();
          (* B: per-shard resolve; the reset makes a requeued redo start
             from a clean slate (idempotence) *)
          run_epoch ~n_units:d (fun _ s ->
              Hashtbl.reset scratch.(s);
              let ck = !cand_key and ow = !cand_owner and rs = !resolved in
              let tbl = shard_tbl.(s) and scr = scratch.(s) in
              Array.iteri
                (fun k o ->
                  if o = s then
                    let key = ck.(k) in
                    match Hashtbl.find_opt tbl key with
                    | Some id -> rs.(k) <- id
                    | None -> (
                      match Hashtbl.find_opt scr key with
                      | Some k0 -> rs.(k) <- -2 - k0
                      | None ->
                        Hashtbl.add scr key k;
                        rs.(k) <- -1))
                ow);
          assign_ids ();
          (* C1: per-shard insert; [replace] keeps a redo idempotent *)
          run_epoch ~n_units:d (fun _ s ->
              let ck = !cand_key
              and ow = !cand_owner
              and rs = !resolved
              and ci = !cand_id in
              let tbl = shard_tbl.(s) in
              Array.iteri
                (fun k o ->
                  if o = s && rs.(k) = -1 && ci.(k) >= 0 then
                    Hashtbl.replace tbl ck.(k) ci.(k))
                ow;
              Hashtbl.reset scratch.(s));
          (* C2: transition lists, in frontier chunks (disjoint slots) *)
          run_epoch ~n_units:nc (fun _ u ->
              let sl = !succ_lists
              and offs = !offsets
              and ci = !cand_id
              and tr = !trans in
              let lo = u * chunk in
              let hi = min nf (lo + chunk) in
              for i = lo to hi - 1 do
                let base = offs.(i) in
                let j = ref (-1) in
                tr.(i) <-
                  List.filter_map
                    (fun (label, _, _, _) ->
                      incr j;
                      let dst = ci.(base + !j) in
                      if dst >= 0 then Some { dst; label } else None)
                    sl.(i)
              done);
          collect ()
        in
        (* ---- one supervised SHARDED generation -------------------------
           The epoch's unit table doubles as the shard lease table:
           claiming unit [u] (by the very CAS that claims phase work)
           leases shard [u] to the claiming slot until the attempt ends.
           A clean attempt drains [pending] to zero exactly like the
           unsupervised crew; a death mid-attempt aborts and replays the
           attempt from its unmutated inputs (see the section comment). *)
        let run_sharded_gen () =
          let attempts = ref 0 in
          let again = ref true in
          while !again do
            again := false;
            incr attempts;
            let failed = Atomic.make false in
            let death = ref None in
            incr epoch_no;
            let units = Array.init d (fun _ -> Atomic.make 0) in
            let claim_for slot leased () =
              let got = ref false in
              for u = 0 to d - 1 do
                if
                  Atomic.get units.(u) = 0
                  && Atomic.compare_and_set units.(u) 0 (slot + 1)
                then begin
                  leased := u :: !leased;
                  got := true
                end
              done;
              !got
            in
            let last_hb = Array.map Atomic.get hb in
            let t_mark = Array.make d (Checker_stats.now ()) in
            let level = Array.make d 0 in
            let ticks = ref 0 in
            (* rate-limited, and woven into the supervisor's [abort]
               probe below so supervision keeps running even while the
               supervisor is blocked pushing to a dead consumer's ring *)
            let monitor0 () =
              incr ticks;
              if !ticks land 31 = 0 then
                monitor ~us:units ~last_hb ~t_mark ~level ~on_death:(fun w ->
                    if Atomic.compare_and_set failed false true then
                      death := Some (Resilience.Killed { domain = w }))
            in
            let serve slot leased =
              let abort =
                if slot = 0 then fun () ->
                  monitor0 ();
                  Atomic.get failed
                else fun () -> Atomic.get failed
              in
              serve_loop ~abort ~claim:(claim_for slot leased)
                ~beat:(fun () -> Atomic.incr hb.(slot))
                slot leased;
              (* release every lease we hold — leases claimed mid-attempt
                 would otherwise read as held forever *)
              List.iter (fun u -> Atomic.set units.(u) (-1)) !leased
            in
            let ep =
              {
                ep_id = !epoch_no;
                ep_units = units;
                ep_fn = (fun slot u -> serve slot (ref [ u ]));
              }
            in
            Atomic.set cur ep;
            let leased0 = ref [] in
            ignore (claim_for 0 leased0 ());
            serve 0 leased0;
            (* Fence, then settle. The fence makes any late-waking
               participant exit before touching shared state — without
               it a straggler could still be resolving while the
               supervisor sorts, or while the next generation is being
               prepped. Settling waits out units held by live slots,
               absorbs unclaimed ones, and treats units held by the dead
               as inert (a death AFTER the work drained does not abort:
               the dying slot's writes are published by its last
               [pending] decrement and its alive flag). *)
            Atomic.set failed true;
            let settled = ref false in
            while not !settled do
              settled := true;
              Array.iter
                (fun u ->
                  match Atomic.get u with
                  | -1 -> ()
                  | 0 ->
                    if not (Atomic.compare_and_set u 0 (-1)) then
                      settled := false
                  | v ->
                    let w = v - 1 in
                    if w > 0 && Atomic.get alive.(w) && not abandoned.(w)
                    then settled := false)
                units;
              if not !settled then begin
                Domain.cpu_relax ();
                monitor0 ()
              end
            done;
            match !death with
            | Some e ->
              (* Replay the attempt. Each retry needs a fresh death and
                 deaths are bounded by the restart budgets, so this
                 terminates under the injected model; the cap is a
                 backstop against a crash loop outside it. *)
              if !attempts > 1 + (d * (max_domain_restarts + 1)) then
                raise e;
              Array.iter
                (Array.iter (fun r ->
                     while Parallel.Spsc.try_pop r <> None do () done))
                rings;
              Array.iter (fun row -> Array.fill row 0 d 0) out_len;
              prep_parallel_gen !frontier;
              again := true
            | None -> ()
          done;
          (* logs complete. The sort is idempotent, so it runs as an
             ordinary requeue-on-death epoch; the merge replays the
             sequential id scan on this thread, as always. *)
          run_epoch ~n_units:d (fun _ s -> sort_phase s);
          merge_and_collect ()
        in
        (* warm-up, as in the barrier engine; exceptions (a kill aimed at
           domain 0, an injected allocation failure) propagate to the
           outer guard *)
        while (not !stop) && !seq_gen do
          expand_seq ()
        done;
        if not !stop then begin
          if !cutover = None then cutover := Some !depth;
          for w = 1 to d - 1 do
            spawn w
          done;
          Fun.protect ~finally:shutdown (fun () ->
              while not !stop do
                if !seq_gen then expand_seq ()
                else if engine = Sharded then run_sharded_gen ()
                else run_parallel_gen ()
              done)
        end
      in
      (* A snapshot of a finished exploration resumes to an empty
         frontier: nothing to do, return the restored graph as-is. *)
      if Array.length !frontier = 0 then stop := true;
      if d = 1 then
        while not !stop do
          expand_seq_guarded ()
        done
      else if supervise then guard supervised_drive
      else begin
        (* warm-up: no domains, no barriers, until the frontier is wide
           enough — or exploration finishes first *)
        while (not !stop) && !seq_gen do
          expand_seq_guarded ()
        done;
        if not !stop then begin
          (* a resumed run keeps the original run's recorded cutover *)
          if !cutover = None then cutover := Some !depth;
          let workers =
            Array.init (d - 1) (fun i -> Domain.spawn (fun () -> body (i + 1)))
          in
          body 0;
          Array.iter Domain.join workers
        end
      end;
      (* Build the result from a boundary image. When the boundary has
         unexpanded frontier states (stopped by a signal, or degraded out
         of an [Out_of_memory]), their transition lists are empty in the
         returned graph — the snapshot, not this graph, is the resume
         artifact. *)
      let result_of bd ~complete =
        let states = Array.concat (List.rev bd.b_states) in
        let orbits = Array.concat (List.rev bd.b_orbits) in
        let expanded = Array.concat (List.rev bd.b_trans) in
        assert (Array.length states = bd.b_n_states);
        assert (Array.length orbits = bd.b_n_states);
        assert (Array.length expanded = bd.b_n_expanded);
        let succs =
          if bd.b_n_expanded = bd.b_n_states then expanded
          else begin
            assert (not complete);
            Array.init bd.b_n_states (fun i ->
                if i < bd.b_n_expanded then expanded.(i) else [])
          end
        in
        let n_transitions =
          Array.fold_left (fun acc ts -> acc + List.length ts) 0 succs
        in
        orbit_sum := bd.b_orbit_sum;
        cutover := bd.b_cutover;
        let g = { cfg; states; orbits; succs; complete } in
        let stats =
          stats_base ~n_states:bd.b_n_states ~n_transitions
            ~max_depth:bd.b_depth ~max_frontier:bd.b_max_frontier
            ~candidates:bd.b_cand ~dedup_hits:bd.b_dups
            ~shard_load:(Array.map Hashtbl.length shard_tbl)
            ~complete ~depths:(List.rev bd.b_depths_rev)
        in
        (g, stats)
      in
      match !failure with
      | Some ((Out_of_memory | Resilience.Stalled _) as e)
        when snapshot_to <> None ->
        (* last-ditch degradation: flush the newest exact boundary and
           hand back a truncated result instead of dying with nothing *)
        set_stop
          (match e with
          | Out_of_memory -> Checker_stats.Oom
          | _ -> Checker_stats.Fault);
        (match snapshot_to with
        | Some path -> (
          try write_boundary path !last_boundary with Snapshot.Error _ -> ())
        | None -> ());
        result_of !last_boundary ~complete:false
      | Some e -> raise e
      | None ->
        (* a truncated (budget or signal) run leaves its newest exact
           boundary on disk so it can be resumed later *)
        (match snapshot_to with
        | Some path when not !complete -> write_boundary path !last_boundary
        | _ -> ());
        result_of (capture_boundary ()) ~complete:!complete
    end

  let default_handoff_batch = 64
  let default_steal_batch = 32

  let explore_with_stats ?(max_states = 2_000_000) ?(reduction = Full)
      ?snapshot_every ?snapshot_to ?resume_from ?mem_soft_limit_mb ?deadline_s
      ?(salvage = false) cfg =
    explore_impl ~max_states ~domains:1 ~par_threshold:0 ~reduction
      ~engine:Sharded ~handoff_batch:default_handoff_batch
      ~steal_batch:default_steal_batch ~snapshot_every ~snapshot_to
      ~resume_from ~mem_soft_limit_mb ~deadline_s ~salvage ~supervise:false cfg

  let default_par_threshold ~domains = 1024 * (domains - 1)

  let explore_par ?(max_states = 2_000_000) ?domains ?par_threshold
      ?(reduction = Full) ?(engine = Sharded) ?handoff_batch ?steal_batch
      ?snapshot_every ?snapshot_to ?resume_from ?mem_soft_limit_mb ?deadline_s
      ?(salvage = false) ?supervise cfg =
    let domains =
      match domains with
      | Some d -> max 1 d (* explicit override, even past the host count *)
      | None -> Domain.recommended_domain_count ()
    in
    let par_threshold =
      match par_threshold with
      | Some t -> max 0 t
      | None -> default_par_threshold ~domains
    in
    let supervise =
      match supervise with
      | Some s -> s
      | None ->
        (* domain faults armed means the caller wants them absorbed:
           default the self-healing crew on so the campaign exercises it *)
        Resilience.has_domain_faults ()
    in
    let handoff_batch =
      match handoff_batch with Some v -> v | None -> default_handoff_batch
    in
    let steal_batch =
      match steal_batch with Some v -> v | None -> default_steal_batch
    in
    explore_impl ~max_states ~domains ~par_threshold ~reduction ~engine
      ~handoff_batch ~steal_batch ~snapshot_every ~snapshot_to ~resume_from
      ~mem_soft_limit_mb ~deadline_s ~salvage ~supervise cfg

  let explore ?(max_states = 2_000_000) ?(reduction = Full) ?snapshot_every
      ?snapshot_to ?resume_from ?deadline_s ?(salvage = false) cfg =
    match (snapshot_every, snapshot_to, resume_from, deadline_s) with
    | None, None, None, None -> explore_basic ~max_states ~reduction cfg
    | _ ->
      (* Checkpointing lives in the generation-boundary machinery; its
         single-domain graph is bit-identical to the plain loop (the test
         suite cross-checks this on every in-tree protocol). *)
      fst
        (explore_impl ~max_states ~domains:1 ~par_threshold:0 ~reduction
           ~engine:Sharded ~handoff_batch:default_handoff_batch
           ~steal_batch:default_steal_batch ~snapshot_every ~snapshot_to
           ~resume_from ~mem_soft_limit_mb:None ~deadline_s ~salvage
           ~supervise:false cfg)

  (* ---------------------------------------------------------------- *)
  (* external-memory exploration (disk-backed visited set)             *)
  (* ---------------------------------------------------------------- *)

  (* Checkpoint payload of the external-memory explorer. Stats-only — no
     transition lists: the resume point is the pending frontier plus the
     visited set, which lives partly here ([xp_hot]) and partly in the
     immutable run files the manifest names. *)
  type external_payload = {
    xp_frontier : state array;
    xp_depth : int;
    xp_depths_rev : Checker_stats.depth_sample list;
    xp_n_states : int;
    xp_n_transitions : int;
    xp_candidates : int;
    xp_dedup : int;
    xp_max_frontier : int;
    xp_orbit_sum : int;
    xp_elapsed : float;
    xp_codec : Cd.dump;
    xp_hot : string array;
    xp_manifest : Disk_visited.manifest;
  }

  (* Distinct from the in-RAM fingerprint: an external checkpoint holds no
     transition lists and references run files, so the two snapshot kinds
     must never accept each other. *)
  let external_fingerprint ~reduction cfg =
    let digest, descr = fingerprint ~reduction cfg in
    ( Digest.string (Marshal.to_string (digest, "external") []),
      descr ^ " engine=external" )

  let explore_external ?(max_states = 2_000_000) ?(reduction = Full)
      ?snapshot_every ?snapshot_to ?resume_from ?mem_soft_limit_mb
      ?(hot_cap = 1 lsl 20) ?disk_quota_bytes ?deadline_s ?(salvage = false)
      ?(wide = false) ~dir cfg =
    let n_procs = Array.length cfg.ids in
    let n_registers = Naming.size cfg.namings.(0) in
    let digest, descr = external_fingerprint ~reduction cfg in
    (* A checkpoint is only usable if every run file its manifest lists
       still validates in full; under [~salvage] walk the intact chunks
       newest first until one's manifest checks out. *)
    let restore_checkpoint path =
      if salvage then begin
        let meta, chunks, salv = Snapshot.read_chunks ~path in
        Snapshot.check_fingerprint ~path meta ~fingerprint:digest ~descr;
        (match salv with
        | Some s ->
          Format.eprintf "snapshot salvage: %s: %s; rolled back to chunk %d@."
            path s.Snapshot.detail s.Snapshot.kept_chunks
        | None -> ());
        let rec pick = function
          | [] ->
            (* every intact chunk names a run set that no longer
               validates (e.g. a short write silently damaged a spilled
               run every surviving manifest lists). Starting over is
               slower but never wrong — and [Disk_visited.create] below
               sweeps the damaged runs away. *)
            Format.eprintf
              "snapshot salvage: no checkpoint of %s has a valid run \
               set; restarting from scratch@."
              path;
            None
          | payload :: older -> (
            let sp : external_payload = Marshal.from_string payload 0 in
            match
              Disk_visited.restore ?quota_bytes:disk_quota_bytes ~dir
                ~fingerprint:digest ~descr sp.xp_manifest
            with
            | dv -> Some (sp, dv)
            | exception Snapshot.Error e ->
              Format.eprintf
                "snapshot salvage: %s; falling back to an older checkpoint@."
                (Snapshot.error_message e);
              pick older)
        in
        pick chunks
      end
      else begin
        let meta, payload = Snapshot.read ~path in
        Snapshot.check_fingerprint ~path meta ~fingerprint:digest ~descr;
        let sp : external_payload = Marshal.from_string payload 0 in
        Some
          ( sp,
            Disk_visited.restore ?quota_bytes:disk_quota_bytes ~dir
              ~fingerprint:digest ~descr sp.xp_manifest )
      end
    in
    let resumed = Option.bind resume_from restore_checkpoint in
    let stopped = ref Checker_stats.Completed in
    let set_stop r =
      if !stopped = Checker_stats.Completed then stopped := r
    in
    let t0 =
      Checker_stats.now ()
      -. (match resumed with Some (sp, _) -> sp.xp_elapsed | None -> 0.)
    in
    let deadline_at =
      Option.map (fun s -> Checker_stats.now () +. s) deadline_s
    in
    let codec =
      match resumed with
      | Some (sp, _) -> Cd.of_dump sp.xp_codec
      | None -> Cd.create ~wide ()
    in
    let key_len = Cd.width codec * (n_registers + n_procs) in
    let dv =
      match resumed with
      | Some (_, dv) -> dv
      | None -> Disk_visited.create ?quota_bytes:disk_quota_bytes ~dir ~key_len ()
    in
    let syms = syms_of ~reduction cfg in
    let group_order = max 1 (List.length syms) in
    let canon = reduction = Canon in
    let degraded = canon && Cn.degraded ~n:n_procs in
    let cc = make_canon_cache codec syms (initial cfg) in
    let sig_pruned () =
      match cc.inc with Some i -> Cn.pruned i | None -> 0
    in
    (* Visited = hot ∪ runs, disjoint: a key is interned only after both
       proved it absent, and a spill MOVES hot to a run. *)
    let hot : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
    let n_states = ref 0 in
    let n_transitions = ref 0 in
    let depth = ref 0 in
    let depths_rev : Checker_stats.depth_sample list ref = ref [] in
    let total_cand = ref 1 in
    let total_dups = ref 0 in
    let max_frontier = ref 1 in
    let orbit_sum = ref 0 in
    let frontier = ref ([||] : state array) in
    let complete = ref true in
    (match resumed with
    | Some (sp, _) ->
      Array.iter (fun k -> Hashtbl.replace hot k ()) sp.xp_hot;
      n_states := sp.xp_n_states;
      n_transitions := sp.xp_n_transitions;
      depth := sp.xp_depth;
      depths_rev := sp.xp_depths_rev;
      total_cand := sp.xp_candidates;
      total_dups := sp.xp_dedup;
      max_frontier := sp.xp_max_frontier;
      orbit_sum := sp.xp_orbit_sum;
      frontier := sp.xp_frontier
    | None ->
      if max_states >= 1 then begin
        let rep0, key0, orbit0 = canonize_cached cc codec (initial cfg) in
        Hashtbl.replace hot key0 ();
        n_states := 1;
        orbit_sum := orbit0;
        frontier := [| rep0 |]
      end
      else begin
        complete := false;
        set_stop Checker_stats.Budget;
        total_cand := 0;
        max_frontier := 0
      end);
    let capture ~complete =
      {
        Checker_stats.protocol = P.name;
        n_procs;
        n_registers;
        domains = 1;
        n_states = !n_states;
        n_transitions = !n_transitions;
        max_depth = !depth;
        max_frontier = !max_frontier;
        candidates = !total_cand;
        dedup_hits = !total_dups;
        shard_load = [| !n_states |];
        elapsed_s = Checker_stats.now () -. t0;
        complete;
        stop = (if complete then Checker_stats.Completed else !stopped);
        restarts = 0;
        recoveries = 0;
        canon;
        degraded;
        group_order;
        orbit_sum = !orbit_sum;
        sig_pruned = sig_pruned ();
        canon_hits = cc.hits;
        cutover = None;
        steals = 0;
        handoffs = 0;
        spilled_runs = Disk_visited.n_runs dv;
        disk_probes = Disk_visited.n_probes dv;
        depths = List.rev !depths_rev;
      }
    in
    let hot_keys () =
      let a = Array.make (Hashtbl.length hot) "" in
      let i = ref 0 in
      Hashtbl.iter
        (fun k () ->
          a.(!i) <- k;
          incr i)
        hot;
      a
    in
    let last_snapshot_states = ref !n_states in
    let snapshot_gap =
      match snapshot_every with
      | Some e -> max 1 e
      | None -> default_snapshot_every
    in
    let write_checkpoint path =
      let payload =
        {
          xp_frontier = !frontier;
          xp_depth = !depth;
          xp_depths_rev = !depths_rev;
          xp_n_states = !n_states;
          xp_n_transitions = !n_transitions;
          xp_candidates = !total_cand;
          xp_dedup = !total_dups;
          xp_max_frontier = !max_frontier;
          xp_orbit_sum = !orbit_sum;
          xp_elapsed = Checker_stats.now () -. t0;
          xp_codec = Cd.dump codec;
          xp_hot = hot_keys ();
          xp_manifest = Disk_visited.manifest dv;
        }
      in
      Snapshot.append ~path ~fingerprint:digest ~descr
        (Marshal.to_string payload []);
      last_snapshot_states := !n_states
    in
    let soft_limit_bytes =
      Option.map (fun mb -> mb * 1024 * 1024) mem_soft_limit_mb
    in
    let heap_bytes () =
      let s = Gc.quick_stat () in
      s.Gc.heap_words * (Sys.word_size / 8)
    in
    let hot_cap = max 1 hot_cap in
    (* At the watermark, MOVE the hot table to disk as one sorted
       immutable run; spill-then-checkpoint ordering keeps every snapshot
       chunk's manifest/hot/frontier mutually consistent. A spill that
       would breach the byte quota is refused BEFORE any byte is written
       ([`Quota_hit]): the caller cuts the run at this exact boundary
       instead of corrupting or over-filling the run set. *)
    let maybe_spill () =
      let pressured =
        match soft_limit_bytes with
        | Some limit -> heap_bytes () > limit
        | None -> false
      in
      if Hashtbl.length hot > 0 && (Hashtbl.length hot >= hot_cap || pressured)
      then
        if
          Disk_visited.would_exceed_quota dv
            ~adding:(Hashtbl.length hot * key_len)
        then `Quota_hit
        else begin
          let keys = hot_keys () in
          Array.sort compare keys;
          Disk_visited.spill dv ~fingerprint:digest ~descr keys;
          Hashtbl.reset hot;
          if pressured then Gc.compact ();
          `Spilled
        end
      else `No_spill
    in
    let stop = ref false in
    (* Scalars of the newest exact boundary, for the Out_of_memory
       degradation path (mid-generation state is not exact). *)
    let last_exact = ref (capture ~complete:!complete) in
    if Array.length !frontier = 0 then stop := true;
    let run_generation () =
      let fr = !frontier in
      let nf = Array.length fr in
      (* expand + canonize every candidate, in frontier order *)
      let cand_rev = ref [] in
      let ncand = ref 0 in
      for i = 0 to nf - 1 do
        (* fault seam, as in the in-RAM engines *)
        Resilience.worker_tick ~domain:0;
        List.iter
          (fun (_, st') ->
            let rep, key, orbit = canonize_cached cc codec st' in
            cand_rev := (key, rep, orbit) :: !cand_rev;
            incr ncand)
          (successors cfg fr.(i))
      done;
      let cands = Array.of_list (List.rev !cand_rev) in
      cand_rev := [];
      let ncand = !ncand in
      (* classify: cls.(k) = -1 known in hot; -2 - k0 in-batch duplicate
         of candidate k0; k itself = unknown first occurrence *)
      let cls = Array.make ncand 0 in
      let scratch : (string, int) Hashtbl.t = Hashtbl.create 256 in
      let unknown_rev = ref [] in
      Array.iteri
        (fun k (key, _, _) ->
          if Hashtbl.mem hot key then cls.(k) <- -1
          else
            match Hashtbl.find_opt scratch key with
            | Some k0 -> cls.(k) <- -2 - k0
            | None ->
              Hashtbl.add scratch key k;
              cls.(k) <- k;
              unknown_rev := key :: !unknown_rev)
        cands;
      (* the budget may trip inside this generation: flush the (still
         exact) pre-generation boundary first, so a budget-truncated run
         resumes bit-identically from here *)
      (match snapshot_to with
      | Some path when !complete && !n_states + ncand > max_states ->
        write_checkpoint path
      | _ -> ());
      (* delayed duplicate detection: sort the unknowns once, stream every
         run once *)
      let unknown = Array.of_list (List.rev !unknown_rev) in
      Array.sort compare unknown;
      let on_disk : (string, unit) Hashtbl.t =
        Hashtbl.create (max 16 (Array.length unknown))
      in
      if Array.length unknown > 0 then begin
        let found = Disk_visited.probe dv unknown in
        Array.iteri
          (fun i k -> if found.(i) then Hashtbl.replace on_disk k ())
          unknown
      end;
      (* the id scan, in candidate order — identical budget semantics to
         the in-RAM engines. fate of a first occurrence: 1 kept (known on
         disk, or interned), 0 dropped by the budget. *)
      let fresh_rev = ref [] in
      let discovered = ref 0 and dups = ref 0 and kept = ref 0 in
      let fate = Array.make ncand (-1) in
      Array.iteri
        (fun k (key, rep, orbit) ->
          let c = cls.(k) in
          if c = -1 then begin
            incr dups;
            incr kept
          end
          else if c >= 0 then begin
            if Hashtbl.mem on_disk key then begin
              (* a known state; deliberately NOT cached back into hot —
                 that would break hot/runs disjointness. Recurring keys
                 are re-probed, the classic DDD trade. *)
              incr dups;
              incr kept;
              fate.(k) <- 1
            end
            else if !n_states < max_states then begin
              incr n_states;
              incr discovered;
              incr kept;
              Hashtbl.replace hot key ();
              orbit_sum := !orbit_sum + orbit;
              fresh_rev := rep :: !fresh_rev;
              fate.(k) <- 1
            end
            else begin
              complete := false;
              set_stop Checker_stats.Budget;
              fate.(k) <- 0
            end
          end
          else begin
            let k0 = -2 - c in
            if fate.(k0) = 1 then begin
              incr dups;
              incr kept
            end
            else begin
              (* duplicate of a budget-dropped candidate *)
              complete := false;
              set_stop Checker_stats.Budget
            end
          end)
        cands;
      (* fault seam: an injected allocation failure fires here, before the
         generation is committed *)
      Resilience.boundary_tick ();
      depths_rev :=
        {
          Checker_stats.depth = !depth;
          frontier = nf;
          candidates = ncand;
          discovered = !discovered;
          duplicates = !dups;
        }
        :: !depths_rev;
      total_cand := !total_cand + ncand;
      total_dups := !total_dups + !dups;
      n_transitions := !n_transitions + !kept;
      let next = Array.of_list (List.rev !fresh_rev) in
      let nn = Array.length next in
      if nn = 0 then stop := true
      else begin
        if nn > !max_frontier then max_frontier := nn;
        frontier := next;
        incr depth;
        let outcome = maybe_spill () in
        (match outcome with
        | `Quota_hit ->
          (* graceful disk-full degradation: this boundary is still
             exact (the hot table simply was not moved to disk), so
             flush it and stop with an honest reason — the run resumes
             under a raised quota from exactly here *)
          complete := false;
          set_stop Checker_stats.Disk_full;
          stop := true;
          (match snapshot_to with
          | Some path -> write_checkpoint path
          | None -> ())
        | `Spilled | `No_spill -> ());
        if !complete then begin
          last_exact := capture ~complete:true;
          match snapshot_to with
          | Some path
            when outcome = `Spilled
                 || !n_states - !last_snapshot_states >= snapshot_gap ->
            write_checkpoint path
          | _ -> ()
        end;
        if Snapshot.stop_requested () then begin
          complete := false;
          set_stop Checker_stats.Interrupted;
          stop := true
        end;
        match deadline_at with
        | Some td when Checker_stats.now () >= td ->
          complete := false;
          set_stop Checker_stats.Deadline;
          stop := true
        | _ -> ()
      end
    in
    try
      while not !stop do
        run_generation ()
      done;
      (* a signal- or deadline-stopped run ends at an exact boundary:
         flush it so the run can be picked up later. (A budget-truncated
         run already flushed its pre-trip boundary above.) *)
      (match snapshot_to with
      | Some path
        when (not !complete)
             && (!stopped = Checker_stats.Interrupted
                || !stopped = Checker_stats.Deadline) ->
        write_checkpoint path
      | _ -> ());
      capture ~complete:!complete
    with Out_of_memory when snapshot_to <> None ->
      (* disk-bounded degradation: the last periodic checkpoint is the
         resume point — writing a new one here would both marshal a large
         payload under memory pressure and capture inexact mid-generation
         state *)
      set_stop Checker_stats.Oom;
      {
        !last_exact with
        Checker_stats.elapsed_s = Checker_stats.now () -. t0;
        complete = false;
        stop = Checker_stats.Oom;
        spilled_runs = Disk_visited.n_runs dv;
        disk_probes = Disk_visited.n_probes dv;
      }

  (* ---------------------------------------------------------------- *)
  (* self-healing driver                                               *)
  (* ---------------------------------------------------------------- *)

  let with_recovery ?(max_retries = 3) ?resume_from ~snapshot_to run =
    let transient = function
      | Out_of_memory | Resilience.Killed _ | Resilience.Stalled _ -> true
      (* injected disk faults fire at most once, so retrying through an
         EIO/ENOSPC/failed-fsync converges just like a kill does *)
      | Resilience.Io_fault _ -> true
      | Snapshot.Error (Snapshot.Corrupt _) -> true
      | _ -> false
    in
    (* Only hand the next attempt a resume point that will actually load;
       with no usable snapshot on disk the retry restarts from scratch —
       slower, never wrong. *)
    let usable_snapshot () =
      match Snapshot.read_salvaged ~path:snapshot_to with
      | _ -> Some snapshot_to
      | exception _ -> None
    in
    (* [attempt] is ONE counter over every retry, whatever mix of fault
       kinds forced them — an alternating kill/stall/EIO plan spends the
       same bounded budget a single repeated fault would. The count is
       stamped into the returned statistics as [recoveries]. *)
    let rec go attempt resume =
      match run ~resume_from:resume ~snapshot_to with
      | (g, stats)
        when (not g.complete)
             && (stats.Checker_stats.stop = Checker_stats.Oom
                || stats.Checker_stats.stop = Checker_stats.Fault)
             && attempt < max_retries ->
        (* the engine degraded out of an infrastructure failure after
           flushing its newest boundary: pick it up and push on *)
        go (attempt + 1) (usable_snapshot ())
      | g, stats ->
        (g, { stats with Checker_stats.recoveries = attempt })
      | exception e when transient e && attempt < max_retries ->
        go (attempt + 1) (usable_snapshot ())
    in
    go 0 resume_from

  let solo_run cfg st ~proc ~max_steps =
    let rec go st steps =
      match P.status st.locals.(proc) with
      | Protocol.Decided v -> `Decided v
      | _ ->
        if steps >= max_steps then `Out_of_steps
        else
          let n = Array.length st.locals in
          let m = Array.length st.mem in
          match P.step ~n ~m ~id:cfg.ids.(proc) st.locals.(proc) with
          | Protocol.Coin _ -> `Coin
          | _ ->
            (match step_states cfg st proc with
            | [ st' ] -> go st' (steps + 1)
            | _ -> assert false)
    in
    go st 0

  (* Memo entries record EXACT distances along a solo run, so a hit
     reproduces precisely what the unmemoized walk would have returned
     at any starting depth:
       MDec (s, v)   the run decides v after exactly s further steps
       MCoin s       the first coin flip is exactly s further steps away
       MNoDec s      s further steps were once walked with no decision
                     and no coin (a bound cut the witness off there)
     MDec/MCoin are total information and never change; MNoDec is a lower
     bound and only ever grows. *)
  type solo_memo = MDec of int * P.output | MCoin of int | MNoDec of int

  let check_obstruction_freedom ?bound ?(memo = true) g =
    let n = Array.length g.cfg.ids in
    let m = Naming.size g.cfg.namings.(0) in
    let bound =
      match bound with Some b -> b | None -> 4 * m * (n + 2) * (n + 2)
    in
    let solo =
      if not memo then fun st proc -> solo_run g.cfg st ~proc ~max_steps:bound
      else begin
        let codec = Cd.create () in
        let tbl : (string, solo_memo) Hashtbl.t = Hashtbl.create 4096 in
        let store key e =
          match (Hashtbl.find_opt tbl key, e) with
          | Some (MDec _ | MCoin _), _ -> ()
          | Some (MNoDec s), MNoDec s' when s' <= s -> ()
          | _ -> Hashtbl.replace tbl key e
        in
        let record visited mk = List.iter (fun (key, i) -> store key (mk i)) visited in
        fun st0 proc ->
          let rec go st k visited =
            match P.status st.locals.(proc) with
            | Protocol.Decided v ->
              record visited (fun i -> MDec (k - i, v));
              `Decided v
            | _ -> (
              let key = Cd.encode_solo codec ~proc st.locals.(proc) st.mem in
              match Hashtbl.find_opt tbl key with
              | Some (MDec (s, v)) ->
                record ((key, k) :: visited) (fun i -> MDec (k - i + s, v));
                if k + s <= bound then `Decided v else `Out_of_steps
              | Some (MCoin s) ->
                record ((key, k) :: visited) (fun i -> MCoin (k - i + s));
                if k + s < bound then `Coin else `Out_of_steps
              | Some (MNoDec s) when k + s >= bound ->
                record ((key, k) :: visited) (fun i -> MNoDec (k - i + s));
                `Out_of_steps
              | Some (MNoDec _) | None ->
                let visited = (key, k) :: visited in
                if k >= bound then begin
                  record visited (fun i -> MNoDec (bound - i));
                  `Out_of_steps
                end
                else (
                  match P.step ~n ~m ~id:g.cfg.ids.(proc) st.locals.(proc) with
                  | Protocol.Coin _ ->
                    record visited (fun i -> MCoin (k - i));
                    `Coin
                  | _ -> (
                    match step_states g.cfg st proc with
                    | [ st' ] -> go st' (k + 1) visited
                    | _ -> assert false)))
          in
          go st0 0 []
      end
    in
    let exception Found of int * int in
    try
      Array.iteri
        (fun sid st ->
          Array.iteri
            (fun proc local ->
              if not (Protocol.is_decided (P.status local)) then
                match solo st proc with
                | `Decided _ -> ()
                | `Out_of_steps | `Coin -> raise (Found (sid, proc)))
            st.locals)
        g.states;
      None
    with Found (sid, proc) -> Some (sid, proc)

  let to_flat g =
    {
      Flatgraph.n_procs = Array.length g.cfg.ids;
      statuses =
        Array.map
          (fun st -> Array.map (fun l -> Flatgraph.of_status (P.status l)) st.locals)
          g.states;
      succs =
        Array.map
          (fun ts ->
            List.map
              (fun { dst; label } ->
                {
                  Flatgraph.dst;
                  proc = label.proc;
                  enters_cs = label.enters_cs;
                })
              ts)
          g.succs;
      complete = g.complete;
    }
end
