open Anonmem

type reduction = Full | Canon

module Make (P : Protocol.PROTOCOL) = struct
  module Cd = Codec.Make (P)
  module Cn = Canon.Make (P)

  type config = {
    ids : int array;
    inputs : P.input array;
    namings : Naming.t array;
  }

  let config ?m ~ids ~inputs () =
    let ids = Array.of_list ids in
    let n = Array.length ids in
    let m = match m with Some m -> m | None -> P.default_registers ~n in
    {
      ids;
      inputs = Array.of_list inputs;
      namings = Array.init n (fun _ -> Naming.identity m);
    }

  type state = { mem : P.Value.t array; locals : P.local array }

  type label = { proc : int; enters_cs : bool }

  type transition = { dst : int; label : label }

  type graph = {
    cfg : config;
    states : state array;
    orbits : int array;
    succs : transition list array;
    complete : bool;
  }

  let initial cfg =
    let n = Array.length cfg.ids in
    let m = Naming.size cfg.namings.(0) in
    {
      mem = Array.make m P.Value.init;
      locals =
        Array.init n (fun i -> P.start ~n ~m ~id:cfg.ids.(i) cfg.inputs.(i));
    }

  let statuses st = Array.map P.status st.locals

  let with_local st proc local =
    let locals = Array.copy st.locals in
    locals.(proc) <- local;
    { st with locals }

  let with_write st proc local phys v =
    let mem = Array.copy st.mem in
    mem.(phys) <- v;
    let locals = Array.copy st.locals in
    locals.(proc) <- local;
    { mem; locals }

  (* All states one step of [proc] can lead to (two for a coin flip). *)
  let step_states cfg st proc =
    let n = Array.length st.locals in
    let m = Array.length st.mem in
    let naming = cfg.namings.(proc) in
    match P.step ~n ~m ~id:cfg.ids.(proc) st.locals.(proc) with
    | Protocol.Read (j, k) ->
      let v = st.mem.(Naming.apply naming j) in
      [ with_local st proc (k v) ]
    | Protocol.Write (j, v, l) ->
      [ with_write st proc l (Naming.apply naming j) v ]
    | Protocol.Rmw (j, f) ->
      let phys = Naming.apply naming j in
      let v, l = f st.mem.(phys) in
      [ with_write st proc l phys v ]
    | Protocol.Internal l -> [ with_local st proc l ]
    | Protocol.Coin k -> [ with_local st proc (k true); with_local st proc (k false) ]

  let successors cfg st =
    let acc = ref [] in
    Array.iteri
      (fun proc local ->
        if not (Protocol.is_decided (P.status local)) then begin
          let before_crit = P.status local = Protocol.Critical in
          List.iter
            (fun st' ->
              let enters_cs =
                (not before_crit)
                && P.status st'.locals.(proc) = Protocol.Critical
              in
              acc := ({ proc; enters_cs }, st') :: !acc)
            (step_states cfg st proc)
        end)
      st.locals;
    List.rev !acc

  (* The automorphism group of [cfg], or [] when the reduction is off so
     the hot path can skip orbit enumeration entirely. *)
  let syms_of ~reduction cfg =
    match reduction with
    | Full -> []
    | Canon -> Cn.group ~ids:cfg.ids ~inputs:cfg.inputs ~namings:cfg.namings

  let canonize syms st =
    match syms with
    | [] | [ _ ] -> (st, 1)
    | syms ->
      let mem, locals, orbit = Cn.canonize syms st.mem st.locals in
      ({ mem; locals }, orbit)

  let explore ?(max_states = 2_000_000) ?(reduction = Full) cfg =
    let codec = Cd.create () in
    let syms = syms_of ~reduction cfg in
    let table : (string, int) Hashtbl.t = Hashtbl.create 4096 in
    let states_rev = ref [] in
    let orbits_rev = ref [] in
    let n_states = ref 0 in
    let pending = Queue.create () in
    let complete = ref true in
    let intern st =
      let rep, orbit = canonize syms st in
      let key = Cd.encode codec rep.mem rep.locals in
      match Hashtbl.find_opt table key with
      | Some id -> Some id
      | None ->
        if !n_states >= max_states then begin
          complete := false;
          None
        end
        else begin
          let id = !n_states in
          Hashtbl.add table key id;
          states_rev := rep :: !states_rev;
          orbits_rev := orbit :: !orbits_rev;
          incr n_states;
          Queue.add rep pending;
          Some id
        end
    in
    ignore (intern (initial cfg));
    (* [pending] is FIFO and ids are handed out in discovery order, so the
       queue pops states in id order: consing each expansion's transition
       list and reversing at the end rebuilds the id-indexed array without
       any intermediate id-keyed table. *)
    let succs_rev = ref [] in
    while not (Queue.is_empty pending) do
      let st = Queue.pop pending in
      let trans =
        List.filter_map
          (fun (label, st') ->
            match intern st' with
            | Some dst -> Some { dst; label }
            | None -> None)
          (successors cfg st)
      in
      succs_rev := trans :: !succs_rev
    done;
    {
      cfg;
      states = Array.of_list (List.rev !states_rev);
      orbits = Array.of_list (List.rev !orbits_rev);
      succs = Array.of_list (List.rev !succs_rev);
      complete = !complete;
    }

  (* Frontier-parallel BFS.

     The sequential explorer above pops a FIFO queue, so states are
     discovered generation by generation: every state at depth d gets an id
     below every state at depth d+1, and within one generation ids follow
     (expanded-state id ascending, successor position ascending). The
     parallel explorer reproduces exactly that order.

     Generations start sequential: while the frontier is narrower than
     [par_threshold] the barrier choreography costs more than the
     expansion work, so worker 0 expands the whole generation alone
     (before any domain is spawned at all, if the warm-up is still
     running). Once the frontier first reaches the threshold, the worker
     domains spawn — that depth is recorded as the [cutover] stat — and
     each wide generation runs in barrier-separated phases:

       A  workers expand a slice of the frontier (successor computation
          plus canonicalization — the work that dominates the run),
          packing every successor into its string key;
       -  worker 0 flattens the successor lists into one candidate array,
          in the sequential discovery order;
       B  the interning table is sharded by key hash; each worker
          resolves the candidates its shard owns against its own table
          (no locks — ownership is a partition), marking each candidate
          as an existing state, a duplicate of an earlier candidate of
          this generation, or fresh;
       -  worker 0 scans the candidate array once, in order, handing out
          consecutive ids to fresh candidates — exactly the ids the
          sequential explorer would have assigned, including where the
          [max_states] budget cuts off;
       C  workers insert their shards' newly-identified states and build
          the transition lists for their frontier slice;
       -  worker 0 appends the generation's states and transitions, forms
          the next frontier and decides the next generation's mode.

     Narrow generations after the cutover (a draining frontier) drop back
     to sequential expansion by worker 0 — one barrier per generation
     instead of six. The result is bit-identical to [explore] on every
     input and every mode schedule, which the test suite cross-checks for
     every in-tree protocol. *)

  let explore_impl ~max_states ~domains ~par_threshold ~reduction cfg =
    let t0 = Checker_stats.now () in
    let d = max 1 domains in
    let n_procs = Array.length cfg.ids in
    let n_registers = Naming.size cfg.namings.(0) in
    let codec = Cd.create () in
    let syms = syms_of ~reduction cfg in
    let group_order = max 1 (List.length syms) in
    let canon = reduction = Canon in
    let cutover = ref None in
    let orbit_sum = ref 0 in
    let stats_base ~n_states ~n_transitions ~max_depth ~max_frontier
        ~candidates ~dedup_hits ~shard_load ~complete ~depths =
      {
        Checker_stats.protocol = P.name;
        n_procs;
        n_registers;
        domains = d;
        n_states;
        n_transitions;
        max_depth;
        max_frontier;
        candidates;
        dedup_hits;
        shard_load;
        elapsed_s = Checker_stats.now () -. t0;
        complete;
        canon;
        group_order;
        orbit_sum = !orbit_sum;
        cutover = !cutover;
        depths;
      }
    in
    if max_states < 1 then
      ( { cfg; states = [||]; orbits = [||]; succs = [||]; complete = false },
        stats_base ~n_states:0 ~n_transitions:0 ~max_depth:0 ~max_frontier:0
          ~candidates:0 ~dedup_hits:0 ~shard_load:(Array.make d 0)
          ~complete:false ~depths:[] )
    else begin
      let rep0, orbit0 = canonize syms (initial cfg) in
      let key0 = Cd.encode codec rep0.mem rep0.locals in
      (* Shard s owns every state whose key hash is s mod d. *)
      let key_owner key = Hashtbl.hash (key : string) mod d in
      let shard_tbl : (string, int) Hashtbl.t array =
        Array.init d (fun _ -> Hashtbl.create 1024)
      in
      (* Per-shard scratch: first candidate index of each fresh state seen
         this generation, so later duplicates resolve to it. *)
      let scratch : (string, int) Hashtbl.t array =
        Array.init d (fun _ -> Hashtbl.create 256)
      in
      let b = Parallel.Barrier.create d in
      (* Shared per-generation structures. Plain refs: every write is
         published to the readers of the next phase by the barrier. *)
      let stop = ref false in
      let frontier = ref [| rep0 |] in
      let succ_lists : (label * state * string * int) list array ref =
        ref [||]
      in
      let offsets = ref [||] in
      let cand_state = ref [||] in
      let cand_key = ref [||] in
      let cand_orbit = ref [||] in
      let cand_owner = ref [||] in
      (* resolved.(k): id >= 0 existing state; -1 fresh (first occurrence
         in this generation); -2 - k0 duplicate of candidate k0. *)
      let resolved = ref [||] in
      (* cand_id.(k): final state id, or -1 when the budget dropped it. *)
      let cand_id = ref [||] in
      let trans : transition list array ref = ref [||] in
      let n_states = ref 1 in
      let complete = ref true in
      let states_chunks = ref [ [| rep0 |] ] in
      let orbits_chunks = ref [ [| orbit0 |] ] in
      let trans_chunks = ref [] in
      (* stats accumulators (worker 0 only) *)
      let depth = ref 0 in
      let depths_rev = ref [] in
      let total_cand = ref 0 in
      let total_dups = ref 0 in
      let max_frontier = ref 1 in
      let failure = ref None in
      let fail_mutex = Mutex.create () in
      let guard f =
        try f ()
        with e ->
          Mutex.lock fail_mutex;
          (match !failure with None -> failure := Some e | Some _ -> ());
          Mutex.unlock fail_mutex
      in
      orbit_sum := orbit0;
      Hashtbl.add shard_tbl.(key_owner key0) key0 0;
      (* Mode of the generation about to run; worker 0 decides the next
         one at every generation end. *)
      let seq_gen = ref (d = 1 || 1 < par_threshold) in
      if not !seq_gen then begin
        succ_lists := Array.make 1 [];
        trans := Array.make 1 []
      end;
      (* Close out a generation: record its transitions and stats, append
         the fresh states (already in id order) and pick the next mode. *)
      let finish_gen ~tr ~fresh ~orbs ~ncand ~dups ~discovered =
        trans_chunks := tr :: !trans_chunks;
        depths_rev :=
          {
            Checker_stats.depth = !depth;
            frontier = Array.length !frontier;
            candidates = ncand;
            discovered;
            duplicates = dups;
          }
          :: !depths_rev;
        total_cand := !total_cand + ncand;
        total_dups := !total_dups + dups;
        let nf = Array.length fresh in
        if nf = 0 || !failure <> None then stop := true
        else begin
          states_chunks := fresh :: !states_chunks;
          orbits_chunks := orbs :: !orbits_chunks;
          frontier := fresh;
          if nf > !max_frontier then max_frontier := nf;
          incr depth;
          seq_gen := d = 1 || nf < par_threshold;
          if not !seq_gen then begin
            succ_lists := Array.make nf [];
            trans := Array.make nf []
          end
        end
      in
      (* One whole generation, sequentially (worker 0 / warm-up). Interns
         straight into the shard tables so later parallel generations
         find the states in the right shard. *)
      let expand_seq () =
        let fr = !frontier in
        let nf = Array.length fr in
        let tr = Array.make nf [] in
        let fresh_rev = ref [] in
        let orb_rev = ref [] in
        let ncand = ref 0 and dups = ref 0 and discovered = ref 0 in
        for i = 0 to nf - 1 do
          tr.(i) <-
            List.filter_map
              (fun (label, st') ->
                incr ncand;
                let rep, orbit = canonize syms st' in
                let key = Cd.encode codec rep.mem rep.locals in
                let tbl = shard_tbl.(key_owner key) in
                match Hashtbl.find_opt tbl key with
                | Some dst ->
                  incr dups;
                  Some { dst; label }
                | None ->
                  if !n_states >= max_states then begin
                    complete := false;
                    None
                  end
                  else begin
                    let id = !n_states in
                    incr n_states;
                    incr discovered;
                    Hashtbl.add tbl key id;
                    orbit_sum := !orbit_sum + orbit;
                    fresh_rev := rep :: !fresh_rev;
                    orb_rev := orbit :: !orb_rev;
                    Some { dst = id; label }
                  end)
              (successors cfg fr.(i))
        done;
        finish_gen ~tr
          ~fresh:(Array.of_list (List.rev !fresh_rev))
          ~orbs:(Array.of_list (List.rev !orb_rev))
          ~ncand:!ncand ~dups:!dups ~discovered:!discovered
      in
      let expand_seq_guarded () =
        guard expand_seq;
        if !failure <> None then stop := true
      in
      let phase_a me =
        let fr = !frontier and sl = !succ_lists in
        let nf = Array.length fr in
        let i = ref me in
        while !i < nf do
          sl.(!i) <-
            List.map
              (fun (label, st') ->
                let rep, orbit = canonize syms st' in
                let key = Cd.encode codec rep.mem rep.locals in
                (label, rep, key, orbit))
              (successors cfg fr.(!i));
          i := !i + d
        done
      in
      let flatten () =
        let fr = !frontier and sl = !succ_lists in
        let nf = Array.length fr in
        let offs = Array.make nf 0 in
        let ncand = ref 0 in
        for i = 0 to nf - 1 do
          offs.(i) <- !ncand;
          ncand := !ncand + List.length sl.(i)
        done;
        let ncand = !ncand in
        let cs = Array.make ncand rep0 in
        let ck = Array.make ncand "" in
        let co = Array.make ncand 0 in
        let ow = Array.make ncand 0 in
        for i = 0 to nf - 1 do
          List.iteri
            (fun j (_, st', key, orbit) ->
              cs.(offs.(i) + j) <- st';
              ck.(offs.(i) + j) <- key;
              co.(offs.(i) + j) <- orbit;
              ow.(offs.(i) + j) <- key_owner key)
            sl.(i)
        done;
        offsets := offs;
        cand_state := cs;
        cand_key := ck;
        cand_orbit := co;
        cand_owner := ow;
        resolved := Array.make ncand (-1);
        cand_id := Array.make ncand (-1)
      in
      let phase_b me =
        let ck = !cand_key and ow = !cand_owner and rs = !resolved in
        let tbl = shard_tbl.(me) and scr = scratch.(me) in
        Array.iteri
          (fun k o ->
            if o = me then
              let key = ck.(k) in
              match Hashtbl.find_opt tbl key with
              | Some id -> rs.(k) <- id
              | None -> (
                match Hashtbl.find_opt scr key with
                | Some k0 -> rs.(k) <- -2 - k0
                | None ->
                  Hashtbl.add scr key k;
                  rs.(k) <- -1))
          ow
      in
      (* The one inherently sequential step: replay the candidate scan the
         sequential explorer would have done, in the same order, so fresh
         states receive identical ids and the budget truncates at the
         identical point. *)
      (* per-generation counters stashed for [collect] *)
      let gen_cand = ref 0 and gen_dups = ref 0 and gen_disc = ref 0 in
      let assign_ids () =
        let rs = !resolved and ci = !cand_id and co = !cand_orbit in
        let ncand = Array.length rs in
        let discovered = ref 0 and dups = ref 0 in
        for k = 0 to ncand - 1 do
          match rs.(k) with
          | -1 ->
            if !n_states < max_states then begin
              ci.(k) <- !n_states;
              incr n_states;
              incr discovered;
              orbit_sum := !orbit_sum + co.(k)
            end
            else begin
              complete := false;
              ci.(k) <- -1
            end
          | r when r >= 0 ->
            ci.(k) <- r;
            incr dups
          | r ->
            (* duplicate of candidate [-2 - r], already resolved above *)
            let k0 = -2 - r in
            ci.(k) <- ci.(k0);
            if ci.(k0) >= 0 then incr dups else complete := false
        done;
        gen_cand := ncand;
        gen_dups := !dups;
        gen_disc := !discovered
      in
      let phase_c me =
        let ck = !cand_key and ow = !cand_owner and rs = !resolved
        and ci = !cand_id in
        let tbl = shard_tbl.(me) in
        Array.iteri
          (fun k o ->
            if o = me && rs.(k) = -1 && ci.(k) >= 0 then
              Hashtbl.add tbl ck.(k) ci.(k))
          ow;
        Hashtbl.reset scratch.(me);
        let fr = !frontier
        and sl = !succ_lists
        and offs = !offsets
        and tr = !trans in
        let nf = Array.length fr in
        let i = ref me in
        while !i < nf do
          let base = offs.(!i) in
          let j = ref (-1) in
          tr.(!i) <-
            List.filter_map
              (fun (label, _, _, _) ->
                incr j;
                let dst = ci.(base + !j) in
                if dst >= 0 then Some { dst; label } else None)
              sl.(!i);
          i := !i + d
        done
      in
      let collect () =
        let rs = !resolved and ci = !cand_id and cs = !cand_state
        and co = !cand_orbit in
        let fresh_rev = ref [] and orb_rev = ref [] in
        for k = Array.length rs - 1 downto 0 do
          if rs.(k) = -1 && ci.(k) >= 0 then begin
            fresh_rev := cs.(k) :: !fresh_rev;
            orb_rev := co.(k) :: !orb_rev
          end
        done;
        finish_gen ~tr:!trans
          ~fresh:(Array.of_list !fresh_rev)
          ~orbs:(Array.of_list !orb_rev)
          ~ncand:!gen_cand ~dups:!gen_dups ~discovered:!gen_disc
      in
      let body me =
        let running = ref true in
        while !running do
          Parallel.Barrier.wait b;
          (* generation inputs published *)
          if !stop then running := false
          else if !seq_gen then begin
            if me = 0 then expand_seq_guarded ()
            (* other workers loop straight to the next start barrier *)
          end
          else begin
            guard (fun () -> phase_a me);
            Parallel.Barrier.wait b;
            if me = 0 then guard flatten;
            Parallel.Barrier.wait b;
            guard (fun () -> phase_b me);
            Parallel.Barrier.wait b;
            if me = 0 then guard assign_ids;
            Parallel.Barrier.wait b;
            guard (fun () -> phase_c me);
            Parallel.Barrier.wait b;
            if me = 0 then guard collect
          end
        done
      in
      if d = 1 then
        while not !stop do
          expand_seq_guarded ()
        done
      else begin
        (* warm-up: no domains, no barriers, until the frontier is wide
           enough — or exploration finishes first *)
        while (not !stop) && !seq_gen do
          expand_seq_guarded ()
        done;
        if not !stop then begin
          cutover := Some !depth;
          let workers =
            Array.init (d - 1) (fun i -> Domain.spawn (fun () -> body (i + 1)))
          in
          body 0;
          Array.iter Domain.join workers
        end
      end;
      (match !failure with Some e -> raise e | None -> ());
      let states = Array.concat (List.rev !states_chunks) in
      let orbits = Array.concat (List.rev !orbits_chunks) in
      let succs = Array.concat (List.rev !trans_chunks) in
      assert (Array.length states = !n_states);
      assert (Array.length orbits = !n_states);
      assert (Array.length succs = !n_states);
      let n_transitions =
        Array.fold_left (fun acc ts -> acc + List.length ts) 0 succs
      in
      let g = { cfg; states; orbits; succs; complete = !complete } in
      let stats =
        stats_base ~n_states:!n_states ~n_transitions ~max_depth:!depth
          ~max_frontier:!max_frontier ~candidates:!total_cand
          ~dedup_hits:!total_dups
          ~shard_load:(Array.map Hashtbl.length shard_tbl)
          ~complete:!complete
          ~depths:(List.rev !depths_rev)
      in
      (g, stats)
    end

  let explore_with_stats ?(max_states = 2_000_000) ?(reduction = Full) cfg =
    explore_impl ~max_states ~domains:1 ~par_threshold:0 ~reduction cfg

  let default_par_threshold ~domains = 1024 * (domains - 1)

  let explore_par ?(max_states = 2_000_000) ?domains ?par_threshold
      ?(reduction = Full) cfg =
    let domains =
      match domains with
      | Some d -> max 1 d (* explicit override, even past the host count *)
      | None -> Domain.recommended_domain_count ()
    in
    let par_threshold =
      match par_threshold with
      | Some t -> max 0 t
      | None -> default_par_threshold ~domains
    in
    explore_impl ~max_states ~domains ~par_threshold ~reduction cfg

  let solo_run cfg st ~proc ~max_steps =
    let rec go st steps =
      match P.status st.locals.(proc) with
      | Protocol.Decided v -> `Decided v
      | _ ->
        if steps >= max_steps then `Out_of_steps
        else
          let n = Array.length st.locals in
          let m = Array.length st.mem in
          match P.step ~n ~m ~id:cfg.ids.(proc) st.locals.(proc) with
          | Protocol.Coin _ -> `Coin
          | _ ->
            (match step_states cfg st proc with
            | [ st' ] -> go st' (steps + 1)
            | _ -> assert false)
    in
    go st 0

  (* Memo entries record EXACT distances along a solo run, so a hit
     reproduces precisely what the unmemoized walk would have returned
     at any starting depth:
       MDec (s, v)   the run decides v after exactly s further steps
       MCoin s       the first coin flip is exactly s further steps away
       MNoDec s      s further steps were once walked with no decision
                     and no coin (a bound cut the witness off there)
     MDec/MCoin are total information and never change; MNoDec is a lower
     bound and only ever grows. *)
  type solo_memo = MDec of int * P.output | MCoin of int | MNoDec of int

  let check_obstruction_freedom ?bound ?(memo = true) g =
    let n = Array.length g.cfg.ids in
    let m = Naming.size g.cfg.namings.(0) in
    let bound =
      match bound with Some b -> b | None -> 4 * m * (n + 2) * (n + 2)
    in
    let solo =
      if not memo then fun st proc -> solo_run g.cfg st ~proc ~max_steps:bound
      else begin
        let codec = Cd.create () in
        let tbl : (string, solo_memo) Hashtbl.t = Hashtbl.create 4096 in
        let store key e =
          match (Hashtbl.find_opt tbl key, e) with
          | Some (MDec _ | MCoin _), _ -> ()
          | Some (MNoDec s), MNoDec s' when s' <= s -> ()
          | _ -> Hashtbl.replace tbl key e
        in
        let record visited mk = List.iter (fun (key, i) -> store key (mk i)) visited in
        fun st0 proc ->
          let rec go st k visited =
            match P.status st.locals.(proc) with
            | Protocol.Decided v ->
              record visited (fun i -> MDec (k - i, v));
              `Decided v
            | _ -> (
              let key = Cd.encode_solo codec ~proc st.locals.(proc) st.mem in
              match Hashtbl.find_opt tbl key with
              | Some (MDec (s, v)) ->
                record ((key, k) :: visited) (fun i -> MDec (k - i + s, v));
                if k + s <= bound then `Decided v else `Out_of_steps
              | Some (MCoin s) ->
                record ((key, k) :: visited) (fun i -> MCoin (k - i + s));
                if k + s < bound then `Coin else `Out_of_steps
              | Some (MNoDec s) when k + s >= bound ->
                record ((key, k) :: visited) (fun i -> MNoDec (k - i + s));
                `Out_of_steps
              | Some (MNoDec _) | None ->
                let visited = (key, k) :: visited in
                if k >= bound then begin
                  record visited (fun i -> MNoDec (bound - i));
                  `Out_of_steps
                end
                else (
                  match P.step ~n ~m ~id:g.cfg.ids.(proc) st.locals.(proc) with
                  | Protocol.Coin _ ->
                    record visited (fun i -> MCoin (k - i));
                    `Coin
                  | _ -> (
                    match step_states g.cfg st proc with
                    | [ st' ] -> go st' (k + 1) visited
                    | _ -> assert false)))
          in
          go st0 0 []
      end
    in
    let exception Found of int * int in
    try
      Array.iteri
        (fun sid st ->
          Array.iteri
            (fun proc local ->
              if not (Protocol.is_decided (P.status local)) then
                match solo st proc with
                | `Decided _ -> ()
                | `Out_of_steps | `Coin -> raise (Found (sid, proc)))
            st.locals)
        g.states;
      None
    with Found (sid, proc) -> Some (sid, proc)

  let to_flat g =
    {
      Flatgraph.n_procs = Array.length g.cfg.ids;
      statuses =
        Array.map
          (fun st -> Array.map (fun l -> Flatgraph.of_status (P.status l)) st.locals)
          g.states;
      succs =
        Array.map
          (fun ts ->
            List.map
              (fun { dst; label } ->
                {
                  Flatgraph.dst;
                  proc = label.proc;
                  enters_cs = label.enters_cs;
                })
              ts)
          g.succs;
      complete = g.complete;
    }
end
