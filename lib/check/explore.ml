open Anonmem

module Make (P : Protocol.PROTOCOL) = struct
  type config = {
    ids : int array;
    inputs : P.input array;
    namings : Naming.t array;
  }

  let config ?m ~ids ~inputs () =
    let ids = Array.of_list ids in
    let n = Array.length ids in
    let m = match m with Some m -> m | None -> P.default_registers ~n in
    {
      ids;
      inputs = Array.of_list inputs;
      namings = Array.init n (fun _ -> Naming.identity m);
    }

  type state = { mem : P.Value.t array; locals : P.local array }

  type label = { proc : int; enters_cs : bool }

  type transition = { dst : int; label : label }

  type graph = {
    cfg : config;
    states : state array;
    succs : transition list array;
    complete : bool;
  }

  let initial cfg =
    let n = Array.length cfg.ids in
    let m = Naming.size cfg.namings.(0) in
    {
      mem = Array.make m P.Value.init;
      locals =
        Array.init n (fun i -> P.start ~n ~m ~id:cfg.ids.(i) cfg.inputs.(i));
    }

  let statuses st = Array.map P.status st.locals

  let with_local st proc local =
    let locals = Array.copy st.locals in
    locals.(proc) <- local;
    { st with locals }

  let with_write st proc local phys v =
    let mem = Array.copy st.mem in
    mem.(phys) <- v;
    let locals = Array.copy st.locals in
    locals.(proc) <- local;
    { mem; locals }

  (* All states one step of [proc] can lead to (two for a coin flip). *)
  let step_states cfg st proc =
    let n = Array.length st.locals in
    let m = Array.length st.mem in
    let naming = cfg.namings.(proc) in
    match P.step ~n ~m ~id:cfg.ids.(proc) st.locals.(proc) with
    | Protocol.Read (j, k) ->
      let v = st.mem.(Naming.apply naming j) in
      [ with_local st proc (k v) ]
    | Protocol.Write (j, v, l) ->
      [ with_write st proc l (Naming.apply naming j) v ]
    | Protocol.Rmw (j, f) ->
      let phys = Naming.apply naming j in
      let v, l = f st.mem.(phys) in
      [ with_write st proc l phys v ]
    | Protocol.Internal l -> [ with_local st proc l ]
    | Protocol.Coin k -> [ with_local st proc (k true); with_local st proc (k false) ]

  let successors cfg st =
    let acc = ref [] in
    Array.iteri
      (fun proc local ->
        if not (Protocol.is_decided (P.status local)) then begin
          let before_crit = P.status local = Protocol.Critical in
          List.iter
            (fun st' ->
              let enters_cs =
                (not before_crit)
                && P.status st'.locals.(proc) = Protocol.Critical
              in
              acc := ({ proc; enters_cs }, st') :: !acc)
            (step_states cfg st proc)
        end)
      st.locals;
    List.rev !acc

  let explore ?(max_states = 2_000_000) cfg =
    let table : (state, int) Hashtbl.t = Hashtbl.create 4096 in
    let states_rev = ref [] in
    let n_states = ref 0 in
    (* queue of state ids whose successors are not yet computed *)
    let pending = Queue.create () in
    let complete = ref true in
    let intern st =
      match Hashtbl.find_opt table st with
      | Some id -> Some id
      | None ->
        if !n_states >= max_states then begin
          complete := false;
          None
        end
        else begin
          let id = !n_states in
          Hashtbl.add table st id;
          states_rev := st :: !states_rev;
          incr n_states;
          Queue.add (id, st) pending;
          Some id
        end
    in
    ignore (intern (initial cfg));
    let out = Hashtbl.create 4096 in
    while not (Queue.is_empty pending) do
      let id, st = Queue.pop pending in
      let trans =
        List.filter_map
          (fun (label, st') ->
            match intern st' with
            | Some dst -> Some { dst; label }
            | None -> None)
          (successors cfg st)
      in
      Hashtbl.replace out id trans
    done;
    let states = Array.of_list (List.rev !states_rev) in
    let succs =
      Array.init (Array.length states) (fun id ->
          Option.value ~default:[] (Hashtbl.find_opt out id))
    in
    { cfg; states; succs; complete = !complete }

  (* Frontier-parallel BFS.

     The sequential explorer above pops a FIFO queue, so states are
     discovered generation by generation: every state at depth d gets an id
     below every state at depth d+1, and within one generation ids follow
     (expanded-state id ascending, successor position ascending). The
     parallel explorer reproduces exactly that order. Each generation runs
     in barrier-separated phases:

       A  workers expand a slice of the frontier (successor computation —
          the protocol-step work that dominates the run);
       -  worker 0 flattens the successor lists into one candidate array,
          in the sequential discovery order;
       B  the interning table is sharded by state hash; each worker
          resolves the candidates its shard owns against its own table
          (no locks — ownership is a partition), marking each candidate
          as an existing state, a duplicate of an earlier candidate of
          this generation, or fresh;
       -  worker 0 scans the candidate array once, in order, handing out
          consecutive ids to fresh candidates — exactly the ids the
          sequential explorer would have assigned, including where the
          [max_states] budget cuts off;
       C  workers insert their shards' newly-identified states and build
          the transition lists for their frontier slice;
       -  worker 0 appends the generation's states and transitions and
          forms the next frontier.

     Only the O(candidates) flatten/assign scans are sequential; hashing,
     deduplication, and successor generation all run in parallel. The
     result is bit-identical to [explore] on every input, which the test
     suite cross-checks for every in-tree protocol. *)

  let explore_impl ~max_states ~domains cfg =
    let t0 = Checker_stats.now () in
    let d = max 1 domains in
    let n_procs = Array.length cfg.ids in
    let n_registers = Naming.size cfg.namings.(0) in
    let stats_base ~n_states ~n_transitions ~max_depth ~max_frontier
        ~candidates ~dedup_hits ~shard_load ~complete ~depths =
      {
        Checker_stats.protocol = P.name;
        n_procs;
        n_registers;
        domains = d;
        n_states;
        n_transitions;
        max_depth;
        max_frontier;
        candidates;
        dedup_hits;
        shard_load;
        elapsed_s = Checker_stats.now () -. t0;
        complete;
        depths;
      }
    in
    if max_states < 1 then
      ( { cfg; states = [||]; succs = [||]; complete = false },
        stats_base ~n_states:0 ~n_transitions:0 ~max_depth:0 ~max_frontier:0
          ~candidates:0 ~dedup_hits:0 ~shard_load:(Array.make d 0)
          ~complete:false ~depths:[] )
    else begin
      let init_st = initial cfg in
      (* Shard s owns every state whose structural hash is s mod d. *)
      let owner st = Hashtbl.hash st mod d in
      let shard_tbl : (state, int) Hashtbl.t array =
        Array.init d (fun _ -> Hashtbl.create 1024)
      in
      (* Per-shard scratch: first candidate index of each fresh state seen
         this generation, so later duplicates resolve to it. *)
      let scratch : (state, int) Hashtbl.t array =
        Array.init d (fun _ -> Hashtbl.create 256)
      in
      let b = Parallel.Barrier.create d in
      (* Shared per-generation structures. Plain refs: every write is
         published to the readers of the next phase by the barrier. *)
      let stop = ref false in
      let frontier = ref [| (0, init_st) |] in
      let succ_lists : (label * state * int) list array ref =
        ref (Array.make 1 [])
      in
      let offsets = ref [||] in
      let cand_state = ref [||] in
      let cand_owner = ref [||] in
      (* resolved.(k): id >= 0 existing state; -1 fresh (first occurrence
         in this generation); -2 - k0 duplicate of candidate k0. *)
      let resolved = ref [||] in
      (* cand_id.(k): final state id, or -1 when the budget dropped it. *)
      let cand_id = ref [||] in
      let trans : transition list array ref = ref (Array.make 1 []) in
      let n_states = ref 1 in
      let complete = ref true in
      let states_chunks = ref [ [| init_st |] ] in
      let trans_chunks = ref [] in
      (* stats accumulators (worker 0 only) *)
      let depth = ref 0 in
      let depths_rev = ref [] in
      let total_cand = ref 0 in
      let total_dups = ref 0 in
      let max_frontier = ref 1 in
      let failure = ref None in
      let fail_mutex = Mutex.create () in
      let guard f =
        try f ()
        with e ->
          Mutex.lock fail_mutex;
          (match !failure with None -> failure := Some e | Some _ -> ());
          Mutex.unlock fail_mutex
      in
      Hashtbl.add shard_tbl.(owner init_st) init_st 0;
      let phase_a me =
        let fr = !frontier and sl = !succ_lists in
        let nf = Array.length fr in
        let i = ref me in
        while !i < nf do
          let _, st = fr.(!i) in
          sl.(!i) <-
            List.map
              (fun (label, st') -> (label, st', Hashtbl.hash st'))
              (successors cfg st);
          i := !i + d
        done
      in
      let flatten () =
        let fr = !frontier and sl = !succ_lists in
        let nf = Array.length fr in
        let offs = Array.make nf 0 in
        let ncand = ref 0 in
        for i = 0 to nf - 1 do
          offs.(i) <- !ncand;
          ncand := !ncand + List.length sl.(i)
        done;
        let ncand = !ncand in
        let cs = Array.make ncand init_st in
        let ow = Array.make ncand 0 in
        for i = 0 to nf - 1 do
          List.iteri
            (fun j (_, st', h) ->
              cs.(offs.(i) + j) <- st';
              ow.(offs.(i) + j) <- h mod d)
            sl.(i)
        done;
        offsets := offs;
        cand_state := cs;
        cand_owner := ow;
        resolved := Array.make ncand (-1);
        cand_id := Array.make ncand (-1)
      in
      let phase_b me =
        let cs = !cand_state and ow = !cand_owner and rs = !resolved in
        let tbl = shard_tbl.(me) and scr = scratch.(me) in
        Array.iteri
          (fun k o ->
            if o = me then
              let st = cs.(k) in
              match Hashtbl.find_opt tbl st with
              | Some id -> rs.(k) <- id
              | None -> (
                match Hashtbl.find_opt scr st with
                | Some k0 -> rs.(k) <- -2 - k0
                | None ->
                  Hashtbl.add scr st k;
                  rs.(k) <- -1))
          ow
      in
      (* The one inherently sequential step: replay the candidate scan the
         sequential explorer would have done, in the same order, so fresh
         states receive identical ids and the budget truncates at the
         identical point. *)
      let assign_ids () =
        let rs = !resolved and ci = !cand_id in
        let ncand = Array.length rs in
        let discovered = ref 0 and dups = ref 0 in
        for k = 0 to ncand - 1 do
          match rs.(k) with
          | -1 ->
            if !n_states < max_states then begin
              ci.(k) <- !n_states;
              incr n_states;
              incr discovered
            end
            else begin
              complete := false;
              ci.(k) <- -1
            end
          | r when r >= 0 ->
            ci.(k) <- r;
            incr dups
          | r ->
            (* duplicate of candidate [-2 - r], already resolved above *)
            let k0 = -2 - r in
            ci.(k) <- ci.(k0);
            if ci.(k0) >= 0 then incr dups else complete := false
        done;
        let fr = !frontier in
        depths_rev :=
          {
            Checker_stats.depth = !depth;
            frontier = Array.length fr;
            candidates = ncand;
            discovered = !discovered;
            duplicates = !dups;
          }
          :: !depths_rev;
        total_cand := !total_cand + ncand;
        total_dups := !total_dups + !dups
      in
      let phase_c me =
        let cs = !cand_state
        and ow = !cand_owner
        and rs = !resolved
        and ci = !cand_id in
        let tbl = shard_tbl.(me) in
        Array.iteri
          (fun k o ->
            if o = me && rs.(k) = -1 && ci.(k) >= 0 then
              Hashtbl.add tbl cs.(k) ci.(k))
          ow;
        Hashtbl.reset scratch.(me);
        let fr = !frontier
        and sl = !succ_lists
        and offs = !offsets
        and tr = !trans in
        let nf = Array.length fr in
        let i = ref me in
        while !i < nf do
          let base = offs.(!i) in
          let j = ref (-1) in
          tr.(!i) <-
            List.filter_map
              (fun (label, _, _) ->
                incr j;
                let dst = ci.(base + !j) in
                if dst >= 0 then Some { dst; label } else None)
              sl.(!i);
          i := !i + d
        done
      in
      let collect () =
        trans_chunks := !trans :: !trans_chunks;
        let rs = !resolved and ci = !cand_id and cs = !cand_state in
        let fresh = ref [] in
        for k = Array.length rs - 1 downto 0 do
          if rs.(k) = -1 && ci.(k) >= 0 then fresh := (ci.(k), cs.(k)) :: !fresh
        done;
        let next = Array.of_list !fresh in
        let nf = Array.length next in
        if nf = 0 || !failure <> None then stop := true
        else begin
          states_chunks := Array.map snd next :: !states_chunks;
          frontier := next;
          succ_lists := Array.make nf [];
          trans := Array.make nf [];
          if nf > !max_frontier then max_frontier := nf;
          incr depth
        end
      in
      let body me =
        let running = ref true in
        while !running do
          Parallel.Barrier.wait b;
          (* generation inputs published *)
          if !stop then running := false
          else begin
            guard (fun () -> phase_a me);
            Parallel.Barrier.wait b;
            if me = 0 then guard flatten;
            Parallel.Barrier.wait b;
            guard (fun () -> phase_b me);
            Parallel.Barrier.wait b;
            if me = 0 then guard assign_ids;
            Parallel.Barrier.wait b;
            guard (fun () -> phase_c me);
            Parallel.Barrier.wait b;
            if me = 0 then guard collect
          end
        done
      in
      let workers = Array.init (d - 1) (fun i -> Domain.spawn (fun () -> body (i + 1))) in
      body 0;
      Array.iter Domain.join workers;
      (match !failure with Some e -> raise e | None -> ());
      let states = Array.concat (List.rev !states_chunks) in
      let succs = Array.concat (List.rev !trans_chunks) in
      assert (Array.length states = !n_states);
      assert (Array.length succs = !n_states);
      let n_transitions =
        Array.fold_left (fun acc ts -> acc + List.length ts) 0 succs
      in
      let g = { cfg; states; succs; complete = !complete } in
      let stats =
        stats_base ~n_states:!n_states ~n_transitions ~max_depth:!depth
          ~max_frontier:!max_frontier ~candidates:!total_cand
          ~dedup_hits:!total_dups
          ~shard_load:(Array.map Hashtbl.length shard_tbl)
          ~complete:!complete
          ~depths:(List.rev !depths_rev)
      in
      (g, stats)
    end

  let explore_with_stats ?(max_states = 2_000_000) cfg =
    explore_impl ~max_states ~domains:1 cfg

  let explore_par ?(max_states = 2_000_000) ?domains cfg =
    let domains =
      match domains with
      | Some d -> max 1 d
      | None -> Domain.recommended_domain_count ()
    in
    explore_impl ~max_states ~domains cfg

  let solo_run cfg st ~proc ~max_steps =
    let rec go st steps =
      match P.status st.locals.(proc) with
      | Protocol.Decided v -> `Decided v
      | _ ->
        if steps >= max_steps then `Out_of_steps
        else
          let n = Array.length st.locals in
          let m = Array.length st.mem in
          match P.step ~n ~m ~id:cfg.ids.(proc) st.locals.(proc) with
          | Protocol.Coin _ -> `Coin
          | _ ->
            (match step_states cfg st proc with
            | [ st' ] -> go st' (steps + 1)
            | _ -> assert false)
    in
    go st 0

  let check_obstruction_freedom ?bound g =
    let n = Array.length g.cfg.ids in
    let m = Naming.size g.cfg.namings.(0) in
    let bound =
      match bound with Some b -> b | None -> 4 * m * (n + 2) * (n + 2)
    in
    let exception Found of int * int in
    try
      Array.iteri
        (fun sid st ->
          Array.iteri
            (fun proc local ->
              if not (Protocol.is_decided (P.status local)) then
                match solo_run g.cfg st ~proc ~max_steps:bound with
                | `Decided _ -> ()
                | `Out_of_steps | `Coin -> raise (Found (sid, proc)))
            st.locals)
        g.states;
      None
    with Found (sid, proc) -> Some (sid, proc)

  let to_flat g =
    {
      Flatgraph.n_procs = Array.length g.cfg.ids;
      statuses =
        Array.map
          (fun st -> Array.map (fun l -> Flatgraph.of_status (P.status l)) st.locals)
          g.states;
      succs =
        Array.map
          (fun ts ->
            List.map
              (fun { dst; label } ->
                {
                  Flatgraph.dst;
                  proc = label.proc;
                  enters_cs = label.enters_cs;
                })
              ts)
          g.succs;
      complete = g.complete;
    }
end
