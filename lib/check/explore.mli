(** Explicit-state exploration: the reachable global-state graph of a
    protocol instance.

    A global state is the physical register contents plus every process's
    local state. Nondeterminism is exactly the adversary's choice of which
    process steps next (plus both outcomes of any coin flip), so the
    reachable graph contains every run of the instance; checking a property
    on the graph checks it for {e all} schedules, including never starting
    some processes (participation is not required). *)

open Anonmem

type reduction =
  | Full  (** every reachable state, no quotient *)
  | Canon
      (** explore the symmetry quotient: states are canonicalized to the
          lex-least element of their orbit under the configuration's
          automorphism group ({!Canon.Make.group}) before interning. Sound
          for every protocol — asymmetric protocols get the identity group
          and the quotient degenerates to the full graph — and all
          graph-based property verdicts coincide with the full graph's
          (DESIGN.md §9; cross-checked by the test suite). *)

val reduction_tag : reduction -> string
(** ["full"] / ["canon"], as rendered by fingerprints and the CLI. *)

(** Choreography of the wide (parallel-mode) generations of
    {!Make.explore_par}. Both engines produce bit-identical graphs and
    statistics; they differ only in how the work reaches the domains. *)
type engine =
  | Barrier
      (** phase-per-barrier: expand, flatten, resolve, assign ids,
          collect — five barriers per generation, every domain in
          lock-step *)
  | Sharded
      (** continuous shard owners (the default): each domain owns a
          hash-partitioned slice of the visited set, expands its own
          shard's frontier worklist, resolves arriving candidates
          immediately and hands cross-shard successors over batched SPSC
          mailboxes; idle domains steal frontier batches from the
          heaviest shard. Two barriers per generation (logs complete,
          logs sorted), then one merge in candidate order replays the
          sequential id assignment exactly (DESIGN.md §13). *)

val engine_tag : engine -> string
(** ["barrier"] / ["sharded"], as rendered by benches and the CLI. *)

module Make (P : Protocol.PROTOCOL) : sig
  type config = {
    ids : int array;
    inputs : P.input array;
    namings : Naming.t array;
  }

  val config :
    ?m:int -> ids:int list -> inputs:P.input list -> unit -> config
  (** Identity namings of [m] registers (default [P.default_registers]). *)

  type state = { mem : P.Value.t array; locals : P.local array }

  type label = { proc : int; enters_cs : bool }

  type transition = { dst : int; label : label }

  type graph = {
    cfg : config;
    states : state array;  (** index 0 is the initial state *)
    orbits : int array;
        (** orbits.(i): number of full-graph states state [i] stands for;
            all 1 under [Full] reduction or a trivial group *)
    succs : transition list array;
    complete : bool;  (** false when [max_states] truncated the search *)
  }

  val initial : config -> state

  val statuses : state -> P.output Protocol.status array

  val successors : config -> state -> (label * state) list
  (** All one-step extensions (every non-decided process; both coin
      outcomes). *)

  val fingerprint : reduction:reduction -> config -> Digest.t * string
  (** Configuration fingerprint for durable snapshots: an MD5 digest over
      the protocol name, ids, inputs, namings and reduction, plus a
      human-readable description ("protocol=… n=… m=… reduction=…").
      Budget and parallelism knobs ([max_states], [domains],
      [par_threshold], snapshot cadence) are deliberately {e not} part of
      the fingerprint — they don't change the graph being explored, so a
      snapshot may be resumed with a bigger budget or different domain
      count. *)

  val describe : reduction:reduction -> config -> string
  (** Full textual identity of a configuration: protocol name, ids,
      inputs (via [P.pp_input]), namings and reduction, rendered
      injectively. Unlike the [descr] half of {!fingerprint} — which
      only records [n] and [m] — two distinct configurations always get
      distinct descriptions, so a result cache keyed by the (digest)
      fingerprint can store this string alongside each entry and verify
      it on lookup, turning a (vanishingly unlikely but possible) MD5
      collision into a detected cache miss instead of a wrong verdict. *)

  val canon_degraded : n:int -> bool
  (** [true] when [~reduction:Canon] would degrade to the identity group
      for an [n]-process configuration (the protocol declares
      [symmetric = false], or [n] exceeds {!Canon.Make.max_procs}) — the
      quotient silently coincides with the full graph. Surfaced in
      {!Checker_stats.t.degraded} and by [coordctl]'s [--canon] notice. *)

  val explore :
    ?max_states:int ->
    ?reduction:reduction ->
    ?snapshot_every:int ->
    ?snapshot_to:string ->
    ?resume_from:string ->
    ?deadline_s:float ->
    ?salvage:bool ->
    config ->
    graph
  (** Breadth-first reachability from {!initial} (default reduction
      {!Full}; default budget 2,000,000 states). States are interned by
      their packed {!Codec} key. This is the sequential reference
      explorer; the parallel explorers below are cross-validated against
      it.

      Checkpointing (all explorers): with [~snapshot_to:FILE] the
      exploration writes a durable {!Snapshot} of its newest exact
      generation boundary every [~snapshot_every] newly interned states
      (default 500,000), plus a final one whenever the run ends truncated
      (budget exhausted, or stopped by {!Snapshot.request_stop} /
      an installed signal handler). With [~resume_from:FILE] it restores
      that boundary — after checking the file's integrity and
      {!fingerprint} — and continues as if never interrupted: the final
      graph and statistics (modulo wall-clock) are bit-identical to an
      uninterrupted run with the same budget. Raises {!Snapshot.Error} on
      a corrupt or mismatched snapshot.

      Robustness options (all explorers): [~deadline_s:S] stops the run
      gracefully at the first generation boundary reached after [S]
      wall-clock seconds {e of this invocation} (a resumed run gets a
      fresh deadline), flushing a final snapshot and reporting
      {!Checker_stats.Deadline}. [~salvage:true] makes the resume read
      tolerate a damaged snapshot tail: it rolls back to the newest
      intact chunk ({!Snapshot.read_salvaged}) instead of refusing to
      start, warning on stderr about the rollback. *)

  val explore_with_stats :
    ?max_states:int ->
    ?reduction:reduction ->
    ?snapshot_every:int ->
    ?snapshot_to:string ->
    ?resume_from:string ->
    ?mem_soft_limit_mb:int ->
    ?deadline_s:float ->
    ?salvage:bool ->
    config ->
    graph * Checker_stats.t
  (** {!explore} semantics (bit-identical graph) with observability:
      per-depth frontier profile, throughput, dedup hit-rate, reduction
      factor. Runs in-process on the calling domain. Checkpoint options
      as in {!explore}; additionally [~mem_soft_limit_mb] arms the
      memory watermark: past it, expansion batches halve (floor 16),
      a snapshot is forced and the heap is compacted — the graph stays
      bit-identical, only per-depth sample granularity degrades
      (DESIGN.md §10). *)

  val explore_par :
    ?max_states:int ->
    ?domains:int ->
    ?par_threshold:int ->
    ?reduction:reduction ->
    ?engine:engine ->
    ?handoff_batch:int ->
    ?steal_batch:int ->
    ?snapshot_every:int ->
    ?snapshot_to:string ->
    ?resume_from:string ->
    ?mem_soft_limit_mb:int ->
    ?deadline_s:float ->
    ?salvage:bool ->
    ?supervise:bool ->
    config ->
    graph * Checker_stats.t
  (** Frontier-parallel breadth-first exploration over [domains] worker
      domains (default [Domain.recommended_domain_count ()]; an explicit
      [~domains] is honored as given, even beyond the host's recommended
      count — benchmarks that oversubscribe must say so). The
      state-interning table is sharded by structural-state hash with one
      shard owned per domain; whichever [?engine] (default {!Sharded})
      choreographs the wide generations, state ids are assigned by a
      scan in discovery order, so the resulting graph — state numbering,
      transition lists, [complete] flag — is bit-identical to {!explore}
      for every input, including when [max_states] truncates the search.
      [?handoff_batch] (default 64) sizes the sharded engine's cross-shard
      mailbox batches; [?steal_batch] (default 32) sizes the frontier
      batches a domain claims from a worklist. Both only shape scheduling,
      never the result.

      Generations whose frontier is narrower than [par_threshold]
      (default [1024 * (domains - 1)]) run sequentially on worker 0: no
      domain is spawned until the frontier first reaches the threshold
      (that depth is reported as [cutover] in the stats; [None] means the
      whole run stayed sequential) and a draining frontier drops back to
      one barrier per generation. [domains = 1] always runs inline
      without spawning.

      Checkpoint options as in {!explore_with_stats}. A snapshot taken by
      any explorer can be resumed by any other ([domains] is not part of
      the fingerprint); the graph is bit-identical either way, and the
      statistics are bit-identical (modulo wall-clock) when the
      interrupted and resuming runs use the same explorer settings.

      [~supervise:true] (default: on exactly when a {!Resilience} plan
      with domain faults is armed) wraps whichever [?engine] was
      requested in the self-healing supervised choreography (DESIGN.md
      §12, §14): workers claim work by compare-and-set from epoch tables
      and report heartbeats; a worker domain that dies is respawned with
      bounded, jittered backoff (the count lands in
      {!Checker_stats.t.restarts}). Under the {!Barrier} engine the dead
      slot's idempotent phase units are requeued onto the survivors;
      under the {!Sharded} engine the epoch table doubles as a shard
      {e lease} table — a dead owner's shard is reassigned to a survivor
      by the same CAS claim, the in-flight generation attempt is
      replayed from its unmutated inputs (rings drained, worklists
      re-prepped), and a crew that has permanently shrunk still serves
      every shard. A worker that wedges past an escalating patience
      budget aborts the attempt with {!Resilience.Stalled} — degraded
      into a flushed snapshot and a {!Checker_stats.Fault}-truncated
      result when [~snapshot_to] is set, so {!with_recovery} can resume
      it. Supervision produces the same bit-identical graph and
      statistics as the unsupervised engines. *)

  val external_fingerprint : reduction:reduction -> config -> Digest.t * string
(** Fingerprint of the external-memory explorer's checkpoints and run
      files. Deliberately distinct from {!fingerprint}: an external
      checkpoint holds no transition lists and references run files, so
      the two snapshot kinds must never accept each other. *)

  val explore_external :
    ?max_states:int ->
    ?reduction:reduction ->
    ?snapshot_every:int ->
    ?snapshot_to:string ->
    ?resume_from:string ->
    ?mem_soft_limit_mb:int ->
    ?hot_cap:int ->
    ?disk_quota_bytes:int ->
    ?deadline_s:float ->
    ?salvage:bool ->
    ?wide:bool ->
    dir:string ->
    config ->
    Checker_stats.t
  (** External-memory breadth-first exploration: the visited set is split
      between an in-RAM hot table and sorted immutable run files under
      [dir] ({!Disk_visited}), so state spaces far beyond RAM become
      disk-bounded instead of [stop:"oom"]. Classic external BFS with
      delayed duplicate detection: each generation's unknown candidate
      keys are sorted once and resolved against every run in one
      streaming merge — no random disk access per candidate. The hot
      table spills as a new run when it reaches [hot_cap] keys (default
      [2{^ 20}]) or, with [~mem_soft_limit_mb], when the heap passes the
      watermark (followed by a heap compaction).

      Stats-only: no graph is materialized (transition lists would defeat
      the point), so properties cannot be checked on the result — this is
      the state-counting / accounting-audit mode. The statistics are
      bit-identical (in the {!Checker_stats.equal_ignoring_time} sense)
      to {!explore_with_stats} on the same configuration and budget:
      counts, depth profile, orbit sums, stop reason all match.

      Checkpointing as in {!explore}, with two differences: the envelope
      embeds the run-file manifest (and {!external_fingerprint}, not
      {!fingerprint}), and a budget-threatened generation flushes the
      still-exact {e pre-generation} boundary before assigning ids, so a
      budget-truncated run resumes bit-identically. On [Out_of_memory]
      (with [~snapshot_to]) the run degrades to a {!Checker_stats.Oom}
      result whose resume point is the last periodic checkpoint. Under
      [~salvage] a resume walks the intact snapshot chunks newest-first
      until it finds one whose manifest's run files all re-validate —
      a damaged newest run file costs a rollback, not the exploration.

      [~wide:true] packs 4-byte {!Codec} key slots (for runs whose intern
      tables may exceed 2{^ 24} codes); a resumed run always continues at
      the interrupted run's width.

      [?disk_quota_bytes] bounds the total bytes the visited set may
      spill to [dir]. The quota is checked {e before} each spill: when
      the next spill would breach it the run degrades gracefully — stop
      exploring, flush the exact pre-generation boundary to
      [~snapshot_to] (when set), and report
      [stop_reason = {!Checker_stats.Disk_full}] — rather than corrupt
      or overrun the store. Resuming the checkpoint with a larger (or
      no) quota continues the exploration bit-identically. Under
      [~salvage], if {e no} intact checkpoint chunk has a fully valid
      run set, the run restarts from scratch (with a printed note)
      instead of failing. *)

  val with_recovery :
    ?max_retries:int ->
    ?resume_from:string ->
    snapshot_to:string ->
    (resume_from:string option ->
    snapshot_to:string ->
    graph * Checker_stats.t) ->
    graph * Checker_stats.t
  (** [with_recovery ~snapshot_to run] drives [run] to a verdict across
      transient infrastructure failures. [run] is invoked with the resume
      point to use (initially [?resume_from]) and must checkpoint to
      [snapshot_to]; when it raises a transient exception
      ({!Resilience.Killed}, {!Resilience.Stalled},
      {!Resilience.Io_fault}, [Out_of_memory], or a corrupt-snapshot
      {!Snapshot.Error}) — or returns a result truncated by
      {!Checker_stats.Oom}/{!Checker_stats.Fault} — the driver probes
      [snapshot_to] with {!Snapshot.read_salvaged} and re-runs from the
      newest loadable boundary (from scratch if none). [max_retries]
      (default 3) bounds the retries with ONE total counter, whatever
      mix of fault kinds forced them — an alternating kill/stall/EIO
      storm spends the same budget a single repeated fault would. The
      retry count is stamped into the returned statistics as
      {!Checker_stats.t.recoveries}. Because resumption is exact, the
      final result is bit-identical to a fault-free run. The [run]
      callback should pass [~salvage:true] to its explorer so a damaged
      snapshot tail rolls back rather than rejects. *)

  val solo_run :
    config ->
    state ->
    proc:int ->
    max_steps:int ->
    [ `Decided of P.output | `Out_of_steps | `Coin ]
  (** Run [proc] alone (deterministically) from [state]: the
      obstruction-freedom experiment. [`Coin] reports that the protocol
      flipped a coin, for which solo determinism does not hold. *)

  val check_obstruction_freedom :
    ?bound:int -> ?memo:bool -> graph -> (int * int) option
  (** For every reachable state and every non-decided process, the process
      running alone must decide within [bound] steps (default
      [4 * m * (n + 2) * (n + 2)]). Returns a counterexample
      (state index, proc).

      Solo runs are deterministic, so runs from states that share a
      (process, local state, memory) projection coincide; with [memo]
      (the default) every such projection's exact outcome distance is
      memoized and shared across start states. Verdicts are identical to
      [~memo:false] — the memo stores exact step distances, not verdicts,
      so the per-state bound arithmetic is unchanged; the test suite
      asserts the equivalence on every in-tree protocol. *)

  val to_flat : graph -> Flatgraph.t
  (** The shape the generic property checkers consume. *)
end
