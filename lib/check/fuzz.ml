open Anonmem

type verdict = Clean | Violation | Undecided

let pp_verdict ppf v =
  Format.pp_print_string ppf
    (match v with
    | Clean -> "clean"
    | Violation -> "VIOLATION"
    | Undecided -> "undecided")

module Make (P : Protocol.PROTOCOL) = struct
  module E = Explore.Make (P)
  module S = Shrink.Make (P)

  type graph_witness = State of int | Cycle of int list

  type property = {
    name : string;
    check : E.graph -> Flatgraph.t -> graph_witness option;
    rt_check : (P.input array -> S.R.t -> bool) option;
  }

  let mutex_me =
    {
      name = "mutual-exclusion";
      check =
        (fun _g flat ->
          Option.map
            (fun (v : Mutex_props.me_violation) -> State v.state)
            (Mutex_props.mutual_exclusion flat));
      rt_check = Some (fun _ rt -> S.R.critical_pair rt <> None);
    }

  let mutex_df =
    {
      name = "deadlock-freedom";
      check =
        (fun _g flat ->
          Option.map
            (fun (v : Mutex_props.df_violation) -> Cycle v.states)
            (Mutex_props.deadlock_freedom flat));
      rt_check = None;
    }

  let decided_pairs_exist ~bad rt =
    let ds = S.R.decisions rt in
    let n = Array.length ds in
    let found = ref false in
    for i = 0 to n - 1 do
      match ds.(i) with
      | None -> ()
      | Some a ->
        for j = i + 1 to n - 1 do
          match ds.(j) with
          | Some b when bad a b -> found := true
          | _ -> ()
        done
    done;
    !found

  let agreement ~equal =
    {
      name = "agreement";
      check =
        (fun g _ ->
          Option.map
            (fun (d : P.output Props.disagreement) -> State d.state)
            (Props.agreement ~equal ~statuses:E.statuses g.E.states));
      rt_check =
        Some (fun _ -> decided_pairs_exist ~bad:(fun a b -> not (equal a b)));
    }

  let validity ~allowed =
    {
      name = "validity";
      check =
        (fun g _ ->
          Option.map
            (fun (d : P.output Props.decided) -> State d.state)
            (Props.validity ~allowed:(allowed g.E.cfg.inputs)
               ~statuses:E.statuses g.E.states));
      rt_check =
        Some
          (fun inputs rt ->
            Array.exists
              (function Some o -> not (allowed inputs o) | None -> false)
              (S.R.decisions rt));
    }

  let distinct_outputs ~equal =
    {
      name = "distinct-outputs";
      check =
        (fun g _ ->
          Option.map
            (fun (d : P.output Props.disagreement) -> State d.state)
            (Props.distinct_outputs ~equal ~statuses:E.statuses g.E.states));
      rt_check = Some (fun _ -> decided_pairs_exist ~bad:equal);
    }

  (* ---- graph witness -> replayable schedule ---- *)

  let bfs_tree (succs : E.transition list array) =
    let n = Array.length succs in
    let prev = Array.make n (-1) in
    let via = Array.make n (-1) in
    let dist = Array.make n max_int in
    prev.(0) <- 0;
    dist.(0) <- 0;
    let q = Queue.create () in
    Queue.add 0 q;
    while not (Queue.is_empty q) do
      let s = Queue.pop q in
      List.iter
        (fun (t : E.transition) ->
          if prev.(t.dst) < 0 then begin
            prev.(t.dst) <- s;
            via.(t.dst) <- t.label.proc;
            dist.(t.dst) <- dist.(s) + 1;
            Queue.add t.dst q
          end)
        succs.(s)
    done;
    (prev, via, dist)

  let path_from_tree (prev, via, _) target =
    if target <> 0 && prev.(target) < 0 then None
    else begin
      let rec build acc s = if s = 0 then acc else build (via.(s) :: acc) prev.(s) in
      Some (build [] target)
    end

  let bundle_of ~seed (g : E.graph) ~steps ~loop =
    {
      S.m = Naming.size g.cfg.namings.(0);
      ids = g.cfg.ids;
      inputs = g.cfg.inputs;
      namings = Array.map Naming.to_array g.cfg.namings;
      crashes = [||];
      steps = Array.of_list steps;
      loop = Array.of_list loop;
      seed;
    }

  (* Build a concrete lasso from a fair cycle's SCC: reach a member state,
     then walk inside the component (over enter-free edges only) making
     every obliged process take a step, and close back to the start. The
     component is an SCC of the enter-free subgraph, so all these inner
     paths exist. *)
  let lasso_of (g : E.graph) members tree =
    let nstates = Array.length g.states in
    let nprocs = Array.length g.cfg.ids in
    let memb = Array.make nstates false in
    List.iter (fun s -> memb.(s) <- true) members;
    let inner s =
      List.filter
        (fun (t : E.transition) -> memb.(t.dst) && not t.label.enters_cs)
        g.succs.(s)
    in
    let obliged = Array.make nprocs false in
    List.iter
      (fun s ->
        Array.iteri
          (fun i st ->
            match st with
            | Protocol.Trying | Protocol.Critical | Protocol.Exiting ->
              obliged.(i) <- true
            | Protocol.Remainder | Protocol.Decided _ -> ())
          (E.statuses g.states.(s)))
      members;
    let _, _, dist = tree in
    let v0 =
      List.fold_left
        (fun best s ->
          let trying =
            Array.exists
              (fun st -> st = Protocol.Trying)
              (E.statuses g.states.(s))
          in
          match best with
          | _ when not (trying && dist.(s) < max_int) -> best
          | Some b when dist.(b) <= dist.(s) -> best
          | _ -> Some s)
        None members
    in
    match v0 with
    | None -> None
    | Some v0 -> (
      let bfs_within src ~stop =
        let prev = Array.make nstates (-2) in
        let via = Array.make nstates (-1) in
        prev.(src) <- -1;
        let q = Queue.create () in
        Queue.add src q;
        let found = ref (if stop src then Some src else None) in
        while !found = None && not (Queue.is_empty q) do
          let s = Queue.pop q in
          List.iter
            (fun (t : E.transition) ->
              if prev.(t.dst) = -2 then begin
                prev.(t.dst) <- s;
                via.(t.dst) <- t.label.proc;
                if !found = None && stop t.dst then found := Some t.dst;
                Queue.add t.dst q
              end)
            (inner s)
        done;
        Option.map
          (fun tgt ->
            let rec build acc s =
              if s = src then acc else build (via.(s) :: acc) prev.(s)
            in
            (build [] tgt, tgt))
          !found
      in
      let cur = ref v0 in
      let walk = ref [] in
      let ok = ref true in
      for p = 0 to nprocs - 1 do
        if obliged.(p) && !ok then begin
          let has_p_edge s =
            List.exists (fun (t : E.transition) -> t.label.proc = p) (inner s)
          in
          match bfs_within !cur ~stop:has_p_edge with
          | None -> ok := false
          | Some (steps, s) ->
            let t =
              List.find (fun (t : E.transition) -> t.label.proc = p) (inner s)
            in
            walk := !walk @ steps @ [ p ];
            cur := t.dst
        end
      done;
      if not !ok then None
      else
        match bfs_within !cur ~stop:(fun s -> s = v0) with
        | None -> None
        | Some (closing, _) -> (
          match path_from_tree tree v0 with
          | None -> None
          | Some prefix -> Some (prefix, !walk @ closing)))

  let witness_bundle ~seed (g : E.graph) w =
    let tree = bfs_tree g.succs in
    match w with
    | State s ->
      Option.map
        (fun steps -> bundle_of ~seed g ~steps ~loop:[])
        (path_from_tree tree s)
    | Cycle members ->
      Option.map
        (fun (prefix, loop) -> bundle_of ~seed g ~steps:prefix ~loop)
        (lasso_of g members tree)

  (* ---- the differential driver ---- *)

  type disagreement = { attempt : int; subject : string; detail : string }

  type report = {
    attempts : int;
    agreed : int;
    violations : int;
    undecided : int;
    by_boundary : (string * int) list;
    first_witness : (string * S.bundle) option;
    disagreement : disagreement option;
  }

  let pp_report ppf r =
    Format.fprintf ppf "attempts %d  agreed %d  violations %d  undecided %d"
      r.attempts r.agreed r.violations r.undecided;
    List.iter
      (fun (label, count) -> Format.fprintf ppf "@.  %-14s %d" label count)
      r.by_boundary;
    (match r.first_witness with
    | Some (name, b) ->
      Format.fprintf ppf "@.first witness: %s (n=%d m=%d, %d steps%s)" name
        (S.n_procs b) b.S.m (Array.length b.S.steps)
        (if Array.length b.S.loop > 0 then
           Printf.sprintf " + %d loop" (Array.length b.S.loop)
         else "")
    | None -> ());
    match r.disagreement with
    | Some d ->
      Format.fprintf ppf "@.DISAGREEMENT at attempt %d [%s]: %s" d.attempt
        d.subject d.detail
    | None -> ()

  let same_graph (a : E.graph) (b : E.graph) =
    Array.length a.states = Array.length b.states
    && a.complete = b.complete
    && a.succs = b.succs

  let run ?(seed = 1) ?(attempts = 100) ?time_budget ?(max_states = 20_000)
      ?(probes = 4) ?profile ?(fixed = (None, None)) ?(deterministic = true)
      ?(crash_probes = true) ?twin ~properties ~gen_inputs () =
    let t0 = Unix.gettimeofday () in
    let over_budget () =
      match time_budget with
      | None -> false
      | Some b -> Unix.gettimeofday () -. t0 > b
    in
    let base = Option.value profile ~default:Gen.default_profile in
    let profile =
      let fix v (lo, hi) = match v with Some v -> (v, v) | None -> (lo, hi) in
      let n_min, n_max = fix (fst fixed) (base.Gen.n_min, base.Gen.n_max) in
      let m_min, m_max = fix (snd fixed) (base.Gen.m_min, base.Gen.m_max) in
      { Gen.n_min; n_max; m_min; m_max }
    in
    let made = ref 0 in
    let agreed = ref 0 in
    let violations = ref 0 in
    let undecided = ref 0 in
    let boundary = Hashtbl.create 4 in
    let first_witness = ref None in
    let disagreement = ref None in
    let attempt = ref 0 in
    while !attempt < attempts && !disagreement = None && not (over_budget ())
    do
      let i = !attempt in
      incr attempt;
      incr made;
      let aseed = (seed * 1_000_003) + i in
      let arng = Rng.create aseed in
      let pars = Gen.params ~profile arng in
      let label = Gen.boundary_label ~n:pars.n ~m:pars.m in
      Hashtbl.replace boundary label
        (1 + Option.value (Hashtbl.find_opt boundary label) ~default:0);
      let inputs = gen_inputs arng ~n:pars.n in
      let cfg : E.config =
        {
          ids = pars.ids;
          inputs;
          namings = Array.map Naming.of_array pars.namings;
        }
      in
      let disagree subject detail =
        if !disagreement = None then
          disagreement := Some { attempt = i; subject; detail }
      in
      let g = E.explore ~max_states cfg in
      let g_par, _ = E.explore_par ~max_states cfg in
      if not (same_graph g g_par) then
        disagree "seq/par graphs"
          (Printf.sprintf
             "sequential explorer: %d states (complete=%b), parallel: %d \
              states (complete=%b)"
             (Array.length g.states) g.complete
             (Array.length g_par.states)
             g_par.complete);
      if !disagreement = None then begin
        let flat = E.to_flat g in
        let verdicts =
          List.map
            (fun p ->
              let w = p.check g flat in
              let v =
                match w with
                | Some _ -> Violation
                | None -> if g.complete then Clean else Undecided
              in
              (* replay every witness through the runtime *)
              (match w with
              | Some w when deterministic -> (
                match witness_bundle ~seed:aseed g w with
                | None ->
                  disagree p.name "graph witness is unreachable from state 0"
                | Some b ->
                  let sprop =
                    match (w, p.rt_check) with
                    | Cycle _, _ -> Some S.Lasso
                    | State _, Some pred -> Some (S.Safety (pred inputs))
                    | State _, None -> None
                  in
                  (match sprop with
                  | Some sp ->
                    if not (S.hits sp b) then
                      disagree p.name
                        "graph witness does not reproduce under runtime \
                         replay"
                  | None -> ());
                  if !first_witness = None then
                    first_witness := Some (p.name, b))
              | _ -> ());
              (p, v))
            properties
        in
        (* randomized runtime probes vs the graph verdicts *)
        let any_probe_violation = ref false in
        for _probe = 1 to probes do
          let pseed = abs (Rng.int arng 0x3FFFFFFF) + 1 in
          let len = 64 + Rng.int arng 448 in
          let steps =
            if Rng.bool arng then Gen.steps arng ~n:pars.n ~len
            else Gen.burst_steps arng ~n:pars.n ~len
          in
          let crashes =
            if crash_probes && Rng.int arng 4 = 0 then
              Gen.crashes arng ~n:pars.n ~horizon:len
                ~max_crashes:(pars.n - 1)
            else [||]
          in
          let pb =
            {
              S.m = pars.m;
              ids = pars.ids;
              inputs;
              namings = pars.namings;
              crashes;
              steps;
              loop = [||];
              seed = pseed;
            }
          in
          List.iter
            (fun (p, v) ->
              match p.rt_check with
              | None -> ()
              | Some pred ->
                if S.hits (S.Safety (pred inputs)) pb then begin
                  match v with
                  | Clean ->
                    (* crash-free graph covers every probe run: crashes
                       only restrict schedules *)
                    disagree p.name
                      (Printf.sprintf
                         "probe (seed %d) violates but the complete graph \
                          is clean"
                         pseed)
                  | Undecided ->
                    any_probe_violation := true;
                    if !first_witness = None then
                      first_witness := Some (p.name, pb)
                  | Violation -> ()
                end)
            verdicts
        done;
        (* baseline twin: same instance through a known-good protocol *)
        (match twin with
        | Some f -> (
          match f pars inputs with
          | Some complaint -> disagree "baseline twin" complaint
          | None -> ())
        | None -> ());
        let violated =
          !any_probe_violation
          || List.exists (fun (_, v) -> v = Violation) verdicts
        in
        let open_ = List.exists (fun (_, v) -> v = Undecided) verdicts in
        if violated then incr violations
        else if open_ then incr undecided;
        if !disagreement = None then incr agreed
      end
    done;
    {
      attempts = !made;
      agreed = !agreed;
      violations = !violations;
      undecided = !undecided;
      by_boundary =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) boundary []);
      first_witness = !first_witness;
      disagreement = !disagreement;
    }
end
