(** Property-based differential fuzzing: generated instances, cross-checked
    engines, replayable witnesses.

    One fuzzing attempt draws an instance skeleton from {!Gen}, adds
    protocol inputs, and runs it through every engine the repo has:

    - the sequential explorer ({!Explore.Make.explore}) — the reference;
    - the parallel explorer ({!Explore.Make.explore_par}) — must produce a
      bit-identical graph;
    - the graph-level property checkers ({!Mutex_props}, {!Props});
    - the concrete runtime, twice: every graph-level witness is replayed as
      a schedule script and must reproduce, and independent randomized
      {e probes} run schedules the graph verdict must predict;
    - optionally a known-good baseline twin on the same inputs, which must
      come out clean under the same property code.

    Any inconsistency between engines is a {e disagreement} — a bug in the
    checker, not in the protocol — and is reported separately from honest
    protocol violations. Violations come with a {!Shrink.Make.bundle} ready
    for minimization and the regression corpus. *)

open Anonmem

(** A property's verdict on one instance. [Undecided] means the state
    budget truncated exploration and no probe found a violation. *)
type verdict = Clean | Violation | Undecided

val pp_verdict : Format.formatter -> verdict -> unit

module Make (P : Protocol.PROTOCOL) : sig
  module E : module type of Explore.Make (P)
  module S : module type of Shrink.Make (P)

  (** Where a property failed in the explored graph. *)
  type graph_witness =
    | State of int  (** a reachable bad state (safety) *)
    | Cycle of int list  (** a fair non-progress cycle's states (liveness) *)

  type property = {
    name : string;
    check : E.graph -> Flatgraph.t -> graph_witness option;
        (** graph-level verdict; receives the graph and its flattened
            form (shared across properties) *)
    rt_check : (P.input array -> S.R.t -> bool) option;
        (** the same property as a runtime-state predicate, when it is a
            safety property — drives probe runs and witness replay. The
            instance's inputs are passed in because some properties (e.g.
            validity) are relative to them. *)
  }

  val mutex_me : property
  val mutex_df : property  (** liveness: witnesses are lassos *)

  val agreement : equal:(P.output -> P.output -> bool) -> property

  val validity : allowed:(P.input array -> P.output -> bool) -> property
  (** [allowed inputs o]: is [o] a legal decision given the instance's
      inputs? *)

  val distinct_outputs : equal:(P.output -> P.output -> bool) -> property
  (** Renaming / election-style uniqueness. *)

  val witness_bundle :
    seed:int -> E.graph -> graph_witness -> S.bundle option
  (** Turn a graph-level witness into a replayable bundle: a BFS schedule
      prefix for a [State] witness; a prefix plus a fair loop visiting
      every obliged process for a [Cycle]. [None] only if the witness
      state is unreachable (a checker bug the caller reports). *)

  type disagreement = {
    attempt : int;  (** attempt index at which engines diverged *)
    subject : string;  (** which engines, e.g. ["seq/par graphs"] *)
    detail : string;
  }

  type report = {
    attempts : int;
    agreed : int;  (** attempts on which every engine leg concurred *)
    violations : int;  (** attempts with a (cross-validated) violation *)
    undecided : int;
    by_boundary : (string * int) list;
        (** attempts per {!Gen.boundary_label} class *)
    first_witness : (string * S.bundle) option;
        (** property name + bundle for the first confirmed violation *)
    disagreement : disagreement option;
        (** the first divergence, if any — [None] is the differential
            pass verdict *)
  }

  val pp_report : Format.formatter -> report -> unit

  val run :
    ?seed:int ->
    ?attempts:int ->
    ?time_budget:float ->
    ?max_states:int ->
    ?probes:int ->
    ?profile:Gen.profile ->
    ?fixed:int option * int option ->
    ?deterministic:bool ->
    ?crash_probes:bool ->
    ?twin:(Gen.params -> P.input array -> string option) ->
    properties:property list ->
    gen_inputs:(Rng.t -> n:int -> P.input array) ->
    unit ->
    report
  (** Run up to [attempts] generated instances (stopping early after
      [time_budget] seconds if given; default unlimited). Each attempt is
      derived from [seed] (default 1) alone, so a report is reproducible
      from its seed. [fixed] pins n and/or m instead of drawing them from
      [profile]. [max_states] (default 20000) bounds each exploration;
      truncated attempts come out [Undecided] unless a probe finds a
      violation. [probes] (default 4) randomized runtime schedules per
      attempt cross-check every safety property's graph verdict;
      [crash_probes] (default true) lets probes inject crash-stop faults
      (sound: crashes only restrict schedules, so the crash-free graph
      covers every probe run). [deterministic] (default true) must be set
      to false for coin-flipping protocols: witness replay cannot force
      coin outcomes, so bundles are not built and replay legs are
      skipped. [twin pars inputs] runs a known-good baseline on the same
      instance and returns [Some complaint] if it fails its own property
      check — which indicts the shared checker code, hence counts as a
      disagreement. *)
end
