open Anonmem

type params = {
  n : int;
  m : int;
  ids : int array;
  namings : int array array;
}

type profile = { n_min : int; n_max : int; m_min : int; m_max : int }

let default_profile = { n_min = 2; n_max = 3; m_min = 2; m_max = 5 }
let smoke_profile = { n_min = 2; n_max = 2; m_min = 2; m_max = 5 }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let boundary_label ~n ~m =
  if m mod 2 = 0 then "m-even"
  else if
    List.exists (fun l -> gcd m l <> 1) (List.init (n - 1) (fun i -> i + 2))
  then "shared-divisor"
  else "coprime"

let in_range rng lo hi = lo + Rng.int rng (hi - lo + 1)

let ids rng ~n =
  (* distinct positive ids from a small pool, shuffled *)
  let pool = Array.init (max (2 * n) 8) (fun i -> i + 1) in
  Rng.shuffle_in_place rng pool;
  Array.sub pool 0 n

let namings rng ~n ~m =
  let identity () = Array.init m Fun.id in
  let rotation d = Array.init m (fun j -> (j + d) mod m) in
  let divisors =
    List.filter (fun d -> m mod d = 0) (List.init (n - 1) (fun i -> i + 2))
  in
  match Rng.int rng 10 with
  | 0 | 1 -> Array.init n (fun _ -> identity ())
  | 2 | 3 -> Array.init n (fun k -> rotation k)
  | (4 | 5 | 6) when divisors <> [] ->
    (* Theorem 3.4 witness: d processes with rotations spaced m/d apart *)
    let d = Rng.pick rng (Array.of_list divisors) in
    Array.init n (fun k -> rotation (k mod d * (m / d)))
  | _ -> Array.init n (fun _ -> Naming.to_array (Naming.random rng m))

(* The feasibility boundaries are thin slices of the (n, m) rectangle; draw
   a target category first, then rejection-sample (n, m) into it, falling
   back to a plain draw when the profile's ranges make the category empty. *)
let params ?(profile = default_profile) rng =
  let draw () =
    ( in_range rng profile.n_min profile.n_max,
      in_range rng profile.m_min profile.m_max )
  in
  let rec sample tries target =
    if tries = 0 then draw ()
    else
      let n, m = draw () in
      if boundary_label ~n ~m = target then (n, m) else sample (tries - 1) target
  in
  let n, m =
    match Rng.int rng 10 with
    | 0 | 1 | 2 -> sample 16 "m-even"
    | 3 | 4 | 5 -> sample 16 "shared-divisor"
    | 6 | 7 | 8 -> sample 16 "coprime"
    | _ -> draw ()
  in
  let ids = ids rng ~n in
  let namings = namings rng ~n ~m in
  { n; m; ids; namings }

let steps rng ~n ~len = Array.init len (fun _ -> Rng.int rng n)

let burst_steps rng ~n ~len =
  let out = Array.make len 0 in
  let current = ref 0 in
  let left = ref 0 in
  for i = 0 to len - 1 do
    if !left <= 0 then begin
      current := Rng.int rng n;
      left := 1 + Rng.int rng (if Rng.bool rng then 4 else 60)
    end;
    decr left;
    out.(i) <- !current
  done;
  out

let crashes rng ~n ~horizon ~max_crashes =
  let k = min (Rng.int rng (max_crashes + 1)) (n - 1) in
  (* distinct clocks and distinct processes keep replay unambiguous *)
  let clocks = Hashtbl.create 8 in
  let events = ref [] in
  let made = ref 0 in
  let guard = ref (8 * max 1 k) in
  while !made < k && !guard > 0 do
    decr guard;
    let clock = Rng.int rng (max 1 horizon) in
    let proc = Rng.int rng n in
    if
      (not (Hashtbl.mem clocks clock))
      && not (List.exists (fun (_, p) -> p = proc) !events)
    then begin
      Hashtbl.add clocks clock ();
      events := (clock, proc) :: !events;
      incr made
    end
  done;
  Array.of_list (List.sort compare !events)
