(** Seeded instance generators for property-based differential fuzzing.

    Everything here is a deterministic function of an {!Anonmem.Rng.t}
    stream, so a fuzzing run is reproducible from one integer seed and any
    drawn instance can be re-derived exactly. The generators are
    protocol-agnostic: they produce the adversary's choices — how many
    processes, how many registers, which identifiers, which register
    namings, which schedule, which crashes — and the driver adds the
    protocol's inputs.

    The distributions are deliberately biased toward the paper's
    feasibility boundaries rather than uniform: Theorem 3.1 hinges on [m]
    odd, Theorem 3.4 on [m] relatively prime to every group size
    [l <= n], and the symmetry attacks need rotation namings spaced
    [m/d] apart for a shared divisor [d]. A uniform sweep would hit these
    thin boundaries rarely; the biased one lands on them constantly. *)

open Anonmem

(** An instance skeleton: everything but the protocol inputs. *)
type params = {
  n : int;
  m : int;
  ids : int array;  (** distinct positive identifiers *)
  namings : int array array;
      (** one permutation of [0..m-1] per process, as plain data
          ([Naming.of_array] turns them into live namings) *)
}

(** Ranges the parameter generator draws from. *)
type profile = {
  n_min : int;
  n_max : int;
  m_min : int;
  m_max : int;
}

val default_profile : profile
(** n in [2..3], m in [2..5]: every instance is exhaustively explorable. *)

val smoke_profile : profile
(** n = 2, m in [2..5]: the sub-30s smoke sweep (n = 3 graphs cost
    seconds each; n = 2 graphs cost milliseconds). *)

val params : ?profile:profile -> Rng.t -> params
(** Draw one boundary-biased instance skeleton: the (n, m) pair favors
    even [m], [gcd (m, l) <> 1] for some [l <= n], and the coprime
    (feasible) side in roughly equal measure; namings come from
    {!namings}; ids from {!ids}. *)

val boundary_label : n:int -> m:int -> string
(** Which side of the feasibility boundary (n, m) sits on: ["m-even"],
    ["shared-divisor"] (odd [m] with [gcd (m, l) <> 1] for some
    [2 <= l <= n]) or ["coprime"]. For logs and bias tests. *)

val ids : Rng.t -> n:int -> int array
(** [n] distinct identifiers, biased small (the protocols only compare
    them for equality, but small ids keep bundles readable). *)

val namings : Rng.t -> n:int -> m:int -> int array array
(** One naming per process, drawn from a mix: all-identity, the rotation
    tuple, {e attack} rotations spaced [m/d] apart for a divisor [d] of
    [m] with [d <= n] (the Theorem 3.4 witness namings, when one exists),
    and independent uniform permutations. *)

val steps : Rng.t -> n:int -> len:int -> int array
(** A uniform schedule script of [len] process indices. *)

val burst_steps : Rng.t -> n:int -> len:int -> int array
(** A bursty script: one process runs 1–60 consecutive steps, then the
    scheduler switches — the sleep/wake texture covering arguments need. *)

val crashes : Rng.t -> n:int -> horizon:int -> max_crashes:int -> (int * int) array
(** Up to [max_crashes] crash events [(clock, proc)], at distinct clocks
    in [0, horizon), sorted by clock, never naming every process (at
    least one process survives). May be empty. *)
