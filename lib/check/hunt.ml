open Anonmem

type strategy = Uniform | Bursts | Chaos

type outcome = {
  attempts_made : int;
  steps_taken : int;
  witness_seed : int option;
}

module Make (P : Protocol.PROTOCOL) = struct
  module R = Runtime.Make (P)

  let burst_schedule rng n : Schedule.t =
    let current = ref 0 in
    let left = ref 0 in
    fun view ->
      if !left <= 0 then begin
        current := Rng.int rng n;
        (* mostly short bursts, occasionally long sleeps of the others *)
        left := 1 + Rng.int rng (if Rng.bool rng then 4 else 60)
      end;
      decr left;
      if not (Schedule.runnable (view.Schedule.kind !current)) then begin
        left := 0;
        Schedule.random rng view
      end
      else Some !current

  (* The chaos strategy crashes live processes mid-attempt (never the last
     one), so bursts land on a memory whose stale claims nobody will ever
     withdraw — the covering-argument texture. *)
  let chaos_crashes rng rt (sched : Schedule.t) : Schedule.t =
   fun view ->
    (if Rng.float rng < 0.005 then
       match
         List.filter
           (fun i -> Schedule.runnable (R.kind rt i))
           (List.init (R.n rt) Fun.id)
       with
       | [] -> ()
       | candidates ->
         if List.length (R.survivors rt) > 1 then
           R.crash rt (Rng.pick rng (Array.of_list candidates)));
    sched view

  let schedule_of strategy rng rt n =
    match strategy with
    | Uniform -> Schedule.random rng
    | Bursts -> burst_schedule rng n
    | Chaos -> chaos_crashes rng rt (burst_schedule rng n)

  let mutex_violation rt = R.critical_pair rt <> None

  let disagreement ~equal rt =
    let decided =
      Array.to_list (R.decisions rt) |> List.filter_map Fun.id
    in
    match decided with
    | [] -> false
    | v :: rest -> List.exists (fun w -> not (equal v w)) rest

  (* One seeded attempt; deterministic given (seed, record_trace). *)
  let attempt ~strategy ~steps_per_attempt ~violation ~ids ~inputs ~m
      ~record_trace seed =
    let n = List.length ids in
    let rng = Rng.create (seed * 2654435761) in
    let cfg : R.config =
      {
        ids = Array.of_list ids;
        inputs = Array.of_list inputs;
        namings = Array.init n (fun _ -> Naming.random rng m);
        rng = Some (Rng.split rng);
        record_trace;
      }
    in
    let rt = R.create cfg in
    let sched = schedule_of strategy rng rt n in
    let hit = ref false in
    let steps = ref 0 in
    (try
       for _ = 1 to steps_per_attempt do
         (match
            sched { n; clock = R.clock rt; kind = (fun i -> R.kind rt i) }
          with
         | Some i ->
           ignore (R.step rt i);
           incr steps
         | None -> raise Stdlib.Exit);
         if violation rt then begin
           hit := true;
           raise Stdlib.Exit
         end
       done
     with Stdlib.Exit -> ());
    (!hit, !steps, rt)

  let replay ?(strategy = Bursts) ?(steps_per_attempt = 2_000) ~violation
      ~ids ~inputs ~m seed =
    let hit, _, rt =
      attempt ~strategy ~steps_per_attempt ~violation ~ids ~inputs ~m
        ~record_trace:true seed
    in
    (hit, R.trace rt)

  let hunt ?(strategy = Bursts) ?(attempts = 1_000)
      ?(steps_per_attempt = 2_000) ?(seed = 1) ~violation ~ids ~inputs ~m () =
    let total_steps = ref 0 in
    let result = ref None in
    let a = ref 0 in
    while !result = None && !a < attempts do
      incr a;
      let attempt_seed = seed + !a in
      let hit, steps, _ =
        attempt ~strategy ~steps_per_attempt ~violation ~ids ~inputs ~m
          ~record_trace:false attempt_seed
      in
      total_steps := !total_steps + steps;
      if hit then result := Some attempt_seed
    done;
    match !result with
    | None ->
      ( { attempts_made = !a; steps_taken = !total_steps; witness_seed = None },
        None )
    | Some s ->
      (* replay with tracing for the witness *)
      let _, trace =
        replay ~strategy ~steps_per_attempt ~violation ~ids ~inputs ~m s
      in
      ( {
          attempts_made = !a;
          steps_taken = !total_steps;
          witness_seed = Some s;
        },
        Some trace )
end
