(** Randomized violation hunting, for instances beyond exhaustive reach.

    The hunter replays many seeded runs — fresh random namings and a random
    or bursty schedule per attempt — and stops at the first run satisfying
    a violation predicate. A found witness is a real counterexample
    (seed + trace); not finding one means nothing, and experiment E16
    quantifies just how little: the mutual-exclusion violation of Figure
    1's 3-process generalization, which the exhaustive checker pinpoints in
    under a second, survives millions of randomly scheduled steps. Use the
    hunter to search, the checker to conclude. *)

open Anonmem

(** How each attempt schedules the processes. *)
type strategy =
  | Uniform  (** uniformly random process each step *)
  | Bursts
      (** geometric bursts: one process runs 1-60 consecutive steps — the
          sleep/wake pattern covering arguments need *)
  | Chaos
      (** bursts plus random crash-stops: each step a small coin decides
          whether to crash a live process (never the last survivor), so
          attempts explore executions where stale register claims are
          never withdrawn *)

type outcome = {
  attempts_made : int;
  steps_taken : int;  (** total across all attempts *)
  witness_seed : int option;  (** seed of the violating attempt, if any *)
}

module Make (P : Protocol.PROTOCOL) : sig
  module R : module type of Runtime.Make (P)

  val hunt :
    ?strategy:strategy ->
    ?attempts:int ->
    ?steps_per_attempt:int ->
    ?seed:int ->
    violation:(R.t -> bool) ->
    ids:int list ->
    inputs:P.input list ->
    m:int ->
    unit ->
    outcome * (P.Value.t, P.output) Trace.t option
  (** Each attempt draws fresh namings and a fresh schedule from the seeded
      stream; [violation] is evaluated after every step. On a hit, the
      attempt is replayed with tracing on and the trace returned. Defaults:
      [Bursts], 1000 attempts, 2000 steps each. *)

  val replay :
    ?strategy:strategy ->
    ?steps_per_attempt:int ->
    violation:(R.t -> bool) ->
    ids:int list ->
    inputs:P.input list ->
    m:int ->
    int ->
    bool * (P.Value.t, P.output) Trace.t
  (** [replay ~violation ~ids ~inputs ~m seed] re-runs the single attempt
      identified by [seed] with tracing on, returning whether the
      violation was hit and the recorded trace. Attempts are deterministic
      functions of their seed, so replaying [witness_seed] from a
      {!hunt} outcome (with the same strategy and step bound) must
      reproduce the identical violating trace — the regression test
      [test_hunt.ml] pins this down. *)

  val mutex_violation : R.t -> bool
  (** Two processes in their critical sections. *)

  val disagreement : equal:(P.output -> P.output -> bool) -> R.t -> bool
  (** Two processes decided on non-equal outputs. *)
end
