open Anonmem

type raw = {
  protocol : string;
  property : string;
  seed : int;
  m : int;
  ids : int array;
  inputs : string array;
  namings : int array array;
  crashes : (int * int) array;
  steps : int array;
  loop : int array;
}

let magic = "COORDFUZZ 1"

let write_raw path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let pr fmt = Printf.fprintf oc fmt in
      let ints a =
        String.concat " " (Array.to_list (Array.map string_of_int a))
      in
      pr "%s\n" magic;
      pr "protocol %s\n" r.protocol;
      pr "property %s\n" r.property;
      pr "seed %d\n" r.seed;
      pr "m %d\n" r.m;
      pr "ids %s\n" (ints r.ids);
      pr "inputs %s\n" (String.concat " " (Array.to_list r.inputs));
      Array.iter (fun a -> pr "naming %s\n" (ints a)) r.namings;
      if Array.length r.crashes > 0 then
        pr "crashes %s\n"
          (String.concat " "
             (Array.to_list
                (Array.map (fun (c, p) -> Printf.sprintf "%d@%d" c p) r.crashes)));
      pr "steps %s\n" (ints r.steps);
      if Array.length r.loop > 0 then pr "loop %s\n" (ints r.loop))

let read_raw path =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | exception Sys_error msg -> Error msg
  | [] -> fail "%s: empty file" path
  | header :: rest ->
    if String.trim header <> magic then
      fail "%s: bad header %S (expected %S)" path header magic
    else begin
      let protocol = ref None
      and property = ref None
      and seed = ref 0
      and m = ref None
      and ids = ref None
      and inputs = ref None
      and namings = ref []
      and crashes = ref [||]
      and steps = ref None
      and loop = ref [||]
      and err = ref None in
      let set_err fmt = Printf.ksprintf (fun s -> err := Some s) fmt in
      let split s =
        String.split_on_char ' ' s |> List.filter (fun t -> t <> "")
      in
      let ints toks =
        Array.of_list
          (List.map
             (fun t ->
               match int_of_string_opt t with
               | Some v -> v
               | None ->
                 set_err "bad integer %S" t;
                 0)
             toks)
      in
      List.iter
        (fun line ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then ()
          else
            match split line with
            | "protocol" :: [ p ] -> protocol := Some p
            | "property" :: [ p ] -> property := Some p
            | "seed" :: [ s ] -> seed := int_of_string_opt s |> Option.value ~default:0
            | "m" :: [ s ] -> (
              match int_of_string_opt s with
              | Some v -> m := Some v
              | None -> set_err "bad m %S" s)
            | "ids" :: toks -> ids := Some (ints toks)
            | "inputs" :: toks -> inputs := Some (Array.of_list toks)
            | "naming" :: toks -> namings := ints toks :: !namings
            | "crashes" :: toks ->
              crashes :=
                Array.of_list
                  (List.map
                     (fun t ->
                       match String.index_opt t '@' with
                       | Some i -> (
                         let c = String.sub t 0 i
                         and p =
                           String.sub t (i + 1) (String.length t - i - 1)
                         in
                         match (int_of_string_opt c, int_of_string_opt p) with
                         | Some c, Some p -> (c, p)
                         | _ ->
                           set_err "bad crash event %S" t;
                           (0, 0))
                       | None ->
                         set_err "bad crash event %S (expected CLOCK@PROC)" t;
                         (0, 0))
                     toks)
            | "steps" :: toks -> steps := Some (ints toks)
            | "loop" :: toks -> loop := ints toks
            | key :: _ -> set_err "unknown field %S" key
            | [] -> ())
        rest;
      match !err with
      | Some msg -> fail "%s: %s" path msg
      | None -> (
        match (!protocol, !property, !m, !ids, !steps) with
        | None, _, _, _, _ -> fail "%s: missing protocol" path
        | _, None, _, _, _ -> fail "%s: missing property" path
        | _, _, None, _, _ -> fail "%s: missing m" path
        | _, _, _, None, _ -> fail "%s: missing ids" path
        | _, _, _, _, None -> fail "%s: missing steps" path
        | Some protocol, Some property, Some m, Some ids, Some steps ->
          let n = Array.length ids in
          let namings = Array.of_list (List.rev !namings) in
          let inputs =
            match !inputs with
            | Some a -> a
            | None -> Array.make n "-"
          in
          if Array.length namings <> n then
            fail "%s: %d naming lines for %d ids" path (Array.length namings) n
          else if Array.length inputs <> n then
            fail "%s: %d inputs for %d ids" path (Array.length inputs) n
          else
            Ok
              {
                protocol;
                property;
                seed = !seed;
                m;
                ids;
                inputs;
                namings;
                crashes = !crashes;
                steps;
                loop = !loop;
              })
    end

module Make (P : Protocol.PROTOCOL) = struct
  module R = Runtime.Make (P)

  type bundle = {
    m : int;
    ids : int array;
    inputs : P.input array;
    namings : int array array;
    crashes : (int * int) array;
    steps : int array;
    loop : int array;
    seed : int;
  }

  let n_procs b = Array.length b.ids

  type property = Safety of (R.t -> bool) | Lasso

  let make_runtime b ~record_trace =
    let cfg : R.config =
      {
        ids = b.ids;
        inputs = b.inputs;
        namings = Array.map Naming.of_array b.namings;
        rng = Some (Rng.create b.seed);
        record_trace;
      }
    in
    R.create cfg

  (* Fire every crash event whose clock has arrived. Crashes on processes
     that already decided are dropped (shrinking a schedule can move a
     decision before a crash that used to preempt it). *)
  let fire_crashes rt crashes next =
    let nc = Array.length crashes in
    while !next < nc && fst crashes.(!next) <= R.clock rt do
      let _, p = crashes.(!next) in
      incr next;
      if Schedule.runnable (R.kind rt p) then R.crash rt p
    done

  exception Hit

  let run_script rt ~crashes ~steps ~check =
    let next = ref 0 in
    try
      Array.iter
        (fun p ->
          fire_crashes rt crashes next;
          if p >= 0 && p < R.n rt && Schedule.runnable (R.kind rt p) then begin
            ignore (R.step rt p);
            if check rt then raise Hit
          end)
        steps;
      false
    with Hit -> true

  (* A lasso state: physical memory plus every local state. Crashed
     processes keep their last local state, which is fine — a crashed
     process never steps, so equality of the live data is what recurrence
     needs. *)
  let capture rt =
    (R.Mem.contents (R.memory rt), Array.init (R.n rt) (R.local rt))

  let same_state (m1, l1) (m2, l2) =
    Array.length m1 = Array.length m2
    && Array.for_all2 (fun a b -> P.Value.compare a b = 0) m1 m2
    && Array.for_all2 (fun a b -> P.compare_local a b = 0) l1 l2

  let active_kind = function
    | Schedule.Working | Crit | Exitg -> true
    | Idle | Finished | Crashed -> false

  let replay_lasso b rt =
    if Array.length b.loop = 0 then false
    else begin
      let n = R.n rt in
      ignore (run_script rt ~crashes:b.crashes ~steps:b.steps ~check:(fun _ -> false));
      let start = capture rt in
      let trying =
        List.exists
          (fun i -> R.status rt i = Protocol.Trying)
          (List.init n Fun.id)
      in
      let stepped = Array.make n false in
      let active = Array.make n false in
      let note_active () =
        for i = 0 to n - 1 do
          if active_kind (R.kind rt i) then active.(i) <- true
        done
      in
      note_active ();
      let enters_cs = ref false in
      let ok =
        Array.for_all
          (fun p ->
            if p < 0 || p >= n || not (Schedule.runnable (R.kind rt p)) then
              false
            else begin
              let e = R.step rt p in
              stepped.(p) <- true;
              if Trace.enters_critical e then enters_cs := true;
              note_active ();
              true
            end)
          b.loop
      in
      let fair =
        Array.for_all2 (fun a s -> (not a) || s) active stepped
      in
      ok && trying && (not !enters_cs) && fair && same_state start (capture rt)
    end

  let replay_internal prop b ~record_trace =
    let rt = make_runtime b ~record_trace in
    let hit =
      match prop with
      | Safety violation ->
        run_script rt ~crashes:b.crashes ~steps:b.steps ~check:violation
      | Lasso -> replay_lasso b rt
    in
    (hit, rt)

  let replay prop b =
    let hit, rt = replay_internal prop b ~record_trace:true in
    (hit, R.trace rt)

  let hits prop b = fst (replay_internal prop b ~record_trace:false)

  type stats = {
    rounds : int;
    candidates : int;
    accepted : int;
    steps_before : int;
    steps_after : int;
  }

  let pp_stats ppf s =
    Format.fprintf ppf
      "steps %d -> %d in %d round%s (%d candidates, %d accepted)"
      s.steps_before s.steps_after s.rounds
      (if s.rounds = 1 then "" else "s")
      s.candidates s.accepted

  (* Remove chunks of [arr], halving the chunk size down to 1; [test]
     decides whether a candidate still reproduces. One full sweep — the
     outer shrink loop re-runs it until fixpoint, which yields
     1-minimality. *)
  let ddmin ~test arr0 =
    let arr = ref arr0 in
    let chunk = ref (max 1 (Array.length arr0 / 2)) in
    while !chunk >= 1 do
      let i = ref 0 in
      while !i < Array.length !arr do
        let a = !arr in
        let len = Array.length a in
        let hi = min len (!i + !chunk) in
        let cand = Array.append (Array.sub a 0 !i) (Array.sub a hi (len - hi)) in
        if test cand then arr := cand else i := !i + !chunk
      done;
      chunk := (if !chunk = 1 then 0 else max 1 (!chunk / 2))
    done;
    !arr

  (* Chunk deletion cannot see a wandering schedule's dead weight: deleting
     a detour shifts the suffix onto different states and the violation is
     usually lost. The trajectory itself says where the detours are —
     whenever the run revisits an exact state, the steps between the two
     visits did nothing. Excise every such loop in one forward pass, jumping
     from each visited state to its last occurrence; for safety bundles the
     pass also truncates the schedule at the violation step. The candidate
     is re-validated by replay like every other move (crash clocks and coin
     streams shift under excision, so acceptance is never assumed). *)
  let excise_revisits prop b =
    let rt = make_runtime b ~record_trace:false in
    let check = match prop with Safety v -> v | Lasso -> fun _ -> false in
    let nextc = ref 0 in
    let caps = ref [ (capture rt, -1) ] in
    (try
       Array.iteri
         (fun i p ->
           fire_crashes rt b.crashes nextc;
           if p >= 0 && p < R.n rt && Schedule.runnable (R.kind rt p) then begin
             ignore (R.step rt p);
             caps := (capture rt, i) :: !caps;
             if check rt then raise Hit
           end)
         b.steps
     with Hit -> ());
    let caps = Array.of_list (List.rev !caps) in
    let last = Array.length caps - 1 in
    let kept = ref [] in
    let k = ref 0 in
    while !k < last do
      let j = ref !k in
      for t = !k + 1 to last do
        if same_state (fst caps.(t)) (fst caps.(!k)) then j := t
      done;
      if !j >= last then k := last
      else begin
        kept := snd caps.(!j + 1) :: !kept;
        k := !j + 1
      end
    done;
    let steps = Array.of_list (List.rev_map (fun i -> b.steps.(i)) !kept) in
    if Array.length steps < Array.length b.steps then Some { b with steps }
    else None

  let remap_steps ~drop steps =
    Array.of_seq
      (Seq.filter_map
         (fun p -> if p = drop then None else Some (if p > drop then p - 1 else p))
         (Array.to_seq steps))

  let remove_proc b p =
    let n = n_procs b in
    if n <= 1 then None
    else
      let del a = Array.init (n - 1) (fun i -> a.(if i < p then i else i + 1)) in
      Some
        {
          b with
          ids = del b.ids;
          inputs = del b.inputs;
          namings = del b.namings;
          steps = remap_steps ~drop:p b.steps;
          loop = remap_steps ~drop:p b.loop;
          crashes =
            Array.of_seq
              (Seq.filter_map
                 (fun (c, q) ->
                   if q = p then None
                   else Some (c, if q > p then q - 1 else q))
                 (Array.to_seq b.crashes));
        }

  (* Deleting physical register [r]: each process loses the local index
     that maps to [r]; remaining local indices keep their order and
     physical targets above [r] shift down. Only sound when the protocol
     never addresses the lost local index on the surviving run — the
     replay check decides that. *)
  let remove_register b r =
    if b.m <= 1 then None
    else
      let namings =
        Array.map
          (fun a ->
            Array.of_seq
              (Seq.filter_map
                 (fun v -> if v = r then None else Some (if v > r then v - 1 else v))
                 (Array.to_seq a)))
          b.namings
      in
      Some { b with m = b.m - 1; namings }

  let canonical_ids b =
    let ids = Array.init (n_procs b) (fun i -> i + 1) in
    if ids = b.ids then None else Some { b with ids }

  let shrink ?(max_rounds = 8) prop b0 =
    if not (hits prop b0) then
      invalid_arg "Shrink.shrink: bundle does not reproduce its violation";
    let candidates = ref 0 and accepted = ref 0 in
    let test cand =
      incr candidates;
      let ok = hits prop cand in
      if ok then incr accepted;
      ok
    in
    let b = ref b0 in
    let rounds = ref 0 in
    let changed = ref true in
    while !changed && !rounds < max_rounds do
      incr rounds;
      changed := false;
      let try_bundle cand =
        if test cand then begin
          b := cand;
          changed := true;
          true
        end
        else false
      in
      (* 0. state-revisit excision: cut the loops ddmin cannot reach *)
      (match excise_revisits prop !b with
      | Some cand -> ignore (try_bundle cand)
      | None -> ());
      (* 1. schedule steps *)
      let steps' = ddmin ~test:(fun s -> test { !b with steps = s }) !b.steps in
      if Array.length steps' <> Array.length !b.steps then begin
        b := { !b with steps = steps' };
        changed := true
      end;
      (* 2. lasso loop steps *)
      if Array.length !b.loop > 0 then begin
        let loop' = ddmin ~test:(fun l -> test { !b with loop = l }) !b.loop in
        if Array.length loop' <> Array.length !b.loop then begin
          b := { !b with loop = loop' };
          changed := true
        end
      end;
      (* 3. crash events *)
      let ci = ref 0 in
      while !ci < Array.length !b.crashes do
        let cur = !b in
        let crashes =
          Array.of_list
            (List.filteri
               (fun i _ -> i <> !ci)
               (Array.to_list cur.crashes))
        in
        if not (try_bundle { cur with crashes }) then incr ci
      done;
      (* 4. whole processes, highest index first *)
      let p = ref (n_procs !b - 1) in
      while !p >= 0 do
        (match remove_proc !b !p with
        | Some cand -> ignore (try_bundle cand)
        | None -> ());
        decr p
      done;
      (* 5. physical registers, highest first *)
      let r = ref (!b.m - 1) in
      while !r >= 0 do
        (match remove_register !b !r with
        | Some cand -> ignore (try_bundle cand)
        | None -> ());
        decr r
      done;
      (* 6. identifier canonicalization (1..n) *)
      (match canonical_ids !b with
      | Some cand -> ignore (try_bundle cand)
      | None -> ())
    done;
    ( !b,
      {
        rounds = !rounds;
        candidates = !candidates;
        accepted = !accepted;
        steps_before = Array.length b0.steps;
        steps_after = Array.length !b.steps;
      } )

  let to_raw ~protocol ~property_name ~input_to_string b =
    {
      protocol;
      property = property_name;
      seed = b.seed;
      m = b.m;
      ids = b.ids;
      inputs = Array.map input_to_string b.inputs;
      namings = b.namings;
      crashes = b.crashes;
      steps = b.steps;
      loop = b.loop;
    }

  let of_raw ~input_of_string (r : raw) =
    let n = Array.length r.ids in
    Array.iter
      (fun a ->
        if Array.length a <> r.m then
          failwith
            (Printf.sprintf "naming has %d entries but m = %d" (Array.length a)
               r.m);
        let seen = Array.make r.m false in
        Array.iter
          (fun v ->
            if v < 0 || v >= r.m || seen.(v) then
              failwith
                (Printf.sprintf "naming is not a permutation of 0..%d"
                   (r.m - 1));
            seen.(v) <- true)
          a)
      r.namings;
    let check_proc what p =
      if p < 0 || p >= n then
        failwith (Printf.sprintf "%s names process %d but n = %d" what p n)
    in
    Array.iter (check_proc "steps") r.steps;
    Array.iter (check_proc "loop") r.loop;
    Array.iter (fun (_, p) -> check_proc "crashes" p) r.crashes;
    {
      m = r.m;
      ids = r.ids;
      inputs = Array.map input_of_string r.inputs;
      namings = r.namings;
      crashes = r.crashes;
      steps = r.steps;
      loop = r.loop;
      seed = r.seed;
    }
end
