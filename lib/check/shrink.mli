(** Counterexample minimization: delta-debugging over replayable witness
    bundles.

    A {e bundle} is a violating run as plain data: the instance (m, ids,
    inputs, register namings), a schedule script, optional crash events,
    and — for liveness witnesses — a lasso loop. Replaying a bundle is
    deterministic (coins draw from the bundle's pinned seed), so a bundle
    is both a regression-corpus entry and the unit the shrinker works on:
    every shrink candidate is re-validated by replay, and only candidates
    that still exhibit the violation are kept.

    Two witness shapes are supported, matching the two ways the paper's
    properties fail:

    - {b Safety} (mutual exclusion, agreement, uniqueness, validity): the
      schedule drives the runtime into a state satisfying a violation
      predicate. The witness is the step prefix up to that state.
    - {b Lasso} (deadlock/livelock, Theorem 3.1's even-[m] failure): a
      prefix reaches a state from which the [loop] steps return to the
      {e exact same} state without any critical-section entry, while some
      process is trying and every process active on the loop takes a step
      in it — a replayable fair non-progress cycle.

    The shrink lattice: state-revisit excision (whenever the replay
    revisits an exact runtime state, the steps between the two visits are
    cut, and a safety schedule is truncated at its violation step),
    schedule-step deletion (ddmin chunks down to single steps), loop-step
    deletion, crash-event deletion, process removal (with step remapping),
    physical-register removal (namings are collapsed around the deleted
    register), and identifier canonicalization. The result is locally
    minimal: no single remaining step, crash, process or register can be
    removed without losing the violation. *)

open Anonmem

(** A protocol-agnostic bundle image: inputs as strings, ready for the
    one-line-per-field text format under [test/corpus/]. *)
type raw = {
  protocol : string;  (** coordctl protocol name, e.g. ["mutex"] *)
  property : string;  (** property name, e.g. ["deadlock-freedom"] *)
  seed : int;  (** runtime RNG seed (coins); irrelevant for coinless runs *)
  m : int;
  ids : int array;
  inputs : string array;  (** ["-"] for unit inputs *)
  namings : int array array;
  crashes : (int * int) array;  (** (global clock, proc), sorted by clock *)
  steps : int array;
  loop : int array;  (** empty for safety witnesses *)
}

val write_raw : string -> raw -> unit
(** Write the textual [COORDFUZZ 1] format (see DESIGN.md §11). *)

val read_raw : string -> (raw, string) result
(** Parse a bundle file; [Error] carries a human-readable reason. *)

module Make (P : Protocol.PROTOCOL) : sig
  module R : module type of Runtime.Make (P)

  type bundle = {
    m : int;
    ids : int array;
    inputs : P.input array;
    namings : int array array;
    crashes : (int * int) array;
    steps : int array;
    loop : int array;
    seed : int;
  }

  val n_procs : bundle -> int

  (** What the bundle claims to witness. *)
  type property =
    | Safety of (R.t -> bool)
        (** predicate evaluated after every executed step; the bundle hits
            if it fires anywhere along the script *)
    | Lasso
        (** the [loop] steps must return the runtime to the exact state
            reached after [steps], enter no critical section, keep some
            process trying, and step every process active on the loop *)

  val replay : property -> bundle -> bool * (P.Value.t, P.output) Trace.t
  (** Deterministically re-run the bundle with tracing on. Crash events
      fire when the global clock reaches their time; script steps naming
      a finished or crashed process are skipped, so a bundle stays
      replayable under shrinking. *)

  val hits : property -> bundle -> bool
  (** {!replay} without trace recording — the shrinker's (and the fuzz
      driver's) inner loop. *)

  type stats = {
    rounds : int;
    candidates : int;  (** shrink candidates replayed *)
    accepted : int;  (** candidates that kept the violation *)
    steps_before : int;
    steps_after : int;
  }

  val pp_stats : Format.formatter -> stats -> unit

  val shrink : ?max_rounds:int -> property -> bundle -> bundle * stats
  (** Greedy fixpoint over the shrink lattice (default [max_rounds] 8 —
      in practice 2–3 rounds reach the fixpoint). Raises
      [Invalid_argument] if the input bundle does not replay to its
      violation in the first place. The returned bundle is 1-minimal in
      its schedule steps and replays to the violation deterministically. *)

  val to_raw :
    protocol:string ->
    property_name:string ->
    input_to_string:(P.input -> string) ->
    bundle ->
    raw

  val of_raw : input_of_string:(string -> P.input) -> raw -> bundle
  (** Raises [Failure] on malformed namings / process indices. *)
end
