type error =
  | Io of string
  | Bad_magic of { path : string }
  | Bad_version of { path : string; found : int; expected : int }
  | Corrupt of { path : string; detail : string }
  | Config_mismatch of { path : string; snapshot : string; current : string }

exception Error of error

let error_message = function
  | Io msg -> Printf.sprintf "snapshot I/O error: %s" msg
  | Bad_magic { path } -> Printf.sprintf "%s is not a snapshot file" path
  | Bad_version { path; found; expected } ->
    Printf.sprintf "%s: snapshot format v%d, this build reads v%d" path found
      expected
  | Corrupt { path; detail } ->
    Printf.sprintf "%s: snapshot is corrupt (%s); refusing to resume" path
      detail
  | Config_mismatch { path; snapshot; current } ->
    Printf.sprintf
      "%s: snapshot belongs to a different exploration:\n\
      \  snapshot: %s\n\
      \  current:  %s"
      path snapshot current

let magic = "COORDSNAP"

(* v3: the single whole-payload CRC became a sequence of appended,
   individually CRC'd chunks — each one a complete marshaled boundary —
   so a damaged tail rolls back to the last intact checkpoint instead of
   discarding the file ({!read_salvaged}). A v2 file has no chunk frames
   at all, so the version gates it out.
   v4: the marshaled codec dump inside explorer payloads grew a key-width
   field (wide 4-byte keys for disk-bounded runs). Unmarshaling a v3 dump
   with the v4 layout is undefined behavior, so the version gates it. *)
let version = 4

(* CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Marshal has no
   integrity check of its own: feeding it a truncated or bit-flipped
   payload is undefined behavior, so the per-chunk CRC is what stands
   between a damaged file and a garbage graph. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

type meta = { version : int; fingerprint : Digest.t; descr : string }
type salvage = { kept_chunks : int; detail : string }

let chunk_marker = '\xC5'

(* Rewrite (compact) a file once this many chunks have accumulated;
   bounds file growth at [max_chunks] boundary payloads. *)
let max_chunks = 4

(* Chunks appended to each path by THIS process since its last full
   rewrite. A path we never wrote (e.g. the snapshot a resumed run is
   continuing) misses here and gets rewritten, which also discards any
   damaged tail left by the previous owner's death. The explorers write
   from a single thread, so no lock. *)
let appended : (string, int) Hashtbl.t = Hashtbl.create 8

let chunk_bytes payload =
  let b = Buffer.create (String.length payload + 13) in
  Buffer.add_char b chunk_marker;
  let l = Bytes.create 8 in
  Bytes.set_int64_be l 0 (Int64.of_int (String.length payload));
  Buffer.add_bytes b l;
  let c = Bytes.create 4 in
  Bytes.set_int32_be c 0 (crc32 payload);
  Buffer.add_bytes b c;
  Buffer.add_string b payload;
  Buffer.contents b

(* The fault-injection seams. [mutate_write]: a matured
   Torn_write/Flip_byte damages the framed chunk exactly as a dying disk
   would. [io_write]: the chunk then passes the disk-fault layer, which
   counts it as one I/O operation and can truncate it further
   (Short_write) or refuse it outright (Io_error/Disk_full raise
   {!Resilience.Io_fault}). *)
let framed payload =
  let chunk = chunk_bytes payload in
  let chunk =
    match Resilience.mutate_write chunk with Some d -> d | None -> chunk
  in
  Resilience.io_write chunk

let fsync_out oc =
  (* seam: a matured Fsync_fail refuses durability here *)
  Resilience.io_sync ();
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* tmp+rename alone is not durable: after a crash the rename itself may
   not have reached the journal, surfacing an old, empty or absent file.
   Syncing the parent directory commits the name; best-effort because
   some filesystems refuse fsync on directory fds. *)
let fsync_dir path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write ~path ~fingerprint ~descr payload =
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc magic;
       output_byte oc version;
       output_string oc fingerprint;
       let b = Bytes.create 2 in
       Bytes.set_uint16_be b 0 (String.length descr);
       output_bytes oc b;
       output_string oc descr;
       output_string oc (framed payload);
       fsync_out oc;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path;
    fsync_dir path;
    Hashtbl.replace appended path 1
  with Sys_error msg -> raise (Error (Io msg))

let append ~path ~fingerprint ~descr payload =
  let n =
    match Hashtbl.find_opt appended path with
    | Some n when Sys.file_exists path -> n
    | _ -> max_chunks
  in
  if n >= max_chunks then write ~path ~fingerprint ~descr payload
  else
    try
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      (try
         output_string oc (framed payload);
         fsync_out oc;
         close_out oc
       with e ->
         close_out_noerr oc;
         raise e);
      Hashtbl.replace appended path (n + 1)
    with Sys_error msg -> raise (Error (Io msg))

let input_exact ~path ic len what =
  let b = Bytes.create len in
  (try really_input ic b 0 len
   with End_of_file ->
     raise (Error (Corrupt { path; detail = "truncated " ^ what })));
  b

let with_in ~path f =
  let ic =
    try open_in_bin path with Sys_error msg -> raise (Error (Io msg))
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let read_header ~path ic =
  let m =
    Bytes.to_string (input_exact ~path ic (String.length magic) "header")
  in
  if m <> magic then raise (Error (Bad_magic { path }));
  let v =
    try input_byte ic
    with End_of_file ->
      raise (Error (Corrupt { path; detail = "truncated header" }))
  in
  if v <> version then
    raise (Error (Bad_version { path; found = v; expected = version }));
  let fingerprint = Bytes.to_string (input_exact ~path ic 16 "fingerprint") in
  let dlen = Bytes.get_uint16_be (input_exact ~path ic 2 "header") 0 in
  let descr = Bytes.to_string (input_exact ~path ic dlen "description") in
  { version = v; fingerprint; descr }

let read_meta ~path = with_in ~path (fun ic -> read_header ~path ic)

(* Scan the chunk sequence after the header. Never trusts a byte it has
   not checked: any framing anomaly — wrong marker, nonsensical or
   file-exceeding length, short payload, CRC mismatch — ends the scan
   and is reported; everything before it is the intact prefix. [all]
   accumulates the intact payloads oldest-first. *)
let scan_chunks ic =
  let total = in_channel_length ic in
  let all = ref [] in
  let kept = ref 0 in
  let anomaly = ref None in
  let stop = ref false in
  (try
     while not !stop do
       if pos_in ic >= total then stop := true (* clean end *)
       else if input_char ic <> chunk_marker then begin
         anomaly := Some "bad chunk marker";
         stop := true
       end
       else if total - pos_in ic < 12 then begin
         anomaly := Some "truncated chunk header";
         stop := true
       end
       else begin
         let b8 = Bytes.create 8 in
         really_input ic b8 0 8;
         let len64 = Bytes.get_int64_be b8 0 in
         let b4 = Bytes.create 4 in
         really_input ic b4 0 4;
         let crc = Bytes.get_int32_be b4 0 in
         if
           Int64.compare len64 0L < 0
           || Int64.compare len64 (Int64.of_int (total - pos_in ic)) > 0
         then begin
           anomaly := Some "truncated or nonsensical chunk length";
           stop := true
         end
         else begin
           let len = Int64.to_int len64 in
           let p = Bytes.create len in
           really_input ic p 0 len;
           let p = Bytes.unsafe_to_string p in
           let found = crc32 p in
           if found <> crc then begin
             anomaly :=
               Some
                 (Printf.sprintf
                    "chunk %d CRC mismatch: stored %08lx, computed %08lx"
                    (!kept + 1) crc found);
             stop := true
           end
           else begin
             all := p :: !all;
             incr kept
           end
         end
       end
     done
   with End_of_file -> anomaly := Some "truncated chunk");
  let last = match !all with [] -> None | p :: _ -> Some p in
  (!kept, last, !all, !anomaly)

let read ~path =
  with_in ~path (fun ic ->
      let meta = read_header ~path ic in
      let _, last, _, anomaly = scan_chunks ic in
      match (last, anomaly) with
      | Some p, None -> (meta, p)
      | _, Some detail -> raise (Error (Corrupt { path; detail }))
      | None, None ->
        raise (Error (Corrupt { path; detail = "no checkpoint chunk" })))

let read_salvaged ~path =
  with_in ~path (fun ic ->
      let meta = read_header ~path ic in
      let kept, last, _, anomaly = scan_chunks ic in
      match last with
      | None ->
        let detail =
          match anomaly with Some d -> d | None -> "no checkpoint chunk"
        in
        raise (Error (Corrupt { path; detail }))
      | Some p ->
        ( meta,
          p,
          Option.map (fun detail -> { kept_chunks = kept; detail }) anomaly ))

(* All intact checkpoints, newest first. The external-memory explorer
   needs more than the newest chunk: a checkpoint is only usable if every
   run file its manifest lists still validates, so resume walks backwards
   through the intact chunks until one's manifest checks out. *)
let read_chunks ~path =
  with_in ~path (fun ic ->
      let meta = read_header ~path ic in
      let kept, _, all, anomaly = scan_chunks ic in
      match all with
      | [] ->
        let detail =
          match anomaly with Some d -> d | None -> "no checkpoint chunk"
        in
        raise (Error (Corrupt { path; detail }))
      | newest_first ->
        ( meta,
          newest_first,
          Option.map (fun detail -> { kept_chunks = kept; detail }) anomaly ))

let check_fingerprint ~path meta ~fingerprint ~descr =
  if not (String.equal meta.fingerprint fingerprint) then
    raise
      (Error
         (Config_mismatch { path; snapshot = meta.descr; current = descr }))

(* -------------------------------------------------------------------- *)
(* cooperative interruption                                             *)
(* -------------------------------------------------------------------- *)

let stop_flag = Atomic.make false
let signals_seen = Atomic.make 0

let request_stop () = Atomic.set stop_flag true
let stop_requested () = Atomic.get stop_flag

let reset_stop () =
  Atomic.set stop_flag false;
  Atomic.set signals_seen 0

(* Previous dispositions, saved by the OUTERMOST install only, so
   install/restore pairs can nest without losing the real originals. *)
let saved_handlers : (Sys.signal_behavior * Sys.signal_behavior) option ref =
  ref None

let install_signal_handlers () =
  let handle exit_code _signo =
    if Atomic.fetch_and_add signals_seen 1 = 0 then Atomic.set stop_flag true
    else exit exit_code
    (* second signal: the operator means it *)
  in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle (handle 143)) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle (handle 130)) in
  match !saved_handlers with
  | Some _ -> () (* already ours; keep the true originals *)
  | None -> saved_handlers := Some (prev_term, prev_int)

let restore_signal_handlers () =
  match !saved_handlers with
  | None -> ()
  | Some (prev_term, prev_int) ->
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigint prev_int;
    saved_handlers := None

let with_signal_handlers f =
  install_signal_handlers ();
  Fun.protect ~finally:restore_signal_handlers f
