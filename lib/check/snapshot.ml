type error =
  | Io of string
  | Bad_magic of { path : string }
  | Bad_version of { path : string; found : int; expected : int }
  | Corrupt of { path : string; detail : string }
  | Config_mismatch of { path : string; snapshot : string; current : string }

exception Error of error

let error_message = function
  | Io msg -> Printf.sprintf "snapshot I/O error: %s" msg
  | Bad_magic { path } -> Printf.sprintf "%s is not a snapshot file" path
  | Bad_version { path; found; expected } ->
    Printf.sprintf "%s: snapshot format v%d, this build reads v%d" path found
      expected
  | Corrupt { path; detail } ->
    Printf.sprintf "%s: snapshot is corrupt (%s); refusing to resume" path
      detail
  | Config_mismatch { path; snapshot; current } ->
    Printf.sprintf
      "%s: snapshot belongs to a different exploration:\n\
      \  snapshot: %s\n\
      \  current:  %s"
      path snapshot current

let magic = "COORDSNAP"

(* v2: [sp_candidates] now counts the initial state too (the dedup
   accounting fix). A v1 snapshot resumed under v2 code would restore a
   running total that is one short, so the version gates it out. *)
let version = 2

(* CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Marshal has no
   integrity check of its own: feeding it a truncated or bit-flipped
   payload is undefined behavior, so the CRC is what stands between a
   damaged file and a garbage graph. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

type meta = { version : int; fingerprint : Digest.t; descr : string }

let write ~path ~fingerprint ~descr payload =
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc magic;
       output_byte oc version;
       output_string oc fingerprint;
       let b = Bytes.create 2 in
       Bytes.set_uint16_be b 0 (String.length descr);
       output_bytes oc b;
       output_string oc descr;
       let b = Bytes.create 8 in
       Bytes.set_int64_be b 0 (Int64.of_int (String.length payload));
       output_bytes oc b;
       let b = Bytes.create 4 in
       Bytes.set_int32_be b 0 (crc32 payload);
       output_bytes oc b;
       output_string oc payload;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path
  with Sys_error msg -> raise (Error (Io msg))

let input_exact ~path ic len what =
  let b = Bytes.create len in
  (try really_input ic b 0 len
   with End_of_file ->
     raise (Error (Corrupt { path; detail = "truncated " ^ what })));
  b

let with_in ~path f =
  let ic =
    try open_in_bin path with Sys_error msg -> raise (Error (Io msg))
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let read_header ~path ic =
  let m =
    Bytes.to_string (input_exact ~path ic (String.length magic) "header")
  in
  if m <> magic then raise (Error (Bad_magic { path }));
  let v =
    try input_byte ic
    with End_of_file ->
      raise (Error (Corrupt { path; detail = "truncated header" }))
  in
  if v <> version then
    raise (Error (Bad_version { path; found = v; expected = version }));
  let fingerprint = Bytes.to_string (input_exact ~path ic 16 "fingerprint") in
  let dlen = Bytes.get_uint16_be (input_exact ~path ic 2 "header") 0 in
  let descr = Bytes.to_string (input_exact ~path ic dlen "description") in
  { version = v; fingerprint; descr }

let read_meta ~path = with_in ~path (fun ic -> read_header ~path ic)

let read ~path =
  with_in ~path (fun ic ->
      let meta = read_header ~path ic in
      let plen =
        Int64.to_int (Bytes.get_int64_be (input_exact ~path ic 8 "header") 0)
      in
      if plen < 0 || plen > Sys.max_string_length then
        raise (Error (Corrupt { path; detail = "nonsensical payload length" }));
      let crc = Bytes.get_int32_be (input_exact ~path ic 4 "header") 0 in
      let payload = Bytes.to_string (input_exact ~path ic plen "payload") in
      let found = crc32 payload in
      if found <> crc then
        raise
          (Error
             (Corrupt
                {
                  path;
                  detail =
                    Printf.sprintf "CRC mismatch: stored %08lx, computed %08lx"
                      crc found;
                }));
      (meta, payload))

let check_fingerprint ~path meta ~fingerprint ~descr =
  if not (String.equal meta.fingerprint fingerprint) then
    raise
      (Error
         (Config_mismatch { path; snapshot = meta.descr; current = descr }))

(* -------------------------------------------------------------------- *)
(* cooperative interruption                                             *)
(* -------------------------------------------------------------------- *)

let stop_flag = Atomic.make false
let signals_seen = Atomic.make 0

let request_stop () = Atomic.set stop_flag true
let stop_requested () = Atomic.get stop_flag

let reset_stop () =
  Atomic.set stop_flag false;
  Atomic.set signals_seen 0

let install_signal_handlers () =
  let handle exit_code _signo =
    if Atomic.fetch_and_add signals_seen 1 = 0 then Atomic.set stop_flag true
    else exit exit_code
    (* second signal: the operator means it *)
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (handle 143));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (handle 130))
