(** Durable on-disk checkpoints for long explorations.

    This module owns the {e envelope}: a versioned, CRC-checksummed file
    format with a config fingerprint, so a resumed run can prove it is
    continuing the same exploration it left off — never silently explore
    the wrong protocol. The payload itself is opaque here (the explorers
    marshal their own typed resume state, see {!Explore.Make.explore});
    everything that can go wrong with the {e file} is detected at this
    layer and reported as a typed {!error}.

    Layout (all integers big-endian):
    {v
    "COORDSNAP"  9-byte magic
    u8           format version (currently 2)
    16 bytes     MD5 fingerprint of the exploration config
    u16 + bytes  human-readable config description (for diagnostics)
    u64          payload length
    u32          CRC-32 (IEEE) of the payload
    payload
    v}

    Writes go to [path ^ ".tmp"] and are renamed into place, so a crash
    mid-write never leaves a half-written snapshot under the real name —
    at worst the previous complete snapshot survives.

    The module also hosts the process-wide cooperative stop flag behind
    graceful SIGINT/SIGTERM handling: handlers (installed by the CLI)
    only set the flag; explorers poll it at generation boundaries, flush
    a final snapshot and return a truncated ([complete = false]) result
    instead of dying with every interned state lost. *)

(** Everything that can be wrong with a snapshot file. *)
type error =
  | Io of string  (** open/read/write/rename failure; the system message *)
  | Bad_magic of { path : string }
      (** the file is not a snapshot at all *)
  | Bad_version of { path : string; found : int; expected : int }
      (** written by an incompatible format version *)
  | Corrupt of { path : string; detail : string }
      (** truncated file or CRC mismatch — the payload cannot be trusted *)
  | Config_mismatch of { path : string; snapshot : string; current : string }
      (** valid snapshot of a {e different} exploration; both sides'
          descriptions are carried for the diagnostic *)

exception Error of error

val error_message : error -> string
(** One-line human-readable diagnostic, naming the mismatch. *)

type meta = { version : int; fingerprint : Digest.t; descr : string }

val write : path:string -> fingerprint:Digest.t -> descr:string -> string -> unit
(** [write ~path ~fingerprint ~descr payload] durably replaces [path]
    (tmp file + atomic rename). Raises {!Error} ([Io _]) on failure. *)

val read : path:string -> meta * string
(** Read and fully validate (magic, version, CRC) a snapshot file.
    Raises {!Error}. Fingerprint checking is the caller's job (it knows
    the current config): see {!check_fingerprint}. *)

val read_meta : path:string -> meta
(** Header only — cheap existence/compatibility probe that skips the
    payload CRC. Raises {!Error}. *)

val check_fingerprint : path:string -> meta -> fingerprint:Digest.t -> descr:string -> unit
(** Raises {!Error} ([Config_mismatch _]) unless the snapshot's
    fingerprint equals the current run's. *)

(** {2 Cooperative interruption} *)

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to the stop flag: the first signal requests
    a graceful stop (explorers flush a snapshot and return truncated);
    a second signal exits immediately with the conventional [128 + signo]
    code. Installed by the CLI only when snapshotting is enabled, so
    default signal behavior is preserved otherwise. *)

val request_stop : unit -> unit
(** What the handlers call; exposed so tests can simulate a signal. *)

val stop_requested : unit -> bool
(** Polled by the explorers at generation boundaries. *)

val reset_stop : unit -> unit
(** Clear the flag (tests; or a driver starting a fresh exploration
    after a graceful stop). *)
