(** Durable on-disk checkpoints for long explorations.

    This module owns the {e envelope}: a versioned file format with a
    config fingerprint and per-chunk CRCs, so a resumed run can prove it
    is continuing the same exploration it left off — never silently
    explore the wrong protocol, never feed [Marshal] damaged bytes. The
    payload itself is opaque here (the explorers marshal their own typed
    resume state, see {!Explore.Make.explore}); everything that can go
    wrong with the {e file} is detected at this layer and reported as a
    typed {!error}.

    Layout (all integers big-endian):
    {v
    "COORDSNAP"  9-byte magic
    u8           format version (currently 4)
    16 bytes     MD5 fingerprint of the exploration config
    u16 + bytes  human-readable config description (for diagnostics)
    then 1..max_chunks chunks, each:
      u8         chunk marker (0xC5)
      u64        payload length
      u32        CRC-32 (IEEE) of the payload
      payload    one complete marshaled resume boundary
    v}

    {!write} replaces the file (tmp + fsync + atomic rename + directory
    fsync, so a crash mid-write never leaves a half-written snapshot
    under the real name and the rename itself is durable). {!append}
    adds the new boundary as one more chunk — an O(new data) durable
    append instead of an O(file) rewrite — compacting back to a single
    chunk every {!max_chunks} appends. Because every chunk is a complete
    checkpoint with its own CRC, a torn or bit-flipped tail costs only
    the damaged suffix: {!read_salvaged} rolls back to the newest intact
    chunk where {!read} would reject the whole file.

    The module also hosts the process-wide cooperative stop flag behind
    graceful SIGINT/SIGTERM handling: handlers (installed by the CLI)
    only set the flag; explorers poll it at generation boundaries, flush
    a final snapshot and return a truncated ([complete = false]) result
    instead of dying with every interned state lost. *)

(** Everything that can be wrong with a snapshot file. *)
type error =
  | Io of string  (** open/read/write/rename failure; the system message *)
  | Bad_magic of { path : string }
      (** the file is not a snapshot at all *)
  | Bad_version of { path : string; found : int; expected : int }
      (** written by an incompatible format version *)
  | Corrupt of { path : string; detail : string }
      (** damaged file with no intact chunk — nothing can be trusted *)
  | Config_mismatch of { path : string; snapshot : string; current : string }
      (** valid snapshot of a {e different} exploration; both sides'
          descriptions are carried for the diagnostic *)

exception Error of error

val error_message : error -> string
(** One-line human-readable diagnostic, naming the mismatch. *)

type meta = { version : int; fingerprint : Digest.t; descr : string }

type salvage = { kept_chunks : int; detail : string }
(** What {!read_salvaged} had to do: the damaged tail was dropped and
    the [kept_chunks]-th chunk (the newest intact one) was returned;
    [detail] describes the first anomaly found. *)

val max_chunks : int
(** {!append} compacts the file back to one chunk once this many chunks
    have accumulated, bounding file size at [max_chunks] boundaries. *)

val write : path:string -> fingerprint:Digest.t -> descr:string -> string -> unit
(** [write ~path ~fingerprint ~descr payload] durably replaces [path]
    (tmp + file fsync + atomic rename + parent-directory fsync) with a
    fresh single-chunk snapshot. Raises {!Error} ([Io _]) on failure. *)

val append : path:string -> fingerprint:Digest.t -> descr:string -> string -> unit
(** Add [payload] as one more chunk with a durable append, falling back
    to {!write} when the file is missing, was not written by this
    process, or already holds {!max_chunks} chunks. Raises {!Error}
    ([Io _]) on failure. *)

val read : path:string -> meta * string
(** Read and fully validate (magic, version, every chunk frame and CRC)
    a snapshot file, returning the newest chunk's payload. Raises
    {!Error} — including [Corrupt _] when {e any} chunk is damaged; use
    {!read_salvaged} to roll back instead. Fingerprint checking is the
    caller's job (it knows the current config): see {!check_fingerprint}. *)

val read_salvaged : path:string -> meta * string * salvage option
(** Like {!read}, but a damaged tail (torn append, flipped byte,
    truncation) rolls back to the newest intact chunk instead of
    rejecting the file: returns its payload plus [Some salvage]
    describing what was dropped ([None] when the file was fully intact).
    Still raises {!Error} when the header is damaged or no chunk
    survives — a salvaged resume never trusts unverified bytes. *)

val read_chunks : path:string -> meta * string list * salvage option
(** Every intact chunk's payload, newest first (the head equals what
    {!read_salvaged} returns). For checkpoints that reference external
    files — the disk-backed visited set's run manifest — where the newest
    chunk may be internally intact yet unusable (a listed run file is
    damaged), so resume must fall back to older checkpoints. Raises
    {!Error} as {!read_salvaged} does. *)

val read_meta : path:string -> meta
(** Header only — cheap existence/compatibility probe that skips the
    chunks. Raises {!Error}. *)

val check_fingerprint : path:string -> meta -> fingerprint:Digest.t -> descr:string -> unit
(** Raises {!Error} ([Config_mismatch _]) unless the snapshot's
    fingerprint equals the current run's. *)

(** {2 Cooperative interruption} *)

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to the stop flag: the first signal requests
    a graceful stop (explorers flush a snapshot and return truncated);
    a second signal exits immediately with the conventional [128 + signo]
    code. Installed by the CLI only when snapshotting is enabled, so
    default signal behavior is preserved otherwise. The previous
    dispositions are saved (outermost install wins) for
    {!restore_signal_handlers}. *)

val restore_signal_handlers : unit -> unit
(** Put back the dispositions {!install_signal_handlers} displaced, so
    library callers and tests regain their own Ctrl-C behavior after an
    exploration returns. No-op if nothing was installed. *)

val with_signal_handlers : (unit -> 'a) -> 'a
(** [with_signal_handlers f] installs, runs [f], and restores (also on
    exception). *)

val request_stop : unit -> unit
(** What the handlers call; exposed so tests can simulate a signal. *)

val stop_requested : unit -> bool
(** Polled by the explorers at generation boundaries. *)

val reset_stop : unit -> unit
(** Clear the flag (tests; or a driver starting a fresh exploration
    after a graceful stop). *)
