open Anonmem

(* Figure 1, one phase constructor per program point. Line numbers in the
   comments refer to the paper's figure. The view is summarized by counters
   ([mine], [zeros]) because the algorithm only uses it through "id appears
   in all / in fewer than ceil(m/2) entries" and "all entries are 0". *)

module P = struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp = Format.pp_print_int
  end

  type input = unit
  type output = Empty.t

  type local =
    | Rem  (** remainder section *)
    | Scan_check of int  (** line 2: about to read register j *)
    | Scan_write of int  (** line 2: read 0 in register j, about to claim it *)
    | Collect of { j : int; mine : int }
        (** line 3: reading the view; [mine] entries so far held my id *)
    | Clean_check of int  (** line 5: about to read register j *)
    | Clean_write of int  (** line 5: register j held my id, resetting it *)
    | Wait of { j : int; zeros : int }  (** lines 6–8: waiting for release *)
    | Crit  (** line 11: critical section *)
    | Exit of int  (** line 12: resetting register j on the way out *)

  let name = "anonymous-mutex-fig1"

  let symmetric = true

  let default_registers ~n:_ = 3

  let threshold ~m = (m + 1) / 2

  let start ~n:_ ~m:_ ~id:_ () = Rem

  (* After the scan of line 2 the process proceeds to read its view. *)
  let next_scan ~m j = if j < m then Scan_check j else Collect { j = 0; mine = 0 }

  let next_clean ~m j =
    if j < m then Clean_check j else Wait { j = 0; zeros = 0 }

  let step ~n:_ ~m ~id local : (local, Value.t) Protocol.step =
    match local with
    | Rem -> Internal (Scan_check 0) (* begin entry code *)
    | Scan_check j ->
      Read (j, fun v -> if v = 0 then Scan_write j else next_scan ~m (j + 1))
    | Scan_write j -> Write (j, id, next_scan ~m (j + 1))
    | Collect { j; mine } ->
      Read
        ( j,
          fun v ->
            let mine = if v = id then mine + 1 else mine in
            if j + 1 < m then Collect { j = j + 1; mine }
            else if mine = m then Crit (* line 10 holds: enter CS *)
            else if mine < threshold ~m then Clean_check 0 (* line 4: lose *)
            else Scan_check 0 (* line 1: try again *) )
    | Clean_check j ->
      Read (j, fun v -> if v = id then Clean_write j else next_clean ~m (j + 1))
    | Clean_write j -> Write (j, 0, next_clean ~m (j + 1))
    | Wait { j; zeros } ->
      Read
        ( j,
          fun v ->
            let zeros = if v = 0 then zeros + 1 else zeros in
            if j + 1 < m then Wait { j = j + 1; zeros }
            else if zeros = m then Scan_check 0 (* line 8: released *)
            else Wait { j = 0; zeros = 0 } )
    | Crit -> Internal (Exit 0) (* leave the CS, begin exit code *)
    | Exit j -> Write (j, 0, if j + 1 < m then Exit (j + 1) else Rem)

  let status = function
    | Rem -> Protocol.Remainder
    | Crit -> Protocol.Critical
    | Exit _ -> Protocol.Exiting
    | Scan_check _ | Scan_write _ | Collect _ | Clean_check _ | Clean_write _
    | Wait _ ->
      Protocol.Trying

  let compare_local = Stdlib.compare

  (* A register holds 0 (free) or the claiming process's id. *)
  let map_value_ids f v = if v = 0 then 0 else f v

  (* Locals carry only register indices and counters — no ids. *)
  let map_local_ids _ l = l

  let pp_local ppf = function
    | Rem -> Format.pp_print_string ppf "rem"
    | Scan_check j -> Format.fprintf ppf "scan-check[%d]" j
    | Scan_write j -> Format.fprintf ppf "scan-write[%d]" j
    | Collect { j; mine } -> Format.fprintf ppf "collect[%d,mine=%d]" j mine
    | Clean_check j -> Format.fprintf ppf "clean-check[%d]" j
    | Clean_write j -> Format.fprintf ppf "clean-write[%d]" j
    | Wait { j; zeros } -> Format.fprintf ppf "wait[%d,zeros=%d]" j zeros
    | Crit -> Format.pp_print_string ppf "crit"
    | Exit j -> Format.fprintf ppf "exit[%d]" j

  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Empty.pp
end
