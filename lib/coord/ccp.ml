open Anonmem

(* Register values: [chosen] is the elected marker, any other value is a
   level. Levels only grow, and only by a process whose own level equals
   the register's, so a register at level l witnesses that some process
   carried level l here. The safety core mirrors Rabin's invariant: a
   process marks a register chosen only when its level strictly exceeds
   the register's, which (with the crossing discipline) cannot happen at
   both registers for levels obtained from one another. *)

let chosen = -1

module Make (C : sig
  val cap : int
  val deterministic : bool
end) =
struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp ppf v =
      if v = chosen then Format.pp_print_string ppf "chosen"
      else Format.fprintf ppf "level:%d" v
  end

  type input = unit
  type output = int

  type local =
    | Rem
    | Flip of { pos : int; level : int }
    | Visit of { pos : int; level : int; luck : bool }
    | Chose of int

  let name =
    Printf.sprintf "ccp-%s-cap%d"
      (if C.deterministic then "det" else "rand")
      C.cap

  (* Never looks at its identifier at all. *)
  let symmetric = true

  let default_registers ~n:_ = 2

  let start ~n:_ ~m:_ ~id:_ () = Rem

  let step ~n:_ ~m:_ ~id:_ local : (local, Value.t) Protocol.step =
    match local with
    | Rem -> Internal (Flip { pos = 0; level = 0 })
    | Flip { pos; level } ->
      if C.deterministic then Internal (Visit { pos; level; luck = true })
      else Coin (fun luck -> Visit { pos; level; luck })
    | Visit { pos; level; luck } ->
      Rmw
        ( pos,
          fun v ->
            if v = chosen then (v, Chose pos)
            else if level > v then (chosen, Chose pos)
            else if level < v then (v, Flip { pos = 1 - pos; level = v })
            else if luck && level < C.cap then
              (level + 1, Flip { pos = 1 - pos; level = level + 1 })
            else (v, Flip { pos = 1 - pos; level }) )
    | Chose _ -> invalid_arg "Ccp.step: already decided"

  let status = function
    | Rem -> Protocol.Remainder
    | Flip _ | Visit _ -> Protocol.Trying
    | Chose pos -> Protocol.Decided pos

  let level_of = function
    | Rem -> 0
    | Flip { level; _ } | Visit { level; _ } -> level
    | Chose _ -> 0

  let compare_local = Stdlib.compare

  (* Registers hold levels / the chosen marker; locals hold positions and
     levels — no identifiers anywhere. *)
  let map_value_ids _ v = v
  let map_local_ids _ l = l

  let pp_local ppf = function
    | Rem -> Format.pp_print_string ppf "rem"
    | Flip { pos; level } -> Format.fprintf ppf "flip[pos=%d,l=%d]" pos level
    | Visit { pos; level; luck } ->
      Format.fprintf ppf "visit[pos=%d,l=%d,%c]" pos level
        (if luck then 'H' else 'T')
    | Chose pos -> Format.fprintf ppf "chose(%d)" pos

  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end

module P = Make (struct
  let cap = 8
  let deterministic = false
end)

module Det = Make (struct
  let cap = 8
  let deterministic = true
end)
