open Anonmem

let chosen = -1

module Make (C : sig
  val k : int
  val cap : int
end) =
struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp ppf v =
      if v = chosen then Format.pp_print_string ppf "chosen"
      else Format.fprintf ppf "level:%d" v
  end

  type input = unit
  type output = int

  type local =
    | Rem
    | Flip of { pos : int; level : int }
    | Visit of { pos : int; level : int; luck : bool }
    | Chose of int

  let name = Printf.sprintf "ccp-k%d-cap%d-strawman" C.k C.cap

  (* Never looks at its identifier at all. *)
  let symmetric = true

  let default_registers ~n:_ = C.k

  let start ~n:_ ~m:_ ~id:_ () = Rem

  let step ~n:_ ~m:_ ~id:_ local : (local, Value.t) Protocol.step =
    match local with
    | Rem -> Internal (Flip { pos = 0; level = 0 })
    | Flip { pos; level } -> Coin (fun luck -> Visit { pos; level; luck })
    | Visit { pos; level; luck } ->
      let next = (pos + 1) mod C.k in
      Rmw
        ( pos,
          fun v ->
            if v = chosen then (v, Chose pos)
            else if level > v then (chosen, Chose pos)
            else if level < v then (v, Flip { pos = next; level = v })
            else if luck && level < C.cap then
              (level + 1, Flip { pos = next; level = level + 1 })
            else (v, Flip { pos = next; level }) )
    | Chose _ -> invalid_arg "Ccp_k.step: already decided"

  let status = function
    | Rem -> Protocol.Remainder
    | Flip _ | Visit _ -> Protocol.Trying
    | Chose pos -> Protocol.Decided pos

  let compare_local = Stdlib.compare

  (* Levels and positions only — no identifiers. *)
  let map_value_ids _ v = v
  let map_local_ids _ l = l

  let pp_local ppf = function
    | Rem -> Format.pp_print_string ppf "rem"
    | Flip { pos; level } -> Format.fprintf ppf "flip[pos=%d,l=%d]" pos level
    | Visit { pos; level; luck } ->
      Format.fprintf ppf "visit[pos=%d,l=%d,%c]" pos level
        (if luck then 'H' else 'T')
    | Chose pos -> Format.fprintf ppf "chose(%d)" pos

  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end

module P3 = Make (struct
  let k = 3
  let cap = 4
end)
