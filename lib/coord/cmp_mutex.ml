open Anonmem

(* Figure 1 with a comparison-based give-up rule. Phases are as in
   [Amutex]; [Collect] additionally remembers whether a larger identifier
   was seen, and the decision after the view read is:

     all m mine            -> critical section
     some larger id seen   -> defer (clean up, wait for all-zero, retry)
     otherwise             -> insist (rescan; only zero registers are
                              claimed, so a smaller competitor's marks are
                              never clobbered - mutual exclusion exactly as
                              in Figure 1) *)

module P = struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp = Format.pp_print_int
  end

  type input = unit
  type output = Empty.t

  type local =
    | Rem
    | Scan_check of int
    | Scan_write of int
    | Collect of { j : int; mine : int; bigger : bool }
    | Clean_check of int
    | Clean_write of int
    | Wait of { j : int; zeros : int }
    | Crit
    | Exit of int

  let name = "anonymous-mutex-comparisons"

  (* §2's arbitrary-comparisons variant: [v > id] order-compares
     identifiers, so only order-preserving relabelings commute with the
     code — and an order-automorphism of a finite id set is the identity.
     Declaring asymmetric keeps the quotient sound (identity group). *)
  let symmetric = false

  let default_registers ~n:_ = 2

  let start ~n:_ ~m:_ ~id:_ () = Rem

  let next_scan ~m j =
    if j < m then Scan_check j else Collect { j = 0; mine = 0; bigger = false }

  let next_clean ~m j =
    if j < m then Clean_check j else Wait { j = 0; zeros = 0 }

  let step ~n:_ ~m ~id local : (local, Value.t) Protocol.step =
    match local with
    | Rem -> Internal (Scan_check 0)
    | Scan_check j ->
      Read (j, fun v -> if v = 0 then Scan_write j else next_scan ~m (j + 1))
    | Scan_write j -> Write (j, id, next_scan ~m (j + 1))
    | Collect { j; mine; bigger } ->
      Read
        ( j,
          fun v ->
            let mine = if v = id then mine + 1 else mine in
            let bigger = bigger || v > id in
            if j + 1 < m then Collect { j = j + 1; mine; bigger }
            else if mine = m then Crit
            else if bigger then Clean_check 0 (* defer to the larger id *)
            else Scan_check 0 (* insist *) )
    | Clean_check j ->
      Read (j, fun v -> if v = id then Clean_write j else next_clean ~m (j + 1))
    | Clean_write j -> Write (j, 0, next_clean ~m (j + 1))
    | Wait { j; zeros } ->
      Read
        ( j,
          fun v ->
            let zeros = if v = 0 then zeros + 1 else zeros in
            if j + 1 < m then Wait { j = j + 1; zeros }
            else if zeros = m then Scan_check 0
            else Wait { j = 0; zeros = 0 } )
    | Crit -> Internal (Exit 0)
    | Exit j -> Write (j, 0, if j + 1 < m then Exit (j + 1) else Rem)

  let status = function
    | Rem -> Protocol.Remainder
    | Crit -> Protocol.Critical
    | Exit _ -> Protocol.Exiting
    | Scan_check _ | Scan_write _ | Collect _ | Clean_check _ | Clean_write _
    | Wait _ ->
      Protocol.Trying

  let compare_local = Stdlib.compare

  let map_value_ids f v = if v = 0 then 0 else f v
  let map_local_ids _ l = l

  let pp_local ppf = function
    | Rem -> Format.pp_print_string ppf "rem"
    | Scan_check j -> Format.fprintf ppf "scan-check[%d]" j
    | Scan_write j -> Format.fprintf ppf "scan-write[%d]" j
    | Collect { j; mine; bigger } ->
      Format.fprintf ppf "collect[%d,mine=%d,bigger=%b]" j mine bigger
    | Clean_check j -> Format.fprintf ppf "clean-check[%d]" j
    | Clean_write j -> Format.fprintf ppf "clean-write[%d]" j
    | Wait { j; zeros } -> Format.fprintf ppf "wait[%d,zeros=%d]" j zeros
    | Crit -> Format.pp_print_string ppf "crit"
    | Exit j -> Format.fprintf ppf "exit[%d]" j

  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Empty.pp
end
