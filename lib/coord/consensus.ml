open Anonmem

module Value = struct
  type t = { id : int; pref : int }

  let init = { id = 0; pref = 0 }
  let equal a b = a.id = b.id && a.pref = b.pref
  let compare = Stdlib.compare
  let pp ppf v = Format.fprintf ppf "(%d,%d)" v.id v.pref

  (* The empty value (0, 0) stays fixed because relabelings fix 0. *)
  let map ~f_id ~f_pref v = { id = f_id v.id; pref = f_pref v.pref }
end

module P = struct
  module Value = Value

  type input = int
  type output = int

  type local =
    | Rem of { input : int }
    | Reading of { mypref : int; j : int; view_rev : Value.t list }
        (** line 3: copying the shared array; [view_rev] holds entries
            [0..j-1] in reverse *)
    | Writing of { mypref : int; slot : int }
        (** line 7: about to install (id, mypref) into [slot] *)
    | Decided_st of int

  let name = "anonymous-consensus-fig2"

  let symmetric = true

  let default_registers ~n = (2 * n) - 1

  let start ~n:_ ~m:_ ~id:_ input =
    if input = 0 then invalid_arg "Consensus: inputs must be non-zero";
    Rem { input }

  let fresh_read mypref = Reading { mypref; j = 0; view_rev = [] }

  (* Count how many value fields of the view carry [pref]. *)
  let support view pref =
    List.length (List.filter (fun (v : Value.t) -> v.pref = pref) view)

  (* The preference (if any) occupying at least n value fields (line 4).
     At most one can exist since the view has 2n-1 entries. *)
  let dominant ~n view =
    let rec go = function
      | [] -> None
      | (v : Value.t) :: rest ->
        if v.pref <> 0 && support view v.pref >= n then Some v.pref
        else go rest
    in
    go view

  (* First index whose entry differs from (id, mypref) — the paper's
     "arbitrary index" of line 6, made deterministic. *)
  let first_disagreeing ~id ~mypref view =
    let rec go k = function
      | [] -> None
      | (v : Value.t) :: rest ->
        if v.id = id && v.pref = mypref then go (k + 1) rest else Some k
    in
    go 0 view

  let step ~n ~m ~id local : (local, Value.t) Protocol.step =
    match local with
    | Rem { input } -> Internal (fresh_read input) (* line 1: mypref := in *)
    | Reading { mypref; j; view_rev } ->
      Read
        ( j,
          fun v ->
            let view_rev = v :: view_rev in
            if j + 1 < m then Reading { mypref; j = j + 1; view_rev }
            else
              let view = List.rev view_rev in
              (* line 4–5: adopt a preference with support >= n *)
              let mypref =
                match dominant ~n view with Some p -> p | None -> mypref
              in
              (* line 8, checked before writing (see module comment in the
                 interface): decide when the whole array is (id, mypref). *)
              match first_disagreeing ~id ~mypref view with
              | None -> Decided_st mypref
              | Some slot -> Writing { mypref; slot } )
    | Writing { mypref; slot } ->
      Write (slot, { Value.id; pref = mypref }, fresh_read mypref)
    | Decided_st _ -> invalid_arg "Consensus.step: already decided"

  let status = function
    | Rem _ -> Protocol.Remainder
    | Reading _ | Writing _ -> Protocol.Trying
    | Decided_st v -> Protocol.Decided v

  let preference = function
    | Rem { input } -> input
    | Reading { mypref; _ } | Writing { mypref; _ } -> mypref
    | Decided_st v -> v

  let compare_local = Stdlib.compare

  (* Election reuses these with [f_pref = f_id]: there, preferences are
     identifiers. For plain consensus preferences are inputs, untouched. *)
  let map_with ~f_id ~f_pref = function
    | Rem { input } -> Rem { input = f_pref input }
    | Reading { mypref; j; view_rev } ->
      Reading
        {
          mypref = f_pref mypref;
          j;
          view_rev = List.map (Value.map ~f_id ~f_pref) view_rev;
        }
    | Writing { mypref; slot } -> Writing { mypref = f_pref mypref; slot }
    | Decided_st v -> Decided_st (f_pref v)

  let map_value_ids f = Value.map ~f_id:f ~f_pref:Fun.id
  let map_local_ids f = map_with ~f_id:f ~f_pref:Fun.id

  let pp_local ppf = function
    | Rem _ -> Format.pp_print_string ppf "rem"
    | Reading { mypref; j; _ } ->
      Format.fprintf ppf "read[j=%d,pref=%d]" j mypref
    | Writing { mypref; slot } ->
      Format.fprintf ppf "write[slot=%d,pref=%d]" slot mypref
    | Decided_st v -> Format.fprintf ppf "decided(%d)" v

  let pp_input = Format.pp_print_int
  let pp_output = Format.pp_print_int
end
