(** Figure 2: memory-anonymous symmetric obstruction-free multi-valued
    consensus for [n] processes over [2n - 1] anonymous registers
    (Taubenfeld, PODC'17 §4).

    Inputs are non-zero integers (0 encodes the registers' initial empty
    value). Each register holds an (id, preference) pair. A process decides
    once it has seen its own (id, preference) in every register; it adopts a
    preference that occupies at least [n] of the value fields.

    Safety (agreement and validity) holds in {e every} run; termination is
    guaranteed under obstruction freedom — a process that runs alone long
    enough decides (Theorems 4.1–4.2). *)

open Anonmem

(** Register contents: an identifier/preference pair, initially [(0, 0)]. *)
module Value : sig
  type t = { id : int; pref : int }

  include Protocol.VALUE with type t := t

  val map : f_id:(int -> int) -> f_pref:(int -> int) -> t -> t
  (** Relabel the identifier and preference fields independently. *)
end

module P : sig
  include
    Protocol.PROTOCOL
      with type input = int
       and type output = int
       and module Value = Value

  val preference : local -> int
  (** The process's current preference ([mypref]); its input until it first
      adopts, then possibly another participant's input. *)

  val map_with : f_id:(int -> int) -> f_pref:(int -> int) -> local -> local
  (** Relabel cached identifiers and preferences independently.
      {!Election} instantiates both with the same bijection, because its
      preferences {e are} identifiers; {!map_local_ids} instantiates
      [f_pref] with the identity. *)
end
