
module P = struct
  module Value = Consensus.Value

  type input = unit
  type output = int
  type local = Consensus.P.local

  let name = "anonymous-election"

  let symmetric = true

  let default_registers = Consensus.P.default_registers

  (* "Each process simply uses its own identifier as its initial input." *)
  let start ~n ~m ~id () = Consensus.P.start ~n ~m ~id id

  let step = Consensus.P.step
  let status = Consensus.P.status
  let compare_local = Consensus.P.compare_local

  (* Preferences are identifiers here (the input is the process's own id),
     so a relabeling applies to both fields. *)
  let map_value_ids f = Consensus.Value.map ~f_id:f ~f_pref:f
  let map_local_ids f = Consensus.P.map_with ~f_id:f ~f_pref:f
  let pp_local = Consensus.P.pp_local
  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end
