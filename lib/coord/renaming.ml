open Anonmem

module Value = struct
  type t = {
    id : int;
    pref : int;
    round : int;
    history : (int * int) list;
  }

  let init = { id = 0; pref = 0; round = 0; history = [] }

  let equal a b =
    a.id = b.id && a.pref = b.pref && a.round = b.round
    && a.history = b.history

  let compare = Stdlib.compare

  let pp ppf v =
    Format.fprintf ppf "(%d,%d,r%d,{%a})" v.id v.pref v.round
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
         (fun ppf (i, r) -> Format.fprintf ppf "%d@%d" i r))
      v.history

  (* Set-union of histories, keeping the sorted canonical form. *)
  let union_history h pair = List.sort_uniq Stdlib.compare (pair :: h)

  (* Both [id] and [pref] are process identifiers (a process initially
     prefers itself), as is the winner field of each history pair. The
     history is re-sorted: relabeling can reorder its canonical form. *)
  let map_ids f v =
    {
      id = f v.id;
      pref = f v.pref;
      round = v.round;
      history =
        List.sort_uniq Stdlib.compare
          (List.map (fun (i, r) -> (f i, r)) v.history);
    }
end

module P = struct
  module Value = Value

  type input = unit
  type output = int

  type local =
    | Rem
    | Reading of {
        mypref : int;
        myround : int;
        myhistory : (int * int) list;
        j : int;
        view_rev : Value.t list;
      }
    | Writing of {
        mypref : int;
        myround : int;
        myhistory : (int * int) list;
        slot : int;
      }
    | Named of int

  let name = "anonymous-renaming-fig3"

  let symmetric = true

  let default_registers ~n = (2 * n) - 1

  let start ~n:_ ~m:_ ~id:_ () = Rem

  let fresh_read ~mypref ~myround ~myhistory =
    Reading { mypref; myround; myhistory; j = 0; view_rev = [] }

  (* Line 5: has some register's history already named me? *)
  let my_new_name ~id view =
    List.find_map
      (fun (v : Value.t) ->
        List.find_map
          (fun (i, r) -> if i = id then Some r else None)
          v.history)
      view

  (* Line 13: a preference supported by >= n entries of the current round. *)
  let dominant ~n ~myround view =
    let in_round = List.filter (fun (v : Value.t) -> v.round = myround) view in
    let support pref =
      List.length (List.filter (fun (v : Value.t) -> v.pref = pref) in_round)
    in
    List.find_map
      (fun (v : Value.t) ->
        if v.pref <> 0 && support v.pref >= n then Some v.pref else None)
      in_round

  let first_disagreeing ~id ~mypref ~myround ~myhistory view =
    let mine : Value.t = { id; pref = mypref; round = myround; history = myhistory } in
    let rec go k = function
      | [] -> None
      | v :: rest -> if Value.equal v mine then go (k + 1) rest else Some k
    in
    go 0 view

  (* Lines 17-21: the process owns the whole array; settle this round. *)
  let finish_round ~n ~id ~mypref ~myround ~myhistory =
    if mypref = id then Named myround (* line 18 *)
    else
      let myhistory = Value.union_history myhistory (mypref, myround) in
      let myround = myround + 1 in
      if myround = n then Named n (* line 21-22 *)
      else fresh_read ~mypref:id ~myround ~myhistory (* line 2 *)

  let step ~n ~m ~id local : (local, Value.t) Protocol.step =
    match local with
    | Rem ->
      (* lines 1-2: myround=1, empty history, prefer myself *)
      Internal (fresh_read ~mypref:id ~myround:1 ~myhistory:[])
    | Reading { mypref; myround; myhistory; j; view_rev } ->
      Read
        ( j,
          fun v ->
            let view_rev = v :: view_rev in
            if j + 1 < m then
              Reading { mypref; myround; myhistory; j = j + 1; view_rev }
            else
              let view = List.rev view_rev in
              match my_new_name ~id view with
              | Some r -> Named r (* lines 5-6 *)
              | None ->
                (* lines 7-12: catch up if lagging behind *)
                let mypref, myround, myhistory =
                  let mytemp =
                    List.fold_left
                      (fun acc (v : Value.t) -> max acc v.round)
                      0 view
                  in
                  if mytemp > myround then
                    let leader =
                      List.find (fun (v : Value.t) -> v.round = mytemp) view
                    in
                    (leader.pref, leader.round, leader.history)
                  else (mypref, myround, myhistory)
                in
                (* lines 13-14: adopt the dominant preference *)
                let mypref =
                  match dominant ~n ~myround view with
                  | Some p -> p
                  | None -> mypref
                in
                (* line 17 checked before the write, as in Figure 2 *)
                (match
                   first_disagreeing ~id ~mypref ~myround ~myhistory view
                 with
                | None -> finish_round ~n ~id ~mypref ~myround ~myhistory
                | Some slot -> Writing { mypref; myround; myhistory; slot }) )
    | Writing { mypref; myround; myhistory; slot } ->
      Write
        ( slot,
          { Value.id; pref = mypref; round = myround; history = myhistory },
          fresh_read ~mypref ~myround ~myhistory )
    | Named _ -> invalid_arg "Renaming.step: already decided"

  let status = function
    | Rem -> Protocol.Remainder
    | Reading _ | Writing _ -> Protocol.Trying
    | Named r -> Protocol.Decided r

  let round_of = function
    | Rem -> 1
    | Reading { myround; _ } | Writing { myround; _ } -> myround
    | Named r -> r

  let compare_local = Stdlib.compare

  let map_value_ids = Value.map_ids

  let map_history f h =
    List.sort_uniq Stdlib.compare (List.map (fun (i, r) -> (f i, r)) h)

  (* Outputs ([Named r]) are rounds, not identifiers — untouched. *)
  let map_local_ids f = function
    | Rem -> Rem
    | Reading { mypref; myround; myhistory; j; view_rev } ->
      Reading
        {
          mypref = f mypref;
          myround;
          myhistory = map_history f myhistory;
          j;
          view_rev = List.map (Value.map_ids f) view_rev;
        }
    | Writing { mypref; myround; myhistory; slot } ->
      Writing
        { mypref = f mypref; myround; myhistory = map_history f myhistory; slot }
    | Named r -> Named r

  let pp_local ppf = function
    | Rem -> Format.pp_print_string ppf "rem"
    | Reading { mypref; myround; j; _ } ->
      Format.fprintf ppf "read[j=%d,pref=%d,round=%d]" j mypref myround
    | Writing { mypref; myround; slot; _ } ->
      Format.fprintf ppf "write[slot=%d,pref=%d,round=%d]" slot mypref myround
    | Named r -> Format.fprintf ppf "named(%d)" r

  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end
