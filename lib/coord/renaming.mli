(** Figure 3: memory-anonymous symmetric obstruction-free {e adaptive
    perfect renaming} for [n] processes over [2n - 1] anonymous registers
    (Taubenfeld, PODC'17 §5).

    The algorithm proceeds in logical rounds. Round [r] is an election
    played in the same shared space as every other round (no a priori
    ordering of election objects exists without named registers); the
    process elected in round [r] takes [r] as its new name. Each register
    carries the full tuple (id, val, round, history), where the history
    records earlier rounds' winners so that latecomers and winners
    themselves can learn the outcome.

    Guarantees (Theorems 5.1–5.3): termination under obstruction freedom,
    unique names from [{1..n}], and adaptivity — when only [k] processes
    participate they take names from [{1..k}]. *)

open Anonmem

(** Register contents. [history] is kept as a list sorted by
    [Stdlib.compare] so that structural equality coincides with set
    equality. *)
module Value : sig
  type t = {
    id : int;
    pref : int;  (** the paper's [val] field *)
    round : int;
    history : (int * int) list;  (** (winner identifier, round) pairs *)
  }

  include Protocol.VALUE with type t := t

  val union_history : (int * int) list -> int * int -> (int * int) list
  (** Set-union preserving the sorted canonical form. *)

  val map_ids : (int -> int) -> t -> t
  (** Relabel the [id], [pref] and history-winner identifier fields,
      re-sorting the history into canonical form. *)
end

module P : sig
  include
    Protocol.PROTOCOL
      with type input = unit
       and type output = int
       and module Value = Value

  val round_of : local -> int
  (** The process's current round number ([myround]), 1-based. *)
end
