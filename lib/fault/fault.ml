open Anonmem

type event =
  | Crash_at_step of { proc : int; after : int }
  | Crash_in_critical of { proc : int }
  | Crash_and_rejoin of { proc : int; after : int; rejoin_delay : int }

type plan = event list

let single_crashes ~n ~max_step =
  List.concat_map
    (fun proc ->
      List.init (max_step + 1) (fun after ->
          [ Crash_at_step { proc; after } ]))
    (List.init n Fun.id)

let pp_event ppf = function
  | Crash_at_step { proc; after } ->
    Format.fprintf ppf "crash p%d after %d steps" proc after
  | Crash_in_critical { proc } ->
    Format.fprintf ppf "crash p%d in critical section" proc
  | Crash_and_rejoin { proc; after; rejoin_delay } ->
    Format.fprintf ppf "crash p%d after %d steps, rejoin +%d" proc after
      rejoin_delay

let pp_plan ppf plan =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    pp_event ppf plan

type applied = { clock : int; proc : int; what : [ `Crash | `Rejoin ] }

let pp_applied ppf { clock; proc; what } =
  Format.fprintf ppf "t=%d p%d %s" clock proc
    (match what with `Crash -> "crash" | `Rejoin -> "rejoin")

module Make (P : Protocol.PROTOCOL) = struct
  module R = Runtime.Make (P)

  (* A Crash_and_rejoin that has crashed waits for its rejoin time. *)
  type pending = Planned of event | Rejoin_at of { proc : int; at : int }

  let make_injector rt plan =
    let pending = ref (List.map (fun e -> Planned e) plan) in
    let log_rev = ref [] in
    let record proc what =
      log_rev := { clock = R.clock rt; proc; what } :: !log_rev
    in
    let crash proc =
      if not (R.crashed rt proc) then begin
        R.crash rt proc;
        record proc `Crash
      end
    in
    let fire = function
      | Planned (Crash_at_step { proc; after }) ->
        if R.crashed rt proc || Protocol.is_decided (R.status rt proc) then
          None (* already down, or expired: decided before the crash point *)
        else if R.steps_of rt proc >= after then begin
          crash proc;
          None
        end
        else Some (Planned (Crash_at_step { proc; after }))
      | Planned (Crash_in_critical { proc }) ->
        if R.crashed rt proc || Protocol.is_decided (R.status rt proc) then
          None
        else if R.status rt proc = Protocol.Critical then begin
          crash proc;
          None
        end
        else Some (Planned (Crash_in_critical { proc }))
      | Planned (Crash_and_rejoin { proc; after; rejoin_delay }) ->
        if R.crashed rt proc || Protocol.is_decided (R.status rt proc) then
          None
        else if R.steps_of rt proc >= after then begin
          crash proc;
          Some (Rejoin_at { proc; at = R.clock rt + rejoin_delay })
        end
        else Some (Planned (Crash_and_rejoin { proc; after; rejoin_delay }))
      | Rejoin_at { proc; at } ->
        if R.clock rt >= at then begin
          if R.crashed rt proc then begin
            R.rejoin rt proc;
            record proc `Rejoin
          end;
          None
        end
        else Some (Rejoin_at { proc; at })
    in
    let apply_due () = pending := List.filter_map fire !pending in
    (apply_due, fun () -> List.rev !log_rev)

  let injector rt plan =
    let apply_due, log = make_injector rt plan in
    let wrap sched view =
      apply_due ();
      sched view
    in
    (wrap, log)

  let inject rt plan sched =
    let wrap, log = injector rt plan in
    (wrap sched, log)

  let chaos ?(crash_prob = 0.01) ?max_crashes ?(min_survivors = 1) rt rng
      sched =
    let max_crashes =
      match max_crashes with Some k -> k | None -> R.n rt - 1
    in
    let log_rev = ref [] in
    let crashes = ref 0 in
    let wrapped view =
      (if !crashes < max_crashes && Rng.float rng < crash_prob then begin
         (* candidates: runnable processes we may still take down *)
         let candidates =
           List.filter
             (fun i -> Schedule.runnable (R.kind rt i))
             (List.init (R.n rt) Fun.id)
         in
         let live = List.length (R.survivors rt) in
         match candidates with
         | _ when live <= min_survivors -> ()
         | [] -> ()
         | _ ->
           let victim = Rng.pick rng (Array.of_list candidates) in
           R.crash rt victim;
           incr crashes;
           log_rev :=
             { clock = R.clock rt; proc = victim; what = `Crash } :: !log_rev
       end);
      sched view
    in
    (wrapped, fun () -> List.rev !log_rev)

  let run_with_plan ?until rt plan sched ~max_steps =
    let sched, log = inject rt plan sched in
    let reason = R.run ?until rt sched ~max_steps in
    (reason, log ())
end
