(** Crash-fault injection: plans, injectors and chaos adversaries.

    The paper's dividing line is crash-tolerance: the obstruction-free
    tasks (consensus, election, renaming — Figs 2–3) survive any number of
    crash-stopped processes, while deadlock-free mutual exclusion provably
    cannot (the Theorem 6.2 covering argument needs only one well-timed
    crash). This library makes that line executable: a {e fault plan} is
    data describing which processes crash when, an {e injector} applies it
    to a {!Anonmem.Runtime} run by wrapping the scheduler, and a {e chaos}
    adversary crashes random processes on a seeded stream. Crashed
    processes are reported to schedulers as {!Anonmem.Schedule.Crashed},
    so every built-in scheduler honors the crashed set already. *)

open Anonmem

(** One planned fault. Process indices are runtime positions (as in
    {!Schedule.view}), not identifiers. *)
type event =
  | Crash_at_step of { proc : int; after : int }
      (** crash [proc] once it has taken [after] steps (0 = before its
          first step). If the process decides first, the event expires:
          a decided process cannot crash. *)
  | Crash_in_critical of { proc : int }
      (** crash [proc] the moment it is observed inside its critical
          section — the Thm 6.2 wedge: its register claims are never
          withdrawn. *)
  | Crash_and_rejoin of { proc : int; after : int; rejoin_delay : int }
      (** crash [proc] after [after] of its steps, then bring it back
          [rejoin_delay] global steps later with a fresh local state
          (mutex's crash-recovery model: the entry section restarts from
          scratch over whatever the registers hold). *)

type plan = event list

val single_crashes : n:int -> max_step:int -> plan list
(** Every single-crash plan over [n] processes up to a step bound:
    [Crash_at_step { proc = p; after = k }] for each [p < n] and each
    [0 <= k <= max_step]. The crash-tolerance matrix (E19) sweeps these. *)

val pp_event : Format.formatter -> event -> unit
val pp_plan : Format.formatter -> plan -> unit

(** What the injector actually did, oldest first. *)
type applied = { clock : int; proc : int; what : [ `Crash | `Rejoin ] }

val pp_applied : Format.formatter -> applied -> unit

module Make (P : Protocol.PROTOCOL) : sig
  module R : module type of Runtime.Make (P)

  val inject : R.t -> plan -> Schedule.t -> Schedule.t * (unit -> applied list)
  (** [inject rt plan sched] is a scheduler that fires every due event of
      [plan] against [rt] (before delegating to [sched]) plus a function
      returning the log of faults applied so far. Each event fires at most
      once; events naming an already-decided process expire silently.
      The wrapped scheduler is stateful — use it for one run. *)

  val injector :
    R.t -> plan -> (Schedule.t -> Schedule.t) * (unit -> applied list)
  (** Like {!inject}, but returns a reusable wrapper so one plan's pending
      events (a rejoin still waiting for its time, say) survive across
      several [R.run] calls on the same runtime — an adversarial prefix
      followed by per-survivor solo windows, as the crash-aware checks in
      [Check.Crash_props] do. *)

  val chaos :
    ?crash_prob:float ->
    ?max_crashes:int ->
    ?min_survivors:int ->
    R.t ->
    Rng.t ->
    Schedule.t ->
    Schedule.t * (unit -> applied list)
  (** A chaos adversary: before each delegated scheduling decision, with
      probability [crash_prob] (default 0.01) crash a uniformly chosen
      runnable process — but never more than [max_crashes] (default
      [n - 1]) in total and never below [min_survivors] (default 1) live
      processes. Deterministic given the [Rng.t] stream. *)

  val run_with_plan :
    ?until:(R.t -> bool) ->
    R.t ->
    plan ->
    Schedule.t ->
    max_steps:int ->
    R.stop_reason * applied list
  (** Convenience: {!inject} then [R.run], returning the stop reason and
      the faults that actually fired. *)
end
