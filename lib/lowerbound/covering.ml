open Anonmem

module Make (P : Protocol.PROTOCOL) = struct
  module R = Runtime.Make (P)

  type success = Entered_cs | Decided of P.output

  type outcome = {
    write_set : int list;
    covering_prefix_steps : int list;
    q_success : success;
    p_proc : int;
    p_success : success;
    z_schedule_note : string;
    trace : (P.Value.t, P.output) Trace.t;
  }

  let pp_success ppf = function
    | Entered_cs -> Format.pp_print_string ppf "entered critical section"
    | Decided v -> Format.fprintf ppf "decided %a" P.pp_output v

  let success_of_status = function
    | Protocol.Critical -> Some Entered_cs
    | Protocol.Decided v -> Some (Decided v)
    | Protocol.Remainder | Trying | Exiting -> None

  let ( let* ) = Result.bind

  (* Run [proc] solo until it succeeds. *)
  let run_to_success rt proc ~budget ~what =
    let ok t = success_of_status (R.status t proc) <> None in
    match R.run ~until:ok rt (Schedule.solo proc) ~max_steps:budget with
    | R.Condition_met ->
      (match success_of_status (R.status rt proc) with
      | Some s -> Ok s
      | None -> assert false)
    | Schedule_exhausted | All_decided | Step_limit ->
      Error (Printf.sprintf "%s did not succeed solo within budget" what)

  (* Step [proc] until its next action would be its first write; returns the
     number of steps taken and the local register index of that write. *)
  let advance_to_first_write rt proc ~budget ~what =
    let rec go steps =
      if steps > budget then
        Error (Printf.sprintf "%s took no write within budget" what)
      else
        match R.peek rt proc with
        | Protocol.Write (j, _, _) | Protocol.Rmw (j, _) -> Ok (steps, j)
        | Protocol.Coin _ ->
          Error (Printf.sprintf "%s flips coins; covering needs determinism" what)
        | Protocol.Read _ | Protocol.Internal _ ->
          (match R.status rt proc with
          | Protocol.Decided _ ->
            Error (Printf.sprintf "%s decided without writing" what)
          | _ ->
            let _ = R.step rt proc in
            go (steps + 1))
    in
    go 0

  (* A naming that sends local index [j] to physical register [w]. *)
  let naming_covering ~m ~j ~w =
    let a = Array.init m (fun k -> k) in
    let tmp = a.(j) in
    a.(j) <- a.(w);
    a.(w) <- tmp;
    Naming.of_array a

  (* Round-robin restricted to the recruits (runtime indices 1..w): the
     z-extension must involve only processes in P, never q. *)
  let recruits_only w : Schedule.t =
    let cursor = ref 0 in
    fun view ->
      let rec go tries =
        if tries = w then None
        else
          let i = 1 + ((!cursor + tries) mod w) in
          if view.kind i <> Schedule.Finished then begin
            cursor := (!cursor + tries + 1) mod w;
            Some i
          end
          else go (tries + 1)
      in
      go 0

  let random_recruits w rng : Schedule.t =
   fun view ->
    let candidates =
      List.filter
        (fun i -> view.kind i <> Schedule.Finished)
        (List.init w (fun k -> k + 1))
    in
    match candidates with
    | [] -> None
    | _ -> Some (Rng.pick rng (Array.of_list candidates))

  let construct ?(q_id = 1) ?(recruit_budget = 100_000)
      ?(z_solo_budget = 100_000) ?(z_random_budget = 200_000) ?(z_seeds = 32)
      ?(respect_names = false) ~m ~q_input ~recruit_input () =
    (* ---- probe phase: discover write(y, q) and each recruit's pending
       first write, from the initial memory ---- *)
    let probe_cfg max_recruits : R.config =
      {
        ids = Array.init (max_recruits + 1) (fun i -> q_id + i);
        inputs =
          Array.init (max_recruits + 1) (fun i ->
              if i = 0 then q_input else recruit_input (i - 1));
        namings = Array.init (max_recruits + 1) (fun _ -> Naming.identity m);
        rng = None;
        record_trace = true;
      }
    in
    let probe = R.create (probe_cfg m) in
    let cp0 = R.checkpoint probe in
    let* _q_success = run_to_success probe 0 ~budget:recruit_budget ~what:"q" in
    let write_set = Trace.writes_by (R.trace probe) 0 in
    let* w =
      match List.length write_set with
      | 0 -> Error "q succeeded without writing: trivial counterexample"
      | w -> Ok w
    in
    R.restore probe cp0;
    let* prefixes =
      (* recruits perform no writes here, so memory stays initial and the
         probes do not disturb one another *)
      List.fold_left
        (fun acc k ->
          let* acc = acc in
          let* pre =
            advance_to_first_write probe (k + 1) ~budget:recruit_budget
              ~what:(Printf.sprintf "recruit %d" k)
          in
          Ok (pre :: acc))
        (Ok []) (List.init w Fun.id)
      |> Result.map List.rev
    in
    (* In the named model the adversary may not steer namings; check that
       the recruits' pinned first writes happen to cover q's write set,
       which is the step that fails for named-register algorithms. *)
    let* () =
      if not respect_names then Ok ()
      else
        let pinned = List.map snd prefixes in
        let missing =
          List.filteri
            (fun k target -> List.nth pinned k <> target)
            write_set
        in
        if missing = [] then Ok ()
        else
          Error
            (Printf.sprintf
               "cannot cover with fixed names: recruits' first writes go to \
                registers {%s}, not to q's write set {%s}"
               (String.concat ","
                  (List.map string_of_int (List.sort_uniq compare pinned)))
               (String.concat "," (List.map string_of_int write_set)))
    in
    (* ---- the real run: x ; y ; block-write ; z ---- *)
    let cfg : R.config =
      {
        ids = Array.init (w + 1) (fun i -> q_id + i);
        inputs =
          Array.init (w + 1) (fun i ->
              if i = 0 then q_input else recruit_input (i - 1));
        namings =
          Array.init (w + 1) (fun i ->
              if i = 0 then Naming.identity m
              else if respect_names then Naming.identity m
              else
                let _, j = List.nth prefixes (i - 1) in
                naming_covering ~m ~j ~w:(List.nth write_set (i - 1)));
        rng = None;
        record_trace = true;
      }
    in
    let rt = R.create cfg in
    (* x: bring every recruit to its covering position *)
    List.iteri
      (fun k (steps, _) ->
        for _ = 1 to steps do
          ignore (R.step rt (k + 1))
        done)
      prefixes;
    let mem_initial =
      Array.for_all
        (fun v -> P.Value.equal v P.Value.init)
        (R.Mem.contents (R.memory rt))
    in
    if not mem_initial then
      invalid_arg "Covering: covering prefix wrote memory (broken invariant)";
    (* y: q runs alone and succeeds, exactly as in the probe *)
    let* q_success = run_to_success rt 0 ~budget:recruit_budget ~what:"q" in
    (* block write by the covering set *)
    List.iteri
      (fun k _ ->
        let entry = R.step rt (k + 1) in
        match entry.action with
        | Trace.Write _ | Trace.Rmw _ -> ()
        | Trace.Read _ | Trace.Internal | Trace.Coin _ ->
          invalid_arg "Covering: recruit's pending step was not a write")
      prefixes;
    (* z: find an extension by recruits only in which a recruit succeeds *)
    let after_block = R.checkpoint rt in
    let z_found = ref None in
    let succeeded () =
      let rec go i =
        if i > w then None
        else
          match success_of_status (R.status rt i) with
          | Some s -> Some (i, s)
          | None -> go (i + 1)
      in
      go 1
    in
    let attempt note sched ~budget =
      if !z_found = None then begin
        R.restore rt after_block;
        let stop t =
          ignore t;
          succeeded () <> None
        in
        match R.run ~until:stop rt sched ~max_steps:budget with
        | R.Condition_met ->
          (match succeeded () with
          | Some (i, s) -> z_found := Some (i, s, note)
          | None -> assert false)
        | Schedule_exhausted | All_decided | Step_limit -> ()
      end
    in
    for i = 1 to w do
      attempt
        (Printf.sprintf "solo run of recruit %d" (i - 1))
        (Schedule.solo i) ~budget:z_solo_budget
    done;
    attempt "round-robin over recruits" (recruits_only w) ~budget:z_random_budget;
    for seed = 1 to z_seeds do
      attempt
        (Printf.sprintf "random schedule over recruits (seed %d)" seed)
        (random_recruits w (Rng.create seed))
        ~budget:z_random_budget
    done;
    match !z_found with
    | None ->
      Error
        "no z-extension found: the subject lacks the progress property the \
         theorem assumes"
    | Some (p_proc, p_success, z_schedule_note) ->
      Ok
        {
          write_set;
          covering_prefix_steps = List.map fst prefixes;
          q_success;
          p_proc;
          p_success;
          z_schedule_note;
          trace = R.trace rt;
        }
end
