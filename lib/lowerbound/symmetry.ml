open Anonmem

type verdict =
  | Mutex_violation of { step : int; procs : int * int }
  | Livelock of { detected_at : int; period : int }
  | Symmetry_broken of { step : int; proc : int }
  | No_violation of { steps : int }

let pp_verdict ppf = function
  | Mutex_violation { step; procs = p, q } ->
    Format.fprintf ppf "mutual exclusion violated at step %d (p%d and p%d)"
      step p q
  | Livelock { detected_at; period } ->
    Format.fprintf ppf
      "livelock: state at step %d recurs every %d steps with no progress"
      (detected_at - period) period
  | Symmetry_broken { step; proc } ->
    Format.fprintf ppf "symmetry broken: p%d decided at step %d" proc step
  | No_violation { steps } ->
    Format.fprintf ppf "no violation within %d steps" steps

let divisor_witness ~n ~m =
  let rec go d =
    if d > n || d > m then None
    else if m mod d = 0 then Some d
    else go (d + 1)
  in
  go 2

module Make (P : Protocol.PROTOCOL) = struct
  module R = Runtime.Make (P)

  (* The global state fingerprint must include the lock-step cursor so that
     recurrence really implies an infinite loop of the deterministic run. *)
  let fingerprint rt cursor =
    let mem = R.Mem.contents (R.memory rt) in
    let locals = Array.init (R.n rt) (fun i -> R.local rt i) in
    (Array.to_list mem, Array.to_list locals, cursor)

  let run ?(max_steps = 1_000_000) ~ids ~inputs ~m ~d () =
    if d < 2 || m mod d <> 0 then
      invalid_arg "Symmetry.run: d must be a divisor >= 2 of m";
    let ids = Array.of_list ids in
    let inputs = Array.of_list inputs in
    if Array.length ids < d then invalid_arg "Symmetry.run: need >= d ids";
    let spacing = m / d in
    let cfg : R.config =
      {
        ids = Array.sub ids 0 d;
        inputs = Array.sub inputs 0 d;
        namings = Array.init d (fun k -> Naming.rotation m (k * spacing));
        rng = None;
        record_trace = true;
      }
    in
    let rt = R.create cfg in
    let seen : (P.Value.t list * P.local list * int, int) Hashtbl.t =
      Hashtbl.create 1024
    in
    let last_cs_entry = ref (-1) in
    let rec go step =
      if step >= max_steps then (No_violation { steps = step }, R.trace rt)
      else begin
        let cursor = step mod d in
        let fp = fingerprint rt cursor in
        match Hashtbl.find_opt seen fp with
        | Some first when !last_cs_entry < first ->
          (Livelock { detected_at = step; period = step - first }, R.trace rt)
        | _ ->
          if Protocol.is_decided (R.status rt cursor) then
            (Symmetry_broken { step; proc = cursor }, R.trace rt)
          else begin
            if not (Hashtbl.mem seen fp) then Hashtbl.add seen fp step;
            let entry = R.step rt cursor in
            if Trace.enters_critical entry then last_cs_entry := step;
            match R.critical_pair rt with
            | Some procs -> (Mutex_violation { step; procs }, R.trace rt)
            | None -> go (step + 1)
          end
      end
    in
    go 0

  let attack ?max_steps ~ids ~inputs ~m () =
    let n = List.length ids in
    match divisor_witness ~n ~m with
    | None -> None
    | Some d ->
      let verdict, trace = run ?max_steps ~ids ~inputs ~m ~d () in
      Some (d, verdict, trace)
end
