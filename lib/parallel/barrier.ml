type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  parties : int;
  mutable waiting : int;
  mutable epoch : int;
}

let create parties =
  assert (parties >= 1);
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    parties;
    waiting = 0;
    epoch = 0;
  }

let parties t = t.parties

(* Blocking (mutex + condition) rather than spinning: the checker runs
   fine on oversubscribed or single-core hosts, where spin-waiting would
   burn whole scheduling quanta per phase. The mutex also gives the
   happens-before edge that publishes each phase's plain (non-atomic)
   writes to the domains of the next phase. *)
let wait t =
  if t.parties > 1 then begin
    Mutex.lock t.mutex;
    let e = t.epoch in
    t.waiting <- t.waiting + 1;
    if t.waiting = t.parties then begin
      t.waiting <- 0;
      t.epoch <- e + 1;
      Condition.broadcast t.cond
    end
    else
      while t.epoch = e do
        Condition.wait t.cond t.mutex
      done;
    Mutex.unlock t.mutex
  end
