(** A reusable cyclic barrier for domains.

    [wait] blocks until all [parties] domains have called it, then
    releases them together and resets for the next phase. Crossing the
    barrier is a synchronization point: plain writes made before [wait]
    by any party are visible to every party after it returns, so
    phase-structured algorithms (like the frontier-parallel explorer) can
    pass data between phases through ordinary mutable structures. *)

type t

val create : int -> t
(** [create parties] makes a barrier for [parties] domains.
    Requires [parties >= 1]; with one party, {!wait} is a no-op. *)

val parties : t -> int

val wait : t -> unit
(** Block until all parties arrive, then release everyone. Reusable:
    the barrier resets itself for the next round. *)
