open Anonmem

module Make (V : Protocol.VALUE) = struct
  type t = V.t Atomic.t array

  let create ~m =
    assert (m >= 1);
    Array.init m (fun _ -> Atomic.make V.init)

  let size = Array.length

  let cell t naming j =
    let phys = Naming.apply naming j in
    t.(phys)

  let read t naming j = Atomic.get (cell t naming j)

  let write t naming j v = Atomic.set (cell t naming j) v

  (* [f] is evaluated once per CAS attempt; the payload returned belongs to
     the attempt that won, so callers see a value/payload pair computed
     from the same old value that the hardware actually swapped out. *)
  let rmw t naming j f =
    let c = cell t naming j in
    let rec loop () =
      let old_value = Atomic.get c in
      let new_value, payload = f old_value in
      if Atomic.compare_and_set c old_value new_value then
        (old_value, new_value, payload)
      else loop ()
    in
    loop ()

  let snapshot t = Array.map Atomic.get t
end
