(** Shared memory backed by real atomics, for the multicore backend.

    OCaml 5 atomics are sequentially consistent, which makes an
    ['v Atomic.t] a faithful atomic MWMR register; read-modify-write is a
    lock-free compare-and-set retry loop, linearizable at the successful
    CAS. Accesses go through a {!Anonmem.Naming.t} exactly as in the
    simulator, so the anonymity discipline is preserved verbatim. *)

open Anonmem

module Make (V : Protocol.VALUE) : sig
  type t

  val create : m:int -> t
  (** [m] registers, all holding [V.init]. *)

  val size : t -> int

  val read : t -> Naming.t -> int -> V.t
  val write : t -> Naming.t -> int -> V.t -> unit

  val rmw : t -> Naming.t -> int -> (V.t -> V.t * 'a) -> V.t * V.t * 'a
  (** CAS retry loop; returns [(old, new, payload)] of the successful
      exchange. [f] is evaluated once per attempt and the winning
      attempt's payload is returned, so effectful closures observe exactly
      the value that was atomically replaced. *)

  val snapshot : t -> V.t array
  (** Non-atomic register-by-register copy — only meaningful when the
      writers are quiescent (after a run). *)
end
