open Anonmem

module Make (P : Protocol.PROTOCOL) = struct
  module Mem = Pmem.Make (P.Value)

  type config = {
    ids : int array;
    inputs : P.input array;
    namings : Naming.t array;
    seed : int;
  }

  type fault_plan = {
    crash_at : int option array;
    pause_prob : float;
  }

  let no_faults n = { crash_at = Array.make n None; pause_prob = 0.0 }

  type proc_result = {
    output : P.output option;
    steps : int;
    cs_entries : int;
    crashed : bool;
    timed_out : bool;
    stall_retries : int;
  }

  type outcome = {
    results : proc_result array;
    mutex_violation : bool;
    watchdog_fired : bool;
    memory : P.Value.t array;
  }

  let run ?watchdog_s ?(max_stall_retries = 2) ?faults ~step_budget
      ~stop_when cfg =
    let n = Array.length cfg.ids in
    if n = 0 then invalid_arg "Prun: no processes";
    if Array.length cfg.inputs <> n || Array.length cfg.namings <> n then
      invalid_arg "Prun: config length mismatch";
    let faults = match faults with Some f -> f | None -> no_faults n in
    if Array.length faults.crash_at <> n then
      invalid_arg "Prun: fault plan length mismatch";
    let m = Naming.size cfg.namings.(0) in
    let mem = Mem.create ~m in
    let occupancy = Atomic.make 0 in
    let violated = Atomic.make false in
    (* stop is set when a domain dies of an escaped exception (peers must
       not spin forever on a lock its corpse still holds) or when the
       watchdog gives up on a stalled domain. Injected crash_at faults do
       NOT set it: crash-stop means the survivors keep running. *)
    let stop = Atomic.make false in
    let heartbeats = Array.init n (fun _ -> Atomic.make 0) in
    let mailbox = Array.init n (fun _ -> Atomic.make None) in
    let body proc () =
      let id = cfg.ids.(proc) in
      let naming = cfg.namings.(proc) in
      let rng = Rng.create (cfg.seed + (7919 * (proc + 1))) in
      let fault_rng = Rng.create (cfg.seed + (104729 * (proc + 1))) in
      let crash_at = faults.crash_at.(proc) in
      let local = ref (P.start ~n ~m ~id cfg.inputs.(proc)) in
      let steps = ref 0 in
      let cs_entries = ref 0 in
      let cs_exits = ref 0 in
      let finished = ref false in
      let crashed = ref false in
      let res =
        try
          while
            (not !finished)
            && !steps < step_budget
            && not (Atomic.get stop)
          do
            Atomic.incr heartbeats.(proc);
            (* infrastructure-fault seam: a matured Stall_domain for this
               proc sleeps here (kills are the explorer's, not Prun's —
               Prun already has its own crash_at plan for those) *)
            Resilience.stall_tick ~domain:proc;
            (match crash_at with
            | Some k when !steps >= k ->
              crashed := true;
              finished := true
            | _ -> ());
            if not !finished then begin
              if
                faults.pause_prob > 0.0
                && Rng.float fault_rng < faults.pause_prob
              then Unix.sleepf 0.0002;
              let before = P.status !local in
              match before with
              | Protocol.Decided _ -> finished := true
              | _ ->
                (match P.step ~n ~m ~id !local with
                | Protocol.Read (j, k) -> local := k (Mem.read mem naming j)
                | Protocol.Write (j, v, l) ->
                  Mem.write mem naming j v;
                  local := l
                | Protocol.Rmw (j, f) ->
                  let _, _, l = Mem.rmw mem naming j f in
                  local := l
                | Protocol.Internal l -> local := l
                | Protocol.Coin k -> local := k (Rng.bool rng));
                incr steps;
                let after = P.status !local in
                (match (before, after) with
                | (Protocol.Remainder | Trying | Exiting), Protocol.Critical
                  ->
                  incr cs_entries;
                  let prev = Atomic.fetch_and_add occupancy 1 in
                  if prev <> 0 then Atomic.set violated true
                | Protocol.Critical, (Protocol.Remainder | Trying | Exiting)
                  ->
                  incr cs_exits;
                  ignore (Atomic.fetch_and_add occupancy (-1))
                | _ -> ());
                if stop_when ~status:after ~cs_completed:!cs_exits then
                  finished := true
            end
          done;
          {
            output =
              (match P.status !local with
              | Protocol.Decided v when not !crashed -> Some v
              | _ -> None);
            steps = !steps;
            cs_entries = !cs_entries;
            crashed = !crashed;
            timed_out = false;
            stall_retries = 0;
          }
        with _exn ->
          Atomic.set stop true;
          {
            output = None;
            steps = !steps;
            cs_entries = !cs_entries;
            crashed = true;
            timed_out = false;
            stall_retries = 0;
          }
      in
      (* never leave the occupancy counter skewed if we stop inside the CS *)
      (match P.status !local with
      | Protocol.Critical -> ignore (Atomic.fetch_and_add occupancy (-1))
      | _ -> ());
      Atomic.set mailbox.(proc) (Some res)
    in
    let domains = Array.init n (fun proc -> Domain.spawn (body proc)) in
    let fired = ref false in
    (* retry bookkeeping: [retries] is the consecutive-stall escalation
       level (cleared when the heartbeat resumes), [retries_total] the
       per-process count of retries granted over the whole run, surfaced
       as [stall_retries] in the results. *)
    let retries = Array.make n 0 in
    let retries_total = Array.make n 0 in
    (match watchdog_s with
    | None -> Array.iter Domain.join domains
    | Some patience ->
      let all_reported () =
        Array.for_all (fun mb -> Atomic.get mb <> None) mailbox
      in
      let last_beat = Array.map Atomic.get heartbeats in
      let now () = Unix.gettimeofday () in
      let last_change = Array.make n (now ()) in
      (* Per-process jitter factor in [1.0, 1.5), redrawn at each
         escalation: stalls induced by a shared cause (GC pause, noisy
         host) would otherwise cross their thresholds in lockstep and
         escalate as a thundering herd. Seeded from [cfg.seed], so runs
         stay replayable; jitter only ever lengthens a threshold, never
         shortens it, so every documented grace lower bound holds. *)
      let jitter_rng = Rng.create (cfg.seed + 15485863) in
      let draw_jitter () = 1.0 +. (0.5 *. Rng.float jitter_rng) in
      let jitter = Array.init n (fun _ -> draw_jitter ()) in
      let grace_deadline = ref None in
      let continue = ref true in
      while !continue do
        Unix.sleepf (Float.min 0.005 (patience /. 10.));
        if all_reported () then continue := false
        else begin
          let t = now () in
          Array.iteri
            (fun i h ->
              let beat = Atomic.get h in
              if beat <> last_beat.(i) || Atomic.get mailbox.(i) <> None
              then begin
                last_beat.(i) <- beat;
                last_change.(i) <- t;
                retries.(i) <- 0
              end
              else
                (* retry with backoff before giving up: the stall must
                   outlive patience * 2^r before escalating from level r,
                   so a merely slow step gets patience + 2*patience + ...
                   of total grace while a dead one still fires boundedly *)
                let threshold =
                  patience *. float_of_int (1 lsl retries.(i)) *. jitter.(i)
                in
                if t -. last_change.(i) > threshold then begin
                  if retries.(i) < max_stall_retries then begin
                    retries.(i) <- retries.(i) + 1;
                    retries_total.(i) <- retries_total.(i) + 1;
                    jitter.(i) <- draw_jitter ()
                  end
                  else begin
                    fired := true;
                    Atomic.set stop true
                  end
                end)
            heartbeats;
          match !grace_deadline with
          | None -> if !fired then grace_deadline := Some (t +. patience)
          | Some d -> if t > d then continue := false
        end
      done;
      (* join only the domains that reported; a domain stuck inside a
         protocol step cannot be cancelled, so it is leaked and its slot
         synthesised below with [timed_out] set *)
      Array.iteri
        (fun i d -> if Atomic.get mailbox.(i) <> None then Domain.join d)
        domains);
    let results =
      Array.init n (fun i ->
          match Atomic.get mailbox.(i) with
          | Some r -> { r with stall_retries = retries_total.(i) }
          | None ->
            {
              output = None;
              steps = Atomic.get heartbeats.(i);
              cs_entries = 0;
              crashed = false;
              timed_out = true;
              stall_retries = retries_total.(i);
            })
    in
    {
      results;
      mutex_violation = Atomic.get violated;
      watchdog_fired = !fired;
      memory = Mem.snapshot mem;
    }

  let run_decide ?watchdog_s ?max_stall_retries ?faults
      ?(step_budget = 2_000_000) cfg =
    run ?watchdog_s ?max_stall_retries ?faults ~step_budget
      ~stop_when:(fun ~status ~cs_completed:_ -> Protocol.is_decided status)
      cfg

  let run_sessions ?watchdog_s ?max_stall_retries ?faults
      ?(step_budget = 2_000_000) ~sessions cfg =
    run ?watchdog_s ?max_stall_retries ?faults ~step_budget
      ~stop_when:(fun ~status ~cs_completed ->
        cs_completed >= sessions && status = Protocol.Remainder)
      cfg
end
