open Anonmem

module Make (P : Protocol.PROTOCOL) = struct
  module Mem = Pmem.Make (P.Value)

  type config = {
    ids : int array;
    inputs : P.input array;
    namings : Naming.t array;
    seed : int;
  }

  type proc_result = {
    output : P.output option;
    steps : int;
    cs_entries : int;
  }

  type outcome = {
    results : proc_result array;
    mutex_violation : bool;
    memory : P.Value.t array;
  }

  let run ~step_budget ~stop_when cfg =
    let n = Array.length cfg.ids in
    if n = 0 then invalid_arg "Prun: no processes";
    if Array.length cfg.inputs <> n || Array.length cfg.namings <> n then
      invalid_arg "Prun: config length mismatch";
    let m = Naming.size cfg.namings.(0) in
    let mem = Mem.create ~m in
    let occupancy = Atomic.make 0 in
    let violated = Atomic.make false in
    let body proc () =
      let id = cfg.ids.(proc) in
      let naming = cfg.namings.(proc) in
      let rng = Rng.create (cfg.seed + (7919 * (proc + 1))) in
      let local = ref (P.start ~n ~m ~id cfg.inputs.(proc)) in
      let steps = ref 0 in
      let cs_entries = ref 0 in
      let cs_exits = ref 0 in
      let finished = ref false in
      while (not !finished) && !steps < step_budget do
        let before = P.status !local in
        (match before with
        | Protocol.Decided _ -> finished := true
        | _ ->
          (match P.step ~n ~m ~id !local with
          | Protocol.Read (j, k) -> local := k (Mem.read mem naming j)
          | Protocol.Write (j, v, l) ->
            Mem.write mem naming j v;
            local := l
          | Protocol.Rmw (j, f) ->
            let _, _, l = Mem.rmw mem naming j f in
            local := l
          | Protocol.Internal l -> local := l
          | Protocol.Coin k -> local := k (Rng.bool rng));
          incr steps;
          let after = P.status !local in
          (match (before, after) with
          | (Protocol.Remainder | Trying | Exiting), Protocol.Critical ->
            incr cs_entries;
            let prev = Atomic.fetch_and_add occupancy 1 in
            if prev <> 0 then Atomic.set violated true
          | Protocol.Critical, (Protocol.Remainder | Trying | Exiting) ->
            incr cs_exits;
            ignore (Atomic.fetch_and_add occupancy (-1))
          | _ -> ());
          if stop_when ~status:after ~cs_completed:!cs_exits then
            finished := true)
      done;
      (* never leave the occupancy counter skewed if we stop inside the CS *)
      (match P.status !local with
      | Protocol.Critical -> ignore (Atomic.fetch_and_add occupancy (-1))
      | _ -> ());
      {
        output =
          (match P.status !local with
          | Protocol.Decided v -> Some v
          | _ -> None);
        steps = !steps;
        cs_entries = !cs_entries;
      }
    in
    let domains =
      Array.init n (fun proc -> Domain.spawn (body proc))
    in
    let results = Array.map Domain.join domains in
    {
      results;
      mutex_violation = Atomic.get violated;
      memory = Mem.snapshot mem;
    }

  let run_decide ?(step_budget = 2_000_000) cfg =
    run ~step_budget
      ~stop_when:(fun ~status ~cs_completed:_ -> Protocol.is_decided status)
      cfg

  let run_sessions ?(step_budget = 2_000_000) ~sessions cfg =
    run ~step_budget
      ~stop_when:(fun ~status ~cs_completed ->
        cs_completed >= sessions && status = Protocol.Remainder)
      cfg
end
