(** Multicore execution: one OCaml domain per process over atomic shared
    memory.

    Where {!Anonmem.Runtime} interleaves steps under a scheduler the test
    chooses (the model's all-powerful adversary), this backend lets the
    operating system preempt real threads — the interleavings are genuine
    but not chosen, so it is the {e weaker} adversary and is used to check
    that the algorithms survive reality, not to replace the checker.

    Mutual exclusion is monitored with an atomic occupancy counter
    (incremented on every transition into the critical section): any
    overlap is latched in {!outcome.mutex_violation}. Runs are bounded by
    per-process step budgets, so obstruction-free protocols that livelock
    under contention simply report [None] decisions rather than hanging.

    {2 Robustness}

    Every domain increments a per-process heartbeat each loop iteration
    and posts its result to a mailbox slot rather than relying on
    [Domain.join] alone. An exception escaping a protocol step no longer
    hangs the run: the dying domain records itself [crashed] and raises a
    shared stop flag so its peers — possibly blocked on a lock the corpse
    still holds — exit their loops instead of spinning out their budgets.
    Passing [?watchdog_s] arms a monitor that detects domains whose
    heartbeat has stalled (a protocol step that never returns). Before
    giving up, the monitor retries with exponential backoff: a stalled
    domain is granted up to [max_stall_retries] (default 2) escalations,
    each doubling the patience window, so a step that is merely slow — a
    GC pause, an unlucky preemption — recovers instead of killing the
    run; retries granted are reported per process as
    {!proc_result.stall_retries}. Each threshold is stretched by a
    per-process jitter factor in [[1.0, 1.5)], redrawn at every
    escalation and seeded from [config.seed] (replayable): stalls with a
    shared cause would otherwise escalate in lockstep. Jitter only ever
    lengthens a window, so the minimum-grace guarantees stand. Only when the backoff budget is
    exhausted does the watchdog fire: it stops the rest and returns a
    {e partial} outcome in which the stuck domain's slot is synthesised
    with [timed_out] set. A {!fault_plan} injects
    crash-stops ([crash_at]) and random scheduling pauses ([pause_prob])
    to probe crash tolerance under real preemption; an injected crash
    does {e not} raise the stop flag — survivors keep running, which is
    exactly the property under test. *)

open Anonmem

module Make (P : Protocol.PROTOCOL) : sig
  type config = {
    ids : int array;
    inputs : P.input array;
    namings : Naming.t array;
    seed : int;  (** coin streams are split per process from this seed *)
  }

  (** Faults injected into a run; see {!no_faults} for the identity. *)
  type fault_plan = {
    crash_at : int option array;
        (** [crash_at.(i) = Some k] crash-stops process [i] once it has
            taken [k] steps: the domain exits silently, its registers
            keeping their last-written values *)
    pause_prob : float;
        (** probability, per loop iteration, that a process sleeps for a
            fraction of a millisecond — widens the preemption windows the
            OS scheduler explores *)
  }

  val no_faults : int -> fault_plan
  (** [no_faults n] is the plan for [n] processes that injects nothing. *)

  type proc_result = {
    output : P.output option;
    steps : int;
    cs_entries : int;
    crashed : bool;
        (** the process crash-stopped: either its [crash_at] fault fired
            or an exception escaped a protocol step *)
    timed_out : bool;
        (** the watchdog gave up on this domain; [steps] is then its last
            observed heartbeat, and the domain itself is leaked *)
    stall_retries : int;
        (** how many doubled-patience retries the watchdog granted this
            domain before it either resumed beating or was abandoned;
            always 0 when [watchdog_s] is off *)
  }

  type outcome = {
    results : proc_result array;
    mutex_violation : bool;
    watchdog_fired : bool;
        (** at least one domain stalled past the [watchdog_s] patience *)
    memory : P.Value.t array;
        (** snapshot after every reporting domain finished *)
  }

  val run_decide :
    ?watchdog_s:float ->
    ?max_stall_retries:int ->
    ?faults:fault_plan ->
    ?step_budget:int ->
    config ->
    outcome
  (** Each domain steps its process until it decides or exhausts the budget
      (default 2,000,000 steps). [watchdog_s] (off by default) bounds how
      long a single protocol step may stall before the run is abandoned
      with a partial outcome; [max_stall_retries] (default 2) is how many
      doubled-patience grace extensions a stalled domain gets first —
      pass [0] to fire on the first missed patience window. *)

  val run_sessions :
    ?watchdog_s:float ->
    ?max_stall_retries:int ->
    ?faults:fault_plan ->
    ?step_budget:int ->
    sessions:int -> config -> outcome
  (** Mutex workload: each domain keeps entering and leaving its critical
      section until it has completed [sessions] of them (counted at exit
      back to the remainder) or runs out of budget. *)
end
