type 'a t = {
  buf : 'a array;
  cap : int;
  dummy : 'a;
  head : int Atomic.t;  (* next slot to pop; advanced by the consumer *)
  tail : int Atomic.t;  (* next slot to fill; advanced by the producer *)
}

let create ~dummy cap =
  if cap < 1 then invalid_arg "Spsc.create: capacity must be positive";
  {
    buf = Array.make cap dummy;
    cap;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

(* head <= tail always; both only grow. The producer owns [tail] and may
   read [head] conservatively (a stale head only under-reports free
   space); symmetrically for the consumer. Indices are unmasked ints —
   at one candidate batch per push they cannot wrap in any feasible
   exploration. *)

let try_push t x =
  let tl = Atomic.get t.tail in
  if tl - Atomic.get t.head >= t.cap then false
  else begin
    t.buf.(tl mod t.cap) <- x;
    (* release: the slot write above happens-before any consumer that
       acquires this tail value *)
    Atomic.set t.tail (tl + 1);
    true
  end

let try_pop t =
  let hd = Atomic.get t.head in
  if Atomic.get t.tail - hd <= 0 then None
  else begin
    let i = hd mod t.cap in
    let x = t.buf.(i) in
    t.buf.(i) <- t.dummy;
    Atomic.set t.head (hd + 1);
    Some x
  end

let is_empty t = Atomic.get t.tail - Atomic.get t.head <= 0
