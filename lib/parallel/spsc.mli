(** Bounded single-producer/single-consumer ring.

    The sharded explorer keeps one ring per ordered pair of worker
    domains: domain [p] hands batches of successor candidates owned by
    domain [o]'s shard over [rings.(p).(o)]. Exactly one domain pushes
    and exactly one pops, which is what makes the lock-free publication
    protocol sound: the producer writes the slot, then releases it with
    an atomic store of [tail]; the consumer acquires [tail] before
    reading the slot, so the OCaml memory model orders the plain slot
    access on both sides.

    Capacity is fixed at creation. [try_push] refuses instead of
    blocking — a full ring is the producer's cue to drain its own inbox
    (the one deadlock-free thing it can always do) and retry. *)

type 'a t

val create : dummy:'a -> int -> 'a t
(** [create ~dummy cap] is an empty ring holding at most [cap] elements.
    [dummy] fills vacated slots so popped values are not retained. *)

val try_push : 'a t -> 'a -> bool
(** Producer side only. [false] when the ring is full. *)

val try_pop : 'a t -> 'a option
(** Consumer side only. [None] when the ring is empty. *)

val is_empty : 'a t -> bool
(** Observation by either side; exact only quiescently. *)
