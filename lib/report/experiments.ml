open Anonmem

type speed = Quick | Full

(* Explorer / runtime / adversary instances for every protocol under test. *)
module EMutex = Check.Explore.Make (Coord.Amutex.P)
module ECons = Check.Explore.Make (Coord.Consensus.P)
module EElec = Check.Explore.Make (Coord.Election.P)
module ERen = Check.Explore.Make (Coord.Renaming.P)
module EPet = Check.Explore.Make (Baseline.Peterson.P)
module EBurns = Check.Explore.Make (Baseline.Burns.P)
module ETour = Check.Explore.Make (Baseline.Tournament.P)
module EFast = Check.Explore.Make (Baseline.Fast_mutex.P)
module ECa = Check.Explore.Make (Baseline.Ca_consensus.P)
module EChain = Check.Explore.Make (Baseline.Chain_renaming.P)
module RCons = Runtime.Make (Coord.Consensus.P)
module RElec = Runtime.Make (Coord.Election.P)
module RRen = Runtime.Make (Coord.Renaming.P)
module SymMutex = Lowerbound.Symmetry.Make (Coord.Amutex.P)
module SymCcpDet = Lowerbound.Symmetry.Make (Coord.Ccp.Det)
module CovMutex = Lowerbound.Covering.Make (Coord.Amutex.P)

let ok_or tag = function None -> "ok" | Some _ -> tag

let str = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 is a correct two-process mutex for odd m               *)
(* ------------------------------------------------------------------ *)

let mutex_naming_sweep ~m namings =
  let states = ref 0 in
  let me_bad = ref 0 in
  let df_bad = ref 0 in
  List.iter
    (fun nam ->
      let cfg : EMutex.config =
        {
          ids = [| 7; 13 |];
          inputs = [| (); () |];
          namings = [| Naming.identity m; nam |];
        }
      in
      let g = EMutex.explore cfg in
      assert g.complete;
      states := max !states (Array.length g.states);
      let f = EMutex.to_flat g in
      if Check.Mutex_props.mutual_exclusion f <> None then incr me_bad;
      if Check.Mutex_props.deadlock_freedom f <> None then incr df_bad)
    namings;
  (!states, !me_bad, !df_bad)

let e1_mutex_model_check speed =
  let cases =
    match speed with
    | Quick ->
      [
        (3, Naming.all 3);
        ( 5,
          Naming.identity 5
          :: List.init 4 (fun d -> Naming.rotation 5 (d + 1))
          @ [ Naming.random (Rng.create 1) 5; Naming.random (Rng.create 2) 5 ] );
      ]
    | Full -> [ (3, Naming.all 3); (5, Naming.all 5) ]
  in
  let rows =
    List.map
      (fun (m, namings) ->
        let states, me_bad, df_bad = mutex_naming_sweep ~m namings in
        [
          string_of_int m;
          string_of_int (List.length namings);
          string_of_int states;
          (if me_bad = 0 then "ok" else str "VIOLATED(%d)" me_bad);
          (if df_bad = 0 then "ok" else str "VIOLATED(%d)" df_bad);
          "safe + deadlock-free";
        ])
      cases
  in
  [
    Table.make ~id:"E1"
      ~title:
        "Fig 1 mutex, n=2, odd m: exhaustive model check over relative \
         namings (Thm 3.1-3.3)"
      ~header:
        [ "m"; "namings"; "max states"; "mutual excl"; "deadlock-free";
          "paper" ]
      ~notes:
        [
          "Process 0's naming is fixed to the identity WLOG (physical \
           registers can be relabeled).";
        ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* E2: even m fails                                                    *)
(* ------------------------------------------------------------------ *)

let e2_even_m speed =
  let exhaustive_upto = match speed with Quick -> 4 | Full -> 6 in
  let rows =
    List.map
      (fun m ->
        let attack =
          match
            SymMutex.attack ~ids:[ 7; 13 ] ~inputs:[ (); () ] ~m ()
          with
          | Some (d, v, _) ->
            str "d=%d: %s" d
              (Format.asprintf "%a" Lowerbound.Symmetry.pp_verdict v)
          | None -> "no witness"
        in
        let exhaustive =
          if m <= exhaustive_upto then begin
            let _, me_bad, df_bad =
              mutex_naming_sweep ~m [ Naming.rotation m (m / 2) ]
            in
            str "ME %s, DF %s"
              (if me_bad = 0 then "ok" else "VIOLATED")
              (if df_bad = 0 then "ok (BAD)" else "violated as predicted")
          end
          else "(skipped)"
        in
        [ string_of_int m; attack; exhaustive ])
      [ 2; 4; 6; 8 ]
  in
  [
    Table.make ~id:"E2"
      ~title:"Fig 1 mutex, n=2, even m: the symmetry adversary wins (Thm 3.1)"
      ~header:[ "m"; "lock-step attack (antipodal naming)"; "exhaustive check" ]
      ~notes:
        [
          "The attack gives both processes the same ring order with initial \
           registers m/2 apart and runs them in lock step.";
        ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* E3: the gcd grid of Theorem 3.4                                     *)
(* ------------------------------------------------------------------ *)

let e3_gcd_grid _speed =
  let ms = [ 2; 3; 4; 5; 6; 7; 8; 9 ] in
  let rows =
    List.map
      (fun n ->
        let ids = List.init n (fun i -> (i + 1) * 7) in
        let inputs = List.map (fun _ -> ()) ids in
        string_of_int n
        :: List.map
             (fun m ->
               match SymMutex.attack ~ids ~inputs ~m () with
               | None -> "coprime"
               | Some (d, Lowerbound.Symmetry.Livelock _, _) ->
                 str "d=%d livelock" d
               | Some (d, Lowerbound.Symmetry.Mutex_violation _, _) ->
                 str "d=%d ME-viol" d
               | Some (d, Lowerbound.Symmetry.Symmetry_broken _, _)
               | Some (d, Lowerbound.Symmetry.No_violation _, _) ->
                 str "d=%d ???" d)
             ms)
      [ 2; 3; 4; 5 ]
  in
  [
    Table.make ~id:"E3"
      ~title:
        "Symmetry attack on Fig 1's n-process generalization: verdict per \
         (n, m) (Thm 3.4)"
      ~header:("n \\ m" :: List.map string_of_int ms)
      ~notes:
        [
          "'coprime' = m relatively prime to every l <= n: Thm 3.4 permits \
           an algorithm, and indeed no symmetric lock-step attack exists.";
          "Everywhere else the paper predicts failure, and the attack run \
           exhibits it (livelock = deadlock-freedom violated).";
        ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* E4/E5: consensus and election                                       *)
(* ------------------------------------------------------------------ *)

let decision_task_model_check (type graph) ~name
    ~(explore : Naming.t -> graph)
    ~(states : graph -> int) ~(agreement : graph -> bool)
    ~(validity : graph -> bool) ~(obstruction_free : graph -> bool) () =
  ignore name;
  let namings = Naming.all 3 in
  let total = ref 0 in
  let agree_bad = ref 0 in
  let valid_bad = ref 0 in
  let of_bad = ref 0 in
  List.iter
    (fun nam ->
      let g = explore nam in
      total := max !total (states g);
      if not (agreement g) then incr agree_bad;
      if not (validity g) then incr valid_bad;
      if not (obstruction_free g) then incr of_bad)
    namings;
  ( List.length namings,
    !total,
    ok_or "VIOLATED" (if !agree_bad = 0 then None else Some ()),
    ok_or "VIOLATED" (if !valid_bad = 0 then None else Some ()),
    ok_or "STUCK" (if !of_bad = 0 then None else Some ()) )

let consensus_campaign ~runs ~n =
  let m = (2 * n) - 1 in
  let steps = ref [] in
  let bad = ref 0 in
  for seed = 1 to runs do
    let rng = Rng.create ((seed * 7919) + n) in
    let ids = List.init n (fun i -> (i + 1) * 7) in
    let inputs = List.init n (fun i -> (i + 1) * 100) in
    let cfg : RCons.config =
      {
        ids = Array.of_list ids;
        inputs = Array.of_list inputs;
        namings = Array.init n (fun _ -> Naming.random rng m);
        rng = None;
        record_trace = false;
      }
    in
    let rt = RCons.create cfg in
    let _ = RCons.run rt (Schedule.random rng) ~max_steps:(200 * n * n) in
    for i = 0 to n - 1 do
      ignore (RCons.run rt (Schedule.solo i) ~max_steps:(20 * m * m))
    done;
    steps := float_of_int (RCons.clock rt) :: !steps;
    let ds = Array.to_list (RCons.decisions rt) |> List.filter_map Fun.id in
    let distinct = List.sort_uniq compare ds in
    if
      List.length ds <> n
      || List.length distinct <> 1
      || not (List.mem (List.hd distinct) inputs)
    then incr bad
  done;
  (!bad, Stats.summarize !steps)

let e4_consensus speed =
  let explore nam =
    ECons.explore
      {
        ids = [| 7; 13 |];
        inputs = [| 100; 200 |];
        namings = [| Naming.identity 3; nam |];
      }
  in
  let namings, states, agree, valid, ofree =
    decision_task_model_check ~name:"consensus" ~explore
      ~states:(fun (g : ECons.graph) -> Array.length g.states)
      ~agreement:(fun g ->
        Check.Props.agreement ~equal:Int.equal ~statuses:ECons.statuses
          g.states
        = None)
      ~validity:(fun g ->
        Check.Props.validity
          ~allowed:(fun v -> v = 100 || v = 200)
          ~statuses:ECons.statuses g.states
        = None)
      ~obstruction_free:(fun g -> ECons.check_obstruction_freedom g = None)
      ()
  in
  let mc =
    Table.make ~id:"E4a"
      ~title:"Fig 2 consensus, n=2 (m=3): exhaustive model check (Thm 4.1/4.2)"
      ~header:
        [ "namings"; "max states"; "agreement"; "validity"; "OF-termination" ]
      [
        [ string_of_int namings; string_of_int states; agree; valid; ofree ];
      ]
  in
  let runs = match speed with Quick -> 100 | Full -> 500 in
  let rows =
    List.map
      (fun n ->
        let bad, steps = consensus_campaign ~runs ~n in
        [
          string_of_int n;
          string_of_int ((2 * n) - 1);
          string_of_int runs;
          string_of_int bad;
          str "%.0f" steps.Stats.mean;
          str "%.0f" steps.Stats.max;
        ])
      [ 2; 3; 4; 5; 6 ]
  in
  let campaign =
    Table.make ~id:"E4b"
      ~title:
        "Fig 2 consensus: random adversarial schedules + solo finish \
         (safety violations must be 0)"
      ~header:
        [ "n"; "m=2n-1"; "runs"; "violations"; "mean steps"; "max steps" ]
      rows
  in
  [ mc; campaign ]

let e5_election speed =
  let explore nam =
    EElec.explore
      {
        ids = [| 7; 13 |];
        inputs = [| (); () |];
        namings = [| Naming.identity 3; nam |];
      }
  in
  let namings, states, agree, valid, ofree =
    decision_task_model_check ~name:"election" ~explore
      ~states:(fun (g : EElec.graph) -> Array.length g.states)
      ~agreement:(fun g ->
        Check.Props.agreement ~equal:Int.equal ~statuses:EElec.statuses
          g.states
        = None)
      ~validity:(fun g ->
        Check.Props.validity
          ~allowed:(fun v -> v = 7 || v = 13)
          ~statuses:EElec.statuses g.states
        = None)
      ~obstruction_free:(fun g -> EElec.check_obstruction_freedom g = None)
      ()
  in
  let mc =
    Table.make ~id:"E5a"
      ~title:
        "Election via consensus-on-ids, n=2: exhaustive model check (§4 note)"
      ~header:
        [
          "namings"; "max states"; "one leader"; "leader participates";
          "OF-termination";
        ]
      [
        [ string_of_int namings; string_of_int states; agree; valid; ofree ];
      ]
  in
  let runs = match speed with Quick -> 100 | Full -> 400 in
  let rows =
    List.map
      (fun n ->
        let bad = ref 0 in
        let self_elected = ref 0 in
        for seed = 1 to runs do
          let m = (2 * n) - 1 in
          let rng = Rng.create ((seed * 104729) + n) in
          let ids = List.init n (fun i -> ((i + 1) * 31) + 1) in
          let cfg : RElec.config =
            {
              ids = Array.of_list ids;
              inputs = Array.make n ();
              namings = Array.init n (fun _ -> Naming.random rng m);
              rng = None;
              record_trace = false;
            }
          in
          let rt = RElec.create cfg in
          let _ = RElec.run rt (Schedule.random rng) ~max_steps:(200 * n * n) in
          for i = 0 to n - 1 do
            ignore (RElec.run rt (Schedule.solo i) ~max_steps:(20 * m * m))
          done;
          let ds =
            Array.to_list (RElec.decisions rt) |> List.filter_map Fun.id
          in
          (match List.sort_uniq compare ds with
          | [ leader ] when List.length ds = n && List.mem leader ids ->
            if List.exists (fun id -> id = leader) ids then
              incr self_elected
          | _ -> incr bad)
        done;
        [
          string_of_int n;
          string_of_int runs;
          string_of_int !bad;
          str "%d" (runs - !bad);
        ])
      [ 2; 3; 4; 5 ]
  in
  let campaign =
    Table.make ~id:"E5b"
      ~title:"Election: random campaigns (one leader per run)"
      ~header:[ "n"; "runs"; "violations"; "unanimous runs" ]
      rows
  in
  [ mc; campaign ]

(* ------------------------------------------------------------------ *)
(* E6: renaming                                                        *)
(* ------------------------------------------------------------------ *)

let renaming_campaign ~runs ~n ~k =
  let m = (2 * n) - 1 in
  let bad = ref 0 in
  let steps = ref [] in
  for seed = 1 to runs do
    let rng = Rng.create ((seed * 6151) + (n * 100) + k) in
    let ids = List.init n (fun i -> (i + 1) * 13) in
    let cfg : RRen.config =
      {
        ids = Array.of_list ids;
        inputs = Array.make n ();
        namings = Array.init n (fun _ -> Naming.random rng m);
        rng = None;
        record_trace = false;
      }
    in
    let rt = RRen.create cfg in
    let participants = List.init k Fun.id in
    let sched (v : Schedule.view) =
      match
        List.filter (fun i -> v.kind i <> Schedule.Finished) participants
      with
      | [] -> None
      | cands -> Some (List.nth cands (Rng.int rng (List.length cands)))
    in
    let _ = RRen.run rt sched ~max_steps:(300 * n * n) in
    let budget = ref (20 * n) in
    while
      List.exists
        (fun i -> not (Protocol.is_decided (RRen.status rt i)))
        participants
      && !budget > 0
    do
      decr budget;
      List.iter
        (fun i -> ignore (RRen.run rt (Schedule.solo i) ~max_steps:(50 * m * m)))
        participants
    done;
    steps := float_of_int (RRen.clock rt) :: !steps;
    let names =
      List.filter_map
        (fun i ->
          match RRen.status rt i with
          | Protocol.Decided v -> Some v
          | _ -> None)
        participants
      |> List.sort compare
    in
    if names <> List.init k (fun i -> i + 1) then incr bad
  done;
  (!bad, Stats.summarize !steps)

let e6_renaming speed =
  let explore nam =
    ERen.explore
      {
        ids = [| 7; 13 |];
        inputs = [| (); () |];
        namings = [| Naming.identity 3; nam |];
      }
  in
  let total = ref 0 in
  let uniq_bad = ref 0 in
  let adapt_bad = ref 0 in
  let of_bad = ref 0 in
  List.iter
    (fun nam ->
      let g = explore nam in
      total := max !total (Array.length g.states);
      if
        Check.Props.distinct_outputs ~equal:Int.equal ~statuses:ERen.statuses
          g.states
        <> None
      then incr uniq_bad;
      if
        Check.Props.adaptive_range ~name_of:Fun.id ~statuses:ERen.statuses
          g.states
        <> None
      then incr adapt_bad;
      if ERen.check_obstruction_freedom g <> None then incr of_bad)
    (Naming.all 3);
  let mc =
    Table.make ~id:"E6a"
      ~title:
        "Fig 3 adaptive perfect renaming, n=2: exhaustive model check \
         (Thm 5.1-5.3)"
      ~header:
        [ "namings"; "max states"; "uniqueness"; "adaptivity";
          "OF-termination" ]
      [
        [
          "6";
          string_of_int !total;
          (if !uniq_bad = 0 then "ok" else "VIOLATED");
          (if !adapt_bad = 0 then "ok" else "VIOLATED");
          (if !of_bad = 0 then "ok" else "STUCK");
        ];
      ]
  in
  let runs = match speed with Quick -> 60 | Full -> 300 in
  let rows =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun k ->
            if k > n then None
            else
              let bad, steps = renaming_campaign ~runs ~n ~k in
              Some
                [
                  string_of_int n;
                  string_of_int k;
                  string_of_int runs;
                  string_of_int bad;
                  str "names = {1..%d}" k;
                  str "%.0f" steps.Stats.mean;
                ])
          [ 1; (n + 1) / 2; n ]
        |> List.sort_uniq compare)
      [ 2; 3; 4; 5 ]
  in
  let campaign =
    Table.make ~id:"E6b"
      ~title:
        "Fig 3 renaming: k of n participate under random schedules \
         (violations must be 0)"
      ~header:[ "n"; "k"; "runs"; "violations"; "acquired"; "mean steps" ]
      rows
  in
  [ mc; campaign ]

(* ------------------------------------------------------------------ *)
(* E7/E8/E9: the covering adversary                                    *)
(* ------------------------------------------------------------------ *)

let e7_covering_mutex speed =
  let ms = match speed with Quick -> [ 3; 5 ] | Full -> [ 3; 5; 7 ] in
  let rows =
    List.map
      (fun m ->
        match
          CovMutex.construct ~m ~q_input:() ~recruit_input:(fun _ -> ()) ()
        with
        | Error e -> [ string_of_int m; "-"; "-"; str "FAILED: %s" e; "-" ]
        | Ok o ->
          [
            string_of_int m;
            string_of_int (List.length o.write_set);
            Format.asprintf "%a" CovMutex.pp_success o.q_success;
            str "recruit %d: %s" (o.p_proc - 1)
              (Format.asprintf "%a" CovMutex.pp_success o.p_success);
            o.z_schedule_note;
          ])
      ms
  in
  [
    Table.make ~id:"E7"
      ~title:
        "Covering adversary vs Fig 1 (unknown number of processes): two \
         processes end up in the CS (Thm 6.2)"
      ~header:[ "m"; "|write(y,q)|"; "victim q"; "recruit"; "z-extension" ]
      rows;
  ]

let e8_covering_consensus speed =
  let unknown_row =
    let module C2 = Wrap.Fix_n (Coord.Consensus.P) (struct let n = 2 end) in
    let module Cov = Lowerbound.Covering.Make (C2) in
    match Cov.construct ~m:3 ~q_input:100 ~recruit_input:(fun _ -> 200) () with
    | Error e -> [ "unknown n (design n=2, m=3)"; "-"; "-"; str "FAILED: %s" e ]
    | Ok o ->
      [
        "unknown n (design n=2, m=3)";
        Format.asprintf "%a" Cov.pp_success o.q_success;
        Format.asprintf "%a" Cov.pp_success o.p_success;
        "agreement violated";
      ]
  in
  let ns = match speed with Quick -> [ 2; 3; 4 ] | Full -> [ 2; 3; 4; 5; 6 ] in
  let space_rows =
    List.map
      (fun n ->
        let m = n - 1 in
        let row =
          match n with
          | 2 ->
            let module C = Wrap.Fix_n (Coord.Consensus.P) (struct let n = 2 end) in
            let module Cov = Lowerbound.Covering.Make (C) in
            Cov.construct ~m ~q_input:100 ~recruit_input:(fun _ -> 200) ()
            |> Result.map (fun (o : Cov.outcome) ->
                   ( Format.asprintf "%a" Cov.pp_success o.q_success,
                     Format.asprintf "%a" Cov.pp_success o.p_success ))
          | 3 ->
            let module C = Wrap.Fix_n (Coord.Consensus.P) (struct let n = 3 end) in
            let module Cov = Lowerbound.Covering.Make (C) in
            Cov.construct ~m ~q_input:100 ~recruit_input:(fun _ -> 200) ()
            |> Result.map (fun (o : Cov.outcome) ->
                   ( Format.asprintf "%a" Cov.pp_success o.q_success,
                     Format.asprintf "%a" Cov.pp_success o.p_success ))
          | 4 ->
            let module C = Wrap.Fix_n (Coord.Consensus.P) (struct let n = 4 end) in
            let module Cov = Lowerbound.Covering.Make (C) in
            Cov.construct ~m ~q_input:100 ~recruit_input:(fun _ -> 200) ()
            |> Result.map (fun (o : Cov.outcome) ->
                   ( Format.asprintf "%a" Cov.pp_success o.q_success,
                     Format.asprintf "%a" Cov.pp_success o.p_success ))
          | 5 ->
            let module C = Wrap.Fix_n (Coord.Consensus.P) (struct let n = 5 end) in
            let module Cov = Lowerbound.Covering.Make (C) in
            Cov.construct ~m ~q_input:100 ~recruit_input:(fun _ -> 200) ()
            |> Result.map (fun (o : Cov.outcome) ->
                   ( Format.asprintf "%a" Cov.pp_success o.q_success,
                     Format.asprintf "%a" Cov.pp_success o.p_success ))
          | _ ->
            let module C = Wrap.Fix_n (Coord.Consensus.P) (struct let n = 6 end) in
            let module Cov = Lowerbound.Covering.Make (C) in
            Cov.construct ~m ~q_input:100 ~recruit_input:(fun _ -> 200) ()
            |> Result.map (fun (o : Cov.outcome) ->
                   ( Format.asprintf "%a" Cov.pp_success o.q_success,
                     Format.asprintf "%a" Cov.pp_success o.p_success ))
        in
        match row with
        | Error e -> [ str "n=%d, m=n-1=%d" n m; "-"; "-"; str "FAILED: %s" e ]
        | Ok (q, p) ->
          [ str "n=%d, m=n-1=%d" n m; q; p; "agreement violated" ])
      ns
  in
  [
    Table.make ~id:"E8"
      ~title:
        "Covering adversary vs Fig 2 consensus: unknown n, and n-1 \
         registers (Thm 6.3)"
      ~header:[ "setting"; "victim q decided"; "recruit decided"; "verdict" ]
      (unknown_row :: space_rows);
  ]

let e9_covering_renaming speed =
  let case ~label ~design_n ~m =
    let row =
      match design_n with
      | 2 ->
        let module Rn = Wrap.Fix_n (Coord.Renaming.P) (struct let n = 2 end) in
        let module Cov = Lowerbound.Covering.Make (Rn) in
        Cov.construct ~m ~q_input:() ~recruit_input:(fun _ -> ()) ()
        |> Result.map (fun (o : Cov.outcome) ->
               ( Format.asprintf "%a" Cov.pp_success o.q_success,
                 Format.asprintf "%a" Cov.pp_success o.p_success ))
      | 3 ->
        let module Rn = Wrap.Fix_n (Coord.Renaming.P) (struct let n = 3 end) in
        let module Cov = Lowerbound.Covering.Make (Rn) in
        Cov.construct ~m ~q_input:() ~recruit_input:(fun _ -> ()) ()
        |> Result.map (fun (o : Cov.outcome) ->
               ( Format.asprintf "%a" Cov.pp_success o.q_success,
                 Format.asprintf "%a" Cov.pp_success o.p_success ))
      | 4 ->
        let module Rn = Wrap.Fix_n (Coord.Renaming.P) (struct let n = 4 end) in
        let module Cov = Lowerbound.Covering.Make (Rn) in
        Cov.construct ~m ~q_input:() ~recruit_input:(fun _ -> ()) ()
        |> Result.map (fun (o : Cov.outcome) ->
               ( Format.asprintf "%a" Cov.pp_success o.q_success,
                 Format.asprintf "%a" Cov.pp_success o.p_success ))
      | _ ->
        let module Rn = Wrap.Fix_n (Coord.Renaming.P) (struct let n = 5 end) in
        let module Cov = Lowerbound.Covering.Make (Rn) in
        Cov.construct ~m ~q_input:() ~recruit_input:(fun _ -> ()) ()
        |> Result.map (fun (o : Cov.outcome) ->
               ( Format.asprintf "%a" Cov.pp_success o.q_success,
                 Format.asprintf "%a" Cov.pp_success o.p_success ))
    in
    match row with
    | Error e -> [ label; "-"; "-"; str "FAILED: %s" e ]
    | Ok (q, p) -> [ label; q; p; "name 1 duplicated" ]
  in
  let extra =
    match speed with
    | Quick -> []
    | Full -> [ case ~label:"n=5, m=n-1=4" ~design_n:5 ~m:4 ]
  in
  [
    Table.make ~id:"E9"
      ~title:
        "Covering adversary vs Fig 3 renaming: unknown n, and n-1 registers \
         (Thm 6.5)"
      ~header:[ "setting"; "victim q decided"; "recruit decided"; "verdict" ]
      ([
         case ~label:"unknown n (design n=2, m=3)" ~design_n:2 ~m:3;
         case ~label:"n=3, m=n-1=2" ~design_n:3 ~m:2;
         case ~label:"n=4, m=n-1=3" ~design_n:4 ~m:3;
       ]
      @ extra);
  ]

(* ------------------------------------------------------------------ *)
(* E10: what prior agreement buys                                      *)
(* ------------------------------------------------------------------ *)

let e10_named_baselines speed =
  let mutex_row name explore_flat =
    let f = explore_flat () in
    [
      name;
      ok_or "VIOLATED" (Check.Mutex_props.mutual_exclusion f);
      ok_or "VIOLATED" (Check.Mutex_props.deadlock_freedom f);
    ]
  in
  let burns_n = match speed with Quick -> [ 2; 3 ] | Full -> [ 2; 3; 4 ] in
  let mutex_rows =
    mutex_row "Peterson (n=2, m=3, named)" (fun () ->
        EPet.to_flat
          (EPet.explore (EPet.config ~ids:[ 1; 2 ] ~inputs:[ (); () ] ())))
    :: List.map
         (fun n ->
           let ids = List.init n (fun i -> i + 1) in
           mutex_row
             (str "Burns one-bit (n=%d, m=n, named)" n)
             (fun () ->
               EBurns.to_flat
                 (EBurns.explore
                    (EBurns.config ~ids
                       ~inputs:(List.map (fun _ -> ()) ids)
                       ()))))
         burns_n
    @ [
        mutex_row "Tournament of Petersons (n=4, m=3(n-1), named)" (fun () ->
            ETour.to_flat
              (ETour.explore
                 (ETour.config ~ids:[ 1; 2; 3; 4 ]
                    ~inputs:[ (); (); (); () ]
                    ())));
        mutex_row "Lamport fast mutex (n=3, m=n+2, named)" (fun () ->
            EFast.to_flat
              (EFast.explore
                 (EFast.config ~ids:[ 1; 2; 3 ] ~inputs:[ (); (); () ] ())));
      ]
  in
  let mutex_table =
    Table.make ~id:"E10a"
      ~title:
        "Named-register mutex baselines pass the same checkers (§3.2 / Thm \
         6.1 contrast)"
      ~header:[ "algorithm"; "mutual excl"; "deadlock-free" ]
      ~notes:
        [
          "Burns needs only n registers for n processes and works for even \
           register counts - both impossible anonymously (Thm 3.1/3.4).";
          "Lamport's fast path enters in 5 shared accesses regardless of n; \
           anonymously even a solo process must scan all m registers.";
        ]
      mutex_rows
  in
  let ca_row =
    let m = Baseline.Ca_consensus.P.registers_for ~n:2 ~rounds:2 in
    let g = ECa.explore (ECa.config ~m ~ids:[ 1; 2 ] ~inputs:[ 100; 200 ] ()) in
    [
      str "commit-adopt consensus (n=2, m=%d, named)" m;
      ok_or "VIOLATED"
        (Check.Props.agreement ~equal:Int.equal ~statuses:ECa.statuses
           g.states);
      ok_or "VIOLATED"
        (Check.Props.validity
           ~allowed:(fun v -> v = 100 || v = 200)
           ~statuses:ECa.statuses g.states);
    ]
  in
  let chain_row =
    let g = EChain.explore (EChain.config ~ids:[ 7; 13 ] ~inputs:[ (); () ] ()) in
    [
      "chain renaming via ordered elections (n=2, named)";
      ok_or "VIOLATED"
        (Check.Props.distinct_outputs ~equal:Int.equal
           ~statuses:EChain.statuses g.states);
      ok_or "VIOLATED"
        (Check.Props.adaptive_range ~name_of:Fun.id ~statuses:EChain.statuses
           g.states);
    ]
  in
  let task_table =
    Table.make ~id:"E10b"
      ~title:"Named-register task baselines"
      ~header:[ "algorithm"; "safety"; "second property" ]
      ~notes:
        [
          "For consensus the columns are agreement/validity; for renaming, \
           uniqueness/adaptivity.";
          "The chain layout (object k at block k) is exactly the trivial \
           solution §5 says is impossible without agreed names.";
        ]
      [ ca_row; chain_row ]
  in
  let covering_row =
    match
      CovMutex.construct ~respect_names:true ~m:3 ~q_input:()
        ~recruit_input:(fun _ -> ())
        ()
    with
    | Error e -> [ "covering adversary, namings fixed to identity"; e ]
    | Ok _ -> [ "covering adversary, namings fixed to identity"; "UNEXPECTEDLY SUCCEEDED" ]
  in
  let covering_table =
    Table.make ~id:"E10c"
      ~title:"The covering adversary dies without naming freedom"
      ~header:[ "experiment"; "outcome" ]
      ~notes:
        [
          "With fixed names every recruit's first write is pinned, so the \
           adversary cannot cover the victim's write set: the §6 proofs are \
           specific to anonymous registers.";
        ]
      [ covering_row ]
  in
  [ mutex_table; task_table; covering_table ]

(* ------------------------------------------------------------------ *)
(* E11: choice coordination (§7)                                       *)
(* ------------------------------------------------------------------ *)

module Ccp_campaign (C : Protocol.PROTOCOL
                       with type input = unit
                        and type output = int) =
struct
  module R = Runtime.Make (C)

  let run ~runs ~n =
    let failures = ref 0 in
    let steps = ref [] in
    for seed = 1 to runs do
      let rng = Rng.create ((seed * 48271) + n) in
      let cfg : R.config =
        {
          ids = Array.init n (fun i -> (i + 1) * 3);
          inputs = Array.make n ();
          namings = Array.init n (fun _ -> Naming.random rng 2);
          rng = Some (Rng.split rng);
          record_trace = false;
        }
      in
      let rt = R.create cfg in
      match R.run rt (Schedule.random rng) ~max_steps:4000 with
      | R.All_decided -> steps := float_of_int (R.clock rt) :: !steps
      | _ -> incr failures
    done;
    (!failures, if !steps = [] then None else Some (Stats.summarize !steps))
end

module Ccp_cap1 = Coord.Ccp.Make (struct
  let cap = 1
  let deterministic = false
end)

module Ccp_cap2 = Coord.Ccp.Make (struct
  let cap = 2
  let deterministic = false
end)

module Ccp_cap4 = Coord.Ccp.Make (struct
  let cap = 4
  let deterministic = false
end)

module Ccp1 = Ccp_campaign (Ccp_cap1)
module Ccp2 = Ccp_campaign (Ccp_cap2)
module Ccp4 = Ccp_campaign (Ccp_cap4)
module Ccp8 = Ccp_campaign (Coord.Ccp.P)

let e11_ccp speed =
  let runs = match speed with Quick -> 300 | Full -> 2000 in
  let cap_row cap =
    let failures, steps =
      match cap with
      | 1 -> Ccp1.run ~runs ~n:2
      | 2 -> Ccp2.run ~runs ~n:2
      | 4 -> Ccp4.run ~runs ~n:2
      | _ -> Ccp8.run ~runs ~n:2
    in
    [
      string_of_int cap;
      string_of_int runs;
      string_of_int failures;
      str "%.2f%%" (100. *. float_of_int failures /. float_of_int runs);
      (match steps with
      | Some s -> str "%.0f" s.Stats.mean
      | None -> "-");
    ]
  in
  let rate =
    Table.make ~id:"E11a"
      ~title:
        "Rabin-style randomized choice coordination on 2 anonymous RMW \
         registers: non-termination rate vs level cap (cf. Rabin's 1 - \
         2^{-m/2})"
      ~header:[ "level cap"; "runs"; "non-terminating"; "rate"; "mean steps" ]
      (List.map cap_row [ 1; 2; 4; 8 ])
  in
  let det_verdict, _ =
    SymCcpDet.run ~ids:[ 7; 13 ] ~inputs:[ (); () ] ~m:2 ~d:2 ()
  in
  let det =
    Table.make ~id:"E11b"
      ~title:"Deterministic choice coordination dies under symmetry"
      ~header:[ "experiment"; "outcome" ]
      ~notes:
        [
          "Read/write anonymous registers cannot even solve consensus-like \
           tasks wait-free; with RMW, randomization is what defeats the \
           symmetric adversary - none of this transfers to the paper's \
           read/write model (§7).";
        ]
      [
        [
          "deterministic variant, lock step, antipodal namings";
          Format.asprintf "%a" Lowerbound.Symmetry.pp_verdict det_verdict;
        ];
      ]
  in
  let kccp =
    let module EK = Check.Explore.Make (Coord.Ccp_k.P3) in
    let violations namings =
      let cfg : EK.config =
        { ids = [| 7; 13 |]; inputs = [| (); () |]; namings }
      in
      let g = EK.explore cfg in
      let viol = ref 0 in
      Array.iter
        (fun st ->
          let choices =
            Array.to_list
              (Array.mapi
                 (fun p l ->
                   match Coord.Ccp_k.P3.status l with
                   | Protocol.Decided loc ->
                     Some (Naming.apply cfg.namings.(p) loc)
                   | _ -> None)
                 st.EK.locals)
            |> List.filter_map Fun.id
          in
          match choices with
          | a :: rest -> if List.exists (( <> ) a) rest then incr viol
          | [] -> ())
        g.states;
      !viol
    in
    let same = violations [| Naming.identity 3; Naming.rotation 3 1 |] in
    let opposite = violations [| Naming.identity 3; Naming.of_array [| 0; 2; 1 |] |] in
    Table.make ~id:"E11c"
      ~title:
        "k = 3 alternatives: the naive generalization of the racing scheme \
         is refuted by the checker"
      ~header:[ "relative naming orientation"; "disagreement states" ]
      ~notes:
        [
          "With k = 2 all namings are orientation-compatible, so the \
           2-register scheme is safe for every naming; at k = 3 opposite \
           ring orientations break it - multi-alternative choice \
           coordination needs the machinery of the paper's [13].";
        ]
      [
        [ "same (rotations)"; str "%d (safe)" same ];
        [ "opposite (reversed ring)"; str "%d (UNSAFE, as refuted)" opposite ];
      ]
  in
  [ rate; det; kccp ]

(* ------------------------------------------------------------------ *)
(* E12: starvation (one of §8's open directions, small-instance data)  *)
(* ------------------------------------------------------------------ *)

let e12_starvation _speed =
  let verdicts f =
    ( ok_or "VIOLATED" (Check.Mutex_props.deadlock_freedom f),
      match Check.Mutex_props.starvation_freedom f with
      | None -> "ok"
      | Some (p, v) -> str "p%d starves (cycle of %d states)" p (List.length v.states) )
  in
  let fig1 =
    let g =
      EMutex.explore
        {
          ids = [| 7; 13 |];
          inputs = [| (); () |];
          namings = [| Naming.identity 3; Naming.rotation 3 1 |];
        }
    in
    verdicts (EMutex.to_flat g)
  in
  let peterson =
    verdicts
      (EPet.to_flat
         (EPet.explore (EPet.config ~ids:[ 1; 2 ] ~inputs:[ (); () ] ())))
  in
  let burns =
    verdicts
      (EBurns.to_flat
         (EBurns.explore
            (EBurns.config ~ids:[ 1; 2; 3 ] ~inputs:[ (); (); () ] ())))
  in
  let tournament =
    verdicts
      (ETour.to_flat
         (ETour.explore
            (ETour.config ~ids:[ 1; 2; 3; 4 ] ~inputs:[ (); (); (); () ] ())))
  in
  let row name (df, sf) = [ name; df; sf ] in
  [
    Table.make ~id:"E12"
      ~title:
        "Starvation-freedom (exact check): texture for §8's open problem"
      ~header:[ "algorithm"; "deadlock-free"; "starvation-free" ]
      ~notes:
        [
          "Fig 1 satisfies the paper's two requirements but admits a fair \
           cycle in which one process tries forever while the other cycles \
           through its CS; Peterson's victim register rules such cycles \
           out; Burns' one-bit algorithm starves high indices - the \
           classic trade-off, reproduced exactly.";
        ]
      [
        row "Fig 1 anonymous (n=2, m=3)" fig1;
        row "Peterson named (n=2)" peterson;
        row "Burns one-bit named (n=3)" burns;
        row "Tournament named (n=4)" tournament;
      ];
  ]

(* ------------------------------------------------------------------ *)
(* E13: the other symmetry variant (§2): arbitrary comparisons         *)
(* ------------------------------------------------------------------ *)

module ECmp = Check.Explore.Make (Coord.Cmp_mutex.P)
module SymCmp = Lowerbound.Symmetry.Make (Coord.Cmp_mutex.P)

let e13_comparisons speed =
  let ms = match speed with Quick -> [ 2; 3; 4 ] | Full -> [ 2; 3; 4; 5 ] in
  let rows =
    List.map
      (fun m ->
        let me_bad = ref 0 and df_bad = ref 0 and states = ref 0 in
        let namings = Naming.all m in
        List.iter
          (fun nam ->
            let g =
              ECmp.explore
                {
                  ids = [| 7; 13 |];
                  inputs = [| (); () |];
                  namings = [| Naming.identity m; nam |];
                }
            in
            states := max !states (Array.length g.states);
            let f = ECmp.to_flat g in
            if Check.Mutex_props.mutual_exclusion f <> None then incr me_bad;
            if Check.Mutex_props.deadlock_freedom f <> None then incr df_bad)
          namings;
        let lock_step =
          if m mod 2 = 0 then
            let v, _ =
              SymCmp.run ~max_steps:5_000 ~ids:[ 7; 13 ] ~inputs:[ (); () ]
                ~m ~d:2 ()
            in
            Format.asprintf "%a" Lowerbound.Symmetry.pp_verdict v
          else "n/a (odd m)"
        in
        [
          string_of_int m;
          string_of_int (List.length namings);
          string_of_int !states;
          (if !me_bad = 0 then "ok" else "VIOLATED");
          (if !df_bad = 0 then "ok" else "VIOLATED");
          lock_step;
        ])
      ms
  in
  [
    Table.make ~id:"E13"
      ~title:
        "Symmetry with arbitrary comparisons (§2's second variant): a \
         2-process mutex for EVERY m >= 2 (extension beyond the paper)"
      ~header:
        [ "m"; "namings"; "max states"; "mutual excl"; "deadlock-free";
          "lock-step attack" ]
      ~notes:
        [
          "Same structure as Fig 1 but ties are broken by comparing ids: \
           the smaller defers, the larger insists. Theorem 3.1's odd-m law \
           is thus specific to equality-only symmetry.";
        ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* E15: property 1 of 3.2 - "ignore the extra registers" needs names  *)
(* ------------------------------------------------------------------ *)

module Fig1_pinned3 = Wrap.Fix_m (Coord.Amutex.P) (struct let m = 3 end)
module EFixm = Check.Explore.Make (Fig1_pinned3)

let e15_property1 _speed =
  let case label namings =
    let cfg : EFixm.config =
      { ids = [| 7; 13 |]; inputs = [| (); () |]; namings }
    in
    let g = EFixm.explore cfg in
    let f = EFixm.to_flat g in
    [
      label;
      string_of_int (Array.length g.states);
      ok_or "VIOLATED" (Check.Mutex_props.mutual_exclusion f);
      ok_or "VIOLATED" (Check.Mutex_props.deadlock_freedom f);
    ]
  in
  [
    Table.make ~id:"E15"
      ~title:
        "Property 1 of 3.2, executable: Fig 1 (m=3) dropped into 5 \
         registers, ignoring two - correct iff the processes ignore the \
         SAME two"
      ~header:[ "window assignment"; "states"; "mutual excl"; "deadlock-free" ]
      ~notes:
        [
          "With named registers every process ignores the same excess \
           registers, so an l-register algorithm runs in any m >= l; \
           anonymously the ignored set is an artifact of each process's \
           private naming, and every misalignment breaks a requirement - \
           which is why the property fails in the anonymous model.";
        ]
      [
        case "aligned: both on {0,1,2}"
          [| Naming.identity 5; Naming.identity 5 |];
        case "aligned: both on {2,3,4}"
          [|
            Naming.of_array [| 2; 3; 4; 0; 1 |];
            Naming.of_array [| 2; 3; 4; 1; 0 |];
          |];
        case "misaligned: {0,1,2} vs {2,3,4} (overlap 1)"
          [| Naming.identity 5; Naming.of_array [| 2; 3; 4; 0; 1 |] |];
        case "misaligned: {0,1,2} vs {1,2,3} (overlap 2)"
          [| Naming.identity 5; Naming.of_array [| 1; 2; 3; 0; 4 |] |];
        case "disjoint windows: {0,1,2} vs {3,4,0}"
          [| Naming.identity 5; Naming.of_array [| 3; 4; 0; 1; 2 |] |];
      ];
  ]

(* ------------------------------------------------------------------ *)
(* E16: testing vs model checking                                      *)
(* ------------------------------------------------------------------ *)

module HuntFig1 = Check.Hunt.Make (Coord.Amutex.P)
module HuntWin = Check.Hunt.Make (Fig1_pinned3)

let e16_hunting speed =
  let attempts = match speed with Quick -> 400 | Full -> 5000 in
  (* the known n=3, m=3 mutual-exclusion violation: exhaustive finds it *)
  let exhaustive =
    let cfg : EMutex.config =
      {
        ids = [| 7; 13; 21 |];
        inputs = [| (); (); () |];
        namings =
          [| Naming.rotation 3 0; Naming.rotation 3 1; Naming.rotation 3 2 |];
      }
    in
    let g = EMutex.explore cfg in
    let f = EMutex.to_flat g in
    match Check.Mutex_props.mutual_exclusion f with
    | Some v -> str "VIOLATED (state %d of %d)" v.state (Array.length g.states)
    | None -> "ok (?)"
  in
  let hunted =
    let o, _ =
      HuntFig1.hunt ~attempts ~violation:HuntFig1.mutex_violation
        ~ids:[ 7; 13; 21 ] ~inputs:[ (); (); () ] ~m:3 ()
    in
    match o.Check.Hunt.witness_seed with
    | Some seed -> str "found at attempt %d" seed
    | None -> str "NOT FOUND in %d attempts / %d steps" o.attempts_made o.steps_taken
  in
  let window_hunted =
    let o, _ =
      HuntWin.hunt ~attempts ~violation:HuntWin.mutex_violation
        ~ids:[ 7; 13 ] ~inputs:[ (); () ] ~m:5 ()
    in
    match o.Check.Hunt.witness_seed with
    | Some seed ->
      str "found at attempt %d (%d steps)" seed o.Check.Hunt.steps_taken
    | None -> "NOT FOUND"
  in
  [
    Table.make ~id:"E16"
      ~title:
        "Testing vs model checking: the same bug class, two detection \
         methods"
      ~header:[ "instance / bug"; "exhaustive checker"; "randomized hunter" ]
      ~notes:
        [
          "The covering-style overlap needs a precisely timed stale write; \
           random and bursty schedules practically never produce it, while \
           the checker enumerates it immediately - the reason this \
           reproduction leans on exhaustive exploration and executable \
           proofs rather than stress testing.";
        ]
      [
        [ "Fig 1 generalization, n=3, m=3 (ME)"; exhaustive; hunted ];
        [
          "misaligned ignore-windows, m:=3 in 5 (E15, ME)";
          "VIOLATED (E15)";
          window_hunted;
        ];
      ];
  ]

(* ------------------------------------------------------------------ *)
(* E14: the multicore backend (real domains, real atomics)             *)
(* ------------------------------------------------------------------ *)

module PCons = Parallel.Prun.Make (Coord.Consensus.P)
module PRen = Parallel.Prun.Make (Coord.Renaming.P)
module PMutex = Parallel.Prun.Make (Coord.Amutex.P)
module PCcp = Parallel.Prun.Make (Coord.Ccp.P)

let e14_multicore speed =
  let rounds = match speed with Quick -> 5 | Full -> 25 in
  let consensus_row =
    let bad = ref 0 and decided_runs = ref 0 in
    for round = 1 to rounds do
      let n = 2 + (round mod 2) in
      let m = (2 * n) - 1 in
      let rng = Rng.create (round * 13) in
      let inputs = Array.init n (fun i -> (i + 1) * 100) in
      let cfg : PCons.config =
        {
          ids = Array.init n (fun i -> (i + 1) * 7);
          inputs;
          namings = Array.init n (fun _ -> Naming.random rng m);
          seed = round;
        }
      in
      let o = PCons.run_decide ~step_budget:500_000 cfg in
      let ds =
        Array.to_list o.results |> List.filter_map (fun r -> r.PCons.output)
      in
      (match ds with
      | [] -> ()
      | v :: rest ->
        incr decided_runs;
        if
          (not (List.for_all (( = ) v) rest))
          || not (Array.exists (( = ) v) inputs)
        then incr bad)
    done;
    [
      "Fig 2 consensus (2-3 domains)";
      string_of_int rounds;
      str "%d" !decided_runs;
      string_of_int !bad;
    ]
  in
  let renaming_row =
    let bad = ref 0 and decided_runs = ref 0 in
    for round = 1 to rounds do
      let n = 2 + (round mod 2) in
      let m = (2 * n) - 1 in
      let rng = Rng.create (round * 29) in
      let cfg : PRen.config =
        {
          ids = Array.init n (fun i -> (i + 1) * 13);
          inputs = Array.make n ();
          namings = Array.init n (fun _ -> Naming.random rng m);
          seed = round;
        }
      in
      let o = PRen.run_decide ~step_budget:500_000 cfg in
      let names =
        Array.to_list o.results |> List.filter_map (fun r -> r.PRen.output)
      in
      if names <> [] then incr decided_runs;
      if
        List.sort_uniq compare names <> List.sort compare names
        || List.exists (fun v -> v < 1 || v > n) names
      then incr bad
    done;
    [
      "Fig 3 renaming (2-3 domains)";
      string_of_int rounds;
      str "%d" !decided_runs;
      string_of_int !bad;
    ]
  in
  let mutex_row =
    let bad = ref 0 and sessions_total = ref 0 in
    for round = 1 to rounds do
      let m = 3 + (2 * (round mod 2)) in
      let rng = Rng.create (round * 41) in
      let cfg : PMutex.config =
        {
          ids = [| 7; 13 |];
          inputs = [| (); () |];
          namings = Array.init 2 (fun _ -> Naming.random rng m);
          seed = round;
        }
      in
      let o = PMutex.run_sessions ~step_budget:300_000 ~sessions:50 cfg in
      if o.mutex_violation then incr bad;
      sessions_total :=
        !sessions_total
        + Array.fold_left (fun acc r -> acc + r.PMutex.cs_entries) 0 o.results
    done;
    [
      "Fig 1 mutex (2 domains, 50 sessions each)";
      string_of_int rounds;
      str "%d CS entries" !sessions_total;
      string_of_int !bad;
    ]
  in
  let ccp_row =
    let bad = ref 0 and decided_runs = ref 0 in
    for round = 1 to rounds do
      let n = 2 + (round mod 3) in
      let rng = Rng.create (round * 53) in
      let cfg : PCcp.config =
        {
          ids = Array.init n (fun i -> (i + 1) * 3);
          inputs = Array.make n ();
          namings = Array.init n (fun _ -> Naming.random rng 2);
          seed = round;
        }
      in
      let o = PCcp.run_decide ~step_budget:200_000 cfg in
      let phys =
        Array.to_list
          (Array.mapi
             (fun i (r : PCcp.proc_result) ->
               Option.map
                 (fun loc -> Naming.apply cfg.namings.(i) loc)
                 r.output)
             o.results)
        |> List.filter_map Fun.id
      in
      (match phys with
      | [] -> ()
      | a :: rest ->
        incr decided_runs;
        if List.exists (( <> ) a) rest then incr bad)
    done;
    [
      "choice coordination (2-4 domains, RMW atomics)";
      string_of_int rounds;
      str "%d" !decided_runs;
      string_of_int !bad;
    ]
  in
  [
    Table.make ~id:"E14"
      ~title:
        "Multicore backend: real OCaml domains over seq-cst atomics (the OS \
         as adversary)"
      ~header:[ "workload"; "runs"; "progress"; "safety violations" ]
      ~notes:
        [
          "The simulator remains the stronger adversary (it chooses the \
           interleavings); this backend checks the algorithms survive real \
           preemptive execution unchanged.";
        ]
      [ consensus_row; renaming_row; mutex_row; ccp_row ];
  ]

(* ------------------------------------------------------------------ *)
(* E17: fairness in the long run (companion to E12's exact verdicts)   *)
(* ------------------------------------------------------------------ *)

(* Drive two processes with a biased random scheduler (p0 gets 70% of the
   steps) and report how the critical-section entries split. A
   starvation-free algorithm keeps the split near alternation regardless
   of bias; a merely deadlock-free one lets the favored process pull
   ahead. *)
module Fairness (P : Protocol.PROTOCOL with type input = unit) = struct
  module R = Runtime.Make (P)

  let split ~m ~ids ~steps ~seed =
    let rt =
      R.create
        (R.simple_config ~m ~ids ~inputs:(List.map (fun _ -> ()) ids) ())
    in
    let rng = Rng.create seed in
    let entries = [| 0; 0 |] in
    for _ = 1 to steps do
      let i = if Rng.int rng 10 < 7 then 0 else 1 in
      if R.kind rt i <> Schedule.Finished then begin
        let e = R.step rt i in
        if Trace.enters_critical e then entries.(i) <- entries.(i) + 1
      end
    done;
    entries
end

module FairFig1 = Fairness (Coord.Amutex.P)
module FairPet = Fairness (Baseline.Peterson.P)
module FairFast = Fairness (Baseline.Fast_mutex.P)

let e17_fairness speed =
  let steps = match speed with Quick -> 60_000 | Full -> 400_000 in
  let fig1 = FairFig1.split ~m:3 ~ids:[ 7; 13 ] ~steps ~seed:11 in
  let peterson = FairPet.split ~m:3 ~ids:[ 1; 2 ] ~steps ~seed:11 in
  let fast = FairFast.split ~m:4 ~ids:[ 1; 2 ] ~steps ~seed:11 in
  let row name e =
    let total = e.(0) + e.(1) in
    [
      name;
      string_of_int total;
      str "%d / %d" e.(0) e.(1);
      (if total = 0 then "-"
       else
         str "%.0f%% / %.0f%%"
           (100. *. float_of_int e.(0) /. float_of_int total)
           (100. *. float_of_int e.(1) /. float_of_int total));
    ]
  in
  [
    Table.make ~id:"E17"
      ~title:
        "Long-run fairness under a 70/30-biased random scheduler (companion \
         to E12)"
      ~header:[ "algorithm"; "CS entries"; "split p0/p1"; "share" ]
      ~notes:
        [
          "Peterson's victim register forces near-alternation regardless of \
           scheduling bias; Fig 1 and Lamport's fast mutex are only \
           deadlock-free, so the favored process can take a visibly larger \
           share (E12 shows outright starvation is reachable).";
        ]
      [
        row "Fig 1 anonymous (m=3)" fig1;
        row "Peterson named" peterson;
        row "Lamport fast named" fast;
      ];
  ]

(* ------------------------------------------------------------------ *)
(* E18: the frontier-parallel model checker                            *)
(* ------------------------------------------------------------------ *)

(* Cross-validates [Explore.explore_par] against the sequential oracle on
   every protocol family: the graphs must be bit-identical (same state
   numbering, same transition lists, same completeness flag), so every
   verdict the parallel checker produces is the sequential checker's
   verdict. Throughputs are wall-clock and host-dependent. *)
module ParCheck (P : Protocol.PROTOCOL) = struct
  module E = Check.Explore.Make (P)

  let row ~label ~domains (cfg : E.config) =
    let gs, ss = E.explore_with_stats cfg in
    let gp, sp = E.explore_par ~domains cfg in
    let identical =
      gs.states = gp.states && gs.succs = gp.succs && gs.complete = gp.complete
    in
    [
      label;
      string_of_int domains;
      string_of_int ss.Check.Checker_stats.n_states;
      string_of_int sp.Check.Checker_stats.n_states;
      (if identical then "bit-identical" else "DIVERGED");
      str "%.0f / %.0f"
        (Check.Checker_stats.states_per_sec ss /. 1e3)
        (Check.Checker_stats.states_per_sec sp /. 1e3);
      str "%.2fx"
        (ss.Check.Checker_stats.elapsed_s /. sp.Check.Checker_stats.elapsed_s);
    ]
end

module PchkMutex = ParCheck (Coord.Amutex.P)
module PchkCons = ParCheck (Coord.Consensus.P)
module PchkRen = ParCheck (Coord.Renaming.P)
module PchkCcp = ParCheck (Coord.Ccp.P)
module PchkBurns = ParCheck (Baseline.Burns.P)

let e18_parallel_checker speed =
  let domains = match speed with Quick -> 2 | Full -> 4 in
  let rot2 m = [| Naming.identity m; Naming.rotation m 1 |] in
  let big =
    match speed with
    | Quick -> []
    | Full ->
      [
        PchkMutex.row ~label:"Fig 1 mutex (m=5)" ~domains
          { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 5 };
      ]
  in
  [
    Table.make ~id:"E18"
      ~title:
        "Frontier-parallel model checker vs the sequential oracle \
         (generation-synchronized BFS, hash-sharded interning)"
      ~header:
        [
          "instance";
          "domains";
          "states (seq)";
          "states (par)";
          "graphs";
          "kstates/s seq/par";
          "speedup";
        ]
      ~notes:
        [
          "State ids are assigned by a sequential scan over each \
           generation's candidates in discovery order, so the parallel \
           graph is bit-identical to the sequential one and every \
           property verdict transfers; speedups are wall-clock on the \
           current host (below 1x on a single core).";
        ]
      ([
         PchkMutex.row ~label:"Fig 1 mutex (m=3)" ~domains
           { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 3 };
         PchkCons.row ~label:"Fig 2 consensus (m=3)" ~domains
           { ids = [| 7; 13 |]; inputs = [| 100; 200 |]; namings = rot2 3 };
         PchkRen.row ~label:"Fig 3 renaming (m=3)" ~domains
           { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 3 };
         PchkCcp.row ~label:"CCP (m=2)" ~domains
           { ids = [| 7; 13 |]; inputs = [| (); () |]; namings = rot2 2 };
         PchkBurns.row ~label:"Burns named (n=3)" ~domains
           (PchkBurns.E.config ~ids:[ 1; 2; 3 ] ~inputs:[ (); (); () ] ());
       ]
      @ big);
  ]

(* ------------------------------------------------------------------ *)
(* E19: crash tolerance — the dividing line under crash-stops          *)
(* ------------------------------------------------------------------ *)

(* Sweeps every single-crash plan (each process, each crash point up to a
   bound) through the crash-aware checker: obstruction-free decision
   tasks must still decide for the survivors, while Figure 1's mutex is
   expected to wedge when the peer crashes inside the critical section —
   the crashed process's registers keep their last-written values, which
   is exactly the frozen covering of Theorem 6.2. *)
module CrashTol (P : Protocol.PROTOCOL with type output = int) = struct
  module CP = Check.Crash_props.Make (P)

  let row ~label ~n ~m ?namings ?(distinct = false) ~inputs ~max_step ~seed
      ~allowed () =
    let plans = Fault.single_crashes ~n ~max_step in
    let fired = ref 0
    and stuck = ref 0
    and disagree = ref 0
    and invalid = ref 0 in
    List.iter
      (fun plan ->
        let r =
          CP.run_plan ~seed ?namings
            ~ids:(List.init n (fun i -> ((i + 1) * 17) + 1))
            ~inputs ~m plan
        in
        if r.CP.applied <> [] then incr fired;
        if not (CP.crash_obstruction_free r) then incr stuck;
        (* renaming-style tasks promise pairwise-distinct outputs, the
           consensus-style ones a common one *)
        (if distinct then begin
           let outs = List.map snd r.CP.decided in
           if List.length (List.sort_uniq Int.compare outs) <> List.length outs
           then incr disagree
         end
         else if CP.agreement_under_crashes ~equal:Int.equal r <> None then
           incr disagree);
        if CP.validity_under_crashes ~allowed r <> None then incr invalid)
      plans;
    [
      label;
      string_of_int (List.length plans);
      string_of_int !fired;
      (if !stuck = 0 then "all survivors decided" else str "%d STUCK" !stuck);
      (if !disagree = 0 && !invalid = 0 then "ok"
       else str "%d VIOLATED" (!disagree + !invalid));
    ]
end

module CtCons = CrashTol (Coord.Consensus.P)
module CtElec = CrashTol (Coord.Election.P)
module CtRen = CrashTol (Coord.Renaming.P)
module CtCcp = CrashTol (Coord.Ccp.P)
module CrashMutex = Check.Crash_props.Make (Coord.Amutex.P)

(* A protocol whose id-1 process blocks inside its first step until the
   release flag is raised: the one way to hang a domain that no step
   budget can bound, which is what the Prun watchdog exists to catch. *)
let e19_release = Atomic.make false

module Hang_p = struct
  module Value = struct
    type t = int

    let init = 0
    let equal = Int.equal
    let compare = Int.compare
    let pp = Format.pp_print_int
  end

  type input = unit
  type output = int
  type local = Init | Stuck | Done

  let name = "hang"
  let default_registers ~n:_ = 1
  let start ~n:_ ~m:_ ~id:_ () = Init

  let step ~n:_ ~m:_ ~id = function
    | Init ->
      if id = 1 then begin
        while not (Atomic.get e19_release) do
          Domain.cpu_relax ()
        done;
        Protocol.Internal Stuck
      end
      else Protocol.Internal Done
    | Stuck | Done -> Protocol.Internal Done

  let status = function
    | Init | Stuck -> Protocol.Trying
    | Done -> Protocol.Decided 0

  let compare_local = Stdlib.compare
  let symmetric = false
  let map_value_ids _ v = v
  let map_local_ids _ l = l

  let pp_local ppf l =
    Format.pp_print_string ppf
      (match l with Init -> "init" | Stuck -> "stuck" | Done -> "done")

  let pp_input ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end

module PHang = Parallel.Prun.Make (Hang_p)

let e19_crash_tolerance speed =
  let max_step = match speed with Quick -> 12 | Full -> 40 in
  let matrix =
    let rot n m = Array.init n (fun k -> Naming.rotation m k) in
    [
      CtCons.row ~label:"Fig 2 consensus (n=3, m=5)" ~n:3 ~m:5
        ~namings:(rot 3 5)
        ~inputs:[ 100; 200; 300 ] ~max_step ~seed:5
        ~allowed:(fun v -> List.mem v [ 100; 200; 300 ])
        ();
      CtElec.row ~label:"election (n=3, m=5)" ~n:3 ~m:5 ~namings:(rot 3 5)
        ~inputs:[ (); (); () ] ~max_step ~seed:5
        ~allowed:(fun v -> List.mem v (List.init 3 (fun i -> ((i + 1) * 17) + 1)))
        ();
      CtRen.row ~label:"Fig 3 renaming (n=3, m=5)" ~n:3 ~m:5 ~namings:(rot 3 5)
        ~distinct:true
        ~inputs:[ (); (); () ] ~max_step ~seed:5
        ~allowed:(fun v -> v >= 1 && v <= 3)
        ();
      CtCcp.row ~label:"choice coordination (n=2, m=2)" ~n:2 ~m:2
        ~inputs:[ (); () ] ~max_step ~seed:5
        ~allowed:(fun v -> v >= 0 && v < 2)
        ();
    ]
  in
  let mutex_rows =
    let ids = [ 7; 13 ] and inputs = [ (); () ] in
    let wedged plan =
      CrashMutex.wedges_solo ~seed:3 ~prefix_steps:200 ~ids ~inputs ~m:3
        ~proc:0 plan
    in
    let with_crash = wedged [ Fault.Crash_in_critical { proc = 1 } ] in
    let without = wedged [] in
    [
      [
        "Fig 1 mutex (m=3), peer crashes in CS";
        "1";
        "1";
        (if with_crash then "p0 wedged (EXPECTED: Thm 6.2 covering)"
         else "p0 progressed (UNEXPECTED)");
        "n/a";
      ];
      [
        "Fig 1 mutex (m=3), no crash";
        "1";
        "0";
        (if without then "p0 wedged (UNEXPECTED)" else "p0 enters its CS");
        "n/a";
      ];
    ]
  in
  let multicore_rows =
    (* crash-stop one domain out of three mid-run: survivors decide *)
    let crash_row =
      let n = 3 in
      let m = (2 * n) - 1 in
      let rng = Rng.create 77 in
      let inputs = Array.init n (fun i -> (i + 1) * 100) in
      let cfg : PCons.config =
        {
          ids = Array.init n (fun i -> (i + 1) * 7);
          inputs;
          namings = Array.init n (fun _ -> Naming.random rng m);
          seed = 77;
        }
      in
      let faults =
        { PCons.crash_at = [| Some 5; None; None |]; pause_prob = 0.001 }
      in
      let o = PCons.run_decide ~watchdog_s:5.0 ~faults ~step_budget:500_000 cfg in
      let survivors_decided =
        Array.to_list o.results
        |> List.filteri (fun i _ -> i > 0)
        |> List.for_all (fun r -> r.PCons.output <> None)
      in
      let agree =
        match
          Array.to_list o.results |> List.filter_map (fun r -> r.PCons.output)
        with
        | [] -> true
        | v :: rest ->
          List.for_all (( = ) v) rest && Array.exists (( = ) v) inputs
      in
      [
        "Fig 2 consensus, 3 domains, p0 crash-stopped at step 5";
        "1";
        "1";
        (if o.PCons.results.(0).crashed && survivors_decided then
           "crash recorded; both survivors decided"
         else "incomplete");
        (if agree then "ok" else "VIOLATED");
      ]
    in
    (* hang one domain inside a protocol step: the watchdog must hand
       back a partial outcome instead of blocking in Domain.join *)
    let watchdog_row =
      Atomic.set e19_release false;
      let cfg : PHang.config =
        {
          ids = [| 1; 2; 3 |];
          inputs = [| (); (); () |];
          namings = Array.init 3 (fun _ -> Naming.identity 1);
          seed = 1;
        }
      in
      let o = PHang.run_decide ~watchdog_s:0.2 ~max_stall_retries:0 ~step_budget:1_000 cfg in
      Atomic.set e19_release true;
      Unix.sleepf 0.05;
      let leaked =
        Array.to_list o.results |> List.filter (fun r -> r.PHang.timed_out)
      in
      let peers_done =
        o.PHang.results.(1).output <> None && o.PHang.results.(2).output <> None
      in
      [
        "hang protocol, 3 domains, p0 stuck inside a step";
        "1";
        "1";
        (if o.PHang.watchdog_fired && List.length leaked = 1 && peers_done
         then "watchdog fired; partial outcome, peers decided"
         else "watchdog FAILED to isolate the hang");
        "n/a";
      ]
    in
    [ crash_row; watchdog_row ]
  in
  [
    Table.make ~id:"E19a"
      ~title:
        "Crash-tolerance matrix: every single-crash plan (each process, \
         each crash point up to a bound) vs the crash-aware checker"
      ~header:
        [ "instance"; "plans"; "fired"; "survivor progress"; "safety" ]
      ~notes:
        [
          "Crashed processes stop forever but their registers keep the \
           last-written values. Obstruction-free decision tasks owe the \
           survivors nothing less than a decision (crash-obstruction-\
           freedom); deadlock-free mutex owes them nothing, and indeed a \
           crash inside the critical section freezes a covering write \
           that wedges the survivor exactly as in Theorem 6.2.";
          "A plan fails to fire when its victim decides before reaching \
           the crash point; those runs double as no-fault controls.";
        ]
      (matrix @ mutex_rows);
    Table.make ~id:"E19b"
      ~title:
        "Multicore robustness: injected crash-stops and a watchdog for \
         domains that hang inside a step"
      ~header:[ "workload"; "runs"; "faults"; "outcome"; "safety" ]
      ~notes:
        [
          "The watchdog polls per-domain heartbeats; a stalled domain is \
           abandoned (its slot synthesised with timed_out set) so the run \
           returns a partial outcome instead of blocking in Domain.join \
           forever.";
        ]
      multicore_rows;
  ]

(* ------------------------------------------------------------------ *)
(* E20: symmetry-quotient reduction factors                            *)
(* ------------------------------------------------------------------ *)

(* Explores each configuration twice — full graph and symmetry quotient
   (identity namings, so the whole process group is admissible) — and
   reports the measured reduction factor. The orbit-sum column is a live
   soundness check: the stored orbit sizes must sum to exactly the full
   reachable count whenever both explorations complete. Verdict equality
   between the two graphs is asserted, per protocol, in
   test/test_canon.ml. *)
module QuotRed (P : Protocol.PROTOCOL) = struct
  module E = Check.Explore.Make (P)

  let row ~label ~n ~m ?max_states (cfg : E.config) =
    let _, sf = E.explore_with_stats ?max_states cfg in
    let _, sr =
      E.explore_with_stats ~reduction:Check.Explore.Canon ?max_states cfg
    in
    let open Check.Checker_stats in
    [
      label;
      string_of_int n;
      string_of_int m;
      string_of_int sr.group_order;
      str "%d%s" sf.n_states (if sf.complete then "" else "+");
      str "%d%s" sr.n_states (if sr.complete then "" else "+");
      str "%.2fx" (reduction_factor sr);
      (if sf.complete && sr.complete then
         if sr.orbit_sum = sf.n_states then "exact" else "MISMATCH"
       else "truncated");
    ]
end

module QrMutex = QuotRed (Coord.Amutex.P)
module QrCons = QuotRed (Coord.Consensus.P)
module QrRen = QuotRed (Coord.Renaming.P)
module QrCcp = QuotRed (Coord.Ccp.P)

let e20_symmetry_reduction speed =
  let sym n m : Naming.t array = Array.init n (fun _ -> Naming.identity m) in
  let ids n = Array.init n (fun i -> 7 + i) in
  let units n = Array.make n () in
  let mutex_row ?max_states n m =
    QrMutex.row ~label:"Fig 1 mutex" ~n ~m ?max_states
      { ids = ids n; inputs = units n; namings = sym n m }
  in
  let big =
    match speed with
    | Quick -> []
    | Full ->
      [
        mutex_row 2 4;
        mutex_row 2 5;
        (* the m=5 n=3 full graph blows any sane table budget; the
           truncated rows still show the quotient pulling ahead *)
        mutex_row ~max_states:600_000 3 5;
        QrRen.row ~label:"Fig 3 renaming" ~n:2 ~m:5
          { ids = ids 2; inputs = units 2; namings = sym 2 5 };
      ]
  in
  [
    Table.make ~id:"E20"
      ~title:
        "Symmetry-quotient reduction factors over (n, m): states stored \
         by the canonical explorer vs the full graph"
      ~header:
        [
          "instance";
          "n";
          "m";
          "group";
          "full states";
          "quotient";
          "reduction";
          "orbit sum";
        ]
      ~notes:
        [
          "Identity namings make every input-preserving process \
           permutation admissible (group S_n), the protocols' anonymity \
           in its purest form. Reduction factors sit just below the \
           group order because states fixed by an automorphism have \
           smaller orbits.";
          "\"exact\" means the stored orbit sizes sum to precisely the \
           full graph's reachable-state count — orbits partition the \
           reachable set, so this is a strong end-to-end check of the \
           canonizer. Truncated (budgeted) rows are marked with +.";
        ]
      ([
         mutex_row 2 3;
         mutex_row 3 3;
         QrCons.row ~label:"Fig 2 consensus (equal inputs)" ~n:2 ~m:3
           { ids = ids 2; inputs = [| 42; 42 |]; namings = sym 2 3 };
         QrCcp.row ~label:"CCP" ~n:2 ~m:2
           { ids = ids 2; inputs = units 2; namings = sym 2 2 };
       ]
      @ big);
  ]

(* ------------------------------------------------------------------ *)
(* E21: snapshot overhead and resume fidelity                          *)
(* ------------------------------------------------------------------ *)

(* Three explorations per row: an uninterrupted baseline, the same run
   with periodic checkpointing (the overhead column), and a
   kill-and-resume pair — truncate at half the reachable count so the
   budget flushes a snapshot, resume it, and require the final graph and
   statistics bit-identical to the baseline (the contract DESIGN.md §10
   promises and test/test_snapshot.ml enforces per explorer). *)
module SnapOv (P : Protocol.PROTOCOL) = struct
  module E = Check.Explore.Make (P)

  let row ~label ~n ~m ~snapshot_every (cfg : E.config) =
    let path = Filename.temp_file "coordsnap" ".snap" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    @@ fun () ->
    let gb, sb = E.explore_with_stats cfg in
    let _, ss = E.explore_with_stats ~snapshot_every ~snapshot_to:path cfg in
    (* kill-and-resume: truncate at half, snapshot, resume to the end *)
    let half = max 1 (sb.Check.Checker_stats.n_states / 2) in
    let _ =
      E.explore_with_stats ~max_states:half ~snapshot_every ~snapshot_to:path
        cfg
    in
    let snap_bytes = (Unix.stat path).Unix.st_size in
    let gr, sr = E.explore_with_stats ~resume_from:path cfg in
    let identical =
      gb.E.states = gr.E.states
      && gb.E.succs = gr.E.succs
      && gb.E.orbits = gr.E.orbits
      && Check.Checker_stats.equal_ignoring_time sb sr
    in
    let open Check.Checker_stats in
    let overhead =
      if sb.elapsed_s > 0. then
        (ss.elapsed_s -. sb.elapsed_s) /. sb.elapsed_s *. 100.
      else 0.
    in
    [
      label;
      string_of_int n;
      string_of_int m;
      string_of_int sb.n_states;
      str "%.0f" (states_per_sec sb);
      str "%.0f" (states_per_sec ss);
      str "%+.1f%%" overhead;
      str "%.0f KiB" (float_of_int snap_bytes /. 1024.);
      (if identical then "bit-identical" else "MISMATCH");
    ]
end

module SoMutex = SnapOv (Coord.Amutex.P)
module SoCcp = SnapOv (Coord.Ccp.P)

let e21_snapshot_overhead speed =
  let ids n = Array.init n (fun i -> 7 + i) in
  let units n = Array.make n () in
  let mutex_row ?(snapshot_every = 5_000) n m =
    SoMutex.row ~label:"Fig 1 mutex" ~n ~m ~snapshot_every
      {
        ids = ids n;
        inputs = units n;
        namings = Array.init n (fun _ -> Naming.identity m);
      }
  in
  let big =
    match speed with
    | Quick -> []
    | Full ->
      [
        mutex_row ~snapshot_every:50_000 3 3;
        SoCcp.row ~label:"CCP" ~n:2 ~m:2 ~snapshot_every:5_000
          {
            ids = ids 2;
            inputs = units 2;
            namings = Array.init 2 (fun _ -> Naming.identity 2);
          };
      ]
  in
  [
    Table.make ~id:"E21"
      ~title:
        "Checkpoint/resume: periodic-snapshot overhead and \
         kill-at-half-resume fidelity (sequential explorer)"
      ~header:
        [
          "instance";
          "n";
          "m";
          "states";
          "base st/s";
          "snap st/s";
          "overhead";
          "snap size";
          "resume";
        ]
      ~notes:
        [
          "Overhead compares one timed run each way, so small \
           configurations are timing-noise; the m=5 and n=3 rows are \
           the meaningful ones. Snapshots are written at generation \
           boundaries roughly every `snapshot-every` newly interned \
           states (5k here, 50k for the n=3 row; the CLI default is \
           500k, making the relative cost far smaller on real runs).";
          "\"snap size\" is the on-disk checkpoint flushed when a \
           half-budget run truncates. \"bit-identical\" asserts the \
           resumed run's graph (states, successors, orbits) and checker \
           statistics equal the uninterrupted baseline's — the E18-style \
           oracle check, applied to resumption.";
        ]
      ([ mutex_row 2 3; mutex_row 2 4; mutex_row 2 5 ] @ big);
  ]

(* ------------------------------------------------------------------ *)
(* E22: chaos campaign — seeded faults across the engine matrix       *)
(* ------------------------------------------------------------------ *)

(* Each row arms a deterministic fault plan against one cell of the
   (engine x supervision x storage) matrix and reports what the stack
   did about it: every fault must either be absorbed to a bit-identical
   result (supervision restarts, recovery retries) or surface as an
   honestly tagged degradation — never a hang, a crash, or a silently
   wrong count. `make chaos-soak-smoke` drives the same matrix through
   the coordctl surface with randomized plans. *)
module ChaosRow (P : Protocol.PROTOCOL) = struct
  module E = Check.Explore.Make (P)

  let with_plan plan f =
    Resilience.arm plan;
    Fun.protect ~finally:Resilience.disarm f

  let verdict ~oracle:(og, os) (g, s) =
    let open Check.Checker_stats in
    if
      g.E.states = og.E.states
      && g.E.succs = og.E.succs
      && g.E.orbits = og.E.orbits
      && equal_ignoring_time os s
    then "bit-identical"
    else if not s.complete then "degraded: " ^ stop_reason_tag s.stop
    else "MISMATCH"

  (* a parallel engine under kills and stalls aimed at its workers;
     the oracle is the same engine fault-free (bit-identical to the
     sequential explorer's graph by the engine parity contract, but
     carrying the parallel run's domain-count and scheduling stats) *)
  let engine_row ~label ~engine ~domains (cfg : E.config) =
    let oracle = E.explore_par ~domains ~par_threshold:0 ~engine cfg in
    let plan =
      {
        Resilience.seed = 9;
        faults =
          [
            Resilience.Kill_domain { domain = 1; after_ticks = 4 };
            Resilience.Stall_domain
              { domain = 2; after_ticks = 2; for_s = 0.002 };
            Resilience.Kill_domain { domain = 2; after_ticks = 11 };
          ];
      }
    in
    with_plan plan (fun () ->
        let g, s =
          E.explore_par ~domains ~par_threshold:0 ~engine ~supervise:true cfg
        in
        [
          label;
          Format.asprintf "%a" Resilience.pp_plan plan;
          string_of_int (Resilience.fired ());
          string_of_int s.Check.Checker_stats.restarts;
          string_of_int s.Check.Checker_stats.recoveries;
          verdict ~oracle (g, s);
        ])

  (* the sequential explorer pushed through snapshot-and-storage faults
     by with_recovery *)
  let recovery_row ~label (cfg : E.config) =
    let oracle = E.explore_with_stats cfg in
    let snap = Filename.temp_file "coorde22" ".snap" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ())
    @@ fun () ->
    let plan =
      {
        Resilience.seed = 9;
        faults =
          [
            Resilience.Alloc_fail { after_boundaries = 3 };
            Resilience.Io_error { nth_io = 4 };
            Resilience.Torn_write { nth_write = 6; keep = 0.5 };
          ];
      }
    in
    with_plan plan (fun () ->
        let g, s =
          E.with_recovery ~snapshot_to:snap (fun ~resume_from ~snapshot_to ->
              E.explore_with_stats ~snapshot_every:1 ~snapshot_to ?resume_from
                ~salvage:true cfg)
        in
        [
          label;
          Format.asprintf "%a" Resilience.pp_plan plan;
          string_of_int (Resilience.fired ());
          string_of_int s.Check.Checker_stats.restarts;
          string_of_int s.Check.Checker_stats.recoveries;
          verdict ~oracle
            (g, { s with Check.Checker_stats.recoveries = 0 });
        ])

  (* the external-memory explorer against a byte quota: an honest
     degradation, then an exact quota-free resume *)
  let quota_row ~label (cfg : E.config) =
    let _, os = E.explore_with_stats cfg in
    let dir = Filename.temp_file "coorde22dv" ".d" in
    Sys.remove dir;
    let snap = Filename.temp_file "coorde22dv" ".snap" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ())
    @@ fun () ->
    let t =
      E.explore_external ~hot_cap:8 ~disk_quota_bytes:16 ~snapshot_to:snap
        ~dir cfg
    in
    let r = E.explore_external ~resume_from:snap ~hot_cap:8 ~dir cfg in
    let open Check.Checker_stats in
    [
      label;
      "disk quota 16 B (no faults)";
      "0";
      "0";
      "0";
      str "degraded: %s; resume %s" (stop_reason_tag t.stop)
        (if equal_ignoring_time os r && r.complete then "bit-identical"
         else "MISMATCH");
    ]
end

module ChMutex = ChaosRow (Coord.Amutex.P)

let e22_chaos_matrix _speed =
  let cfg : ChMutex.E.config =
    {
      ids = [| 7; 13 |];
      inputs = [| (); () |];
      namings = Array.init 2 (fun _ -> Naming.identity 3);
    }
  in
  [
    Table.make ~id:"E22"
      ~title:
        "Chaos campaign: seeded infrastructure faults across the \
         (engine x supervision x storage) matrix — absorbed bit-identically \
         or honestly degraded (Fig 1 mutex, n=2, m=3)"
      ~header:[ "cell"; "fault plan"; "fired"; "restarts"; "recoveries"; "outcome" ]
      ~notes:
        [
          "\"fired\" counts plan faults that actually matured during the \
           cell. Kills aimed at worker domains are absorbed by the \
           supervision layer under both engines. \"restarts\" counts \
           monitor-scheduled respawns only, and can legitimately read \
           zero even with kills fired: the barrier engine may requeue \
           the dead worker's units onto survivors without respawning, \
           and the sharded engine may abort the attempt, reclaim the \
           orphaned lease and replay with the surviving crew. Faults \
           that take down the whole attempt (supervisor kill, allocation \
           failure, I/O error, torn checkpoint) are retried from the \
           newest salvageable snapshot by with_recovery (recoveries > 0). \
           A disk-visited byte quota is not a fault but a resource limit: \
           the run stops BEFORE the spill that would breach it, tags the \
           stop disk_full, and a quota-free resume completes exactly.";
          "`make chaos-soak-smoke` replays the same matrix through the \
           coordctl CLI with seed-randomized plans (CHAOS_SEED=N).";
        ]
      [
        ChMutex.engine_row ~label:"sharded + supervise" ~engine:Check.Explore.Sharded
          ~domains:3 cfg;
        ChMutex.engine_row ~label:"barrier + supervise" ~engine:Check.Explore.Barrier
          ~domains:3 cfg;
        ChMutex.recovery_row ~label:"seq + with_recovery" cfg;
        ChMutex.quota_row ~label:"disk-visited + quota" cfg;
      ];
  ]

let e23_serve_sweep _speed =
  let sw : Serve.Sweep.spec =
    {
      Serve.Sweep.name = "e23";
      kind = Serve.Spec.Check;
      protos = [ Serve.Spec.Mutex ];
      ns = [ 2 ];
      ms = Some [ 3; 4 ];
      reductions = [ Check.Explore.Full; Check.Explore.Canon ];
      engines = [ Serve.Spec.Seq ];
      fault_seeds = [ None ];
      seeds = [ 1 ];
      strategies = [ Check.Hunt.Bursts ];
      max_states = None;
      attempts = None;
      steps = None;
      deadline_s = None;
      expect_default = Some "pass";
      expect_overrides = [ ("mutex-n2-m4", "violation") ];
    }
  in
  let cache = Serve.Cache.create () in
  (* a small quantum so the slices column shows real preemption/resume
     round-trips, not one-shot runs *)
  let quantum = 4_000 in
  let first = Serve.Sweep.run ~cache ~quantum sw in
  let repeat = Serve.Sweep.run ~cache ~quantum sw in
  [
    Table.make ~id:"E23"
      ~title:
        "Job-queue service: declarative sweep with preemption quanta, a \
         fingerprint-keyed verdict cache and regression gates (Fig 1 \
         mutex, n=2)"
      ~header:Serve.Sweep.kpi_header
      ~notes:
        (Serve.Sweep.aggregate_lines first
        @ [
            "Gates: pass expected for m=3, violation for even m=4 (the \
             Thm 3.1 gcd obstruction); a slice explores at most the \
             preemption quantum (4000 states) before yielding at a \
             snapshot boundary, so verdicts and per-config stats are \
             bit-identical to uninterrupted runs (DESIGN.md §15).";
            str
              "Repeat sweep against the same cache: %d/%d cell(s) served \
               from the verdict cache, %d state(s) freshly explored \
               (%.2fs vs %.2fs wall)."
              repeat.Serve.Sweep.cached_cells repeat.Serve.Sweep.cells
              repeat.Serve.Sweep.total_explored repeat.Serve.Sweep.elapsed_s
              first.Serve.Sweep.elapsed_s;
          ])
      (Serve.Sweep.kpi_rows first);
  ]

let all speed =
  List.concat
    [
      e1_mutex_model_check speed;
      e2_even_m speed;
      e3_gcd_grid speed;
      e4_consensus speed;
      e5_election speed;
      e6_renaming speed;
      e7_covering_mutex speed;
      e8_covering_consensus speed;
      e9_covering_renaming speed;
      e10_named_baselines speed;
      e11_ccp speed;
      e12_starvation speed;
      e13_comparisons speed;
      e14_multicore speed;
      e15_property1 speed;
      e16_hunting speed;
      e17_fairness speed;
      e18_parallel_checker speed;
      e19_crash_tolerance speed;
      e20_symmetry_reduction speed;
      e21_snapshot_overhead speed;
      e22_chaos_matrix speed;
      e23_serve_sweep speed;
    ]

let by_id id =
  match String.lowercase_ascii id with
  | "e1" -> Some e1_mutex_model_check
  | "e2" -> Some e2_even_m
  | "e3" -> Some e3_gcd_grid
  | "e4" -> Some e4_consensus
  | "e5" -> Some e5_election
  | "e6" -> Some e6_renaming
  | "e7" -> Some e7_covering_mutex
  | "e8" -> Some e8_covering_consensus
  | "e9" -> Some e9_covering_renaming
  | "e10" -> Some e10_named_baselines
  | "e11" -> Some e11_ccp
  | "e12" -> Some e12_starvation
  | "e13" -> Some e13_comparisons
  | "e14" -> Some e14_multicore
  | "e15" -> Some e15_property1
  | "e16" -> Some e16_hunting
  | "e17" -> Some e17_fairness
  | "e18" -> Some e18_parallel_checker
  | "e19" -> Some e19_crash_tolerance
  | "e20" -> Some e20_symmetry_reduction
  | "e21" -> Some e21_snapshot_overhead
  | "e22" -> Some e22_chaos_matrix
  | "e23" -> Some e23_serve_sweep
  | _ -> None
