(** The per-theorem experiments of the reproduction (DESIGN.md §4).

    Each function regenerates the evidence for one row of EXPERIMENTS.md
    and returns the tables it produced. [Quick] keeps every experiment in
    the few-seconds range; [Full] widens the sweeps (all 120 namings at
    m = 5, larger random campaigns, deeper covering instances). *)

type speed = Quick | Full

val e1_mutex_model_check : speed -> Table.t list
(** Thm 3.1-3.3: exhaustive verification of Figure 1 for odd [m]. *)

val e2_even_m : speed -> Table.t list
(** Thm 3.1 (only-if): even [m] — lock-step livelock + exhaustive refutation. *)

val e3_gcd_grid : speed -> Table.t list
(** Thm 3.4: the (n, m) grid of symmetry attacks. *)

val e4_consensus : speed -> Table.t list
(** Thm 4.1/4.2: Figure 2 — exhaustive n=2 + random campaigns. *)

val e5_election : speed -> Table.t list
(** §4 note: election via consensus. *)

val e6_renaming : speed -> Table.t list
(** Thm 5.1-5.3: Figure 3 — exhaustive n=2 + adaptive campaigns. *)

val e7_covering_mutex : speed -> Table.t list
(** Thm 6.2: the covering adversary vs Figure 1. *)

val e8_covering_consensus : speed -> Table.t list
(** Thm 6.3: covering vs Figure 2 (unknown n, and n-1 registers). *)

val e9_covering_renaming : speed -> Table.t list
(** Thm 6.5: covering vs Figure 3 (unknown n, and n-1 registers). *)

val e10_named_baselines : speed -> Table.t list
(** Thm 6.1 / §3.2: what prior agreement buys — named-register baselines
    pass the same checkers, and the covering adversary dies without naming
    freedom. *)

val e11_ccp : speed -> Table.t list
(** §7: Rabin-style choice coordination on RMW anonymous registers. *)

val e12_starvation : speed -> Table.t list
(** Exact starvation-freedom verdicts (texture for a §8 open problem). *)

val e13_comparisons : speed -> Table.t list
(** §2's arbitrary-comparisons symmetry variant: even m becomes possible
    (reproduction-side extension). *)

val e14_multicore : speed -> Table.t list
(** Real-domains backend: the algorithms unchanged on OCaml 5 atomics. *)

val e15_property1 : speed -> Table.t list
(** §3.2's property 1 ("ignore extra registers"): holds with names, breaks
    anonymously. *)

val e16_hunting : speed -> Table.t list
(** Testing vs model checking: randomized hunting misses what exhaustive
    exploration finds instantly. *)

val e17_fairness : speed -> Table.t list
(** Long-run CS-entry split under a biased scheduler (companion to E12). *)

val e18_parallel_checker : speed -> Table.t list
(** The frontier-parallel model checker cross-validated against the
    sequential oracle: bit-identical graphs on every protocol family,
    with wall-clock throughput for both explorers. *)

val e19_crash_tolerance : speed -> Table.t list
(** Crash-fault injection: single-crash sweeps through the crash-aware
    checker (survivors of obstruction-free tasks still decide; Figure 1's
    mutex wedges when the peer crashes in its critical section, the
    executable face of Thm 6.2), plus multicore crash-stops and the
    hung-domain watchdog. *)

val e20_symmetry_reduction : speed -> Table.t list
(** Symmetry-quotient reduction factors, with orbit-sum soundness
    checks (DESIGN.md §9). *)

val e21_snapshot_overhead : speed -> Table.t list
(** Checkpoint/resume layer: throughput cost of periodic snapshots and a
    kill-at-half-budget resume whose final graph and statistics must be
    bit-identical to an uninterrupted run (DESIGN.md §10). *)

val e22_chaos_matrix : speed -> Table.t list
(** Seeded infrastructure-fault campaigns across the (engine x
    supervision x storage) matrix: worker kills absorbed by supervision,
    whole-attempt faults retried from the newest salvageable snapshot,
    disk-visited byte quotas honoured as graceful stops (DESIGN.md §14). *)

val e23_serve_sweep : speed -> Table.t list
(** The job-queue service's declarative sweep engine: a mutex m-matrix
    run under a small preemption quantum (verdicts bit-identical to
    uninterrupted runs), gated against expected verdicts, then re-run
    against the same verdict cache to show repeat queries cost zero
    fresh states (DESIGN.md §15). *)

val all : speed -> Table.t list
(** Every experiment, in order. *)

val by_id : string -> (speed -> Table.t list) option
(** Look up an experiment by its identifier ("E1" .. "E23", case
    insensitive). *)
