open Anonmem

exception Killed of { domain : int }
exception Stalled of { domain : int; waited_s : float }
exception Io_fault of { op : string }

type fault =
  | Kill_domain of { domain : int; after_ticks : int }
  | Stall_domain of { domain : int; after_ticks : int; for_s : float }
  | Torn_write of { nth_write : int; keep : float }
  | Flip_byte of { nth_write : int; at : float }
  | Alloc_fail of { after_boundaries : int }
  | Short_write of { nth_io : int; keep : float }
  | Io_error of { nth_io : int }
  | Disk_full of { after_bytes : int }
  | Fsync_fail of { nth_sync : int }

type plan = { seed : int; faults : fault list }

let pp_fault ppf = function
  | Kill_domain { domain; after_ticks } ->
    Format.fprintf ppf "kill d%d@@t%d" domain after_ticks
  | Stall_domain { domain; after_ticks; for_s } ->
    Format.fprintf ppf "stall d%d@@t%d (%.3fs)" domain after_ticks for_s
  | Torn_write { nth_write; keep } ->
    Format.fprintf ppf "tear w%d (keep %.0f%%)" nth_write (100. *. keep)
  | Flip_byte { nth_write; at } ->
    Format.fprintf ppf "flip w%d@@%.0f%%" nth_write (100. *. at)
  | Alloc_fail { after_boundaries } ->
    Format.fprintf ppf "alloc g%d" after_boundaries
  | Short_write { nth_io; keep } ->
    Format.fprintf ppf "short io%d (keep %.0f%%)" nth_io (100. *. keep)
  | Io_error { nth_io } -> Format.fprintf ppf "eio io%d" nth_io
  | Disk_full { after_bytes } ->
    Format.fprintf ppf "enospc b%d" after_bytes
  | Fsync_fail { nth_sync } -> Format.fprintf ppf "efsync s%d" nth_sync

let pp_plan ppf { seed; faults } =
  Format.fprintf ppf "%a (seed %d)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       pp_fault)
    faults seed

let plan_of_seed ?(domains = 4) ?(intensity = 4) ?(disk = false) seed =
  let rng = Rng.create (0x5EED + (seed * 2654435761)) in
  let domains = max 1 domains in
  let pick_domain () = Rng.int rng domains in
  let n = max 1 intensity in
  (* [disk = false] keeps the draw sequence of older plans byte-for-byte,
     so every seed recorded in CI logs replays the same faults it did. *)
  let faults =
    List.init n (fun _ ->
        match Rng.int rng (if disk then 9 else 5) with
        | 0 ->
          Kill_domain
            { domain = pick_domain (); after_ticks = 1 + Rng.int rng 24 }
        | 1 ->
          Stall_domain
            {
              domain = pick_domain ();
              after_ticks = 1 + Rng.int rng 24;
              for_s = 0.01 +. (0.04 *. Rng.float rng);
            }
        | 2 ->
          Torn_write
            { nth_write = 1 + Rng.int rng 4; keep = Rng.float rng }
        | 3 -> Flip_byte { nth_write = 1 + Rng.int rng 4; at = Rng.float rng }
        | 4 -> Alloc_fail { after_boundaries = 1 + Rng.int rng 12 }
        | 5 -> Short_write { nth_io = 1 + Rng.int rng 6; keep = Rng.float rng }
        | 6 -> Io_error { nth_io = 1 + Rng.int rng 6 }
        | 7 -> Disk_full { after_bytes = 256 + Rng.int rng 16384 }
        | _ -> Fsync_fail { nth_sync = 1 + Rng.int rng 6 })
  in
  { seed; faults }

(* Armed state. All counters live behind one mutex: injection points are
   called from every worker domain, and the disarmed fast path must stay
   a single atomic load. *)
type armed_state = {
  plan : plan;
  mutable left : fault list;  (* unfired faults *)
  mutable n_fired : int;
  ticks : (int, int) Hashtbl.t;  (* per-domain tick counters *)
  mutable boundaries : int;
  mutable writes : int;
  mutable ios : int;  (* disk write operations *)
  mutable io_bytes : int;  (* cumulative bytes offered to the disk *)
  mutable syncs : int;  (* fsync operations *)
  lock : Mutex.t;
}

let state : armed_state option Atomic.t = Atomic.make None

let arm plan =
  Atomic.set state
    (Some
       {
         plan;
         left = plan.faults;
         n_fired = 0;
         ticks = Hashtbl.create 8;
         boundaries = 0;
         writes = 0;
         ios = 0;
         io_bytes = 0;
         syncs = 0;
         lock = Mutex.create ();
       })

let disarm () = Atomic.set state None
let armed () = Atomic.get state <> None

let with_state f =
  match Atomic.get state with
  | None -> None
  | Some s ->
    Mutex.lock s.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () -> Some (f s))

let fired () =
  match with_state (fun s -> s.n_fired) with Some n -> n | None -> 0

let pending () =
  match with_state (fun s -> s.left) with Some l -> l | None -> []

let has_domain_faults () =
  match
    with_state (fun s ->
        List.exists
          (function Kill_domain _ | Stall_domain _ -> true | _ -> false)
          s.left)
  with
  | Some b -> b
  | None -> false

let has_disk_faults () =
  match
    with_state (fun s ->
        List.exists
          (function
            | Short_write _ | Io_error _ | Disk_full _ | Fsync_fail _ -> true
            | _ -> false)
          s.left)
  with
  | Some b -> b
  | None -> false

(* Remove matured faults matching [matches] from [s.left], count them as
   fired, and return them (oldest first). *)
let take s matches =
  let hit, rest = List.partition matches s.left in
  s.left <- rest;
  s.n_fired <- s.n_fired + List.length hit;
  hit

let tick ~kills ~domain =
  match Atomic.get state with
  | None -> ()
  | Some _ -> (
    let matured =
      with_state (fun s ->
          let t = 1 + (try Hashtbl.find s.ticks domain with Not_found -> 0) in
          Hashtbl.replace s.ticks domain t;
          take s (function
            | Kill_domain { domain = d; after_ticks } ->
              kills && d = domain && after_ticks <= t
            | Stall_domain { domain = d; after_ticks; _ } ->
              d = domain && after_ticks <= t
            | _ -> false))
    in
    match matured with
    | None | Some [] -> ()
    | Some faults ->
      (* sleep outside the lock; a kill wins over a same-tick stall *)
      List.iter
        (function
          | Stall_domain { for_s; _ } -> Unix.sleepf for_s | _ -> ())
        faults;
      if List.exists (function Kill_domain _ -> true | _ -> false) faults
      then raise (Killed { domain }))

let worker_tick ~domain = tick ~kills:true ~domain
let stall_tick ~domain = tick ~kills:false ~domain

let boundary_tick () =
  match Atomic.get state with
  | None -> ()
  | Some _ -> (
    match
      with_state (fun s ->
          s.boundaries <- s.boundaries + 1;
          take s (function
            | Alloc_fail { after_boundaries } -> after_boundaries <= s.boundaries
            | _ -> false))
    with
    | None | Some [] -> ()
    | Some _ -> raise Out_of_memory)

let mutate_write payload =
  match Atomic.get state with
  | None -> None
  | Some _ -> (
    match
      with_state (fun s ->
          s.writes <- s.writes + 1;
          take s (function
            | Torn_write { nth_write; _ } | Flip_byte { nth_write; _ } ->
              nth_write = s.writes
            | _ -> false))
    with
    | None | Some [] -> None
    | Some faults ->
      let damaged =
        List.fold_left
          (fun p f ->
            match f with
            | Torn_write { keep; _ } ->
              String.sub p 0
                (int_of_float (keep *. float_of_int (String.length p)))
            | Flip_byte { at; _ } when String.length p > 0 ->
              let i =
                min
                  (String.length p - 1)
                  (int_of_float (at *. float_of_int (String.length p)))
              in
              let b = Bytes.of_string p in
              Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
              Bytes.to_string b
            | _ -> p)
          payload faults
      in
      Some damaged)

let io_write payload =
  match Atomic.get state with
  | None -> payload
  | Some _ -> (
    match
      with_state (fun s ->
          s.ios <- s.ios + 1;
          s.io_bytes <- s.io_bytes + String.length payload;
          take s (function
            | Short_write { nth_io; _ } | Io_error { nth_io } ->
              nth_io = s.ios
            | Disk_full { after_bytes } -> after_bytes <= s.io_bytes
            | _ -> false))
    with
    | None | Some [] -> payload
    | Some faults ->
      if List.exists (function Io_error _ -> true | _ -> false) faults then
        raise (Io_fault { op = "write: input/output error" });
      if List.exists (function Disk_full _ -> true | _ -> false) faults then
        raise (Io_fault { op = "write: no space left on device" });
      List.fold_left
        (fun p f ->
          match f with
          | Short_write { keep; _ } ->
            String.sub p 0
              (int_of_float (keep *. float_of_int (String.length p)))
          | _ -> p)
        payload faults)

let io_sync () =
  match Atomic.get state with
  | None -> ()
  | Some _ -> (
    match
      with_state (fun s ->
          s.syncs <- s.syncs + 1;
          take s (function
            | Fsync_fail { nth_sync } -> nth_sync = s.syncs
            | _ -> false))
    with
    | None | Some [] -> ()
    | Some _ -> raise (Io_fault { op = "fsync: input/output error" }))
