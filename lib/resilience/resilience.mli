(** Deterministic infrastructure-fault injection for the checker itself.

    PR 2 brought the paper's crash model to the {e verified} protocols;
    this module applies the same discipline to the {e verifier}: seeded,
    replayable plans of infrastructure faults — a worker domain killed
    mid-generation, a snapshot write torn or bit-flipped on its way to
    disk, an allocation failure at a generation boundary, a heartbeat
    stalled — injected at fixed points inside {!Check.Explore},
    {!Check.Snapshot} and {!Parallel.Prun}.

    The hook is zero-cost when disarmed: every injection point is a
    single [Atomic.get] returning [None]. Faults are armed process-wide
    ({!arm}/{!disarm}); each fault in a plan fires at most once, so a
    finite plan always lets a recovering exploration converge. Plans are
    pure data derived from a single integer seed ({!plan_of_seed}), which
    is what makes a whole fault campaign replayable: print the seed, and
    anyone can re-run the identical sequence of disasters. *)

exception Killed of { domain : int }
(** Raised out of an injection point to simulate the sudden death of a
    domain (or, for domain 0, of the whole supervisor/process). Never
    raised while disarmed. *)

exception Stalled of { domain : int; waited_s : float }
(** Raised by the {e supervised} explorer (not by this module) when a
    live-but-frozen domain outlives its escalating patience budget and
    the attempt is abandoned. Defined here so both the explorer and
    {!Check.Explore.Make.with_recovery} agree on what counts as a
    transient infrastructure failure. *)

exception Io_fault of { op : string }
(** Raised out of {!io_write}/{!io_sync} to simulate a failed disk
    operation ([EIO], [ENOSPC], a refused fsync). Faults fire at most
    once, so {!Check.Explore.Make.with_recovery} treats it as transient:
    retrying from the newest salvageable state converges. Never raised
    while disarmed. *)

type fault =
  | Kill_domain of { domain : int; after_ticks : int }
      (** raise {!Killed} out of [domain]'s [after_ticks]-th tick *)
  | Stall_domain of { domain : int; after_ticks : int; for_s : float }
      (** freeze [domain] for [for_s] seconds at its [after_ticks]-th
          tick — a GC pause, a noisy neighbour, a page fault storm *)
  | Torn_write of { nth_write : int; keep : float }
      (** truncate the [nth_write]-th snapshot payload to a [keep]
          fraction of its bytes: power loss mid-write *)
  | Flip_byte of { nth_write : int; at : float }
      (** XOR one byte of the [nth_write]-th snapshot payload, at
          relative offset [at] in [0,1): silent media corruption *)
  | Alloc_fail of { after_boundaries : int }
      (** raise [Out_of_memory] at the [after_boundaries]-th generation
          boundary *)
  | Short_write of { nth_io : int; keep : float }
      (** silently truncate the [nth_io]-th disk write to a [keep]
          fraction of its bytes: a disk that acknowledged data it never
          stored. Unlike [Torn_write] (counted per snapshot payload),
          this fires at the raw I/O layer, where visited-set run spills
          and snapshot chunks alike pass through *)
  | Io_error of { nth_io : int }
      (** raise {!Io_fault} ([EIO]) out of the [nth_io]-th disk write *)
  | Disk_full of { after_bytes : int }
      (** raise {!Io_fault} ([ENOSPC]) out of the first disk write that
          pushes the cumulative bytes offered to the disk past
          [after_bytes] *)
  | Fsync_fail of { nth_sync : int }
      (** raise {!Io_fault} out of the [nth_sync]-th fsync: the data may
          be in the page cache, but durability was refused *)

type plan = { seed : int; faults : fault list }

val plan_of_seed : ?domains:int -> ?intensity:int -> ?disk:bool -> int -> plan
(** Derive a deterministic fault plan from [seed]: roughly [intensity]
    faults (default 4) mixing domain kills/stalls (victims drawn from
    [0, domains)], default 4), torn/bit-flipped snapshot writes and one
    allocation failure. With [~disk:true] the mix also draws storage
    faults (short writes, I/O errors, disk-full, fsync failures);
    [false] (the default) reproduces the exact plans older seeds gave,
    keeping recorded campaign seeds replayable. Equal arguments give
    equal plans. *)

val pp_fault : Format.formatter -> fault -> unit

val pp_plan : Format.formatter -> plan -> unit
(** One line, e.g.
    [kill d1@t3; stall d2@t5 (0.05s); tear w2 (keep 40%); alloc g7 (seed 11)]. *)

val arm : plan -> unit
(** Arm [plan] process-wide. Tick and write counters restart from zero;
    any previously armed plan is replaced. *)

val disarm : unit -> unit
(** Disarm; all injection points become no-ops again. *)

val armed : unit -> bool

val fired : unit -> int
(** Number of faults of the armed plan that have fired so far (faults
    fire at most once). 0 when disarmed. *)

val pending : unit -> fault list
(** Faults of the armed plan that have not fired yet ([] when disarmed). *)

val has_domain_faults : unit -> bool
(** The armed plan still holds an unfired [Kill_domain]/[Stall_domain] —
    what the explorer consults to auto-enable supervision. *)

val has_disk_faults : unit -> bool
(** The armed plan still holds an unfired storage fault
    ([Short_write]/[Io_error]/[Disk_full]/[Fsync_fail]). *)

(** {2 Injection points}

    Called by the instrumented infrastructure; all are single-atomic-load
    no-ops when disarmed, and safe to call from any domain. *)

val worker_tick : domain:int -> unit
(** One unit of work attributed to [domain]. Fires matured
    [Kill_domain] (raises {!Killed}) and [Stall_domain] (sleeps) faults
    for that domain. *)

val stall_tick : domain:int -> unit
(** Like {!worker_tick} but only fires [Stall_domain] faults — for
    layers (e.g. {!Parallel.Prun}) that model crashes themselves and
    only borrow the stall injection. *)

val boundary_tick : unit -> unit
(** One generation boundary on the exploring thread. Fires matured
    [Alloc_fail] faults by raising [Out_of_memory]. *)

val mutate_write : string -> string option
(** [mutate_write payload] counts one snapshot payload write and, when a
    [Torn_write]/[Flip_byte] fault matures on it, returns the damaged
    bytes the caller must put on disk instead; [None] means write the
    payload unharmed. *)

val io_write : string -> string
(** [io_write bytes] counts one disk write operation (and its bytes)
    and serves matured storage faults: [Io_error] and [Disk_full] raise
    {!Io_fault}; [Short_write] returns a truncated prefix the caller
    must put on disk instead. Returns [bytes] unharmed otherwise. *)

val io_sync : unit -> unit
(** Counts one fsync; a matured [Fsync_fail] raises {!Io_fault}. *)
