type entry = {
  ident : string;
  verdict : string;
  exit_code : int;
  detail : string;
  n_states : int;
  stats : Check.Checker_stats.t option;
}

type t = {
  tbl : (string, entry list) Hashtbl.t;  (* digest -> bucket *)
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable collisions : int;
}

let create () =
  {
    tbl = Hashtbl.create 64;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    collisions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~key ~ident =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some bucket -> (
        match List.find_opt (fun e -> e.ident = ident) bucket with
        | Some e ->
          t.hits <- t.hits + 1;
          Some e
        | None ->
          (* same 16-byte digest, different configuration: a detected
             collision — degrade to a miss *)
          t.collisions <- t.collisions + 1;
          t.misses <- t.misses + 1;
          None))

let add t ~key entry =
  locked t (fun () ->
      let bucket =
        match Hashtbl.find_opt t.tbl key with None -> [] | Some b -> b
      in
      let bucket = List.filter (fun e -> e.ident <> entry.ident) bucket in
      Hashtbl.replace t.tbl key (entry :: bucket))

let length t =
  locked t (fun () ->
      Hashtbl.fold (fun _ b acc -> acc + List.length b) t.tbl 0)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let collisions t = locked t (fun () -> t.collisions)

let save t ~path =
  locked t (fun () ->
      let entries =
        Hashtbl.fold (fun k b acc -> (k, b) :: acc) t.tbl []
      in
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      Marshal.to_channel oc (entries : (string * entry list) list) [];
      close_out oc;
      Sys.rename tmp path)

let load ~path =
  let t = create () in
  (try
     let ic = open_in_bin path in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         let entries : (string * entry list) list = Marshal.from_channel ic in
         List.iter (fun (k, b) -> Hashtbl.replace t.tbl k b) entries)
   with _ -> ());
  t
