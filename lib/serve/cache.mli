(** Verdict cache: fingerprint-keyed memoization of completed runs.

    Entries are keyed by the 16-byte MD5 config fingerprint
    ({!Check.Explore.Make.fingerprint} for check configurations,
    [Digest.string] of the canonical spec ident for fuzz/hunt jobs), so a
    repeat query costs one hash lookup instead of a re-exploration.

    Soundness: the fingerprint is a hash, not an injection, so every
    entry also carries the full injective identity string
    ({!Check.Explore.Make.describe} / {!Spec.ident}) and a lookup only
    hits when the stored identity matches byte-for-byte. A digest
    collision between distinct configurations is therefore {e detected}
    and counted ({!collisions}) — it degrades to a miss, never to a wrong
    verdict. Only {e complete} explorations may be cached: the
    fingerprint deliberately excludes the state budget, so a truncated
    verdict cached under it would poison later queries with bigger
    budgets.

    All operations are mutex-guarded — safe to share across the worker
    pool's domains. *)

type entry = {
  ident : string;  (** full injective identity, verified on lookup *)
  verdict : string;  (** {!Runner.verdict_tag} of the cached result *)
  exit_code : int;
  detail : string;
  n_states : int;  (** graph size of the cached exploration (0 for fuzz/hunt) *)
  stats : Check.Checker_stats.t option;
      (** per-config stats, replayed into cached outcomes so a cache-served
          job reports the same stats (mod clock) as the original run *)
}

type t

val create : unit -> t

val find : t -> key:Digest.t -> ident:string -> entry option
(** Lookup; counts a hit, a miss, or a collision (key present but no
    entry's [ident] matches — returned as a miss). *)

val add : t -> key:Digest.t -> entry -> unit
(** Insert (replacing any previous entry with the same key and ident). *)

val length : t -> int
val hits : t -> int
val misses : t -> int
val collisions : t -> int

val save : t -> path:string -> unit
(** Persist entries with [Marshal] (atomically, via a temp file). *)

val load : path:string -> t
(** Load a cache persisted by {!save}. A missing, unreadable or corrupt
    file yields an empty cache — persistence is an optimization, never a
    failure mode. *)
