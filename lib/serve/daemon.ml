let str = Printf.sprintf

type config = {
  spool : string;
  workers : int;
  quantum : int;
  poll_s : float;
  once : bool;
}

let default ~spool =
  { spool; workers = 2; quantum = 50_000; poll_s = 0.05; once = false }

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Results must appear atomically: pollers watch [done/] for whole files. *)
let write_file path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let result_lines name (j : Pool.job) =
  let kv k v = str "%s = %s" k v in
  let common =
    [
      kv "job" name;
      kv "spec" (Spec.to_line j.Pool.spec);
      kv "slices" (string_of_int j.Pool.slices);
      kv "recoveries" (string_of_int j.Pool.recoveries);
      kv "ran_s" (str "%.3f" j.Pool.ran_s);
    ]
  in
  let rest =
    match j.Pool.status with
    | Pool.Finished o ->
      [
        kv "verdict" (Runner.verdict_tag o.Runner.verdict);
        kv "exit" (string_of_int (Runner.verdict_exit o.Runner.verdict));
        kv "configs" (string_of_int o.Runner.configs);
        kv "cached_configs" (string_of_int o.Runner.cached_configs);
        kv "states" (string_of_int o.Runner.states);
        kv "explored" (string_of_int o.Runner.explored);
        kv "cached"
          (if o.Runner.cached_configs = o.Runner.configs && o.Runner.configs > 0
           then "true"
           else "false");
        kv "detail" o.Runner.detail;
      ]
    | Pool.Crashed msg -> [ kv "verdict" "failed"; kv "exit" "7"; kv "detail" msg ]
    | Pool.Cancelled -> [ kv "verdict" "cancelled"; kv "exit" "8" ]
    | Pool.Queued | Pool.Yielded -> [ kv "verdict" "pending" ]
  in
  String.concat "\n" (common @ rest) ^ "\n"

let run ?(log = print_endline) cfg =
  let spool = cfg.spool in
  let done_dir = Filename.concat spool "done" in
  let state_dir = Filename.concat spool ".state" in
  ensure_dir spool;
  ensure_dir done_dir;
  ensure_dir state_dir;
  let cache_path = Filename.concat state_dir "cache.bin" in
  let cache = Cache.load ~path:cache_path in
  let pool =
    Pool.create ~workers:cfg.workers ~quantum:cfg.quantum ~cache ~state_dir ()
  in
  let names : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let reported : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let stop = ref false in
  let old_term = ref Sys.Signal_default and old_int = ref Sys.Signal_default in
  old_term :=
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
  old_int := Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  let shutdown_file = Filename.concat spool "shutdown" in
  let scan () =
    let entries = try Sys.readdir spool with Sys_error _ -> [||] in
    Array.sort compare entries;
    let accepted = ref 0 in
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".job" then begin
          let path = Filename.concat spool f in
          let name = Filename.chop_suffix f ".job" in
          let claimed = Filename.concat state_dir (f ^ ".claimed") in
          match Sys.rename path claimed with
          | exception Sys_error _ -> ()  (* raced away; next scan *)
          | () -> (
            incr accepted;
            match Spec.parse (read_file claimed) with
            | Error msg ->
              write_file
                (Filename.concat done_dir (name ^ ".error"))
                (str "job = %s\nerror = %s\n" name msg);
              log (str "rejected %s: %s" name msg)
            | Ok spec ->
              let id = Pool.submit pool spec in
              Hashtbl.replace names id name;
              log (str "accepted %s as job %d: %s" name id (Spec.ident spec)))
        end)
      entries;
    !accepted
  in
  let report_done () =
    List.iter
      (fun (j : Pool.job) ->
        if not (Hashtbl.mem reported j.Pool.id) then
          match j.Pool.status with
          | Pool.Finished _ | Pool.Crashed _ | Pool.Cancelled ->
            Hashtbl.replace reported j.Pool.id ();
            let name =
              match Hashtbl.find_opt names j.Pool.id with
              | Some n -> n
              | None -> str "job-%d" j.Pool.id
            in
            write_file
              (Filename.concat done_dir (name ^ ".result"))
              (result_lines name j);
            log
              (str "finished %s: %s" name
                 (match j.Pool.status with
                 | Pool.Finished o ->
                   str "%s (states=%d explored=%d%s)"
                     (Runner.verdict_tag o.Runner.verdict)
                     o.Runner.states o.Runner.explored
                     (if
                        o.Runner.cached_configs = o.Runner.configs
                        && o.Runner.configs > 0
                      then ", cached"
                      else "")
                 | Pool.Crashed m -> "crashed: " ^ m
                 | _ -> "cancelled"))
          | Pool.Queued | Pool.Yielded -> ())
      (Pool.jobs pool)
  in
  let rec loop () =
    let accepted = scan () in
    let progressed = Pool.step pool in
    report_done ();
    if Sys.file_exists shutdown_file then begin
      (try Sys.remove shutdown_file with Sys_error _ -> ());
      log "shutdown requested (file)"
    end
    else if !stop then log "shutdown requested (signal)"
    else if cfg.once && accepted = 0 && (not progressed) && Pool.pending pool = 0
    then log "spool drained"
    else begin
      if (not progressed) && accepted = 0 then Unix.sleepf cfg.poll_s;
      loop ()
    end
  in
  loop ();
  Cache.save cache ~path:cache_path;
  log
    (str "daemon exit: %d job(s), %d state(s) explored, cache %d entries \
          (%d hit(s), %d miss(es), %d collision(s))"
       (List.length (Pool.jobs pool))
       (Pool.explored pool) (Cache.length cache) (Cache.hits cache)
       (Cache.misses cache)
       (Cache.collisions cache));
  Sys.set_signal Sys.sigterm !old_term;
  Sys.set_signal Sys.sigint !old_int;
  0
