(** Spool-directory daemon: the long-running face of the service.

    Clients drop job specs ({!Spec.parse} format) into [spool/NAME.job]
    (write-to-temp-then-rename for atomicity); the daemon claims each
    file, runs it on its {!Pool}, and writes [spool/done/NAME.result]
    (key=value: verdict, exit code, states, explored, cache stats) — or
    [spool/done/NAME.error] if the spec didn't parse. Claimed specs,
    per-job snapshots and the persisted verdict cache live under
    [spool/.state/]; the cache survives restarts, so a bounced daemon
    still answers repeat queries O(1).

    Shutdown: create [spool/shutdown] (removed on exit), or SIGTERM /
    SIGINT — both finish the current scheduling round, persist the
    cache, and return 0. With [once] the daemon exits as soon as the
    spool is empty and every accepted job has a result — the
    batch-friendly mode the smoke test and the test suite drive. *)

type config = {
  spool : string;
  workers : int;
  quantum : int;
  poll_s : float;  (** idle sleep between spool scans *)
  once : bool;
}

val default : spool:string -> config
(** workers 2, quantum 50k, poll 0.05s, once false. *)

val run : ?log:(string -> unit) -> config -> int
(** Run until shutdown; returns the process exit code (0 clean). [log]
    (default stdout) receives one line per lifecycle event: accepted,
    yielded, finished, crashed, shutdown summary. *)
