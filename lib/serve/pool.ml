type status =
  | Queued
  | Yielded
  | Finished of Runner.outcome
  | Crashed of string
  | Cancelled

type job = {
  id : int;
  spec : Spec.t;
  snapshot : string;
  mutable status : status;
  mutable progress : Runner.progress;
  mutable slices : int;
  mutable recoveries : int;
  mutable ticket : int;
  mutable ran_s : float;
}

type t = {
  state_dir : string;
  workers : int;
  quantum : int;
  max_retries : int;
  cache : Cache.t;
  mutable next_id : int;
  mutable next_ticket : int;
  mutable order : int list;  (* submission order, rev *)
  tbl : (int, job) Hashtbl.t;
  mutable explored : int;
}

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let create ?(workers = 1) ?(quantum = 50_000) ?(max_retries = 6) ?cache
    ~state_dir () =
  ensure_dir state_dir;
  {
    state_dir;
    workers = max 1 workers;
    quantum = max 1 quantum;
    max_retries;
    cache = (match cache with Some c -> c | None -> Cache.create ());
    next_id = 0;
    next_ticket = 0;
    order = [];
    tbl = Hashtbl.create 16;
    explored = 0;
  }

let fresh_ticket t =
  let k = t.next_ticket in
  t.next_ticket <- k + 1;
  k

let submit t spec =
  let id = t.next_id in
  t.next_id <- id + 1;
  let job =
    {
      id;
      spec;
      snapshot = Filename.concat t.state_dir (Printf.sprintf "job-%d.snap" id);
      status = Queued;
      progress = Runner.start;
      slices = 0;
      recoveries = 0;
      ticket = fresh_ticket t;
      ran_s = 0.0;
    }
  in
  Hashtbl.replace t.tbl id job;
  t.order <- id :: t.order;
  id

let job t id = Hashtbl.find_opt t.tbl id
let jobs t = List.rev_map (fun id -> Hashtbl.find t.tbl id) t.order

let remove_snapshot j =
  try Sys.remove j.snapshot with Sys_error _ -> ()

let cancel t id =
  match job t id with
  | Some j when j.status = Queued || j.status = Yielded ->
    j.status <- Cancelled;
    remove_snapshot j;
    true
  | _ -> false

let runnable t =
  jobs t
  |> List.filter (fun j -> j.status = Queued || j.status = Yielded)
  |> List.stable_sort (fun a b ->
         match compare b.spec.Spec.priority a.spec.Spec.priority with
         | 0 -> compare a.ticket b.ticket
         | c -> c)
  |> List.map (fun j -> j.id)

let pending t =
  List.length
    (List.filter
       (fun j ->
         match j.status with
         | Queued | Yielded -> true
         | Finished _ | Crashed _ | Cancelled -> false)
       (jobs t))

let transient_message = function
  | Resilience.Killed { domain } ->
    Printf.sprintf "worker domain %d killed" domain
  | Resilience.Stalled { domain; waited_s } ->
    Printf.sprintf "worker domain %d stalled (%.2fs)" domain waited_s
  | Resilience.Io_fault { op } -> Printf.sprintf "i/o fault during %s" op
  | Out_of_memory -> "out of memory"
  | Check.Snapshot.Error e -> Check.Snapshot.error_message e
  | e -> Printexc.to_string e

let run_one t (j : job) =
  let deadline_left_s =
    Option.map
      (fun d -> d -. j.ran_s)
      j.spec.Spec.deadline_s
  in
  let t0 = Check.Checker_stats.now () in
  let r =
    try
      `Slice
        (Runner.run_slice ~cache:t.cache ~quantum:t.quantum ?deadline_left_s
           ~salvage:(j.recoveries > 0) ~snapshot:j.snapshot j.spec j.progress)
    with
    | (Resilience.Killed _ | Resilience.Stalled _ | Resilience.Io_fault _
      | Out_of_memory
      | Check.Snapshot.Error _) as e ->
      `Transient e
    | e -> `Fatal e
  in
  (Check.Checker_stats.now () -. t0, r)

let apply t (j : job) (dt, r) =
  j.ran_s <- j.ran_s +. dt;
  j.slices <- j.slices + 1;
  let before = Runner.progress_explored j.progress in
  match r with
  | `Slice (Runner.Done o) ->
    t.explored <- t.explored + (o.Runner.explored - before);
    remove_snapshot j;
    j.status <- Finished o
  | `Slice (Runner.Yield p) ->
    t.explored <- t.explored + (Runner.progress_explored p - before);
    j.progress <- p;
    j.status <- Yielded;
    j.ticket <- fresh_ticket t
  | `Transient e ->
    j.recoveries <- j.recoveries + 1;
    if j.recoveries > t.max_retries then begin
      remove_snapshot j;
      j.status <- Crashed (transient_message e)
    end
    else begin
      j.progress <- Runner.after_crash ~snapshot:j.snapshot j.progress;
      j.status <- Yielded;
      j.ticket <- fresh_ticket t
    end
  | `Fatal e ->
    remove_snapshot j;
    j.status <- Crashed (Printexc.to_string e)

let step t =
  let picks =
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | id :: rest -> id :: take (k - 1) rest
    in
    take t.workers (runnable t)
    |> List.map (fun id -> Hashtbl.find t.tbl id)
  in
  match picks with
  | [] -> false
  | [ j ] ->
    apply t j (run_one t j);
    true
  | js when t.workers = 1 ->
    List.iter (fun j -> apply t j (run_one t j)) js;
    true
  | js ->
    (* one slice per domain; all bookkeeping back in the supervisor *)
    let handles =
      List.map (fun j -> (j, Domain.spawn (fun () -> run_one t j))) js
    in
    List.iter (fun (j, h) -> apply t j (Domain.join h)) handles;
    true

let drain t = while step t do () done
let explored t = t.explored
let cache t = t.cache
