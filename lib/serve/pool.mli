(** Bounded worker pool: queued jobs, sliced execution, crash recovery.

    Jobs are scheduled by descending priority, FIFO within a priority; a
    job that yields (slice quantum exhausted) re-queues {e behind} its
    priority class, so long explorations round-robin with fresh arrivals
    instead of hogging a worker. With [workers > 1] each scheduling round
    runs its slices on freshly spawned domains (safe: the codec interning
    used by concurrent explorations is CAS-published, and all pool/cache
    bookkeeping happens in the supervisor between rounds).

    Transient infrastructure failures — armed {!Resilience} faults, OOM,
    a corrupt checkpoint — cost the job one recovery: the cursor is
    repaired with {!Runner.after_crash} (resume-with-salvage if the
    snapshot survived, restart the current config otherwise) and the job
    re-queues. After [max_retries] recoveries it is marked [Crashed].
    Any other exception is a bug, not weather, and crashes the job
    immediately. *)

type status =
  | Queued
  | Yielded  (** preempted mid-job; snapshot on disk, cursor in memory *)
  | Finished of Runner.outcome
  | Crashed of string
  | Cancelled

type job = private {
  id : int;
  spec : Spec.t;
  snapshot : string;
  mutable status : status;
  mutable progress : Runner.progress;
  mutable slices : int;  (** scheduling rounds this job has run in *)
  mutable recoveries : int;
  mutable ticket : int;  (** FIFO rank within the priority class *)
  mutable ran_s : float;  (** wall clock accumulated across slices *)
}

type t

val create :
  ?workers:int ->
  ?quantum:int ->
  ?max_retries:int ->
  ?cache:Cache.t ->
  state_dir:string ->
  unit ->
  t
(** [workers] (default 1) bounds concurrent slices per round; [quantum]
    (default 50k) bounds fresh states per check slice; [max_retries]
    (default 6) bounds per-job crash recoveries. [state_dir] (created if
    missing) holds per-job snapshot files. The [cache] (default fresh)
    is shared by every job — and may be shared across pools. *)

val submit : t -> Spec.t -> int
(** Enqueue a job, returning its id. *)

val cancel : t -> int -> bool
(** Cancel a [Queued] or [Yielded] job (its snapshot is deleted). False
    if the job is already terminal or unknown. *)

val job : t -> int -> job option
val jobs : t -> job list
(** All jobs, in submission order. *)

val runnable : t -> int list
(** Ids in scheduling order — the next round runs a prefix of this. *)

val pending : t -> int
(** Jobs not yet terminal. *)

val step : t -> bool
(** Run one scheduling round (up to [workers] slices). False if nothing
    was runnable. *)

val drain : t -> unit
(** Step until no job is runnable. *)

val explored : t -> int
(** Fresh states explored across all jobs (cache hits contribute 0). *)

val cache : t -> Cache.t
