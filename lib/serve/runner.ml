open Anonmem

let str = Printf.sprintf

type verdict =
  | Pass
  | Violation
  | Truncated
  | Deadline
  | Disagreement
  | Failed of string

let verdict_exit = function
  | Pass -> 0
  | Violation -> 1
  | Truncated -> 3
  | Disagreement -> 5
  | Deadline -> 6
  | Failed _ -> 7

let verdict_tag = function
  | Pass -> "pass"
  | Violation -> "violation"
  | Truncated -> "truncated"
  | Deadline -> "deadline"
  | Disagreement -> "disagreement"
  | Failed _ -> "failed"

let verdict_of_exit ~detail = function
  | 0 -> Pass
  | 1 -> Violation
  | 3 -> Truncated
  | 5 -> Disagreement
  | 6 -> Deadline
  | _ -> Failed detail

type outcome = {
  verdict : verdict;
  detail : string;
  configs : int;
  cached_configs : int;
  states : int;
  explored : int;
  stats : Check.Checker_stats.t list;
}

type check_state = {
  idx : int;  (* next configuration in the naming sweep *)
  states_done : int;  (* states the snapshot covers for config [idx] *)
  partial : bool;  (* a snapshot of config [idx] is on disk *)
  bad : bool;
  truncated : bool;
  saw_deadline : bool;
  acc_stats : Check.Checker_stats.t list;  (* rev *)
  acc_detail : string list;  (* rev *)
  cached : int;
  total_states : int;
  explored : int;
}

type progress = Start | Check_cursor of check_state

let start = Start
let progress_explored = function Start -> 0 | Check_cursor cs -> cs.explored

let after_crash ~snapshot = function
  | Start -> Start
  | Check_cursor cs ->
    (* if the checkpoint died with the slice, the current config restarts
       from scratch; completed configs live in the cursor and are kept *)
    Check_cursor { cs with partial = cs.partial && Sys.file_exists snapshot }

type slice = Done of outcome | Yield of progress

let init_cs =
  {
    idx = 0;
    states_done = 0;
    partial = false;
    bad = false;
    truncated = false;
    saw_deadline = false;
    acc_stats = [];
    acc_detail = [];
    cached = 0;
    total_states = 0;
    explored = 0;
  }

let ids_of n = Array.init n (fun i -> ((i + 1) * 17) + 1)

let render_verdicts vs =
  String.concat ", "
    (List.map
       (fun (name, ok) -> str "%s %s" name (if ok then "ok" else "VIOLATED"))
       vs)

(* ------------------------------------------------------------------ *)
(* check jobs: the coordctl naming sweep, sliced                       *)
(* ------------------------------------------------------------------ *)

module MkCheck (P : Protocol.PROTOCOL) = struct
  module E = Check.Explore.Make (P)

  (* All relative namings for 2 processes; rotations for more — the same
     sweep as [coordctl check], so verdicts are exchangeable. *)
  let namings_under_test ~n ~m =
    if n = 2 && m <= 5 then
      List.map (fun nm -> [| Naming.identity m; nm |]) (Naming.all m)
    else [ Array.init n (fun k -> Naming.rotation m k) ]

  let run_slice ?cache ?quantum ?deadline_left_s ?(salvage = false) ~snapshot
      ~(judge : E.graph -> (string * bool) list) ~(inputs : P.input array)
      (spec : Spec.t) (cs0 : check_state) : slice =
    let cfgs =
      List.map
        (fun namings -> { E.ids = ids_of spec.Spec.n; inputs; namings })
        (namings_under_test ~n:spec.Spec.n ~m:spec.Spec.m)
    in
    let ncfg = List.length cfgs in
    let finalize cs =
      let verdict =
        if cs.bad then Violation
        else if cs.saw_deadline then Deadline
        else if cs.truncated then Truncated
        else Pass
      in
      Done
        {
          verdict;
          detail = String.concat "; " (List.rev cs.acc_detail);
          configs = ncfg;
          cached_configs = cs.cached;
          states = cs.total_states;
          explored = cs.explored;
          stats = List.rev cs.acc_stats;
        }
    in
    let rec step cs =
      if cs.idx >= ncfg then finalize cs
      else begin
        let cfg = List.nth cfgs cs.idx in
        let fp, _ = E.fingerprint ~reduction:spec.Spec.reduction cfg in
        let ident = E.describe ~reduction:spec.Spec.reduction cfg in
        let hit =
          if cs.partial then None
          else Option.bind cache (fun c -> Cache.find c ~key:fp ~ident)
        in
        match hit with
        | Some e ->
          (* consecutive hits fold into one slice: a fully-cached job
             completes in a single slice with [explored = 0] *)
          step
            {
              cs with
              idx = cs.idx + 1;
              cached = cs.cached + 1;
              total_states = cs.total_states + e.Cache.n_states;
              bad = cs.bad || e.Cache.exit_code = 1;
              acc_detail = (e.Cache.detail ^ " [cached]") :: cs.acc_detail;
              acc_stats =
                (match e.Cache.stats with
                | Some s -> s :: cs.acc_stats
                | None -> cs.acc_stats);
            }
        | None ->
          let budget = spec.Spec.max_states in
          let cap =
            match (quantum, budget) with
            | Some q, Some b -> Some (min b (cs.states_done + q))
            | Some q, None -> Some (cs.states_done + q)
            | None, b -> b
          in
          let resume_from = if cs.partial then Some snapshot else None in
          let deadline_s = Option.map (Float.max 0.0) deadline_left_s in
          let g, st =
            match spec.Spec.engine with
            | Spec.Seq ->
              E.explore_with_stats ?max_states:cap
                ~reduction:spec.Spec.reduction ~snapshot_to:snapshot
                ?resume_from ?deadline_s ~salvage cfg
            | Spec.Par eng ->
              E.explore_par ?max_states:cap ~engine:eng
                ~reduction:spec.Spec.reduction ~snapshot_to:snapshot
                ?resume_from ?deadline_s ~salvage cfg
          in
          let stt = st.Check.Checker_stats.n_states in
          let cs =
            { cs with explored = cs.explored + max 0 (stt - cs.states_done) }
          in
          let finish_config ~cacheable cs =
            let vs = judge g in
            let bad_here = List.exists (fun (_, ok) -> not ok) vs in
            let detail =
              str "cfg %d/%d (%d states%s): %s" (cs.idx + 1) ncfg stt
                (if g.E.complete then "" else ", truncated")
                (render_verdicts vs)
            in
            (* only complete explorations are cacheable: the fingerprint
               excludes the budget, so a truncated verdict would poison
               later, bigger-budget queries *)
            if cacheable && g.E.complete then
              Option.iter
                (fun c ->
                  Cache.add c ~key:fp
                    {
                      Cache.ident;
                      verdict = (if bad_here then "violation" else "pass");
                      exit_code = (if bad_here then 1 else 0);
                      detail;
                      n_states = stt;
                      stats = Some st;
                    })
                cache;
            (try Sys.remove snapshot with Sys_error _ -> ());
            {
              cs with
              idx = cs.idx + 1;
              partial = false;
              states_done = 0;
              bad = cs.bad || bad_here;
              total_states = cs.total_states + stt;
              acc_stats = st :: cs.acc_stats;
              acc_detail = detail :: cs.acc_detail;
            }
          in
          if g.E.complete then begin
            let cs = finish_config ~cacheable:true cs in
            if cs.idx >= ncfg then finalize cs else Yield (Check_cursor cs)
          end
          else begin
            match st.Check.Checker_stats.stop with
            | Check.Checker_stats.Deadline ->
              (* the job deadline expired: judge the explored prefix and
                 end the whole job (remaining configs are not attempted) *)
              let cs = finish_config ~cacheable:false cs in
              finalize { cs with saw_deadline = true; truncated = true }
            | Check.Checker_stats.Budget
              when (match budget with Some b -> stt >= b | None -> false) ->
              (* the per-config state budget: prefix verdict, move on *)
              let cs = finish_config ~cacheable:false cs in
              let cs = { cs with truncated = true } in
              if cs.idx >= ncfg then finalize cs else Yield (Check_cursor cs)
            | Check.Checker_stats.Budget | Check.Checker_stats.Interrupted ->
              (* preempted at a snapshot boundary (slice quantum or a stop
                 request): yield; a later slice resumes bit-identically *)
              Yield
                (Check_cursor { cs with partial = true; states_done = stt })
            | Check.Checker_stats.Oom
            | Check.Checker_stats.Fault
            | Check.Checker_stats.Disk_full ->
              (* degraded stop: resume from the flushed snapshot if one
                 made it to disk, else restart the config *)
              Yield
                (Check_cursor
                   {
                     cs with
                     partial = Sys.file_exists snapshot;
                     states_done = stt;
                   })
            | Check.Checker_stats.Completed -> assert false
          end
      end
    in
    step cs0
end

module Chk_mutex = MkCheck (Coord.Amutex.P)
module Chk_cmp_mutex = MkCheck (Coord.Cmp_mutex.P)
module Chk_consensus = MkCheck (Coord.Consensus.P)
module Chk_election = MkCheck (Coord.Election.P)
module Chk_renaming = MkCheck (Coord.Renaming.P)
module Chk_ccp = MkCheck (Coord.Ccp.P)

let check_slice ?cache ?quantum ?deadline_left_s ?salvage ~snapshot
    (spec : Spec.t) cs =
  let n = spec.Spec.n in
  match spec.Spec.proto with
  | Spec.Mutex ->
    let judge (g : Chk_mutex.E.graph) =
      let f = Chk_mutex.E.to_flat g in
      [
        ("mutual-exclusion", Check.Mutex_props.mutual_exclusion f = None);
        ("deadlock-freedom", Check.Mutex_props.deadlock_freedom f = None);
      ]
    in
    Chk_mutex.run_slice ?cache ?quantum ?deadline_left_s ?salvage ~snapshot
      ~judge ~inputs:(Array.make n ()) spec cs
  | Spec.Cmp_mutex ->
    let judge (g : Chk_cmp_mutex.E.graph) =
      let f = Chk_cmp_mutex.E.to_flat g in
      [
        ("mutual-exclusion", Check.Mutex_props.mutual_exclusion f = None);
        ("deadlock-freedom", Check.Mutex_props.deadlock_freedom f = None);
      ]
    in
    Chk_cmp_mutex.run_slice ?cache ?quantum ?deadline_left_s ?salvage
      ~snapshot ~judge ~inputs:(Array.make n ()) spec cs
  | Spec.Consensus ->
    let module C = Chk_consensus in
    let inputs = Array.init n (fun i -> (i + 1) * 100) in
    let judge (g : C.E.graph) =
      [
        ( "agreement",
          Check.Props.agreement ~equal:Int.equal ~statuses:C.E.statuses
            g.C.E.states
          = None );
        ( "validity",
          Check.Props.validity
            ~allowed:(fun v -> Array.exists (( = ) v) inputs)
            ~statuses:C.E.statuses g.C.E.states
          = None );
        ("of-termination", C.E.check_obstruction_freedom g = None);
      ]
    in
    C.run_slice ?cache ?quantum ?deadline_left_s ?salvage ~snapshot ~judge
      ~inputs spec cs
  | Spec.Election ->
    let module C = Chk_election in
    let ids = ids_of n in
    let judge (g : C.E.graph) =
      [
        ( "one-leader",
          Check.Props.agreement ~equal:Int.equal ~statuses:C.E.statuses
            g.C.E.states
          = None );
        ( "leader-participates",
          Check.Props.validity
            ~allowed:(fun v -> Array.exists (( = ) v) ids)
            ~statuses:C.E.statuses g.C.E.states
          = None );
        ("of-termination", C.E.check_obstruction_freedom g = None);
      ]
    in
    C.run_slice ?cache ?quantum ?deadline_left_s ?salvage ~snapshot ~judge
      ~inputs:(Array.make n ()) spec cs
  | Spec.Renaming ->
    let module C = Chk_renaming in
    let judge (g : C.E.graph) =
      [
        ( "uniqueness",
          Check.Props.distinct_outputs ~equal:Int.equal ~statuses:C.E.statuses
            g.C.E.states
          = None );
        ( "adaptivity",
          Check.Props.adaptive_range ~name_of:Fun.id ~statuses:C.E.statuses
            g.C.E.states
          = None );
        ("of-termination", C.E.check_obstruction_freedom g = None);
      ]
    in
    C.run_slice ?cache ?quantum ?deadline_left_s ?salvage ~snapshot ~judge
      ~inputs:(Array.make n ()) spec cs
  | Spec.Ccp ->
    let module C = Chk_ccp in
    let judge (g : C.E.graph) =
      (* agreement is on the physical register chosen *)
      let safe = ref true in
      Array.iter
        (fun st ->
          let phys =
            Array.to_list
              (Array.mapi
                 (fun p l ->
                   match Coord.Ccp.P.status l with
                   | Protocol.Decided loc ->
                     Some (Naming.apply g.C.E.cfg.namings.(p) loc)
                   | _ -> None)
                 st.C.E.locals)
            |> List.filter_map Fun.id
          in
          match phys with
          | a :: rest -> if List.exists (( <> ) a) rest then safe := false
          | [] -> ())
        g.C.E.states;
      [ ("same-register", !safe) ]
    in
    C.run_slice ?cache ?quantum ?deadline_left_s ?salvage ~snapshot ~judge
      ~inputs:(Array.make n ()) spec cs

(* ------------------------------------------------------------------ *)
(* fuzz jobs: the coordctl differential property suites               *)
(* ------------------------------------------------------------------ *)

module MkFuzz (P : Protocol.PROTOCOL) = struct
  module F = Check.Fuzz.Make (P)

  let run ~properties ~gen_inputs ~deterministic ?deadline_left_s
      (spec : Spec.t) : outcome =
    let attempts = Option.value spec.Spec.attempts ~default:200 in
    let r =
      F.run ~seed:spec.Spec.seed ~attempts ?time_budget:deadline_left_s
        ~max_states:(Option.value spec.Spec.max_states ~default:20_000)
        ~fixed:(Some spec.Spec.n, Some spec.Spec.m) ~deterministic
        ~properties ~gen_inputs ()
    in
    let detail =
      str "attempts=%d agreed=%d violations=%d undecided=%d" r.F.attempts
        r.F.agreed r.F.violations r.F.undecided
    in
    let verdict, detail =
      match r.F.disagreement with
      | Some d ->
        ( Disagreement,
          str "%s; DISAGREEMENT at attempt %d (%s): %s" detail d.F.attempt
            d.F.subject d.F.detail )
      | None ->
        if r.F.violations > 0 then (Violation, detail) else (Pass, detail)
    in
    {
      verdict;
      detail;
      configs = 1;
      cached_configs = 0;
      states = 0;
      explored = 0;
      stats = [];
    }
end

module Fz_mutex = MkFuzz (Coord.Amutex.P)
module Fz_cmp_mutex = MkFuzz (Coord.Cmp_mutex.P)
module Fz_consensus = MkFuzz (Coord.Consensus.P)
module Fz_election = MkFuzz (Coord.Election.P)
module Fz_renaming = MkFuzz (Coord.Renaming.P)
module Fz_ccp = MkFuzz (Coord.Ccp.P)

let unit_inputs _rng ~n = Array.make n ()

(* Election's leader-participates and ccp's same-register need instance
   data (the ids, the namings) on both the graph and the runtime side —
   mirrored from coordctl so serve and the CLI fuzz the same contracts. *)
let election_properties =
  let module D = Fz_election in
  [
    { (D.F.agreement ~equal:Int.equal) with D.F.name = "one-leader" };
    {
      D.F.name = "leader-participates";
      check =
        (fun g _ ->
          Option.map
            (fun (d : int Check.Props.decided) ->
              D.F.State d.Check.Props.state)
            (Check.Props.validity
               ~allowed:(fun v -> Array.exists (( = ) v) g.D.F.E.cfg.ids)
               ~statuses:D.F.E.statuses g.D.F.E.states));
      rt_check =
        Some
          (fun _ rt ->
            let ds = D.F.S.R.decisions rt in
            let ids =
              Array.init (Array.length ds) (fun i -> D.F.S.R.id_of rt i)
            in
            Array.exists
              (function
                | Some v -> not (Array.exists (( = ) v) ids)
                | None -> false)
              ds);
    };
  ]

let ccp_properties =
  let module D = Fz_ccp in
  [
    {
      D.F.name = "same-register";
      check =
        (fun g _ ->
          let bad = ref None in
          Array.iteri
            (fun si st ->
              if !bad = None then begin
                let phys =
                  List.filter_map Fun.id
                    (Array.to_list
                       (Array.mapi
                          (fun p status ->
                            match status with
                            | Protocol.Decided loc ->
                              Some (Naming.apply g.D.F.E.cfg.namings.(p) loc)
                            | _ -> None)
                          (D.F.E.statuses st)))
                in
                match phys with
                | a :: rest when List.exists (( <> ) a) rest ->
                  bad := Some (D.F.State si)
                | _ -> ()
              end)
            g.D.F.E.states;
          !bad);
      rt_check =
        Some
          (fun _ rt ->
            let n = D.F.S.R.n rt in
            let phys =
              List.filter_map
                (fun i ->
                  match D.F.S.R.status rt i with
                  | Protocol.Decided loc ->
                    Some (Naming.apply (D.F.S.R.naming_of rt i) loc)
                  | _ -> None)
                (List.init n Fun.id)
            in
            match phys with
            | a :: rest -> List.exists (( <> ) a) rest
            | [] -> false);
    };
  ]

let fuzz_run ?deadline_left_s (spec : Spec.t) : outcome =
  match spec.Spec.proto with
  | Spec.Mutex ->
    Fz_mutex.run
      ~properties:[ Fz_mutex.F.mutex_me; Fz_mutex.F.mutex_df ]
      ~gen_inputs:unit_inputs ~deterministic:true ?deadline_left_s spec
  | Spec.Cmp_mutex ->
    Fz_cmp_mutex.run
      ~properties:[ Fz_cmp_mutex.F.mutex_me; Fz_cmp_mutex.F.mutex_df ]
      ~gen_inputs:unit_inputs ~deterministic:true ?deadline_left_s spec
  | Spec.Consensus ->
    Fz_consensus.run
      ~properties:
        [
          Fz_consensus.F.agreement ~equal:Int.equal;
          Fz_consensus.F.validity ~allowed:(fun inputs v ->
              Array.exists (( = ) v) inputs);
        ]
      ~gen_inputs:(fun rng ~n -> Array.init n (fun _ -> 100 * (1 + Rng.int rng n)))
      ~deterministic:true ?deadline_left_s spec
  | Spec.Election ->
    Fz_election.run ~properties:election_properties ~gen_inputs:unit_inputs
      ~deterministic:true ?deadline_left_s spec
  | Spec.Renaming ->
    Fz_renaming.run
      ~properties:
        [
          {
            (Fz_renaming.F.distinct_outputs ~equal:Int.equal) with
            Fz_renaming.F.name = "uniqueness";
          };
        ]
      ~gen_inputs:unit_inputs ~deterministic:true ?deadline_left_s spec
  | Spec.Ccp ->
    Fz_ccp.run ~properties:ccp_properties ~gen_inputs:unit_inputs
      ~deterministic:false ?deadline_left_s spec

(* ------------------------------------------------------------------ *)
(* hunt jobs                                                           *)
(* ------------------------------------------------------------------ *)

module MkHunt (P : Protocol.PROTOCOL) = struct
  module H = Check.Hunt.Make (P)

  let run ~violation ~(inputs : P.input list) (spec : Spec.t) : outcome =
    let attempts = Option.value spec.Spec.attempts ~default:400 in
    let o, _trace =
      H.hunt ~strategy:spec.Spec.strategy ~attempts
        ~steps_per_attempt:spec.Spec.steps ~seed:spec.Spec.seed ~violation
        ~ids:(Array.to_list (ids_of spec.Spec.n))
        ~inputs ~m:spec.Spec.m ()
    in
    let base =
      {
        verdict = Pass;
        detail = "";
        configs = 1;
        cached_configs = 0;
        states = 0;
        explored = 0;
        stats = [];
      }
    in
    match o.Check.Hunt.witness_seed with
    | Some s ->
      {
        base with
        verdict = Violation;
        detail =
          str "witness seed %d after %d attempts (%d steps)" s
            o.Check.Hunt.attempts_made o.Check.Hunt.steps_taken;
      }
    | None ->
      {
        base with
        detail =
          str "no violation in %d attempts (%d steps)"
            o.Check.Hunt.attempts_made o.Check.Hunt.steps_taken;
      }
end

module Hn_mutex = MkHunt (Coord.Amutex.P)
module Hn_cmp_mutex = MkHunt (Coord.Cmp_mutex.P)
module Hn_consensus = MkHunt (Coord.Consensus.P)
module Hn_election = MkHunt (Coord.Election.P)
module Hn_renaming = MkHunt (Coord.Renaming.P)
module Hn_ccp = MkHunt (Coord.Ccp.P)

let hunt_run (spec : Spec.t) : outcome =
  let n = spec.Spec.n in
  let units = List.init n (fun _ -> ()) in
  match spec.Spec.proto with
  | Spec.Mutex ->
    Hn_mutex.run ~violation:Hn_mutex.H.mutex_violation ~inputs:units spec
  | Spec.Cmp_mutex ->
    Hn_cmp_mutex.run ~violation:Hn_cmp_mutex.H.mutex_violation ~inputs:units
      spec
  | Spec.Consensus ->
    Hn_consensus.run
      ~violation:(Hn_consensus.H.disagreement ~equal:Int.equal)
      ~inputs:(List.init n (fun i -> (i + 1) * 100))
      spec
  | Spec.Election ->
    Hn_election.run
      ~violation:(Hn_election.H.disagreement ~equal:Int.equal)
      ~inputs:units spec
  | Spec.Renaming ->
    (* uniqueness: a violation is two EQUAL decided names. [disagreement]
       fires on a pair the predicate calls non-equal, so handing it (<>)
       as "equal" makes it fire exactly on duplicates. *)
    Hn_renaming.run
      ~violation:(Hn_renaming.H.disagreement ~equal:(fun a b -> a <> b))
      ~inputs:units spec
  | Spec.Ccp ->
    let violation rt =
      let module R = Hn_ccp.H.R in
      let n = R.n rt in
      let phys =
        List.filter_map
          (fun i ->
            match R.status rt i with
            | Protocol.Decided loc -> Some (Naming.apply (R.naming_of rt i) loc)
            | _ -> None)
          (List.init n Fun.id)
      in
      match phys with
      | a :: rest -> List.exists (( <> ) a) rest
      | [] -> false
    in
    Hn_ccp.run ~violation ~inputs:units spec

(* ------------------------------------------------------------------ *)
(* dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let run_slice ?cache ?quantum ?deadline_left_s ?(salvage = false) ~snapshot
    (spec : Spec.t) (p : progress) : slice =
  match spec.Spec.kind with
  | Spec.Check ->
    let cs = match p with Start -> init_cs | Check_cursor cs -> cs in
    check_slice ?cache ?quantum ?deadline_left_s ~salvage ~snapshot spec cs
  | Spec.Fuzz | Spec.Hunt -> (
    ignore quantum;
    ignore snapshot;
    let id = Spec.ident spec in
    let key = Digest.string id in
    match Option.bind cache (fun c -> Cache.find c ~key ~ident:id) with
    | Some e ->
      Done
        {
          verdict = verdict_of_exit ~detail:e.Cache.detail e.Cache.exit_code;
          detail = e.Cache.detail ^ " [cached]";
          configs = 1;
          cached_configs = 1;
          states = e.Cache.n_states;
          explored = 0;
          stats = [];
        }
    | None ->
      let o =
        match spec.Spec.kind with
        | Spec.Fuzz -> fuzz_run ?deadline_left_s spec
        | _ -> hunt_run spec
      in
      (* a fuzz campaign cut short by a wall-clock budget is not a
         deterministic function of its spec — don't memoize it *)
      let cacheable =
        (match spec.Spec.kind with
        | Spec.Fuzz -> deadline_left_s = None
        | _ -> true)
        && match o.verdict with Failed _ -> false | _ -> true
      in
      if cacheable then
        Option.iter
          (fun c ->
            Cache.add c ~key
              {
                Cache.ident = id;
                verdict = verdict_tag o.verdict;
                exit_code = verdict_exit o.verdict;
                detail = o.detail;
                n_states = o.states;
                stats = None;
              })
          cache;
      Done o)
