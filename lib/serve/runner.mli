(** Job execution: one spec → one verdict, in preemptible slices.

    A check job sweeps the same naming assignments as [coordctl check]
    (all [m!] relative namings for [n = 2, m <= 5]; the rotation tuple
    otherwise) and judges each explored graph with the same per-protocol
    property set, so a serve verdict is exchangeable with a CLI exit
    code. The job runs as a sequence of {e slices}: each slice explores
    at most [quantum] fresh states of the current configuration, then
    yields with a COORDSNAP snapshot on disk. Because a resumed
    exploration is bit-identical to an uninterrupted one (DESIGN.md §6),
    preemption is free — the final verdict and per-config stats (mod
    clock) cannot depend on where the scheduler cut.

    Fuzz and hunt jobs are not preemptible (their engines own their inner
    loop); they run in a single slice.

    Completed configurations are memoized in the shared {!Cache}; a
    cache-served configuration contributes its original stats and zero
    freshly explored states. *)

type verdict =
  | Pass
  | Violation
  | Truncated  (** a state budget truncated some exploration; prefix clean *)
  | Deadline  (** the job deadline expired; prefix clean *)
  | Disagreement  (** fuzz: engines diverged — a checker bug *)
  | Failed of string  (** infrastructure failure / unsupported combination *)

val verdict_exit : verdict -> int
(** The [coordctl] exit-code contract: 0 pass, 1 violation, 3 truncated,
    5 disagreement, 6 deadline, 7 failed. *)

val verdict_tag : verdict -> string

type outcome = {
  verdict : verdict;
  detail : string;  (** per-config verdict lines, [; ]-joined *)
  configs : int;  (** naming assignments in the sweep (1 for fuzz/hunt) *)
  cached_configs : int;  (** of which answered from the cache *)
  states : int;  (** total graph states across configs, cached included *)
  explored : int;  (** states freshly interned by {e this} execution *)
  stats : Check.Checker_stats.t list;  (** per config, in sweep order *)
}

type progress
(** Cursor of a partially-run check job: which configuration is current,
    how many of its states the snapshot covers, accumulated verdicts. *)

val start : progress
(** The cursor before any slice has run. *)

val progress_explored : progress -> int
(** Fresh states explored so far (for pool accounting across slices). *)

val after_crash : snapshot:string -> progress -> progress
(** Repair the cursor after a slice died mid-exploration: if the snapshot
    file survived, the next slice resumes (with salvage) from it;
    otherwise the current configuration restarts from scratch. Completed
    configurations are never lost — their verdicts live in the cursor. *)

type slice = Done of outcome | Yield of progress

val run_slice :
  ?cache:Cache.t ->
  ?quantum:int ->
  ?deadline_left_s:float ->
  ?salvage:bool ->
  snapshot:string ->
  Spec.t ->
  progress ->
  slice
(** Run one slice. [quantum] bounds fresh states explored per slice for
    check jobs (no bound: the job runs to completion in one slice).
    [deadline_left_s] is the remaining wall budget — it reaches the
    explorer's [~deadline_s], so an expired deadline still stops
    gracefully at a generation boundary with the snapshot flushed.
    Consecutive cache hits are folded into the same slice, so a job whose
    every configuration is cached completes in one slice with
    [explored = 0]. Transient infrastructure failures (armed
    {!Resilience} faults, OOM, corrupt snapshot) escape as exceptions —
    the {!Pool} owns the retry policy. *)
