let str = Printf.sprintf

type kind = Check | Fuzz | Hunt
type proto = Mutex | Cmp_mutex | Consensus | Election | Renaming | Ccp
type engine = Seq | Par of Check.Explore.engine

type t = {
  kind : kind;
  proto : proto;
  n : int;
  m : int;
  reduction : Check.Explore.reduction;
  engine : engine;
  max_states : int option;
  deadline_s : float option;
  priority : int;
  attempts : int option;
  seed : int;
  steps : int;
  strategy : Check.Hunt.strategy;
}

let default_m proto ~n =
  match proto with
  | Mutex -> 3
  | Cmp_mutex -> 2
  | Consensus | Election | Renaming -> (2 * n) - 1
  | Ccp -> 2

let make ?(n = 2) ?m ?(reduction = Check.Explore.Full) ?(engine = Seq)
    ?max_states ?deadline_s ?(priority = 0) ?attempts ?(seed = 1)
    ?(steps = 2000) ?(strategy = Check.Hunt.Bursts) kind proto =
  let m = match m with Some m -> m | None -> default_m proto ~n in
  {
    kind;
    proto;
    n;
    m;
    reduction;
    engine;
    max_states;
    deadline_s;
    priority;
    attempts;
    seed;
    steps;
    strategy;
  }

let kind_to_string = function
  | Check -> "check"
  | Fuzz -> "fuzz"
  | Hunt -> "hunt"

let kind_of_string = function
  | "check" -> Ok Check
  | "fuzz" -> Ok Fuzz
  | "hunt" -> Ok Hunt
  | s -> Error (str "unknown kind %S (expected check|fuzz|hunt)" s)

let proto_to_string = function
  | Mutex -> "mutex"
  | Cmp_mutex -> "cmp-mutex"
  | Consensus -> "consensus"
  | Election -> "election"
  | Renaming -> "renaming"
  | Ccp -> "ccp"

let proto_of_string = function
  | "mutex" -> Ok Mutex
  | "cmp-mutex" -> Ok Cmp_mutex
  | "consensus" -> Ok Consensus
  | "election" -> Ok Election
  | "renaming" -> Ok Renaming
  | "ccp" -> Ok Ccp
  | s ->
    Error
      (str
         "unknown protocol %S (expected \
          mutex|cmp-mutex|consensus|election|renaming|ccp)"
         s)

let engine_to_string = function
  | Seq -> "seq"
  | Par e -> Check.Explore.engine_tag e

let engine_of_string = function
  | "seq" -> Ok Seq
  | "sharded" -> Ok (Par Check.Explore.Sharded)
  | "barrier" -> Ok (Par Check.Explore.Barrier)
  | s -> Error (str "unknown engine %S (expected seq|sharded|barrier)" s)

let strategy_to_string = function
  | Check.Hunt.Uniform -> "uniform"
  | Check.Hunt.Bursts -> "bursts"
  | Check.Hunt.Chaos -> "chaos"

let strategy_of_string = function
  | "uniform" -> Ok Check.Hunt.Uniform
  | "bursts" -> Ok Check.Hunt.Bursts
  | "chaos" -> Ok Check.Hunt.Chaos
  | s -> Error (str "unknown strategy %S (expected uniform|bursts|chaos)" s)

(* Every result-affecting field, in a fixed order; priority excluded. *)
let ident t =
  let opt = function None -> "-" | Some v -> string_of_int v in
  let base =
    str "kind=%s proto=%s n=%d m=%d reduction=%s engine=%s max_states=%s \
         deadline=%s"
      (kind_to_string t.kind) (proto_to_string t.proto) t.n t.m
      (Check.Explore.reduction_tag t.reduction)
      (engine_to_string t.engine) (opt t.max_states)
      (match t.deadline_s with None -> "-" | Some d -> str "%g" d)
  in
  match t.kind with
  | Check -> base
  | Fuzz -> str "%s attempts=%s seed=%d" base (opt t.attempts) t.seed
  | Hunt ->
    str "%s attempts=%s seed=%d steps=%d strategy=%s" base (opt t.attempts)
      t.seed t.steps
      (strategy_to_string t.strategy)

let to_line t = str "%s priority=%d" (ident t) t.priority

let kv_of_string s =
  let lines = String.split_on_char '\n' s in
  (* a single-line form "k=v k=v ..." is also accepted: split each line
     on spaces first, then each token on '='; but values like "deadline
     = 1.5" with spaces around '=' must survive, so normalize per line. *)
  let pairs = ref [] in
  let err = ref None in
  List.iter
    (fun line ->
      if !err = None then begin
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line <> "" then begin
          let tokens =
            (* tokens are "k=v" words; spaces around '=' are tolerated by
               re-joining "k" "=" "v" shaped fragments *)
            String.split_on_char ' ' line
            |> List.filter (fun t -> t <> "")
          in
          let rec join acc = function
            | [] -> List.rev acc
            | k :: "=" :: v :: rest -> join ((k ^ "=" ^ v) :: acc) rest
            | t :: "=" :: rest -> join ((t ^ "=") :: acc) rest
            | t :: rest when String.length t > 0 && t.[0] = '=' -> (
              match acc with
              | prev :: acc' -> join ((prev ^ t) :: acc') rest
              | [] -> join (t :: acc) rest)
            | t :: rest -> join (t :: acc) rest
          in
          List.iter
            (fun tok ->
              match String.index_opt tok '=' with
              | Some i ->
                let k = String.trim (String.sub tok 0 i) in
                let v =
                  String.trim
                    (String.sub tok (i + 1) (String.length tok - i - 1))
                in
                if k = "" then err := Some (str "malformed pair %S" tok)
                else pairs := (k, v) :: !pairs
              | None -> err := Some (str "malformed pair %S (expected k=v)" tok))
            (join [] tokens)
        end
      end)
    lines;
  match !err with Some e -> Error e | None -> Ok (List.rev !pairs)

let parse s =
  let ( let* ) = Result.bind in
  let* kv = kv_of_string s in
  let find k = List.assoc_opt k kv in
  let int_field k v cont =
    match int_of_string_opt v with
    | Some i -> cont i
    | None -> Error (str "%s: expected an integer, got %S" k v)
  in
  let* kind =
    match find "kind" with
    | Some v -> kind_of_string v
    | None -> Error "missing required key: kind"
  in
  let* proto =
    match find "proto" with
    | Some v -> proto_of_string v
    | None -> Error "missing required key: proto"
  in
  let rec fold spec = function
    | [] -> Ok spec
    | ("kind", _) :: rest | ("proto", _) :: rest -> fold spec rest
    | ("n", v) :: rest ->
      int_field "n" v (fun n ->
          fold { spec with n; m = default_m proto ~n } rest)
    | ("m", v) :: rest -> int_field "m" v (fun m -> fold { spec with m } rest)
    | ("reduction", v) :: rest -> (
      match v with
      | "full" -> fold { spec with reduction = Check.Explore.Full } rest
      | "canon" -> fold { spec with reduction = Check.Explore.Canon } rest
      | _ -> Error (str "unknown reduction %S (expected full|canon)" v))
    | ("engine", v) :: rest ->
      let* engine = engine_of_string v in
      fold { spec with engine } rest
    | ("max_states", v) :: rest ->
      if v = "-" then fold { spec with max_states = None } rest
      else
        int_field "max_states" v (fun b ->
            fold { spec with max_states = Some b } rest)
    | ("deadline", v) :: rest -> (
      if v = "-" then fold { spec with deadline_s = None } rest
      else
        match float_of_string_opt v with
        | Some d -> fold { spec with deadline_s = Some d } rest
        | None -> Error (str "deadline: expected seconds, got %S" v))
    | ("priority", v) :: rest ->
      int_field "priority" v (fun priority -> fold { spec with priority } rest)
    | ("attempts", v) :: rest ->
      if v = "-" then fold { spec with attempts = None } rest
      else
        int_field "attempts" v (fun a ->
            fold { spec with attempts = Some a } rest)
    | ("seed", v) :: rest ->
      int_field "seed" v (fun seed -> fold { spec with seed } rest)
    | ("steps", v) :: rest ->
      int_field "steps" v (fun steps -> fold { spec with steps } rest)
    | ("strategy", v) :: rest ->
      let* strategy = strategy_of_string v in
      fold { spec with strategy } rest
    | (k, _) :: _ -> Error (str "unknown key %S" k)
  in
  (* m's default depends on n, so apply n first (fold handles re-default),
     then let an explicit m override. *)
  let base = make kind proto in
  let kv_n_first =
    List.stable_sort
      (fun (a, _) (b, _) ->
        let rank = function "n" -> 0 | "m" -> 1 | _ -> 2 in
        compare (rank a) (rank b))
      kv
  in
  fold base kv_n_first
