(** Job specifications for the verification service.

    A spec is a small key=value document (one pair per line, [#] comments
    allowed) describing one verification job: which protocol to put under
    which kind of scrutiny (exhaustive check, differential fuzz, or
    randomized hunt), at what size, with what budgets. The same record is
    built programmatically by the sweep engine ({!Sweep.expand}) — the
    textual form exists so jobs can be dropped into a daemon's spool
    directory ({!Daemon}) from anywhere.

    {!ident} renders the result-relevant fields canonically; two specs
    with equal idents describe the same experiment and may share a cached
    verdict. Scheduling knobs (priority) are deliberately excluded. *)

type kind = Check | Fuzz | Hunt
type proto = Mutex | Cmp_mutex | Consensus | Election | Renaming | Ccp
type engine = Seq | Par of Check.Explore.engine

type t = {
  kind : kind;
  proto : proto;
  n : int;  (** processes (default 2) *)
  m : int;  (** registers (default: per-protocol, as [coordctl check]) *)
  reduction : Check.Explore.reduction;
  engine : engine;  (** check jobs: which explorer runs the config *)
  max_states : int option;  (** per-configuration state budget *)
  deadline_s : float option;  (** whole-job wall-clock budget *)
  priority : int;  (** higher runs first (default 0); not part of {!ident} *)
  attempts : int option;  (** fuzz / hunt attempt count *)
  seed : int;  (** fuzz / hunt seed (default 1) *)
  steps : int;  (** hunt steps per attempt (default 2000) *)
  strategy : Check.Hunt.strategy;  (** hunt schedule strategy *)
}

val default_m : proto -> n:int -> int
(** The [coordctl check] default register count: mutex 3, cmp-mutex 2,
    consensus / election / renaming [2n-1], ccp 2. *)

val make :
  ?n:int ->
  ?m:int ->
  ?reduction:Check.Explore.reduction ->
  ?engine:engine ->
  ?max_states:int ->
  ?deadline_s:float ->
  ?priority:int ->
  ?attempts:int ->
  ?seed:int ->
  ?steps:int ->
  ?strategy:Check.Hunt.strategy ->
  kind ->
  proto ->
  t

val kind_to_string : kind -> string
val proto_to_string : proto -> string
val proto_of_string : string -> (proto, string) result
val engine_to_string : engine -> string

val ident : t -> string
(** Canonical one-line identity over every result-affecting field
    (everything except [priority]). Used for sweep-cell deduplication and
    as the fuzz/hunt cache key preimage. *)

val to_line : t -> string
(** [ident] plus the scheduling fields — a parseable round-trip form. *)

val parse : string -> (t, string) result
(** Parse a key=value document (or single line). Recognized keys: [kind],
    [proto], [n], [m], [reduction], [engine], [max_states], [deadline],
    [priority], [attempts], [seed], [steps], [strategy]. [kind] and
    [proto] are required; anything unknown is an error. *)

val kv_of_string : string -> ((string * string) list, string) result
(** The underlying tokenizer: split lines, drop blanks and [#] comments,
    parse [key = value] pairs (value may contain spaces). Exposed for the
    sweep-spec parser, which shares the format. *)
