let str = Printf.sprintf

type spec = {
  name : string;
  kind : Spec.kind;
  protos : Spec.proto list;
  ns : int list;
  ms : int list option;
  reductions : Check.Explore.reduction list;
  engines : Spec.engine list;
  fault_seeds : int option list;
  seeds : int list;
  strategies : Check.Hunt.strategy list;
  max_states : int option;
  attempts : int option;
  steps : int option;
  deadline_s : float option;
  expect_default : string option;
  expect_overrides : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* parsing: one "key = value" per line, list values comma-separated    *)
(* ------------------------------------------------------------------ *)

let kv_lines s =
  let err = ref None in
  let pairs =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           let line = String.trim line in
           if line = "" then None
           else
             match String.index_opt line '=' with
             | None ->
               if !err = None then
                 err := Some (str "malformed line %S (expected key = value)" line);
               None
             | Some i ->
               let k = String.trim (String.sub line 0 i) in
               let v =
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1))
               in
               Some (k, v))
  in
  match !err with Some e -> Error e | None -> Ok pairs

let split_list v =
  String.split_on_char ',' v |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> ( match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] l

let int_list k v =
  map_result
    (fun s ->
      match int_of_string_opt s with
      | Some i -> Ok i
      | None -> Error (str "%s: expected an integer, got %S" k s))
    (split_list v)

let verdict_tags =
  [ "pass"; "violation"; "truncated"; "deadline"; "disagreement"; "failed" ]

let parse s =
  let ( let* ) = Result.bind in
  let* kv = kv_lines s in
  let find k = List.assoc_opt k kv in
  let* kind =
    match find "kind" with
    | None | Some "check" -> Ok Spec.Check
    | Some "fuzz" -> Ok Spec.Fuzz
    | Some "hunt" -> Ok Spec.Hunt
    | Some v -> Error (str "unknown kind %S (expected check|fuzz|hunt)" v)
  in
  let* protos =
    match find "protocols" with
    | None -> Error "missing required key: protocols"
    | Some v -> map_result Spec.proto_of_string (split_list v)
  in
  let* ns = match find "n" with None -> Ok [ 2 ] | Some v -> int_list "n" v in
  let* ms =
    match find "m" with
    | None -> Ok None
    | Some v -> Result.map Option.some (int_list "m" v)
  in
  let* reductions =
    match find "reductions" with
    | None -> Ok [ Check.Explore.Full ]
    | Some v ->
      map_result
        (function
          | "full" -> Ok Check.Explore.Full
          | "canon" -> Ok Check.Explore.Canon
          | r -> Error (str "unknown reduction %S" r))
        (split_list v)
  in
  let* engines =
    match find "engines" with
    | None -> Ok [ Spec.Seq ]
    | Some v ->
      map_result
        (function
          | "seq" -> Ok Spec.Seq
          | "sharded" -> Ok (Spec.Par Check.Explore.Sharded)
          | "barrier" -> Ok (Spec.Par Check.Explore.Barrier)
          | e -> Error (str "unknown engine %S" e))
        (split_list v)
  in
  let* fault_seeds =
    match find "faults" with
    | None -> Ok [ None ]
    | Some v ->
      map_result
        (fun s ->
          if s = "none" then Ok None
          else
            match int_of_string_opt s with
            | Some i -> Ok (Some i)
            | None -> Error (str "faults: expected none or a seed, got %S" s))
        (split_list v)
  in
  let* seeds =
    match find "seeds" with None -> Ok [ 1 ] | Some v -> int_list "seeds" v
  in
  let* strategies =
    match find "strategies" with
    | None -> Ok [ Check.Hunt.Bursts ]
    | Some v ->
      map_result
        (function
          | "uniform" -> Ok Check.Hunt.Uniform
          | "bursts" -> Ok Check.Hunt.Bursts
          | "chaos" -> Ok Check.Hunt.Chaos
          | s -> Error (str "unknown strategy %S" s))
        (split_list v)
  in
  let int_opt k =
    match find k with
    | None -> Ok None
    | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok (Some i)
      | None -> Error (str "%s: expected an integer, got %S" k v))
  in
  let* max_states = int_opt "max_states" in
  let* attempts = int_opt "attempts" in
  let* steps = int_opt "steps" in
  let* deadline_s =
    match find "deadline" with
    | None -> Ok None
    | Some v -> (
      match float_of_string_opt v with
      | Some d -> Ok (Some d)
      | None -> Error (str "deadline: expected seconds, got %S" v))
  in
  let check_tag t =
    if List.mem t verdict_tags then Ok t
    else
      Error
        (str "expect: unknown verdict %S (expected %s)" t
           (String.concat "|" verdict_tags))
  in
  let* expect_default =
    match find "expect" with
    | None -> Ok None
    | Some v -> Result.map Option.some (check_tag v)
  in
  let* expect_overrides =
    map_result
      (fun (k, v) ->
        let prefix = String.sub k 7 (String.length k - 7) in
        Result.map (fun t -> (prefix, t)) (check_tag v))
      (List.filter
         (fun (k, _) ->
           String.length k > 7 && String.sub k 0 7 = "expect.")
         kv)
  in
  let known k =
    List.mem k
      [
        "name"; "kind"; "protocols"; "n"; "m"; "reductions"; "engines";
        "faults"; "seeds"; "strategies"; "max_states"; "attempts"; "steps";
        "deadline"; "expect";
      ]
    || String.length k > 7 && String.sub k 0 7 = "expect."
  in
  let* () =
    match List.find_opt (fun (k, _) -> not (known k)) kv with
    | Some (k, _) -> Error (str "unknown key %S" k)
    | None -> Ok ()
  in
  Ok
    {
      name = (match find "name" with Some n -> n | None -> "sweep");
      kind;
      protos;
      ns;
      ms;
      reductions;
      engines;
      fault_seeds;
      seeds;
      strategies;
      max_states;
      attempts;
      steps;
      deadline_s;
      expect_default;
      expect_overrides;
    }

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> parse contents

(* ------------------------------------------------------------------ *)
(* expansion                                                           *)
(* ------------------------------------------------------------------ *)

type cell = { label : string; job : Spec.t; fault_seed : int option }

let strategy_tag = function
  | Check.Hunt.Uniform -> "uniform"
  | Check.Hunt.Bursts -> "bursts"
  | Check.Hunt.Chaos -> "chaos"

let expand s =
  let seen = Hashtbl.create 32 in
  let cells = ref [] in
  List.iter
    (fun proto ->
      List.iter
        (fun n ->
          let ms =
            match s.ms with Some ms -> ms | None -> [ Spec.default_m proto ~n ]
          in
          List.iter
            (fun m ->
              List.iter
                (fun reduction ->
                  List.iter
                    (fun engine ->
                      List.iter
                        (fun fault_seed ->
                          let seeds =
                            match s.kind with
                            | Spec.Check -> [ 1 ]
                            | _ -> s.seeds
                          in
                          List.iter
                            (fun seed ->
                              let strategies =
                                match s.kind with
                                | Spec.Hunt -> s.strategies
                                | _ -> [ Check.Hunt.Bursts ]
                              in
                              List.iter
                                (fun strategy ->
                                  let job =
                                    Spec.make ~n ~m ~reduction ~engine
                                      ?max_states:s.max_states
                                      ?deadline_s:s.deadline_s
                                      ?attempts:s.attempts ~seed
                                      ?steps:s.steps ~strategy s.kind proto
                                  in
                                  let label =
                                    let base =
                                      str "%s-n%d-m%d"
                                        (Spec.proto_to_string proto)
                                        n m
                                    in
                                    let base =
                                      match s.kind with
                                      | Spec.Check ->
                                        str "%s-%s%s" base
                                          (Check.Explore.reduction_tag
                                             reduction)
                                          (match engine with
                                          | Spec.Seq -> ""
                                          | Spec.Par _ ->
                                            "-" ^ Spec.engine_to_string engine)
                                      | Spec.Fuzz -> str "%s-fuzz-s%d" base seed
                                      | Spec.Hunt ->
                                        str "%s-hunt-%s-s%d" base
                                          (strategy_tag strategy) seed
                                    in
                                    match fault_seed with
                                    | Some f -> str "%s-f%d" base f
                                    | None -> base
                                  in
                                  let key =
                                    ( Spec.ident job,
                                      match fault_seed with
                                      | Some f -> f
                                      | None -> min_int )
                                  in
                                  if not (Hashtbl.mem seen key) then begin
                                    Hashtbl.replace seen key ();
                                    cells := { label; job; fault_seed } :: !cells
                                  end)
                                strategies)
                            seeds)
                        s.fault_seeds)
                    s.engines)
                s.reductions)
            ms)
        s.ns)
    s.protos;
  List.rev !cells

(* ------------------------------------------------------------------ *)
(* execution and gating                                                *)
(* ------------------------------------------------------------------ *)

type gate = [ `Ok | `Fail of string | `None ]

type row = {
  label : string;
  verdict : string;
  exit_code : int;
  states : int;
  explored : int;
  cached : bool;
  slices : int;
  recoveries : int;
  elapsed_s : float;
  gate : gate;
}

type report = {
  sweep : string;
  rows : row list;
  cells : int;
  gates_failed : int;
  violations : int;
  crashed : int;
  cached_cells : int;
  total_states : int;
  total_explored : int;
  elapsed_s : float;
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let expectation s label =
  (* longest matching override prefix wins; fall back to the default *)
  let best =
    List.fold_left
      (fun acc (prefix, tag) ->
        if starts_with ~prefix label then
          match acc with
          | Some (p, _) when String.length p >= String.length prefix -> acc
          | _ -> Some (prefix, tag)
        else acc)
      None s.expect_overrides
  in
  match best with Some (_, tag) -> Some tag | None -> s.expect_default

let with_plan fault_seed f =
  match fault_seed with
  | None -> f ()
  | Some seed ->
    Resilience.arm (Resilience.plan_of_seed ~domains:1 seed);
    Fun.protect ~finally:Resilience.disarm f

let run ?cache ?(quantum = 50_000) ?state_dir ?(progress = ignore) s =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let state_dir =
    match state_dir with
    | Some d -> d
    | None ->
      Filename.concat
        (Filename.get_temp_dir_name ())
        (str "coordctl-sweep-%d" (Unix.getpid ()))
  in
  let pool = Pool.create ~workers:1 ~quantum ~cache ~state_dir () in
  let cells = expand s in
  let t0 = Check.Checker_stats.now () in
  let rows =
    List.map
      (fun (cell : cell) ->
        progress (str "cell %s: %s" cell.label (Spec.ident cell.job));
        let id = with_plan cell.fault_seed (fun () ->
            let id = Pool.submit pool cell.job in
            Pool.drain pool;
            id)
        in
        let j = Option.get (Pool.job pool id) in
        let verdict, exit_code, states, explored, cached =
          match j.Pool.status with
          | Pool.Finished o ->
            ( Runner.verdict_tag o.Runner.verdict,
              Runner.verdict_exit o.Runner.verdict,
              o.Runner.states,
              o.Runner.explored,
              o.Runner.cached_configs = o.Runner.configs
              && o.Runner.configs > 0 )
          | Pool.Crashed msg -> ("failed: " ^ msg, 7, 0, 0, false)
          | Pool.Cancelled -> ("cancelled", 8, 0, 0, false)
          | Pool.Queued | Pool.Yielded -> ("pending", 9, 0, 0, false)
        in
        let tag = match j.Pool.status with
          | Pool.Crashed _ -> "failed"
          | _ -> verdict
        in
        let gate =
          match expectation s cell.label with
          | None -> `None
          | Some want when want = tag -> `Ok
          | Some want -> `Fail (str "expected %s, got %s" want tag)
        in
        let row =
          {
            label = cell.label;
            verdict;
            exit_code;
            states;
            explored;
            cached;
            slices = j.Pool.slices;
            recoveries = j.Pool.recoveries;
            elapsed_s = j.Pool.ran_s;
            gate;
          }
        in
        progress
          (str "cell %s: %s (states=%d explored=%d%s)%s" cell.label verdict
             states explored
             (if row.cached then ", cached" else "")
             (match gate with
             | `Fail msg -> " GATE FAILED: " ^ msg
             | `Ok | `None -> ""));
        row)
      cells
  in
  {
    sweep = s.name;
    rows;
    cells = List.length rows;
    gates_failed =
      List.length
        (List.filter (fun r -> match r.gate with `Fail _ -> true | _ -> false) rows);
    violations =
      List.length
        (List.filter (fun r -> r.exit_code = 1 || r.exit_code = 5) rows);
    crashed = List.length (List.filter (fun r -> r.exit_code = 7) rows);
    cached_cells = List.length (List.filter (fun r -> r.cached) rows);
    total_states = List.fold_left (fun a r -> a + r.states) 0 rows;
    total_explored = List.fold_left (fun a r -> a + r.explored) 0 rows;
    elapsed_s = Check.Checker_stats.now () -. t0;
  }

let exit_code rp =
  let gated =
    List.exists (fun r -> r.gate <> `None) rp.rows
  in
  if gated then if rp.gates_failed > 0 then 1 else 0
  else if rp.violations > 0 || rp.crashed > 0 then 1
  else 0

(* ------------------------------------------------------------------ *)
(* KPI rendering (strings only; Report.Table lives upstream)           *)
(* ------------------------------------------------------------------ *)

let kpi_header =
  [
    "cell"; "verdict"; "exit"; "states"; "explored"; "cached"; "slices";
    "recov"; "time_s"; "gate";
  ]

let kpi_rows rp =
  List.map
    (fun r ->
      [
        r.label;
        r.verdict;
        string_of_int r.exit_code;
        string_of_int r.states;
        string_of_int r.explored;
        (if r.cached then "yes" else "no");
        string_of_int r.slices;
        string_of_int r.recoveries;
        str "%.2f" r.elapsed_s;
        (match r.gate with
        | `Ok -> "ok"
        | `Fail msg -> "FAIL: " ^ msg
        | `None -> "-");
      ])
    rp.rows

let aggregate_lines rp =
  [
    str "%d cell(s): %d violation(s), %d crash(es), %d gate failure(s)."
      rp.cells rp.violations rp.crashed rp.gates_failed;
    str "%d state(s) total, %d freshly explored; %d cell(s) served from the \
         verdict cache."
      rp.total_states rp.total_explored rp.cached_cells;
    str "wall clock %.2fs." rp.elapsed_s;
  ]

let to_json ~ts rp =
  let b = Buffer.create 1024 in
  Buffer.add_string b "  {\n";
  Buffer.add_string b (str "    \"timestamp\": %S,\n" ts);
  Buffer.add_string b "    \"kind\": \"sweep\",\n";
  Buffer.add_string b (str "    \"sweep\": %S,\n" rp.sweep);
  Buffer.add_string b (str "    \"cells\": %d,\n" rp.cells);
  Buffer.add_string b (str "    \"violations\": %d,\n" rp.violations);
  Buffer.add_string b (str "    \"crashed\": %d,\n" rp.crashed);
  Buffer.add_string b (str "    \"gates_failed\": %d,\n" rp.gates_failed);
  Buffer.add_string b (str "    \"cached_cells\": %d,\n" rp.cached_cells);
  Buffer.add_string b (str "    \"total_states\": %d,\n" rp.total_states);
  Buffer.add_string b (str "    \"total_explored\": %d,\n" rp.total_explored);
  Buffer.add_string b (str "    \"elapsed_s\": %.3f,\n" rp.elapsed_s);
  Buffer.add_string b "    \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (str
           "      {\"cell\": %S, \"verdict\": %S, \"exit\": %d, \"states\": \
            %d, \"explored\": %d, \"cached\": %b, \"gate\": %S}%s\n"
           r.label r.verdict r.exit_code r.states r.explored r.cached
           (match r.gate with
           | `Ok -> "ok"
           | `Fail m -> "fail: " ^ m
           | `None -> "-")
           (if i = List.length rp.rows - 1 then "" else ",")))
    rp.rows;
  Buffer.add_string b "    ]\n";
  Buffer.add_string b "  }";
  Buffer.contents b

(* BENCH_checker.json is a JSON array of run objects; append in place
   (same idiom as bench/check_throughput.ml). *)
let append_bench ~file ~ts rp =
  let run_json = to_json ~ts rp in
  let previous =
    if Sys.file_exists file then begin
      let ic = open_in_bin file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let rec last_bracket i =
        if i < 0 || s.[i] = ']' then i else last_bracket (i - 1)
      in
      let i = last_bracket (String.length s - 1) in
      if i <= 0 then None else Some (String.sub s 0 i)
    end
    else None
  in
  let oc = open_out file in
  (match previous with
  | Some prefix ->
    output_string oc prefix;
    output_string oc ",\n";
    output_string oc run_json
  | None ->
    output_string oc "[\n";
    output_string oc run_json);
  output_string oc "\n]\n";
  close_out oc
