(** Declarative sweep engine: a matrix spec → queued jobs → a KPI table.

    A sweep file (key = value lines, [#] comments, list values
    comma-separated) names one experiment matrix:

    {v
    name       = mutex-landscape
    kind       = check            # check | fuzz | hunt
    protocols  = mutex, cmp-mutex
    n          = 2
    m          = 3, 4             # omitted: per-protocol default
    reductions = full, canon
    engines    = seq              # seq | sharded | barrier
    faults     = none, 42         # none, or a Resilience plan seed
    max_states = 200000
    expect     = pass             # regression gate for every cell ...
    expect.mutex-n2-m4 = violation   # ... overridden by label prefix
    v}

    {!expand} multiplies the axes into a deterministic, duplicate-free
    cell list (deduplicated on the canonical {!Spec.ident}, first
    occurrence wins); {!run} executes the cells on one worker pool with
    a shared verdict cache — so overlapping sweeps, and re-runs of the
    same sweep, are answered O(1) — streaming one progress line per
    cell and judging each against its regression gate. Fault cells arm
    [Resilience.plan_of_seed] for just that cell; the pool's recovery
    machinery absorbs the injected crashes.

    The KPI table (named-experiment rows → aggregate footer, in the
    style of the network-control sweep harness from the related-work
    repos) renders via [Report.Table] at the call sites — this module
    only produces the strings, so [lib/report] can itself depend on
    serve for experiment E23. *)

type spec = {
  name : string;
  kind : Spec.kind;
  protos : Spec.proto list;
  ns : int list;
  ms : int list option;  (** [None]: per-protocol default m *)
  reductions : Check.Explore.reduction list;
  engines : Spec.engine list;
  fault_seeds : int option list;  (** [None] = no fault plan *)
  seeds : int list;  (** fuzz/hunt axis *)
  strategies : Check.Hunt.strategy list;  (** hunt axis *)
  max_states : int option;
  attempts : int option;
  steps : int option;
  deadline_s : float option;
  expect_default : string option;  (** verdict tag every cell must match *)
  expect_overrides : (string * string) list;  (** label prefix → tag *)
}

val parse : string -> (spec, string) result
val load : path:string -> (spec, string) result

type cell = { label : string; job : Spec.t; fault_seed : int option }

val expand : spec -> cell list
(** Deterministic and duplicate-free (pinned by test_sweep). *)

type gate = [ `Ok | `Fail of string | `None ]

type row = {
  label : string;
  verdict : string;
  exit_code : int;
  states : int;
  explored : int;
  cached : bool;  (** every configuration was served from the verdict cache *)
  slices : int;
  recoveries : int;
  elapsed_s : float;
  gate : gate;
}

type report = {
  sweep : string;
  rows : row list;
  cells : int;
  gates_failed : int;
  violations : int;  (** cells ending 1 (violation) or 5 (disagreement) *)
  crashed : int;
  cached_cells : int;
  total_states : int;
  total_explored : int;
  elapsed_s : float;
}

val run :
  ?cache:Cache.t ->
  ?quantum:int ->
  ?state_dir:string ->
  ?progress:(string -> unit) ->
  spec ->
  report
(** Execute every cell (in {!expand} order) on a fresh single-worker
    pool sharing [cache]. [state_dir] (default under the temp dir, keyed
    by pid) holds preemption snapshots. *)

val exit_code : report -> int
(** The [coordctl sweep] contract: with any gate configured, 1 iff a
    gate failed (expected violations pass their gates); with no gates,
    1 iff any cell found a violation/disagreement or crashed; else 0. *)

val kpi_header : string list
val kpi_rows : report -> string list list
val aggregate_lines : report -> string list
(** Footer notes: totals, cache economics, gate summary. *)

val to_json : ts:string -> report -> string
(** One BENCH_checker.json entry (the caller stamps the timestamp). *)

val append_bench : file:string -> ts:string -> report -> unit
(** Append {!to_json} to the JSON-array bench log in place. *)
