#!/bin/sh
# Chaos soak: sweep the (engine x supervision x disk-visited x fault plan)
# matrix through the coordctl surface and require, for every cell, either
# bit-identity with the fault-free oracle or an honestly reported
# degradation — never a hang, a corrupt manifest, or a silently wrong
# state count.
#
#   leg 1  fault-free oracles (seq, par/sharded, par/barrier) pin down
#          the invariant statistics lines;
#   leg 2  engine x supervision cells under two seeded fault plans:
#          sharded and barrier, explicit --supervise and auto-enabled,
#          must all converge to the par oracle's invariant lines;
#   leg 3  disk-visited cells under plans widened with storage faults
#          (--disk-faults: short writes, EIO, ENOSPC, fsync failures)
#          must converge to the sequential oracle's invariant lines;
#   leg 4  honest degradation: a byte quota stops the external-memory
#          run with stop reason disk_full and an intact checkpoint; the
#          quota-free resume completes bit-identically, which also
#          re-validates every run file the manifest references.
#
# Every cell runs under a hard timeout: "never hangs" is part of the
# contract. The whole soak replays from its printed seed:
#   CHAOS_SEED=N scripts/chaos_soak.sh        (default 29)
set -eu

COORD=${1:-_build/default/bin/coordctl.exe}
SEED=${CHAOS_SEED:-29}
if [ ! -x "$COORD" ]; then
  echo "chaos_soak: $COORD not found (run dune build first)" >&2
  exit 2
fi

tmp=$(mktemp -d "${TMPDIR:-/tmp}/chaos_soak.XXXXXX")
trap 'rm -rf "$tmp"' EXIT INT TERM

fail() {
  echo "chaos_soak: FAIL: $*" >&2
  exit 1
}

# The invariant lines of `explore` output: drop wall-clock throughput,
# the echoed fault plan, and the infrastructure-weather lines
# (supervision restarts, recovery retries, steal/handoff traffic, spill
# counts) that faults and scheduling legitimately perturb. States,
# completeness, transitions, depth, dedup accounting and shard load must
# survive any absorbed fault bit for bit.
flat() {
  grep -v \
    -e '^fault plan:' -e '^throughput' -e '^supervision:' \
    -e '^recovery:' -e '^sharding:' -e '^disk visited:' "$1"
}

echo "chaos_soak: fault plan seed $SEED (replay with CHAOS_SEED=$SEED)"

# --- leg 1: fault-free oracles ------------------------------------------

"$COORD" explore mutex -m 3 >"$tmp/oracle_seq.txt" 2>&1 \
  || fail "seq oracle exited $?"
"$COORD" explore mutex -m 3 --par --domains 3 --engine sharded \
  >"$tmp/oracle_par.txt" 2>&1 || fail "par oracle exited $?"
"$COORD" explore mutex -m 3 --par --domains 3 --engine barrier \
  >"$tmp/oracle_barrier.txt" 2>&1 || fail "barrier oracle exited $?"
flat "$tmp/oracle_par.txt" >"$tmp/oracle_par.flat"
flat "$tmp/oracle_barrier.txt" | diff -u "$tmp/oracle_par.flat" - >&2 \
  || fail "the two engines disagree with no faults armed"

# --- leg 2: engine x supervision under seeded fault plans ---------------

for engine in sharded barrier; do
  for plan in "$SEED" $((SEED + 1)); do
    for sup in --supervise ""; do
      cell="$engine/plan$plan/${sup:-auto}"
      # shellcheck disable=SC2086
      timeout 45 "$COORD" explore mutex -m 3 --par --domains 3 \
        --engine "$engine" $sup --inject-faults "$plan" \
        --snapshot "$tmp/cell.snap" >"$tmp/cell.txt" 2>"$tmp/cell.err" \
        || fail "$cell exited $? (stderr: $(cat "$tmp/cell.err"))"
      grep -q '^fault plan:' "$tmp/cell.txt" \
        || fail "$cell did not print its fault plan"
      flat "$tmp/cell.txt" | diff -u "$tmp/oracle_par.flat" - >&2 \
        || fail "$cell diverged from the fault-free oracle"
      rm -f "$tmp/cell.snap"
    done
  done
done

# --- leg 3: disk-visited under storage-widened fault plans --------------

flat "$tmp/oracle_seq.txt" >"$tmp/oracle_seq.flat"
for plan in "$SEED" $((SEED + 1)); do
  cell="disk/plan$plan"
  rm -rf "$tmp/dv"
  timeout 45 "$COORD" explore mutex -m 3 --disk-visited "$tmp/dv" \
    --disk-hot-cap 8 --inject-faults "$plan" --disk-faults \
    --snapshot "$tmp/cell.snap" >"$tmp/cell.txt" 2>"$tmp/cell.err" \
    || fail "$cell exited $? (stderr: $(cat "$tmp/cell.err"))"
  flat "$tmp/cell.txt" | diff -u "$tmp/oracle_seq.flat" - >&2 \
    || fail "$cell diverged from the fault-free oracle"
  rm -f "$tmp/cell.snap"
done

# --- leg 4: honest degradation on a byte quota --------------------------

rm -rf "$tmp/dv"
timeout 45 "$COORD" explore mutex -m 3 --disk-visited "$tmp/dv" \
  --disk-hot-cap 8 --disk-quota 16 --snapshot "$tmp/quota.snap" \
  >"$tmp/quota.txt" 2>&1 || fail "quota cell exited $?"
grep -q 'TRUNCATED: disk_full' "$tmp/quota.txt" \
  || fail "quota breach was not reported as disk_full"
[ -s "$tmp/quota.snap" ] || fail "no checkpoint flushed on disk_full stop"
# the resume restores the manifest strictly: any corrupt run file would
# be refused here, so completing to the oracle proves integrity end to end
timeout 45 "$COORD" explore mutex -m 3 --disk-visited "$tmp/dv" \
  --disk-hot-cap 8 --resume "$tmp/quota.snap" >"$tmp/resumed.txt" 2>&1 \
  || fail "quota-free resume exited $?"
flat "$tmp/resumed.txt" | diff -u "$tmp/oracle_seq.flat" - >&2 \
  || fail "quota-free resume diverged from the fault-free oracle"

echo "chaos_soak: OK (seed $SEED)"
