#!/bin/sh
# External-memory smoke test: drive the disk-backed visited set through
# the coordctl surface, the way an operator checking a graph bigger than
# RAM would.
#
#   leg A  spill-and-probe parity: the same exploration with an
#          adversarially small in-RAM footprint (MEM_MB watermark) must
#          print statistics identical to the unlimited in-RAM run;
#   leg B  the same parity under an address-space ulimit (when the shell
#          supports one): the in-RAM-unfriendly cap must not change a
#          single number — disk-bounded, not RAM-bounded;
#   leg C  snapshot/resume composes with spilling: truncate with
#          --max-states mid-spill, resume, and require output identical
#          to the uninterrupted external run.
#
# Usage: scripts/disk_smoke.sh [path-to-coordctl]
set -eu

COORD=${1:-_build/default/bin/coordctl.exe}
if [ ! -x "$COORD" ]; then
  echo "disk_smoke: $COORD not found (run dune build first)" >&2
  exit 2
fi

tmp=$(mktemp -d "${TMPDIR:-/tmp}/disk_smoke.XXXXXX")
trap 'rm -rf "$tmp"' EXIT INT TERM

fail() {
  echo "disk_smoke: FAIL: $*" >&2
  exit 1
}

# strip the nondeterministic / mode-dependent lines: wall-clock
# throughput, and the spill/probe counters (which depend on the
# hot-table cap the legs deliberately vary — every other number must
# be identical)
scrub() {
  grep -v '^throughput' "$1" | grep -v '^disk visited'
}

# A ~21k-state graph: big enough to spill dozens of runs under a tiny
# hot-table cap, small enough to finish in seconds.
WORKLOAD="explore mutex -n 2 -m 5 --rot"
HOT="--disk-hot-cap 2000"

# --- leg A: spill-and-probe parity --------------------------------------

"$COORD" $WORKLOAD >"$tmp/ram.txt" 2>&1 \
  || fail "in-RAM oracle run exited $?"

"$COORD" $WORKLOAD --disk-visited "$tmp/dv_a" $HOT >"$tmp/disk.txt" 2>&1 \
  || fail "disk-visited run exited $?"

scrub "$tmp/ram.txt" >"$tmp/ram.flat"
scrub "$tmp/disk.txt" >"$tmp/disk.flat"
diff -u "$tmp/ram.flat" "$tmp/disk.flat" >&2 \
  || fail "disk-visited statistics differ from the in-RAM run"
grep -q '^disk visited' "$tmp/disk.txt" \
  || fail "hot-table cap produced no spilled runs (smoke exercised nothing)"

# --- leg B: the same run under an address-space cap ---------------------
# 512 MB of virtual address space is plenty for the bounded hot table
# and the OCaml runtime, but a deliberately hostile ceiling for a
# checker that kept every visited state in RAM as the graph grows. Some
# shells/platforms refuse `ulimit -v`; skip the leg there rather than
# fail the gate on an unrelated limitation.
if (ulimit -v 524288) 2>/dev/null; then
  (
    ulimit -v 524288
    exec "$COORD" $WORKLOAD --disk-visited "$tmp/dv_b" $HOT \
      >"$tmp/capped.txt" 2>&1
  ) || fail "ulimit-capped disk-visited run exited $?"
  scrub "$tmp/capped.txt" >"$tmp/capped.flat"
  diff -u "$tmp/ram.flat" "$tmp/capped.flat" >&2 \
    || fail "ulimit-capped statistics differ from the in-RAM run"
else
  echo "disk_smoke: ulimit -v unsupported here; skipping the capped leg" >&2
fi

# --- leg C: snapshot/resume composes with spilling ----------------------

"$COORD" $WORKLOAD --disk-visited "$tmp/dv_c" $HOT --max-states 3000 \
  --snapshot "$tmp/cut.snap" >"$tmp/cut.txt" 2>&1 \
  || fail "truncated disk-visited run exited $?"
grep -qi 'truncated' "$tmp/cut.txt" || fail "budget run was not truncated"
[ -f "$tmp/cut.snap" ] || fail "no snapshot flushed on truncation"

"$COORD" $WORKLOAD --disk-visited "$tmp/dv_c" $HOT --resume "$tmp/cut.snap" \
  >"$tmp/resumed.txt" 2>&1 \
  || fail "resumed disk-visited run exited $?"

scrub "$tmp/resumed.txt" >"$tmp/resumed.flat"
diff -u "$tmp/ram.flat" "$tmp/resumed.flat" >&2 \
  || fail "resumed disk-visited run differs from the in-RAM oracle"

echo "disk_smoke: OK"
