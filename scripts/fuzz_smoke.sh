#!/bin/sh
# Fuzzing smoke test: the property-based differential loop end to end
# through the coordctl surface, inside the `make check` budget (<30s).
#
#   leg A  replay every committed regression bundle in test/corpus/ —
#          each must still reproduce its violation (exit 0);
#   leg B  a 1000-instance differential sweep over n=2 mutex instances:
#          sequential explorer, parallel explorer, property checkers,
#          runtime probes and the Peterson baseline twin must agree on
#          every instance ("agreed 1000"); violations are expected
#          (even-m instances are genuinely broken), disagreement is not;
#   leg C  a consensus sweep cross-checked against the CA baseline twin;
#   leg D  the broken-protocol contract: Figure 1 with m=4 must be caught,
#          auto-shrunk, written out as a bundle, and that bundle must
#          replay (the `fuzz`/`shrink` exit codes: fuzz 0 clean /
#          1 violation / 5 disagreement; shrink 0 reproduced /
#          1 not reproduced / 2 malformed).
#
# Usage: scripts/fuzz_smoke.sh [path-to-coordctl]
set -eu

COORD=${1:-_build/default/bin/coordctl.exe}
if [ ! -x "$COORD" ]; then
  echo "fuzz_smoke: $COORD not found (run dune build first)" >&2
  exit 2
fi

tmp=$(mktemp -d "${TMPDIR:-/tmp}/fuzz_smoke.XXXXXX")
trap 'rm -rf "$tmp"' EXIT INT TERM

fail() {
  echo "fuzz_smoke: FAIL: $*" >&2
  exit 1
}

# --- leg A: the committed regression corpus still reproduces ------------

found=0
for f in test/corpus/*.fuzz; do
  [ -f "$f" ] || continue
  found=1
  "$COORD" shrink "$f" --replay >"$tmp/replay.txt" 2>&1 \
    || fail "$f no longer reproduces its violation ($(cat "$tmp/replay.txt"))"
done
[ "$found" -eq 1 ] || fail "no bundles under test/corpus/"

# --- leg B: the 1000-instance mutex differential sweep ------------------

"$COORD" fuzz mutex -n 2 --attempts 1000 --max-states 4000 --seed 42 \
  >"$tmp/mutex.txt" 2>&1 && rc=0 || rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 1 ] \
  || fail "mutex sweep exited $rc (want 0 or 1; 5 means engines disagreed): \
$(cat "$tmp/mutex.txt")"
grep -q 'agreed 1000' "$tmp/mutex.txt" \
  || fail "mutex sweep: engines did not agree on all 1000 instances: \
$(cat "$tmp/mutex.txt")"

# --- leg C: consensus vs the CA baseline twin ---------------------------

"$COORD" fuzz consensus -n 2 --attempts 50 --seed 5 >"$tmp/cons.txt" 2>&1 \
  && rc=0 || rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 1 ] \
  || fail "consensus sweep exited $rc: $(cat "$tmp/cons.txt")"
grep -q 'agreed 50' "$tmp/cons.txt" \
  || fail "consensus sweep: engines disagreed: $(cat "$tmp/cons.txt")"

# --- leg D: broken protocol caught, shrunk, bundle replays --------------

"$COORD" fuzz mutex -n 2 -m 4 --attempts 5 --seed 7 --shrink \
  --corpus "$tmp" >"$tmp/broken.txt" 2>&1 && rc=0 || rc=$?
[ "$rc" -eq 1 ] || fail "even-m mutex fuzz exited $rc (want 1 = violation): \
$(cat "$tmp/broken.txt")"
grep -q 'violations 5' "$tmp/broken.txt" \
  || fail "even-m instances not all caught: $(cat "$tmp/broken.txt")"
bundle=$(ls "$tmp"/*.fuzz 2>/dev/null | head -n 1)
[ -n "$bundle" ] || fail "no shrunk bundle written by --corpus"
"$COORD" shrink "$bundle" --replay >/dev/null 2>&1 \
  || fail "shrunk bundle $bundle does not replay"

echo "fuzz_smoke: OK"
