#!/bin/sh
# Resilience smoke test: a seeded infrastructure-fault campaign driven
# through the coordctl surface, the way an operator would run it.
#
#   leg 1  fault-free oracle sweeps (seq + par) record verdicts and
#          per-naming state counts;
#   leg 2  the same sweeps under --inject-faults SEED (worker kills,
#          stalls, torn snapshot writes, an allocation failure) must not
#          hang, must reach the oracle's verdict and state counts via
#          supervision / salvage / recovery, and must exit 0;
#   leg 3  --deadline 0 stops gracefully at a generation boundary with
#          exit 6 and a snapshot a later run resumes to the oracle;
#   leg 4  a snapshot with a torn tail is rejected by a strict resume
#          (exit 4) and salvaged by --salvage (exit 0, oracle graph).
#
# The whole campaign is replayable from its printed seed:
#   RESILIENCE_SEED=N scripts/resilience_smoke.sh        (default 7)
set -eu

COORD=${1:-_build/default/bin/coordctl.exe}
SEED=${RESILIENCE_SEED:-7}
if [ ! -x "$COORD" ]; then
  echo "resilience_smoke: $COORD not found (run dune build first)" >&2
  exit 2
fi

tmp=$(mktemp -d "${TMPDIR:-/tmp}/resilience_smoke.XXXXXX")
trap 'rm -rf "$tmp"' EXIT INT TERM

fail() {
  echo "resilience_smoke: FAIL: $*" >&2
  exit 1
}

echo "resilience_smoke: fault plan seed $SEED (replay with RESILIENCE_SEED=$SEED)"

# --- leg 1: fault-free oracles ------------------------------------------

"$COORD" check mutex -m 3 >"$tmp/oracle_seq.txt" 2>&1 \
  || fail "seq oracle exited $?"
"$COORD" check mutex -m 3 --par --domains 3 >"$tmp/oracle_par.txt" 2>&1 \
  || fail "par oracle exited $?"

# --- leg 2: the same checks under the armed fault plan ------------------
# (wrapped in a hard timeout: "never hangs" is part of the contract)

timeout 45 "$COORD" check mutex -m 3 --inject-faults "$SEED" \
  --snapshot-dir "$tmp/snaps_seq" >"$tmp/fault_seq.txt" 2>"$tmp/fault_seq.err" \
  || fail "seq fault campaign exited $? (stderr: $(cat "$tmp/fault_seq.err"))"
grep -q '^fault plan:' "$tmp/fault_seq.txt" \
  || fail "fault campaign did not print its plan"
grep -v '^fault plan:' "$tmp/fault_seq.txt" \
  | diff -u "$tmp/oracle_seq.txt" - >&2 \
  || fail "seq fault campaign verdict/state counts differ from the oracle"

timeout 45 "$COORD" check mutex -m 3 --par --domains 3 \
  --inject-faults "$SEED" --snapshot-dir "$tmp/snaps_par" \
  >"$tmp/fault_par.txt" 2>"$tmp/fault_par.err" \
  || fail "par fault campaign exited $? (stderr: $(cat "$tmp/fault_par.err"))"
grep -v '^fault plan:' "$tmp/fault_par.txt" \
  | diff -u "$tmp/oracle_par.txt" - >&2 \
  || fail "par fault campaign verdict/state counts differ from the oracle"

# --- leg 3: deadline stops gracefully with exit 6, resume completes -----

"$COORD" check mutex -m 3 --deadline 0 --snapshot-dir "$tmp/ddl" \
  >"$tmp/ddl.txt" 2>&1 && rc=0 || rc=$?
[ "$rc" -eq 6 ] || fail "expired deadline exited $rc (want 6)"
snap=$(ls "$tmp"/ddl/*.snap 2>/dev/null | head -n 1)
[ -n "$snap" ] || fail "no snapshot flushed on deadline stop"
"$COORD" check mutex -m 3 --resume "$snap" >"$tmp/ddl_resumed.txt" 2>&1 \
  || fail "resume after deadline exited $?"
diff -u "$tmp/oracle_seq.txt" "$tmp/ddl_resumed.txt" >&2 \
  || fail "resume after deadline differs from the oracle"

# --- leg 4: torn snapshot tail — strict reject vs salvage ---------------

"$COORD" explore mutex -m 4 --max-states 3000 \
  --snapshot "$tmp/cut.snap" --snapshot-every 1 >/dev/null 2>&1 \
  || fail "checkpointing run exited $?"
size=$(wc -c <"$tmp/cut.snap")
dd if="$tmp/cut.snap" of="$tmp/torn.snap" bs=1 count=$((size - 5)) 2>/dev/null

"$COORD" explore mutex -m 4 --resume "$tmp/torn.snap" >/dev/null 2>&1 \
  && rc=0 || rc=$?
[ "$rc" -eq 4 ] || fail "strict resume of a torn snapshot exited $rc (want 4)"

"$COORD" explore mutex -m 4 >"$tmp/oracle_x.txt" 2>&1 \
  || fail "explore oracle exited $?"
"$COORD" explore mutex -m 4 --resume "$tmp/torn.snap" --salvage \
  >"$tmp/salvaged.txt" 2>"$tmp/salvaged.err" \
  || fail "salvaged resume exited $?"
grep -q 'snapshot salvage' "$tmp/salvaged.err" \
  || fail "salvaged resume did not report what it rolled back"
grep -v '^throughput' "$tmp/oracle_x.txt" >"$tmp/oracle_x.flat"
grep -v '^throughput' "$tmp/salvaged.txt" >"$tmp/salvaged.flat"
diff -u "$tmp/oracle_x.flat" "$tmp/salvaged.flat" >&2 \
  || fail "salvaged resume differs from the uninterrupted oracle"

echo "resilience_smoke: OK (seed $SEED)"
