#!/bin/sh
# Resume smoke test: exercise the snapshot/resume layer end to end through
# the coordctl surface, the way an operator would drive it.
#
#   leg A  truncate an exploration with --max-states, flushing a snapshot,
#          resume it to completion, and require output identical to an
#          uninterrupted oracle run (modulo the throughput line);
#   leg B  SIGTERM a live exploration mid-flight and require a graceful
#          exit with a resumable snapshot on disk (timing-tolerant: the
#          run may legitimately finish before the signal lands);
#   leg C  the `check` exit-code contract: 0 clean, 3 truncated,
#          4 rejected snapshot;
#   leg D  SIGKILL (kill -9) mid-write: whatever the snapshot file looks
#          like after an uncatchable kill, a --salvage resume must accept
#          it and complete (timing-tolerant like leg B).
#
# Usage: scripts/resume_smoke.sh [path-to-coordctl]
set -eu

COORD=${1:-_build/default/bin/coordctl.exe}
if [ ! -x "$COORD" ]; then
  echo "resume_smoke: $COORD not found (run dune build first)" >&2
  exit 2
fi

tmp=$(mktemp -d "${TMPDIR:-/tmp}/resume_smoke.XXXXXX")
trap 'rm -rf "$tmp"' EXIT INT TERM

fail() {
  echo "resume_smoke: FAIL: $*" >&2
  exit 1
}

# strip the only nondeterministic line (wall-clock throughput)
scrub() {
  grep -v '^throughput' "$1"
}

# Wait until a background exploration has flushed its first checkpoint
# (or already exited), instead of sleeping a fixed wall-clock amount and
# hoping the run is mid-flight: on a loaded machine a fixed sleep can
# land before the first write (no snapshot to kill over) or after the
# run finished (nothing to signal).
wait_for_snapshot() {
  # $1 = snapshot path, $2 = pid
  while [ ! -s "$1" ] && kill -0 "$2" 2>/dev/null; do
    sleep 0.02
  done
}

# --- leg A: truncate, resume, compare against the oracle ----------------

"$COORD" explore mutex -m 4 >"$tmp/oracle.txt" 2>&1 \
  || fail "oracle run exited $?"

"$COORD" explore mutex -m 4 --max-states 3000 \
  --snapshot "$tmp/cut.snap" >"$tmp/cut.txt" 2>&1 \
  || fail "truncated run exited $?"
grep -qi 'truncated' "$tmp/cut.txt" || fail "budget run was not truncated"
[ -f "$tmp/cut.snap" ] || fail "no snapshot flushed on truncation"

"$COORD" explore mutex -m 4 --resume "$tmp/cut.snap" >"$tmp/resumed.txt" 2>&1 \
  || fail "resumed run exited $?"

scrub "$tmp/oracle.txt" >"$tmp/oracle.flat"
scrub "$tmp/resumed.txt" >"$tmp/resumed.flat"
diff -u "$tmp/oracle.flat" "$tmp/resumed.flat" >&2 \
  || fail "resumed run differs from the uninterrupted oracle"

# --- leg B: SIGTERM mid-exploration, graceful snapshot ------------------

"$COORD" explore mutex -n 3 -m 5 --max-states 200000 \
  --snapshot "$tmp/sig.snap" --snapshot-every 1 >"$tmp/sig.txt" 2>&1 &
pid=$!
wait_for_snapshot "$tmp/sig.snap" "$pid"
kill -TERM "$pid" 2>/dev/null || true   # may already have finished
rc=0
wait "$pid" || rc=$?
[ "$rc" -eq 0 ] || fail "SIGTERM'd exploration exited $rc (want graceful 0)"
[ -f "$tmp/sig.snap" ] || fail "no snapshot flushed on SIGTERM"
"$COORD" explore mutex -n 3 -m 5 --max-states 200000 \
  --resume "$tmp/sig.snap" >"$tmp/sig_resumed.txt" 2>&1 \
  || fail "resume after SIGTERM exited $?"

# --- leg D: SIGKILL mid-write, salvage resume ---------------------------
# A tight checkpoint cadence keeps the snapshot file mid-append most of
# the run, so kill -9 lands on a torn or half-flushed tail with fair
# probability; the salvage layer must cope with every outcome.

"$COORD" explore mutex -n 3 -m 5 --max-states 200000 \
  --snapshot "$tmp/k9.snap" --snapshot-every 1 >"$tmp/k9.txt" 2>&1 &
pid=$!
wait_for_snapshot "$tmp/k9.snap" "$pid"
kill -9 "$pid" 2>/dev/null || true      # may already have finished
wait "$pid" 2>/dev/null || true
if [ -f "$tmp/k9.snap" ]; then
  "$COORD" explore mutex -n 3 -m 5 --max-states 200000 \
    --resume "$tmp/k9.snap" --salvage >"$tmp/k9_resumed.txt" 2>&1 \
    || fail "salvage resume after SIGKILL exited $?"
fi

# --- leg C: check's exit-code contract ----------------------------------

"$COORD" check mutex -m 3 >/dev/null 2>&1
rc=$? && [ "$rc" -eq 0 ] || fail "clean check exited $rc (want 0)"

"$COORD" check mutex -m 3 --max-states 500 >/dev/null 2>&1 && rc=0 || rc=$?
[ "$rc" -eq 3 ] || fail "truncated check exited $rc (want 3)"

printf 'not a snapshot' >"$tmp/garbage.snap"
"$COORD" check mutex -m 3 --resume "$tmp/garbage.snap" >/dev/null 2>&1 \
  && rc=0 || rc=$?
[ "$rc" -eq 4 ] || fail "garbage resume exited $rc (want 4)"

echo "resume_smoke: OK"
