#!/bin/sh
# Serve smoke test: drive the job-queue daemon end to end through the
# coordctl surface, the way an operator would.
#
#   leg A  start `coordctl serve` on a fresh spool with a deliberately
#          small preemption quantum, submit a mutex check that needs
#          several slices, and require the verdict to agree with a
#          direct `coordctl check` invocation (exit code and all);
#   leg B  re-submit the identical spec and require it answered from the
#          verdict cache: zero freshly explored states, one slice;
#   leg C  a known-violation spec (even m) must report exit 1, again
#          agreeing with the direct CLI; a malformed spec must produce
#          an .error file, not a wedged daemon;
#   leg D  clean shutdown via the spool's shutdown file; then a sweep of
#          examples/tiny.sweep must pass its regression gates.
#
# Usage: scripts/serve_smoke.sh [path-to-coordctl]
set -eu

COORD=${1:-_build/default/bin/coordctl.exe}
if [ ! -x "$COORD" ]; then
  echo "serve_smoke: $COORD not found (run dune build first)" >&2
  exit 2
fi

tmp=$(mktemp -d "${TMPDIR:-/tmp}/serve_smoke.XXXXXX")
spool="$tmp/spool"
mkdir -p "$spool"
daemon_pid=

cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  [ -f "$tmp/daemon.log" ] && sed 's/^/serve_smoke: daemon: /' "$tmp/daemon.log" >&2
  exit 1
}

# submit NAME BODY: drop a spec into the spool and wait for its verdict
submit() {
  name=$1; body=$2
  printf '%s\n' "$body" >"$spool/$name.job.tmp"
  mv "$spool/$name.job.tmp" "$spool/$name.job"
}

# wait_result NAME: block (bounded) until done/NAME.result or .error lands
wait_result() {
  i=0
  while [ ! -f "$spool/done/$1.result" ] && [ ! -f "$spool/done/$1.error" ]; do
    i=$((i + 1))
    [ "$i" -gt 600 ] && fail "no result for job $1 within 30s"
    sleep 0.05
  done
}

# field NAME KEY: read one key from a result file
field() {
  sed -n "s/^$2 *= *//p" "$spool/done/$1.result" | head -n 1
}

# --- leg A: preempted check agrees with the direct CLI ------------------

"$COORD" serve "$spool" --workers 1 --quantum 2000 --poll 0.02 \
  >"$tmp/daemon.log" 2>&1 &
daemon_pid=$!

submit preempted 'kind = check
proto = mutex
m = 3'
wait_result preempted
[ -f "$spool/done/preempted.result" ] || fail "preempted job errored"

"$COORD" check mutex -m 3 >/dev/null 2>&1 && direct_rc=0 || direct_rc=$?
served_rc=$(field preempted exit)
[ "$served_rc" = "$direct_rc" ] \
  || fail "served exit $served_rc != direct check exit $direct_rc"
[ "$(field preempted verdict)" = "pass" ] \
  || fail "preempted job verdict $(field preempted verdict) (want pass)"
slices=$(field preempted slices)
[ "$slices" -gt 6 ] \
  || fail "quantum 2000 should preempt a 6-config m=3 check (slices=$slices)"

# --- leg B: identical re-submission is served from the cache ------------

submit repeat 'kind = check
proto = mutex
m = 3'
wait_result repeat
[ "$(field repeat cached)" = "true" ] || fail "repeat was not served cached"
[ "$(field repeat explored)" = "0" ] \
  || fail "repeat explored $(field repeat explored) fresh states (want 0)"
[ "$(field repeat slices)" = "1" ] \
  || fail "fully-cached job took $(field repeat slices) slices (want 1)"
[ "$(field repeat verdict)" = "$(field preempted verdict)" ] \
  || fail "cached verdict differs from the original"

# --- leg C: violations and parse errors surface honestly ----------------

submit evenm 'kind = check
proto = mutex
m = 4
max_states = 200000'
submit garbage 'kind = check'
wait_result evenm
wait_result garbage

"$COORD" check mutex -m 4 >/dev/null 2>&1 && direct_rc=0 || direct_rc=$?
[ "$(field evenm exit)" = "$direct_rc" ] \
  || fail "even-m served exit $(field evenm exit) != direct $direct_rc"
[ "$(field evenm verdict)" = "violation" ] \
  || fail "even-m verdict $(field evenm verdict) (want violation)"
[ -f "$spool/done/garbage.error" ] \
  || fail "malformed spec did not produce an .error file"

# --- leg D: clean shutdown, then the example sweep ----------------------

: >"$spool/shutdown"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=
[ "$rc" -eq 0 ] || fail "daemon shutdown exited $rc (want 0)"
[ ! -f "$spool/shutdown" ] || fail "daemon left the shutdown file behind"
[ -f "$spool/.state/cache.bin" ] || fail "daemon did not persist its cache"

"$COORD" sweep examples/tiny.sweep --quantum 4000 >"$tmp/sweep.txt" 2>&1 \
  || fail "example sweep exited $? (want 0: all gates pass)"
grep -q 'gate failure' "$tmp/sweep.txt" || fail "sweep printed no gate summary"

echo "serve_smoke: OK"
