#!/bin/sh
# Registration gate: every test/test_*.ml must be wired into the
# alcotest runner (test/main.ml), so a new suite cannot silently ride
# along unexecuted. Part of `make check` via `make test-list`.
set -eu

cd "$(dirname "$0")/.."

missing=0
for f in test/test_*.ml; do
  mod=$(basename "$f" .ml)
  # Test_foo.suite in main.ml ("Test_" + capitalised module name)
  cap=$(printf '%s' "$mod" | cut -c1 | tr '[:lower:]' '[:upper:]')$(printf '%s' "$mod" | cut -c2-)
  if ! grep -q "${cap}\.suite" test/main.ml; then
    echo "test_list: $f is not registered in test/main.ml (${cap}.suite)" >&2
    missing=1
  fi
done

[ "$missing" -eq 0 ] || exit 1
echo "test_list: OK ($(ls test/test_*.ml | wc -l | tr -d ' ') suites registered)"
