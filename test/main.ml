let () =
  Alcotest.run "anonring"
    [
      ("rng", Test_rng.suite);
      ("naming", Test_naming.suite);
      ("memory", Test_memory.suite);
      ("schedule", Test_schedule.suite);
      ("runtime", Test_runtime.suite);
      ("stats", Test_stats.suite);
      ("check", Test_check.suite);
      ("scc", Test_scc.suite);
      ("dot", Test_dot.suite);
      ("flatgraph", Test_flatgraph.suite);
      ("codec", Test_codec.suite);
      ("gen", Test_gen.suite);
      ("shrink", Test_shrink.suite);
      ("fuzz", Test_fuzz.suite);
      ("fault", Test_fault.suite);
      ("hunt", Test_hunt.suite);
      ("explore_par", Test_explore_par.suite);
      ("snapshot", Test_snapshot.suite);
      ("canon", Test_canon.suite);
      ("props", Test_props.suite);
      ("trace", Test_trace.suite);
      ("wrap", Test_wrap.suite);
      ("amutex", Test_amutex.suite);
      ("cmp_mutex", Test_cmp_mutex.suite);
      ("consensus", Test_consensus.suite);
      ("election", Test_election.suite);
      ("renaming", Test_renaming.suite);
      ("ccp", Test_ccp.suite);
      ("baseline", Test_baseline.suite);
      ("lowerbound", Test_lowerbound.suite);
      ("report", Test_report.suite);
      ("parallel", Test_parallel.suite);
      ("resilience", Test_resilience.suite);
      ("disk_visited", Test_disk_visited.suite);
    ]
