open Anonmem
module P = Coord.Amutex.P
module R = Runtime.Make (P)
module E = Check.Explore.Make (P)

let explore ?(ids = [ 7; 13 ]) ~m:_ ~namings () =
  let cfg : E.config =
    {
      ids = Array.of_list ids;
      inputs = Array.of_list (List.map (fun _ -> ()) ids);
      namings = Array.of_list namings;
    }
  in
  E.explore cfg

let me_df ?ids ~m ~namings () =
  let g = explore ?ids ~m ~namings () in
  Alcotest.(check bool) "graph complete" true g.complete;
  let f = E.to_flat g in
  ( Check.Mutex_props.mutual_exclusion f,
    Check.Mutex_props.deadlock_freedom f )

let test_threshold () =
  Alcotest.(check int) "ceil 3/2" 2 (P.threshold ~m:3);
  Alcotest.(check int) "ceil 5/2" 3 (P.threshold ~m:5);
  Alcotest.(check int) "ceil 7/2" 4 (P.threshold ~m:7)

(* Theorem 3.2 + 3.3, m = 3: exhaustive over every relative naming. By
   relabeling physical registers, fixing process 0's naming to the identity
   loses no generality. *)
let test_m3_all_namings () =
  List.iter
    (fun nam ->
      let me, df = me_df ~m:3 ~namings:[ Naming.identity 3; nam ] () in
      Alcotest.(check bool) "mutual exclusion" true (me = None);
      Alcotest.(check bool) "deadlock freedom" true (df = None))
    (Naming.all 3)

(* m = 5 is bigger; spot-check the identity and a few nontrivial namings. *)
let test_m5_sampled_namings () =
  let namings =
    [
      Naming.identity 5;
      Naming.rotation 5 2;
      Naming.of_array [| 4; 2; 0; 3; 1 |];
    ]
  in
  List.iter
    (fun nam ->
      let me, df = me_df ~m:5 ~namings:[ Naming.identity 5; nam ] () in
      Alcotest.(check bool) "mutual exclusion (m=5)" true (me = None);
      Alcotest.(check bool) "deadlock freedom (m=5)" true (df = None))
    namings

(* Theorem 3.1, only-if direction: with an even number of registers the
   algorithm cannot be deadlock-free (mutual exclusion itself survives). *)
let test_even_m_loses_deadlock_freedom () =
  List.iter
    (fun m ->
      let me, df =
        me_df ~m ~namings:[ Naming.identity m; Naming.rotation m (m / 2) ] ()
      in
      Alcotest.(check bool) "mutual exclusion still holds" true (me = None);
      Alcotest.(check bool) "deadlock freedom fails" true (df <> None))
    [ 2; 4 ]

(* Three processes on three registers: the gcd(3,3)=3 case of Theorem 3.4
   says no symmetric algorithm can be a correct mutex here. For Figure 1's
   naive generalization the checker finds that {e both} requirements break:
   the proof's rotational lock-step run livelocks (deadlock freedom), and
   there is also an interleaving where two processes' stale pending writes
   let them both see an all-mine view (mutual exclusion) — with only two
   processes Theorem 3.2 excludes that second failure mode. *)
let test_three_procs_rotations_fail () =
  let me, df =
    me_df ~ids:[ 7; 13; 21 ] ~m:3
      ~namings:[ Naming.rotation 3 0; Naming.rotation 3 1; Naming.rotation 3 2 ]
      ()
  in
  Alcotest.(check bool) "mutual exclusion fails for 3 procs on 3 regs" true
    (me <> None);
  Alcotest.(check bool) "deadlock-freedom fails for 3 procs on 3 regs" true
    (df <> None)

(* §8 lists starvation-free mutex as open; Figure 1 itself is deadlock-free
   but NOT starvation-free: the adversary can let one process keep losing
   the scan forever while the other cycles through its critical section. *)
let test_not_starvation_free () =
  let g = explore ~m:3 ~namings:[ Naming.identity 3; Naming.rotation 3 1 ] () in
  let f = E.to_flat g in
  Alcotest.(check bool) "deadlock-free" true
    (Check.Mutex_props.deadlock_freedom f = None);
  match Check.Mutex_props.starvation_freedom f with
  | Some (_, v) ->
    Alcotest.(check bool) "starvation cycle is non-trivial" true
      (List.length v.states > 1)
  | None -> Alcotest.fail "Figure 1 should not be starvation-free"

(* Simulation-level: random schedules never see two processes critical and
   someone keeps winning. *)
let run_random ~seed ~m =
  let cfg : R.config =
    {
      ids = [| 3; 11 |];
      inputs = [| (); () |];
      namings =
        (let rng = Rng.create (seed * 7919) in
         [| Naming.random rng m; Naming.random rng m |]);
      rng = None;
      record_trace = true;
    }
  in
  let rt = R.create cfg in
  let rng = Rng.create seed in
  let violations = ref 0 in
  let entries = ref 0 in
  let sched = Schedule.random rng in
  for _ = 1 to 3000 do
    match sched { n = 2; clock = R.clock rt; kind = (fun i -> R.kind rt i) } with
    | Some i ->
      let e = R.step rt i in
      if Trace.enters_critical e then incr entries;
      if R.critical_pair rt <> None then incr violations
    | None -> ()
  done;
  (!violations, !entries)

let qcheck_random_schedules_safe =
  QCheck.Test.make ~name:"random schedules: safe and live (odd m)" ~count:60
    QCheck.(pair (int_bound 10_000) (int_bound 2))
    (fun (seed, mi) ->
      let m = 3 + (2 * mi) in
      let violations, entries = run_random ~seed:(seed + 1) ~m in
      violations = 0 && entries > 0)

let test_solo_entry () =
  (* a process running alone enters its critical section in Theta(m) steps *)
  List.iter
    (fun m ->
      let rt =
        R.create
          (R.simple_config ~m ~ids:[ 5 ] ~inputs:[ () ] ())
      in
      let reason =
        R.run rt
          ~until:(fun t -> R.status t 0 = Protocol.Critical)
          (Schedule.solo 0) ~max_steps:(4 * m)
      in
      Alcotest.(check bool) "entered critical section" true
        (reason = R.Condition_met);
      Alcotest.(check int) "scan writes + view reads + internal"
        ((3 * m) + 1)
        (R.steps_of rt 0))
    [ 3; 5; 7; 9 ]

let test_exit_resets_registers () =
  let m = 5 in
  let rt = R.create (R.simple_config ~m ~ids:[ 5 ] ~inputs:[ () ] ()) in
  let _ =
    R.run rt
      ~until:(fun t -> R.status t 0 = Protocol.Critical)
      (Schedule.solo 0) ~max_steps:100
  in
  (* run the exit code: m writes + the internal leave step *)
  let _ =
    R.run rt
      ~until:(fun t -> R.status t 0 = Protocol.Remainder)
      (Schedule.solo 0) ~max_steps:(2 * m)
  in
  Alcotest.(check bool) "back in remainder" true
    (R.status rt 0 = Protocol.Remainder);
  for j = 0 to m - 1 do
    Alcotest.(check int) "register reset" 0
      (R.Mem.get_physical (R.memory rt) j)
  done

(* Cross-validation of the two execution engines: every state the mutable
   simulator passes through must be a member of the immutable checker's
   reachable set for the same configuration. *)
let test_simulator_states_are_reachable () =
  let m = 3 in
  let namings = [| Naming.identity m; Naming.rotation m 1 |] in
  let cfg : E.config =
    { ids = [| 7; 13 |]; inputs = [| (); () |]; namings }
  in
  let g = E.explore cfg in
  let reachable = Hashtbl.create (Array.length g.states) in
  Array.iter (fun st -> Hashtbl.replace reachable st ()) g.states;
  let rcfg : R.config =
    {
      ids = cfg.ids;
      inputs = cfg.inputs;
      namings;
      rng = None;
      record_trace = false;
    }
  in
  let rt = R.create rcfg in
  let rng = Rng.create 77 in
  let sched = Schedule.random rng in
  for _ = 1 to 2000 do
    (match
       sched { n = 2; clock = R.clock rt; kind = (fun i -> R.kind rt i) }
     with
    | Some i -> ignore (R.step rt i)
    | None -> ());
    let st : E.state =
      {
        mem = R.Mem.contents (R.memory rt);
        locals = Array.init 2 (fun i -> R.local rt i);
      }
    in
    Alcotest.(check bool) "simulator state is in the explored set" true
      (Hashtbl.mem reachable st)
  done

(* Symmetry contract: relabeling ids consistently yields the same physical
   behavior (the algorithm uses ids only for equality comparisons). *)
let test_id_relabeling_equivariance () =
  let run ids =
    let rt =
      R.create
        (R.simple_config ~m:3 ~ids ~inputs:(List.map (fun _ -> ()) ids) ())
    in
    let sched = Schedule.script [ 0; 1; 0; 0; 1; 1; 0; 1; 0; 1; 1; 0; 0; 1 ] in
    let _ = R.run rt sched ~max_steps:100 in
    (* statuses and write positions must be identical modulo the id map *)
    (List.init 2 (fun i -> Protocol.status_kind (R.status rt i)),
     List.map
       (fun e ->
         match e.Trace.action with
         | Trace.Write { phys; _ } -> Some (e.Trace.proc, phys)
         | _ -> None)
       (R.trace rt))
  in
  Alcotest.(check bool) "relabeled run isomorphic" true
    (run [ 7; 13 ] = run [ 2000; 1 ])

let suite =
  [
    Alcotest.test_case "threshold" `Quick test_threshold;
    Alcotest.test_case "model check m=3, all namings (Thm 3.2/3.3)" `Slow
      test_m3_all_namings;
    Alcotest.test_case "model check m=5, sampled namings" `Slow
      test_m5_sampled_namings;
    Alcotest.test_case "even m loses deadlock freedom (Thm 3.1)" `Slow
      test_even_m_loses_deadlock_freedom;
    Alcotest.test_case "3 procs / 3 regs fails (Thm 3.4 instance)" `Slow
      test_three_procs_rotations_fail;
    Alcotest.test_case "deadlock-free but not starvation-free" `Slow
      test_not_starvation_free;
    QCheck_alcotest.to_alcotest qcheck_random_schedules_safe;
    Alcotest.test_case "solo entry cost" `Quick test_solo_entry;
    Alcotest.test_case "exit resets registers" `Quick test_exit_resets_registers;
    Alcotest.test_case "simulator states are checker-reachable" `Quick
      test_simulator_states_are_reachable;
    Alcotest.test_case "id relabeling equivariance" `Quick
      test_id_relabeling_equivariance;
  ]
